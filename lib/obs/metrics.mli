(** Structured runtime metrics: counters, histograms, span timers.

    All recording is gated on one global switch, {b off by default}: with
    observability disabled every record operation is a single atomic load
    plus branch — no allocation, no clock read. Handles are created once at
    module initialisation of the instrumented code; the registry is never
    touched on hot paths. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

module Counter : sig
  type t

  val make : string -> t
  (** Create or look up the counter registered under this name
      (idempotent). @raise Invalid_argument if the name is registered as a
      histogram. *)

  val incr : t -> unit
  val add : t -> int -> unit

  val value : t -> int
  (** Sum over all domain shards. Reads are not linearisable with respect
      to concurrent increments; quiesce before reading exact values. *)

  val name : t -> string
  val reset : t -> unit
end

module Histogram : sig
  type t

  val make : ?unit_:string -> string -> t
  (** [unit_] is a label exported with snapshots (e.g. ["ns"], ["bytes"]). *)

  val record : t -> int -> unit
  (** Record a non-negative sample (negatives clamp to 0). Bucket 0 holds
      the value 0; bucket [i >= 1] holds [2^(i-1) .. 2^i - 1]. *)

  val count : t -> int
  val sum : t -> int
  val min_value : t -> int
  val max_value : t -> int
  val mean : t -> float

  val nonzero_buckets : t -> (int * int * int) list
  (** [(lo, hi, count)] per populated bucket, ascending. *)

  val quantile : t -> float -> float
  (** [quantile h q] (with [q] in [0,1]) estimates the [q]-quantile of the
      recorded samples by linear interpolation inside the log2 bucket that
      holds the ceil([q]·count)-th sample, clamped to the exactly-tracked
      min/max. Error is bounded by one bucket width. 0 when empty.
      @raise Invalid_argument if [q] is outside [0,1]. *)

  val bucket_of : int -> int
  (** Exposed for tests. *)

  val name : t -> string
  val unit_ : t -> string
  val reset : t -> unit
end

module Span : sig
  (** Aggregated monotonic timers. A span's samples (durations in ns) feed
      the histogram registered under the span's name. *)

  type t
  type token

  val make : string -> t

  val enter : t -> token
  val exit : t -> token -> unit
  (** A token from a disabled-mode {!enter} makes {!exit} a no-op, even if
      the global switch flipped in between. *)

  val timed : t -> (unit -> 'a) -> 'a
  (** Run a thunk inside the span (exception-safe). *)

  val depth : unit -> int
  (** Current span-nesting depth in this domain (0 outside any span). *)

  val name : t -> string
  val count : t -> int
  val total_ns : t -> int
end

(** {1 Snapshots and export} *)

type histogram_snapshot = {
  hs_unit : string;
  hs_count : int;
  hs_sum : int;
  hs_min : int;
  hs_max : int;
  hs_mean : float;
  hs_buckets : (int * int * int) list;
}

type value = Counter_v of int | Histogram_v of histogram_snapshot

val snapshot : unit -> (string * value) list
(** All registered metrics, sorted by name. *)

val counter_value : string -> int option
val histogram_snapshot : string -> histogram_snapshot option

val snapshot_quantile : histogram_snapshot -> float -> float
(** {!Histogram.quantile} over an already-taken snapshot. *)

val reset : unit -> unit
(** Zero all metrics, keeping registrations. *)

val to_json : unit -> Json.t
(** [{"counters": {...}, "histograms": {...}}]. *)
