(* Machine-readable benchmark artifacts (the `BENCH_results.json` schema)
   and the comparison logic behind tools/bench_diff.

   The schema is versioned ("scl-bench/1"); bench_diff refuses to compare
   files with mismatched schemas so a schema change forces a baseline
   refresh instead of producing nonsense deltas. *)

let schema_version = "scl-bench/1"

type result = {
  name : string;  (* unique key, e.g. "hyperquicksort/sim" *)
  n : int;  (* problem size *)
  procs : int;  (* processors / workers *)
  backend : string;  (* "sim-ap1000", "pool", "sequential", ... *)
  runs : int;  (* measurement repetitions *)
  median_s : float;  (* median wall (or simulated) seconds *)
  min_s : float;
  counters : (string * float) list;  (* obs counters attached to this run *)
}

type file = {
  schema : string;
  created_unix : float;  (* seconds since epoch; 0.0 = unknown *)
  smoke : bool;
  host : (string * string) list;  (* free-form provenance: cores, ocaml, os *)
  results : result list;
  obs : Json.t;  (* full Metrics.to_json snapshot *)
}

let make ?(created_unix = 0.0) ~smoke ~host results =
  { schema = schema_version; created_unix; smoke; host; results; obs = Metrics.to_json () }

(* ------------------------------------------------------------------ JSON *)

let result_to_json r =
  Json.Obj
    [
      ("name", Json.String r.name);
      ("n", Json.Int r.n);
      ("procs", Json.Int r.procs);
      ("backend", Json.String r.backend);
      ("runs", Json.Int r.runs);
      ("median_s", Json.Float r.median_s);
      ("min_s", Json.Float r.min_s);
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.counters));
    ]

let to_json f =
  Json.Obj
    [
      ("schema", Json.String f.schema);
      ("created_unix", Json.Float f.created_unix);
      ("smoke", Json.Bool f.smoke);
      ("host", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) f.host));
      ("benchmarks", Json.List (List.map result_to_json f.results));
      ("obs", f.obs);
    ]

let ( let* ) = Option.bind

let result_of_json j =
  let* name = Json.mem_string "name" j in
  let* n = Json.mem_int "n" j in
  let* procs = Json.mem_int "procs" j in
  let* backend = Json.mem_string "backend" j in
  let* runs = Json.mem_int "runs" j in
  let* median_s = Json.mem_float "median_s" j in
  let* min_s = Json.mem_float "min_s" j in
  let counters =
    match Json.member "counters" j with
    | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) -> match Json.to_float_opt v with Some f -> Some (k, f) | None -> None)
          fields
    | _ -> []
  in
  Some { name; n; procs; backend; runs; median_s; min_s; counters }

let of_json j =
  match Json.mem_string "schema" j with
  | None -> Error "missing \"schema\" field"
  | Some schema when schema <> schema_version ->
      Error (Printf.sprintf "schema mismatch: file is %S, this tool reads %S" schema schema_version)
  | Some schema -> (
      match Json.member "benchmarks" j with
      | Some (Json.List items) ->
          let results = List.filter_map result_of_json items in
          if List.length results <> List.length items then
            Error "malformed benchmark entry (missing required field)"
          else
            Ok
              {
                schema;
                created_unix = Option.value ~default:0.0 (Json.mem_float "created_unix" j);
                smoke = Option.value ~default:false (Option.bind (Json.member "smoke" j) Json.to_bool_opt);
                host =
                  (match Json.member "host" j with
                  | Some (Json.Obj fields) ->
                      List.filter_map
                        (fun (k, v) ->
                          match Json.to_string_opt v with Some s -> Some (k, s) | None -> None)
                        fields
                  | _ -> []);
                results;
                obs = Option.value ~default:Json.Null (Json.member "obs" j);
              }
      | _ -> Error "missing or malformed \"benchmarks\" array")

let save path f = Json.to_file path (to_json f)

let load path =
  match Json.of_file path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok j -> ( match of_json j with Error e -> Error (Printf.sprintf "%s: %s" path e) | Ok f -> Ok f)

(* ------------------------------------------------------------- statistics *)

let median a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Artifact.median: empty";
  let s = Array.copy a in
  Array.sort compare s;
  if n mod 2 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.0

let min_of a = Array.fold_left Float.min a.(0) a

(* ------------------------------------------------------------- comparison *)

type verdict = Regression | Improvement | Unchanged

type comparison = {
  bench : string;
  old_s : float;
  new_s : float;
  ratio : float;  (* new / old; > 1 is slower *)
  verdict : verdict;
}

(* Compare matched benchmarks by median time.  [threshold] is the relative
   slowdown tolerated before a Regression verdict (0.25 = 25% slower);
   speedups beyond the same margin are flagged Improvement so baseline
   staleness is visible too. *)
let compare_files ?(threshold = 0.25) ~(baseline : file) ~(candidate : file) () =
  let comparisons =
    List.filter_map
      (fun (r_new : result) ->
        match List.find_opt (fun (r : result) -> r.name = r_new.name) baseline.results with
        | None -> None
        | Some r_old ->
            let ratio = if r_old.median_s > 0.0 then r_new.median_s /. r_old.median_s else 1.0 in
            let verdict =
              if ratio > 1.0 +. threshold then Regression
              else if ratio < 1.0 -. threshold then Improvement
              else Unchanged
            in
            Some { bench = r_new.name; old_s = r_old.median_s; new_s = r_new.median_s; ratio; verdict })
      candidate.results
  in
  let only_in a b =
    List.filter_map
      (fun (r : result) ->
        if List.exists (fun (r' : result) -> r'.name = r.name) b then None else Some r.name)
      a
  in
  let missing = only_in baseline.results candidate.results in
  let added = only_in candidate.results baseline.results in
  (comparisons, missing, added)

let any_regression comparisons = List.exists (fun c -> c.verdict = Regression) comparisons

(* -------------------------------------------------------- strict sim gate *)

(* Entries from the discrete-event simulator are bit-deterministic: same
   code + same seed produce identical times and counters, and the
   artifact writer prints floats so they re-read exactly.  Drift on a sim
   entry is therefore a semantic change, never measurement noise —
   bench_diff --sim-strict hard-fails on any of it (including entries
   appearing or vanishing, which would otherwise let a renamed benchmark
   dodge the gate), while wall-clock entries keep the threshold
   comparison.

   The gate keys on the exact simulator family — ["sim"],
   ["sim-ap1000"] (the calibrated bench backend) and ["sim-p{N}"] (the
   differential oracle's per-procs labels) — not on a "sim" prefix: a
   prefix match would silently pull any future backend that happens to
   start with those letters (["simd-avx2"], ["sim-procs"], ...) under
   the hard gate — or worse, let an author *think* an entry is gated
   when its real-time numbers make it flake. *)
let is_sim_backend (r : result) =
  let digits_from i s =
    String.length s > i
    && (let ok = ref true in
        String.iteri (fun j c -> if j >= i && not ('0' <= c && c <= '9') then ok := false) s;
        !ok)
  in
  match r.backend with
  | "sim" | "sim-ap1000" -> true
  | b -> String.length b > 5 && String.sub b 0 5 = "sim-p" && digits_from 5 b

type strict_violation = { sv_bench : string; sv_reason : string }

let strict_sim_violations ~(baseline : file) ~(candidate : file) =
  let out = ref [] in
  let push bench reason = out := { sv_bench = bench; sv_reason = reason } :: !out in
  let fs v = Printf.sprintf "%.17g" v in
  let find name (rs : result list) = List.find_opt (fun r -> r.name = name) rs in
  List.iter
    (fun (r_old : result) ->
      if is_sim_backend r_old then
        match find r_old.name candidate.results with
        | None -> push r_old.name "deterministic sim entry removed"
        | Some r_new ->
            if r_new.backend <> r_old.backend then
              push r_old.name
                (Printf.sprintf "backend changed: %s -> %s" r_old.backend r_new.backend)
            else begin
              if (r_new.n, r_new.procs) <> (r_old.n, r_old.procs) then
                push r_old.name
                  (Printf.sprintf "shape changed: n=%d procs=%d -> n=%d procs=%d" r_old.n
                     r_old.procs r_new.n r_new.procs);
              if r_new.median_s <> r_old.median_s then
                push r_old.name
                  (Printf.sprintf "median_s drifted: %s -> %s" (fs r_old.median_s)
                     (fs r_new.median_s));
              if r_new.min_s <> r_old.min_s then
                push r_old.name
                  (Printf.sprintf "min_s drifted: %s -> %s" (fs r_old.min_s) (fs r_new.min_s));
              List.iter
                (fun (k, v_old) ->
                  match List.assoc_opt k r_new.counters with
                  | None -> push r_old.name (Printf.sprintf "counter %s removed" k)
                  | Some v_new ->
                      if v_new <> v_old then
                        push r_old.name
                          (Printf.sprintf "counter %s drifted: %s -> %s" k (fs v_old) (fs v_new)))
                r_old.counters;
              List.iter
                (fun (k, _) ->
                  if not (List.mem_assoc k r_old.counters) then
                    push r_old.name (Printf.sprintf "counter %s added" k))
                r_new.counters
            end)
    baseline.results;
  List.iter
    (fun (r_new : result) ->
      if is_sim_backend r_new && find r_new.name baseline.results = None then
        push r_new.name "deterministic sim entry added without a baseline refresh")
    candidate.results;
  List.sort (fun a b -> compare (a.sv_bench, a.sv_reason) (b.sv_bench, b.sv_reason)) !out
