(* Structured runtime metrics: named counters, log2-bucketed histograms and
   aggregated span timers, behind one global enable switch.

   Design constraints, in priority order:

   1. Disabled mode must cost nothing measurable on hot paths.  Every
      recording operation is gated on a single atomic load + branch; no
      allocation, no clock read, no hash lookup happens when disabled.
      Metric handles are created once (at module init of the instrumented
      code), so the registry hashtable is never touched per event.
   2. Enabled mode must be safe under domains.  Counters shard their cells
      by domain id to keep increments mostly contention-free; histograms
      use plain atomics (they record coarse events — whole-array skeleton
      calls, simulator runs — not per-element work).
   3. Everything is exportable: {!snapshot} and {!to_json} give a stable
      machine-readable view consumed by the bench harness. *)

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let n_shards = 16 (* power of two *)

type counter = { c_name : string; cells : int Atomic.t array }

let n_buckets = 63

type histogram = {
  h_name : string;
  h_unit : string;
  buckets : int Atomic.t array;
  count : int Atomic.t;
  sum : int Atomic.t;
  min_v : int Atomic.t;
  max_v : int Atomic.t;
}

type item = C of counter | H of histogram

(* ------------------------------------------------------------- registry *)

let registry : (string, item) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let fresh_counter name = { c_name = name; cells = Array.init n_shards (fun _ -> Atomic.make 0) }

let fresh_histogram ~unit_ name =
  {
    h_name = name;
    h_unit = unit_;
    buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
    count = Atomic.make 0;
    sum = Atomic.make 0;
    min_v = Atomic.make max_int;
    max_v = Atomic.make min_int;
  }

(* Creation is idempotent by name so that module-initialisation order never
   matters and tests can re-make handles freely. *)
let make_counter name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (C c) -> c
      | Some (H _) -> invalid_arg (Printf.sprintf "Obs: %S is a histogram, not a counter" name)
      | None ->
          let c = fresh_counter name in
          Hashtbl.replace registry name (C c);
          c)

let make_histogram ?(unit_ = "") name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (H h) -> h
      | Some (C _) -> invalid_arg (Printf.sprintf "Obs: %S is a counter, not a histogram" name)
      | None ->
          let h = fresh_histogram ~unit_ name in
          Hashtbl.replace registry name (H h);
          h)

(* ------------------------------------------------------------- counters *)

module Counter = struct
  type t = counter

  let make = make_counter

  let shard c =
    (* Domain ids are small consecutive ints; land keeps it in range. *)
    c.cells.((Domain.self () :> int) land (n_shards - 1))

  let add c n = if enabled () then ignore (Atomic.fetch_and_add (shard c) n)
  let incr c = add c 1

  let value c = Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.cells
  let name c = c.c_name
  let reset c = Array.iter (fun cell -> Atomic.set cell 0) c.cells
end

(* ----------------------------------------------------------- histograms *)

module Histogram = struct
  type t = histogram

  let make = make_histogram

  (* Bucket 0 holds the value 0; bucket i >= 1 holds [2^(i-1), 2^i - 1]. *)
  let bucket_of v =
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    min (bits 0 v) (n_buckets - 1)

  let bucket_bounds i = if i = 0 then (0, 0) else (1 lsl (i - 1), (1 lsl i) - 1)

  let rec atomic_min a v =
    let cur = Atomic.get a in
    if v < cur && not (Atomic.compare_and_set a cur v) then atomic_min a v

  let rec atomic_max a v =
    let cur = Atomic.get a in
    if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

  let record c v =
    if enabled () then begin
      let v = if v < 0 then 0 else v in
      Atomic.incr c.buckets.(bucket_of v);
      Atomic.incr c.count;
      ignore (Atomic.fetch_and_add c.sum v);
      atomic_min c.min_v v;
      atomic_max c.max_v v
    end

  let name h = h.h_name
  let unit_ h = h.h_unit
  let count h = Atomic.get h.count
  let sum h = Atomic.get h.sum
  let min_value h = if count h = 0 then 0 else Atomic.get h.min_v
  let max_value h = if count h = 0 then 0 else Atomic.get h.max_v
  let mean h = if count h = 0 then 0.0 else float_of_int (sum h) /. float_of_int (count h)

  let nonzero_buckets h =
    let acc = ref [] in
    for i = n_buckets - 1 downto 0 do
      let n = Atomic.get h.buckets.(i) in
      if n > 0 then
        let lo, hi = bucket_bounds i in
        acc := (lo, hi, n) :: !acc
    done;
    !acc

  let reset h =
    Array.iter (fun b -> Atomic.set b 0) h.buckets;
    Atomic.set h.count 0;
    Atomic.set h.sum 0;
    Atomic.set h.min_v max_int;
    Atomic.set h.max_v min_int

  (* Quantile estimate from the log2 buckets: walk to the bucket holding
     the ceil(q*count)-th sample and interpolate linearly inside it,
     clamping the edge buckets to the exactly-tracked min/max.  The log2
     layout bounds the error at one bucket width; reports that need exact
     percentiles (the service latency report) keep raw samples instead. *)
  let quantile_of ~count ~min_v ~max_v ~buckets q =
    if q < 0.0 || q > 1.0 then invalid_arg "Obs: quantile must be in [0,1]";
    if count = 0 then 0.0
    else begin
      let target = Float.max 1.0 (q *. float_of_int count) in
      let rec find seen = function
        | [] -> float_of_int max_v
        | (lo, hi, n) :: rest ->
            if float_of_int (seen + n) >= target then begin
              let lo = max lo min_v and hi = min hi max_v in
              let frac = (target -. float_of_int seen) /. float_of_int n in
              float_of_int lo +. (frac *. float_of_int (hi - lo))
            end
            else find (seen + n) rest
      in
      find 0 buckets
    end

  let quantile h q =
    quantile_of ~count:(count h) ~min_v:(min_value h) ~max_v:(max_value h)
      ~buckets:(nonzero_buckets h) q
end

(* ---------------------------------------------------------------- spans *)

module Span = struct
  type t = { hist : histogram }

  type token = int64
  (* Start timestamp in ns; [disabled_token] means "span was entered while
     observability was off", so the matching exit is a no-op even if the
     switch flipped in between. *)

  let disabled_token = Int64.min_int

  let make name = { hist = make_histogram ~unit_:"ns" name }

  let depth_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

  let depth () = !(Domain.DLS.get depth_key)

  let enter _t =
    if enabled () then begin
      Stdlib.incr (Domain.DLS.get depth_key);
      Clock.now_ns ()
    end
    else disabled_token

  let exit t token =
    if token <> disabled_token then begin
      Stdlib.decr (Domain.DLS.get depth_key);
      Histogram.record t.hist (Clock.ns_since token)
    end

  let timed t f =
    if not (enabled ()) then f ()
    else begin
      let token = enter t in
      Fun.protect ~finally:(fun () -> exit t token) f
    end

  let name t = Histogram.name t.hist
  let count t = Histogram.count t.hist
  let total_ns t = Histogram.sum t.hist
end

(* ------------------------------------------------------------ snapshots *)

type histogram_snapshot = {
  hs_unit : string;
  hs_count : int;
  hs_sum : int;
  hs_min : int;
  hs_max : int;
  hs_mean : float;
  hs_buckets : (int * int * int) list;  (** (lo, hi, count), nonzero only *)
}

type value = Counter_v of int | Histogram_v of histogram_snapshot

let snapshot_quantile hs q =
  Histogram.quantile_of ~count:hs.hs_count ~min_v:hs.hs_min ~max_v:hs.hs_max
    ~buckets:hs.hs_buckets q

let snapshot_histogram h =
  {
    hs_unit = Histogram.unit_ h;
    hs_count = Histogram.count h;
    hs_sum = Histogram.sum h;
    hs_min = Histogram.min_value h;
    hs_max = Histogram.max_value h;
    hs_mean = Histogram.mean h;
    hs_buckets = Histogram.nonzero_buckets h;
  }

let snapshot () =
  let items =
    with_registry (fun () -> Hashtbl.fold (fun name item acc -> (name, item) :: acc) registry [])
  in
  items
  |> List.map (fun (name, item) ->
         match item with
         | C c -> (name, Counter_v (Counter.value c))
         | H h -> (name, Histogram_v (snapshot_histogram h)))
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counter_value name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with Some (C c) -> Some (Counter.value c) | _ -> None)

let histogram_snapshot name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (H h) -> Some (snapshot_histogram h)
      | _ -> None)

let reset () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ item -> match item with C c -> Counter.reset c | H h -> Histogram.reset h)
        registry)

let to_json () =
  let counters, histograms =
    List.partition_map
      (fun (name, v) ->
        match v with
        | Counter_v n -> Either.Left (name, Json.Int n)
        | Histogram_v hs ->
            Either.Right
              ( name,
                Json.Obj
                  [
                    ("unit", Json.String hs.hs_unit);
                    ("count", Json.Int hs.hs_count);
                    ("sum", Json.Int hs.hs_sum);
                    ("min", Json.Int hs.hs_min);
                    ("max", Json.Int hs.hs_max);
                    ("mean", Json.Float hs.hs_mean);
                    ( "buckets",
                      Json.List
                        (List.map
                           (fun (lo, hi, n) -> Json.List [ Json.Int lo; Json.Int hi; Json.Int n ])
                           hs.hs_buckets) );
                  ] ))
      (snapshot ())
  in
  Json.Obj [ ("counters", Json.Obj counters); ("histograms", Json.Obj histograms) ]
