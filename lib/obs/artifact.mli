(** Machine-readable benchmark artifacts ([BENCH_results.json]) and the
    baseline-comparison logic behind [tools/bench_diff]. *)

val schema_version : string
(** ["scl-bench/1"]. Bumped on any breaking schema change; {!load} refuses
    mismatched files so stale baselines fail loudly. *)

type result = {
  name : string;  (** unique key, e.g. ["hyperquicksort/sim"] *)
  n : int;  (** problem size *)
  procs : int;  (** processors / workers *)
  backend : string;  (** ["sim-ap1000"], ["pool"], ["sequential"], ... *)
  runs : int;  (** measurement repetitions *)
  median_s : float;  (** median wall (or simulated) seconds over [runs] *)
  min_s : float;
  counters : (string * float) list;  (** obs counters attached to this run *)
}

type file = {
  schema : string;
  created_unix : float;  (** seconds since epoch; [0.0] = unknown *)
  smoke : bool;
  host : (string * string) list;
  results : result list;
  obs : Json.t;  (** full {!Metrics.to_json} snapshot at emission time *)
}

val make : ?created_unix:float -> smoke:bool -> host:(string * string) list -> result list -> file
(** Assemble a file, snapshotting the current obs metrics. *)

val to_json : file -> Json.t
val of_json : Json.t -> (file, string) Stdlib.result
val save : string -> file -> unit
val load : string -> (file, string) Stdlib.result

val median : float array -> float
val min_of : float array -> float

(** {1 Comparison} *)

type verdict = Regression | Improvement | Unchanged

type comparison = {
  bench : string;
  old_s : float;
  new_s : float;
  ratio : float;  (** new / old; > 1 is slower *)
  verdict : verdict;
}

val compare_files :
  ?threshold:float ->
  baseline:file ->
  candidate:file ->
  unit ->
  comparison list * string list * string list
(** [(comparisons, missing, added)]: per matched benchmark a verdict
    ([threshold] is the tolerated relative slowdown, default 0.25), plus
    names only in the baseline ([missing]) and only in the candidate
    ([added]). *)

val any_regression : comparison list -> bool

(** {1 Strict deterministic gate}

    Simulator-backed entries are bit-deterministic: same code and seed
    produce identical times and counters, and floats survive the JSON
    round-trip exactly. Under [bench_diff --sim-strict] any drift on
    them is a hard failure. *)

val is_sim_backend : result -> bool
(** [true] when the entry's backend names the discrete-event simulator:
    exactly ["sim"], ["sim-ap1000"], or ["sim-p{N}"] with [N] digits.
    Deliberately not a prefix test — other backends whose names merely
    start with "sim" (["simd-avx2"], ["sim-procs"], a wall-clock procs
    label, ...) must not silently fall under the strict gate. *)

type strict_violation = {
  sv_bench : string;  (** benchmark name *)
  sv_reason : string;  (** what differed, human-readable *)
}

val strict_sim_violations : baseline:file -> candidate:file -> strict_violation list
(** Exact (bitwise) comparison of every sim-backed entry: median, min,
    shape and counters must be identical, and sim entries may not appear
    or vanish without a baseline refresh. Empty list = gate passes.
    Wall-clock entries are ignored here. *)
