(* Minimal JSON tree with a writer and a recursive-descent parser.

   The toolchain has no JSON library baked in, and the observability layer
   must both *emit* machine-readable artifacts (bench results, Chrome
   traces) and *read* them back (bench_diff, round-trip tests), so this
   module carries its own implementation.  It covers the full JSON grammar
   including string escapes and \uXXXX sequences (with surrogate pairs);
   non-finite floats are written as [null] since JSON has no encoding for
   them. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------- writing *)

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Printf.bprintf buf "\\u%04x" (Char.code c)
      | c -> Buffer.add_char buf c)
    s

(* Shortest decimal form that round-trips the exact float. *)
let float_str f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write ~pretty ~indent buf v =
  let pad n = if pretty then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_str f)
  | String s ->
      Buffer.add_char buf '"';
      escape_to buf s;
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (indent + 1);
          write ~pretty ~indent:(indent + 1) buf item)
        items;
      newline ();
      pad indent;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (indent + 1);
          Buffer.add_char buf '"';
          escape_to buf k;
          Buffer.add_string buf (if pretty then "\": " else "\":");
          write ~pretty ~indent:(indent + 1) buf item)
        fields;
      newline ();
      pad indent;
      Buffer.add_char buf '}'

let to_string ?(pretty = false) v =
  let buf = Buffer.create 1024 in
  write ~pretty ~indent:0 buf v;
  if pretty then Buffer.add_char buf '\n';
  Buffer.contents buf

let to_file ?(pretty = true) path v =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string ~pretty v))

(* ------------------------------------------------------------- parsing *)

exception Parse_error of int * string

type parser_state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (st.pos, msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st (Printf.sprintf "expected '%c', found '%c'" c c')
  | None -> fail st (Printf.sprintf "expected '%c', found end of input" c)

let expect_word st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "invalid literal (expected %s)" word)

(* Append a Unicode scalar value as UTF-8. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 st =
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail st "invalid hex digit in \\u escape"
  in
  if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
  let v =
    (digit st.src.[st.pos] lsl 12)
    lor (digit st.src.[st.pos + 1] lsl 8)
    lor (digit st.src.[st.pos + 2] lsl 4)
    lor digit st.src.[st.pos + 3]
  in
  st.pos <- st.pos + 4;
  v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        (match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                let u = hex4 st in
                if u >= 0xD800 && u <= 0xDBFF then begin
                  (* High surrogate: must be followed by \uDC00-\uDFFF. *)
                  expect st '\\';
                  expect st 'u';
                  let lo = hex4 st in
                  if lo < 0xDC00 || lo > 0xDFFF then fail st "unpaired surrogate"
                  else add_utf8 buf (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
                end
                else if u >= 0xDC00 && u <= 0xDFFF then fail st "unpaired surrogate"
                else add_utf8 buf u
            | c -> fail st (Printf.sprintf "invalid escape '\\%c'" c)));
        go ()
    | Some c when Char.code c < 0x20 -> fail st "unescaped control character in string"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  if peek st = Some '-' then advance st;
  let digits () =
    let d0 = st.pos in
    while (match peek st with Some '0' .. '9' -> true | _ -> false) do
      advance st
    done;
    if st.pos = d0 then fail st "malformed number"
  in
  digits ();
  if peek st = Some '.' then begin
    is_float := true;
    advance st;
    digits ()
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      digits ()
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then Float (float_of_string text)
  else match int_of_string_opt text with Some i -> Int i | None -> Float (float_of_string text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((k, v) :: acc)
          | _ -> fail st "expected ',' or '}' in object"
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']' in array"
        in
        List (items [])
      end
  | Some '"' -> String (parse_string st)
  | Some 't' -> expect_word st "true" (Bool true)
  | Some 'f' -> expect_word st "false" (Bool false)
  | Some 'n' -> expect_word st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then fail st "trailing garbage after JSON value";
    v
  with
  | v -> Ok v
  | exception Parse_error (pos, msg) -> Error (Printf.sprintf "at offset %d: %s" pos msg)

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error msg -> Error msg

(* ----------------------------------------------------------- accessors *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_list_opt = function List l -> Some l | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let mem_string key v = Option.bind (member key v) to_string_opt
let mem_int key v = Option.bind (member key v) to_int_opt
let mem_float key v = Option.bind (member key v) to_float_opt
