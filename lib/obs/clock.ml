(* Monotonic time source for span timers.

   bechamel's tiny C stub (clock_gettime(CLOCK_MONOTONIC)) is the only
   monotonic clock the image ships; wall clocks (Unix.gettimeofday) step
   under NTP and would corrupt span durations. *)

let now_ns () : int64 = Monotonic_clock.now ()

let ns_since (t0 : int64) : int = Int64.to_int (Int64.sub (now_ns ()) t0)

let ns_to_s ns = float_of_int ns *. 1e-9

let s_to_ns s = int_of_float (s *. 1e9)
