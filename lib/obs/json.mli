(** Minimal JSON tree: writer, parser, and accessors.

    Self-contained (the build image ships no JSON library). Non-finite
    floats are emitted as [null]; finite floats are written in the shortest
    decimal form that round-trips exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialise. [~pretty:true] indents by two spaces (stable across runs, so
    pretty artifacts diff cleanly in git). *)

val to_file : ?pretty:bool -> string -> t -> unit
(** [to_file path v] writes [v] to [path] (pretty by default). *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; the error carries a byte offset. *)

val of_file : string -> (t, string) result

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)

val to_list_opt : t -> t list option
val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_int_opt : t -> int option

val to_float_opt : t -> float option
(** Accepts both [Float] and [Int]. *)

val mem_string : string -> t -> string option
val mem_int : string -> t -> int option
val mem_float : string -> t -> float option
