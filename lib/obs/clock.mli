(** Monotonic clock (nanoseconds since an arbitrary origin). *)

val now_ns : unit -> int64

val ns_since : int64 -> int
(** Nanoseconds elapsed since an earlier {!now_ns} reading. *)

val ns_to_s : int -> float
val s_to_ns : float -> int
