(** Observability layer: structured metrics (counters, histograms, span
    timers), a self-contained JSON codec, and the machine-readable bench
    artifact schema.

    Everything is off by default — instrumented code pays one atomic load
    per event until {!enable} is called. The bench harness enables metrics,
    runs, then exports {!Metrics.to_json} into a [BENCH_results.json]
    artifact ({!Artifact}). *)

module Json = Json
module Clock = Clock
module Metrics = Metrics
module Artifact = Artifact

(* Flat aliases so instrumented code reads [Obs.Counter.incr c] and the
   global switch is [Obs.enable ()]. *)

module Counter = Metrics.Counter
module Histogram = Metrics.Histogram
module Span = Metrics.Span

let enabled = Metrics.enabled
let enable = Metrics.enable
let disable = Metrics.disable
let snapshot = Metrics.snapshot
let reset = Metrics.reset
let to_json = Metrics.to_json
