(** SCL — the Structured Coordination Language of Darlington, Guo, To &
    Yang (PPoPP 1995) as an OCaml combinator library.

    Parallel programs are built by composing sequential functions with
    three groups of skeletons:

    - {b Configuration skeletons} ({!Partition}, {!Partition2}, {!Config}):
      partition, align, distribution, redistribution, gather, split,
      combine.
    - {b Elementary skeletons} ({!Elementary}, {!Communication},
      {!Par_array2}): map, imap, fold, scan; rotate, rotate_row,
      rotate_col, brdcast, applybrdcast, send, fetch.
    - {b Computational skeletons} ({!Computational}): farm, SPMD,
      iterUntil, iterFor.

    Every skeleton takes an optional {!Exec.t} backend: {!Exec.sequential}
    (the defining semantics) or {!Exec.on_pool} (multicore). The simulated
    distributed-memory implementations live in the separate [scl_sim]
    library. *)

module Exec = Exec

module Par_array = struct
  include Par_array

  (* The unboxed numeric tier rides along here ([Par_array.Flat]); it is
     grafted in at this aggregation point because [Flat] needs [Partition]
     (which itself builds on the boxed [Par_array]). *)
  module Flat = Flat
end

module Flat = Flat
module Flat_exec = Flat_exec
module Par_array2 = Par_array2
module Partition = Partition
module Partition2 = Partition2
module Config = Config
module Elementary = Elementary
module Communication = Communication
module Computational = Computational
module Stream_skel = Stream_skel
module Nested = Nested

(* Flat aliases for the most common entry points, so quickstart code reads
   like the paper. *)

let map = Elementary.map
let imap = Elementary.imap
let fold = Elementary.fold
let scan = Elementary.scan
let map_fold = Elementary.map_fold
let map_scan = Elementary.map_scan
let map_compose = Elementary.map_compose
let rotate = Communication.rotate
let brdcast = Communication.brdcast
let applybrdcast = Communication.applybrdcast
let send = Communication.send
let fetch = Communication.fetch
let farm = Computational.farm
let spmd = Computational.spmd
let iter_until = Computational.iter_until
let iter_for = Computational.iter_for
let partition = Partition.apply
let gather = Config.gather
let align = Config.align
let split = Partition.split
let combine = Partition.combine
