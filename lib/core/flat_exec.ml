(* Flat-tier host execution: the unboxed counterpart of [Exec] over
   [Flat.float1] payloads.

   The boxed backends box every float element-wise — each [op] application
   allocates its result and every array slot is a pointer.  Here the
   payload is a C-layout Bigarray and the operator is a first-order
   description ([fun1]/[fun2]): a loop matches the operator ONCE and then
   runs a monomorphic [unsafe_get]/[unsafe_set] body, so a known primitive
   (Add, Scale c, ...) executes with no per-element closure call and no
   per-element allocation.  The escape hatches [Fun1]/[Fun2] accept
   arbitrary OCaml closures and pay the usual boxed calling convention —
   only unknown operators cost what the boxed tier costs everywhere.

   The pool scan is a Blelloch-style two-phase layout (the work-efficient
   discipline of the classic GPU scan): phase 1 reduces each chunk into an
   unboxed partials array WITHOUT touching the output, a sequential
   exclusive scan of the partials yields each chunk's carry-in, and phase 2
   downsweeps every chunk into the output exactly once with its carry
   folded into the first element.  Two data passes and one unboxed
   [float array] of per-chunk state — versus the boxed three-phase scan
   (local scans, option-boxed offsets, a third rewrite pass over the whole
   output).  Chunks partition by [Flat.sub_view] (O(1) window headers, no
   copying) and size by the pool's bytes-aware grain, so 8-byte floats get
   larger chunks than boxed values would.

   Bitwise discipline: every loop applies the operators in ascending index
   order, chunk results combine in chunk order, and a chunk's carry is
   folded left of its first element — the same element-order contract as
   the boxed skeletons, so on exactly-associative operators (the [Fn]
   float library: dyadic-exact fadd, fmax, fmin) flat and boxed results
   are bit-identical on both backends, which is how the property tests
   pin this module. *)

module A = Bigarray.Array1

type fun1 =
  | Id
  | Neg
  | Scale of float  (* x *. c *)
  | Offset of float  (* x +. c *)
  | Fun1 of (float -> float)

type fun2 = Add | Mul | Max | Min | Fun2 of (float -> float -> float)

let apply1 op x =
  match op with Id -> x | Neg -> -.x | Scale c -> x *. c | Offset c -> x +. c | Fun1 f -> f x

let apply2 op a b =
  match op with
  | Add -> a +. b
  | Mul -> a *. b
  | Max -> Float.max a b
  | Min -> Float.min a b
  | Fun2 f -> f a b

let fun1_name = function
  | Id -> "id"
  | Neg -> "neg"
  | Scale _ -> "scale"
  | Offset _ -> "offset"
  | Fun1 _ -> "fun1"

let fun2_name = function
  | Add -> "add"
  | Mul -> "mul"
  | Max -> "max"
  | Min -> "min"
  | Fun2 _ -> "fun2"

type t = {
  name : string;
  fmap : fun1 -> Flat.float1 -> Flat.float1;
  ffold : fun2 -> Flat.float1 -> float;  (* combine in index order; non-empty *)
  fscan : fun2 -> Flat.float1 -> Flat.float1;  (* inclusive prefix *)
  fmap_fold : fun1 -> fun2 -> Flat.float1 -> float;  (* ffold op (fmap f a), one pass *)
  fmap_scan : fun1 -> fun2 -> Flat.float1 -> Flat.float1;  (* fscan op (fmap f a), one pass *)
}

(* --- monomorphic range kernels -------------------------------------------

   The operator match sits OUTSIDE the loop; each arm is a closed loop
   whose body the compiler sees whole.  [apply1] calls inside the [fun2]
   arms are direct calls to a small known function — inlined, no closure,
   no boxing for the primitive [fun1] constructors. *)

let map_into op ~(src : Flat.float1) ~(dst : Flat.float1) ~lo ~hi =
  match op with
  | Id -> if src != dst then for i = lo to hi - 1 do A.unsafe_set dst i (A.unsafe_get src i) done
  | Neg -> for i = lo to hi - 1 do A.unsafe_set dst i (-.(A.unsafe_get src i)) done
  | Scale c -> for i = lo to hi - 1 do A.unsafe_set dst i (A.unsafe_get src i *. c) done
  | Offset c -> for i = lo to hi - 1 do A.unsafe_set dst i (A.unsafe_get src i +. c) done
  | Fun1 f -> for i = lo to hi - 1 do A.unsafe_set dst i (f (A.unsafe_get src i)) done

(* Reduce [lo, hi) with the map fused into the read; [lo < hi].  Tail
   recursion keeps the accumulator in a register (no [float ref] cell to
   re-box per iteration). *)
let map_reduce_range op1 op2 (a : Flat.float1) ~lo ~hi =
  let x0 = apply1 op1 (A.unsafe_get a lo) in
  match op2 with
  | Add ->
      let rec go i acc = if i >= hi then acc else go (i + 1) (acc +. apply1 op1 (A.unsafe_get a i)) in
      go (lo + 1) x0
  | Mul ->
      let rec go i acc = if i >= hi then acc else go (i + 1) (acc *. apply1 op1 (A.unsafe_get a i)) in
      go (lo + 1) x0
  | Max ->
      let rec go i acc =
        if i >= hi then acc else go (i + 1) (Float.max acc (apply1 op1 (A.unsafe_get a i)))
      in
      go (lo + 1) x0
  | Min ->
      let rec go i acc =
        if i >= hi then acc else go (i + 1) (Float.min acc (apply1 op1 (A.unsafe_get a i)))
      in
      go (lo + 1) x0
  | Fun2 f ->
      let rec go i acc = if i >= hi then acc else go (i + 1) (f acc (apply1 op1 (A.unsafe_get a i))) in
      go (lo + 1) x0

(* Inclusive scan of [lo, hi) into [dst], with the map fused into the read
   and the chunk's carry already folded into [first] (= the value of
   [dst.(lo)]).  The downsweep of the two-phase layout: each output slot
   is written exactly once. *)
let map_scan_into op1 op2 ~(src : Flat.float1) ~(dst : Flat.float1) ~lo ~hi ~first =
  A.unsafe_set dst lo first;
  match op2 with
  | Add ->
      for i = lo + 1 to hi - 1 do
        A.unsafe_set dst i (A.unsafe_get dst (i - 1) +. apply1 op1 (A.unsafe_get src i))
      done
  | Mul ->
      for i = lo + 1 to hi - 1 do
        A.unsafe_set dst i (A.unsafe_get dst (i - 1) *. apply1 op1 (A.unsafe_get src i))
      done
  | Max ->
      for i = lo + 1 to hi - 1 do
        A.unsafe_set dst i (Float.max (A.unsafe_get dst (i - 1)) (apply1 op1 (A.unsafe_get src i)))
      done
  | Min ->
      for i = lo + 1 to hi - 1 do
        A.unsafe_set dst i (Float.min (A.unsafe_get dst (i - 1)) (apply1 op1 (A.unsafe_get src i)))
      done
  | Fun2 f ->
      for i = lo + 1 to hi - 1 do
        A.unsafe_set dst i (f (A.unsafe_get dst (i - 1)) (apply1 op1 (A.unsafe_get src i)))
      done

(* --- observability (same discipline as Exec.instrument) ------------------ *)

let instrument e =
  let span prim = Obs.Span.make (Printf.sprintf "flat_exec.%s.%s" e.name prim) in
  let s_fmap = span "fmap"
  and s_ffold = span "ffold"
  and s_fscan = span "fscan"
  and s_fmap_fold = span "fmap_fold"
  and s_fmap_scan = span "fmap_scan" in
  let calls = Obs.Counter.make (Printf.sprintf "flat_exec.%s.calls" e.name) in
  {
    name = e.name;
    fmap =
      (fun op a ->
        Obs.Counter.incr calls;
        Obs.Span.timed s_fmap (fun () -> e.fmap op a));
    ffold =
      (fun op a ->
        Obs.Counter.incr calls;
        Obs.Span.timed s_ffold (fun () -> e.ffold op a));
    fscan =
      (fun op a ->
        Obs.Counter.incr calls;
        Obs.Span.timed s_fscan (fun () -> e.fscan op a));
    fmap_fold =
      (fun f op a ->
        Obs.Counter.incr calls;
        Obs.Span.timed s_fmap_fold (fun () -> e.fmap_fold f op a));
    fmap_scan =
      (fun f op a ->
        Obs.Counter.incr calls;
        Obs.Span.timed s_fmap_scan (fun () -> e.fmap_scan f op a));
  }

(* --- sequential backend (the defining semantics) ------------------------- *)

let seq_map_fold f op a =
  let n = Flat.length a in
  if n = 0 then invalid_arg "Flat_exec.ffold: empty array";
  map_reduce_range f op a ~lo:0 ~hi:n

let seq_map_scan f op a =
  let n = Flat.length a in
  let out = Flat.create Flat.float64 n in
  if n > 0 then map_scan_into f op ~src:a ~dst:out ~lo:0 ~hi:n ~first:(apply1 f (Flat.get a 0));
  out

let seq_map f a =
  let n = Flat.length a in
  let out = Flat.create Flat.float64 n in
  map_into f ~src:a ~dst:out ~lo:0 ~hi:n;
  out

let sequential =
  instrument
    {
      name = "sequential";
      fmap = seq_map;
      ffold = (fun op a -> seq_map_fold Id op a);
      fscan = (fun op a -> seq_map_scan Id op a);
      fmap_fold = seq_map_fold;
      fmap_scan = seq_map_scan;
    }

(* --- pool backend --------------------------------------------------------- *)

let on_pool pool =
  let open Runtime in
  (* Bytes-aware chunking: 8-byte elements get the 2 KiB floor, so small
     flat arrays run as one task instead of paying fork/join per 32
     elements of near-free loop body. *)
  let bounds_for n =
    let grain = Pool.grain_for_bytes pool ~elem_bytes:8 n in
    Exec.chunk_bounds n ((n + grain - 1) / grain)
  in
  let fmap op a =
    let n = Flat.length a in
    let out = Flat.create Flat.float64 n in
    if n > 0 then begin
      let bounds = bounds_for n in
      let nchunks = Array.length bounds - 1 in
      Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:nchunks (fun k ->
          let lo = bounds.(k) and hi = bounds.(k + 1) in
          let len = hi - lo in
          map_into op
            ~src:(Flat.sub_view a ~pos:lo ~len)
            ~dst:(Flat.sub_view out ~pos:lo ~len)
            ~lo:0 ~hi:len)
    end;
    out
  in
  (* Two-phase reduce: unboxed per-chunk partials, combined in chunk order
     (non-commutative [Fun2]s stay safe). *)
  let fmap_fold f op a =
    let n = Flat.length a in
    if n = 0 then invalid_arg "Flat_exec.ffold: empty array";
    let bounds = bounds_for n in
    let nchunks = Array.length bounds - 1 in
    if nchunks = 1 then map_reduce_range f op a ~lo:0 ~hi:n
    else begin
      let partials = Array.make nchunks 0.0 in
      Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:nchunks (fun k ->
          let lo = bounds.(k) and hi = bounds.(k + 1) in
          let chunk = Flat.sub_view a ~pos:lo ~len:(hi - lo) in
          Array.unsafe_set partials k (map_reduce_range f op chunk ~lo:0 ~hi:(hi - lo)));
      let rec go k acc =
        if k >= nchunks then acc else go (k + 1) (apply2 op acc (Array.unsafe_get partials k))
      in
      go 1 partials.(0)
    end
  in
  (* Two-phase Blelloch scan.  Phase 1 NEVER writes the output: each chunk
     reduces into one slot of the unboxed [partials] array.  The exclusive
     scan of the partials is sequential over nchunks values (tiny).  Phase
     2 downsweeps: chunk 0 scans plainly; chunk k >= 1 folds its carry
     into its first element and scans on — every output slot is written
     exactly once, two passes over the data in total.  [Exec.chunk_bounds]
     never produces an empty chunk, so every chunk has a first element and
     no option boxing is needed anywhere. *)
  let fmap_scan f op a =
    let n = Flat.length a in
    let out = Flat.create Flat.float64 n in
    if n > 0 then begin
      let bounds = bounds_for n in
      let nchunks = Array.length bounds - 1 in
      if nchunks = 1 then
        map_scan_into f op ~src:a ~dst:out ~lo:0 ~hi:n ~first:(apply1 f (Flat.get a 0))
      else begin
        (* Phase 1: local reduce per chunk into the partials array. *)
        let partials = Array.make nchunks 0.0 in
        Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:nchunks (fun k ->
            let lo = bounds.(k) and hi = bounds.(k + 1) in
            let chunk = Flat.sub_view a ~pos:lo ~len:(hi - lo) in
            Array.unsafe_set partials k (map_reduce_range f op chunk ~lo:0 ~hi:(hi - lo)));
        (* Exclusive scan of the partials, in place: after this,
           partials.(k) is chunk k's carry-in (undefined at k = 0, never
           read there). *)
        let carry = ref partials.(0) in
        for k = 1 to nchunks - 1 do
          let total = partials.(k) in
          partials.(k) <- !carry;
          carry := apply2 op !carry total
        done;
        (* Phase 2: downsweep each chunk with its carry folded into the
           first element. *)
        Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:nchunks (fun k ->
            let lo = bounds.(k) and hi = bounds.(k + 1) in
            let len = hi - lo in
            let src = Flat.sub_view a ~pos:lo ~len and dst = Flat.sub_view out ~pos:lo ~len in
            let x0 = apply1 f (Flat.get src 0) in
            let first = if k = 0 then x0 else apply2 op (Array.unsafe_get partials k) x0 in
            map_scan_into f op ~src ~dst ~lo:0 ~hi:len ~first)
      end
    end;
    out
  in
  instrument
    {
      name = "pool";
      fmap;
      ffold = (fun op a -> fmap_fold Id op a);
      fscan = (fun op a -> fmap_scan Id op a);
      fmap_fold;
      fmap_scan;
    }
