(** Flat-tier host execution backends: unboxed map/fold/scan (plus the
    fused forms) over {!Flat.float1} payloads.

    The operator is a first-order description rather than a bare closure:
    a kernel matches it once and runs a monomorphic
    [Bigarray.Array1.unsafe_get]/[unsafe_set] loop, so the known
    primitives execute with no per-element closure call and no
    per-element allocation. [Fun1]/[Fun2] are the escape hatches for
    arbitrary functions and pay the boxed calling convention per element.

    {!on_pool} chunks by {!Flat.sub_view} (O(1), copy-free) with the
    pool's bytes-aware grain ([Runtime.Pool.grain_for_bytes]); its scan is
    a Blelloch-style two-phase layout — per-chunk reduce into an unboxed
    partials array, a sequential exclusive scan of the partials, then one
    downsweep writing each output slot exactly once. Two data passes, no
    option boxing; the boxed three-phase scan pays a third full pass and
    an ['a option] per chunk.

    All loops apply operators in ascending index order and combine chunk
    results in chunk order, so on exactly-associative operators (the
    dyadic-exact [Transform.Fn] float library) results are bit-identical
    to the boxed [Scl] skeletons on both backends — the contract the
    property tests and diffcheck's host-flat legs pin. *)

type fun1 =
  | Id
  | Neg
  | Scale of float  (** [fun x -> x *. c] *)
  | Offset of float  (** [fun x -> x +. c] *)
  | Fun1 of (float -> float)  (** escape hatch: boxed per-element call *)

type fun2 =
  | Add
  | Mul
  | Max
  | Min
  | Fun2 of (float -> float -> float)  (** escape hatch: boxed per-element call *)

val apply1 : fun1 -> float -> float
val apply2 : fun2 -> float -> float -> float
val fun1_name : fun1 -> string
val fun2_name : fun2 -> string

type t = {
  name : string;
  fmap : fun1 -> Flat.float1 -> Flat.float1;
  ffold : fun2 -> Flat.float1 -> float;
      (** combine in index order. @raise Invalid_argument on empty input *)
  fscan : fun2 -> Flat.float1 -> Flat.float1;  (** inclusive prefix *)
  fmap_fold : fun1 -> fun2 -> Flat.float1 -> float;
      (** [ffold op (fmap f a)] in one pass, no intermediate array *)
  fmap_scan : fun1 -> fun2 -> Flat.float1 -> Flat.float1;
      (** [fscan op (fmap f a)] in one pass, no intermediate array *)
}

val sequential : t
(** The defining semantics: one left-to-right pass per kernel. *)

val on_pool : Runtime.Pool.t -> t
(** Work-stealing pool backend: sub-view chunking, bytes-aware grain,
    two-phase reduce and Blelloch two-phase scan. *)
