(* Unboxed flat arrays: the Bigarray-backed counterpart of [Par_array] for
   numeric payloads.

   A [Flat.t] is a C-layout [Bigarray.Array1] window.  Bigarray storage
   lives outside the OCaml heap, so a flat value is never scanned by the
   GC, [sub_view] is an O(1) header allocation sharing the same storage
   (the configuration-skeleton fast path, like [Par_array.sub_view]), and
   the machine layer can move a view between ranks as one bulk message
   without marshalling ([Engine.send_slice]).

   The partition fast paths mirror [Partition.apply]/[unapply] exactly:
   Block parts are copy-free sub-views; Cyclic and Block_cyclic are
   closed-form strided copies (no per-element assign dispatch); Custom
   patterns fall back to the generic assign-driven pass.  The boxed
   [Partition] implementation is the executable specification the flat
   paths are property-tested against. *)

type ('a, 'b) t = ('a, 'b, Bigarray.c_layout) Bigarray.Array1.t
type float1 = (float, Bigarray.float64_elt) t
type int1 = (int, Bigarray.int_elt) t

let float64 = Bigarray.float64
let int = Bigarray.int

let create (kind : ('a, 'b) Bigarray.kind) n : ('a, 'b) t =
  if n < 0 then invalid_arg "Flat.create: negative length";
  Bigarray.Array1.create kind Bigarray.c_layout n

let make kind n v =
  let a = create kind n in
  Bigarray.Array1.fill a v;
  a

let length (a : ('a, 'b) t) = Bigarray.Array1.dim a
let get (a : ('a, 'b) t) i = Bigarray.Array1.get a i
let set (a : ('a, 'b) t) i v = Bigarray.Array1.set a i v
let fill (a : ('a, 'b) t) v = Bigarray.Array1.fill a v
let kind (a : ('a, 'b) t) = Bigarray.Array1.kind a

(* O(1) zero-copy window sharing storage with the source — mutating either
   aliases the other, the same no-mutation-after-handoff discipline as
   [Par_array.unsafe_of_array] and the engines' zero-copy sends. *)
let sub_view (a : ('a, 'b) t) ~pos ~len : ('a, 'b) t = Bigarray.Array1.sub a pos len

let blit ~(src : ('a, 'b) t) ~(dst : ('a, 'b) t) = Bigarray.Array1.blit src dst

let copy (a : ('a, 'b) t) : ('a, 'b) t =
  let c = create (kind a) (length a) in
  Bigarray.Array1.blit a c;
  c

let init kind n f =
  let a = create kind n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set a i (f i)
  done;
  a

let of_array kind (src : 'a array) : ('a, 'b) t =
  let n = Array.length src in
  let a = create kind n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set a i (Array.unsafe_get src i)
  done;
  a

let to_array (a : ('a, 'b) t) : 'a array =
  let n = length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n (Bigarray.Array1.unsafe_get a 0) in
    for i = 1 to n - 1 do
      Array.unsafe_set out i (Bigarray.Array1.unsafe_get a i)
    done;
    out
  end

let of_float_array (src : float array) : float1 = of_array float64 src
let to_float_array (a : float1) : float array = to_array a

let equal (a : ('a, 'b) t) (b : ('a, 'b) t) =
  length a = length b
  &&
  let n = length a in
  let rec go i = i >= n || (Bigarray.Array1.unsafe_get a i = Bigarray.Array1.unsafe_get b i && go (i + 1)) in
  go 0

(* --- partition fast paths ------------------------------------------------- *)

(* The generic assign-driven pass: the executable specification, and the
   Custom-pattern implementation.  One counting pass (via [part_sizes]),
   one dealing pass. *)
let apply_generic pat (a : ('a, 'b) t) : ('a, 'b) t array =
  let n = length a in
  let sizes = Partition.part_sizes pat ~n in
  let pieces = Array.map (fun s -> create (kind a) s) sizes in
  let cursors = Array.make (Array.length sizes) 0 in
  for i = 0 to n - 1 do
    let p = Partition.assign pat ~n i in
    Bigarray.Array1.unsafe_set pieces.(p) cursors.(p) (Bigarray.Array1.unsafe_get a i);
    cursors.(p) <- cursors.(p) + 1
  done;
  pieces

let bad_sizes () = invalid_arg "Flat.unapply: part sizes inconsistent with pattern"

let check_parts pat pieces =
  if Array.length pieces <> Partition.parts pat then
    invalid_arg
      (Printf.sprintf "Flat.unapply: %s expects %d parts, got %d" (Partition.name pat)
         (Partition.parts pat) (Array.length pieces))

let total_length pieces = Array.fold_left (fun acc p -> acc + length p) 0 pieces

let check_sizes pat pieces n =
  let sizes = Partition.part_sizes pat ~n in
  Array.iteri (fun k s -> if length pieces.(k) <> s then bad_sizes ()) sizes

let unapply_generic pat (pieces : ('a, 'b) t array) ~(kind : ('a, 'b) Bigarray.kind) :
    ('a, 'b) t =
  check_parts pat pieces;
  let n = total_length pieces in
  check_sizes pat pieces n;
  let out = create kind n in
  let cursors = Array.make (Array.length pieces) 0 in
  for i = 0 to n - 1 do
    let p = Partition.assign pat ~n i in
    Bigarray.Array1.unsafe_set out i (Bigarray.Array1.unsafe_get pieces.(p) cursors.(p));
    cursors.(p) <- cursors.(p) + 1
  done;
  out

(* [apply pat a]: split into parts.  Block parts are O(1) copy-free views of
   [a] (shared storage — the flat counterpart of [Partition.split]'s
   zero-copy Block path); the other regular patterns are single-pass
   strided copies. *)
let apply pat (a : ('a, 'b) t) : ('a, 'b) t array =
  let n = length a in
  match pat with
  | Partition.Block p ->
      if p <= 0 then invalid_arg "Flat.apply: block pattern has no parts";
      let b = Partition.block_bounds ~n ~p in
      Array.init p (fun k -> sub_view a ~pos:b.(k) ~len:(b.(k + 1) - b.(k)))
  | Partition.Cyclic p ->
      if p <= 0 then invalid_arg "Flat.apply: cyclic pattern has no parts";
      Array.init p (fun k ->
          let len = Partition.cyclic_size ~n ~p k in
          init (kind a) len (fun j -> Bigarray.Array1.unsafe_get a (k + (j * p))))
  | Partition.Block_cyclic { parts = p; block } ->
      if p <= 0 || block <= 0 then invalid_arg "Flat.apply: bad block_cyclic pattern";
      let sizes = Partition.part_sizes pat ~n in
      let pieces = Array.map (fun s -> create (kind a) s) sizes in
      let cursors = Array.make p 0 in
      let nblocks = (n + block - 1) / block in
      for b = 0 to nblocks - 1 do
        let src = b * block in
        let len = min block (n - src) in
        let k = b mod p in
        Bigarray.Array1.blit (sub_view a ~pos:src ~len) (sub_view pieces.(k) ~pos:cursors.(k) ~len);
        cursors.(k) <- cursors.(k) + len
      done;
      pieces
  | Partition.Custom _ -> apply_generic pat a

(* [unapply pat pieces]: the exact inverse of [apply] for any pattern (the
   flat gather).  Always materialises a fresh array — piece provenance is
   not tracked, so contiguity of Block views cannot be assumed. *)
let unapply pat (pieces : ('a, 'b) t array) ~(kind : ('a, 'b) Bigarray.kind) : ('a, 'b) t =
  check_parts pat pieces;
  let n = total_length pieces in
  match pat with
  | Partition.Block p ->
      let b = Partition.block_bounds ~n ~p in
      for k = 0 to p - 1 do
        if length pieces.(k) <> b.(k + 1) - b.(k) then bad_sizes ()
      done;
      let out = create kind n in
      for k = 0 to p - 1 do
        let len = length pieces.(k) in
        if len > 0 then Bigarray.Array1.blit pieces.(k) (sub_view out ~pos:b.(k) ~len)
      done;
      out
  | Partition.Cyclic p ->
      check_sizes pat pieces n;
      let out = create kind n in
      for k = 0 to p - 1 do
        let piece = pieces.(k) in
        for j = 0 to length piece - 1 do
          Bigarray.Array1.unsafe_set out (k + (j * p)) (Bigarray.Array1.unsafe_get piece j)
        done
      done;
      out
  | Partition.Block_cyclic { parts = p; block } ->
      check_sizes pat pieces n;
      let out = create kind n in
      let cursors = Array.make p 0 in
      let nblocks = (n + block - 1) / block in
      for b = 0 to nblocks - 1 do
        let dst = b * block in
        let len = min block (n - dst) in
        let k = b mod p in
        Bigarray.Array1.blit (sub_view pieces.(k) ~pos:cursors.(k) ~len) (sub_view out ~pos:dst ~len);
        cursors.(k) <- cursors.(k) + len
      done;
      out
  | Partition.Custom _ -> unapply_generic pat pieces ~kind

(* --- int flat tier -------------------------------------------------------- *)

(* The sort-family local kernels over unboxed native-int storage: the
   [Seq_kernels] procedures (SEQ_QUICKSORT / MIDVALUE / SPLIT / MERGE)
   re-expressed on [int1] so the hyperquicksort local phases stop boxing
   keys.  Same algorithms, same tie-breaking, so outputs are
   value-identical to the boxed kernels (pinned by property tests) —
   and [split_at] improves on the boxed rendering: the two halves are
   O(1) sub-views of the input, not [Array.sub] copies. *)
module Int = struct
  type t = int1

  let insertion_cutoff = 16

  (* In-place three-way quicksort with insertion sort below the cutoff —
     the [Seq_kernels.quicksort] algorithm on unboxed storage. *)
  let sort (a : t) : unit =
    let swap i j =
      let t = Bigarray.Array1.unsafe_get a i in
      Bigarray.Array1.unsafe_set a i (Bigarray.Array1.unsafe_get a j);
      Bigarray.Array1.unsafe_set a j t
    in
    let insertion lo hi =
      for i = lo + 1 to hi do
        let x = Bigarray.Array1.unsafe_get a i in
        let j = ref (i - 1) in
        while !j >= lo && Bigarray.Array1.unsafe_get a !j > x do
          Bigarray.Array1.unsafe_set a (!j + 1) (Bigarray.Array1.unsafe_get a !j);
          decr j
        done;
        Bigarray.Array1.unsafe_set a (!j + 1) x
      done
    in
    let rec qs lo hi =
      if hi - lo < insertion_cutoff then insertion lo hi
      else begin
        (* median-of-three pivot *)
        let mid = lo + ((hi - lo) / 2) in
        if Bigarray.Array1.unsafe_get a mid < Bigarray.Array1.unsafe_get a lo then swap mid lo;
        if Bigarray.Array1.unsafe_get a hi < Bigarray.Array1.unsafe_get a lo then swap hi lo;
        if Bigarray.Array1.unsafe_get a hi < Bigarray.Array1.unsafe_get a mid then swap hi mid;
        let pivot = Bigarray.Array1.unsafe_get a mid in
        (* three-way partition (Dutch national flag) *)
        let lt = ref lo and gt = ref hi and i = ref lo in
        while !i <= !gt do
          let x = Bigarray.Array1.unsafe_get a !i in
          if x < pivot then begin
            swap !lt !i;
            incr lt;
            incr i
          end
          else if x > pivot then begin
            swap !i !gt;
            decr gt
          end
          else incr i
        done;
        qs lo (!lt - 1);
        qs (!gt + 1) hi
      end
    in
    if length a > 1 then qs 0 (length a - 1)

  let sorted_copy (a : t) : t =
    let c = copy a in
    sort c;
    c

  (* MIDVALUE: the middle element of an already-sorted chunk. *)
  let midvalue (a : t) : int option = if length a = 0 then None else Some (get a (length a / 2))

  (* SPLIT at a pivot by binary search; both halves are O(1) zero-copy
     sub-views of the input (the boxed kernel pays two [Array.sub]
     copies here). *)
  let split_at (pivot : int) (a : t) : t * t =
    let n = length a in
    let rec bs lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if get a mid <= pivot then bs (mid + 1) hi else bs lo mid
      end
    in
    let cut = bs 0 n in
    (sub_view a ~pos:0 ~len:cut, sub_view a ~pos:cut ~len:(n - cut))

  (* MERGE two sorted chunks into a fresh one (left-biased on ties, like
     the boxed kernel — irrelevant for int keys, kept for symmetry). *)
  let merge (a : t) (b : t) : t =
    let na = length a and nb = length b in
    let out = create int (na + nb) in
    let i = ref 0 and j = ref 0 in
    for k = 0 to na + nb - 1 do
      if
        !i < na
        && (!j >= nb || Bigarray.Array1.unsafe_get a !i <= Bigarray.Array1.unsafe_get b !j)
      then begin
        Bigarray.Array1.unsafe_set out k (Bigarray.Array1.unsafe_get a !i);
        incr i
      end
      else begin
        Bigarray.Array1.unsafe_set out k (Bigarray.Array1.unsafe_get b !j);
        incr j
      end
    done;
    out

  let is_sorted (a : t) : bool =
    let n = length a in
    let rec go i = i >= n || (Bigarray.Array1.unsafe_get a (i - 1) <= Bigarray.Array1.unsafe_get a i && go (i + 1)) in
    go 1

  let of_int_array (src : int array) : t = of_array int src
  let to_int_array (a : t) : int array = to_array a
end
