(** [ParArray index α]: the paper's distributed array. Element [i]
    conceptually resides on virtual processor [i]; nesting (['a t t])
    expresses processor groups. Values are immutable from the skeleton
    level: all skeletons return fresh arrays. *)

type 'a t

val of_array : 'a array -> 'a t
(** Copies. *)

val unsafe_of_array : 'a array -> 'a t
(** No copy; the caller must not mutate the array afterwards. *)

val to_array : 'a t -> 'a array
(** Copies. *)

val unsafe_to_array : 'a t -> 'a array
(** No copy when the ParArray spans its whole base array (the common case);
    a {!sub_view} materialises. The caller must not mutate the result. *)

val of_list : 'a list -> 'a t
val to_list : 'a t -> 'a list
val init : int -> (int -> 'a) -> 'a t
val make : int -> 'a -> 'a t
val length : 'a t -> int

val get : 'a t -> int -> 'a
(** @raise Invalid_argument out of bounds. *)

val set : 'a t -> int -> 'a -> 'a t
(** Functional update. *)

val sub : 'a t -> pos:int -> len:int -> 'a t
(** Copies. *)

val sub_view : 'a t -> pos:int -> len:int -> 'a t
(** O(1) zero-copy slice sharing storage with the source — the
    configuration-skeleton fast path ({!Partition.split} on [Block]
    patterns). Sound because ParArrays are immutable at the skeleton level;
    the [unsafe_*] no-mutation contracts extend to every view of the same
    base. *)

val is_full : 'a t -> bool
(** [true] when the ParArray spans its whole base array, i.e.
    {!unsafe_to_array} is zero-copy (exposed for tests and benchmarks). *)

val concat : 'a t list -> 'a t
val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
