(** One-dimensional partition patterns (the paper's [Partition_pattern]).

    [apply] divides a sequential array into a ParArray of sub-arrays;
    [unapply] is its exact inverse (the paper's [gather]). Within each part
    elements keep source order, so [unapply t (apply t a) = a] for every
    pattern and array. *)

type t =
  | Block of int  (** balanced contiguous blocks over [p] parts *)
  | Cyclic of int  (** element [i] to part [i mod p] *)
  | Block_cyclic of { parts : int; block : int }
      (** blocks of [block] elements dealt round-robin *)
  | Custom of { parts : int; name : string; assign : int -> int }
      (** arbitrary assignment; must land in [\[0, parts)] *)

val parts : t -> int
val name : t -> string

val assign : t -> n:int -> int -> int
(** Owning part of element [i] in an array of length [n]. *)

val part_sizes : t -> n:int -> int array

val block_bounds : n:int -> p:int -> int array
(** Balanced-block boundaries: part [k] of a [Block p] pattern owns source
    range [\[b.(k), b.(k+1))]. Exposed because every block-distributed
    layer (the flat tier, [scl_sim]'s Dvec, the segmented executor) must
    agree on this geometry. *)

val cyclic_size : n:int -> p:int -> int -> int
(** Elements owned by part [k] under [Cyclic p]: [k, k+p, k+2p, …] below
    [n]. *)

val apply : t -> 'a array -> 'a array Par_array.t
(** The paper's [partition]. Parts may be empty when [n < parts].

    [Block], [Cyclic] and [Block_cyclic] take specialised single-pass fast
    paths ([Array.sub] / strided copies / whole-block blits); [Custom]
    falls back to {!apply_generic}. *)

val unapply : t -> 'a array Par_array.t -> 'a array
(** The paper's [gather]. @raise Invalid_argument if the part sizes are
    inconsistent with the pattern. Regular patterns validate the sizes
    against their closed-form layout and then copy without any per-element
    [assign]. *)

val apply_generic : t -> 'a array -> 'a array Par_array.t
(** The generic assign-driven two-pass implementation — the executable
    specification every {!apply} fast path must agree with (exposed for
    property tests and benchmarks). *)

val unapply_generic : t -> 'a array Par_array.t -> 'a array
(** Generic inverse, same role as {!apply_generic}. *)

val split : t -> 'a Par_array.t -> 'a Par_array.t Par_array.t
(** The paper's [split]: regroup a ParArray into a nested ParArray —
    dynamic processor grouping. For [Block] patterns the groups are O(1)
    zero-copy {!Par_array.sub_view}s of the source. *)

val combine : 'a Par_array.t Par_array.t -> 'a Par_array.t
(** The paper's [combine]: flatten a nested ParArray (left inverse of
    [split] for [Block]; in general a flattening). *)
