(* Two-dimensional partition patterns, built as a pair of 1-D patterns: one
   over row indices, one over column indices.  This uniformly covers the
   paper's row_block, col_block, row_col_block, row_cyclic and col_cyclic
   (and any block/cyclic mixture, like HPF's distribute directives).

   [apply] cuts an r x c matrix into a gr x gc ParArray2 of sub-matrices;
   [unapply] is its exact inverse. *)

type t = { row_pat : Partition.t; col_pat : Partition.t }

let make ~row_pat ~col_pat = { row_pat; col_pat }

(* The paper's named patterns. *)
let row_block p = { row_pat = Partition.Block p; col_pat = Partition.Block 1 }
let col_block p = { row_pat = Partition.Block 1; col_pat = Partition.Block p }
let row_col_block p q = { row_pat = Partition.Block p; col_pat = Partition.Block q }
let row_cyclic p = { row_pat = Partition.Cyclic p; col_pat = Partition.Block 1 }
let col_cyclic p = { row_pat = Partition.Block 1; col_pat = Partition.Cyclic p }

let parts t = (Partition.parts t.row_pat, Partition.parts t.col_pat)

let name t =
  Printf.sprintf "2d(%s x %s)" (Partition.name t.row_pat) (Partition.name t.col_pat)

(* Indices of the source rows/cols owned by each part, in order.  All the
   paper's named 2-D patterns combine Block and Cyclic 1-D patterns, whose
   owned sets are closed-form — only a Custom row/col pattern pays the
   generic per-index assign pass. *)
let owned pat ~n =
  let parts = Partition.parts pat in
  match pat with
  | Partition.Block p ->
      let sizes = Partition.part_sizes pat ~n in
      let start = Array.make p 0 in
      for k = 1 to p - 1 do
        start.(k) <- start.(k - 1) + sizes.(k - 1)
      done;
      Array.init p (fun k -> Array.init sizes.(k) (fun j -> start.(k) + j))
  | Partition.Cyclic p ->
      let sizes = Partition.part_sizes pat ~n in
      Array.init p (fun k -> Array.init sizes.(k) (fun j -> k + (j * p)))
  | Partition.Block_cyclic _ | Partition.Custom _ ->
      let buckets = Array.make parts [] in
      for i = n - 1 downto 0 do
        let p = Partition.assign pat ~n i in
        buckets.(p) <- i :: buckets.(p)
      done;
      Array.map Array.of_list buckets

let apply t (m : 'a Par_array2.t) : 'a Par_array2.t Par_array2.t =
  let r = Par_array2.rows m and c = Par_array2.cols m in
  let row_owned = owned t.row_pat ~n:r and col_owned = owned t.col_pat ~n:c in
  let gr, gc = parts t in
  Par_array2.init ~rows:gr ~cols:gc (fun a b ->
      let ri = row_owned.(a) and ci = col_owned.(b) in
      Par_array2.init ~rows:(Array.length ri) ~cols:(Array.length ci) (fun i j ->
          Par_array2.get m ri.(i) ci.(j)))

let unapply t (pieces : 'a Par_array2.t Par_array2.t) : 'a Par_array2.t =
  let gr, gc = parts t in
  if Par_array2.rows pieces <> gr || Par_array2.cols pieces <> gc then
    invalid_arg "Partition2.unapply: grid shape mismatch";
  let r =
    let sum = ref 0 in
    for a = 0 to gr - 1 do
      sum := !sum + Par_array2.rows (Par_array2.get pieces a 0)
    done;
    !sum
  in
  let c =
    let sum = ref 0 in
    for b = 0 to gc - 1 do
      sum := !sum + Par_array2.cols (Par_array2.get pieces 0 b)
    done;
    !sum
  in
  let row_owned = owned t.row_pat ~n:r and col_owned = owned t.col_pat ~n:c in
  (* Inverse maps: source row -> (part, offset). *)
  let row_home = Array.make r (0, 0) and col_home = Array.make c (0, 0) in
  Array.iteri (fun a idxs -> Array.iteri (fun off i -> row_home.(i) <- (a, off)) idxs) row_owned;
  Array.iteri (fun b idxs -> Array.iteri (fun off j -> col_home.(j) <- (b, off)) idxs) col_owned;
  Par_array2.init ~rows:r ~cols:c (fun i j ->
      let a, oi = row_home.(i) and b, oj = col_home.(j) in
      let piece = Par_array2.get pieces a b in
      if oi >= Par_array2.rows piece || oj >= Par_array2.cols piece then
        invalid_arg "Partition2.unapply: piece sizes inconsistent with pattern";
      Par_array2.get piece oi oj)
