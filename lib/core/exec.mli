(** Execution backends for SCL skeletons.

    Skeletons are written once against this record of primitive
    data-parallel loops; passing {!sequential} gives the reference
    semantics, {!on_pool} runs the same skeleton on the multicore
    work-stealing pool.

    The fused primitives ([pmap_reduce], [pmap_scan], [pmap2]) are the
    execution-layer counterpart of the transformation rules: compositions
    like [fold op . map f] run as a single pass with no intermediate array,
    so a pipeline rewritten by [Transform.Rewrite] pays the cost the fusion
    rules promise. Each fused primitive is semantically equal to its
    composed form (checked by the property suite and [tools/diffcheck]). *)

type t = {
  name : string;
  pmap : 'a 'b. ('a -> 'b) -> 'a array -> 'b array;
  pmapi : 'a 'b. (int -> 'a -> 'b) -> 'a array -> 'b array;
  pinit : 'a. int -> (int -> 'a) -> 'a array;
  preduce : 'a. ('a -> 'a -> 'a) -> 'a array -> 'a;
      (** Reduce a non-empty array with an associative operator, combining
          in index order (safe for non-commutative operators).
          @raise Invalid_argument on an empty array. *)
  pscan : 'a. ('a -> 'a -> 'a) -> 'a array -> 'a array;
      (** Inclusive prefix: [[| x0; op x0 x1; ... |]]. An empty array yields
          an empty array on every backend (locked cross-backend by the
          differential oracle in [tools/diffcheck]). *)
  piter : 'a. ('a -> unit) -> 'a array -> unit;
  pmap_reduce : 'a 'b. ('a -> 'b) -> ('b -> 'b -> 'b) -> 'a array -> 'b;
      (** [pmap_reduce f op a = preduce op (pmap f a)] in one pass with no
          intermediate array. @raise Invalid_argument on an empty array. *)
  pmap_scan : 'a 'b. ('a -> 'b) -> ('b -> 'b -> 'b) -> 'a array -> 'b array;
      (** [pmap_scan f op a = pscan op (pmap f a)] in one pass with no
          intermediate array; each element is mapped exactly once. *)
  pmap2 : 'a 'b 'c. ('b -> 'c) -> ('a -> 'b) -> 'a array -> 'c array;
      (** [pmap2 f g a = pmap f (pmap g a)] in one traversal. *)
}

val sequential : t
(** Reference backend: plain [Array] operations. *)

val on_pool : Runtime.Pool.t -> t
(** Multicore backend over a work-stealing pool. Reduce and scan use
    two-phase chunked algorithms that preserve combination order; chunk
    counts follow the pool's size-aware grain heuristic
    ({!Runtime.Pool.grain_for}), so small arrays run as a single task. *)

val instrument : t -> t
(** Wrap each primitive in an aggregated [Obs] span
    (["exec.<backend>.<prim>"], ns) and a per-backend call counter
    (["exec.<backend>.calls"]). {!sequential} and {!on_pool} are already
    instrumented; with observability disabled (the default) the wrapper
    costs one atomic load and branch per whole-array call. *)

val chunk_bounds : int -> int -> int array
(** [chunk_bounds n k] are the [min n k + 1] boundaries of balanced
    contiguous chunks of [0..n-1] (exposed for tests). *)
