(* One-dimensional partition patterns: the paper's
   [partition : Partition_pattern -> SeqArray -> ParArray SeqArray].

   A pattern maps each element index of the source array to the part
   (virtual processor) that owns it; within a part, elements keep their
   source order.  [unapply] is the exact inverse of [apply] for any
   pattern, which is what the paper's [gather] relies on.

   Layout algebra: for the regular patterns (Block / Cyclic / Block_cyclic)
   the sizes and the source position of every element are closed-form in
   (n, pattern), so [apply]/[unapply] specialise to Array.sub / Array.blit
   strided copies — one pass, no per-element closure dispatch and no
   counting pre-pass.  The generic assign-driven two-pass implementation is
   kept (and exposed) both for Custom patterns and as the executable
   specification the fast paths are property-tested against. *)

type t =
  | Block of int  (* balanced contiguous blocks *)
  | Cyclic of int  (* round-robin single elements *)
  | Block_cyclic of { parts : int; block : int }  (* round-robin blocks *)
  | Custom of { parts : int; name : string; assign : int -> int }

let parts = function
  | Block p | Cyclic p -> p
  | Block_cyclic { parts; _ } -> parts
  | Custom { parts; _ } -> parts

let name = function
  | Block p -> Printf.sprintf "block(%d)" p
  | Cyclic p -> Printf.sprintf "cyclic(%d)" p
  | Block_cyclic { parts; block } -> Printf.sprintf "block_cyclic(%d,%d)" parts block
  | Custom { name; _ } -> name

let check t =
  if parts t <= 0 then invalid_arg (Printf.sprintf "Partition: %s has no parts" (name t));
  match t with
  | Block_cyclic { block; _ } when block <= 0 -> invalid_arg "Partition: block size must be positive"
  | Block _ | Cyclic _ | Block_cyclic _ | Custom _ -> ()

(* Part of element [i]; the pattern is assumed well-formed ([check]ed once
   by the caller) so hot loops pay no per-element validation. *)
let assign_unchecked t ~n i =
  if i < 0 || i >= n then invalid_arg "Partition.assign: index out of range";
  match t with
  | Block p ->
      (* First [r] blocks have size [q+1], the rest [q]. *)
      let q = n / p and r = n mod p in
      if i < r * (q + 1) then i / (q + 1) else if q = 0 then r else r + ((i - (r * (q + 1))) / q)
  | Cyclic p -> i mod p
  | Block_cyclic { parts; block } -> i / block mod parts
  | Custom { assign; parts; name } ->
      let a = assign i in
      if a < 0 || a >= parts then
        invalid_arg (Printf.sprintf "Partition %s: element %d assigned to invalid part %d" name i a);
      a

let assign t ~n i =
  check t;
  assign_unchecked t ~n i

(* Balanced-block boundaries: part [k] owns [b.(k), b.(k+1)). *)
let block_bounds ~n ~p =
  let q = n / p and r = n mod p in
  Array.init (p + 1) (fun k -> (k * q) + min k r)

(* Elements of part [k] under Cyclic p: k, k+p, k+2p, ... below n. *)
let cyclic_size ~n ~p k = if k >= n then 0 else ((n - k - 1) / p) + 1

let part_sizes t ~n =
  check t;
  match t with
  | Block p ->
      let b = block_bounds ~n ~p in
      Array.init p (fun k -> b.(k + 1) - b.(k))
  | Cyclic p -> Array.init p (fun k -> cyclic_size ~n ~p k)
  | Block_cyclic { parts; block } ->
      let sizes = Array.make parts 0 in
      let nblocks = (n + block - 1) / block in
      for b = 0 to nblocks - 1 do
        let p = b mod parts in
        sizes.(p) <- sizes.(p) + min block (n - (b * block))
      done;
      sizes
  | Custom _ ->
      let sizes = Array.make (parts t) 0 in
      for i = 0 to n - 1 do
        let a = assign_unchecked t ~n i in
        sizes.(a) <- sizes.(a) + 1
      done;
      sizes

(* --- generic assign-driven paths (the executable specification) ---------- *)

let apply_generic t a =
  check t;
  let n = Array.length a in
  (* Parts may be empty when n < parts; the n = 0 case is handled up front
     because a.(0) does not exist to seed the piece arrays. *)
  if n = 0 then Par_array.unsafe_of_array (Array.make (parts t) [||])
  else begin
    let sizes = part_sizes t ~n in
    let pieces = Array.map (fun s -> Array.make s a.(0)) sizes in
    let cursors = Array.make (parts t) 0 in
    for i = 0 to n - 1 do
      let p = assign_unchecked t ~n i in
      pieces.(p).(cursors.(p)) <- a.(i);
      cursors.(p) <- cursors.(p) + 1
    done;
    Par_array.unsafe_of_array pieces
  end

let bad_sizes () = invalid_arg "Partition.unapply: part sizes inconsistent with pattern"

let check_unapply_parts t pieces =
  if Par_array.length pieces <> parts t then
    invalid_arg
      (Printf.sprintf "Partition.unapply: %s expects %d parts, got %d" (name t) (parts t)
         (Par_array.length pieces))

let unapply_generic t pieces =
  check t;
  check_unapply_parts t pieces;
  let pieces = Par_array.unsafe_to_array pieces in
  let n = Array.fold_left (fun acc p -> acc + Array.length p) 0 pieces in
  if n = 0 then [||]
  else begin
    (* Seed value: any element, to initialise the output array. *)
    let seed =
      let rec find k =
        if k >= Array.length pieces then invalid_arg "Partition.unapply: impossible"
        else if Array.length pieces.(k) > 0 then pieces.(k).(0)
        else find (k + 1)
      in
      find 0
    in
    let out = Array.make n seed in
    let cursors = Array.make (parts t) 0 in
    for i = 0 to n - 1 do
      let p = assign_unchecked t ~n i in
      if cursors.(p) >= Array.length pieces.(p) then bad_sizes ();
      out.(i) <- pieces.(p).(cursors.(p));
      cursors.(p) <- cursors.(p) + 1
    done;
    Array.iteri (fun p c -> if c <> Array.length pieces.(p) then bad_sizes ()) cursors;
    out
  end

(* --- specialised fast paths ----------------------------------------------- *)

let apply t a =
  check t;
  let n = Array.length a in
  match t with
  | Block p ->
      (* One Array.sub per part: a single copy pass, no assign calls. *)
      let b = block_bounds ~n ~p in
      Par_array.unsafe_of_array (Array.init p (fun k -> Array.sub a b.(k) (b.(k + 1) - b.(k))))
  | Cyclic p ->
      (* Strided gather: part k is a.(k), a.(k+p), ... *)
      Par_array.unsafe_of_array
        (Array.init p (fun k -> Array.init (cyclic_size ~n ~p k) (fun j -> a.(k + (j * p)))))
  | Block_cyclic { parts = p; block } ->
      if n = 0 then Par_array.unsafe_of_array (Array.make p [||])
      else begin
        let sizes = part_sizes t ~n in
        let pieces = Array.map (fun s -> Array.make s a.(0)) sizes in
        let cursors = Array.make p 0 in
        (* Blit whole source blocks round-robin instead of dealing elements. *)
        let nblocks = (n + block - 1) / block in
        for b = 0 to nblocks - 1 do
          let src = b * block in
          let len = min block (n - src) in
          let k = b mod p in
          Array.blit a src pieces.(k) cursors.(k) len;
          cursors.(k) <- cursors.(k) + len
        done;
        Par_array.unsafe_of_array pieces
      end
  | Custom _ -> apply_generic t a

let unapply t pieces =
  check t;
  check_unapply_parts t pieces;
  match t with
  | Block p ->
      (* Sizes determine the layout outright: validate against the balanced
         block sizes, then the inverse is a plain concatenation. *)
      let pieces = Par_array.unsafe_to_array pieces in
      let n = Array.fold_left (fun acc q -> acc + Array.length q) 0 pieces in
      let b = block_bounds ~n ~p in
      for k = 0 to p - 1 do
        if Array.length pieces.(k) <> b.(k + 1) - b.(k) then bad_sizes ()
      done;
      Array.concat (Array.to_list pieces)
  | Cyclic p ->
      let pieces = Par_array.unsafe_to_array pieces in
      let n = Array.fold_left (fun acc q -> acc + Array.length q) 0 pieces in
      for k = 0 to p - 1 do
        if Array.length pieces.(k) <> cyclic_size ~n ~p k then bad_sizes ()
      done;
      if n = 0 then [||]
      else begin
        let out = Array.make n pieces.(0).(0) in
        for k = 0 to p - 1 do
          let piece = pieces.(k) in
          for j = 0 to Array.length piece - 1 do
            out.(k + (j * p)) <- piece.(j)
          done
        done;
        out
      end
  | Block_cyclic { parts = p; block } ->
      let pieces = Par_array.unsafe_to_array pieces in
      let n = Array.fold_left (fun acc q -> acc + Array.length q) 0 pieces in
      let sizes = part_sizes t ~n in
      for k = 0 to p - 1 do
        if Array.length pieces.(k) <> sizes.(k) then bad_sizes ()
      done;
      if n = 0 then [||]
      else begin
        let seed =
          let rec find k = if Array.length pieces.(k) > 0 then pieces.(k).(0) else find (k + 1) in
          find 0
        in
        let out = Array.make n seed in
        let cursors = Array.make p 0 in
        let nblocks = (n + block - 1) / block in
        for b = 0 to nblocks - 1 do
          let dst = b * block in
          let len = min block (n - dst) in
          let k = b mod p in
          Array.blit pieces.(k) cursors.(k) out dst len;
          cursors.(k) <- cursors.(k) + len
        done;
        out
      end
  | Custom _ -> unapply_generic t pieces

(* [split] regroups a ParArray's elements (not a SeqArray's): the paper uses
   it to form nested configurations — processor groups. *)
let split t pa =
  check t;
  match t with
  | Block p ->
      (* Copy-free: each group is an O(1) view into the source ParArray. *)
      let n = Par_array.length pa in
      let b = block_bounds ~n ~p in
      Par_array.unsafe_of_array
        (Array.init p (fun k -> Par_array.sub_view pa ~pos:b.(k) ~len:(b.(k + 1) - b.(k))))
  | Cyclic _ | Block_cyclic _ | Custom _ ->
      let arr = Par_array.unsafe_to_array pa in
      let grouped = apply t arr in
      Par_array.unsafe_of_array
        (Array.map Par_array.unsafe_of_array (Par_array.unsafe_to_array grouped))

let combine nested = Par_array.concat (Par_array.to_list nested)
