(** Elementary skeletons (paper Section 2.2): data-parallel map / imap /
    fold / scan over ParArrays.

    [fold] and [scan] require an associative operator — with a
    non-associative one "the result is undefined" in the paper; here the
    backends combine in index order, so associativity is the exact
    requirement. *)

val map : ?exec:Exec.t -> ('a -> 'b) -> 'a Par_array.t -> 'b Par_array.t
(** [map f <x0..xn> = <f x0 .. f xn>] — broadcast a task to all elements. *)

val imap : ?exec:Exec.t -> (int -> 'a -> 'b) -> 'a Par_array.t -> 'b Par_array.t
(** [imap f <x0..xn> = <f 0 x0 .. f n xn>] — map with the element index. *)

val fold : ?exec:Exec.t -> ('a -> 'a -> 'a) -> 'a Par_array.t -> 'a
(** Tree reduction. @raise Invalid_argument on empty input. *)

val scan : ?exec:Exec.t -> ('a -> 'a -> 'a) -> 'a Par_array.t -> 'a Par_array.t
(** Inclusive parallel prefix: [<x0, x0+x1, ..., x0+...+xn>]. *)

val iter : ?exec:Exec.t -> ('a -> unit) -> 'a Par_array.t -> unit

val map_fold : ?exec:Exec.t -> ('b -> 'b -> 'b) -> ('a -> 'b) -> 'a Par_array.t -> 'b
(** [map_fold op f pa = fold op (map f pa)] in a single pass with no
    intermediate ParArray — the executable form of the map/fold fusion
    rule. @raise Invalid_argument on empty input. *)

val map_scan :
  ?exec:Exec.t -> ('b -> 'b -> 'b) -> ('a -> 'b) -> 'a Par_array.t -> 'b Par_array.t
(** [map_scan op f pa = scan op (map f pa)] in a single pass; each element
    is mapped exactly once. *)

val map_compose : ?exec:Exec.t -> ('b -> 'c) -> ('a -> 'b) -> 'a Par_array.t -> 'c Par_array.t
(** [map_compose f g pa = map f (map g pa)] in one traversal — the
    executable form of the map/map fusion rule. *)

val zip_with :
  ?exec:Exec.t -> ('a -> 'b -> 'c) -> 'a Par_array.t -> 'b Par_array.t -> 'c Par_array.t
(** Pointwise combination of two aligned ParArrays. *)

val fold_with_unit : ?exec:Exec.t -> ('a -> 'a -> 'a) -> 'a -> 'a Par_array.t -> 'a
(** Like {!fold} but total: returns the unit on empty input. *)

val scan_exclusive : ?exec:Exec.t -> ('a -> 'a -> 'a) -> 'a -> 'a Par_array.t -> 'a Par_array.t
(** Exclusive prefix seeded with the unit. *)
