(* The paper's ParArray: a distributed array whose element [i] conceptually
   lives on (virtual) processor [i].

   The representation is a window [off, off+len) over a host array, so a
   contiguous slice (a Block partition part, a processor group) is an O(1)
   *view* that shares the base storage instead of a copy.  ParArrays are
   immutable from the skeleton level, which is what makes the aliasing
   sound; the only mutation doors are the [unsafe_*] conversions, whose
   contracts forbid writing through them.  Which machine the elements
   actually live on is the business of the execution backend (multicore
   pool) or of the simulator templates in [scl_sim].  Nested parallelism is
   direct: ['a t t] is a ParArray of ParArrays, the paper's processor
   groups. *)

type 'a t = { base : 'a array; off : int; len : int }

let full base = { base; off = 0; len = Array.length base }
let is_full t = t.off = 0 && t.len = Array.length t.base
let of_array a = full (Array.copy a)
let unsafe_of_array base = full base
let to_array t = Array.sub t.base t.off t.len

(* Zero-copy only when the window spans the whole base array (the common
   case); a proper view has to materialise because callers index the result
   from 0. *)
let unsafe_to_array t = if is_full t then t.base else Array.sub t.base t.off t.len

let init n f = full (Array.init n f)
let make n v = full (Array.make n v)
let length t = t.len

let get t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Par_array.get: index %d out of bounds [0,%d)" i t.len);
  t.base.(t.off + i)

let set t i v =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Par_array.set: index %d out of bounds [0,%d)" i t.len);
  full (Array.init t.len (fun j -> if j = i then v else t.base.(t.off + j)))

let equal eq a b =
  a.len = b.len
  &&
  let rec go i = i >= a.len || (eq a.base.(a.off + i) b.base.(b.off + i) && go (i + 1)) in
  go 0

let pp pp_elem ppf t =
  Format.fprintf ppf "@[<hov 1><%a>@]"
    (Format.pp_print_array ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_elem)
    (unsafe_to_array t)

let to_list t = Array.to_list (unsafe_to_array t)
let of_list l = full (Array.of_list l)

let concat ts =
  match ts with
  | [ t ] -> t (* singleton: nothing to join, keep the (possibly) shared base *)
  | ts -> full (Array.concat (List.map to_array ts))

let check_range t pos len who =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg (who ^ ": bad range")

let sub t ~pos ~len =
  check_range t pos len "Par_array.sub";
  full (Array.sub t.base (t.off + pos) len)

(* O(1): shares storage with [t]. Sound because ParArrays are immutable
   from the skeleton level; do not mutate the base through [unsafe_*]. *)
let sub_view t ~pos ~len =
  check_range t pos len "Par_array.sub_view";
  { base = t.base; off = t.off + pos; len }
