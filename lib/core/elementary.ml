(* Elementary skeletons (paper Section 2.2): the data-parallel operators
   map, imap, fold, scan over ParArrays.  Each takes an execution backend;
   the sequential backend is the defining semantics. *)

let map ?(exec = Exec.sequential) f pa =
  Par_array.unsafe_of_array (exec.Exec.pmap f (Par_array.unsafe_to_array pa))

let imap ?(exec = Exec.sequential) f pa =
  Par_array.unsafe_of_array (exec.Exec.pmapi f (Par_array.unsafe_to_array pa))

let fold ?(exec = Exec.sequential) op pa =
  if Par_array.length pa = 0 then invalid_arg "Elementary.fold: empty ParArray";
  exec.Exec.preduce op (Par_array.unsafe_to_array pa)

let scan ?(exec = Exec.sequential) op pa =
  Par_array.unsafe_of_array (exec.Exec.pscan op (Par_array.unsafe_to_array pa))

let iter ?(exec = Exec.sequential) f pa = exec.Exec.piter f (Par_array.unsafe_to_array pa)

(* Fused compositions: one pass over the data, no intermediate ParArray.
   Semantically [map_fold op f = fold op . map f] etc.; the property suite
   checks the agreement on both backends. *)

let map_fold ?(exec = Exec.sequential) op f pa =
  if Par_array.length pa = 0 then invalid_arg "Elementary.map_fold: empty ParArray";
  exec.Exec.pmap_reduce f op (Par_array.unsafe_to_array pa)

let map_scan ?(exec = Exec.sequential) op f pa =
  Par_array.unsafe_of_array (exec.Exec.pmap_scan f op (Par_array.unsafe_to_array pa))

let map_compose ?(exec = Exec.sequential) f g pa =
  Par_array.unsafe_of_array (exec.Exec.pmap2 f g (Par_array.unsafe_to_array pa))

let zip_with ?(exec = Exec.sequential) f a b =
  if Par_array.length a <> Par_array.length b then
    invalid_arg "Elementary.zip_with: length mismatch";
  let bb = Par_array.unsafe_to_array b in
  imap ~exec (fun i x -> f x bb.(i)) a

(* fold over an empty-able array with an explicit unit. *)
let fold_with_unit ?(exec = Exec.sequential) op unit_v pa =
  if Par_array.length pa = 0 then unit_v else fold ~exec op pa

(* Exclusive scan derived from the inclusive one: <u, x0, x0+x1, ...>
   truncated to the input length. *)
let scan_exclusive ?(exec = Exec.sequential) op unit_v pa =
  let n = Par_array.length pa in
  if n = 0 then pa
  else begin
    let inc = scan ~exec op pa in
    Par_array.init n (fun i -> if i = 0 then unit_v else Par_array.get inc (i - 1))
  end
