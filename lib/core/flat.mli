(** Unboxed flat arrays: [Bigarray]-backed numeric storage for the fast
    payload tier.

    A [Flat.t] is a C-layout [Bigarray.Array1] window: storage lives
    outside the OCaml heap (never scanned by the GC), {!sub_view} is an
    O(1) copy-free window onto the same storage, and the machine layer can
    send a view between ranks as one bulk message without marshalling
    ([Engine.send_slice]).

    Views alias: mutating a view mutates the base. The skeleton-level
    discipline is the same as [Par_array]'s [unsafe_*] contract — once a
    view has been handed off (sent, partitioned copy-free), the holder of
    the base must not mutate the overlapping window until a synchronising
    exchange with the receiver. *)

type ('a, 'b) t = ('a, 'b, Bigarray.c_layout) Bigarray.Array1.t

type float1 = (float, Bigarray.float64_elt) t
(** Unboxed 64-bit float vector — the numeric-workload payload type. *)

type int1 = (int, Bigarray.int_elt) t
(** Unboxed native-int vector. *)

val float64 : (float, Bigarray.float64_elt) Bigarray.kind
val int : (int, Bigarray.int_elt) Bigarray.kind

val create : ('a, 'b) Bigarray.kind -> int -> ('a, 'b) t
(** Uninitialised storage. @raise Invalid_argument on negative length. *)

val make : ('a, 'b) Bigarray.kind -> int -> 'a -> ('a, 'b) t
val init : ('a, 'b) Bigarray.kind -> int -> (int -> 'a) -> ('a, 'b) t
val length : ('a, 'b) t -> int
val get : ('a, 'b) t -> int -> 'a
val set : ('a, 'b) t -> int -> 'a -> unit
val fill : ('a, 'b) t -> 'a -> unit
val kind : ('a, 'b) t -> ('a, 'b) Bigarray.kind

val sub_view : ('a, 'b) t -> pos:int -> len:int -> ('a, 'b) t
(** O(1) zero-copy window sharing storage with the source. *)

val blit : src:('a, 'b) t -> dst:('a, 'b) t -> unit
val copy : ('a, 'b) t -> ('a, 'b) t

val of_array : ('a, 'b) Bigarray.kind -> 'a array -> ('a, 'b) t
val to_array : ('a, 'b) t -> 'a array
val of_float_array : float array -> float1
val to_float_array : float1 -> float array
val equal : ('a, 'b) t -> ('a, 'b) t -> bool

(** {1 Partitioning}

    Closed-form counterparts of {!Partition.apply}/[unapply], sharing the
    same fast-path discipline: Block parts are O(1) copy-free sub-views,
    Cyclic/Block_cyclic are single-pass strided copies, Custom falls back
    to the generic assign-driven pass. The boxed [Partition] paths are the
    executable specification these are property-tested against. *)

val apply : Partition.t -> ('a, 'b) t -> ('a, 'b) t array
(** Split into parts. Block parts are views of the input (shared
    storage). *)

val unapply : Partition.t -> ('a, 'b) t array -> kind:('a, 'b) Bigarray.kind -> ('a, 'b) t
(** Exact inverse of {!apply}; always a fresh array. [~kind] seeds the
    output so empty inputs need no witness element.
    @raise Invalid_argument if part sizes are inconsistent. *)

val apply_generic : Partition.t -> ('a, 'b) t -> ('a, 'b) t array
(** Assign-driven specification path (exposed for property tests). *)

val unapply_generic :
  Partition.t -> ('a, 'b) t array -> kind:('a, 'b) Bigarray.kind -> ('a, 'b) t

(** {1 Int tier}

    The sort-family local kernels ([Seq_kernels]'s SEQ_QUICKSORT /
    MIDVALUE / SPLIT / MERGE) over unboxed native-int storage. Same
    algorithms and tie-breaking as the boxed kernels, so outputs are
    value-identical (property-tested); [split_at] additionally returns
    O(1) zero-copy sub-views where the boxed kernel copies. *)
module Int : sig
  type t = int1

  val sort : t -> unit
  (** In-place three-way quicksort, insertion sort below 16 elements. *)

  val sorted_copy : t -> t
  val midvalue : t -> int option
  (** Middle element of an already-sorted chunk; [None] when empty. *)

  val split_at : int -> t -> t * t
  (** [split_at pivot a] on sorted [a]: ([<= pivot], [> pivot]) as
      zero-copy sub-views (binary search, O(log n), no copying). *)

  val merge : t -> t -> t
  (** Merge two sorted chunks into a fresh one. *)

  val is_sorted : t -> bool
  val of_int_array : int array -> t
  val to_int_array : t -> int array
end
