(* Execution backends for the SCL skeletons.

   A backend supplies the primitive data-parallel loops; skeletons are
   defined once and run sequentially (the reference semantics) or on the
   multicore work-stealing pool, depending on the backend passed at the call
   site.  This realises the paper's portability claim: skeleton *meaning* is
   fixed by the sequential semantics, implementations vary per machine.

   The backend is a record of rank-2 polymorphic fields rather than a
   functor so that it can be chosen dynamically (e.g. per benchmark run)
   without duplicating the skeleton code per instantiation.

   Fused primitives (pmap_reduce / pmap_scan / pmap2) realise the paper's
   Section 4 algebra at the execution layer: [fold f . map g],
   [scan f . map g] and [map f . map g] run as single passes with no
   intermediate array, so a composition optimised by [Transform.Rewrite]
   actually costs what the fusion rules promise. *)

type t = {
  name : string;
  pmap : 'a 'b. ('a -> 'b) -> 'a array -> 'b array;
  pmapi : 'a 'b. (int -> 'a -> 'b) -> 'a array -> 'b array;
  pinit : 'a. int -> (int -> 'a) -> 'a array;
  preduce : 'a. ('a -> 'a -> 'a) -> 'a array -> 'a;
      (* associative combine over a non-empty array, in index order *)
  pscan : 'a. ('a -> 'a -> 'a) -> 'a array -> 'a array;
      (* inclusive prefix: [| x0; x0+x1; ... |] *)
  piter : 'a. ('a -> unit) -> 'a array -> unit;
  pmap_reduce : 'a 'b. ('a -> 'b) -> ('b -> 'b -> 'b) -> 'a array -> 'b;
      (* preduce op (pmap f a), one pass, no intermediate *)
  pmap_scan : 'a 'b. ('a -> 'b) -> ('b -> 'b -> 'b) -> 'a array -> 'b array;
      (* pscan op (pmap f a), one pass, no intermediate *)
  pmap2 : 'a 'b 'c. ('b -> 'c) -> ('a -> 'b) -> 'a array -> 'c array;
      (* pmap (f . g), one traversal of the composed function *)
}

let seq_reduce op a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Exec.preduce: empty array";
  let acc = ref a.(0) in
  for i = 1 to n - 1 do
    acc := op !acc a.(i)
  done;
  !acc

let seq_scan op a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n a.(0) in
    for i = 1 to n - 1 do
      out.(i) <- op out.(i - 1) a.(i)
    done;
    out
  end

let seq_map_reduce f op a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Exec.pmap_reduce: empty array";
  let acc = ref (f a.(0)) in
  for i = 1 to n - 1 do
    acc := op !acc (f a.(i))
  done;
  !acc

let seq_map_scan f op a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f a.(0)) in
    for i = 1 to n - 1 do
      out.(i) <- op out.(i - 1) (f a.(i))
    done;
    out
  end

(* Observability: wrap every primitive of a backend in an aggregated span
   ("exec.<backend>.<prim>", durations in ns) plus a per-backend call
   counter.  With the obs switch off (the default) each call costs a single
   atomic load and branch; spans and counters are created once here, never
   per call.  Skeleton calls are whole-array operations, so even enabled
   overhead is amortised over n elements. *)
let instrument e =
  let span prim = Obs.Span.make (Printf.sprintf "exec.%s.%s" e.name prim) in
  let s_pmap = span "pmap"
  and s_pmapi = span "pmapi"
  and s_pinit = span "pinit"
  and s_preduce = span "preduce"
  and s_pscan = span "pscan"
  and s_piter = span "piter"
  and s_pmap_reduce = span "pmap_reduce"
  and s_pmap_scan = span "pmap_scan"
  and s_pmap2 = span "pmap2" in
  let calls = Obs.Counter.make (Printf.sprintf "exec.%s.calls" e.name) in
  let pmap : 'a 'b. ('a -> 'b) -> 'a array -> 'b array =
   fun f a ->
    Obs.Counter.incr calls;
    Obs.Span.timed s_pmap (fun () -> e.pmap f a)
  in
  let pmapi : 'a 'b. (int -> 'a -> 'b) -> 'a array -> 'b array =
   fun f a ->
    Obs.Counter.incr calls;
    Obs.Span.timed s_pmapi (fun () -> e.pmapi f a)
  in
  let pinit : 'a. int -> (int -> 'a) -> 'a array =
   fun n f ->
    Obs.Counter.incr calls;
    Obs.Span.timed s_pinit (fun () -> e.pinit n f)
  in
  let preduce : 'a. ('a -> 'a -> 'a) -> 'a array -> 'a =
   fun op a ->
    Obs.Counter.incr calls;
    Obs.Span.timed s_preduce (fun () -> e.preduce op a)
  in
  let pscan : 'a. ('a -> 'a -> 'a) -> 'a array -> 'a array =
   fun op a ->
    Obs.Counter.incr calls;
    Obs.Span.timed s_pscan (fun () -> e.pscan op a)
  in
  let piter : 'a. ('a -> unit) -> 'a array -> unit =
   fun f a ->
    Obs.Counter.incr calls;
    Obs.Span.timed s_piter (fun () -> e.piter f a)
  in
  let pmap_reduce : 'a 'b. ('a -> 'b) -> ('b -> 'b -> 'b) -> 'a array -> 'b =
   fun f op a ->
    Obs.Counter.incr calls;
    Obs.Span.timed s_pmap_reduce (fun () -> e.pmap_reduce f op a)
  in
  let pmap_scan : 'a 'b. ('a -> 'b) -> ('b -> 'b -> 'b) -> 'a array -> 'b array =
   fun f op a ->
    Obs.Counter.incr calls;
    Obs.Span.timed s_pmap_scan (fun () -> e.pmap_scan f op a)
  in
  let pmap2 : 'a 'b 'c. ('b -> 'c) -> ('a -> 'b) -> 'a array -> 'c array =
   fun f g a ->
    Obs.Counter.incr calls;
    Obs.Span.timed s_pmap2 (fun () -> e.pmap2 f g a)
  in
  { name = e.name; pmap; pmapi; pinit; preduce; pscan; piter; pmap_reduce; pmap_scan; pmap2 }

let sequential =
  instrument
    {
      name = "sequential";
      pmap = Array.map;
      pmapi = Array.mapi;
      pinit = Array.init;
      preduce = seq_reduce;
      pscan = seq_scan;
      piter = Array.iter;
      pmap_reduce = seq_map_reduce;
      pmap_scan = seq_map_scan;
      pmap2 = (fun f g a -> Array.map (fun x -> f (g x)) a);
    }

(* Chunk boundaries for the two-phase parallel reduce/scan: [nchunks]
   balanced contiguous ranges. *)
let chunk_bounds n nchunks =
  let nchunks = max 1 (min n nchunks) in
  let q = n / nchunks and r = n mod nchunks in
  Array.init (nchunks + 1) (fun k -> (k * q) + min k r)

let on_pool pool =
  let open Runtime in
  (* Chunking derives from the pool's size-aware grain heuristic, so the
     chunk count adapts to the array instead of the fixed 8 x workers. *)
  let bounds_for n = chunk_bounds n ((n + Pool.grain_for pool n - 1) / Pool.grain_for pool n) in
  let pmap : 'a 'b. ('a -> 'b) -> 'a array -> 'b array = fun f a -> Pool.map_array pool f a in
  let pmapi : 'a 'b. (int -> 'a -> 'b) -> 'a array -> 'b array =
   fun f a -> Pool.mapi_array pool f a
  in
  let pinit : 'a. int -> (int -> 'a) -> 'a array = fun n f -> Pool.init_array pool n f in
  (* Two-phase reduce with the map fused into the leaf pass.  [preduce] is
     the [f = id] instance. *)
  let pmap_reduce : 'a 'b. ('a -> 'b) -> ('b -> 'b -> 'b) -> 'a array -> 'b =
   fun f op a ->
    let n = Array.length a in
    if n = 0 then invalid_arg "Exec.pmap_reduce: empty array";
    let bounds = bounds_for n in
    let nchunks = Array.length bounds - 1 in
    let partials =
      Pool.init_array pool ~grain:1 nchunks (fun k ->
          let acc = ref (f a.(bounds.(k))) in
          for i = bounds.(k) + 1 to bounds.(k + 1) - 1 do
            acc := op !acc (f a.(i))
          done;
          !acc)
    in
    (* Combine partials in index order so non-commutative ops are safe. *)
    seq_reduce op partials
  in
  let preduce : 'a. ('a -> 'a -> 'a) -> 'a array -> 'a =
   fun op a ->
    match pmap_reduce (fun x -> x) op a with
    | v -> v
    | exception Invalid_argument _ -> invalid_arg "Exec.preduce: empty array"
  in
  (* Three-phase scan, with an optional map fused into the phase-1 local
     scans (each element is mapped exactly once). *)
  let pmap_scan : 'a 'b. ('a -> 'b) -> ('b -> 'b -> 'b) -> 'a array -> 'b array =
   fun f op a ->
    let n = Array.length a in
    if n = 0 then [||]
    else begin
      let bounds = bounds_for n in
      let nchunks = Array.length bounds - 1 in
      let out = Array.make n (f a.(0)) in
      (* Phase 1: local inclusive scans per chunk, mapping as we read. *)
      Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:nchunks (fun k ->
          let lo = bounds.(k) and hi = bounds.(k + 1) in
          out.(lo) <- f a.(lo);
          for i = lo + 1 to hi - 1 do
            out.(i) <- op out.(i - 1) (f a.(i))
          done);
      (* Phase 2: exclusive prefix of chunk totals, sequential over chunks. *)
      let offsets = Array.make nchunks None in
      let running = ref None in
      for k = 0 to nchunks - 1 do
        offsets.(k) <- !running;
        let total = out.(bounds.(k + 1) - 1) in
        running := Some (match !running with None -> total | Some acc -> op acc total)
      done;
      (* Phase 3: add offsets to all chunks but the first. *)
      Pool.parallel_for pool ~grain:1 ~lo:1 ~hi:nchunks (fun k ->
          match offsets.(k) with
          | None -> ()
          | Some off ->
              for i = bounds.(k) to bounds.(k + 1) - 1 do
                out.(i) <- op off out.(i)
              done);
      out
    end
  in
  let pscan : 'a. ('a -> 'a -> 'a) -> 'a array -> 'a array = fun op a -> pmap_scan (fun x -> x) op a in
  let piter : 'a. ('a -> unit) -> 'a array -> unit =
   fun f a ->
    let n = Array.length a in
    Pool.parallel_for pool ~grain:(Pool.grain_for pool n) ~lo:0 ~hi:n (fun i -> f a.(i))
  in
  let pmap2 : 'a 'b 'c. ('b -> 'c) -> ('a -> 'b) -> 'a array -> 'c array =
   fun f g a -> Pool.map_array pool (fun x -> f (g x)) a
  in
  instrument { name = "pool"; pmap; pmapi; pinit; preduce; pscan; piter; pmap_reduce; pmap_scan; pmap2 }
