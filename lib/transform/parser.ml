(* A small concrete syntax for skeleton pipelines, so transformations can
   be driven from the command line — the miniature of the paper's planned
   FortranS front end (SCL as the coordination layer of a textual
   language).

   Grammar (whitespace-separated tokens; composition is right-to-left, as
   in the paper and in Ast.pp):

     pipeline := stage ( '.' stage )*
     stage    := 'id'
               | 'map' FN | 'imap' FN2 | 'fold' FN2 | 'scan' FN2
               | 'foldr' FN2 FN                      (the map-distribution source)
               | 'send' IFN | 'fetch' IFN | 'rotate' INT
               | 'split' INT | 'combine'
               | 'mapn' '[' pipeline ']'             (nested groups)
               | 'iter' INT '[' pipeline ']'
     FN  := incr | double | square | negate | halve | id
          | fincr | fneg | fhalve | fdouble          (float tier)
     FN2 := add | mul | max | min | sub | add_index
          | fadd | fmax | fmin                       (float tier)
     IFN := id | reverse | shift:INT

   [to_source] prints an expression back in this syntax; [parse] of that
   output reconstructs the expression (property-tested round-trip) as long
   as every function is a named primitive (fused functions like
   "incr.double" are only printable, not re-parseable). *)

type error = { position : int; message : string }

exception Parse_error of error

let fail position fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { position; message })) fmt

(* --- registries ------------------------------------------------------------- *)

let fns1 =
  [ Fn.incr; Fn.double; Fn.square; Fn.negate; Fn.halve; Fn.id;
    Fn.fincr; Fn.fneg; Fn.fhalve; Fn.fdouble ]

let fns2 = [ Fn.add; Fn.mul; Fn.imax; Fn.imin; Fn.sub; Fn.add_index; Fn.fadd; Fn.fmax; Fn.fmin ]

let lookup1 name = List.find_opt (fun (f : Fn.t) -> f.name = name) fns1
let lookup2 name = List.find_opt (fun (f : Fn.t2) -> f.name2 = name) fns2

let lookup_ifn pos name =
  match name with
  | "id" -> Some Fn.i_id
  | "reverse" -> Some Fn.i_reverse
  | _ -> (
      match String.index_opt name ':' with
      | Some i when String.sub name 0 i = "shift" -> (
          let arg = String.sub name (i + 1) (String.length name - i - 1) in
          match int_of_string_opt arg with
          | Some k -> Some (Fn.i_shift k)
          | None -> fail pos "shift expects an integer, got %S" arg)
      | Some _ | None -> None)

(* --- lexer -------------------------------------------------------------------- *)

type token = { text : string; pos : int }

let tokenize (src : string) : token list =
  let n = String.length src in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' then incr i
    else if c = '[' || c = ']' || c = '.' then begin
      out := { text = String.make 1 c; pos = !i } :: !out;
      incr i
    end
    else begin
      let start = !i in
      while
        !i < n
        && not (List.mem src.[!i] [ ' '; '\t'; '\n'; '['; ']' ])
        (* '.' only breaks a word when it is a separator; inside words it
           never appears in this grammar, so always break *)
        && src.[!i] <> '.'
      do
        incr i
      done;
      out := { text = String.sub src start (!i - start); pos = start } :: !out
    end
  done;
  List.rev !out

(* --- parser -------------------------------------------------------------------- *)

let int_arg keyword = function
  | { text; pos } :: rest -> (
      match int_of_string_opt text with
      | Some k -> (k, rest)
      | None -> fail pos "%s expects an integer, got %S" keyword text)
  | [] -> fail 0 "%s expects an integer, got end of input" keyword

let name_arg keyword = function
  | { text; pos } :: rest -> (text, pos, rest)
  | [] -> fail 0 "%s expects a function name, got end of input" keyword

let rec parse_pipeline env tokens : Ast.expr * token list =
  (* stages in source order are in composition order (rightmost applied
     first), i.e. the reverse of application order *)
  let first, rest = parse_stage env tokens in
  let rec more acc = function
    | { text = "."; _ } :: rest ->
        let stage, rest = parse_stage env rest in
        more (Ast.Compose (acc, stage)) rest
    | rest -> (acc, rest)
  in
  more first rest

and parse_stage env tokens : Ast.expr * token list =
  match tokens with
  | [] -> fail 0 "expected a skeleton, got end of input"
  | { text = "]"; pos } :: _ -> fail pos "expected a skeleton, got ']'"
  | { text = "."; pos } :: _ -> fail pos "expected a skeleton, got '.'"
  | { text = "["; pos } :: _ -> fail pos "expected a skeleton, got '['"
  | { text; pos } :: rest -> (
      match text with
      | "id" -> (Ast.Id, rest)
      | "combine" -> (Ast.Combine, rest)
      | "rotate" ->
          let k, rest = int_arg "rotate" rest in
          (Ast.Rotate k, rest)
      | "split" ->
          let p, rest = int_arg "split" rest in
          if p <= 0 then fail pos "split expects a positive part count, got %d" p;
          (Ast.Split p, rest)
      | "map" ->
          let name, npos, rest = name_arg "map" rest in
          (match lookup1 name with
          | Some f -> (Ast.Map f, rest)
          | None -> fail npos "unknown unary function %S" name)
      | "imap" ->
          let name, npos, rest = name_arg "imap" rest in
          (match lookup2 name with
          | Some f -> (Ast.Imap f, rest)
          | None -> fail npos "unknown indexed function %S" name)
      | "fold" ->
          let name, npos, rest = name_arg "fold" rest in
          (match lookup2 name with
          | Some f -> (Ast.Fold f, rest)
          | None -> fail npos "unknown binary function %S" name)
      | "scan" ->
          let name, npos, rest = name_arg "scan" rest in
          (match lookup2 name with
          | Some f -> (Ast.Scan f, rest)
          | None -> fail npos "unknown binary function %S" name)
      | "foldr" ->
          let n2, p2, rest = name_arg "foldr" rest in
          let n1, p1, rest = name_arg "foldr" rest in
          let f =
            match lookup2 n2 with
            | Some f -> f
            | None -> fail p2 "unknown binary function %S" n2
          in
          let g =
            match lookup1 n1 with
            | Some g -> g
            | None -> fail p1 "unknown unary function %S" n1
          in
          (Ast.Foldr_compose (f, g), rest)
      | "send" ->
          let name, npos, rest = name_arg "send" rest in
          (match lookup_ifn npos name with
          | Some f -> (Ast.Send f, rest)
          | None -> fail npos "unknown index function %S" name)
      | "fetch" ->
          let name, npos, rest = name_arg "fetch" rest in
          (match lookup_ifn npos name with
          | Some f -> (Ast.Fetch f, rest)
          | None -> fail npos "unknown index function %S" name)
      | "mapn" ->
          let body, rest = parse_bracketed env pos rest in
          (Ast.Map_nested body, rest)
      | "iter" ->
          let k, rest = int_arg "iter" rest in
          if k < 0 then fail pos "iter expects a non-negative count, got %d" k;
          let body, rest = parse_bracketed env pos rest in
          (Ast.Iter_for (k, body), rest)
      | other -> (
          (* a reference to an earlier let-definition is inlined *)
          match List.assoc_opt other env with
          | Some e -> (e, rest)
          | None -> fail pos "unknown skeleton %S" other))

and parse_bracketed env pos tokens : Ast.expr * token list =
  match tokens with
  | { text = "["; _ } :: rest -> (
      let body, rest = parse_pipeline env rest in
      match rest with
      | { text = "]"; _ } :: rest -> (body, rest)
      | { pos; _ } :: _ -> fail pos "expected ']'"
      | [] -> fail pos "unclosed '['")
  | { pos; _ } :: _ -> fail pos "expected '['"
  | [] -> fail pos "expected '[', got end of input"

let parse (src : string) : (Ast.expr, error) result =
  match tokenize src with
  | [] -> Error { position = 0; message = "empty pipeline" }
  | tokens -> (
      try
        let e, rest = parse_pipeline [] tokens in
        match rest with
        | [] -> Ok e
        | { text; pos } :: _ -> Error { position = pos; message = Printf.sprintf "trailing %S" text }
      with Parse_error e -> Error e)

(* --- programs: sequences of let-definitions ----------------------------------

     let stagea = map incr . rotate 2
     let main = fold add . stagea . stagea

   References resolve against *earlier* definitions only (no recursion);
   each reference is inlined at parse time, so the result of every
   definition is a plain pipeline. *)

let parse_program (src : string) : ((string * Ast.expr) list, error) result =
  let keywords =
    [ "let"; "="; "id"; "combine"; "rotate"; "split"; "map"; "imap"; "fold"; "scan"; "foldr";
      "send"; "fetch"; "mapn"; "iter"; "["; "]"; "." ]
  in
  try
    let rec defs env tokens =
      match tokens with
      | [] -> List.rev env
      | { text = "let"; pos } :: rest -> (
          match rest with
          | { text = name; pos = npos } :: { text = "="; _ } :: body ->
              if List.mem name keywords then fail npos "%S cannot be used as a definition name" name;
              if List.mem_assoc name env then fail npos "duplicate definition of %S" name;
              let e, rest = parse_pipeline env body in
              defs ((name, e) :: env) rest
          | { text = name; pos = npos } :: _ ->
              fail npos "expected '=' after definition name %S" name
          | [] -> fail pos "expected a definition name after 'let'")
      | { text; pos } :: _ -> fail pos "expected 'let', got %S" text
    in
    match tokenize src with
    | [] -> Error { position = 0; message = "empty program" }
    | tokens -> Ok (defs [] tokens)
  with Parse_error e -> Error e

let parse_program_exn src =
  match parse_program src with
  | Ok defs -> defs
  | Error { position; message } ->
      invalid_arg (Printf.sprintf "Parser.parse_program_exn: at %d: %s" position message)

let parse_exn src =
  match parse src with
  | Ok e -> e
  | Error { position; message } ->
      invalid_arg (Printf.sprintf "Parser.parse_exn: at %d: %s" position message)

(* --- printer (inverse of parse for registry primitives) ----------------------- *)

let ifn_source (f : Fn.ifn) : string option =
  match f.Fn.iname with
  | "id" -> Some "id"
  | "reverse" -> Some "reverse"
  | name ->
      (* shift(k) prints as shift:k *)
      if String.length name > 6 && String.sub name 0 6 = "shift(" && name.[String.length name - 1] = ')'
      then Some ("shift:" ^ String.sub name 6 (String.length name - 7))
      else None

let rec to_source (e : Ast.expr) : string option =
  let opt_map f o = Option.map f o in
  match e with
  | Ast.Id -> Some "id"
  | Ast.Compose (f, g) -> (
      match (to_source f, to_source g) with
      | Some a, Some b -> Some (a ^ " . " ^ b)
      | _ -> None)
  | Ast.Map f -> if lookup1 f.Fn.name <> None then Some ("map " ^ f.Fn.name) else None
  | Ast.Imap f -> if lookup2 f.Fn.name2 <> None then Some ("imap " ^ f.Fn.name2) else None
  | Ast.Fold f -> if lookup2 f.Fn.name2 <> None then Some ("fold " ^ f.Fn.name2) else None
  | Ast.Scan f -> if lookup2 f.Fn.name2 <> None then Some ("scan " ^ f.Fn.name2) else None
  | Ast.Foldr_compose (f, g) ->
      if lookup2 f.Fn.name2 <> None && lookup1 g.Fn.name <> None then
        Some (Printf.sprintf "foldr %s %s" f.Fn.name2 g.Fn.name)
      else None
  | Ast.Send f -> opt_map (fun s -> "send " ^ s) (ifn_source f)
  | Ast.Fetch f -> opt_map (fun s -> "fetch " ^ s) (ifn_source f)
  | Ast.Rotate k -> Some (Printf.sprintf "rotate %d" k)
  | Ast.Split p -> Some (Printf.sprintf "split %d" p)
  | Ast.Combine -> Some "combine"
  | Ast.Map_nested body -> opt_map (fun s -> Printf.sprintf "mapn [ %s ]" s) (to_source body)
  | Ast.Iter_for (k, body) ->
      opt_map (fun s -> Printf.sprintf "iter %d [ %s ]" k s) (to_source body)
