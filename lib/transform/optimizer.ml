(* Cost-guided optimisation — the compile-time loop sketched in the
   paper's Section 4.

   Two strategies share one report shape:

   - [Greedy] (the default, unchanged since PR 3): normalise with the rule
     set in leftmost/priority order, keep the result only if the static
     cost model agrees it is no worse.

   - [Beam {width; depth}]: cost-model-driven search over the whole rule
     algebra. The neighbourhood is [Rewrite.step_all] (every rule at every
     position, including inside mapn/iter bodies); states are ranked by
     the deterministic total order (estimated cost, AST size, printed
     form) so ties never depend on enumeration order; at most [width]
     states survive per generation and a run explores at most [depth]
     generations. The search is restarted from each improvement until a
     fixpoint, and greedy normalisation (with both the search rule set
     and the default set) seeds the portfolio each round — so the chosen
     plan is never worse than the greedy plan, and [optimize] is
     idempotent by construction. *)

type strategy = Greedy | Beam of { width : int; depth : int }

let default_beam = Beam { width = 8; depth = 24 }

type report = {
  input : Ast.expr;
  output : Ast.expr;
  steps : Rewrite.step list;
  cost_before : float;
  cost_after : float;
  strategy : strategy;
  explored : int;  (** distinct programs visited (1 + steps for greedy) *)
}

(* Deterministic total order on candidate programs: cheapest first, then
   smallest, then lexicographic on the printed form. The string component
   makes the order total, so the search result is independent of the
   enumeration order of [step_all]. *)
let cmp_order (c1, s1, t1) (c2, s2, t2) =
  let c = Float.compare c1 c2 in
  if c <> 0 then c
  else
    let s = Int.compare s1 s2 in
    if s <> 0 then s else String.compare t1 t2

let lt o1 o2 = cmp_order o1 o2 < 0

let rec take n = function [] -> [] | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

(* One bounded beam run from [seed]. Returns the best program found, the
   rewrite path that reached it, and the number of distinct programs
   visited. *)
let beam_from ~order ~width ~depth rules seed =
  let seen = Hashtbl.create 64 in
  Hashtbl.replace seen (Ast.to_string seed) ();
  let best = ref (order seed, seed, []) in
  let frontier = ref [ (order seed, seed, []) ] in
  (try
     for _ = 1 to depth do
       let candidates =
         List.concat_map
           (fun (_, e0, path) ->
             let before = Ast.to_string e0 in
             List.filter_map
               (fun (rname, e1) ->
                 let key = Ast.to_string e1 in
                 if Hashtbl.mem seen key then None
                 else begin
                   Hashtbl.replace seen key ();
                   let s = { Rewrite.rule = rname; before; after = key } in
                   Some (order e1, e1, s :: path)
                 end)
               (Rewrite.step_all rules e0))
           !frontier
       in
       if candidates = [] then raise Exit;
       let sorted =
         List.sort (fun (o1, _, _) (o2, _, _) -> cmp_order o1 o2) candidates
       in
       (match sorted with
       | ((o, _, _) as head) :: _ ->
           let bo, _, _ = !best in
           if lt o bo then best := head
       | [] -> ());
       frontier := take width sorted
     done
   with Exit -> ());
  let _, be, bpath = !best in
  (be, List.rev bpath, Hashtbl.length seen)

let optimize ?(cm = Machine.Cost_model.ap1000) ?(flat = false) ?(procs = 16) ?(n = 1 lsl 16)
    ?rules ?(strategy = Greedy) (e : Ast.expr) : report =
  let cost_of e' = Cost.estimate_pipeline ~cm ~flat ~procs ~n e' in
  let cost_before = cost_of e in
  match strategy with
  | Greedy ->
      let rules = Option.value rules ~default:Rules.default in
      let e', steps = Rewrite.normalize ~rules e in
      let cost_after = cost_of e' in
      if cost_after <= cost_before then
        { input = e; output = e'; steps; cost_before; cost_after; strategy;
          explored = 1 + List.length steps }
      else
        { input = e; output = e; steps = []; cost_before; cost_after = cost_before;
          strategy; explored = 1 + List.length steps }
  | Beam { width; depth } ->
      let rules = Option.value rules ~default:Rules.all in
      let width = max 1 width and depth = max 0 depth in
      let order e' = (cost_of e', Ast.size e', Ast.to_string e') in
      let greedy_candidate rs cur =
        let g, g_steps = Rewrite.normalize ~rules:rs cur in
        (order g, g, g_steps)
      in
      (* Restart from each improvement; every round's portfolio contains
         the current program, greedy normalisation (search rules and the
         default rules), and a beam run — the strict minimum is kept, so
         the loop terminates (the order is well-founded on the finite set
         of visited programs) and the result is a fixpoint: running
         [optimize] on the output changes nothing. *)
      let rec improve rounds cur acc_steps explored =
        if rounds <= 0 then (cur, acc_steps, explored)
        else
          let b, b_steps, b_explored = beam_from ~order ~width ~depth rules cur in
          let explored = explored + b_explored in
          let candidates =
            (order cur, cur, [])
            :: greedy_candidate rules cur
            :: greedy_candidate Rules.default cur
            :: [ (order b, b, b_steps) ]
          in
          let (co, ce, csteps) =
            List.fold_left
              (fun (bo, be, bs) (o, e', s) ->
                if lt o bo then (o, e', s) else (bo, be, bs))
              (List.hd candidates) (List.tl candidates)
          in
          if not (lt co (order cur)) then (cur, acc_steps, explored)
          else improve (rounds - 1) ce (acc_steps @ csteps) explored
      in
      let out, steps, explored = improve 32 e [] 0 in
      let cost_after = cost_of out in
      { input = e; output = out; steps; cost_before; cost_after; strategy; explored }

let speedup r = if r.cost_after > 0.0 then r.cost_before /. r.cost_after else Float.infinity

let strategy_name = function
  | Greedy -> "greedy"
  | Beam { width; depth } -> Printf.sprintf "beam(w=%d,d=%d)" width depth

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>input : %a@ output: %a@ est. cost %.3g s -> %.3g s (x%.2f)@ strategy %s, %d \
     program(s) explored@ %a@]"
    Ast.pp r.input Ast.pp r.output r.cost_before r.cost_after (speedup r)
    (strategy_name r.strategy) r.explored Rewrite.pp_derivation r.steps
