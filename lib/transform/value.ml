(* The value universe of the skeleton-program interpreter: enough structure
   to give every SCL AST node a checkable meaning, so transformation rules
   can be property-tested for semantics preservation. *)

type t =
  | Int of int
  | Float of float
  | Pair of t * t
  | Arr of t array  (* both ParArray and nested group arrays *)

exception Type_error of string

let type_error fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let as_arr = function
  | Arr a -> a
  | Int _ | Float _ | Pair _ -> type_error "expected an array value"

let as_int = function
  | Int i -> i
  | Float _ | Pair _ | Arr _ -> type_error "expected an integer value"

let as_float = function
  | Float f -> f
  | Int _ | Pair _ | Arr _ -> type_error "expected a float value"

let as_pair = function
  | Pair (a, b) -> (a, b)
  | Int _ | Float _ | Arr _ -> type_error "expected a pair value"

let of_int_array a = Arr (Array.map (fun i -> Int i) a)
let to_int_array v = Array.map as_int (as_arr v)

let rec equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y ->
      (* Bitwise-equal first so identical infinities compare equal (the
         relative test below yields nan-vs-nan on inf - inf). *)
      x = y
      || Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  | Pair (x1, y1), Pair (x2, y2) -> equal x1 x2 && equal y1 y2
  | Arr x, Arr y -> Array.length x = Array.length y && Array.for_all2 equal x y
  | (Int _ | Float _ | Pair _ | Arr _), _ -> false

let rec pp ppf = function
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | Pair (a, b) -> Fmt.pf ppf "(%a, %a)" pp a pp b
  | Arr a -> Fmt.pf ppf "<%a>" Fmt.(array ~sep:(any ", ") pp) a

let rec depth = function
  | Int _ | Float _ -> 0
  | Pair (a, b) -> max (depth a) (depth b)
  | Arr a -> 1 + Array.fold_left (fun acc v -> max acc (depth v)) 0 a
