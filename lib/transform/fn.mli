(** Named function values carried by the skeleton AST. Names make rewrite
    output readable, [cost] feeds the cost model, and [assoc] gates the
    rules whose soundness requires associativity. *)

type t = {
  name : string;
  cost : int;  (** flops per application *)
  apply : Value.t -> Value.t;
}
(** Unary functions (map payloads). *)

type t2 = {
  name2 : string;
  cost2 : int;
  assoc : bool;
  apply2 : Value.t -> Value.t -> Value.t;
}
(** Binary functions (fold/scan payloads) and indexed functions (imap,
    applied to [(Int index, value)]). *)

type ifn = {
  iname : string;
  iapply : n:int -> int -> int;  (** index functions; [n] is the array length *)
}

val id : t
val compose : t -> t -> t
(** [compose f g] applies [g] first; name ["f.g"], cost summed. *)

val is_id : t -> bool

(** {1 Primitive library} *)

val incr : t
val double : t
val square : t
val negate : t
val halve : t
val lift_int : string -> int -> (int -> int) -> t

val add : t2
val mul : t2
val imax : t2
val imin : t2
val sub : t2  (** not associative — exercises the rule guards *)

val add_index : t2
val indexed : string -> int -> (int -> Value.t -> Value.t) -> t2
val lift2_int : string -> int -> assoc:bool -> (int -> int -> int) -> t2

(** {2 Float primitives}

    Chosen so float pipelines are bit-identical across backends even though
    parallel fold/scan reassociate: the unary ops map dyadic rationals to
    dyadic rationals, [fadd] is exactly associative on dyadics, and
    [fmax]/[fmin] are associative on all floats. Overflow-prone ops (mul,
    square) are deliberately absent. *)

val fincr : t
val fneg : t
val fhalve : t
val fdouble : t
val lift_float : string -> int -> (float -> float) -> t

val fadd : t2
val fmax : t2
val fmin : t2
val lift2_float : string -> int -> assoc:bool -> (float -> float -> float) -> t2

(** {2 Pair primitives}

    Components are [Int]s, so the pointwise binary ops are exact and
    associative. *)

val pswap : t
val pincr_both : t
val padd_pw : t2
val pmax_pw : t2
val lift2_pair_int : string -> int -> assoc:bool -> (int -> int -> int) -> t2

val i_id : ifn
val i_shift : int -> ifn
val i_reverse : ifn
val i_compose : ifn -> ifn -> ifn
val i_is_id : ifn -> bool
