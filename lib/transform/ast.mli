(** The skeleton-program AST of the paper's Section 4: a point-free
    pipeline language whose nodes are SCL skeletons, with a reference
    interpreter that transformation rules are verified against. *)

type expr =
  | Id
  | Compose of expr * expr  (** [Compose (f, g)]: apply [g] first *)
  | Map of Fn.t
  | Imap of Fn.t2
  | Fold of Fn.t2
  | Scan of Fn.t2
  | Foldr_compose of Fn.t2 * Fn.t
      (** [foldr (f ∘ g)] — the sequential source pattern of the
          map-distribution rule *)
  | Send of Fn.ifn  (** permutation send *)
  | Fetch of Fn.ifn
  | Rotate of int
  | Split of int  (** block-split into p groups *)
  | Combine  (** flatten a nested ParArray *)
  | Map_nested of expr  (** apply a program inside each group *)
  | Iter_for of int * expr

val pp : Format.formatter -> expr -> unit
val to_string : expr -> string

val to_chain : expr -> expr list
(** Stages in application order (first stage first); flattens [Compose] and
    drops [Id]. *)

val of_chain : expr list -> expr
(** Rebuild; [of_chain []] is [Id]. Preserves meaning:
    [eval (of_chain (to_chain e)) = eval e]. *)

val size : expr -> int

val block_bounds : total:int -> parts:int -> int array
(** Block geometry used by [split p]: [parts + 1] prefix bounds, group [k]
    spanning [bounds.(k) .. bounds.(k+1) - 1]. Shared by the executors so
    their segment descriptors agree with the reference interpreter. *)

val eval : expr -> Value.t -> Value.t
(** Reference interpreter.
    @raise Value.Type_error on ill-typed applications, empty folds,
    out-of-range movements, or non-permutation sends. *)
