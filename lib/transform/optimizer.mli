(** Cost-guided optimisation over the transformation rules.

    [Greedy] (the default) normalises with the rule set and keeps the
    result only if the static cost model agrees it is no worse — the
    behaviour of every release since the optimizer landed.

    [Beam] searches: [Rewrite.step_all] enumerates every rule at every
    position (including inside mapn/iter bodies), candidates are ranked
    by the deterministic total order (estimated cost, AST size, printed
    form), at most [width] survive each of [depth] generations, and the
    search restarts from each improvement until a fixpoint. Greedy
    normalisation seeds every round's portfolio, so the searched plan is
    never worse than the greedy plan, and the fixpoint construction makes
    [optimize] idempotent: optimising the output changes nothing. *)

type strategy = Greedy | Beam of { width : int; depth : int }

val default_beam : strategy
(** [Beam { width = 8; depth = 24 }] — bounds the explored frontier to at
    most [width * depth] expansions per run. *)

type report = {
  input : Ast.expr;
  output : Ast.expr;
  steps : Rewrite.step list;  (** the winning rewrite path *)
  cost_before : float;
  cost_after : float;
  strategy : strategy;
  explored : int;
      (** distinct programs visited: [1 + length steps] for greedy, the
          cumulative beam frontier for search *)
}

val optimize :
  ?cm:Machine.Cost_model.t ->
  ?flat:bool ->
  ?procs:int ->
  ?n:int ->
  ?rules:Rules.rule list ->
  ?strategy:strategy ->
  Ast.expr ->
  report
(** When [rules] is omitted it defaults per strategy: {!Rules.default}
    for [Greedy] (unchanged behaviour), {!Rules.all} for [Beam] (the
    search covers the whole algebra, flattening and unrolling included).
    [cost_after <= cost_before] always holds: the input program is itself
    a candidate. [~flat:true] prices flat-eligible legs with the
    discounted model ({!Cost.estimate_pipeline}'s [?flat]). *)

val speedup : report -> float
val strategy_name : strategy -> string
val pp_report : Format.formatter -> report -> unit
