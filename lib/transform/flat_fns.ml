(* Recognition of registry functions as flat-tier operators.

   The flat host kernels ([Scl.Flat_exec]) work on unboxed float storage
   with the operator matched OUTSIDE the loop, so they can only run
   payload functions drawn from a closed operator vocabulary.  This
   module is the single mapping from [Fn] registry names to that
   vocabulary, shared by the cost model (to price flat legs cheaper),
   the host evaluator (to dispatch eligible map runs onto flat kernels)
   and the code generator (to emit flat-tier source).  Recognition is
   name-based — the registry already guarantees one meaning per name —
   so fused closures (e.g. "fincr.fdouble") are deliberately not
   recognised: they would force a closure call per element, exactly the
   cost the flat tier exists to avoid. *)

let fun1_of (f : Fn.t) : Scl.Flat_exec.fun1 option =
  match f.Fn.name with
  | "id" -> Some Scl.Flat_exec.Id
  | "fneg" -> Some Scl.Flat_exec.Neg
  | "fincr" -> Some (Scl.Flat_exec.Offset 1.0)
  | "fhalve" -> Some (Scl.Flat_exec.Scale 0.5)
  | "fdouble" -> Some (Scl.Flat_exec.Scale 2.0)
  | _ -> None

let fun2_of (f : Fn.t2) : Scl.Flat_exec.fun2 option =
  match f.Fn.name2 with
  | "fadd" -> Some Scl.Flat_exec.Add
  | "fmax" -> Some Scl.Flat_exec.Max
  | "fmin" -> Some Scl.Flat_exec.Min
  | _ -> None

(* Source forms for the code generator (constructors of
   [Scl.Flat_exec.fun1]/[fun2]). *)

let fun1_source (f : Fn.t) : string option =
  match f.Fn.name with
  | "id" -> Some "Scl.Flat_exec.Id"
  | "fneg" -> Some "Scl.Flat_exec.Neg"
  | "fincr" -> Some "Scl.Flat_exec.Offset 1.0"
  | "fhalve" -> Some "Scl.Flat_exec.Scale 0.5"
  | "fdouble" -> Some "Scl.Flat_exec.Scale 2.0"
  | _ -> None

let fun2_source (f : Fn.t2) : string option =
  match f.Fn.name2 with
  | "fadd" -> Some "Scl.Flat_exec.Add"
  | "fmax" -> Some "Scl.Flat_exec.Max"
  | "fmin" -> Some "Scl.Flat_exec.Min"
  | _ -> None
