(** Static BSP-style cost model over the skeleton AST: estimated seconds
    for one application of a pipeline to an n-element ParArray on p
    processors, in the machine's cost parameters. Used to rank rewrites;
    the simulator ({!Sim_exec}) is the ground truth. *)

val estimate_pipeline :
  ?cm:Machine.Cost_model.t -> ?flat:bool -> procs:int -> n:int -> Ast.expr -> float
(** @raise Invalid_argument if [procs <= 0]. Default cost model: AP1000.

    With [~flat:true] (default [false]), map/fold/scan legs whose payload
    functions the flat host tier recognises ({!Flat_fns}) have their flop
    term discounted — the optimizer then sees unboxed kernels as cheaper
    than boxed ones and ranks plans accordingly. Barriers and combine
    rounds are tier-independent and never discounted. *)

val log2_ceil : int -> int
val ceil_div : int -> int -> int
