(** Recognition of [Fn] registry functions as flat-tier operators — the
    single name-to-operator mapping shared by the cost model ({!Cost}),
    the host evaluator ({!Host_exec}) and the code generator
    ({!Codegen}). Recognition is name-based; fused closures are never
    recognised (they would reintroduce a per-element closure call). *)

val fun1_of : Fn.t -> Scl.Flat_exec.fun1 option
(** [fincr]/[fneg]/[fhalve]/[fdouble]/[id] as flat unary operators. *)

val fun2_of : Fn.t2 -> Scl.Flat_exec.fun2 option
(** [fadd]/[fmax]/[fmin] as flat binary operators. *)

val fun1_source : Fn.t -> string option
(** OCaml source form of {!fun1_of}'s result, for code generation. *)

val fun2_source : Fn.t2 -> string option
