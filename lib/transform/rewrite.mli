(** The rewrite engine: drive rules to a fixpoint over the chain view,
    recursing into nested programs, logging every step. *)

type step = { rule : string; before : string; after : string }

val normalize : ?max_steps:int -> ?rules:Rules.rule list -> Ast.expr -> Ast.expr * step list
(** Leftmost-position, priority-ordered rule application to fixpoint
    (default rules: {!Rules.default}; default step cap 1000). Semantics are
    preserved whenever every rule in the set is sound. *)

val step_once : Rules.rule list -> Ast.expr -> (string * Ast.expr) option
(** One rewrite step, or [None] at a normal form. *)

val step_all : Rules.rule list -> Ast.expr -> (string * Ast.expr) list
(** Every single-step rewrite: each rule at each chain position, including
    positions inside [mapn] / [iter] bodies — the neighbourhood relation
    explored by the optimizer's search. [step_all rules e = []] iff
    [step_once rules e = None]. *)

val pp_step : Format.formatter -> step -> unit
val pp_derivation : Format.formatter -> step list -> unit
