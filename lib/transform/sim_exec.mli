(** Execute skeleton pipelines on the simulated distributed-memory machine
    via the Dvec templates — the ground truth behind the static cost
    model. Each primitive stage ends with a group barrier, realising the
    paper's synchronous composition semantics (which is exactly what
    fusion saves).

    Nested pipelines execute {e flat}: [split p] attaches a replicated
    segment descriptor to the block-distributed payload without moving
    data, [mapn] bodies run as segmented global operations over the flat
    payload (segmented map {e is} the flat map; scan is flag-lifted; fold
    is a local partial pass plus an allgather of per-segment partials),
    and [combine] drops the descriptor. This is the executable content of
    the flattening rules — [nested_map_flatten] / [nested_fold_flatten]
    outputs and their unflattened originals both run here and agree. *)

exception Unsupported of string
(** Raised only for shapes outside the one-level flattening discipline:
    nesting deeper than one level, a group-level operation other than
    [combine] / [mapn] applied to a segmented value, or [foldr] inside a
    [mapn] body (rewrite with map-distribution first). *)

val run :
  ?cost:Machine.Cost_model.t ->
  ?topology:Machine.Topology.t ->
  procs:int ->
  Ast.expr ->
  Value.t ->
  Value.t * Machine.Sim.stats
(** Scatter the input array, run the pipeline SPMD, gather the result (or
    return the replicated scalar after a fold; a pipeline ending inside a
    split region gathers and regroups). Results equal [Ast.eval e input],
    including the error taxonomy: empty folds, out-of-range movements,
    negative iteration counts and non-permutation sends raise
    {!Value.Type_error} exactly where the reference interpreter does. *)
