(** Execute flat skeleton pipelines on the simulated distributed-memory
    machine via the Dvec templates — the ground truth behind the static
    cost model. Each primitive stage ends with a group barrier, realising
    the paper's synchronous composition semantics (which is exactly what
    fusion saves). *)

exception Unsupported of string
(** Raised for nested-parallelism nodes (split / combine / map_nested);
    flatten first. *)

val run :
  ?cost:Machine.Cost_model.t ->
  ?topology:Machine.Topology.t ->
  procs:int ->
  Ast.expr ->
  Value.t ->
  Value.t * Machine.Sim.stats
(** Scatter the input array, run the pipeline SPMD, gather the result (or
    return the replicated scalar after a fold). Results equal
    [Ast.eval e input], including the error taxonomy: empty folds,
    out-of-range movements, negative iteration counts and non-permutation
    sends raise {!Value.Type_error} exactly where the reference
    interpreter does. *)
