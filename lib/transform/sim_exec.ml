(* Execute a (flat) skeleton pipeline on the simulated distributed-memory
   machine, using the Dvec skeleton templates.  This is the ground truth
   behind the static cost model: the ablation benchmarks run the same
   pipeline before and after transformation and compare simulated
   makespans, and the test suite checks the results still agree with the
   reference interpreter.

   Nested-parallelism nodes (split / combine / map_nested) are not
   executable here — flatten first; attempting them raises. *)

open Machine

exception Unsupported of string

type state =
  | V of Value.t Scl_sim.Dvec.t  (* a distributed ParArray *)
  | S of Value.t  (* a replicated scalar (after fold / foldr) *)

(* The paper's synchronous semantics: the composition point between two
   skeletons models a barrier synchronisation, so every primitive stage
   ends with a group barrier.  (This is exactly what map fusion saves.) *)
let rec exec (comm : Comm.t) (e : Ast.expr) (st : state) : state =
  match e with
  | Ast.Id -> st
  | Ast.Compose (f, g) -> exec comm f (exec comm g st)
  | _ ->
      let st' = exec_prim comm e st in
      Comm.barrier comm;
      st'

and exec_prim (comm : Comm.t) (e : Ast.expr) (st : state) : state =
  let the_vec = function
    | V dv -> dv
    | S _ -> Value.type_error "pipeline applies an array skeleton to a scalar"
  in
  match e with
  | Ast.Id -> st
  | Ast.Compose (f, g) -> exec comm f (exec comm g st)
  | Ast.Map f -> V (Scl_sim.Dvec.map ~flops_per_elem:f.Fn.cost f.Fn.apply (the_vec st))
  | Ast.Imap f ->
      V
        (Scl_sim.Dvec.imap ~flops_per_elem:f.Fn.cost2
           (fun i x -> f.Fn.apply2 (Value.Int i) x)
           (the_vec st))
  | Ast.Fold f ->
      let dv = the_vec st in
      if Scl_sim.Dvec.total dv = 0 then Value.type_error "fold: empty array";
      S (Scl_sim.Dvec.fold ~flops_per_elem:f.Fn.cost2 f.Fn.apply2 dv)
  | Ast.Scan f -> V (Scl_sim.Dvec.scan ~flops_per_elem:f.Fn.cost2 f.Fn.apply2 (the_vec st))
  | Ast.Foldr_compose (f, g) ->
      (* Inherently sequential: collect everything at the root, compute
         there, broadcast the result. *)
      let dv = the_vec st in
      let all = Scl_sim.Dvec.gather ~root:0 dv in
      let result =
        match all with
        | Some a ->
            if Array.length a = 0 then Value.type_error "foldr: empty array";
            Comm.work_flops comm (Array.length a * (f.Fn.cost2 + g.Fn.cost));
            let acc = ref (g.Fn.apply a.(Array.length a - 1)) in
            for i = Array.length a - 2 downto 0 do
              acc := f.Fn.apply2 (g.Fn.apply a.(i)) !acc
            done;
            Some !acc
        | None -> None
      in
      S (Comm.bcast comm ~root:0 result)
  | Ast.Rotate k -> V (Scl_sim.Dvec.rotate k (the_vec st))
  | Ast.Fetch f ->
      let dv = the_vec st in
      let n = Scl_sim.Dvec.total dv in
      V
        (Scl_sim.Dvec.fetch
           (fun i ->
             let s = f.Fn.iapply ~n i in
             if s < 0 || s >= n then Value.type_error "fetch %s: source out of range" f.Fn.iname;
             s)
           dv)
  | Ast.Send f ->
      let dv = the_vec st in
      let n = Scl_sim.Dvec.total dv in
      let sent =
        Scl_sim.Dvec.send
          (fun i ->
            let d = f.Fn.iapply ~n i in
            if d < 0 || d >= n then
              Value.type_error "send %s: destination out of range" f.Fn.iname;
            [ d ])
          dv
      in
      (* permutation: each slot received exactly one element *)
      V
        (Scl_sim.Dvec.map ~flops_per_elem:1
           (fun arrivals ->
             match Array.length arrivals with
             | 1 -> arrivals.(0)
             | k -> Value.type_error "send: %d arrivals at one site (not a permutation)" k)
           sent)
  | Ast.Iter_for (k, body) ->
      if k < 0 then Value.type_error "iterFor: negative count";
      let st = ref st in
      for _ = 1 to k do
        st := exec comm body !st
      done;
      !st
  | Ast.Split _ | Ast.Combine | Ast.Map_nested _ ->
      raise (Unsupported "nested-parallelism nodes are not executable on the simulator; flatten first")

let run ?(cost = Cost_model.ap1000) ?topology ~procs (e : Ast.expr) (input : Value.t) :
    Value.t * Sim.stats =
  let elems = Value.as_arr input in
  ignore elems;
  Scl_sim.Spmd.run_collect ?topology ~cost ~procs (fun comm ->
      let dv =
        Scl_sim.Dvec.scatter comm ~root:0
          (if Comm.rank comm = 0 then Some (Value.as_arr input) else None)
      in
      let final = exec comm e (V dv) in
      match final with
      | V dv -> Scl_sim.Dvec.gather ~root:0 dv |> Option.map (fun a -> Value.Arr a)
      | S v -> if Comm.rank comm = 0 then Some v else None)
