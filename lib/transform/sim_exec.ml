(* Execute a skeleton pipeline on the simulated distributed-memory machine,
   using the Dvec skeleton templates.  This is the ground truth behind the
   static cost model: the ablation benchmarks run the same pipeline before
   and after transformation and compare simulated makespans, and the test
   suite checks the results still agree with the reference interpreter.

   Nested pipelines run *flat*: [Split] attaches a replicated segment
   descriptor to the block-distributed payload (no data movement — block
   boundaries are computed, not shipped), [Map_nested] executes its body as
   segmented global operations over the flat payload, and [Combine] drops
   the descriptor.  This is the paper's flattening story realised at the
   executor: the segmented map of [map f] is the flat [map f], the
   segmented scan is a flag-lifted flat scan, and the segmented fold is a
   local partial pass plus a small allgather of per-segment partials.

   Only one level of nesting is supported (the flattening rules never need
   more); deeper nesting and group-level operations other than
   [Combine]/[Map_nested] on a segmented value raise {!Unsupported}. *)

open Machine

exception Unsupported of string

type state =
  | V of Value.t Scl_sim.Dvec.t  (* a distributed ParArray *)
  | S of Value.t  (* a replicated scalar (after fold / foldr) *)
  | Seg of Value.t Scl_sim.Dvec.t * int array
      (* a split ParArray: flat payload + replicated segment sizes *)

(* --- segment descriptor helpers (replicated, so every rank agrees) -------- *)

(* starts.(j) = global index of the first element of segment j; length s+1. *)
let seg_starts sizes =
  let s = Array.length sizes in
  let starts = Array.make (s + 1) 0 in
  for j = 0 to s - 1 do
    starts.(j + 1) <- starts.(j) + sizes.(j)
  done;
  starts

(* The segment containing global index g: the last j with starts.(j) <= g,
   which skips empty segments. Requires 0 <= g < total. *)
let seg_of starts g =
  let lo = ref 0 and hi = ref (Array.length starts - 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if g < starts.(mid) then hi := mid else lo := mid
  done;
  !lo

(* (segment, index within the segment) of global index g. *)
let seg_local starts g =
  let j = seg_of starts g in
  (j, g - starts.(j))

(* A body can evaluate to the identity on scalar group elements (Id chains,
   zero-count iterations); anything else applied to a scalar is the
   reference interpreter's type error. *)
let rec vacuous = function
  | Ast.Id -> true
  | Ast.Compose (f, g) -> vacuous f && vacuous g
  | Ast.Iter_for (k, b) -> k = 0 || vacuous b
  | _ -> false

(* The paper's synchronous semantics: the composition point between two
   skeletons models a barrier synchronisation, so every primitive stage
   ends with a group barrier.  (This is exactly what map fusion saves.) *)
let rec exec (comm : Comm.t) (e : Ast.expr) (st : state) : state =
  match e with
  | Ast.Id -> st
  | Ast.Compose (f, g) -> exec comm f (exec comm g st)
  | _ ->
      let st' = exec_prim comm e st in
      Comm.barrier comm;
      st'

and exec_prim (comm : Comm.t) (e : Ast.expr) (st : state) : state =
  let the_vec = function
    | V dv -> dv
    | S _ -> Value.type_error "pipeline applies an array skeleton to a scalar"
    | Seg _ ->
        raise
          (Unsupported
             "group-level operation on a segmented vector (only combine / map_nested \
              execute on groups); flatten first")
  in
  match e with
  | Ast.Id -> st
  | Ast.Compose (f, g) -> exec comm f (exec comm g st)
  | Ast.Map f -> V (Scl_sim.Dvec.map ~flops_per_elem:f.Fn.cost f.Fn.apply (the_vec st))
  | Ast.Imap f ->
      V
        (Scl_sim.Dvec.imap ~flops_per_elem:f.Fn.cost2
           (fun i x -> f.Fn.apply2 (Value.Int i) x)
           (the_vec st))
  | Ast.Fold f ->
      let dv = the_vec st in
      if Scl_sim.Dvec.total dv = 0 then Value.type_error "fold: empty array";
      S (Scl_sim.Dvec.fold ~flops_per_elem:f.Fn.cost2 f.Fn.apply2 dv)
  | Ast.Scan f -> V (Scl_sim.Dvec.scan ~flops_per_elem:f.Fn.cost2 f.Fn.apply2 (the_vec st))
  | Ast.Foldr_compose (f, g) ->
      (* Inherently sequential: collect everything at the root, compute
         there, broadcast the result. *)
      let dv = the_vec st in
      let all = Scl_sim.Dvec.gather ~root:0 dv in
      let result =
        match all with
        | Some a ->
            if Array.length a = 0 then Value.type_error "foldr: empty array";
            Comm.work_flops comm (Array.length a * (f.Fn.cost2 + g.Fn.cost));
            let acc = ref (g.Fn.apply a.(Array.length a - 1)) in
            for i = Array.length a - 2 downto 0 do
              acc := f.Fn.apply2 (g.Fn.apply a.(i)) !acc
            done;
            Some !acc
        | None -> None
      in
      S (Comm.bcast comm ~root:0 result)
  | Ast.Rotate k -> V (Scl_sim.Dvec.rotate k (the_vec st))
  | Ast.Fetch f ->
      let dv = the_vec st in
      let n = Scl_sim.Dvec.total dv in
      V
        (Scl_sim.Dvec.fetch
           (fun i ->
             let s = f.Fn.iapply ~n i in
             if s < 0 || s >= n then Value.type_error "fetch %s: source out of range" f.Fn.iname;
             s)
           dv)
  | Ast.Send f ->
      let dv = the_vec st in
      let n = Scl_sim.Dvec.total dv in
      let sent =
        Scl_sim.Dvec.send
          (fun i ->
            let d = f.Fn.iapply ~n i in
            if d < 0 || d >= n then
              Value.type_error "send %s: destination out of range" f.Fn.iname;
            [ d ])
          dv
      in
      (* permutation: each slot received exactly one element *)
      V
        (Scl_sim.Dvec.map ~flops_per_elem:1
           (fun arrivals ->
             match Array.length arrivals with
             | 1 -> arrivals.(0)
             | k -> Value.type_error "send: %d arrivals at one site (not a permutation)" k)
           sent)
  | Ast.Iter_for (k, body) ->
      if k < 0 then Value.type_error "iterFor: negative count";
      let st = ref st in
      for _ = 1 to k do
        st := exec comm body !st
      done;
      !st
  | Ast.Split p -> (
      match st with
      | V dv ->
          if p <= 0 then Value.type_error "split: non-positive part count";
          let b = Ast.block_bounds ~total:(Scl_sim.Dvec.total dv) ~parts:p in
          let sizes = Array.init p (fun k -> b.(k + 1) - b.(k)) in
          Seg (dv, sizes)
      | S _ -> Value.type_error "pipeline applies an array skeleton to a scalar"
      | Seg _ -> raise (Unsupported "nesting deeper than one level is not executable; flatten first"))
  | Ast.Combine -> (
      match st with
      | Seg (dv, _) -> V dv (* the payload never left its flat distribution *)
      | V _ -> Value.type_error "combine: elements are not groups"
      | S _ -> Value.type_error "pipeline applies an array skeleton to a scalar")
  | Ast.Map_nested body -> (
      match st with
      | Seg (dv, sizes) -> seg_exec comm sizes (Ast.to_chain body) dv
      | V dv ->
          (* Flat elements are scalars: only identity bodies evaluate. *)
          if vacuous body then V dv
          else Value.type_error "map_nested: elements are not groups"
      | S _ -> Value.type_error "pipeline applies an array skeleton to a scalar")

(* --- segmented global operations ------------------------------------------

   Execute a nested body over the flat payload of [Split]'s output.  Every
   operation is phrased as a flat Dvec collective with indices remapped
   through the (replicated) segment descriptor, so communication stays
   exactly as distributed as the flat case — the executable content of the
   flattening rules. *)
and seg_exec comm sizes chain dv : state =
  let starts = seg_starts sizes in
  let rec go chain dv =
    match chain with
    | [] -> Seg (dv, sizes)
    | stage :: rest -> (
        match stage with
        | Ast.Id -> go rest dv
        | Ast.Compose _ -> go (Ast.to_chain stage @ rest) dv
        | Ast.Map f -> go rest (Scl_sim.Dvec.map ~flops_per_elem:f.Fn.cost f.Fn.apply dv)
        | Ast.Imap f ->
            (* the index seen inside a group is local to the segment *)
            go rest
              (Scl_sim.Dvec.imap ~flops_per_elem:f.Fn.cost2
                 (fun g x ->
                   let _, i = seg_local starts g in
                   f.Fn.apply2 (Value.Int i) x)
                 dv)
        | Ast.Scan f ->
            (* classic segmented scan: lift the operator over (start?, value)
               pairs — the lifted operator is associative whenever f is *)
            let tagged =
              Scl_sim.Dvec.imap ~flops_per_elem:0
                (fun g x -> (g = starts.(seg_of starts g), x))
                dv
            in
            let scanned =
              Scl_sim.Dvec.scan ~flops_per_elem:f.Fn.cost2
                (fun (f1, a) (f2, b) ->
                  if f2 then (f1 || f2, b) else (f1 || f2, f.Fn.apply2 a b))
                tagged
            in
            go rest (Scl_sim.Dvec.map ~flops_per_elem:0 snd scanned)
        | Ast.Rotate k ->
            go rest
              (Scl_sim.Dvec.fetch
                 (fun g ->
                   let j, i = seg_local starts g in
                   let l = sizes.(j) in
                   starts.(j) + ((((i + k) mod l) + l) mod l))
                 dv)
        | Ast.Fetch f ->
            go rest
              (Scl_sim.Dvec.fetch
                 (fun g ->
                   let j, i = seg_local starts g in
                   let l = sizes.(j) in
                   let s = f.Fn.iapply ~n:l i in
                   if s < 0 || s >= l then
                     Value.type_error "fetch %s: source out of range" f.Fn.iname;
                   starts.(j) + s)
                 dv)
        | Ast.Send f ->
            let sent =
              Scl_sim.Dvec.send
                (fun g ->
                  let j, i = seg_local starts g in
                  let l = sizes.(j) in
                  let d = f.Fn.iapply ~n:l i in
                  if d < 0 || d >= l then
                    Value.type_error "send %s: destination out of range" f.Fn.iname;
                  [ starts.(j) + d ])
                dv
            in
            go rest
              (Scl_sim.Dvec.map ~flops_per_elem:1
                 (fun arrivals ->
                   match Array.length arrivals with
                   | 1 -> arrivals.(0)
                   | _ -> Value.type_error "send %s: not a permutation" f.Fn.iname)
                 sent)
        | Ast.Fold f ->
            let flat = seg_fold comm f sizes starts dv in
            (* per-segment scalars: any further array stage in the body is
               the reference interpreter's type error *)
            if List.concat_map Ast.to_chain rest <> [] then
              Value.type_error "pipeline applies an array skeleton to a scalar"
            else V flat
        | Ast.Iter_for (k, body) ->
            if k < 0 then Value.type_error "iterFor: negative count";
            let unrolled = List.concat (List.init k (fun _ -> Ast.to_chain body)) in
            go (unrolled @ rest) dv
        | Ast.Foldr_compose _ ->
            raise
              (Unsupported
                 "foldr inside map_nested is not executable; rewrite with map-distribution \
                  first")
        | Ast.Split _ | Ast.Combine | Ast.Map_nested _ ->
            raise
              (Unsupported "nesting deeper than one level is not executable; flatten first"))
  in
  go chain dv

(* Segmented reduction: a local partial pass over the owned slice of each
   segment, then an allgather of the (segment, partial) pairs — traffic is
   proportional to segments x processors, not to n — combined in global
   index order on every rank, and the s results re-distributed block-wise. *)
and seg_fold comm (f : Fn.t2) sizes starts dv : Value.t Scl_sim.Dvec.t =
  Array.iter (fun l -> if l = 0 then Value.type_error "fold: empty array") sizes;
  let s = Array.length sizes in
  let loc = Scl_sim.Dvec.local dv and off = Scl_sim.Dvec.offset dv in
  let partials = ref [] in
  Array.iteri
    (fun i x ->
      let j = seg_of starts (off + i) in
      match !partials with
      | (j', acc) :: tl when j' = j -> partials := (j, f.Fn.apply2 acc x) :: tl
      | _ -> partials := (j, x) :: !partials)
    loc;
  Comm.work_flops comm (f.Fn.cost2 * Array.length loc);
  let all = Comm.allgather comm (Array.of_list (List.rev !partials)) in
  let acc : Value.t option array = Array.make s None in
  Array.iter
    (Array.iter (fun (j, v) ->
         acc.(j) <- Some (match acc.(j) with None -> v | Some a -> f.Fn.apply2 a v)))
    all;
  Comm.work_flops comm (f.Fn.cost2 * s);
  let results =
    Array.map (function Some v -> v | None -> Value.type_error "fold: empty array") acc
  in
  let b = Scl_sim.Dvec.block_bounds ~total:s ~parts:(Comm.size comm) in
  let me = Comm.rank comm in
  Scl_sim.Dvec.of_local comm (Array.sub results b.(me) (b.(me + 1) - b.(me)))

let run ?(cost = Cost_model.ap1000) ?topology ~procs (e : Ast.expr) (input : Value.t) :
    Value.t * Sim.stats =
  let elems = Value.as_arr input in
  ignore elems;
  Scl_sim.Spmd.run_collect ?topology ~cost ~procs (fun comm ->
      let dv =
        Scl_sim.Dvec.scatter comm ~root:0
          (if Comm.rank comm = 0 then Some (Value.as_arr input) else None)
      in
      let final = exec comm e (V dv) in
      match final with
      | V dv -> Scl_sim.Dvec.gather ~root:0 dv |> Option.map (fun a -> Value.Arr a)
      | S v -> if Comm.rank comm = 0 then Some v else None
      | Seg (dv, sizes) ->
          (* pipeline ends grouped: regroup the gathered payload *)
          Scl_sim.Dvec.gather ~root:0 dv
          |> Option.map (fun a ->
                 let starts = seg_starts sizes in
                 Value.Arr
                   (Array.init (Array.length sizes) (fun j ->
                        Value.Arr (Array.sub a starts.(j) sizes.(j))))))
