(* The skeleton-program AST of Section 4: a point-free pipeline language
   whose nodes are SCL skeletons.  [eval] is the reference interpreter the
   transformation rules are verified against. *)

type expr =
  | Id
  | Compose of expr * expr  (* Compose (f, g): apply g first, then f *)
  | Map of Fn.t
  | Imap of Fn.t2  (* applied to (index, value) *)
  | Fold of Fn.t2
  | Scan of Fn.t2
  | Foldr_compose of Fn.t2 * Fn.t
      (* foldr (f . g): the sequential pattern the map-distribution rule
         parallelises into Fold f . Map g *)
  | Send of Fn.ifn  (* permutation send *)
  | Fetch of Fn.ifn
  | Rotate of int
  | Split of int  (* block-split a ParArray into p groups *)
  | Combine  (* flatten a nested ParArray *)
  | Map_nested of expr  (* apply a skeleton program inside each group *)
  | Iter_for of int * expr

(* --- pretty printing ------------------------------------------------------- *)

let rec pp ppf = function
  | Id -> Fmt.string ppf "id"
  | Compose (f, g) -> Fmt.pf ppf "%a . %a" pp f pp g
  | Map f -> Fmt.pf ppf "map %s" f.Fn.name
  | Imap f -> Fmt.pf ppf "imap %s" f.Fn.name2
  | Fold f -> Fmt.pf ppf "fold %s" f.Fn.name2
  | Scan f -> Fmt.pf ppf "scan %s" f.Fn.name2
  | Foldr_compose (f, g) -> Fmt.pf ppf "foldr (%s . %s)" f.Fn.name2 g.Fn.name
  | Send f -> Fmt.pf ppf "send %s" f.Fn.iname
  | Fetch f -> Fmt.pf ppf "fetch %s" f.Fn.iname
  | Rotate k -> Fmt.pf ppf "rotate %d" k
  | Split p -> Fmt.pf ppf "split %d" p
  | Combine -> Fmt.string ppf "combine"
  | Map_nested e -> Fmt.pf ppf "mapn [ %a ]" pp e
  | Iter_for (k, e) -> Fmt.pf ppf "iter %d [ %a ]" k pp e

let to_string e = Fmt.str "%a" pp e

(* --- chain view: a pipeline in application order -------------------------- *)

(* [to_chain e] flattens compositions into the list of stages in application
   order (first stage first); [of_chain] rebuilds. Rules work on chains so
   adjacent-stage patterns are easy to match. *)
let rec to_chain = function
  | Id -> []
  | Compose (f, g) -> to_chain g @ to_chain f
  | e -> [ e ]

let of_chain = function
  | [] -> Id
  | first :: rest -> List.fold_left (fun acc e -> Compose (e, acc)) first rest

(* --- structural size (for termination / reporting) ------------------------ *)

let rec size = function
  | Id -> 1
  | Compose (f, g) -> size f + size g
  | Map_nested e -> 1 + size e
  | Iter_for (_, e) -> 1 + size e
  | Map _ | Imap _ | Fold _ | Scan _ | Foldr_compose _ | Send _ | Fetch _ | Rotate _ | Split _
  | Combine ->
      1

(* --- interpreter ----------------------------------------------------------- *)

let block_bounds ~total ~parts =
  let q = total / parts and r = total mod parts in
  Array.init (parts + 1) (fun k -> (k * q) + min k r)

let rec eval (e : expr) (v : Value.t) : Value.t =
  match e with
  | Id -> v
  | Compose (f, g) -> eval f (eval g v)
  | Map f -> Value.Arr (Array.map f.Fn.apply (Value.as_arr v))
  | Imap f ->
      Value.Arr (Array.mapi (fun i x -> f.Fn.apply2 (Value.Int i) x) (Value.as_arr v))
  | Fold f ->
      let a = Value.as_arr v in
      if Array.length a = 0 then Value.type_error "fold: empty array";
      let acc = ref a.(0) in
      for i = 1 to Array.length a - 1 do
        acc := f.Fn.apply2 !acc a.(i)
      done;
      !acc
  | Scan f ->
      let a = Value.as_arr v in
      if Array.length a = 0 then Value.Arr [||]
      else begin
        let out = Array.make (Array.length a) a.(0) in
        for i = 1 to Array.length a - 1 do
          out.(i) <- f.Fn.apply2 out.(i - 1) a.(i)
        done;
        Value.Arr out
      end
  | Foldr_compose (f, g) ->
      let a = Value.as_arr v in
      if Array.length a = 0 then Value.type_error "foldr: empty array";
      let acc = ref (g.Fn.apply a.(Array.length a - 1)) in
      for i = Array.length a - 2 downto 0 do
        acc := f.Fn.apply2 (g.Fn.apply a.(i)) !acc
      done;
      !acc
  | Send f ->
      let a = Value.as_arr v in
      let n = Array.length a in
      if n = 0 then v
      else begin
        let out = Array.make n a.(0) in
        let hit = Array.make n false in
        Array.iteri
          (fun i x ->
            let d = f.Fn.iapply ~n i in
            if d < 0 || d >= n then Value.type_error "send %s: destination out of range" f.Fn.iname;
            if hit.(d) then Value.type_error "send %s: not a permutation" f.Fn.iname;
            hit.(d) <- true;
            out.(d) <- x)
          a;
        Value.Arr out
      end
  | Fetch f ->
      let a = Value.as_arr v in
      let n = Array.length a in
      Value.Arr
        (Array.init n (fun i ->
             let s = f.Fn.iapply ~n i in
             if s < 0 || s >= n then Value.type_error "fetch %s: source out of range" f.Fn.iname;
             a.(s)))
  | Rotate k ->
      let a = Value.as_arr v in
      let n = Array.length a in
      if n = 0 then v else Value.Arr (Array.init n (fun i -> a.((((i + k) mod n) + n) mod n)))
  | Split p ->
      if p <= 0 then Value.type_error "split: non-positive part count";
      let a = Value.as_arr v in
      let b = block_bounds ~total:(Array.length a) ~parts:p in
      Value.Arr (Array.init p (fun k -> Value.Arr (Array.sub a b.(k) (b.(k + 1) - b.(k)))))
  | Combine ->
      let groups = Value.as_arr v in
      Value.Arr (Array.concat (Array.to_list (Array.map Value.as_arr groups)))
  | Map_nested e -> Value.Arr (Array.map (eval e) (Value.as_arr v))
  | Iter_for (k, body) ->
      if k < 0 then Value.type_error "iterFor: negative count";
      let acc = ref v in
      for _ = 1 to k do
        acc := eval body !acc
      done;
      !acc
