(** Execute a skeleton pipeline on the host SCL skeletons — the third
    semantics next to {!Ast.eval} (reference) and {!Sim_exec} (simulated
    machine). Pass [?exec] to choose the {!Scl.Exec} backend: sequential
    (default) or a multicore pool.

    Execution is fusion-aware: the pipeline is walked in application order
    and maximal runs of [Map] stages run as a single pass — a run ending in
    [Fold] dispatches to the fused [map_fold] primitive, one ending in
    [Scan] to [map_scan], and a bare multi-map run to [map_compose]. No
    intermediate array is materialised between fused stages. Fusion
    preserves meaning exactly: the same functions are applied to the same
    elements in the same order, so results (and raised errors) match the
    node-by-node evaluation — this is locked against {!Ast.eval} by the
    differential oracle in [tools/diffcheck].

    Supports the whole AST including nested parallelism ([Split] /
    [Combine] / [Map_nested] run through {!Scl.Partition}).
    [Foldr_compose] is inherently sequential and is computed directly, as
    on the simulator.

    Error taxonomy: host skeletons signal bad movements with
    [Invalid_argument]; this wrapper translates those into
    {!Value.Type_error} so all backends raise the same exception class on
    the same inputs (empty fold, out-of-range fetch/send, non-permutation
    send). *)

val eval :
  ?exec:Scl.Exec.t -> ?fx:Scl.Flat_exec.t -> ?optimize:bool -> Ast.expr -> Value.t -> Value.t
(** [eval ?exec ?fx ?optimize e v] equals [Ast.eval e v] on every input
    where the latter is defined. @raise Value.Type_error as {!Ast.eval}
    does.

    Map runs (and their fold/scan consumers) made entirely of
    {!Flat_fns}-recognised float primitives over all-float arrays dispatch
    to the unboxed {!Scl.Flat_exec} kernels on the [?fx] backend (default
    sequential; pass [Scl.Flat_exec.on_pool] to run flat legs on the
    pool). The flat path is bitwise-identical to the boxed path: the same
    float operations are applied in the same order.

    With [~optimize:true] (default [false]) the pipeline is first rewritten
    by {!Optimizer.optimize} (cost-gated, with [~n] taken from the actual
    input length when [v] is an array) and the optimised form is executed.
    This is meaning-preserving whenever the rule set is — which holds for
    the default rules on well-typed inputs, but note that rewrites can
    change *where* a partial pipeline fails (e.g. fusing a map into a fold
    changes which stage first observes an ill-typed element), never whether
    a fully defined pipeline's value changes. The differential oracle runs
    the optimised and unoptimised paths side by side. *)
