(** Execute a skeleton pipeline on the host SCL skeletons — the third
    semantics next to {!Ast.eval} (reference) and {!Sim_exec} (simulated
    machine). Pass [?exec] to choose the {!Scl.Exec} backend: sequential
    (default) or a multicore pool.

    Supports the whole AST including nested parallelism ([Split] /
    [Combine] / [Map_nested] run through {!Scl.Partition}).
    [Foldr_compose] is inherently sequential and is computed directly, as
    on the simulator.

    Error taxonomy: host skeletons signal bad movements with
    [Invalid_argument]; this wrapper translates those into
    {!Value.Type_error} so all backends raise the same exception class on
    the same inputs (empty fold, out-of-range fetch/send, non-permutation
    send). *)

val eval : ?exec:Scl.Exec.t -> Ast.expr -> Value.t -> Value.t
(** [eval ?exec e v] equals [Ast.eval e v] on every input where the latter
    is defined. @raise Value.Type_error as {!Ast.eval} does. *)
