(** Compile skeleton pipelines to OCaml source over the [Scl_sim.Dvec]
    templates — the paper's "skeletons as libraries or macros over the base
    language" implementation route.

    Only parallel forms compile: [Foldr_compose] must first be rewritten
    by map distribution. One level of nesting is a handled case: inside a
    [split p] .. [combine] region the value variable holds the flat
    payload (the segment descriptor is static block bounds), and [mapn]
    of map bodies emits the flat maps — the flattening rules' insight in
    the emitted code. Shapes outside that discipline (fold / movement
    bodies, deeper nesting, stages crossing a segment boundary) still
    raise {!Not_compilable} naming the flattening rewrite that fixes
    them. *)

exception Not_compilable of string

val generate : ?name:string -> Ast.expr -> string
(** OCaml source of a function
    [val name : ?cost -> procs:int -> int array -> result * Machine.Sim.stats]
    where the result is [int array] (or [int] if the pipeline ends in a
    fold). @raise Not_compilable with the reason and the rewrite that
    would fix it. *)

val generate_host : ?name:string -> Ast.expr -> string
(** The same pipeline compiled against the host library
    ([Scl.Elementary] / [Scl.Communication] over [Par_array]) — one AST,
    two targets. *)

val generate_host_flat : ?name:string -> Ast.expr -> string
(** Map/fold/scan chains of {!Flat_fns}-recognised float primitives
    compiled to the unboxed {!Scl.Flat_exec} kernels; the last map of a
    run fuses into a following fold/scan. The emitted function is
    [val name : ?fx:Scl.Flat_exec.t -> float array -> float array] (or
    [float] for a trailing fold), so one generated source runs
    sequentially or on the pool. @raise Not_compilable for stages or
    functions outside the flat vocabulary. *)

val compilable : Ast.expr -> bool
