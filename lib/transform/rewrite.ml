(* The rewrite engine: slide each rule over the chain view of the pipeline,
   recurse into nested programs, and iterate to a fixpoint.  Every applied
   rule is logged, so optimisation reports can show the derivation — the
   paper's "meaning-preserving transformation" story made auditable. *)

open Ast

type step = { rule : string; before : string; after : string }

(* Apply the first rule that matches anywhere in the chain (leftmost
   position, rules in priority order at each position). *)
let rec try_rules_at rules chain =
  let rec try_rules = function
    | [] -> None
    | (r : Rules.rule) :: rest -> (
        match r.Rules.apply_at chain with
        | Some (chain', _) -> Some (r.Rules.rname, chain')
        | None -> try_rules rest)
  in
  match try_rules rules with
  | Some _ as hit -> hit
  | None -> (
      match chain with
      | [] -> None
      | stage :: tail -> (
          (* Recurse inside nesting before sliding right. *)
          match rewrite_stage rules stage with
          | Some (rname, stage') -> Some (rname, stage' :: tail)
          | None -> (
              match try_rules_at rules tail with
              | Some (rname, tail') -> Some (rname, stage :: tail')
              | None -> None)))

and rewrite_stage rules = function
  | Map_nested e -> (
      match step_once rules e with
      | Some (rname, e') -> Some (rname, Map_nested e')
      | None -> None)
  | Iter_for (k, e) -> (
      match step_once rules e with
      | Some (rname, e') -> Some (rname, Iter_for (k, e'))
      | None -> None)
  | Id | Compose _ | Map _ | Imap _ | Fold _ | Scan _ | Foldr_compose _ | Send _ | Fetch _
  | Rotate _ | Split _ | Combine ->
      None

and step_once rules e =
  match try_rules_at rules (to_chain e) with
  | Some (rname, chain') -> Some (rname, of_chain chain')
  | None -> None

(* Every single-step rewrite of [e]: each rule at each chain position,
   plus rewrites inside [mapn] / [iter] bodies. This is the neighbourhood
   function of the optimizer's search — where [step_once] commits to the
   first hit, [step_all] returns the whole frontier. *)
let step_all rules e : (string * expr) list =
  let rec chain_steps chain =
    match chain with
    | [] -> []
    | stage :: tail ->
        let here =
          List.filter_map
            (fun (r : Rules.rule) ->
              match r.Rules.apply_at chain with
              | Some (chain', _) -> Some (r.Rules.rname, chain')
              | None -> None)
            rules
        in
        let inside =
          match stage with
          | Map_nested b ->
              List.map (fun (rn, b') -> (rn, Map_nested b' :: tail)) (expr_steps b)
          | Iter_for (k, b) ->
              List.map (fun (rn, b') -> (rn, Iter_for (k, b') :: tail)) (expr_steps b)
          | _ -> []
        in
        here @ inside @ List.map (fun (rn, tail') -> (rn, stage :: tail')) (chain_steps tail)
  and expr_steps e = List.map (fun (rn, c) -> (rn, of_chain c)) (chain_steps (to_chain e)) in
  expr_steps e

let normalize ?(max_steps = 1000) ?(rules = Rules.default) e : expr * step list =
  let rec go steps n e =
    if n >= max_steps then (e, List.rev steps)
    else
      match step_once rules e with
      | None -> (e, List.rev steps)
      | Some (rname, e') ->
          let s = { rule = rname; before = to_string e; after = to_string e' } in
          go (s :: steps) (n + 1) e'
  in
  go [] 0 e

let pp_step ppf s = Fmt.pf ppf "@[<v 2>[%s]@ %s@ => %s@]" s.rule s.before s.after

let pp_derivation ppf steps = Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_step) steps
