(* Compile a skeleton pipeline to OCaml source over the Dvec templates —
   the paper's implementation route made concrete: "SCL skeletons can be
   efficiently implemented as libraries or macros defined over base
   languages and standard communication libraries".  The generated program
   is ordinary OCaml against [Scl_sim]; the repository checks a generated
   example in (examples/generated_pipeline.ml) and compiles it, and the
   test suite asserts regeneration reproduces it byte-for-byte.

   Only *parallel* forms are compilable: [Foldr_compose] must first be
   rewritten by the map-distribution rule, and nested parallelism must be
   flattened — exactly the story of Section 4, where transformation is what
   makes programs compilable to efficient SPMD code. *)

exception Not_compilable of string

let not_compilable fmt = Printf.ksprintf (fun s -> raise (Not_compilable s)) fmt

(* OCaml source for the registry primitives (over int). *)
let fn_source (f : Fn.t) : string =
  match f.Fn.name with
  | "id" -> "(fun x -> x)"
  | "incr" -> "(fun x -> x + 1)"
  | "double" -> "(fun x -> 2 * x)"
  | "square" -> "(fun x -> x * x)"
  | "negate" -> "(fun x -> -x)"
  | "halve" -> "(fun x -> x / 2)"
  | name -> not_compilable "unary function %S has no source form (fuse only registry primitives)" name

let fn2_source (f : Fn.t2) : string =
  match f.Fn.name2 with
  | "add" -> "( + )"
  | "mul" -> "( * )"
  | "max" -> "max"
  | "min" -> "min"
  | "sub" -> "( - )"
  | name -> not_compilable "binary function %S has no source form" name

let indexed_source (f : Fn.t2) : string =
  match f.Fn.name2 with
  | "add_index" -> "(fun i x -> i + x)"
  | name -> not_compilable "indexed function %S has no source form" name

let ifn_source (f : Fn.ifn) : string =
  match f.Fn.iname with
  | "id" -> "(fun i -> i)"
  | "reverse" -> "(fun i -> __n - 1 - i)"
  | name ->
      (* shift(k) *)
      if String.length name > 6 && String.sub name 0 6 = "shift(" then begin
        let k = String.sub name 6 (String.length name - 7) in
        Printf.sprintf "(fun i -> (((i + (%s)) mod __n) + __n) mod __n)" k
      end
      else not_compilable "index function %S has no source form" name

type target = Sim | Host

(* Emit statements; the value travels in variables dv0, dv1, ...; a
   trailing fold produces a scalar binding instead. *)
type ctx = { buf : Buffer.t; mutable next : int; indent : string; target : target }

let fresh ctx =
  let v = Printf.sprintf "dv%d" ctx.next in
  ctx.next <- ctx.next + 1;
  v

let line ctx fmt = Printf.ksprintf (fun s -> Buffer.add_string ctx.buf (ctx.indent ^ s ^ "\n")) fmt

(* Per-target spellings of the skeleton operations. *)
let op ctx name =
  match (ctx.target, name) with
  | Sim, "map" -> "Scl_sim.Dvec.map"
  | Sim, "imap" -> "Scl_sim.Dvec.imap"
  | Sim, "scan" -> "Scl_sim.Dvec.scan"
  | Sim, "fold" -> "Scl_sim.Dvec.fold"
  | Sim, "rotate" -> "Scl_sim.Dvec.rotate"
  | Sim, "fetch" -> "Scl_sim.Dvec.fetch"
  | Sim, "total" -> "Scl_sim.Dvec.total"
  | Host, "map" -> "Scl.Elementary.map"
  | Host, "imap" -> "Scl.Elementary.imap"
  | Host, "scan" -> "Scl.Elementary.scan"
  | Host, "fold" -> "Scl.Elementary.fold"
  | Host, "rotate" -> "Scl.Communication.rotate"
  | Host, "fetch" -> "Scl.Communication.fetch"
  | Host, "total" -> "Scl.Par_array.length"
  | _, other -> invalid_arg ("Codegen.op: " ^ other)

(* The Dvec skeletons carry cost annotations; the host skeletons carry the
   execution backend. *)
let flops_arg ctx k = match ctx.target with Sim -> Printf.sprintf "~flops_per_elem:%d " k | Host -> "~exec "

let plain_arg ctx = match ctx.target with Sim -> "" | Host -> "~exec "

(* [seg] is the static segmentation state: inside a [split]..[combine]
   region the value variable still holds the *flat* payload (the segment
   descriptor is compile-time block bounds, so it needs no runtime
   representation), and the only stages that compile there are [mapn] of
   map bodies — for which the segmented map is literally the flat map.
   That is the flattening rules' insight realised in the emitted code. *)
let rec emit_chain ctx ~seg (stages : Ast.expr list) (v : string) :
    [ `Vec of string | `Scalar of string ] =
  match stages with
  | [] ->
      if seg then not_compilable "pipeline ends inside a segmented region: combine first";
      `Vec v
  | Ast.Split p :: rest ->
      if seg then not_compilable "nesting deeper than one level is not compilable: flatten first";
      if p <= 0 then not_compilable "split: non-positive part count";
      line ctx "(* split %d: enter the segmented region — block bounds are static, the payload stays flat *)" p;
      emit_chain ctx ~seg:true rest v
  | Ast.Combine :: rest ->
      if not seg then
        not_compilable "combine without a matching split is not compilable";
      line ctx "(* combine: leave the segmented region — the flat payload is already the combined array *)";
      emit_chain ctx ~seg:false rest v
  | Ast.Map_nested body :: rest -> (
      if not seg then
        not_compilable
          "mapn outside a split region is not compilable: apply the flattening rewrites first";
      let bchain = Ast.to_chain body in
      match bchain with
      | [] -> emit_chain ctx ~seg rest v
      | _ when List.for_all (function Ast.Map _ -> true | _ -> false) bchain ->
          line ctx "(* mapn of maps: the segmented map is the flat map (flattening rule) *)";
          let v' =
            List.fold_left
              (fun v st ->
                match emit_stage ctx st v with `Vec v' -> v' | `Scalar _ -> assert false)
              v bchain
          in
          emit_chain ctx ~seg rest v'
      | _ ->
          not_compilable
            "only map bodies compile inside a segmented region: apply the flattening \
             rewrites (e.g. nested_fold_flatten) first")
  | stage :: rest -> (
      if seg then
        not_compilable "stage %S crosses a segment boundary: combine first"
          (Ast.to_string stage);
      match emit_stage ctx stage v with
      | `Vec v' -> emit_chain ctx ~seg rest v'
      | `Scalar s ->
          if rest <> [] then
            not_compilable "a fold may only appear as the last stage of a compiled pipeline";
          `Scalar s)

and emit_stage ctx (stage : Ast.expr) (v : string) : [ `Vec of string | `Scalar of string ] =
  match stage with
  | Ast.Id -> `Vec v
  | Ast.Map f ->
      let v' = fresh ctx in
      line ctx "let %s = %s %s%s %s in" v' (op ctx "map") (flops_arg ctx f.Fn.cost) (fn_source f) v;
      `Vec v'
  | Ast.Imap f ->
      let v' = fresh ctx in
      line ctx "let %s = %s %s%s %s in" v' (op ctx "imap") (flops_arg ctx f.Fn.cost2)
        (indexed_source f) v;
      `Vec v'
  | Ast.Scan f ->
      let v' = fresh ctx in
      line ctx "let %s = %s %s%s %s in" v' (op ctx "scan") (flops_arg ctx f.Fn.cost2)
        (fn2_source f) v;
      `Vec v'
  | Ast.Fold f ->
      let s = fresh ctx in
      line ctx "let %s = %s %s%s %s in" s (op ctx "fold") (flops_arg ctx f.Fn.cost2)
        (fn2_source f) v;
      `Scalar s
  | Ast.Rotate k ->
      let v' = fresh ctx in
      line ctx "let %s = %s %s(%d) %s in" v' (op ctx "rotate") (plain_arg ctx) k v;
      `Vec v'
  | Ast.Fetch f ->
      let v' = fresh ctx in
      line ctx "let __n = %s %s in" (op ctx "total") v;
      line ctx "let %s = %s %s%s %s in" v' (op ctx "fetch") (plain_arg ctx) (ifn_source f) v;
      `Vec v'
  | Ast.Send f -> (
      let v' = fresh ctx in
      line ctx "let __n = %s %s in" (op ctx "total") v;
      match ctx.target with
      | Sim ->
          line ctx "let %s =" v';
          line ctx "  Scl_sim.Dvec.map ~flops_per_elem:0 (fun a -> a.(0))";
          line ctx "    (Scl_sim.Dvec.send (fun i -> [ %s i ]) %s)" (ifn_source f) v;
          line ctx "in";
          `Vec v'
      | Host ->
          line ctx "let %s = Scl.Communication.send_one ~exec %s %s in" v' (ifn_source f) v;
          `Vec v')
  | Ast.Iter_for (k, body) ->
      let v' = fresh ctx in
      line ctx "let %s =" v';
      line ctx "  let __r = ref %s in" v;
      line ctx "  for _ = 1 to %d do" k;
      let inner = { ctx with indent = ctx.indent ^ "    "; buf = ctx.buf } in
      (match emit_chain inner ~seg:false (Ast.to_chain body) "!__r" with
      | `Vec iv -> line ctx "    __r := %s" iv
      | `Scalar _ -> not_compilable "fold inside iterFor is not compilable");
      line ctx "  done;";
      line ctx "  !__r";
      line ctx "in";
      `Vec v'
  | Ast.Compose _ -> emit_chain ctx ~seg:false (Ast.to_chain stage) v
  | Ast.Foldr_compose _ ->
      not_compilable
        "foldr is inherently sequential: apply the map-distribution rewrite first (Rules.map_distribution)"
  | Ast.Split _ | Ast.Combine | Ast.Map_nested _ ->
      (* reachable only by calling emit_stage directly: emit_chain owns the
         segmented-region bookkeeping for these *)
      not_compilable "nested parallelism is compilable only as split .. mapn [maps] .. combine"

let generate ?(name = "run_pipeline") (e : Ast.expr) : string =
  let chain = Ast.to_chain e in
  (* dv0 is the scattered input binding; fresh names start above it *)
  let ctx = { buf = Buffer.create 1024; next = 1; indent = "      "; target = Sim } in
  let result = emit_chain ctx ~seg:false chain "dv0" in
  let body = Buffer.contents ctx.buf in
  let header =
    Printf.sprintf
      "(* Generated by Transform.Codegen from the skeleton pipeline:\n\n\
      \     %s\n\n\
      \   Do not edit by hand: the test suite regenerates this file and\n\
      \   asserts it is unchanged. *)\n\n"
      (Ast.to_string e)
  in
  let result_type, final =
    match result with
    | `Vec v -> ("int array", Printf.sprintf "Scl_sim.Dvec.gather ~root:0 %s" v)
    | `Scalar s ->
        ("int", Printf.sprintf "if Machine.Comm.rank comm = 0 then Some %s else None" s)
  in
  Printf.sprintf
    "%slet %s ?(cost = Machine.Cost_model.ap1000) ~procs (input : int array) :\n\
    \    %s * Machine.Sim.stats =\n\
    \  Scl_sim.Spmd.run_collect ~cost ~procs (fun comm ->\n\
    \      let dv0 =\n\
    \        Scl_sim.Dvec.scatter comm ~root:0\n\
    \          (if Machine.Comm.rank comm = 0 then Some input else None)\n\
    \      in\n\
     %s      %s)\n"
    header name result_type body final

(* Host-SCL target: the same pipeline over Scl.Par_array — the portability
   claim at the code-generation level. *)
let generate_host ?(name = "run_pipeline") (e : Ast.expr) : string =
  let chain = Ast.to_chain e in
  let ctx = { buf = Buffer.create 1024; next = 1; indent = "  "; target = Host } in
  let result = emit_chain ctx ~seg:false chain "dv0" in
  let body = Buffer.contents ctx.buf in
  let header =
    Printf.sprintf
      "(* Generated by Transform.Codegen (host-SCL target) from:\n\n\
      \     %s\n\n\
      \   Do not edit by hand: the test suite regenerates this file and\n\
      \   asserts it is unchanged. *)\n\n"
      (Ast.to_string e)
  in
  let result_type, final =
    match result with
    | `Vec v -> ("int array", Printf.sprintf "Scl.Par_array.to_array %s" v)
    | `Scalar s -> ("int", s)
  in
  Printf.sprintf
    "%slet %s ?(exec = Scl.Exec.sequential) (input : int array) : %s =\n\
    \  ignore exec;\n\
    \  let dv0 = Scl.Par_array.of_array input in\n\
     %s  %s\n"
    header name result_type body final

(* Flat host target: map/fold/scan chains of float registry primitives
   compiled to the unboxed [Scl.Flat_exec] kernels.  The payload functions
   must be [Flat_fns]-recognised (the flat kernels match the operator
   outside the loop, so only the closed operator vocabulary compiles); the
   last map of a run fuses into a following fold/scan (one data pass, no
   intermediate array).  The emitted function takes the flat backend as a
   value, so the same generated source runs sequentially or on the pool. *)
let generate_host_flat ?(name = "run_pipeline") (e : Ast.expr) : string =
  let chain = Ast.to_chain e in
  let buf = Buffer.create 1024 in
  let next = ref 1 in
  let fresh () =
    let v = Printf.sprintf "dv%d" !next in
    incr next;
    v
  in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf ("  " ^ s ^ "\n")) fmt in
  let f1 (f : Fn.t) =
    match Flat_fns.fun1_source f with
    | Some s -> "(" ^ s ^ ")"
    | None ->
        not_compilable "unary function %S has no flat operator form (flat target compiles %s)"
          f.Fn.name "the float registry primitives"
  in
  let f2 (f : Fn.t2) =
    match Flat_fns.fun2_source f with
    | Some s -> s
    | None -> not_compilable "binary function %S has no flat operator form" f.Fn.name2
  in
  let no_trailing rest =
    if rest <> [] then
      not_compilable "a fold may only appear as the last stage of a compiled pipeline"
  in
  let rec go stages v =
    match stages with
    | [] -> `Vec v
    | Ast.Id :: rest -> go rest v
    | Ast.Map f :: Ast.Fold op :: rest ->
        no_trailing rest;
        let s = fresh () in
        line "let %s = fx.Scl.Flat_exec.fmap_fold %s %s %s in" s (f1 f) (f2 op) v;
        `Scalar s
    | Ast.Map f :: Ast.Scan op :: rest ->
        let v' = fresh () in
        line "let %s = fx.Scl.Flat_exec.fmap_scan %s %s %s in" v' (f1 f) (f2 op) v;
        go rest v'
    | Ast.Map f :: rest ->
        let v' = fresh () in
        line "let %s = fx.Scl.Flat_exec.fmap %s %s in" v' (f1 f) v;
        go rest v'
    | Ast.Fold op :: rest ->
        no_trailing rest;
        let s = fresh () in
        line "let %s = fx.Scl.Flat_exec.ffold %s %s in" s (f2 op) v;
        `Scalar s
    | Ast.Scan op :: rest ->
        let v' = fresh () in
        line "let %s = fx.Scl.Flat_exec.fscan %s %s in" v' (f2 op) v;
        go rest v'
    | st :: _ ->
        not_compilable
          "stage %S has no flat-tier form (the flat target compiles map/fold/scan chains)"
          (Ast.to_string st)
  in
  let result = go chain "dv0" in
  let body = Buffer.contents buf in
  let header =
    Printf.sprintf
      "(* Generated by Transform.Codegen (flat host target) from:\n\n\
      \     %s\n\n\
      \   Unboxed Scl.Flat_exec kernels; pass ~fx:(Scl.Flat_exec.on_pool pool)\n\
      \   to run the same code multicore. Do not edit by hand: the test suite\n\
      \   regenerates this file and asserts it is unchanged. *)\n\n"
      (Ast.to_string e)
  in
  let result_type, final =
    match result with
    | `Vec v -> ("float array", Printf.sprintf "Scl.Flat.to_float_array %s" v)
    | `Scalar s -> ("float", s)
  in
  Printf.sprintf
    "%slet %s ?(fx = Scl.Flat_exec.sequential) (input : float array) : %s =\n\
    \  let dv0 = Scl.Flat.of_float_array input in\n\
     %s  %s\n"
    header name result_type body final

let compilable (e : Ast.expr) : bool =
  match generate e with
  | (_ : string) -> true
  | exception Not_compilable _ -> false
