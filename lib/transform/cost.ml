(* A static cost model over the skeleton AST, in the machine's cost
   parameters: how long one application of the pipeline to an n-element
   ParArray takes on p processors.

   The model follows the usual BSP-style accounting for skeleton templates:
   - elementwise stages: (n/p) applications of the payload function, plus a
     barrier to close the superstep;
   - reductions/scans:   local pass + log p combine rounds of messages;
   - communication:      alpha-beta transfer of the moved bytes;
   - Foldr_compose:      sequential (n applications on one processor) —
     which is exactly why the map-distribution rule pays off.

   It is an *estimate* used to rank rewrites; the simulator is the
   ground truth (and the test suite checks the model ranks pipelines in the
   same order as the simulator on the ablation workloads). *)

open Machine

let word_bytes = 8

type env = { cm : Cost_model.t; procs : int; flat : bool }

(* Per-element discount for stages the flat host tier can run: unboxed
   Bigarray loops with the operator matched outside the loop, versus the
   boxed skeletons' closure call + Value boxing per element.  Applied
   only to the flop term — barriers and combine-round messages are tier-
   independent.  Calibrated against the host/{boxed,flat}-scan bench
   pair; like the rest of the model it ranks plans, the simulator stays
   the ground truth. *)
let flat_factor = 0.25

let ceil_div a b = (a + b - 1) / b

let log2_ceil p =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) ((n + 1) / 2) in
  go 0 p

let flop env k = Cost_model.flops env.cm k
let barrier env = Cost_model.barrier_time env.cm ~procs:env.procs

let msg env words =
  Cost_model.transfer_time env.cm ~hops:1 ~bytes:(words * word_bytes)
  +. env.cm.Cost_model.send_overhead +. env.cm.Cost_model.recv_overhead

let elementwise env ~n fn_cost = flop env (ceil_div n env.procs * fn_cost) +. barrier env

let reduce_rounds env fn_cost = float_of_int (log2_ceil env.procs) *. (msg env 1 +. flop env fn_cost)

let discount1 env f work = if env.flat && Flat_fns.fun1_of f <> None then work *. flat_factor else work
let discount2 env f work = if env.flat && Flat_fns.fun2_of f <> None then work *. flat_factor else work

let rec estimate env ~n (e : Ast.expr) : float =
  match e with
  | Ast.Id -> 0.0
  | Ast.Compose (f, g) -> estimate env ~n g +. estimate env ~n f
  | Ast.Map f ->
      discount1 env f (flop env (ceil_div n env.procs * f.Fn.cost)) +. barrier env
  | Ast.Imap f -> elementwise env ~n f.Fn.cost2
  | Ast.Fold f ->
      discount2 env f (flop env (ceil_div n env.procs * f.Fn.cost2))
      +. reduce_rounds env f.Fn.cost2
  | Ast.Scan f ->
      discount2 env f (flop env (2 * ceil_div n env.procs * f.Fn.cost2))
      +. reduce_rounds env f.Fn.cost2
  | Ast.Foldr_compose (f, g) ->
      (* inherently sequential: all n elements on one processor *)
      flop env (n * (f.Fn.cost2 + g.Fn.cost)) +. barrier env
  | Ast.Rotate 0 -> 0.0
  | Ast.Rotate _ -> (2.0 *. msg env (ceil_div n env.procs)) +. barrier env
  | Ast.Send f | Ast.Fetch f ->
      ignore f;
      (* irregular movement: every processor exchanges its chunk *)
      (2.0 *. msg env (ceil_div n env.procs)) +. barrier env
  | Ast.Split _ | Ast.Combine ->
      (* regrouping traffic plus group management *)
      msg env (ceil_div n env.procs) +. barrier env
  | Ast.Map_nested body -> estimate env ~n body +. barrier env
  | Ast.Iter_for (k, body) -> float_of_int (max 0 k) *. estimate env ~n body

let estimate_pipeline ?(cm = Cost_model.ap1000) ?(flat = false) ~procs ~n e =
  if procs <= 0 then invalid_arg "Cost.estimate_pipeline: procs must be positive";
  estimate { cm; procs; flat } ~n e
