(* Run a skeleton pipeline on the host Scl skeletons. Mirrors Ast.eval
   node for node; every array primitive goes through the Scl layer so the
   pipeline actually exercises the chosen Exec backend (sequential or
   pool). Host skeletons report bad movements with Invalid_argument —
   translated here to Value.Type_error so the backends share one error
   taxonomy (the reference interpreter raises Type_error on the same
   inputs). *)

let wrap name f =
  try f () with Invalid_argument m -> Value.type_error "%s: %s" name m

let pa v = Scl.Par_array.unsafe_of_array (Value.as_arr v)
let arr a = Value.Arr (Scl.Par_array.unsafe_to_array a)

let rec eval ?(exec = Scl.Exec.sequential) (e : Ast.expr) (v : Value.t) : Value.t =
  match e with
  | Ast.Id -> v
  | Ast.Compose (f, g) -> eval ~exec f (eval ~exec g v)
  | Ast.Map f -> wrap "map" (fun () -> arr (Scl.Elementary.map ~exec f.Fn.apply (pa v)))
  | Ast.Imap f ->
      wrap "imap" (fun () ->
          arr (Scl.Elementary.imap ~exec (fun i x -> f.Fn.apply2 (Value.Int i) x) (pa v)))
  | Ast.Fold f ->
      let a = pa v in
      if Scl.Par_array.length a = 0 then Value.type_error "fold: empty array";
      wrap "fold" (fun () -> Scl.Elementary.fold ~exec f.Fn.apply2 a)
  | Ast.Scan f ->
      let a = pa v in
      if Scl.Par_array.length a = 0 then Value.Arr [||]
      else wrap "scan" (fun () -> arr (Scl.Elementary.scan ~exec f.Fn.apply2 a))
  | Ast.Foldr_compose (f, g) ->
      (* Inherently sequential source pattern; computed directly, as on the
         simulator's root processor. *)
      let a = Value.as_arr v in
      if Array.length a = 0 then Value.type_error "foldr: empty array";
      let acc = ref (g.Fn.apply a.(Array.length a - 1)) in
      for i = Array.length a - 2 downto 0 do
        acc := f.Fn.apply2 (g.Fn.apply a.(i)) !acc
      done;
      !acc
  | Ast.Send f ->
      let a = pa v in
      let n = Scl.Par_array.length a in
      if n = 0 then v
      else wrap "send" (fun () -> arr (Scl.Communication.send_one ~exec (fun i -> f.Fn.iapply ~n i) a))
  | Ast.Fetch f ->
      let a = pa v in
      let n = Scl.Par_array.length a in
      wrap "fetch" (fun () -> arr (Scl.Communication.fetch ~exec (fun i -> f.Fn.iapply ~n i) a))
  | Ast.Rotate k ->
      let a = pa v in
      if Scl.Par_array.length a = 0 then v
      else wrap "rotate" (fun () -> arr (Scl.Communication.rotate ~exec k a))
  | Ast.Split p ->
      if p <= 0 then Value.type_error "split: non-positive part count";
      wrap "split" (fun () ->
          let groups = Scl.Partition.split (Scl.Partition.Block p) (pa v) in
          Value.Arr
            (Array.map (fun g -> arr g) (Scl.Par_array.unsafe_to_array groups)))
  | Ast.Combine ->
      wrap "combine" (fun () ->
          let groups = Value.as_arr v in
          let nested =
            Scl.Par_array.unsafe_of_array
              (Array.map (fun g -> Scl.Par_array.unsafe_of_array (Value.as_arr g)) groups)
          in
          arr (Scl.Partition.combine nested))
  | Ast.Map_nested body ->
      wrap "map_nested" (fun () -> arr (Scl.Elementary.map ~exec (eval ~exec body) (pa v)))
  | Ast.Iter_for (k, body) ->
      if k < 0 then Value.type_error "iterFor: negative count";
      let acc = ref v in
      for _ = 1 to k do
        acc := eval ~exec body !acc
      done;
      !acc
