(* Run a skeleton pipeline on the host Scl skeletons. Every array primitive
   goes through the Scl layer so the pipeline actually exercises the chosen
   Exec backend (sequential or pool). Host skeletons report bad movements
   with Invalid_argument — translated here to Value.Type_error so the
   backends share one error taxonomy (the reference interpreter raises
   Type_error on the same inputs).

   Unlike Ast.eval, execution is fusion-aware: the pipeline is walked as a
   chain (application order) and maximal runs of [Map] stages are composed
   into one closure, dispatched to the fused Exec primitives — a map run
   ending in [Fold] becomes one [map_fold] pass, ending in [Scan] one
   [map_scan] pass, and a bare multi-map run a single [map_compose]
   traversal. No intermediate Value.Arr is materialised between fused
   stages. Fusion is meaning-preserving by construction (same functions,
   same application order per element); the differential oracle locks this
   against the reference interpreter.

   Nested pipelines execute on a segmented representation: between [Split]
   and [Combine] the value is a flat payload plus a segment-size
   descriptor, so [Split] never copies (the descriptor is just block
   bounds over the existing array) and [Combine] is the payload itself —
   the host-side mirror of the flattening rules. Shapes outside the
   one-level discipline (doubly nested splits, group-level movements)
   fall back to the materialised evaluator, which handles every case the
   reference interpreter does. *)

let wrap name f =
  try f () with Invalid_argument m -> Value.type_error "%s: %s" name m

let pa v = Scl.Par_array.unsafe_of_array (Value.as_arr v)
let arr a = Value.Arr (Scl.Par_array.unsafe_to_array a)

(* Compose a run of map stages, first stage innermost. *)
let compose_run fns x = List.fold_left (fun v (f : Fn.t) -> f.Fn.apply v) x fns

(* --- flat fast path --------------------------------------------------------

   When a maximal map run (and its fold/scan consumer, if any) consists
   entirely of [Flat_fns]-recognised float primitives AND the value is an
   all-float array, the run dispatches to the unboxed [Scl.Flat_exec]
   kernels: one conversion to flat storage, the fused kernel, one
   conversion back.  Bitwise-identical to the boxed path by construction —
   the same float operations are applied to the same elements in the same
   order (a multi-map run fuses to one closure over unboxed floats, the
   same composition [compose_run] builds over boxed values). *)

let flat_ops_of fns =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | f :: tl -> (
        match Flat_fns.fun1_of f with Some op -> go (op :: acc) tl | None -> None)
  in
  go [] fns

let fuse_ops = function
  | [] -> Scl.Flat_exec.Id
  | [ op ] -> op
  | ops ->
      Scl.Flat_exec.Fun1
        (fun x -> List.fold_left (fun acc op -> Scl.Flat_exec.apply1 op acc) x ops)

let flat_of_value v =
  match v with
  | Value.Arr a when Array.for_all (function Value.Float _ -> true | _ -> false) a ->
      Some (Scl.Flat.of_float_array (Array.map Value.as_float a))
  | _ -> None

let value_of_flat fa =
  Value.Arr (Array.map (fun x -> Value.Float x) (Scl.Flat.to_float_array fa))

(* Try to run [map fns . consumer] (consumer = head of [tl]) on the flat
   tier; [Some (result, remaining_chain)] on success. Empty-array edge
   cases keep the boxed path's behaviour exactly (fold: Type_error; scan:
   empty result) by bailing out to it. *)
let flat_dispatch ~(fx : Scl.Flat_exec.t) fns tl v :
    (Value.t * Ast.expr list) option =
  match flat_ops_of fns with
  | None -> None
  | Some ops -> (
      match flat_of_value v with
      | None -> None
      | Some fa -> (
          let op1 = fuse_ops ops in
          match tl with
          | Ast.Fold op :: tl' when Flat_fns.fun2_of op <> None && Scl.Flat.length fa > 0 ->
              let op2 = Option.get (Flat_fns.fun2_of op) in
              Some (Value.Float (fx.Scl.Flat_exec.fmap_fold op1 op2 fa), tl')
          | Ast.Scan op :: tl' when Flat_fns.fun2_of op <> None && Scl.Flat.length fa > 0 ->
              let op2 = Option.get (Flat_fns.fun2_of op) in
              Some (value_of_flat (fx.Scl.Flat_exec.fmap_scan op1 op2 fa), tl')
          | tl' ->
              if ops = [] then None (* bare consumer was not eligible: no work here *)
              else Some (value_of_flat (fx.Scl.Flat_exec.fmap op1 fa), tl')))

(* --- segmented values ------------------------------------------------------

   The host-side segment descriptor: a flat payload with per-segment
   sizes. [reify] materialises the nested array the reference interpreter
   would have built; the segments are exactly the [Split] block groups, so
   reify-then-eval and segmented-eval agree by construction. *)

type hval = Plain of Value.t | Seg of Value.t array * int array

let seg_starts sizes =
  let s = Array.length sizes in
  let starts = Array.make (s + 1) 0 in
  for j = 0 to s - 1 do
    starts.(j + 1) <- starts.(j) + sizes.(j)
  done;
  starts

let reify = function
  | Plain v -> v
  | Seg (payload, sizes) ->
      let starts = seg_starts sizes in
      Value.Arr
        (Array.init (Array.length sizes) (fun j ->
             Value.Arr (Array.sub payload starts.(j) sizes.(j))))

let is_nested_stage = function
  | Ast.Split _ | Ast.Combine | Ast.Map_nested _ -> true
  | _ -> false

let rec eval_node ~exec ~fx (e : Ast.expr) (v : Value.t) : Value.t =
  match e with
  | Ast.Id -> v
  | Ast.Compose _ -> eval_chain ~exec ~fx (Ast.to_chain e) v
  | Ast.Map f -> wrap "map" (fun () -> arr (Scl.Elementary.map ~exec f.Fn.apply (pa v)))
  | Ast.Imap f ->
      wrap "imap" (fun () ->
          arr (Scl.Elementary.imap ~exec (fun i x -> f.Fn.apply2 (Value.Int i) x) (pa v)))
  | Ast.Fold f ->
      let a = pa v in
      if Scl.Par_array.length a = 0 then Value.type_error "fold: empty array";
      wrap "fold" (fun () -> Scl.Elementary.fold ~exec f.Fn.apply2 a)
  | Ast.Scan f ->
      let a = pa v in
      if Scl.Par_array.length a = 0 then Value.Arr [||]
      else wrap "scan" (fun () -> arr (Scl.Elementary.scan ~exec f.Fn.apply2 a))
  | Ast.Foldr_compose (f, g) ->
      (* Inherently sequential source pattern; computed directly, as on the
         simulator's root processor. *)
      let a = Value.as_arr v in
      if Array.length a = 0 then Value.type_error "foldr: empty array";
      let acc = ref (g.Fn.apply a.(Array.length a - 1)) in
      for i = Array.length a - 2 downto 0 do
        acc := f.Fn.apply2 (g.Fn.apply a.(i)) !acc
      done;
      !acc
  | Ast.Send f ->
      let a = pa v in
      let n = Scl.Par_array.length a in
      if n = 0 then v
      else
        wrap "send" (fun () -> arr (Scl.Communication.send_one ~exec (fun i -> f.Fn.iapply ~n i) a))
  | Ast.Fetch f ->
      let a = pa v in
      let n = Scl.Par_array.length a in
      wrap "fetch" (fun () -> arr (Scl.Communication.fetch ~exec (fun i -> f.Fn.iapply ~n i) a))
  | Ast.Rotate k ->
      let a = pa v in
      if Scl.Par_array.length a = 0 then v
      else wrap "rotate" (fun () -> arr (Scl.Communication.rotate ~exec k a))
  | Ast.Split p ->
      if p <= 0 then Value.type_error "split: non-positive part count";
      wrap "split" (fun () ->
          let groups = Scl.Partition.split (Scl.Partition.Block p) (pa v) in
          Value.Arr (Array.map (fun g -> arr g) (Scl.Par_array.unsafe_to_array groups)))
  | Ast.Combine ->
      wrap "combine" (fun () ->
          let groups = Value.as_arr v in
          let nested =
            Scl.Par_array.unsafe_of_array
              (Array.map (fun g -> Scl.Par_array.unsafe_of_array (Value.as_arr g)) groups)
          in
          arr (Scl.Partition.combine nested))
  | Ast.Map_nested body ->
      let chain = Ast.to_chain body in
      wrap "map_nested" (fun () ->
          arr (Scl.Elementary.map ~exec (fun g -> eval_chain ~exec ~fx chain g) (pa v)))
  | Ast.Iter_for (k, body) ->
      if k < 0 then Value.type_error "iterFor: negative count";
      let chain = Ast.to_chain body in
      let acc = ref v in
      for _ = 1 to k do
        acc := eval_chain ~exec ~fx chain !acc
      done;
      !acc

and eval_chain ~exec ~fx (chain : Ast.expr list) (v : Value.t) : Value.t =
  match chain with
  | [] -> v
  | Ast.Map f :: rest ->
      (* Collect the maximal run of consecutive maps. *)
      let rec collect acc = function
        | Ast.Map g :: tl -> collect (g :: acc) tl
        | tl -> (List.rev acc, tl)
      in
      let fns, tl = collect [ f ] rest in
      let g = compose_run fns in
      (match flat_dispatch ~fx fns tl v with
      | Some (r, tl') -> eval_chain ~exec ~fx tl' r
      | None -> (
      match tl with
      | Ast.Fold op :: tl' ->
          let a = pa v in
          if Scl.Par_array.length a = 0 then Value.type_error "fold: empty array";
          let r = wrap "fold" (fun () -> Scl.Elementary.map_fold ~exec op.Fn.apply2 g a) in
          eval_chain ~exec ~fx tl' r
      | Ast.Scan op :: tl' ->
          let a = pa v in
          let r =
            if Scl.Par_array.length a = 0 then Value.Arr [||]
            else
              wrap "scan" (fun () -> arr (Scl.Elementary.map_scan ~exec op.Fn.apply2 g a))
          in
          eval_chain ~exec ~fx tl' r
      | tl' ->
          let r =
            match fns with
            | [ f1 ] -> wrap "map" (fun () -> arr (Scl.Elementary.map ~exec f1.Fn.apply (pa v)))
            | fns ->
                (* Multi-map run with no fusable consumer: one traversal of
                   the composed closure via the fused map-map primitive. *)
                let rec split_last acc = function
                  | [ last ] -> (List.rev acc, last)
                  | x :: xs -> split_last (x :: acc) xs
                  | [] -> assert false
                in
                let prefix, last = split_last [] fns in
                wrap "map" (fun () ->
                    arr (Scl.Elementary.map_compose ~exec last.Fn.apply (compose_run prefix) (pa v)))
          in
          eval_chain ~exec ~fx tl' r))
  | ((Ast.Fold _ | Ast.Scan _) :: _) as chain' -> (
      (* A bare fold/scan over recognised float data also runs flat. *)
      match flat_dispatch ~fx [] chain' v with
      | Some (r, tl') -> eval_chain ~exec ~fx tl' r
      | None -> (
          match chain' with
          | stage :: rest -> eval_chain ~exec ~fx rest (eval_node ~exec ~fx stage v)
          | [] -> assert false))
  | stage :: rest -> eval_chain ~exec ~fx rest (eval_node ~exec ~fx stage v)

(* Top-level driver over segmented values. Maximal flat runs batch through
   the fusion-aware [eval_chain]; the three nesting stages operate on the
   descriptor when the shape fits the one-level discipline, and fall back
   to the materialised [eval_node] (exact reference semantics, including
   its error taxonomy) when it does not. *)
and eval_hchain ~exec ~fx (chain : Ast.expr list) (hv : hval) : hval =
  let fallback stage rest hv = eval_hchain ~exec ~fx rest (Plain (eval_node ~exec ~fx stage (reify hv))) in
  match chain with
  | [] -> hv
  | Ast.Split p :: rest -> (
      match hv with
      | Plain (Value.Arr a) when p > 0 ->
          let b = Ast.block_bounds ~total:(Array.length a) ~parts:p in
          let sizes = Array.init p (fun k -> b.(k + 1) - b.(k)) in
          eval_hchain ~exec ~fx rest (Seg (a, sizes))
      | _ -> fallback (Ast.Split p) rest hv)
  | Ast.Combine :: rest -> (
      match hv with
      | Seg (payload, _) ->
          (* groups are contiguous slices of the payload, so concatenating
             them is the payload — combine costs nothing *)
          eval_hchain ~exec ~fx rest (Plain (Value.Arr payload))
      | Plain _ -> fallback Ast.Combine rest hv)
  | Ast.Map_nested body :: rest -> (
      match hv with
      | Seg (payload, sizes) ->
          let starts = seg_starts sizes in
          let chain_b = Ast.to_chain body in
          let results =
            wrap "map_nested" (fun () ->
                Scl.Par_array.unsafe_to_array
                  (Scl.Elementary.map ~exec
                     (fun g -> eval_chain ~exec ~fx chain_b g)
                     (Scl.Par_array.unsafe_of_array
                        (Array.init (Array.length sizes) (fun j ->
                             Value.Arr (Array.sub payload starts.(j) sizes.(j)))))))
          in
          let hv' =
            if Array.for_all (function Value.Arr _ -> true | _ -> false) results then
              (* still grouped: re-segment so a following [Combine] stays free *)
              let groups = Array.map Value.as_arr results in
              Seg (Array.concat (Array.to_list groups), Array.map Array.length groups)
            else
              (* e.g. a fold body: one scalar per group, now a flat array *)
              Plain (Value.Arr results)
          in
          eval_hchain ~exec ~fx rest hv'
      | Plain _ -> fallback (Ast.Map_nested body) rest hv)
  | _ ->
      let rec span acc = function
        | st :: tl when not (is_nested_stage st) -> span (st :: acc) tl
        | tl -> (List.rev acc, tl)
      in
      let flat, tl = span [] chain in
      eval_hchain ~exec ~fx tl (Plain (eval_chain ~exec ~fx flat (reify hv)))

let eval ?(exec = Scl.Exec.sequential) ?(fx = Scl.Flat_exec.sequential) ?(optimize = false)
    (e : Ast.expr) (v : Value.t) : Value.t =
  let e =
    if not optimize then e
    else
      let n = match v with Value.Arr a -> Some (Array.length a) | _ -> None in
      (Optimizer.optimize ?n e).Optimizer.output
  in
  reify (eval_hchain ~exec ~fx (Ast.to_chain e) (Plain v))
