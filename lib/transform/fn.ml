(* Named function values carried by the skeleton AST.  Names make rewrite
   results readable; cost fields feed the cost model; the [assoc] flag
   gates the rules whose soundness needs associativity. *)

type t = {
  name : string;
  cost : int;  (* flops per application *)
  apply : Value.t -> Value.t;
}

type t2 = {
  name2 : string;
  cost2 : int;
  assoc : bool;
  apply2 : Value.t -> Value.t -> Value.t;
}

(* Index functions for communication skeletons; [n] is the array length so
   shifts and reversals can be size-aware. *)
type ifn = {
  iname : string;
  iapply : n:int -> int -> int;
}

let id = { name = "id"; cost = 0; apply = Fun.id }

let compose f g =
  {
    name = f.name ^ "." ^ g.name;
    cost = f.cost + g.cost;
    apply = (fun v -> f.apply (g.apply v));
  }

let is_id f = f.name = "id"

(* --- a small standard library of primitives for tests and examples ------ *)

let lift_int name cost f = { name; cost; apply = (fun v -> Value.Int (f (Value.as_int v))) }

let incr = lift_int "incr" 1 (fun x -> x + 1)
let double = lift_int "double" 1 (fun x -> 2 * x)
let square = lift_int "square" 1 (fun x -> x * x)
let negate = lift_int "negate" 1 (fun x -> -x)
let halve = lift_int "halve" 1 (fun x -> x / 2)

let lift2_int name2 cost2 ~assoc f =
  {
    name2;
    cost2;
    assoc;
    apply2 = (fun a b -> Value.Int (f (Value.as_int a) (Value.as_int b)));
  }

let add = lift2_int "add" 1 ~assoc:true ( + )
let mul = lift2_int "mul" 1 ~assoc:true ( * )
let imax = lift2_int "max" 1 ~assoc:true max
let imin = lift2_int "min" 1 ~assoc:true min
let sub = lift2_int "sub" 1 ~assoc:false ( - )

(* Float primitives.  All are exact on dyadic rationals (multiples of a
   power of two, well inside the 2^53 integer range): fincr/fneg/fhalve/
   fdouble map dyadics to dyadics, and fadd on dyadics is exactly
   associative — so float pipelines stay bit-identical across backends even
   though parallel fold/scan reassociate.  fmax/fmin are associative on all
   floats.  Overflow-prone ops (fmul, fsquare) are deliberately absent from
   this library: they can reach inf where reassociation is no longer
   exact. *)

let lift_float name cost f = { name; cost; apply = (fun v -> Value.Float (f (Value.as_float v))) }

let fincr = lift_float "fincr" 1 (fun x -> x +. 1.0)
let fneg = lift_float "fneg" 1 (fun x -> -.x)
let fhalve = lift_float "fhalve" 1 (fun x -> x *. 0.5)
let fdouble = lift_float "fdouble" 1 (fun x -> x *. 2.0)

let lift2_float name2 cost2 ~assoc f =
  {
    name2;
    cost2;
    assoc;
    apply2 = (fun a b -> Value.Float (f (Value.as_float a) (Value.as_float b)));
  }

let fadd = lift2_float "fadd" 1 ~assoc:true ( +. )
let fmax = lift2_float "fmax" 1 ~assoc:true Float.max
let fmin = lift2_float "fmin" 1 ~assoc:true Float.min

(* Pair primitives (components are Ints in the test library, so the
   pointwise binary ops are exact and associative). *)

let pswap =
  {
    name = "pswap";
    cost = 1;
    apply =
      (fun v ->
        let a, b = Value.as_pair v in
        Value.Pair (b, a));
  }

let pincr_both =
  {
    name = "pincr_both";
    cost = 2;
    apply =
      (fun v ->
        let a, b = Value.as_pair v in
        Value.Pair (Value.Int (Value.as_int a + 1), Value.Int (Value.as_int b + 1)));
  }

let lift2_pair_int name2 cost2 ~assoc f =
  {
    name2;
    cost2;
    assoc;
    apply2 =
      (fun x y ->
        let a1, b1 = Value.as_pair x and a2, b2 = Value.as_pair y in
        Value.Pair
          ( Value.Int (f (Value.as_int a1) (Value.as_int a2)),
            Value.Int (f (Value.as_int b1) (Value.as_int b2)) ));
  }

let padd_pw = lift2_pair_int "padd_pw" 2 ~assoc:true ( + )
let pmax_pw = lift2_pair_int "pmax_pw" 2 ~assoc:true max

(* Index-aware unary function for imap nodes: receives (index, value). *)
let indexed name2 cost2 f =
  { name2; cost2; assoc = false; apply2 = (fun i v -> f (Value.as_int i) v) }

let add_index = indexed "add_index" 1 (fun i v -> Value.Int (i + Value.as_int v))

(* --- index functions ------------------------------------------------------ *)

let i_id = { iname = "id"; iapply = (fun ~n:_ i -> i) }

let i_shift k =
  { iname = Printf.sprintf "shift(%d)" k; iapply = (fun ~n i -> (((i + k) mod n) + n) mod n) }

let i_reverse = { iname = "reverse"; iapply = (fun ~n i -> n - 1 - i) }

let i_compose f g =
  {
    iname = f.iname ^ "." ^ g.iname;
    iapply = (fun ~n i -> f.iapply ~n (g.iapply ~n i));
  }

let i_is_id f = f.iname = "id"
