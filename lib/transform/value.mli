(** The value universe of the skeleton-program interpreter. *)

type t =
  | Int of int
  | Float of float
  | Pair of t * t
  | Arr of t array  (** both ParArrays and nested group arrays *)

exception Type_error of string

val type_error : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Type_error} with a formatted message. *)

val as_arr : t -> t array
val as_int : t -> int
val as_float : t -> float
val as_pair : t -> t * t
val of_int_array : int array -> t
val to_int_array : t -> int array

val equal : t -> t -> bool
(** Structural, with relative tolerance on floats. *)

val depth : t -> int
(** Nesting depth (0 for scalars). *)

val pp : Format.formatter -> t -> unit
