(** The property-check driver: generate, check, shrink, replay.

    Each case gets its own PRNG stream split off a master stream seeded
    with [config.seed], so case [i] is replayable from [(seed, i)] alone
    regardless of what other cases did. *)

type config = {
  count : int;  (** target number of checked (non-skipped) cases *)
  max_size : int;  (** size budget ramps linearly from 1 up to this *)
  seed : int;
  max_shrink_steps : int;
  max_discard_ratio : int;
      (** give up after [count * max_discard_ratio] skipped cases *)
}

val default : config
(** 100 cases, max size 10, seed 42, 2000 shrink steps, ratio 10. *)

type result_ =
  | Pass_case
  | Skip_case  (** precondition not met — does not count toward [count] *)
  | Fail_case of string

type 'a failure = {
  original : 'a;
  shrunk : 'a;
  shrink_steps : int;
  case_index : int;  (** replay: split the master stream this many times *)
  seed : int;
  size : int;  (** size budget the failing case was generated at *)
  message : string;  (** from the check of the shrunk case *)
}

type 'a outcome =
  | Pass of { checked : int; discarded : int }
  | Fail of 'a failure
  | Gave_up of { checked : int; discarded : int }

val check :
  ?config:config ->
  ?shrink:'a Shrink.t ->
  gen:'a Gen.t ->
  prop:('a -> result_) ->
  unit ->
  'a outcome
(** Exceptions raised by [prop] count as failures (message = the exception);
    during shrinking a candidate is only accepted if it still fails. *)

val replay : ?config:config -> gen:'a Gen.t -> case_index:int -> size:int -> 'a
(** Regenerate the case a failure reported, from the seed alone. *)

val pp_failure : ('a -> string) -> Format.formatter -> 'a failure -> unit
