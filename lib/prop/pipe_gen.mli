(** Typed random generation of well-formed skeleton pipelines and inputs.

    The generator tracks the static shape of the value flowing through the
    chain (flat array of known length, nested groups, or scalar) so every
    generated pipeline evaluates without a type error under the reference
    interpreter.

    {2 Precondition set}

    Generated cases respect the documented preconditions of the backends;
    anything outside them is intentionally-partial behaviour, not a
    divergence:

    - the input is a flat [Int] array with [n >= 1] ([n = 0] makes the
      size-aware index functions divide by zero before any backend runs);
    - [Fold]/[Scan] operators are associative (backends chunk and combine
      in index order — the paper calls non-associative results undefined);
    - [Send] index functions are in-range permutations;
    - [Split p] has [1 <= p <= n], so every group is non-empty and nested
      folds are total;
    - [Iter_for] counts are non-negative. *)

type case = { chain : Transform.Ast.expr list; input : Transform.Value.t }

val expr : case -> Transform.Ast.expr
val print : case -> string
val is_flat : case -> bool
(** No [Split]/[Combine]/[Map_nested] anywhere (executable on [Sim_exec]). *)

val gen : ?allow_nested:bool -> unit -> case Gen.t
(** [~allow_nested:false] restricts to flat pipelines. *)

val shrink : case Shrink.t
(** Drops stages, shrinks rotation/iteration/split constants, and shrinks
    the input array (length and element values). Candidates may be
    ill-typed; the properties skip those. *)

(** {1 Building blocks (shared with the rule oracle)} *)

val gen_fn : Transform.Fn.t Gen.t
val gen_fn2_assoc : Transform.Fn.t2 Gen.t
val gen_fn2_any : Transform.Fn.t2 Gen.t
val gen_perm_ifn : Transform.Fn.ifn Gen.t
(** Permutation index functions valid at every array length. *)

val gen_fetch_ifn : n:int -> Transform.Fn.ifn Gen.t
(** Adds non-injective sources (constants), valid at length [n]. *)

val gen_lp_stage : Transform.Ast.expr Gen.t
(** One flat, length-preserving stage, well-typed at every length [>= 1]. *)

val gen_ctx : max_stages:int -> Transform.Ast.expr list Gen.t
(** A context chain of [0..max_stages] length-preserving stages. *)

val gen_input : n:int -> Transform.Value.t Gen.t
