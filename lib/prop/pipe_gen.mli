(** Typed random generation of well-formed skeleton pipelines and inputs.

    The generator tracks the static shape of the value flowing through the
    chain (flat array of known length, nested groups, or scalar) so every
    generated pipeline evaluates without a type error under the reference
    interpreter.

    Inputs are not just flat [Int] arrays: elements may be floats or
    [Int]-component pairs (each with its own type-correct stage pool), and
    arrays may be empty. Float inputs are multiples of [0.5] and float
    operators are restricted to the exactly-associative-on-dyadics subset
    in {!Transform.Fn}, so float pipelines are bit-identical across
    backends despite parallel fold/scan reassociation.

    {2 Precondition set}

    Generated cases respect the documented preconditions of the backends;
    anything outside them is intentionally-partial behaviour, not a
    divergence:

    - the input is a flat array with [n >= 0]; at [n = 0] only stages that
      are total on the empty array are generated ([Fold], [Foldr_compose]
      and [Split] are gated on [n >= 1] / [n >= 2] — index functions are
      never applied at [n = 0], so size-aware shifts cannot divide by
      zero);
    - [Fold]/[Scan] operators are associative (backends chunk and combine
      in index order — the paper calls non-associative results undefined);
    - [Send] index functions are in-range permutations;
    - [Split p] has [1 <= p <= n], so every group is non-empty and nested
      folds are total;
    - [Iter_for] counts are non-negative. *)

type case = { chain : Transform.Ast.expr list; input : Transform.Value.t }

val expr : case -> Transform.Ast.expr
val print : case -> string
val is_flat : case -> bool
(** No [Split]/[Combine]/[Map_nested] anywhere. *)

val sim_executable : case -> bool
(** Static mirror of [Sim_exec]'s one-level flattening discipline: [true]
    guarantees the simulator will not raise [Sim_exec.Unsupported] on
    this case (it may still raise [Value.Type_error], exactly where the
    reference interpreter does). Flat cases are always sim-executable;
    one-level [split .. mapn .. combine] regions with flat bodies are
    too. Conservative on shapes the segmented executor rejects. *)

type elem = EInt | EFloat | EPair

val elem_name : elem -> string

val gen : ?allow_nested:bool -> ?elem:elem -> unit -> case Gen.t
(** [~allow_nested:false] restricts to flat pipelines; [?elem] pins the
    element type (default: random, ints weighted highest). *)

val shrink : case Shrink.t
(** Drops stages, shrinks rotation/iteration/split constants, and shrinks
    the input array (length and element values, including floats on the
    half-integer grid and pair components). Candidates may be ill-typed;
    the properties skip those. *)

(** {1 Building blocks (shared with the rule oracle)} *)

val gen_fn : Transform.Fn.t Gen.t
val gen_fn2_assoc : Transform.Fn.t2 Gen.t
val gen_fn2_any : Transform.Fn.t2 Gen.t

val gen_fn_of : elem -> Transform.Fn.t Gen.t
(** Type-correct unary pool for an element type. *)

val gen_fn2_assoc_of : elem -> Transform.Fn.t2 Gen.t
(** Type-correct associative binary pool for an element type. *)

val gen_perm_ifn : Transform.Fn.ifn Gen.t
(** Permutation index functions valid at every array length. *)

val gen_fetch_ifn : n:int -> Transform.Fn.ifn Gen.t
(** Adds non-injective sources (constants) when [n >= 1]; falls back to
    permutations at [n = 0] (where they are never applied). *)

val gen_lp_stage : Transform.Ast.expr Gen.t
(** One flat, length-preserving stage, well-typed at every length [>= 1]. *)

val gen_lp_stage_of : elem -> Transform.Ast.expr Gen.t
(** As {!gen_lp_stage}, for a given element type. *)

val gen_ctx : max_stages:int -> Transform.Ast.expr list Gen.t
(** A context chain of [0..max_stages] length-preserving stages. *)

val gen_input : n:int -> Transform.Value.t Gen.t
(** Flat [Int] array of length [n] (the historical generator; see
    {!gen_input_elem}). *)

val gen_input_elem : elem:elem -> n:int -> Transform.Value.t Gen.t
