(* Sized generators over Runtime.Xoshiro. A generator consumes randomness
   from a mutable PRNG state; the runner hands every case its own state
   derived by splitting a master stream, so cases are independent and each
   is replayable from (seed, case index). *)

type 'a t = size:int -> Runtime.Xoshiro.t -> 'a

let generate ?(size = 10) ~seed (g : 'a t) : 'a =
  g ~size (Runtime.Xoshiro.of_seed seed)

let return x : 'a t = fun ~size:_ _rng -> x
let map f (g : 'a t) : 'b t = fun ~size rng -> f (g ~size rng)

let map2 f (ga : 'a t) (gb : 'b t) : 'c t =
 fun ~size rng ->
  let a = ga ~size rng in
  let b = gb ~size rng in
  f a b

let bind (g : 'a t) (f : 'a -> 'b t) : 'b t =
 fun ~size rng -> (f (g ~size rng)) ~size rng

let ( let* ) = bind
let ( let+ ) g f = map f g
let pair ga gb = map2 (fun a b -> (a, b)) ga gb

let triple ga gb gc =
  let* a = ga in
  let* b = gb in
  let+ c = gc in
  (a, b, c)

let sized f : 'a t = fun ~size rng -> (f size) ~size rng
let resize n (g : 'a t) : 'a t = fun ~size:_ rng -> g ~size:n rng
let bool : bool t = fun ~size:_ rng -> Runtime.Xoshiro.bool rng

let int_range lo hi : int t =
  if hi < lo then invalid_arg "Gen.int_range: hi < lo";
  fun ~size:_ rng -> lo + Runtime.Xoshiro.int rng (hi - lo + 1)

let small_nat : int t = fun ~size rng -> Runtime.Xoshiro.int rng (max 1 size + 1)

let oneof gens : 'a t =
  if gens = [] then invalid_arg "Gen.oneof: empty list";
  let arr = Array.of_list gens in
  fun ~size rng -> (arr.(Runtime.Xoshiro.int rng (Array.length arr))) ~size rng

let oneof_val xs = oneof (List.map return xs)

let frequency weighted : 'a t =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  if total <= 0 then invalid_arg "Gen.frequency: non-positive total weight";
  fun ~size rng ->
    let k = Runtime.Xoshiro.int rng total in
    let rec pick k = function
      | [] -> assert false
      | (w, g) :: rest -> if k < w then g ~size rng else pick (k - w) rest
    in
    pick k weighted

let list_size (len : int t) (elem : 'a t) : 'a list t =
 fun ~size rng ->
  let n = len ~size rng in
  List.init n (fun _ -> elem ~size rng)

let array_size (len : int t) (elem : 'a t) : 'a array t =
 fun ~size rng ->
  let n = len ~size rng in
  Array.init n (fun _ -> elem ~size rng)
