(* Rule oracle, cost-consistency check and differential oracle. *)

open Transform
open Gen

let rec drop i l = if i <= 0 then l else match l with [] -> [] | _ :: t -> drop (i - 1) t

let rec take i l =
  if i <= 0 then [] else match l with [] -> [] | x :: t -> x :: take (i - 1) t

let apply_rule_somewhere (rule : Rules.rule) chain =
  let len = List.length chain in
  let rec go i =
    if i > len then None
    else
      match rule.Rules.apply_at (drop i chain) with
      | Some (suffix', _) -> Some (take i chain @ suffix')
      | None -> go (i + 1)
  in
  go 0

let vstr v = Fmt.str "%a" Value.pp v

(* --- rule oracle ------------------------------------------------------------ *)

(* A known-firing instance of each rule's pattern, with random parameters.
   Returns (pattern stages, ends_scalar). [n] is the array length at the
   injection point (the contexts are length-preserving). *)
let gen_pattern (rule : Rules.rule) ~n : (Ast.expr list * bool) Gen.t option =
  let nonzero g = map (fun k -> if k = 0 then 1 else k) g in
  match rule.Rules.rname with
  | "map-fusion" ->
      Some
        (let* f = Pipe_gen.gen_fn in
         let+ g = Pipe_gen.gen_fn in
         ([ Ast.Map f; Ast.Map g ], false))
  | "map-distribution" ->
      Some
        (let* f = Pipe_gen.gen_fn2_assoc in
         let+ g = Pipe_gen.gen_fn in
         ([ Ast.Foldr_compose (f, g) ], true))
  | "send-fusion" ->
      Some
        (let* a = Pipe_gen.gen_perm_ifn in
         let+ b = Pipe_gen.gen_perm_ifn in
         ([ Ast.Send a; Ast.Send b ], false))
  | "fetch-fusion" ->
      Some
        (let* a = Pipe_gen.gen_fetch_ifn ~n in
         let+ b = Pipe_gen.gen_fetch_ifn ~n in
         ([ Ast.Fetch a; Ast.Fetch b ], false))
  | "rotate-fusion" ->
      Some
        (let* a = int_range (-2 * n) (2 * n) in
         let+ b = int_range (-2 * n) (2 * n) in
         ([ Ast.Rotate a; Ast.Rotate b ], false))
  | "rotate-fetch-fusion" ->
      Some
        (let* k = nonzero (int_range (-2 * n) (2 * n)) in
         let* f = Pipe_gen.gen_fetch_ifn ~n in
         let+ order = bool in
         ((if order then [ Ast.Rotate k; Ast.Fetch f ] else [ Ast.Fetch f; Ast.Rotate k ]), false))
  | "identity-elimination" ->
      Some
        (let* body = Pipe_gen.gen_lp_stage in
         let* k = int_range 0 3 in
         let+ inst =
           oneof_val
             [
               [ Ast.Id ];
               [ Ast.Map Fn.id ];
               [ Ast.Send Fn.i_id ];
               [ Ast.Fetch Fn.i_id ];
               [ Ast.Rotate 0 ];
               [ Ast.Map_nested Ast.Id ];
               [ Ast.Iter_for (0, body) ];
               [ Ast.Iter_for (1, body) ];
               [ Ast.Iter_for (k, Ast.Id) ];
             ]
         in
         (inst, false))
  | "split-combine-elimination" ->
      Some
        (let+ p = int_range 1 (max 1 (min n 4)) in
         ([ Ast.Split p; Ast.Combine ], false))
  | "flattening(map)" ->
      Some
        (let* p = int_range 1 (max 1 (min n 4)) in
         let+ f = Pipe_gen.gen_fn in
         ([ Ast.Split p; Ast.Map_nested (Ast.Map f); Ast.Combine ], false))
  | "flattening(fold)" ->
      Some
        (let* p = int_range 1 (max 1 (min n 4)) in
         let+ f = Pipe_gen.gen_fn2_assoc in
         ([ Ast.Split p; Ast.Map_nested (Ast.Fold f); Ast.Fold f ], true))
  | "commute(map,rotate)" ->
      Some
        (let* k = int_range (-2 * n) (2 * n) in
         let+ f = Pipe_gen.gen_fn in
         ([ Ast.Rotate k; Ast.Map f ], false))
  | "commute(map,fetch)" ->
      Some
        (let* g = Pipe_gen.gen_fetch_ifn ~n in
         let+ f = Pipe_gen.gen_fn in
         ([ Ast.Fetch g; Ast.Map f ], false))
  | "commute(map,send)" ->
      Some
        (let* g = Pipe_gen.gen_perm_ifn in
         let+ f = Pipe_gen.gen_fn in
         ([ Ast.Send g; Ast.Map f ], false))
  | "iterFor-unrolling" ->
      Some
        (let* k = int_range 2 8 in
         let+ body = list_size (int_range 1 3) Pipe_gen.gen_lp_stage in
         ([ Ast.Iter_for (k, Ast.of_chain body) ], false))
  | _ -> None

let gen_rule_case (rule : Rules.rule) : Pipe_gen.case Gen.t =
  match gen_pattern rule ~n:1 with
  | None ->
      (* unknown rule: fall back to random pipelines; the property skips
         cases where the rule never fires *)
      Pipe_gen.gen ()
  | Some _ ->
      let* n = int_range 1 12 in
      let* input = Pipe_gen.gen_input ~n in
      let pat_gen = Option.get (gen_pattern rule ~n) in
      let* pre = Pipe_gen.gen_ctx ~max_stages:2 in
      let* pat, ends_scalar = pat_gen in
      let+ post = if ends_scalar then return [] else Pipe_gen.gen_ctx ~max_stages:2 in
      { Pipe_gen.chain = pre @ pat @ post; input }

(* A generator guaranteed to aim at a firing instance even for rules
   [gen_pattern] has never heard of: rejection-sample random pipelines
   until the rule fires somewhere (bounded; the property skips the rare
   non-firing fallback). This is what lets the soundness sweep iterate
   over *every* rule in [Rules.all] — including ones added later — with a
   meta-test asserting the fire count stayed nonzero. *)
let gen_firing_case (rule : Rules.rule) : Pipe_gen.case Gen.t =
  match gen_pattern rule ~n:1 with
  | Some _ -> gen_rule_case rule
  | None ->
      let rec retry budget =
        let* c = Pipe_gen.gen () in
        if budget <= 0 || apply_rule_somewhere rule c.Pipe_gen.chain <> None then return c
        else retry (budget - 1)
      in
      retry 200

let rule_prop (rule : Rules.rule) (c : Pipe_gen.case) : Runner.result_ =
  match apply_rule_somewhere rule c.Pipe_gen.chain with
  | None -> Runner.Skip_case
  | Some chain' -> (
      let e = Ast.of_chain c.Pipe_gen.chain in
      let e' = Ast.of_chain chain' in
      match Ast.eval e c.Pipe_gen.input with
      | exception Value.Type_error _ -> Runner.Skip_case
      | expected -> (
          match Ast.eval e' c.Pipe_gen.input with
          | exception ex ->
              Runner.Fail_case
                (Printf.sprintf "rewritten program raised %s (rewritten: %s)"
                   (Printexc.to_string ex) (Ast.to_string e'))
          | got ->
              if Value.equal expected got then Runner.Pass_case
              else
                Runner.Fail_case
                  (Printf.sprintf "%s changed meaning: %s <> %s (rewritten: %s)"
                     rule.Rules.rname (vstr expected) (vstr got) (Ast.to_string e'))))

let check_rule ?config (rule : Rules.rule) =
  Runner.check ?config ~shrink:Pipe_gen.shrink ~gen:(gen_firing_case rule)
    ~prop:(rule_prop rule) ()

(* --- cost-model consistency -------------------------------------------------

   If the static cost model ranks the normalised pipeline as cheaper, the
   simulator must not report a regression beyond tolerance. (The model is
   an estimate; the simulator is the ground truth.) *)

let cost_prop ~procs ~tolerance (c : Pipe_gen.case) : Runner.result_ =
  if not (Pipe_gen.sim_executable c) then Runner.Skip_case
  else
    let n = match c.Pipe_gen.input with Value.Arr a -> Array.length a | _ -> 0 in
    if n < 1 then Runner.Skip_case
    else
      let e = Pipe_gen.expr c in
      let e', _steps = Rewrite.normalize e in
      if Ast.to_string e' = Ast.to_string e then Runner.Skip_case
      else
        let c0 = Cost.estimate_pipeline ~procs ~n e in
        let c1 = Cost.estimate_pipeline ~procs ~n e' in
        if c1 >= c0 then Runner.Pass_case
        else
          try
            let _, s0 = Sim_exec.run ~procs e c.Pipe_gen.input in
            let _, s1 = Sim_exec.run ~procs e' c.Pipe_gen.input in
            let m0 = s0.Machine.Sim.makespan and m1 = s1.Machine.Sim.makespan in
            if m1 <= (m0 *. tolerance) +. 1e-9 then Runner.Pass_case
            else
              Runner.Fail_case
                (Printf.sprintf
                   "cost model claims improvement (%.3g -> %.3g) but simulated makespan \
                    regressed %.3g -> %.3g (rewritten: %s)"
                   c0 c1 m0 m1 (Ast.to_string e'))
          with Sim_exec.Unsupported _ | Value.Type_error _ -> Runner.Skip_case

let check_cost ?config ~procs ~tolerance () =
  Runner.check ?config ~shrink:Pipe_gen.shrink ~gen:(Pipe_gen.gen ())
    ~prop:(cost_prop ~procs ~tolerance) ()

(* --- differential oracle ---------------------------------------------------- *)

type diff_stats = {
  mutable compared : int;
  mutable sim_ran : int;
  mutable sim_skipped : int;
}

let new_stats () = { compared = 0; sim_ran = 0; sim_skipped = 0 }

let diff_prop ?pool_exec ?stats ~sim_procs (c : Pipe_gen.case) : Runner.result_ =
  let n = match c.Pipe_gen.input with Value.Arr a -> Array.length a | _ -> -1 in
  if n < 0 then Runner.Skip_case (* non-array input (shrink candidates only) *)
  else
    let e = Pipe_gen.expr c in
    match Ast.eval e c.Pipe_gen.input with
    | exception Value.Type_error _ -> Runner.Skip_case
    | expected ->
        let sim_ok = Pipe_gen.sim_executable c in
        (match stats with
        | Some s ->
            s.compared <- s.compared + 1;
            if sim_ok then s.sim_ran <- s.sim_ran + 1 else s.sim_skipped <- s.sim_skipped + 1
        | None -> ());
        let backends =
          (("host-seq", fun () -> Host_exec.eval e c.Pipe_gen.input)
          :: ("host-opt", fun () -> Host_exec.eval ~optimize:true e c.Pipe_gen.input)
          ::
          (match pool_exec with
          | Some exec ->
              [
                ("host-pool", fun () -> Host_exec.eval ~exec e c.Pipe_gen.input);
                ( "host-pool-opt",
                  fun () -> Host_exec.eval ~exec ~optimize:true e c.Pipe_gen.input );
              ]
          | None -> []))
          @
          if sim_ok then
            List.map
              (fun p ->
                (Printf.sprintf "sim-p%d" p, fun () -> fst (Sim_exec.run ~procs:p e c.Pipe_gen.input)))
              sim_procs
          else []
        in
        let rec run = function
          | [] -> Runner.Pass_case
          | (who, f) :: rest -> (
              match f () with
              | exception ex ->
                  Runner.Fail_case
                    (Printf.sprintf "%s raised %s but the reference returned %s" who
                       (Printexc.to_string ex) (vstr expected))
              | got ->
                  if Value.equal expected got then run rest
                  else
                    Runner.Fail_case
                      (Printf.sprintf "%s diverged: %s <> reference %s" who (vstr got)
                         (vstr expected)))
        in
        run backends

let check_differential ?config ?pool_exec ?stats ~sim_procs () =
  Runner.check ?config ~shrink:Pipe_gen.shrink ~gen:(Pipe_gen.gen ())
    ~prop:(diff_prop ?pool_exec ?stats ~sim_procs) ()

(* --- fused-primitive oracle --------------------------------------------------

   The fused Exec primitives (pmap_reduce / pmap_scan / pmap2, surfaced as
   Elementary.map_fold / map_scan / map_compose) must agree with their
   composed two-pass forms on every backend.  Cases are drawn from the same
   element-typed pools as the pipeline generator, so the agreement is
   checked over ints, dyadic floats and pairs, at lengths 0..40. *)

type fused_case = {
  felem : Pipe_gen.elem;
  ff : Fn.t;  (* map payload *)
  fop : Fn.t2;  (* associative combine *)
  fg : Fn.t;  (* second map payload, for map_compose *)
  finput : Value.t;
}

let print_fused fc =
  Printf.sprintf "elem=%s map=%s op=%s map2=%s input=%s"
    (Pipe_gen.elem_name fc.felem) fc.ff.Fn.name fc.fop.Fn.name2 fc.fg.Fn.name
    (Fmt.str "%a" Value.pp fc.finput)

let gen_fused_case : fused_case Gen.t =
  let* felem = oneof_val [ Pipe_gen.EInt; Pipe_gen.EFloat; Pipe_gen.EPair ] in
  let* ff = Pipe_gen.gen_fn_of felem in
  let* fop = Pipe_gen.gen_fn2_assoc_of felem in
  let* fg = Pipe_gen.gen_fn_of felem in
  let* n = frequency [ (1, return 0); (6, int_range 1 40) ] in
  let+ finput = Pipe_gen.gen_input_elem ~elem:felem ~n in
  { felem; ff; fop; fg; finput }

let shrink_fused : fused_case Shrink.t =
 fun fc ->
  match fc.finput with
  | Value.Arr a ->
      Seq.map (fun a' -> { fc with finput = Value.Arr a' }) (Shrink.array a)
  | _ -> Seq.empty

let fused_prop ?pool_exec (fc : fused_case) : Runner.result_ =
  let a = Scl.Par_array.of_array (Value.as_arr fc.finput) in
  let n = Scl.Par_array.length a in
  let f = fc.ff.Fn.apply and op = fc.fop.Fn.apply2 and g = fc.fg.Fn.apply in
  let execs =
    ("seq", Scl.Exec.sequential)
    :: (match pool_exec with Some e -> [ ("pool", e) ] | None -> [])
  in
  let fail who what composed fused =
    Runner.Fail_case
      (Printf.sprintf "%s: fused %s diverged: %s <> composed %s (%s)" who what (vstr fused)
         (vstr composed) (print_fused fc))
  in
  let rec run = function
    | [] -> Runner.Pass_case
    | (who, exec) :: rest -> (
        let composed_arr h = Value.Arr (Scl.Par_array.to_array h) in
        (* map_fold vs fold . map (non-empty only; both raise on empty) *)
        let r1 =
          if n = 0 then Runner.Pass_case
          else
            let composed = Scl.Elementary.fold ~exec op (Scl.Elementary.map ~exec f a) in
            let fused = Scl.Elementary.map_fold ~exec op f a in
            if Value.equal composed fused then Runner.Pass_case
            else fail who "map_fold" composed fused
        in
        match r1 with
        | Runner.Fail_case _ -> r1
        | _ -> (
            let composed =
              composed_arr (Scl.Elementary.scan ~exec op (Scl.Elementary.map ~exec f a))
            in
            let fused = composed_arr (Scl.Elementary.map_scan ~exec op f a) in
            if not (Value.equal composed fused) then fail who "map_scan" composed fused
            else
              let composed =
                composed_arr (Scl.Elementary.map ~exec g (Scl.Elementary.map ~exec f a))
              in
              let fused = composed_arr (Scl.Elementary.map_compose ~exec g f a) in
              if not (Value.equal composed fused) then fail who "map_compose" composed fused
              else run rest))
  in
  run execs

let check_fused ?config ?pool_exec () =
  Runner.check ?config ~shrink:shrink_fused ~gen:gen_fused_case ~prop:(fused_prop ?pool_exec)
    ()
