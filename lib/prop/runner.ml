(* Generate-check-shrink driver.

   Replayability: a master Xoshiro stream is seeded from [config.seed]; case
   [i] runs on the [i+1]-th child split off the master. Splitting is
   deterministic, so (seed, case_index, size) fully identifies a case — the
   failure record carries exactly that triple. *)

type config = {
  count : int;
  max_size : int;
  seed : int;
  max_shrink_steps : int;
  max_discard_ratio : int;
}

let default =
  { count = 100; max_size = 10; seed = 42; max_shrink_steps = 2000; max_discard_ratio = 10 }

type result_ = Pass_case | Skip_case | Fail_case of string

type 'a failure = {
  original : 'a;
  shrunk : 'a;
  shrink_steps : int;
  case_index : int;
  seed : int;
  size : int;
  message : string;
}

type 'a outcome =
  | Pass of { checked : int; discarded : int }
  | Fail of 'a failure
  | Gave_up of { checked : int; discarded : int }

let run_prop prop x =
  try prop x with
  | Stack_overflow | Out_of_memory -> Fail_case "resource exhaustion"
  | e -> Fail_case (Printexc.to_string e)

(* Greedy shrink: take the first candidate that still fails, restart from
   it. Candidates that pass or no longer meet the precondition are
   rejected, so the shrunk case provably violates the same property. *)
let shrink_loop ~max_steps (shrinker : 'a Shrink.t) prop x0 msg0 =
  let steps = ref 0 in
  let rec improve x msg =
    if !steps >= max_steps then (x, msg)
    else
      let rec scan s =
        if !steps >= max_steps then (x, msg)
        else
          match s () with
          | Seq.Nil -> (x, msg)
          | Seq.Cons (c, rest) -> (
              incr steps;
              match run_prop prop c with
              | Fail_case m -> improve c m
              | Pass_case | Skip_case -> scan rest)
      in
      scan (shrinker x)
  in
  let x, msg = improve x0 msg0 in
  (x, msg, !steps)

let size_for config idx = min config.max_size (1 + (idx * config.max_size / max 1 config.count))

let check ?(config = default) ?(shrink : 'a Shrink.t = Shrink.nothing) ~(gen : 'a Gen.t)
    ~(prop : 'a -> result_) () : 'a outcome =
  let master = Runtime.Xoshiro.of_seed config.seed in
  let rec loop checked discarded idx =
    if checked >= config.count then Pass { checked; discarded }
    else if discarded > config.count * config.max_discard_ratio then
      Gave_up { checked; discarded }
    else
      let rng = Runtime.Xoshiro.split master in
      let size = size_for config idx in
      let x = gen ~size rng in
      match run_prop prop x with
      | Pass_case -> loop (checked + 1) discarded (idx + 1)
      | Skip_case -> loop checked (discarded + 1) (idx + 1)
      | Fail_case message ->
          let shrunk, message, shrink_steps =
            shrink_loop ~max_steps:config.max_shrink_steps shrink prop x message
          in
          Fail
            { original = x; shrunk; shrink_steps; case_index = idx; seed = config.seed; size; message }
  in
  loop 0 0 0

let replay ?(config = default) ~(gen : 'a Gen.t) ~case_index ~size =
  let master = Runtime.Xoshiro.of_seed config.seed in
  gen ~size (Runtime.Xoshiro.nth_child master case_index)

let pp_failure print ppf (f : 'a failure) =
  Format.fprintf ppf
    "@[<v>counterexample (case %d, seed %d, size %d, %d shrink steps):@,\
     shrunk:   %s@,original: %s@,reason:   %s@]"
    f.case_index f.seed f.size f.shrink_steps (print f.shrunk) (print f.original) f.message
