(** Counterexample shrinkers: lazy sequences of strictly "smaller"
    candidates. The runner greedily takes the first candidate that still
    fails and recurses, so sequences should put the most aggressive
    reductions first (e.g. whole-chunk removal before element tweaks). *)

type 'a t = 'a -> 'a Seq.t

val nothing : 'a t

val int : int t
(** Toward 0: [0], then repeated halvings, then the predecessor. *)

val int_toward : int -> int t
(** Toward an arbitrary anchor instead of 0. *)

val list : ?elem:'a t -> 'a list t
(** Chunk removal (halves, quarters, ... single elements), then pointwise
    element shrinking. *)

val array : ?elem:'a t -> 'a array t
val pair : 'a t -> 'b t -> ('a * 'b) t
val append : 'a t -> 'a t -> 'a t
