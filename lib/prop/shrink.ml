(* Lazy shrinkers. Candidate order matters: the runner is greedy, so each
   sequence leads with the biggest reductions (whole-array removal, jump to
   the anchor) and falls back to one-step tweaks that guarantee progress. *)

type 'a t = 'a -> 'a Seq.t

let nothing : 'a t = fun _ -> Seq.empty

let int_toward anchor : int t =
 fun x ->
  if x = anchor then Seq.empty
  else
    let delta = x - anchor in
    let step = if delta > 0 then x - 1 else x + 1 in
    (* anchor, halfway point, predecessor: greedy re-shrinking makes the
       halfway candidate converge logarithmically. *)
    List.to_seq [ anchor; anchor + (delta / 2); step ]
    |> Seq.filter (fun c -> c <> x)
    |> fun s ->
    (* dedup consecutive equal candidates (e.g. when |delta| <= 2) *)
    let seen = Hashtbl.create 4 in
    Seq.filter
      (fun c ->
        if Hashtbl.mem seen c then false
        else begin
          Hashtbl.add seen c ();
          true
        end)
      s

let int : int t = int_toward 0

let array ?(elem : 'a t = nothing) : 'a array t =
 fun a ->
  let n = Array.length a in
  let remove i k = Array.append (Array.sub a 0 i) (Array.sub a (i + k) (n - i - k)) in
  (* chunk sizes n, n/2, ..., 1: aligned chunk removals, largest first *)
  let rec sizes k () = if k <= 0 then Seq.Nil else Seq.Cons (k, sizes (k / 2)) in
  let removals =
    Seq.concat_map
      (fun k ->
        let rec at i () =
          if i + k > n then Seq.Nil else Seq.Cons (remove i k, at (i + k))
        in
        at 0)
      (sizes n)
  in
  let element_shrinks =
    Seq.concat_map
      (fun i ->
        Seq.map
          (fun e ->
            let b = Array.copy a in
            b.(i) <- e;
            b)
          (elem a.(i)))
      (Seq.init n Fun.id)
  in
  Seq.append removals element_shrinks

let list ?elem : 'a list t =
 fun l -> Seq.map Array.to_list (array ?elem (Array.of_list l))

let pair (sa : 'a t) (sb : 'b t) : ('a * 'b) t =
 fun (a, b) ->
  Seq.append (Seq.map (fun a' -> (a', b)) (sa a)) (Seq.map (fun b' -> (a, b')) (sb b))

let append (s1 : 'a t) (s2 : 'a t) : 'a t = fun x -> Seq.append (s1 x) (s2 x)
