(** The two harnesses of the correctness tooling:

    - the {b rule oracle}: for a given {!Transform.Rules.rule}, generate
      pipelines in which the rule fires (a known-firing instance of the
      rule's pattern embedded in a random context), apply it, and check
      [eval (rewrite e) = eval e] on a random input — plus a cost-model
      consistency check against the simulator;
    - the {b differential oracle}: run one generated pipeline through the
      reference interpreter, the host {!Transform.Host_exec} backends
      (sequential and, when given, pool — each also with
      [~optimize:true]), and {!Transform.Sim_exec} at several processor
      counts, and compare results;
    - the {b fused-primitive oracle}: check that the fused Exec primitives
      ([map_fold] / [map_scan] / [map_compose]) agree with their composed
      two-pass forms on every backend and element type. *)

val apply_rule_somewhere :
  Transform.Rules.rule -> Transform.Ast.expr list -> Transform.Ast.expr list option
(** Rewrite at the first position (left to right) where the rule fires. *)

(** {1 Rule oracle} *)

val gen_rule_case : Transform.Rules.rule -> Pipe_gen.case Gen.t
(** Pipelines containing an injected firing instance of the rule (known
    rules by name; unknown rules fall back to fully random pipelines and
    rely on the property's skip). *)

val gen_firing_case : Transform.Rules.rule -> Pipe_gen.case Gen.t
(** As {!gen_rule_case}, but a rule unknown to the pattern generator gets
    a {e synthesized} firing context: random pipelines are
    rejection-sampled (bounded) until the rule fires somewhere. This is
    the generator behind the exhaustive rule-soundness sweep — every rule
    in [Rules.all] keeps a nonzero fire count even if nobody taught the
    generator its pattern. *)

val rule_prop : Transform.Rules.rule -> Pipe_gen.case -> Runner.result_
(** Skips when the rule does not fire anywhere or the case is ill-typed
    (shrink candidates); fails on any semantic difference. *)

val check_rule : ?config:Runner.config -> Transform.Rules.rule -> Pipe_gen.case Runner.outcome
(** Runs {!rule_prop} over {!gen_firing_case} with shrinking — the
    per-rule soundness check behind the exhaustive sweep in the test
    suite. *)

(** {1 Cost-model consistency} *)

val cost_prop : procs:int -> tolerance:float -> Pipe_gen.case -> Runner.result_
(** Normalises the pipeline with the default rules (flattening
    included); if the static cost model claims an improvement, the
    simulated makespan must not regress beyond [tolerance] (a
    multiplicative factor). Nested cases participate whenever they are
    {!Pipe_gen.sim_executable}. *)

val check_cost :
  ?config:Runner.config -> procs:int -> tolerance:float -> unit -> Pipe_gen.case Runner.outcome

(** {1 Differential oracle} *)

type diff_stats = {
  mutable compared : int;  (** cases compared across backends *)
  mutable sim_ran : int;
      (** sim-executable cases (flat, or one-level nested within the
          segmented discipline) also run on the simulator *)
  mutable sim_skipped : int;  (** cases the simulator cannot run *)
}

val new_stats : unit -> diff_stats

val diff_prop :
  ?pool_exec:Scl.Exec.t ->
  ?stats:diff_stats ->
  sim_procs:int list ->
  Pipe_gen.case ->
  Runner.result_

val check_differential :
  ?config:Runner.config ->
  ?pool_exec:Scl.Exec.t ->
  ?stats:diff_stats ->
  sim_procs:int list ->
  unit ->
  Pipe_gen.case Runner.outcome

(** {1 Fused-primitive oracle} *)

type fused_case = {
  felem : Pipe_gen.elem;
  ff : Transform.Fn.t;  (** map payload *)
  fop : Transform.Fn.t2;  (** associative combine *)
  fg : Transform.Fn.t;  (** second map payload, for [map_compose] *)
  finput : Transform.Value.t;
}

val print_fused : fused_case -> string
val gen_fused_case : fused_case Gen.t
val shrink_fused : fused_case Shrink.t

val fused_prop : ?pool_exec:Scl.Exec.t -> fused_case -> Runner.result_
(** [Elementary.map_fold op f = fold op . map f] (and likewise for
    [map_scan] / [map_compose]) on the sequential backend and, when given,
    the pool backend — over ints, dyadic floats and pairs, lengths 0..40. *)

val check_fused :
  ?config:Runner.config -> ?pool_exec:Scl.Exec.t -> unit -> fused_case Runner.outcome
