(** The two harnesses of the correctness tooling:

    - the {b rule oracle}: for a given {!Transform.Rules.rule}, generate
      pipelines in which the rule fires (a known-firing instance of the
      rule's pattern embedded in a random context), apply it, and check
      [eval (rewrite e) = eval e] on a random input — plus a cost-model
      consistency check against the simulator;
    - the {b differential oracle}: run one generated pipeline through the
      reference interpreter, the host {!Transform.Host_exec} backends
      (sequential and, when given, pool), and {!Transform.Sim_exec} at
      several processor counts, and compare results. *)

val apply_rule_somewhere :
  Transform.Rules.rule -> Transform.Ast.expr list -> Transform.Ast.expr list option
(** Rewrite at the first position (left to right) where the rule fires. *)

(** {1 Rule oracle} *)

val gen_rule_case : Transform.Rules.rule -> Pipe_gen.case Gen.t
(** Pipelines containing an injected firing instance of the rule (known
    rules by name; unknown rules fall back to fully random pipelines and
    rely on the property's skip). *)

val rule_prop : Transform.Rules.rule -> Pipe_gen.case -> Runner.result_
(** Skips when the rule does not fire anywhere or the case is ill-typed
    (shrink candidates); fails on any semantic difference. *)

val check_rule : ?config:Runner.config -> Transform.Rules.rule -> Pipe_gen.case Runner.outcome

(** {1 Cost-model consistency} *)

val cost_prop : procs:int -> tolerance:float -> Pipe_gen.case -> Runner.result_
(** Normalises the pipeline with the default rules; if the static cost
    model claims an improvement, the simulated makespan must not regress
    beyond [tolerance] (a multiplicative factor). *)

val check_cost :
  ?config:Runner.config -> procs:int -> tolerance:float -> unit -> Pipe_gen.case Runner.outcome

(** {1 Differential oracle} *)

type diff_stats = {
  mutable compared : int;  (** cases compared across backends *)
  mutable sim_ran : int;  (** flat cases also run on the simulator *)
  mutable sim_skipped : int;  (** nested cases the simulator cannot run *)
}

val new_stats : unit -> diff_stats

val diff_prop :
  ?pool_exec:Scl.Exec.t ->
  ?stats:diff_stats ->
  sim_procs:int list ->
  Pipe_gen.case ->
  Runner.result_

val check_differential :
  ?config:Runner.config ->
  ?pool_exec:Scl.Exec.t ->
  ?stats:diff_stats ->
  sim_procs:int list ->
  unit ->
  Pipe_gen.case Runner.outcome
