(* Shape-directed pipeline generation. The static shape of the value is
   tracked through the chain (array length, group sizes, scalar) so every
   stage is well-typed where it lands; the precondition set is documented
   in the interface.

   The generator is widened beyond flat Int arrays: inputs may hold floats
   (multiples of 0.5, so parallel reassociation of fadd is exact) or
   Int-component pairs, and arrays may be empty (n = 0) — stage pools are
   chosen per element type, and the few stages that are partial at n = 0
   (fold, foldr, split) are gated on the length. *)

open Transform
open Gen

type case = { chain : Ast.expr list; input : Value.t }

let expr c = Ast.of_chain c.chain
let print c = Printf.sprintf "%s $ %s" (Ast.to_string (expr c)) (Fmt.str "%a" Value.pp c.input)

let rec expr_is_flat = function
  | Ast.Split _ | Ast.Combine | Ast.Map_nested _ -> false
  | Ast.Compose (f, g) -> expr_is_flat f && expr_is_flat g
  | Ast.Iter_for (_, b) -> expr_is_flat b
  | _ -> true

let is_flat c = List.for_all expr_is_flat c.chain

(* Static mirror of Sim_exec's one-level flattening discipline: [true]
   guarantees the simulator will not raise [Sim_exec.Unsupported] on this
   case (it may still raise [Value.Type_error], exactly where the
   reference interpreter does). Conservative: a [false] only means the
   sim legs are skipped. *)
let sim_executable c =
  (* stages executable inside a mapn body on the segmented payload — any
     flat stage, Fold included (a fold mid-body is a Type_error on every
     backend, not an Unsupported) *)
  let rec seg_body_ok = function
    | Ast.Split _ | Ast.Combine | Ast.Map_nested _ | Ast.Foldr_compose _ -> false
    | Ast.Compose (f, g) -> seg_body_ok f && seg_body_ok g
    | Ast.Iter_for (_, b) -> seg_body_ok b
    | _ -> true
  in
  (* abstract state: `F = flat vector / scalar, `G = segmented *)
  let rec walk st chain =
    match chain with
    | [] -> Some st
    | stage :: rest -> (
        let next =
          match (st, stage) with
          | `F, Ast.Split _ -> Some `G
          | st, Ast.Compose _ -> walk st (Ast.to_chain stage)
          | `F, Ast.Iter_for (k, b) ->
              let rec iter st i =
                if i <= 0 then Some st
                else
                  match walk st (Ast.to_chain b) with
                  | Some st' -> iter st' (i - 1)
                  | None -> None
              in
              iter `F k
          | `F, _ -> Some `F
          | `G, Ast.Combine -> Some `F
          | `G, Ast.Map_nested b ->
              if List.for_all seg_body_ok (Ast.to_chain b) then
                (* a body ending in fold leaves one scalar per segment: a
                   flat p-vector *)
                match List.rev (Ast.to_chain b) with
                | Ast.Fold _ :: _ -> Some `F
                | _ -> Some `G
              else None
          | `G, _ -> None (* group-level operation on a segmented vector *)
        in
        match next with Some st' -> walk st' rest | None -> None)
  in
  (match c.input with Value.Arr _ -> true | _ -> false) && walk `F c.chain <> None

(* --- element types --------------------------------------------------------- *)

type elem = EInt | EFloat | EPair

let elem_name = function EInt -> "int" | EFloat -> "float" | EPair -> "pair"

(* Ints dominate so the historical distribution is roughly preserved. *)
let gen_elem = frequency [ (2, return EInt); (1, return EFloat); (1, return EPair) ]

(* --- function pools -------------------------------------------------------- *)

let gen_fn =
  frequency
    [
      (3, oneof_val Fn.[ incr; double; square; negate; halve ]);
      (1, return Fn.id);
    ]

let gen_fn2_assoc = oneof_val Fn.[ add; mul; imax; imin ]
let gen_fn2_any = oneof_val Fn.[ add; mul; imax; imin; sub ]

(* Float maps keep dyadic rationals dyadic and float folds are exactly
   associative on them (see Fn), so float pipelines stay bit-identical
   across backends despite parallel reassociation. *)
let gen_fn_float =
  frequency
    [ (3, oneof_val Fn.[ fincr; fneg; fhalve; fdouble ]); (1, return Fn.id) ]

let gen_fn2_assoc_float = oneof_val Fn.[ fadd; fmax; fmin ]

let gen_fn_pair =
  frequency [ (3, oneof_val Fn.[ pswap; pincr_both ]); (1, return Fn.id) ]

let gen_fn2_assoc_pair = oneof_val Fn.[ padd_pw; pmax_pw ]

let gen_fn_of = function
  | EInt -> gen_fn
  | EFloat -> gen_fn_float
  | EPair -> gen_fn_pair

let gen_fn2_assoc_of = function
  | EInt -> gen_fn2_assoc
  | EFloat -> gen_fn2_assoc_float
  | EPair -> gen_fn2_assoc_pair

let gen_basic_perm =
  frequency
    [
      (1, return Fn.i_id);
      (3, map Fn.i_shift (int_range (-7) 7));
      (2, return Fn.i_reverse);
    ]

let gen_perm_ifn =
  frequency
    [
      (3, gen_basic_perm);
      (1, map2 Fn.i_compose gen_basic_perm gen_basic_perm);
    ]

let i_const j = Fn.{ iname = Printf.sprintf "const(%d)" j; iapply = (fun ~n:_ _ -> j) }

let gen_fetch_ifn ~n =
  if n < 1 then gen_perm_ifn
  else frequency [ (3, gen_perm_ifn); (1, map i_const (int_range 0 (n - 1))) ]

let gen_elem_value = function
  | EInt -> map (fun i -> Value.Int i) (int_range (-20) 20)
  | EFloat ->
      (* multiples of 0.5: dyadic, exact under reassociated fadd *)
      map (fun i -> Value.Float (float_of_int i *. 0.5)) (int_range (-40) 40)
  | EPair ->
      map2
        (fun a b -> Value.Pair (Value.Int a, Value.Int b))
        (int_range (-20) 20) (int_range (-20) 20)

let gen_input_elem ~elem ~n =
  let+ a = array_size (return n) (gen_elem_value elem) in
  Value.Arr a

let gen_input ~n = gen_input_elem ~elem:EInt ~n

(* --- stages ---------------------------------------------------------------- *)

(* Flat, length-preserving, well-typed at any length >= 1 (and vacuously at
   0, where no index function is ever applied): usable inside Iter_for /
   Map_nested bodies and as oracle context. *)
let gen_lp_stage_of elem =
  let base =
    [
      (4, map (fun f -> Ast.Map f) (gen_fn_of elem));
      (2, map (fun f -> Ast.Scan f) (gen_fn2_assoc_of elem));
      (2, map (fun k -> Ast.Rotate k) (int_range (-7) 7));
      (2, map (fun f -> Ast.Send f) gen_perm_ifn);
      (2, map (fun f -> Ast.Fetch f) gen_perm_ifn);
    ]
  in
  let imap =
    match elem with EInt -> [ (1, return (Ast.Imap Fn.add_index)) ] | EFloat | EPair -> []
  in
  frequency (base @ imap)

let gen_lp_stage = gen_lp_stage_of EInt
let gen_ctx ~max_stages = list_size (int_range 0 max_stages) gen_lp_stage

type shape = Flat of int | Groups of int array | Scalar

let block_sizes ~n ~p =
  let q = n / p and r = n mod p in
  Array.init p (fun k -> if k < r then q + 1 else q)

let gen_flat_stage ~elem ~allow_nested n : (Ast.expr * shape) Gen.t =
  let lp g = map (fun e -> (e, Flat n)) g in
  let base =
    [
      (4, lp (map (fun f -> Ast.Map f) (gen_fn_of elem)));
      (2, lp (map (fun f -> Ast.Scan f) (gen_fn2_assoc_of elem)));
      (2, lp (map (fun k -> Ast.Rotate k) (int_range (-2 * n) (2 * n))));
      (2, lp (map (fun f -> Ast.Send f) gen_perm_ifn));
      (2, lp (map (fun f -> Ast.Fetch f) (gen_fetch_ifn ~n)));
      ( 1,
        let* k = int_range 0 3 in
        let+ body = list_size (int_range 1 2) (gen_lp_stage_of elem) in
        (Ast.Iter_for (k, Ast.of_chain body), Flat n) );
    ]
  in
  let int_only =
    match elem with
    | EInt ->
        [
          (1, lp (return (Ast.Imap Fn.add_index)));
          ( 1,
            if n >= 1 then
              let* f = gen_fn2_any in
              let+ g = gen_fn in
              (Ast.Foldr_compose (f, g), Scalar)
            else lp (map (fun f -> Ast.Map f) gen_fn) );
        ]
    | EFloat | EPair -> []
  in
  let fold =
    (* partial at n = 0 on every backend: gate on the length *)
    if n >= 1 then [ (1, map (fun f -> (Ast.Fold f, Scalar)) (gen_fn2_assoc_of elem)) ]
    else []
  in
  let nested =
    if allow_nested && n >= 1 then
      [
        ( 2,
          let+ p = int_range 1 (min n 4) in
          (Ast.Split p, Groups (block_sizes ~n ~p)) );
      ]
    else []
  in
  frequency (base @ int_only @ fold @ nested)

let gen_group_stage ~elem sizes : (Ast.expr * shape) Gen.t =
  let p = Array.length sizes in
  let total = Array.fold_left ( + ) 0 sizes in
  frequency
    [
      (3, return (Ast.Combine, Flat total));
      ( 2,
        let* body = list_size (int_range 1 3) (gen_lp_stage_of elem) in
        frequency
          [
            (3, return (Ast.Map_nested (Ast.of_chain body), Groups sizes));
            ( 1,
              (* an iterated body exercises unrolling inside the segmented
                 executor *)
              let+ k = int_range 0 3 in
              (Ast.Map_nested (Ast.Iter_for (k, Ast.of_chain body)), Groups sizes) );
          ] );
      (1, map (fun f -> (Ast.Map_nested (Ast.Fold f), Flat p)) (gen_fn2_assoc_of elem));
    ]

let rec gen_stages ~elem ~allow_nested shape budget : Ast.expr list Gen.t =
  if budget <= 0 then return []
  else
    match shape with
    | Scalar -> return []
    | Flat n ->
        let* st, sh = gen_flat_stage ~elem ~allow_nested n in
        let+ rest = gen_stages ~elem ~allow_nested sh (budget - 1) in
        st :: rest
    | Groups sizes ->
        let* st, sh = gen_group_stage ~elem sizes in
        let+ rest = gen_stages ~elem ~allow_nested sh (budget - 1) in
        st :: rest

let gen ?(allow_nested = true) ?elem () : case Gen.t =
  sized (fun size ->
      let* elem = match elem with Some e -> return e | None -> gen_elem in
      let* n =
        frequency
          [ (1, return 0); (9, int_range 1 (max 2 (min 40 (3 * size)))) ]
      in
      let* input = gen_input_elem ~elem ~n in
      let* budget = int_range 0 (2 + size) in
      let+ chain = gen_stages ~elem ~allow_nested (Flat n) budget in
      { chain; input })

(* --- shrinking ------------------------------------------------------------- *)

let shrink_stage : Ast.expr Shrink.t = function
  | Ast.Rotate k -> Seq.map (fun k' -> Ast.Rotate k') (Shrink.int k)
  | Ast.Iter_for (k, b) -> Seq.map (fun k' -> Ast.Iter_for (k', b)) (Shrink.int k)
  | Ast.Split p -> Seq.map (fun p' -> Ast.Split p') (Shrink.int_toward 1 p)
  | Ast.Map_nested b ->
      Seq.map (fun ch -> Ast.Map_nested (Ast.of_chain ch)) (Shrink.list (Ast.to_chain b))
  | _ -> Seq.empty

let rec shrink_value : Value.t Shrink.t = function
  | Value.Int i -> Seq.map (fun i' -> Value.Int i') (Shrink.int i)
  | Value.Float f ->
      (* shrink on the half-integer grid the generator draws from *)
      Seq.map
        (fun h -> Value.Float (float_of_int h *. 0.5))
        (Shrink.int (int_of_float (f *. 2.0)))
  | Value.Pair (a, b) ->
      Seq.append
        (Seq.map (fun a' -> Value.Pair (a', b)) (shrink_value a))
        (Seq.map (fun b' -> Value.Pair (a, b')) (shrink_value b))
  | Value.Arr a -> Seq.map (fun a' -> Value.Arr a') (Shrink.array ~elem:shrink_value a)

let shrink : case Shrink.t =
 fun c ->
  Seq.append
    (Seq.map (fun chain -> { c with chain }) (Shrink.list ~elem:shrink_stage c.chain))
    (Seq.map (fun input -> { c with input }) (shrink_value c.input))
