(** Sized random generators over the splittable {!Runtime.Xoshiro} PRNG.

    A generator is a function of the current size budget and a PRNG state;
    determinism comes entirely from the seed, so any generated value can be
    replayed from [(seed, case index)] alone. No external dependencies. *)

type 'a t = size:int -> Runtime.Xoshiro.t -> 'a

val generate : ?size:int -> seed:int -> 'a t -> 'a
(** Run a generator once from an integer seed (default size 10). *)

(** {1 Combinators} *)

val return : 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

val sized : (int -> 'a t) -> 'a t
(** Read the current size budget. *)

val resize : int -> 'a t -> 'a t
(** Override the size budget for a sub-generator. *)

(** {1 Primitives} *)

val bool : bool t

val int_range : int -> int -> int t
(** [int_range lo hi] is uniform on the inclusive range.
    @raise Invalid_argument if [hi < lo]. *)

val small_nat : int t
(** Uniform on [\[0, size\]]. *)

val oneof : 'a t list -> 'a t
val oneof_val : 'a list -> 'a t

val frequency : (int * 'a t) list -> 'a t
(** Weighted choice; weights must be non-negative with a positive sum. *)

val list_size : int t -> 'a t -> 'a list t
val array_size : int t -> 'a t -> 'a array t
