(** Block-distributed unboxed float vectors — the flat numeric tier.

    The [Dvec] operations re-expressed over [Scl.Flat.float1] chunks so
    data movement uses the engines' bulk slice tier: no marshalling, no
    per-element boxing, zero-copy window handoff on the multicore engine,
    and bytes-proportional pricing ([8 * length] per hop) on the
    simulator. [Dvec] is the executable specification these are
    differential-tested against.

    All operations are SPMD: every member of the communicator must call
    them in the same order. The local chunk is mutable storage owned by
    this member; callers may mutate it between collective calls, but must
    not mutate a chunk after sending a view of it until a synchronising
    exchange (the engines' slice discipline). *)

open Machine

type t

val comm : t -> Comm.t

val local : t -> Scl.Flat.float1
(** This processor's chunk (owned, mutable in place). *)

val local_length : t -> int
val total : t -> int

val offset : t -> int
(** Global index of the first local element. *)

val block_bounds : total:int -> parts:int -> int array
val owner_of : total:int -> parts:int -> int -> int

val of_local : Comm.t -> Scl.Flat.float1 -> t
(** Assemble from per-processor chunks (collective; computes offsets).
    The chunk is adopted, not copied. *)

val scatter : Comm.t -> root:int -> Scl.Flat.float1 option -> t
(** Block-distribute a root-held flat array ([Comm.scatter_slice]
    geometry: one bulk message per member). Each member owns a private
    copy of its chunk. *)

val gather : root:int -> t -> Scl.Flat.float1 option
(** Collect to the root (one bulk message per member); [Some] only
    there. *)

val allgather : t -> Scl.Flat.float1

val rotate : int -> t -> t
(** Global rotation by [k] (result element [g] = input element
    [(g+k) mod total]). Coalesced: everything owed to one destination
    travels as ONE bulk message (at most [p-1] sends per member), with no
    per-segment metadata — both sides re-derive segment geometry from the
    closed-form block bounds. Bitwise-identical results to [Dvec.rotate]
    on the same data. *)

val fetch : (int -> int) -> t -> t
(** Irregular gather: result element [g] = input element [f g]. [f] must
    be pure — both sides evaluate it against the closed-form block
    geometry to derive the same packing plan, so NO metadata travels
    (versus [Dvec.fetch]'s two marshalled all-to-all phases): each member
    sends at most one packed slice per destination (zero-copy sub-view
    when the requested sources are one contiguous ascending run), and the
    receiver reassembles by walking its slots in ascending order with a
    per-source cursor. Bitwise-identical results to [Dvec.fetch].
    @raise Invalid_argument if [f] produces an out-of-range index. *)
