(* Convenience runners for SPMD skeleton programs: the same
   [Comm.t -> 'a option] program body runs on the simulated machine
   ([run] / [run_collect]), on real OCaml 5 domains
   ([run_multicore] / [run_multicore_collect]), or on real forked OS
   processes ([run_procs] / [run_procs_collect]). *)

open Machine

let default_topology procs =
  if Topology.is_power_of_two procs then Topology.Hypercube else Topology.Complete

(* Observability: the simulator itself records messages/bytes/barriers and
   the simulated makespan (see Machine.Sim), and the multicore fabric its
   own mc.* counters.  Here we add the host side of the "simulated vs wall"
   comparison: a span for the wall-clock cost of running each SPMD program,
   and the aggregate simulated seconds, both under spmd.* names. *)
let obs_runs = Obs.Counter.make "spmd.runs"
let obs_mc_runs = Obs.Counter.make "spmd.multicore_runs"
let obs_procs_runs = Obs.Counter.make "spmd.procs_runs"
let obs_wall = Obs.Span.make "spmd.run_wall"
let obs_sim_us = Obs.Histogram.make ~unit_:"us" "spmd.sim_makespan_us"

let observe stats =
  if Obs.enabled () then begin
    Obs.Counter.incr obs_runs;
    Obs.Histogram.record obs_sim_us (int_of_float (stats.Sim.makespan *. 1e6))
  end;
  stats

(* With [?chaos], each rank's engine is wrapped in the fault injector
   before the communicator is built — the program body is untouched, which
   is the whole point (coordination-layer faults, not user-code faults). *)
let with_chaos chaos program eng =
  match chaos with
  | None -> program (Comm.world eng)
  | Some spec -> Chaos.run spec (fun e -> program (Comm.world e)) eng

let run ?trace ?(cost = Cost_model.ap1000) ?topology ?chaos ~procs
    (program : Comm.t -> unit) : Sim.stats =
  Obs.Span.timed obs_wall (fun () ->
      let topology = match topology with Some t -> t | None -> default_topology procs in
      observe
        (Sim.run ?trace { Sim.procs; topology; cost } (fun ctx ->
             with_chaos chaos program (Engine.of_sim ctx))))

let run_collect ?trace ?(cost = Cost_model.ap1000) ?topology ?chaos ~procs
    (program : Comm.t -> 'a option) : 'a * Sim.stats =
  Obs.Span.timed obs_wall (fun () ->
      let topology = match topology with Some t -> t | None -> default_topology procs in
      let v, stats =
        Sim.run_collect ?trace { Sim.procs; topology; cost } (fun ctx ->
            with_chaos chaos program (Engine.of_sim ctx))
      in
      (v, observe stats))

let run_multicore ?domains ?(cost = Cost_model.ap1000) ?topology ?chaos ~procs
    (program : Comm.t -> unit) : Multicore.stats =
  Obs.Span.timed obs_wall (fun () ->
      let topology = match topology with Some t -> t | None -> default_topology procs in
      if Obs.enabled () then Obs.Counter.incr obs_mc_runs;
      Multicore.run ?domains ~cost ~topology ~procs (fun eng -> with_chaos chaos program eng))

let run_multicore_collect ?domains ?(cost = Cost_model.ap1000) ?topology ?chaos ~procs
    (program : Comm.t -> 'a option) : 'a * Multicore.stats =
  Obs.Span.timed obs_wall (fun () ->
      let topology = match topology with Some t -> t | None -> default_topology procs in
      if Obs.enabled () then Obs.Counter.incr obs_mc_runs;
      Multicore.run_collect ?domains ~cost ~topology ~procs (fun eng ->
          with_chaos chaos program eng))

(* The process engine forks: the chaos wrapper (like the program body)
   runs inside each child, so held sends and fail-stops perturb the real
   socket fabric.  Only callable in a process that has never created
   another domain — see the fork-safety note on {!Machine.Procs}. *)

let run_procs ?(cost = Cost_model.ap1000) ?topology ?chaos ~procs
    (program : Comm.t -> unit) : Procs.stats =
  Obs.Span.timed obs_wall (fun () ->
      let topology = match topology with Some t -> t | None -> default_topology procs in
      if Obs.enabled () then Obs.Counter.incr obs_procs_runs;
      Procs.run ~cost ~topology ~procs (fun eng -> with_chaos chaos program eng))

let run_procs_collect ?(cost = Cost_model.ap1000) ?topology ?chaos ~procs
    (program : Comm.t -> 'a option) : 'a * Procs.stats =
  Obs.Span.timed obs_wall (fun () ->
      let topology = match topology with Some t -> t | None -> default_topology procs in
      if Obs.enabled () then Obs.Counter.incr obs_procs_runs;
      Procs.run_collect ~cost ~topology ~procs (fun eng -> with_chaos chaos program eng))
