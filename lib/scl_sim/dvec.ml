(* Block-distributed vectors on the simulated machine: the problem-
   independent implementation templates of the elementary skeletons
   (paper Section 5, "the preliminary implementation of several elementary
   skeletons in a problem-independent manner").

   A Dvec is an SPMD value: every member of the communicator holds its own
   local chunk of a conceptually global vector, block-distributed by
   communicator rank.  Local compute is charged to the simulated clock via
   operation counts; data movement goes through Comm/Sim and is priced by
   the machine's cost model. *)

open Machine

type 'a t = {
  comm : Comm.t;
  local : 'a array;
  offset : int;  (* global index of local.(0) *)
  total : int;
}

let comm t = t.comm
let local t = t.local
let local_length t = Array.length t.local
let total t = t.total
let offset t = t.offset

let block_pattern p = Scl.Partition.Block p

(* Block geometry: element range owned by each rank. *)
let block_bounds ~total ~parts =
  let q = total / parts and r = total mod parts in
  Array.init (parts + 1) (fun k -> (k * q) + min k r)

let owner_of ~total ~parts g =
  Scl.Partition.assign (block_pattern parts) ~n:total g

let charge t flops = Comm.work_flops t.comm flops

(* An elementwise skeleton pass also streams its chunk through memory; this
   is what map fusion saves, so it must be priced. *)
let charge_pass t elems =
  let cm = Comm.cost t.comm in
  Comm.work t.comm (float_of_int elems *. cm.Machine.Cost_model.mem_time)

let of_local comm local =
  let lens = Comm.allgather comm (Array.length local) in
  let me = Comm.rank comm in
  let offset = ref 0 in
  for i = 0 to me - 1 do
    offset := !offset + lens.(i)
  done;
  { comm; local; offset = !offset; total = Array.fold_left ( + ) 0 lens }

(* Distribute a root-held array block-wise (the paper's partition+scatter
   entry into a configuration). *)
let scatter comm ~root (a : 'a array option) : 'a t =
  let p = Comm.size comm in
  let chunks =
    match a with
    | Some arr ->
        let b = block_bounds ~total:(Array.length arr) ~parts:p in
        Some (Array.init p (fun k -> Array.sub arr b.(k) (b.(k + 1) - b.(k))))
    | None -> None
  in
  let total = Comm.bcast comm ~root (Option.map Array.length a) in
  let local = Comm.scatter comm ~root chunks in
  let b = block_bounds ~total ~parts:p in
  { comm; local; offset = b.(Comm.rank comm); total }

(* Collect back to the root (the paper's gather). *)
let gather ~root t : 'a array option =
  match Comm.gather t.comm ~root t.local with
  | Some chunks -> Some (Array.concat (Array.to_list chunks))
  | None -> None

let allgather t : 'a array =
  Array.concat (Array.to_list (Comm.allgather t.comm t.local))

(* --- elementary skeletons ---------------------------------------------- *)

let map ?(flops_per_elem = 1) f t =
  charge t (flops_per_elem * Array.length t.local);
  charge_pass t (Array.length t.local);
  { t with local = Array.map f t.local }

let imap ?(flops_per_elem = 1) f t =
  charge t (flops_per_elem * Array.length t.local);
  charge_pass t (Array.length t.local);
  { t with local = Array.mapi (fun i x -> f (t.offset + i) x) t.local }

(* Apply a whole-chunk kernel (the base-language procedure of the paper):
   the caller supplies the real OCaml function and its operation count. *)
let map_chunk ~flops f t =
  charge t flops;
  { t with local = f t.local }

let fold ?(flops_per_elem = 1) op t =
  if t.total = 0 then invalid_arg "Dvec.fold: empty vector";
  charge t (flops_per_elem * max 1 (Array.length t.local));
  (* Non-empty local chunks fold locally; the tree combine skips empties via
     option lifting, preserving index order. *)
  let local_acc =
    if Array.length t.local = 0 then None
    else begin
      let acc = ref t.local.(0) in
      for i = 1 to Array.length t.local - 1 do
        acc := op !acc t.local.(i)
      done;
      Some !acc
    end
  in
  let lift a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (op a b)
  in
  match Comm.allreduce t.comm lift local_acc with
  | Some v -> v
  | None -> assert false

let scan ?(flops_per_elem = 1) op t =
  let n = Array.length t.local in
  charge t (flops_per_elem * max 1 n);
  let local_scan =
    if n = 0 then [||]
    else begin
      let out = Array.make n t.local.(0) in
      for i = 1 to n - 1 do
        out.(i) <- op out.(i - 1) t.local.(i)
      done;
      out
    end
  in
  let my_total = if n = 0 then None else Some local_scan.(n - 1) in
  let lift a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (op a b)
  in
  let inclusive = Comm.scan t.comm lift my_total in
  (* Exclusive offset = inclusive prefix of the *previous* rank: shift by
     one with a single message to the right neighbour. *)
  let me = Comm.rank t.comm and p = Comm.size t.comm in
  if me + 1 < p then Comm.send t.comm ~dest:(me + 1) inclusive;
  let offset : 'a option = if me = 0 then None else Comm.recv t.comm ~src:(me - 1) () in
  charge t (flops_per_elem * max 1 n);
  let adjusted =
    match offset with
    | None -> local_scan
    | Some off -> Array.map (fun x -> op off x) local_scan
  in
  { t with local = adjusted }

(* --- communication skeletons -------------------------------------------- *)

(* Group consecutive global indices [lo, hi) into maximal runs on which
   [key] is constant; returns (key, g0, len) in ascending order. *)
let runs_by ~lo ~hi key =
  let out = ref [] in
  let start = ref lo in
  for g = lo + 1 to hi do
    if g = hi || key g <> key !start then begin
      out := (key !start, !start, g - !start) :: !out;
      start := g
    end
  done;
  List.rev !out

(* rotate k: the result element at global index g is the input element at
   (g + k) mod total — the paper's [rotate].  Each processor sends exactly
   the segments its neighbours need (at most a few messages, not an
   all-to-all); message payloads carry their destination offset so matching
   is order-independent. *)
let rotate k t =
  let p = Comm.size t.comm in
  let total = t.total in
  if total = 0 || k mod total = 0 then t
  else if p = 1 then begin
    (* Everything is local: a pure copy. *)
    charge t (Kernels.copy_flops total);
    let wrap g = ((g mod total) + total) mod total in
    { t with local = Array.init total (fun i -> t.local.(wrap (i + k))) }
  end
  else begin
    let wrap g = ((g mod total) + total) mod total in
    let me = Comm.rank t.comm in
    let lo = t.offset and hi = t.offset + Array.length t.local in
    (* Where each element I own must go: source g lands at wrap (g - k). *)
    let dest_of g = owner_of ~total ~parts:p (wrap (g - k)) in
    (* Split runs on both owner changes and the wrap discontinuity of the
       destination index, so each run is contiguous at the destination. *)
    let floor_div a b = if a >= 0 then a / b else ((a + 1) / b) - 1 in
    let dest_key g = (dest_of g, floor_div (g - k) total) in
    let out_runs = runs_by ~lo ~hi dest_key in
    List.iter
      (fun ((dest, _), g0, len) ->
        if dest <> me then begin
          let seg = Array.sub t.local (g0 - t.offset) len in
          Comm.send t.comm ~dest (wrap (g0 - k), seg)
        end)
      out_runs;
    let out = Array.copy t.local in
    (* Local elements that stay on this processor. *)
    List.iter
      (fun ((dest, _), g0, len) ->
        if dest = me then
          for i = 0 to len - 1 do
            out.(wrap (g0 + i - k) - lo) <- t.local.(g0 + i - t.offset)
          done)
      out_runs;
    charge t (Kernels.copy_flops (Array.length t.local));
    (* Which sources feed my chunk: destination g draws from wrap (g + k). *)
    let src_of g = owner_of ~total ~parts:p (wrap (g + k)) in
    let floor_div a b = if a >= 0 then a / b else ((a + 1) / b) - 1 in
    let src_key g = (src_of g, floor_div (g + k) total) in
    let in_runs = runs_by ~lo ~hi src_key in
    let expected = Hashtbl.create 8 in
    List.iter
      (fun ((src, _), _, _) ->
        if src <> me then
          Hashtbl.replace expected src (1 + Option.value ~default:0 (Hashtbl.find_opt expected src)))
      in_runs;
    Hashtbl.iter
      (fun src count ->
        for _ = 1 to count do
          let (g0, seg) : int * 'a array = Comm.recv t.comm ~src () in
          Array.blit seg 0 out (g0 - lo) (Array.length seg)
        done)
      expected;
    { t with local = out }
  end

(* Broadcast a (root-computed) value to every member, aligned with local
   data — the paper's [brdcast] at the distributed level. *)
let bcast_value t ~root v = Comm.bcast t.comm ~root v

(* applybrdcast f i A: apply [f] on the processor owning global element [i]
   and broadcast the result. *)
let applybrdcast ~flops f i t =
  if i < 0 || i >= t.total then invalid_arg "Dvec.applybrdcast: index out of range";
  let owner = owner_of ~total:t.total ~parts:(Comm.size t.comm) i in
  let v =
    if Comm.rank t.comm = owner then begin
      charge t flops;
      Some (f t.local.(i - t.offset))
    end
    else None
  in
  Comm.bcast t.comm ~root:owner v

(* fetch f: result element g is the input element at f g — irregular
   one-to-one / one-to-many movement.  Two phases of all-to-all traffic:
   index requests out, values back. *)
let fetch f t =
  let p = Comm.size t.comm in
  let total = t.total in
  let me = Comm.rank t.comm in
  let lo = t.offset in
  let n = Array.length t.local in
  (* Requests: for each of my result slots, the global source index. *)
  let requests = Array.make p [] in
  for i = n - 1 downto 0 do
    let src = f (lo + i) in
    if src < 0 || src >= total then invalid_arg "Dvec.fetch: source index out of range";
    let owner = owner_of ~total ~parts:p src in
    requests.(owner) <- (i, src) :: requests.(owner)
  done;
  let req_arrays = Array.map Array.of_list requests in
  let incoming = Comm.alltoall t.comm req_arrays in
  (* Serve: look up each requested element in my chunk. *)
  charge t (Kernels.copy_flops n);
  let replies =
    Array.map (fun reqs -> Array.map (fun (slot, src) -> (slot, t.local.(src - lo))) reqs) incoming
  in
  let answers = Comm.alltoall t.comm replies in
  let out = Array.copy t.local in
  Array.iter (Array.iter (fun (slot, v) -> out.(slot) <- v)) answers;
  { t with local = out }

(* send f: input element g is delivered to every destination in f g;
   destinations accumulate vectors of arrivals (ascending source order, the
   same deterministic refinement as the host library). *)
let send f t =
  let p = Comm.size t.comm in
  let total = t.total in
  let lo = t.offset in
  let n = Array.length t.local in
  let outgoing = Array.make p [] in
  for i = n - 1 downto 0 do
    let g = lo + i in
    List.iter
      (fun dest ->
        if dest < 0 || dest >= total then invalid_arg "Dvec.send: destination out of range";
        let owner = owner_of ~total ~parts:p dest in
        outgoing.(owner) <- (g, dest, t.local.(i)) :: outgoing.(owner))
      (List.rev (f g))
  done;
  let incoming = Comm.alltoall t.comm (Array.map Array.of_list outgoing) in
  charge t (Kernels.copy_flops n);
  let buckets = Array.make n [] in
  (* Ascending source order: collect all arrivals, sort per slot by source
     index (arrivals per sender are already ascending). *)
  let all = Array.to_list incoming |> List.map Array.to_list |> List.concat in
  let all = List.sort (fun (g1, _, _) (g2, _, _) -> compare g1 g2) all in
  List.iter (fun (_, dest, v) -> buckets.(dest - lo) <- v :: buckets.(dest - lo)) all;
  { t with local = Array.map (fun l -> Array.of_list (List.rev l)) buckets }

(* Pointwise pairing of two identically-distributed vectors (local, no
   communication) — the distributed align. *)
let zip a b =
  if a.total <> b.total || Array.length a.local <> Array.length b.local then
    invalid_arg "Dvec.zip: distribution mismatch";
  { a with local = Array.map2 (fun x y -> (x, y)) a.local b.local }
