(* Block-distributed dense matrices on a q x q processor grid, with row and
   column communicators — the 2-D configuration skeletons (row_col_block
   distribution) realised on the simulated machine.  Row/column
   communicators are exactly the paper's nested ParArray groups. *)

open Machine

type t = {
  comm : Comm.t;  (* the q*q grid communicator; rank = i*q + j *)
  q : int;
  n : int;  (* global dimension; q divides n *)
  row_comm : Comm.t;  (* processors sharing my grid row *)
  col_comm : Comm.t;  (* processors sharing my grid column *)
  block : float array array;  (* my (n/q) x (n/q) block *)
}

let grid_coords t =
  let me = Comm.rank t.comm in
  (me / t.q, me mod t.q)

let block t = t.block
let dim t = t.n
let grid t = t.q

let check_grid comm n =
  let p = Comm.size comm in
  let q = int_of_float (Float.round (sqrt (float_of_int p))) in
  if q * q <> p then invalid_arg "Dmat: communicator size must be a perfect square";
  if n mod q <> 0 then invalid_arg "Dmat: grid side must divide the matrix dimension";
  q

let make_comms comm q =
  let me = Comm.rank comm in
  let i = me / q and j = me mod q in
  let row_comm = Comm.split comm ~color:i ~key:j in
  let col_comm = Comm.split comm ~color:j ~key:i in
  (row_comm, col_comm)

(* Build a matrix whose entries are computed locally (no communication):
   every processor evaluates [f] on its own block's global coordinates. *)
let init comm ~n f =
  let q = check_grid comm n in
  let row_comm, col_comm = make_comms comm q in
  let me = Comm.rank comm in
  let bi = me / q and bj = me mod q in
  let bs = n / q in
  let block = Array.init bs (fun x -> Array.init bs (fun y -> f ((bi * bs) + x) ((bj * bs) + y))) in
  { comm; q; n; row_comm; col_comm; block }

(* Root-held matrix scattered block-wise. *)
let scatter comm ~root (m : float array array option) ~n =
  let q = check_grid comm n in
  let row_comm, col_comm = make_comms comm q in
  let bs = n / q in
  let blocks =
    Option.map
      (fun m ->
        Array.init (q * q) (fun r ->
            let bi = r / q and bj = r mod q in
            Array.init bs (fun x -> Array.init bs (fun y -> m.((bi * bs) + x).((bj * bs) + y)))))
      m
  in
  let block = Comm.scatter comm ~root blocks in
  { comm; q; n; row_comm; col_comm; block }

let gather ~root t : float array array option =
  match Comm.gather t.comm ~root t.block with
  | Some blocks ->
      let bs = t.n / t.q in
      Some
        (Array.init t.n (fun i ->
             Array.init t.n (fun j ->
                 blocks.(((i / bs) * t.q) + (j / bs)).(i mod bs).(j mod bs))))
  | None -> None

(* Replace the local block (pure local operation, no communication): used
   by iterative solvers that rebuild their block each sweep. *)
let with_block t block =
  let bs = t.n / t.q in
  if Array.length block <> bs || Array.exists (fun r -> Array.length r <> bs) block then
    invalid_arg "Dmat.with_block: block shape mismatch";
  { t with block }

let map ~flops f t =
  Comm.work_flops t.comm flops;
  { t with block = Array.map (Array.map f) t.block }

let zip_with ~flops f a b =
  if a.n <> b.n || a.q <> b.q then invalid_arg "Dmat.zip_with: shape mismatch";
  Comm.work_flops a.comm flops;
  { a with block = Array.mapi (fun i row -> Array.mapi (fun j v -> f v b.block.(i).(j)) row) a.block }

(* Transpose: block (i,j) swaps with block (j,i), then each block is
   transposed locally. *)
let transpose t =
  let i, j = grid_coords t in
  let peer = (j * t.q) + i in
  let mine =
    if peer = Comm.rank t.comm then t.block
    else begin
      Comm.send t.comm ~dest:peer t.block;
      (Comm.recv t.comm ~src:peer () : float array array)
    end
  in
  let bs = t.n / t.q in
  Comm.work_flops t.comm (bs * bs);
  { t with block = Array.init bs (fun x -> Array.init bs (fun y -> mine.(y).(x))) }

(* --- halo exchange: the 2-D stencil communication pattern ----------------
   Each block trades its edge rows/columns with its four grid neighbours;
   blocks on the machine-grid boundary get [None] (the PDE boundary). *)

type halo = {
  north : float array option;  (* last row of the block above *)
  south : float array option;  (* first row of the block below *)
  west : float array option;  (* last column of the block left *)
  east : float array option;  (* first column of the block right *)
}

let halo_exchange t : halo =
  let q = t.q in
  let i, j = grid_coords t in
  let bs = t.n / q in
  let rank_of i j = (i * q) + j in
  let top_row = Array.copy t.block.(0) in
  let bottom_row = Array.copy t.block.(bs - 1) in
  let left_col = Array.init bs (fun x -> t.block.(x).(0)) in
  let right_col = Array.init bs (fun x -> t.block.(x).(bs - 1)) in
  (* Sends first (non-blocking in the simulator), then receives: no
     deadlock.  My top row is the south halo of the block above, etc. *)
  if i > 0 then Comm.send t.comm ~dest:(rank_of (i - 1) j) top_row;
  if i < q - 1 then Comm.send t.comm ~dest:(rank_of (i + 1) j) bottom_row;
  if j > 0 then Comm.send t.comm ~dest:(rank_of i (j - 1)) left_col;
  if j < q - 1 then Comm.send t.comm ~dest:(rank_of i (j + 1)) right_col;
  let north = if i > 0 then Some (Comm.recv t.comm ~src:(rank_of (i - 1) j) ()) else None in
  let south = if i < q - 1 then Some (Comm.recv t.comm ~src:(rank_of (i + 1) j) ()) else None in
  let west = if j > 0 then Some (Comm.recv t.comm ~src:(rank_of i (j - 1)) ()) else None in
  let east = if j < q - 1 then Some (Comm.recv t.comm ~src:(rank_of i (j + 1)) ()) else None in
  { north; south; west; east }

(* Local dense multiply (kept here so the dependency direction
   substrate -> algorithms stays acyclic). *)
let local_matmul (x : float array array) (y : float array array) : float array array =
  let n = Array.length x in
  let p = if n = 0 then 0 else Array.length y.(0) in
  let m = Array.length y in
  Array.init n (fun i ->
      Array.init p (fun j ->
          let s = ref 0.0 in
          for k = 0 to m - 1 do
            s := !s +. (x.(i).(k) *. y.(k).(j))
          done;
          !s))

(* SUMMA: C = A * B by q rounds of row/column broadcasts of blocks plus a
   local multiply-accumulate — the grid-group showcase. *)
let summa (a : t) (b : t) : t =
  if a.n <> b.n || a.q <> b.q then invalid_arg "Dmat.summa: shape mismatch";
  let q = a.q and n = a.n in
  let bs = n / q in
  let i, j = grid_coords a in
  let c = ref (Array.init bs (fun _ -> Array.make bs 0.0)) in
  for k = 0 to q - 1 do
    (* the column-k member of my row broadcasts its A block along the row *)
    let a_k =
      Comm.bcast a.row_comm ~root:k (if j = k then Some a.block else None)
    in
    (* the row-k member of my column broadcasts its B block down the column *)
    let b_k =
      Comm.bcast a.col_comm ~root:k (if i = k then Some b.block else None)
    in
    Comm.work_flops a.comm (Kernels.matmul_flops bs);
    let prod = local_matmul a_k b_k in
    c := Array.mapi (fun x row -> Array.mapi (fun y v -> v +. prod.(x).(y)) row) !c
  done;
  { a with block = !c }
