(** Block-distributed vectors on the simulated machine: problem-independent
    implementation templates of the paper's elementary and communication
    skeletons. All operations are SPMD — every member of the communicator
    must call them in the same order. Local compute is charged to the
    simulated clock via operation counts; data movement is priced by the
    machine's cost model. *)

open Machine

type 'a t

val comm : 'a t -> Comm.t
val local : 'a t -> 'a array
(** This processor's chunk (do not mutate). *)

val local_length : 'a t -> int
val total : 'a t -> int
val offset : 'a t -> int
(** Global index of the first local element. *)

val block_bounds : total:int -> parts:int -> int array
val owner_of : total:int -> parts:int -> int -> int

val runs_by : lo:int -> hi:int -> (int -> 'k) -> ('k * int * int) list
(** Group consecutive global indices [[lo, hi)] into maximal runs of
    constant [key]; returns [(key, g0, len)] ascending. Shared with the
    flat tier ([Fvec]), whose coalesced rotate re-derives segment
    geometry on both sides from it. *)

val of_local : Comm.t -> 'a array -> 'a t
(** Assemble from per-processor chunks (collective; computes offsets). *)

val scatter : Comm.t -> root:int -> 'a array option -> 'a t
(** Block-distribute a root-held array. *)

val gather : root:int -> 'a t -> 'a array option
(** Collect to the root; [Some] only there. *)

val allgather : 'a t -> 'a array

(** {1 Elementary skeletons} *)

val map : ?flops_per_elem:int -> ('a -> 'b) -> 'a t -> 'b t
val imap : ?flops_per_elem:int -> (int -> 'a -> 'b) -> 'a t -> 'b t
(** [imap] passes the {e global} element index. *)

val map_chunk : flops:int -> ('a array -> 'b array) -> 'a t -> 'b t
(** Apply a whole-chunk base-language kernel, charging an explicit
    operation count. *)

val fold : ?flops_per_elem:int -> ('a -> 'a -> 'a) -> 'a t -> 'a
(** Local fold + binomial allreduce; every member receives the result.
    @raise Invalid_argument on an empty vector. *)

val scan : ?flops_per_elem:int -> ('a -> 'a -> 'a) -> 'a t -> 'a t
(** Inclusive global prefix (local scan, group scan of totals, local
    adjust). *)

(** {1 Communication skeletons} *)

val rotate : int -> 'a t -> 'a t
(** Global rotation by [k] (result element [g] = input element
    [(g+k) mod total]); sends only the segments neighbours need. *)

val bcast_value : 'a t -> root:int -> 'b option -> 'b
val applybrdcast : flops:int -> ('a -> 'b) -> int -> 'a t -> 'b
(** Apply [f] on the owner of global element [i], broadcast the result. *)

val fetch : (int -> int) -> 'a t -> 'a t
(** Irregular fetch: result element [g] is input element [f g]. Two
    all-to-all phases (index requests out, values back). *)

val send : (int -> int list) -> 'a t -> 'a array t
(** Irregular send: element [g] is delivered to every index in [f g];
    destinations accumulate arrivals in ascending source order. *)

val zip : 'a t -> 'b t -> ('a * 'b) t
(** Pointwise pairing of identically-distributed vectors (the distributed
    align; no communication). @raise Invalid_argument on mismatch. *)
