(* Block-distributed unboxed float vectors: the flat-tier counterpart of
   [Dvec] for numeric workloads.

   An Fvec's local chunk is a [Scl.Flat.float1] (C-layout Bigarray), so
   data movement goes through the engines' bulk slice tier: no
   marshalling, no per-element boxing, and on the multicore engine a
   transfer is one zero-copy window handoff.  Collective constructors
   (scatter/gather/allgather) ride [Comm]'s slice collectives, and
   [rotate] coalesces everything a processor owes a neighbour into ONE
   bulk message per destination per call — versus one boxed message per
   segment (and a marshalled tuple each) on the [Dvec] path.

   [Dvec] remains the executable specification: the flat operations are
   differential-tested against it, and the numeric algorithms keep their
   boxed variants as oracles. *)

open Machine

type t = {
  comm : Comm.t;
  local : Scl.Flat.float1;
  offset : int;  (* global index of local element 0 *)
  total : int;
}

let comm t = t.comm
let local t = t.local
let local_length t = Scl.Flat.length t.local
let total t = t.total
let offset t = t.offset
let block_bounds = Dvec.block_bounds
let owner_of = Dvec.owner_of
let charge t flops = Comm.work_flops t.comm flops

let of_local comm local =
  let lens = Comm.allgather comm (Scl.Flat.length local) in
  let me = Comm.rank comm in
  let offset = ref 0 in
  for i = 0 to me - 1 do
    offset := !offset + lens.(i)
  done;
  { comm; local; offset = !offset; total = Array.fold_left ( + ) 0 lens }

let scatter comm ~root (a : Scl.Flat.float1 option) : t =
  let p = Comm.size comm in
  let total = Comm.bcast comm ~root (Option.map Scl.Flat.length a) in
  (* [scatter_slice] uses the same block geometry as [block_bounds]; the
     received window may alias the root's storage (multicore zero-copy),
     and an Fvec owns mutable local state, so take a private copy — one
     blit, still no marshalling or boxing. *)
  let chunk = Comm.scatter_slice comm ~root a in
  let b = block_bounds ~total ~parts:p in
  { comm; local = Scl.Flat.copy chunk; offset = b.(Comm.rank comm); total }

let gather ~root t : Scl.Flat.float1 option = Comm.gather_slice t.comm ~root t.local
let allgather t : Scl.Flat.float1 = Comm.allgather_slice t.comm t.local

(* rotate k: result element at global index g is the input element at
   (g + k) mod total.  Same segment geometry as [Dvec.rotate], but all
   segments bound for one destination are coalesced into a single bulk
   message (at most p-1 sends per member per call), and no metadata
   travels: the receiver re-derives each sender's segment order from the
   closed-form block bounds, which both sides compute identically. *)
let rotate k t =
  let p = Comm.size t.comm in
  let total = t.total in
  if total = 0 || k mod total = 0 then t
  else begin
    let wrap g = ((g mod total) + total) mod total in
    if p = 1 then begin
      charge t (Kernels.copy_flops total);
      {
        t with
        local = Scl.Flat.init Scl.Flat.float64 total (fun i -> Scl.Flat.get t.local (wrap (i + k)));
      }
    end
    else begin
      let me = Comm.rank t.comm in
      let lo = t.offset and hi = t.offset + local_length t in
      let floor_div a b = if a >= 0 then a / b else ((a + 1) / b) - 1 in
      (* Outbound: maximal source runs contiguous at the destination
         (split on owner change and on the wrap discontinuity), exactly
         [Dvec.rotate]'s geometry. *)
      let dest_of g = owner_of ~total ~parts:p (wrap (g - k)) in
      let dest_key g = (dest_of g, floor_div (g - k) total) in
      let out_runs = Dvec.runs_by ~lo ~hi dest_key in
      (* Coalesce: one slice per destination, runs packed in ascending
         source order (the order the receiver will re-derive). A lone run
         ships as a zero-copy sub-view; only multi-run destinations pay a
         pack copy. *)
      for dest = 0 to p - 1 do
        if dest <> me then begin
          let mine = List.filter (fun ((d, _), _, _) -> d = dest) out_runs in
          match mine with
          | [] -> ()
          | [ (_, g0, len) ] ->
              Comm.send_slice t.comm ~dest (Scl.Flat.sub_view t.local ~pos:(g0 - lo) ~len)
          | runs ->
              let sz = List.fold_left (fun acc (_, _, len) -> acc + len) 0 runs in
              let pack = Scl.Flat.create Scl.Flat.float64 sz in
              let off = ref 0 in
              List.iter
                (fun (_, g0, len) ->
                  Scl.Flat.blit
                    ~src:(Scl.Flat.sub_view t.local ~pos:(g0 - lo) ~len)
                    ~dst:(Scl.Flat.sub_view pack ~pos:!off ~len);
                  off := !off + len)
                runs;
              Comm.send_slice t.comm ~dest pack
        end
      done;
      let out = Scl.Flat.copy t.local in
      charge t (Kernels.copy_flops (local_length t));
      (* Inbound: my destination runs, grouped by source owner.  For each
         source, its runs arrive concatenated in the sender's ascending
         source-index order — sort my runs by wrap(g0 + k) (the sender-side
         index of the run's first element) to walk the packed slice. *)
      let src_of g = owner_of ~total ~parts:p (wrap (g + k)) in
      let src_key g = (src_of g, floor_div (g + k) total) in
      let in_runs = Dvec.runs_by ~lo ~hi src_key in
      List.iter
        (fun ((dest, _), g0, len) ->
          if dest = me then
            for i = 0 to len - 1 do
              Scl.Flat.set out (wrap (g0 + i - k) - lo) (Scl.Flat.get t.local (g0 + i - t.offset))
            done)
        out_runs;
      for src = 0 to p - 1 do
        if src <> me then begin
          let mine =
            List.filter (fun ((s, _), _, _) -> s = src) in_runs
            |> List.map (fun (_, g0, len) -> (wrap (g0 + k), g0, len))
            |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
          in
          match mine with
          | [] -> ()
          | runs ->
              let slice = Comm.recv_slice t.comm ~src () in
              let off = ref 0 in
              List.iter
                (fun (_, g0, len) ->
                  Scl.Flat.blit
                    ~src:(Scl.Flat.sub_view slice ~pos:!off ~len)
                    ~dst:(Scl.Flat.sub_view out ~pos:(g0 - lo) ~len);
                  off := !off + len)
                runs
        end
      done;
      { t with local = out }
    end
  end

(* fetch f: result element at global index g is the input element at [f g]
   — the irregular Fetch pattern.  [Dvec.fetch] pays two all-to-all phases
   (marshalled index requests out, marshalled (slot, value) pairs back);
   here NO metadata travels at all.  [f] is pure and the block geometry is
   closed-form, so both sides can evaluate the same plan: the sender walks
   each destination's slot range in ascending global order and packs the
   values it owns into ONE slice per destination (at most p-1 sends per
   member, zero-copy when the sources form one contiguous ascending run);
   the receiver walks its own slots in the same ascending order, pulling
   from a per-source cursor — the packed order is re-derived, never
   transmitted.  Results are bitwise-identical to [Dvec.fetch]. *)
let fetch f t =
  let p = Comm.size t.comm in
  let total = t.total in
  let check g =
    let s = f g in
    if s < 0 || s >= total then invalid_arg "Fvec.fetch: source index out of range";
    s
  in
  if total = 0 then t
  else if p = 1 then begin
    charge t (Kernels.copy_flops total);
    { t with local = Scl.Flat.init Scl.Flat.float64 total (fun g -> Scl.Flat.get t.local (check g)) }
  end
  else begin
    let me = Comm.rank t.comm in
    let b = block_bounds ~total ~parts:p in
    let lo = t.offset and hi = t.offset + local_length t in
    (* Outbound: for each other member, collect the values I own for its
       slots, in ITS ascending slot order (the order it will consume). *)
    for dest = 0 to p - 1 do
      if dest <> me then begin
        (* First pass: count, and detect the single-contiguous-run case
           (sources consecutive ascending), which ships as a zero-copy
           sub-view of my chunk. *)
        let cnt = ref 0 and first_src = ref 0 and prev_src = ref 0 and contiguous = ref true in
        for g = b.(dest) to b.(dest + 1) - 1 do
          let s = f g in
          if s >= lo && s < hi then begin
            if !cnt = 0 then first_src := s
            else if s <> !prev_src + 1 then contiguous := false;
            prev_src := s;
            incr cnt
          end
        done;
        if !cnt > 0 then
          if !contiguous then
            Comm.send_slice t.comm ~dest
              (Scl.Flat.sub_view t.local ~pos:(!first_src - lo) ~len:!cnt)
          else begin
            let pack = Scl.Flat.create Scl.Flat.float64 !cnt in
            let off = ref 0 in
            for g = b.(dest) to b.(dest + 1) - 1 do
              let s = f g in
              if s >= lo && s < hi then begin
                Scl.Flat.set pack !off (Scl.Flat.get t.local (s - lo));
                incr off
              end
            done;
            Comm.send_slice t.comm ~dest pack
          end
      end
    done;
    charge t (Kernels.copy_flops (local_length t));
    (* Inbound: which owners feed my slots, and how many values each
       sends — re-derived from the same geometry, no metadata. *)
    let counts = Array.make p 0 in
    for g = lo to hi - 1 do
      let o = owner_of ~total ~parts:p (check g) in
      counts.(o) <- counts.(o) + 1
    done;
    let slices = Array.make p None in
    for src = 0 to p - 1 do
      if src <> me && counts.(src) > 0 then slices.(src) <- Some (Comm.recv_slice t.comm ~src ())
    done;
    (* Reassemble: walk my slots ascending, pulling each value from its
       owner's packed slice via a per-owner cursor — the exact order the
       sender packed. *)
    let out = Scl.Flat.create Scl.Flat.float64 (local_length t) in
    let cursors = Array.make p 0 in
    for g = lo to hi - 1 do
      let s = f g in
      let o = owner_of ~total ~parts:p s in
      if o = me then Scl.Flat.set out (g - lo) (Scl.Flat.get t.local (s - lo))
      else begin
        let slice = match slices.(o) with Some sl -> sl | None -> assert false in
        Scl.Flat.set out (g - lo) (Scl.Flat.get slice cursors.(o));
        cursors.(o) <- cursors.(o) + 1
      end
    done;
    { t with local = out }
  end
