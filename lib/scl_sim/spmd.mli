(** Run SPMD skeleton programs — on the simulated machine or on real
    OCaml 5 domains. The same program body works on both engines. *)

open Machine

val default_topology : int -> Topology.t
(** Hypercube when the processor count is a power of two, else complete. *)

val run :
  ?trace:Trace.t ->
  ?cost:Cost_model.t ->
  ?topology:Topology.t ->
  ?chaos:Chaos.spec ->
  procs:int ->
  (Comm.t -> unit) ->
  Sim.stats
(** Run the program on every simulated processor with a world communicator;
    the cost model defaults to the AP1000 calibration. With [?chaos], each
    rank's engine is wrapped in the fault injector (see {!Machine.Chaos})
    before the communicator is built — the program body is untouched. *)

val run_collect :
  ?trace:Trace.t ->
  ?cost:Cost_model.t ->
  ?topology:Topology.t ->
  ?chaos:Chaos.spec ->
  procs:int ->
  (Comm.t -> 'a option) ->
  'a * Sim.stats
(** Like {!run} for programs that produce a value at (at least) one
    processor. *)

val run_multicore :
  ?domains:int ->
  ?cost:Cost_model.t ->
  ?topology:Topology.t ->
  ?chaos:Chaos.spec ->
  procs:int ->
  (Comm.t -> unit) ->
  Multicore.stats
(** Run the same program for real: each rank on an OCaml domain (ranks
    beyond [?domains] are multiplexed), zero-copy messaging, [Comm.work]
    a no-op. [?chaos] as in {!run} (stalls become real sleeps). *)

val run_multicore_collect :
  ?domains:int ->
  ?cost:Cost_model.t ->
  ?topology:Topology.t ->
  ?chaos:Chaos.spec ->
  procs:int ->
  (Comm.t -> 'a option) ->
  'a * Multicore.stats
(** Like {!run_multicore} for programs that produce a value. *)
