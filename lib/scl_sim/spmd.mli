(** Run SPMD skeleton programs — on the simulated machine, on real
    OCaml 5 domains, or on real forked OS processes. The same program
    body works on all three engines. *)

open Machine

val default_topology : int -> Topology.t
(** Hypercube when the processor count is a power of two, else complete. *)

val run :
  ?trace:Trace.t ->
  ?cost:Cost_model.t ->
  ?topology:Topology.t ->
  ?chaos:Chaos.spec ->
  procs:int ->
  (Comm.t -> unit) ->
  Sim.stats
(** Run the program on every simulated processor with a world communicator;
    the cost model defaults to the AP1000 calibration. With [?chaos], each
    rank's engine is wrapped in the fault injector (see {!Machine.Chaos})
    before the communicator is built — the program body is untouched. *)

val run_collect :
  ?trace:Trace.t ->
  ?cost:Cost_model.t ->
  ?topology:Topology.t ->
  ?chaos:Chaos.spec ->
  procs:int ->
  (Comm.t -> 'a option) ->
  'a * Sim.stats
(** Like {!run} for programs that produce a value at (at least) one
    processor. *)

val run_multicore :
  ?domains:int ->
  ?cost:Cost_model.t ->
  ?topology:Topology.t ->
  ?chaos:Chaos.spec ->
  procs:int ->
  (Comm.t -> unit) ->
  Multicore.stats
(** Run the same program for real: each rank on an OCaml domain (ranks
    beyond [?domains] are multiplexed), zero-copy messaging, [Comm.work]
    a no-op. [?chaos] as in {!run} (stalls become real sleeps). *)

val run_multicore_collect :
  ?domains:int ->
  ?cost:Cost_model.t ->
  ?topology:Topology.t ->
  ?chaos:Chaos.spec ->
  procs:int ->
  (Comm.t -> 'a option) ->
  'a * Multicore.stats
(** Like {!run_multicore} for programs that produce a value. *)

val run_procs :
  ?cost:Cost_model.t ->
  ?topology:Topology.t ->
  ?chaos:Chaos.spec ->
  procs:int ->
  (Comm.t -> unit) ->
  Procs.stats
(** Run the same program on real OS processes: each rank is forked and
    ranks talk over Unix-domain sockets ({!Machine.Procs}), so payloads
    must be marshalable and a dead process is a real {!Fault.Crashed}.
    [?chaos] as in {!run}; the wrapper runs inside each child. Fork
    safety: only valid in a process that has never created another
    domain — [Unix.fork] refuses permanently after the first
    [Domain.spawn], so run procs work before any pool or multicore
    run (see {!Machine.Procs}). *)

val run_procs_collect :
  ?cost:Cost_model.t ->
  ?topology:Topology.t ->
  ?chaos:Chaos.spec ->
  procs:int ->
  (Comm.t -> 'a option) ->
  'a * Procs.stats
(** Like {!run_procs} for programs that produce a value; the value
    returns to the parent by [Marshal]. *)
