(* MPI-style communicators and collective operations, built entirely on the
   engine's point-to-point sends — exactly the layering the paper relies
   on ("skeletons can be efficiently implemented as libraries or macros
   defined over base languages and standard communication libraries").

   A communicator names an ordered subset of the machine's processors; a
   processor's rank *within* the communicator is its index in that order.
   Nested parallelism (paper Section 2.1: "an element of a nested array
   corresponds to the concept of a group in MPI") is supported via [split].

   The collectives are written once against [Engine.t], so the same
   program text runs on the discrete-event simulator (where [work] charges
   simulated time and messages are priced by the cost model) and on the
   multicore engine (real domains, zero-copy messages, wall-clock time).

   Tag discipline: every collective call consumes one sequence number from
   the communicator, and all its internal messages carry a tag derived from
   (sequence, opcode) in a reserved tag space.  Since SPMD members execute
   the same sequence of collectives, the sequence numbers agree across the
   group, so overlapping traffic from adjacent collectives can never be
   mis-matched, even when some members run ahead.  User point-to-point
   traffic lives in a second reserved space ([user_space]) so tagged
   sends/receives cannot collide with collective internals either. *)

type t = {
  eng : Engine.t;
  ranks : int array;  (* global ranks, ordered; my position defines my rank *)
  rank_index : int array;  (* global rank -> index in [ranks]; -1 = not a member *)
  my_index : int;
  mutable seq : int;
}

let tag_space = 1 lsl 28
let user_space = 1 lsl 29

let opcode_barrier = 0
and opcode_bcast = 1
and opcode_reduce = 2
and opcode_gather = 3
and opcode_scatter = 4
and opcode_alltoall = 5
and opcode_scan = 6
and opcode_split = 7
and opcode_sendrecv = 8
and opcode_slice = 9

let world eng =
  let n = eng.Engine.size in
  {
    eng;
    ranks = Array.init n Fun.id;
    rank_index = Array.init n Fun.id;
    my_index = eng.Engine.rank;
    seq = 0;
  }

let of_ranks eng ranks =
  (* One pass builds the reverse map (global rank -> index), which also
     finds the caller's index and rejects duplicates — [recv_any] then maps
     sources in O(1) instead of rescanning [ranks] per message. *)
  let me = eng.Engine.rank in
  let rank_index = Array.make eng.Engine.size (-1) in
  Array.iteri
    (fun i r ->
      if r < 0 || r >= eng.Engine.size then invalid_arg "Comm.of_ranks: rank out of range";
      if rank_index.(r) >= 0 then invalid_arg "Comm.of_ranks: duplicate rank";
      rank_index.(r) <- i)
    ranks;
  if rank_index.(me) < 0 then invalid_arg "Comm.of_ranks: calling processor not a member";
  { eng; ranks = Array.copy ranks; rank_index; my_index = rank_index.(me); seq = 0 }

let rank t = t.my_index
let size t = Array.length t.ranks
let global_rank t i = t.ranks.(i)
let global_ranks t = Array.copy t.ranks
let engine t = t.eng

(* Engine conveniences, so programs never need to name the engine. *)
let work t d = t.eng.Engine.work d
let work_flops t n = Engine.work_flops t.eng n
let sleep t d = t.eng.Engine.sleep d
let cost t = t.eng.Engine.cost
let topology t = t.eng.Engine.topology
let time t = t.eng.Engine.time ()
let note t msg = t.eng.Engine.note msg

(* 24 bits of sequence + 4 of opcode keeps every collective tag inside
   [tag_space, user_space).  Aliasing a live collective's tag would be a
   silent-corruption bug, so genuine exhaustion fails loudly instead of
   wrapping — 2^24 collectives is far beyond any single communicator's
   realistic lifetime, and [split] hands out fresh communicators anyway. *)
let max_seq = 1 lsl 24

let fresh_tag t opcode =
  if t.seq >= max_seq then
    invalid_arg
      (Printf.sprintf "Comm.fresh_tag: collective sequence exhausted (%d tags); split or rebuild \
                       the communicator"
         max_seq);
  let tag = tag_space lor (t.seq lsl 4) lor opcode in
  t.seq <- t.seq + 1;
  tag

(* Test-only: jump the sequence counter to probe the overflow boundary
   without issuing 2^24 collectives.  All members must agree, as with any
   collective-order obligation. *)
let unsafe_set_seq t seq =
  if seq < 0 then invalid_arg "Comm.unsafe_set_seq: negative";
  t.seq <- seq

let sendi t ~tag dst_index v = t.eng.Engine.send ~dest:t.ranks.(dst_index) ~tag v

let recvi : type a. t -> tag:int -> int -> a =
 fun t ~tag src_index -> t.eng.Engine.recv ~src:t.ranks.(src_index) ~tag ()

(* --- barrier: dissemination algorithm, O(log m) rounds ------------------ *)

let barrier t =
  let m = size t in
  if m > 1 then begin
    let tag = fresh_tag t opcode_barrier in
    let i = t.my_index in
    let mask = ref 1 in
    while !mask < m do
      sendi t ~tag ((i + !mask) mod m) ();
      (recvi t ~tag ((i - !mask + m) mod m) : unit);
      mask := !mask lsl 1
    done
  end

(* --- broadcast: binomial tree rooted at [root] -------------------------- *)

let vrank t ~root = (t.my_index - root + size t) mod size t
let unvrank t ~root v = (v + root) mod size t

let bcast (type a) t ~root (v : a option) : a =
  let m = size t in
  if root < 0 || root >= m then invalid_arg "Comm.bcast: bad root";
  let tag = fresh_tag t opcode_bcast in
  let vr = vrank t ~root in
  let value : a option ref = ref v in
  if vr = 0 && !value = None then invalid_arg "Comm.bcast: root must supply a value";
  let mask = ref 1 in
  while !mask < m do
    let mk = !mask in
    if vr >= mk && vr < 2 * mk && !value = None then
      value := Some (recvi t ~tag (unvrank t ~root (vr - mk)));
    if vr < mk && vr + mk < m then
      sendi t ~tag (unvrank t ~root (vr + mk)) (Option.get !value);
    mask := mk lsl 1
  done;
  match !value with
  | Some v -> v
  | None -> assert false (* m = 1 and not root is impossible *)

(* --- reduce: binomial tree in true rank order ---------------------------
   The tree is always rooted at member 0, so partial results combine as
   (v0·v1)·(v2·v3)·… — associativity-only, valid for non-commutative
   operators at EVERY root.  Rooting the tree at [root] instead (the
   obvious "rotate by root" trick bcast uses) would fold in virtual-rank
   order v_root·…·v_{m-1}·v_0·…, a rotated product.  For root ≠ 0 the
   result takes one extra hop from member 0 to the root; root = 0 (and
   hence allreduce) is byte-for-byte the same traffic as before. *)

let reduce t ~root op v =
  let m = size t in
  if root < 0 || root >= m then invalid_arg "Comm.reduce: bad root";
  let tag = fresh_tag t opcode_reduce in
  let i = t.my_index in
  let acc = ref v in
  let rec go mask =
    if mask < m then
      if i land mask <> 0 then sendi t ~tag (i - mask) !acc
      else begin
        let partner = i + mask in
        if partner < m then begin
          let w = recvi t ~tag partner in
          acc := op !acc w
        end;
        go (mask lsl 1)
      end
  in
  go 1;
  if root = 0 then if i = 0 then Some !acc else None
  else if i = 0 then begin
    sendi t ~tag root !acc;
    None
  end
  else if i = root then Some (recvi t ~tag 0)
  else None

let allreduce t op v =
  match reduce t ~root:0 op v with
  | Some r -> bcast t ~root:0 (Some r)
  | None -> bcast t ~root:0 None

(* --- gather: binomial combining of (index, value) segments -------------- *)

let gather (type a) t ~root (v : a) : a array option =
  let m = size t in
  if root < 0 || root >= m then invalid_arg "Comm.gather: bad root";
  let tag = fresh_tag t opcode_gather in
  let vr = vrank t ~root in
  let chunks : (int * a) list ref = ref [ (t.my_index, v) ] in
  let rec go mask =
    if mask < m then
      if vr land mask <> 0 then sendi t ~tag (unvrank t ~root (vr - mask)) !chunks
      else begin
        let partner = vr + mask in
        if partner < m then begin
          let more : (int * a) list = recvi t ~tag (unvrank t ~root partner) in
          chunks := !chunks @ more
        end;
        go (mask lsl 1)
      end
  in
  go 1;
  if t.my_index = root then begin
    let out = Array.make m v in
    List.iter (fun (i, x) -> out.(i) <- x) !chunks;
    Some out
  end
  else None

let allgather t v =
  match gather t ~root:0 v with
  | Some arr -> bcast t ~root:0 (Some arr)
  | None -> bcast t ~root:0 None

(* --- scatter: binomial tree pushing (vrank, value) segments downward ----
   At step [mask] a holder keeps pairs with vrank ≡ mine (mod 2*mask) and
   forwards pairs ≡ mine+mask (mod 2*mask); after the last step each member
   holds exactly its own pair. *)

let scatter (type a) t ~root (arr : a array option) : a =
  let m = size t in
  if root < 0 || root >= m then invalid_arg "Comm.scatter: bad root";
  let tag = fresh_tag t opcode_scatter in
  let vr = vrank t ~root in
  let segment : (int * a) list ref =
    if t.my_index = root then begin
      match arr with
      | Some a when Array.length a = m ->
          ref (List.init m (fun i -> ((i - root + m) mod m, a.(i))))
      | Some _ -> invalid_arg "Comm.scatter: array length must equal communicator size"
      | None -> invalid_arg "Comm.scatter: root must supply the array"
    end
    else ref []
  in
  let mask = ref 1 in
  while !mask < m do
    let mk = !mask in
    if vr >= mk && vr < 2 * mk && !segment = [] then
      segment := (recvi t ~tag (unvrank t ~root (vr - mk)) : (int * a) list);
    if vr < mk && vr + mk < m then begin
      let keep, give =
        List.partition (fun (u, _) -> u mod (2 * mk) <> (vr + mk) mod (2 * mk)) !segment
      in
      segment := keep;
      sendi t ~tag (unvrank t ~root (vr + mk)) give
    end;
    mask := mk lsl 1
  done;
  match List.find_opt (fun (u, _) -> u = vr) !segment with
  | Some (_, v) -> v
  | None -> invalid_arg "Comm.scatter: internal segment routing error"

(* --- all-to-all: m-1 rounds of pairwise exchange ------------------------ *)

let alltoall (type a) t (a : a array) : a array =
  let m = size t in
  if Array.length a <> m then invalid_arg "Comm.alltoall: array length must equal communicator size";
  let tag = fresh_tag t opcode_alltoall in
  let i = t.my_index in
  let out = Array.make m a.(i) in
  for r = 1 to m - 1 do
    let dst = (i + r) mod m and src = (i - r + m) mod m in
    sendi t ~tag dst a.(dst);
    out.(src) <- recvi t ~tag src
  done;
  out

(* --- inclusive scan: Hillis–Steele, O(log m) rounds --------------------- *)

let scan t op v =
  let m = size t in
  let tag = fresh_tag t opcode_scan in
  let i = t.my_index in
  let prefix = ref v in
  let d = ref 1 in
  while !d < m do
    let dd = !d in
    if i + dd < m then sendi t ~tag (i + dd) !prefix;
    if i - dd >= 0 then begin
      let w = recvi t ~tag (i - dd) in
      prefix := op w !prefix
    end;
    d := dd lsl 1
  done;
  !prefix

(* --- split: colors and keys, like MPI_Comm_split ------------------------ *)

let split t ~color ~key =
  let tag = fresh_tag t opcode_split in
  ignore tag;
  let triples = allgather t (color, key, t.eng.Engine.rank) in
  let mine =
    triples |> Array.to_list
    |> List.filter (fun (c, _, _) -> c = color)
    |> List.stable_sort (fun (_, k1, r1) (_, k2, r2) -> compare (k1, r1) (k2, r2))
    |> List.map (fun (_, _, r) -> r)
    |> Array.of_list
  in
  of_ranks t.eng mine

(* --- point-to-point within a communicator ------------------------------- *)

let p2p_tag = function
  | None -> tag_space lor opcode_sendrecv
  | Some u ->
      if u < 0 || u >= user_space then invalid_arg "Comm: user tag out of range";
      user_space lor u

let send t ~dest ?tag v =
  if dest < 0 || dest >= size t then invalid_arg "Comm.send: bad destination";
  t.eng.Engine.send ~dest:t.ranks.(dest) ~tag:(p2p_tag tag) v

let recv : type a. t -> src:int -> ?tag:int -> ?timeout:float -> unit -> a =
 fun t ~src ?tag ?timeout () ->
  if src < 0 || src >= size t then invalid_arg "Comm.recv: bad source";
  t.eng.Engine.recv ?timeout ~src:t.ranks.(src) ~tag:(p2p_tag tag) ()

let recv_any : type a. t -> ?tag:int -> ?timeout:float -> unit -> int * a =
 fun t ?tag ?timeout () ->
  let src, v = t.eng.Engine.recv_any ?timeout ~tag:(p2p_tag tag) () in
  let idx = t.rank_index.(src) in
  if idx < 0 then invalid_arg "Comm.recv_any: message from outside the communicator";
  (idx, v)

let exchange t ~partner ?tag v =
  (* Symmetric pairwise exchange: both sides send then receive, which is
     deadlock-free because sends never block on either engine. *)
  send t ~dest:partner ?tag v;
  recv t ~src:partner ?tag ()

(* --- bulk slice tier ----------------------------------------------------
   Typed unboxed-float counterparts of the point-to-point operations and
   the data-movement collectives, built on [Engine.send_slice]: every call
   below moves each hop's worth of data as exactly ONE message, however
   long the slice — this is the coalescing contract the halo-exchange and
   rotate optimisations build on.  Slice traffic shares the ordinary tag
   spaces, so slice and boxed messages on the same (src, tag) channel keep
   their relative order; a channel must still carry one payload type at a
   time (the usual recv typing discipline). *)

let send_slice t ~dest ?tag s =
  if dest < 0 || dest >= size t then invalid_arg "Comm.send_slice: bad destination";
  t.eng.Engine.send_slice ~dest:t.ranks.(dest) ~tag:(p2p_tag tag) s

let recv_slice t ~src ?tag ?timeout () =
  if src < 0 || src >= size t then invalid_arg "Comm.recv_slice: bad source";
  t.eng.Engine.recv_slice ?timeout ~src:t.ranks.(src) ~tag:(p2p_tag tag) ()

let send_slice_i t ~tag dst_index s = t.eng.Engine.send_slice ~dest:t.ranks.(dst_index) ~tag s
let recv_slice_i t ~tag src_index = t.eng.Engine.recv_slice ~src:t.ranks.(src_index) ~tag ()

(* Block decomposition geometry shared with the scl_sim distributed
   vectors: member k of m holds [bounds.(k), bounds.(k+1)) of a length-n
   vector, sizes n/m rounded up for the first n mod m members. *)
let block_bounds ~total ~parts =
  let q = total / parts and r = total mod parts in
  Array.init (parts + 1) (fun k -> (k * q) + min k r)

let sub1 s pos len = Bigarray.Array1.sub s pos len
let dim1 s = Bigarray.Array1.dim s

let bcast_slice t ~root (v : Engine.slice option) : Engine.slice =
  (* binomial tree, same shape as [bcast]; each hop forwards the whole
     slice as one bulk message *)
  let m = size t in
  if root < 0 || root >= m then invalid_arg "Comm.bcast_slice: bad root";
  let tag = fresh_tag t opcode_slice in
  let vr = vrank t ~root in
  let value = ref v in
  if vr = 0 && !value = None then invalid_arg "Comm.bcast_slice: root must supply a value";
  let mask = ref 1 in
  while !mask < m do
    let mk = !mask in
    if vr >= mk && vr < 2 * mk && !value = None then
      value := Some (recv_slice_i t ~tag (unvrank t ~root (vr - mk)));
    if vr < mk && vr + mk < m then
      send_slice_i t ~tag (unvrank t ~root (vr + mk)) (Option.get !value);
    mask := mk lsl 1
  done;
  match !value with Some v -> v | None -> assert false

let scatter_slice t ~root (s : Engine.slice option) : Engine.slice =
  (* Flat tree: the root sends each member its block as one direct message
     (m-1 messages total, zero-copy sub-views of the root's storage on the
     multicore engine).  A binomial tree would route segments through
     intermediaries — more total bytes on the wire for bulk payloads. *)
  let m = size t in
  if root < 0 || root >= m then invalid_arg "Comm.scatter_slice: bad root";
  let tag = fresh_tag t opcode_slice in
  if t.my_index = root then begin
    let s =
      match s with Some s -> s | None -> invalid_arg "Comm.scatter_slice: root must supply a slice"
    in
    let b = block_bounds ~total:(dim1 s) ~parts:m in
    for i = 0 to m - 1 do
      if i <> root then send_slice_i t ~tag i (sub1 s b.(i) (b.(i + 1) - b.(i)))
    done;
    sub1 s b.(root) (b.(root + 1) - b.(root))
  end
  else recv_slice_i t ~tag root

let gather_slice t ~root (local : Engine.slice) : Engine.slice option =
  (* Mirror of [scatter_slice]: one direct message per non-root member;
     the root concatenates in rank order (members may hold blocks of any
     length — the root derives offsets from the received lengths). *)
  let m = size t in
  if root < 0 || root >= m then invalid_arg "Comm.gather_slice: bad root";
  let tag = fresh_tag t opcode_slice in
  if t.my_index = root then begin
    let parts = Array.make m local in
    for i = 0 to m - 1 do
      if i <> root then parts.(i) <- recv_slice_i t ~tag i
    done;
    let total = Array.fold_left (fun acc s -> acc + dim1 s) 0 parts in
    let out = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout total in
    let off = ref 0 in
    Array.iter
      (fun s ->
        let n = dim1 s in
        Bigarray.Array1.blit s (sub1 out !off n);
        off := !off + n)
      parts;
    Some out
  end
  else begin
    send_slice_i t ~tag root local;
    None
  end

let allgather_slice t (local : Engine.slice) : Engine.slice =
  match gather_slice t ~root:0 local with
  | Some all -> bcast_slice t ~root:0 (Some all)
  | None -> bcast_slice t ~root:0 None
