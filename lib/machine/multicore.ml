(* Multicore execution engine: SPMD programs on real OCaml 5 domains.

   This is the "hand-compile to MPI and run it" half of the paper's story:
   the same [Comm]-level program that the discrete-event simulator prices
   is executed here for real, one virtual processor ("rank") per fiber,
   fibers multiplexed over a fixed set of domains (rank r runs on domain
   r mod D, so a captured continuation is always resumed on the domain
   that captured it).

   Message fabric:
   - one tagged mailbox per rank, built on [Runtime.Mpmc_queue]
     (mutex + condvar FIFO: per-sender push order is preserved);
   - each rank drains its mailbox into a consumer-local pending list and
     matches (src, tag) against that list in arrival order, which yields
     exactly MPI's non-overtaking rule: FIFO per (source, tag);
   - payloads move zero-copy by reference ([Obj.repr]/[Obj.obj] — the same
     contract as the simulator's [~bytes] fast path: the sender must not
     mutate a value after sending it);
   - blocked receives park the fiber with an effect; when every rank on a
     domain is parked the domain spins with [Runtime.Backoff], then sleeps
     on its doorbell (a condvar rung by senders targeting its ranks).

   Deadlock is detected by quiescence, mirroring [Sim.Deadlock]: when every
   live domain is asleep and no message is in flight, no future progress is
   possible.  The counters are maintained so that the test is sound:
   [in_flight] is incremented before a packet is pushed and decremented
   after it is drained, so "in_flight = 0 and all domains asleep" proves
   the mailboxes are empty and nobody will ring a doorbell.  The last
   domain to fall asleep performs the check, as does every domain on exit
   (covering the case where the only potential sender finishes). *)

exception Deadlock of string

type packet = { pkt_src : int; pkt_tag : int; payload : Obj.t }
type want = { want_src : int option; want_tag : int option }

type park =
  | Ready of (unit -> unit)
  | Running
  | Waiting of want * float option * (packet, unit) Effect.Deep.continuation
      (* the float is an absolute wall-clock deadline (seconds since t0) *)
  | Finished

type rstate = {
  rk : int;
  mailbox : packet Runtime.Mpmc_queue.t;
  mutable pending : packet list;  (* drained, unmatched; arrival order *)
  mutable park : park;
  mutable crashed : bool;  (* fail-stopped via Fault.Crashed *)
  mutable sent : int;  (* single-writer: only this rank's fiber *)
  mutable received : int;
}

type doorbell = { mu : Mutex.t; cond : Condition.t; rings : int Atomic.t }

type fabric = {
  procs : int;
  ndomains : int;
  cost : Cost_model.t;
  topology : Topology.t;
  ranks : rstate array;
  bells : doorbell array;
  in_flight : int Atomic.t;
  sleepers : int Atomic.t;
  active_domains : int Atomic.t;
  sleep_count : int Atomic.t;
  failure : exn option Atomic.t;
  start : Runtime.Barrier.t;
  t0 : int64;
}

type stats = {
  wall : float;  (* seconds, fabric creation to last domain joined *)
  total_msgs : int;
  total_recvs : int;
  domains_used : int;
  sleeps : int;  (* spin-to-sleep transitions across all domains *)
}

type _ Effect.t += E_wait : want * float option -> packet Effect.t

(* ------------------------------------------------------------ observability *)

let obs_runs = Obs.Counter.make "mc.runs"
let obs_sends = Obs.Counter.make "mc.sends"
let obs_recvs = Obs.Counter.make "mc.recvs"
let obs_parks = Obs.Counter.make "mc.parks"
let obs_sleeps = Obs.Counter.make "mc.sleeps"
let obs_barrier_waits = Obs.Counter.make "mc.barrier_waits"
let obs_wall = Obs.Histogram.make ~unit_:"us" "mc.wall_us"
let obs_run_span = Obs.Span.make "mc.run_wall"

(* ------------------------------------------------------------ message fabric *)

let matches w pkt =
  (match w.want_src with None -> true | Some s -> pkt.pkt_src = s)
  && match w.want_tag with None -> true | Some t -> pkt.pkt_tag = t

(* Remove and return the oldest pending packet matching [w].  Because the
   pending list is in mailbox (arrival) order and each sender's pushes are
   ordered, the first match is the oldest from its (source, tag). *)
let take_pending st w =
  let rec go acc = function
    | [] -> None
    | pkt :: rest when matches w pkt ->
        st.pending <- List.rev_append acc rest;
        Some pkt
    | pkt :: rest -> go (pkt :: acc) rest
  in
  go [] st.pending

let drain fab st =
  let rec go () =
    match Runtime.Mpmc_queue.try_pop st.mailbox with
    | Some pkt ->
        ignore (Atomic.fetch_and_add fab.in_flight (-1));
        st.pending <- st.pending @ [ pkt ];
        go ()
    | None -> ()
  in
  go ()

let ring fab dom =
  let b = fab.bells.(dom) in
  Mutex.lock b.mu;
  Atomic.incr b.rings;
  Condition.broadcast b.cond;
  Mutex.unlock b.mu

(* First failure wins; everyone else is woken so they can observe it.
   [except] skips a doorbell whose mutex the caller already holds. *)
let declare ?except fab e =
  ignore (Atomic.compare_and_set fab.failure None (Some e));
  Array.iteri (fun d _ -> if except <> Some d then ring fab d) fab.bells

let failed fab = Atomic.get fab.failure <> None

let describe fab =
  let buf = Buffer.create 128 in
  Array.iter
    (fun st ->
      let state =
        match st.park with
        | Finished -> None
        | Ready _ -> Some "not started"
        | Running -> Some "running"
        | Waiting (w, dl, _) ->
            Some
              (Printf.sprintf "recv(src=%s, tag=%s%s)"
                 (match w.want_src with None -> "any" | Some s -> string_of_int s)
                 (match w.want_tag with None -> "any" | Some t -> string_of_int t)
                 (match dl with None -> "" | Some d -> Printf.sprintf ", deadline=%.3f" d))
      in
      match state with
      | None -> ()
      | Some s ->
          Buffer.add_string buf
            (Printf.sprintf "p%d: %s, %d pending; " st.rk s (List.length st.pending)))
    fab.ranks;
  "no runnable processor: " ^ Buffer.contents buf

(* ------------------------------------------------------- program-side engine *)

let now fab = Obs.Clock.ns_to_s (Obs.Clock.ns_since fab.t0)

let send fab st ~dest ~tag v =
  if dest < 0 || dest >= fab.procs then
    invalid_arg (Printf.sprintf "Multicore.send: rank %d out of range [0,%d)" dest fab.procs);
  if dest = st.rk then invalid_arg "Multicore.send: self-send is not supported (use a local value)";
  st.sent <- st.sent + 1;
  Obs.Counter.incr obs_sends;
  if fab.ranks.(dest).crashed then
    (* fail-stop: traffic to a dead rank is lost, not queued (keeping
       [in_flight] exact so quiescence detection stays sound) *)
    ()
  else begin
    Atomic.incr fab.in_flight;
    Runtime.Mpmc_queue.push fab.ranks.(dest).mailbox
      { pkt_src = st.rk; pkt_tag = tag; payload = Obj.repr v };
    ring fab (dest mod fab.ndomains)
  end

(* Tag reserved for [sleep]: no sender ever uses it, so a wait on it can
   only end by deadline expiry. *)
let sleep_tag = min_int

let timeout_exn st w =
  Fault.Timeout
    (Printf.sprintf "p%d: recv(src=%s, tag=%s) deadline elapsed" st.rk
       (match w.want_src with None -> "any" | Some s -> string_of_int s)
       (match w.want_tag with None -> "any" | Some t -> string_of_int t))

let recv_packet fab st w deadline =
  match take_pending st w with
  | Some pkt -> pkt
  | None -> (
      drain fab st;
      match take_pending st w with
      | Some pkt -> pkt
      | None -> (
          match deadline with
          | Some d when now fab >= d -> raise (timeout_exn st w)
          | _ ->
              Obs.Counter.incr obs_parks;
              Effect.perform (E_wait (w, deadline))))

let deadline_of fab name = function
  | None -> None
  | Some timeout ->
      if timeout < 0.0 then invalid_arg (Printf.sprintf "Multicore.%s: negative timeout" name);
      Some (now fab +. timeout)

let engine fab st : Engine.t =
  {
    Engine.rank = st.rk;
    size = fab.procs;
    cost = fab.cost;
    topology = fab.topology;
    real_time = true;
    send = (fun ~dest ~tag v -> send fab st ~dest ~tag v);
    recv =
      (fun ?timeout ~src ~tag () ->
        if src < 0 || src >= fab.procs then
          invalid_arg (Printf.sprintf "Multicore.recv: rank %d out of range [0,%d)" src fab.procs);
        let deadline = deadline_of fab "recv" timeout in
        let pkt = recv_packet fab st { want_src = Some src; want_tag = Some tag } deadline in
        st.received <- st.received + 1;
        Obs.Counter.incr obs_recvs;
        Obj.obj pkt.payload);
    recv_any =
      (fun ?timeout ?tag () ->
        let deadline = deadline_of fab "recv_any" timeout in
        let pkt = recv_packet fab st { want_src = None; want_tag = tag } deadline in
        st.received <- st.received + 1;
        Obs.Counter.incr obs_recvs;
        (pkt.pkt_src, Obj.obj pkt.payload));
    work = (fun d -> if d < 0.0 then invalid_arg "Multicore.work: negative duration");
    sleep =
      (fun d ->
        if d < 0.0 then invalid_arg "Multicore.sleep: negative duration";
        (* A plain [Unix.sleepf] would stall every rank multiplexed on this
           domain. Park through the deadline machinery instead: wait on a
           tag no message can carry, and swallow the inevitable expiry —
           other fibers keep running, and a deadline-parked rank never
           counts towards quiescence. *)
        if d > 0.0 then
          try
            ignore
              (recv_packet fab st
                 { want_src = None; want_tag = Some sleep_tag }
                 (Some (now fab +. d)))
          with Fault.Timeout _ -> ());
    time = (fun () -> now fab);
    note = (fun _ -> ());
  }

(* -------------------------------------------------------- per-domain scheduler *)

let handler fab st : (unit, unit) Effect.Deep.handler =
  {
    Effect.Deep.retc = (fun () -> st.park <- Finished);
    exnc =
      (fun e ->
        match e with
        | Fault.Crashed _ ->
            (* fail-stop: this rank ends here without failing the run; its
               pending traffic is discarded and future senders drop *)
            st.crashed <- true;
            st.park <- Finished;
            st.pending <- [];
            drain fab st;
            st.pending <- []
        | e ->
            st.park <- Finished;
            declare fab e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | E_wait (w, dl) ->
            Some (fun (k : (a, unit) Effect.Deep.continuation) -> st.park <- Waiting (w, dl, k))
        | _ -> None);
  }

let run_rank fab st =
  match st.park with
  | Ready thunk ->
      st.park <- Running;
      Effect.Deep.match_with thunk () (handler fab st)
  | Waiting (w, dl, k) -> (
      match take_pending st w with
      | Some pkt ->
          st.park <- Running;
          (* receive counters are bumped by the engine-side [recv] wrapper
             when [recv_packet] returns into the resumed fiber *)
          Effect.Deep.continue k pkt
      | None -> (
          (* runnable without a matching packet only because the deadline
             elapsed; delivery always wins when both are possible *)
          match dl with
          | Some d when now fab >= d ->
              st.park <- Running;
              Effect.Deep.discontinue k (timeout_exn st w)
          | _ -> assert false))
  | Running | Finished -> assert false

let domain_main fab d (my : rstate array) =
  Obs.Counter.incr obs_barrier_waits;
  Runtime.Barrier.await fab.start;
  let bell = fab.bells.(d) in
  let backoff = Runtime.Backoff.create () in
  let find_runnable () =
    let found = ref None in
    let n = Array.length my in
    let i = ref 0 in
    while Option.is_none !found && !i < n do
      let st = my.(!i) in
      (match st.park with
      | Ready _ -> found := Some st
      | Waiting (w, dl, _) ->
          drain fab st;
          if List.exists (matches w) st.pending then found := Some st
          else (
            match dl with
            | Some d when now fab >= d -> found := Some st
            | _ -> ())
      | Finished ->
          (* a crashed rank keeps absorbing (and discarding) traffic so the
             in-flight count cannot wedge quiescence detection *)
          if st.crashed then begin
            drain fab st;
            st.pending <- []
          end
      | Running -> assert false);
      incr i
    done;
    !found
  in
  (* Earliest receive deadline among my parked ranks, if any: while one is
     pending this domain must poll rather than sleep indefinitely on its
     doorbell — a timeout needs no sender to ring us awake. *)
  let nearest_deadline () =
    Array.fold_left
      (fun acc st ->
        match st.park with
        | Waiting (_, Some d, _) -> (
            match acc with Some d0 when d0 <= d -> acc | _ -> Some d)
        | _ -> acc)
      None my
  in
  let all_finished () =
    Array.for_all (fun st -> match st.park with Finished -> true | _ -> false) my
  in
  (* Spin-then-sleep.  The ring counter is read BEFORE the final sweep: a
     sender always pushes first and rings second, so if a packet arrived
     after our sweep, [rings] has moved past [seen] and the sleep loop
     falls through — no lost wakeup. *)
  let wait_for_mail () =
    let spins = ref 0 in
    Runtime.Backoff.reset backoff;
    let rec wait () =
      let seen = Atomic.get bell.rings in
      match find_runnable () with
      | Some _ -> ()
      | None ->
          if failed fab || all_finished () then ()
          else if !spins < 16 then begin
            incr spins;
            Runtime.Backoff.once backoff;
            wait ()
          end
          else if nearest_deadline () <> None then begin
            (* poll: never park in Condition.wait while a deadline is
               pending (and never count as a sleeper — a polling domain
               still makes progress, so quiescence must not fire) *)
            (match nearest_deadline () with
            | Some d ->
                let remaining = d -. now fab in
                if remaining > 0.0 then Unix.sleepf (Float.min remaining 2e-4)
            | None -> ());
            wait ()
          end
          else begin
            Atomic.incr fab.sleep_count;
            Obs.Counter.incr obs_sleeps;
            Mutex.lock bell.mu;
            while Atomic.get bell.rings = seen && not (failed fab) do
              let s = 1 + Atomic.fetch_and_add fab.sleepers 1 in
              if s >= Atomic.get fab.active_domains && Atomic.get fab.in_flight = 0 then begin
                ignore (Atomic.fetch_and_add fab.sleepers (-1));
                (* quiescent: every live domain asleep, mailboxes empty *)
                declare ~except:d fab (Deadlock (describe fab))
              end
              else begin
                Condition.wait bell.cond bell.mu;
                ignore (Atomic.fetch_and_add fab.sleepers (-1))
              end
            done;
            Mutex.unlock bell.mu;
            spins := 0;
            wait ()
          end
    in
    wait ()
  in
  let rec loop () =
    if failed fab then ()
    else
      match find_runnable () with
      | Some st ->
          run_rank fab st;
          loop ()
      | None -> if all_finished () then () else begin wait_for_mail (); loop () end
  in
  (try loop () with e -> declare fab e);
  (* Exit: absorb any last-gasp traffic to crashed ranks we own, then — if
     everyone still alive is already asleep with nothing in flight — nobody
     is left to ring their doorbells. *)
  Array.iter
    (fun st ->
      if st.crashed then begin
        drain fab st;
        st.pending <- []
      end)
    my;
  let remaining = Atomic.fetch_and_add fab.active_domains (-1) - 1 in
  if
    (not (failed fab))
    && remaining > 0
    && Atomic.get fab.sleepers >= remaining
    && Atomic.get fab.in_flight = 0
  then declare fab (Deadlock (describe fab))

(* ------------------------------------------------------------------- runners *)

let default_domains procs = max 1 (min procs (Domain.recommended_domain_count ()))
let default_topology procs = if Topology.is_power_of_two procs then Topology.Hypercube else Topology.Complete

let run_each ?domains ?(cost = Cost_model.ap1000) ?topology ~procs
    (program : int -> Engine.t -> unit) : stats =
  if procs <= 0 then invalid_arg "Multicore.run_each: procs must be positive";
  let ndomains =
    match domains with
    | None -> default_domains procs
    | Some d ->
        if d <= 0 then invalid_arg "Multicore.run_each: domains must be positive";
        min d procs
  in
  let topology = match topology with Some t -> t | None -> default_topology procs in
  Topology.validate topology ~procs;
  Obs.Span.timed obs_run_span (fun () ->
      let fab =
        {
          procs;
          ndomains;
          cost;
          topology;
          ranks =
            Array.init procs (fun rk ->
                {
                  rk;
                  mailbox = Runtime.Mpmc_queue.create ();
                  pending = [];
                  park = Finished;
                  crashed = false;
                  sent = 0;
                  received = 0;
                });
          bells =
            Array.init ndomains (fun _ ->
                { mu = Mutex.create (); cond = Condition.create (); rings = Atomic.make 0 });
          in_flight = Atomic.make 0;
          sleepers = Atomic.make 0;
          active_domains = Atomic.make ndomains;
          sleep_count = Atomic.make 0;
          failure = Atomic.make None;
          start = Runtime.Barrier.create ndomains;
          t0 = Obs.Clock.now_ns ();
        }
      in
      Array.iter
        (fun st -> st.park <- Ready (fun () -> program st.rk (engine fab st)))
        fab.ranks;
      let my_ranks d =
        Array.of_list
          (List.filter (fun st -> st.rk mod ndomains = d) (Array.to_list fab.ranks))
      in
      let doms =
        Array.init ndomains (fun d ->
            let my = my_ranks d in
            Domain.spawn (fun () -> domain_main fab d my))
      in
      Array.iter Domain.join doms;
      (match Atomic.get fab.failure with Some e -> raise e | None -> ());
      (* Undelivered messages after a clean finish indicate a protocol bug
         worth surfacing (same check as the simulator) — except at a
         crashed rank, where lost traffic is the fail-stop contract. *)
      Array.iter
        (fun st ->
          drain fab st;
          match st.pending with
          | [] -> ()
          | _ when st.crashed -> ()
          | pkt :: _ ->
              raise
                (Deadlock
                   (Printf.sprintf
                      "processor %d finished with %d undelivered message(s); first from p%d tag %d"
                      st.rk (List.length st.pending) pkt.pkt_src pkt.pkt_tag)))
        fab.ranks;
      let wall = Obs.Clock.ns_to_s (Obs.Clock.ns_since fab.t0) in
      let stats =
        {
          wall;
          total_msgs = Array.fold_left (fun acc st -> acc + st.sent) 0 fab.ranks;
          total_recvs = Array.fold_left (fun acc st -> acc + st.received) 0 fab.ranks;
          domains_used = ndomains;
          sleeps = Atomic.get fab.sleep_count;
        }
      in
      if Obs.enabled () then begin
        Obs.Counter.incr obs_runs;
        Obs.Histogram.record obs_wall (int_of_float (wall *. 1e6))
      end;
      stats)

let run ?domains ?cost ?topology ~procs program =
  run_each ?domains ?cost ?topology ~procs (fun _rank eng -> program eng)

let run_collect (type a) ?domains ?cost ?topology ~procs (program : Engine.t -> a option) :
    a * stats =
  let result : a option Atomic.t = Atomic.make None in
  let stats =
    run_each ?domains ?cost ?topology ~procs (fun _rank eng ->
        match program eng with Some v -> Atomic.set result (Some v) | None -> ())
  in
  match Atomic.get result with
  | Some v -> (v, stats)
  | None -> invalid_arg "Multicore.run_collect: no processor produced a result"
