(* Multicore execution engine: SPMD programs on real OCaml 5 domains.

   This is the "hand-compile to MPI and run it" half of the paper's story:
   the same [Comm]-level program that the discrete-event simulator prices
   is executed here for real, one virtual processor ("rank") per fiber,
   fibers multiplexed over a fixed set of domains (rank r runs on domain
   r mod D, so a captured continuation is always resumed on the domain
   that captured it).

   Message fabric:
   - one tagged mailbox per rank: a mutex-protected ring of parallel
     (src, tag, payload) arrays.  Per-sender push order is preserved, and
     a consumer drains the whole ring under one lock acquisition;
   - each rank drains its mailbox into a consumer-local pending ring and
     matches (src, tag) against it in arrival order, which yields exactly
     MPI's non-overtaking rule: FIFO per (source, tag);
   - payloads move zero-copy by reference ([Obj.repr]/[Obj.obj] — the same
     contract as the simulator's [~bytes] fast path: the sender must not
     mutate a value after sending it);
   - blocked receives park the fiber with an effect; when every rank on a
     domain is parked the domain spins with [Runtime.Backoff], then sleeps
     on its doorbell (a condvar rung by senders targeting its ranks).

   The send/recv hot paths are allocation-free in steady state: the rings
   are parallel scalar arrays (no per-message packet record, no list cell,
   no [Some] boxing — [Mpmc_queue.try_pop]'s option per poll was measured
   GC pressure), matches are returned through mutable scratch fields on
   the rank state, receive patterns are plain ints with sentinels
   (src = -1 for any; a bool for any-tag; [infinity] for no deadline)
   rather than option values, and ring growth is amortised doubling.  The
   only steady-state allocation left is the effect-handler machinery when
   a fiber actually parks — a receive satisfied from pending or by a
   drain performs no effect and allocates nothing.  [Gc] minor-word
   deltas per domain are surfaced as the [mc.minor_words] counter, and a
   test pins the zero-allocation claim on a 10k-message ping-pong.

   Deadlock is detected by quiescence, mirroring [Sim.Deadlock]: when every
   live domain is asleep and no message is in flight, no future progress is
   possible.  The counters are maintained so that the test is sound:
   [in_flight] is incremented before a packet is pushed and decremented
   after it is drained, so "in_flight = 0 and all domains asleep" proves
   the mailboxes are empty and nobody will ring a doorbell.  The last
   domain to fall asleep performs the check, as does every domain on exit
   (covering the case where the only potential sender finishes). *)

exception Deadlock of string

(* A FIFO ring of messages in parallel scalar arrays.  [pay] is created
   from an immediate, so it is a pointer array (never a float array) and
   generic stores are plain writes.  Capacity is a power of two; growth
   doubles and compacts to head = 0. *)
module Ring = struct
  type t = {
    mutable src : int array;
    mutable tag : int array;
    mutable pay : Obj.t array;
    mutable head : int;  (* position of the oldest entry *)
    mutable count : int;
  }

  let nil = Obj.repr 0

  let create () =
    { src = Array.make 16 0; tag = Array.make 16 0; pay = Array.make 16 nil; head = 0; count = 0 }

  let cap r = Array.length r.src

  let grow r =
    let c = cap r in
    let nsrc = Array.make (2 * c) 0
    and ntag = Array.make (2 * c) 0
    and npay = Array.make (2 * c) nil in
    let m = c - 1 in
    for j = 0 to r.count - 1 do
      let p = (r.head + j) land m in
      nsrc.(j) <- r.src.(p);
      ntag.(j) <- r.tag.(p);
      npay.(j) <- r.pay.(p)
    done;
    r.src <- nsrc;
    r.tag <- ntag;
    r.pay <- npay;
    r.head <- 0

  let push r src tag pay =
    if r.count = cap r then grow r;
    let i = (r.head + r.count) land (cap r - 1) in
    Array.unsafe_set r.src i src;
    Array.unsafe_set r.tag i tag;
    Array.unsafe_set r.pay i pay;
    r.count <- r.count + 1

  (* Drop everything, releasing payload references. *)
  let clear r =
    let m = cap r - 1 in
    for j = 0 to r.count - 1 do
      r.pay.((r.head + j) land m) <- nil
    done;
    r.head <- 0;
    r.count <- 0
end

type park =
  | Ready of (unit -> unit)
  | Running
  | Waiting of (Obj.t, unit) Effect.Deep.continuation
      (* receive pattern and deadline live in the rank-state scratch
         fields below, so parking allocates no [want] record *)
  | Finished

type rstate = {
  rk : int;
  mbox : Ring.t;  (* producers push under [mbox_mu]; consumer drains *)
  mbox_mu : Mutex.t;
  pending : Ring.t;  (* drained, unmatched; arrival order; consumer-local *)
  mutable park : park;
  mutable crashed : bool;  (* fail-stopped via Fault.Crashed *)
  mutable sent : int;  (* single-writer: only this rank's fiber *)
  mutable received : int;
  (* match scratch: [take_pending] returns the matched packet here so the
     hot path allocates no option or tuple *)
  mutable last_src : int;
  mutable last_pay : Obj.t;
  (* parked-receive pattern, valid while [park = Waiting _]: want_src = -1
     means any source; want_any covers any tag; deadline = infinity means
     none (absolute wall-clock seconds since t0 otherwise) *)
  mutable want_src : int;
  mutable want_tag : int;
  mutable want_any : bool;
  mutable deadline : float;
}

type doorbell = { mu : Mutex.t; cond : Condition.t; rings : int Atomic.t }

type fabric = {
  procs : int;
  ndomains : int;
  cost : Cost_model.t;
  topology : Topology.t;
  ranks : rstate array;
  bells : doorbell array;
  in_flight : int Atomic.t;
  sleepers : int Atomic.t;
  active_domains : int Atomic.t;
  sleep_count : int Atomic.t;
  failure : exn option Atomic.t;
  start : Runtime.Barrier.t;
  t0 : int64;
}

type stats = {
  wall : float;  (* seconds, fabric creation to last domain joined *)
  total_msgs : int;
  total_recvs : int;
  domains_used : int;
  sleeps : int;  (* spin-to-sleep transitions across all domains *)
}

type _ Effect.t += E_wait : Obj.t Effect.t

(* ------------------------------------------------------------ observability *)

let obs_runs = Obs.Counter.make "mc.runs"
let obs_sends = Obs.Counter.make "mc.sends"
let obs_recvs = Obs.Counter.make "mc.recvs"
let obs_parks = Obs.Counter.make "mc.parks"
let obs_sleeps = Obs.Counter.make "mc.sleeps"
let obs_barrier_waits = Obs.Counter.make "mc.barrier_waits"

let obs_minor_words = Obs.Counter.make "mc.minor_words"
(* Minor-heap words allocated inside the fabric's domains (per-domain
   [Gc.minor_words] delta, summed).  The allocation-free-hot-path claim is
   observable here: message volume must not move this counter. *)

let obs_wall = Obs.Histogram.make ~unit_:"us" "mc.wall_us"
let obs_run_span = Obs.Span.make "mc.run_wall"

(* ------------------------------------------------------------ message fabric *)

(* Remove the oldest pending packet matching (src, tag, any_tag); the
   result is returned through [st.last_src]/[st.last_pay].  Because the
   pending ring is in mailbox (arrival) order and each sender's pushes are
   ordered, the first match is the oldest from its (source, tag).  The
   usual match is at the head, so the gap-closing shift is almost always
   empty; either way it blits in place and allocates nothing. *)
let take_pending st ~src ~tag ~any_tag =
  let r = st.pending in
  let m = Ring.cap r - 1 in
  let n = r.Ring.count in
  let found = ref (-1) in
  let j = ref 0 in
  while !found < 0 && !j < n do
    let p = (r.Ring.head + !j) land m in
    if
      (src = -1 || Array.unsafe_get r.Ring.src p = src)
      && (any_tag || Array.unsafe_get r.Ring.tag p = tag)
    then found := !j
    else incr j
  done;
  if !found < 0 then false
  else begin
    let p = (r.Ring.head + !found) land m in
    st.last_src <- r.Ring.src.(p);
    st.last_pay <- r.Ring.pay.(p);
    let k = ref !found in
    while !k > 0 do
      let dst = (r.Ring.head + !k) land m and sp = (r.Ring.head + !k - 1) land m in
      r.Ring.src.(dst) <- r.Ring.src.(sp);
      r.Ring.tag.(dst) <- r.Ring.tag.(sp);
      r.Ring.pay.(dst) <- r.Ring.pay.(sp);
      decr k
    done;
    r.Ring.pay.(r.Ring.head) <- Ring.nil;
    r.Ring.head <- (r.Ring.head + 1) land m;
    r.Ring.count <- n - 1;
    true
  end

let exists_pending st ~src ~tag ~any_tag =
  let r = st.pending in
  let m = Ring.cap r - 1 in
  let n = r.Ring.count in
  let found = ref false in
  let j = ref 0 in
  while (not !found) && !j < n do
    let p = (r.Ring.head + !j) land m in
    if
      (src = -1 || Array.unsafe_get r.Ring.src p = src)
      && (any_tag || Array.unsafe_get r.Ring.tag p = tag)
    then found := true
    else incr j
  done;
  !found

(* Move the whole mailbox into the pending ring under one lock acquisition
   (batched: senders pay one lock per message, the consumer one per
   drain). *)
let drain fab st =
  Mutex.lock st.mbox_mu;
  let b = st.mbox in
  let n = b.Ring.count in
  if n > 0 then begin
    let m = Ring.cap b - 1 in
    for j = 0 to n - 1 do
      let p = (b.Ring.head + j) land m in
      Ring.push st.pending b.Ring.src.(p) b.Ring.tag.(p) b.Ring.pay.(p);
      b.Ring.pay.(p) <- Ring.nil
    done;
    b.Ring.head <- 0;
    b.Ring.count <- 0
  end;
  Mutex.unlock st.mbox_mu;
  if n > 0 then ignore (Atomic.fetch_and_add fab.in_flight (-n))

let ring fab dom =
  let b = fab.bells.(dom) in
  Mutex.lock b.mu;
  Atomic.incr b.rings;
  Condition.broadcast b.cond;
  Mutex.unlock b.mu

(* First failure wins; everyone else is woken so they can observe it.
   [except] skips a doorbell whose mutex the caller already holds. *)
let declare ?except fab e =
  ignore (Atomic.compare_and_set fab.failure None (Some e));
  Array.iteri (fun d _ -> if except <> Some d then ring fab d) fab.bells

let failed fab = Atomic.get fab.failure <> None

let describe fab =
  let buf = Buffer.create 128 in
  Array.iter
    (fun st ->
      let state =
        match st.park with
        | Finished -> None
        | Ready _ -> Some "not started"
        | Running -> Some "running"
        | Waiting _ ->
            Some
              (Printf.sprintf "recv(src=%s, tag=%s%s)"
                 (if st.want_src < 0 then "any" else string_of_int st.want_src)
                 (if st.want_any then "any" else string_of_int st.want_tag)
                 (if st.deadline < Float.infinity then
                    Printf.sprintf ", deadline=%.3f" st.deadline
                  else ""))
      in
      match state with
      | None -> ()
      | Some s ->
          Buffer.add_string buf
            (Printf.sprintf "p%d: %s, %d pending; " st.rk s st.pending.Ring.count))
    fab.ranks;
  "no runnable processor: " ^ Buffer.contents buf

(* ------------------------------------------------------- program-side engine *)

let now fab = Obs.Clock.ns_to_s (Obs.Clock.ns_since fab.t0)

let send fab st ~dest ~tag v =
  if dest < 0 || dest >= fab.procs then
    invalid_arg (Printf.sprintf "Multicore.send: rank %d out of range [0,%d)" dest fab.procs);
  if dest = st.rk then invalid_arg "Multicore.send: self-send is not supported (use a local value)";
  st.sent <- st.sent + 1;
  Obs.Counter.incr obs_sends;
  if fab.ranks.(dest).crashed then
    (* fail-stop: traffic to a dead rank is lost, not queued (keeping
       [in_flight] exact so quiescence detection stays sound) *)
    ()
  else begin
    Atomic.incr fab.in_flight;
    let d = fab.ranks.(dest) in
    Mutex.lock d.mbox_mu;
    Ring.push d.mbox st.rk tag (Obj.repr v);
    Mutex.unlock d.mbox_mu;
    ring fab (dest mod fab.ndomains)
  end

(* Tag reserved for [sleep]: no sender ever uses it, so a wait on it can
   only end by deadline expiry. *)
let sleep_tag = min_int

let timeout_exn st ~src ~any_tag ~tag =
  Fault.Timeout
    (Printf.sprintf "p%d: recv(src=%s, tag=%s) deadline elapsed" st.rk
       (if src < 0 then "any" else string_of_int src)
       (if any_tag then "any" else string_of_int tag))

let recv_packet fab st ~src ~tag ~any_tag ~deadline : Obj.t =
  if take_pending st ~src ~tag ~any_tag then st.last_pay
  else begin
    drain fab st;
    if take_pending st ~src ~tag ~any_tag then st.last_pay
    else if deadline < Float.infinity && now fab >= deadline then
      raise (timeout_exn st ~src ~any_tag ~tag)
    else begin
      Obs.Counter.incr obs_parks;
      st.want_src <- src;
      st.want_tag <- tag;
      st.want_any <- any_tag;
      st.deadline <- deadline;
      Effect.perform E_wait
    end
  end

(* No deadline is [infinity] (a static constant, not an option — the
   common no-timeout receive allocates nothing here). *)
let deadline_of fab name timeout =
  match timeout with
  | None -> Float.infinity
  | Some timeout ->
      if timeout < 0.0 then invalid_arg (Printf.sprintf "Multicore.%s: negative timeout" name);
      now fab +. timeout

let engine fab st : Engine.t =
  {
    Engine.rank = st.rk;
    size = fab.procs;
    cost = fab.cost;
    topology = fab.topology;
    real_time = true;
    send = (fun ~dest ~tag v -> send fab st ~dest ~tag v);
    recv =
      (fun ?timeout ~src ~tag () ->
        if src < 0 || src >= fab.procs then
          invalid_arg (Printf.sprintf "Multicore.recv: rank %d out of range [0,%d)" src fab.procs);
        let deadline = deadline_of fab "recv" timeout in
        let pay = recv_packet fab st ~src ~tag ~any_tag:false ~deadline in
        st.received <- st.received + 1;
        Obs.Counter.incr obs_recvs;
        Obj.obj pay);
    recv_any =
      (fun ?timeout ?tag () ->
        let deadline = deadline_of fab "recv_any" timeout in
        let tag', any_tag = match tag with None -> (0, true) | Some t -> (t, false) in
        let pay = recv_packet fab st ~src:(-1) ~tag:tag' ~any_tag ~deadline in
        st.received <- st.received + 1;
        Obs.Counter.incr obs_recvs;
        (st.last_src, Obj.obj pay));
    send_slice =
      (fun ~dest ~tag s ->
        (* the window travels by reference through shared memory — zero
           copy, no serialisation; one message whatever the length *)
        send fab st ~dest ~tag s);
    recv_slice =
      (fun ?timeout ~src ~tag () ->
        if src < 0 || src >= fab.procs then
          invalid_arg
            (Printf.sprintf "Multicore.recv_slice: rank %d out of range [0,%d)" src fab.procs);
        let deadline = deadline_of fab "recv_slice" timeout in
        let pay = recv_packet fab st ~src ~tag ~any_tag:false ~deadline in
        st.received <- st.received + 1;
        Obs.Counter.incr obs_recvs;
        (Obj.obj pay : Engine.slice));
    work = (fun d -> if d < 0.0 then invalid_arg "Multicore.work: negative duration");
    sleep =
      (fun d ->
        if d < 0.0 then invalid_arg "Multicore.sleep: negative duration";
        (* A plain [Unix.sleepf] would stall every rank multiplexed on this
           domain. Park through the deadline machinery instead: wait on a
           tag no message can carry, and swallow the inevitable expiry —
           other fibers keep running, and a deadline-parked rank never
           counts towards quiescence. *)
        if d > 0.0 then
          try
            ignore
              (recv_packet fab st ~src:(-1) ~tag:sleep_tag ~any_tag:false
                 ~deadline:(now fab +. d))
          with Fault.Timeout _ -> ());
    time = (fun () -> now fab);
    note = (fun _ -> ());
  }

(* -------------------------------------------------------- per-domain scheduler *)

let handler fab st : (unit, unit) Effect.Deep.handler =
  {
    Effect.Deep.retc = (fun () -> st.park <- Finished);
    exnc =
      (fun e ->
        match e with
        | Fault.Crashed _ ->
            (* fail-stop: this rank ends here without failing the run; its
               pending traffic is discarded and future senders drop *)
            st.crashed <- true;
            st.park <- Finished;
            Ring.clear st.pending;
            drain fab st;
            Ring.clear st.pending
        | e ->
            st.park <- Finished;
            declare fab e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | E_wait -> Some (fun (k : (a, unit) Effect.Deep.continuation) -> st.park <- Waiting k)
        | _ -> None);
  }

let run_rank fab st =
  match st.park with
  | Ready thunk ->
      st.park <- Running;
      Effect.Deep.match_with thunk () (handler fab st)
  | Waiting k ->
      if take_pending st ~src:st.want_src ~tag:st.want_tag ~any_tag:st.want_any then begin
        st.park <- Running;
        (* receive counters are bumped by the engine-side [recv] wrapper
           when [recv_packet] returns into the resumed fiber *)
        Effect.Deep.continue k st.last_pay
      end
      else if st.deadline < Float.infinity && now fab >= st.deadline then begin
        (* runnable without a matching packet only because the deadline
           elapsed; delivery always wins when both are possible *)
        st.park <- Running;
        Effect.Deep.discontinue k
          (timeout_exn st ~src:st.want_src ~any_tag:st.want_any ~tag:st.want_tag)
      end
      else assert false
  | Running | Finished -> assert false

let domain_main fab d (my : rstate array) =
  Obs.Counter.incr obs_barrier_waits;
  Runtime.Barrier.await fab.start;
  let mw0 = Gc.minor_words () in
  let bell = fab.bells.(d) in
  let backoff = Runtime.Backoff.create () in
  (* Index of a runnable rank among [my], or -1 — no option boxing in the
     scheduling sweep. *)
  let find_runnable () =
    let n = Array.length my in
    let found = ref (-1) in
    let i = ref 0 in
    while !found < 0 && !i < n do
      let st = my.(!i) in
      (match st.park with
      | Ready _ -> found := !i
      | Waiting _ ->
          drain fab st;
          if exists_pending st ~src:st.want_src ~tag:st.want_tag ~any_tag:st.want_any then
            found := !i
          else if st.deadline < Float.infinity && now fab >= st.deadline then found := !i
      | Finished ->
          (* a crashed rank keeps absorbing (and discarding) traffic so the
             in-flight count cannot wedge quiescence detection *)
          if st.crashed then begin
            drain fab st;
            Ring.clear st.pending
          end
      | Running -> assert false);
      incr i
    done;
    !found
  in
  (* Earliest receive deadline among my parked ranks ([infinity] if none):
     while one is pending this domain must poll rather than sleep
     indefinitely on its doorbell — a timeout needs no sender to ring us
     awake. *)
  let nearest_deadline () =
    let d = ref Float.infinity in
    Array.iter
      (fun st ->
        match st.park with
        | Waiting _ -> if st.deadline < !d then d := st.deadline
        | _ -> ())
      my;
    !d
  in
  let all_finished () =
    Array.for_all (fun st -> match st.park with Finished -> true | _ -> false) my
  in
  (* Spin-then-sleep.  The ring counter is read BEFORE the final sweep: a
     sender always pushes first and rings second, so if a packet arrived
     after our sweep, [rings] has moved past [seen] and the sleep loop
     falls through — no lost wakeup. *)
  let wait_for_mail () =
    let spins = ref 0 in
    Runtime.Backoff.reset backoff;
    let rec wait () =
      let seen = Atomic.get bell.rings in
      if find_runnable () >= 0 then ()
      else if failed fab || all_finished () then ()
      else if !spins < 16 then begin
        incr spins;
        Runtime.Backoff.once backoff;
        wait ()
      end
      else begin
        let dl = nearest_deadline () in
        if dl < Float.infinity then begin
          (* poll: never park in Condition.wait while a deadline is
             pending (and never count as a sleeper — a polling domain
             still makes progress, so quiescence must not fire) *)
          let remaining = dl -. now fab in
          if remaining > 0.0 then Unix.sleepf (Float.min remaining 2e-4);
          wait ()
        end
        else begin
          Atomic.incr fab.sleep_count;
          Obs.Counter.incr obs_sleeps;
          Mutex.lock bell.mu;
          while Atomic.get bell.rings = seen && not (failed fab) do
            let s = 1 + Atomic.fetch_and_add fab.sleepers 1 in
            if s >= Atomic.get fab.active_domains && Atomic.get fab.in_flight = 0 then begin
              ignore (Atomic.fetch_and_add fab.sleepers (-1));
              (* quiescent: every live domain asleep, mailboxes empty *)
              declare ~except:d fab (Deadlock (describe fab))
            end
            else begin
              Condition.wait bell.cond bell.mu;
              ignore (Atomic.fetch_and_add fab.sleepers (-1))
            end
          done;
          Mutex.unlock bell.mu;
          spins := 0;
          wait ()
        end
      end
    in
    wait ()
  in
  let rec loop () =
    if failed fab then ()
    else begin
      let i = find_runnable () in
      if i >= 0 then begin
        run_rank fab my.(i);
        loop ()
      end
      else if all_finished () then ()
      else begin
        wait_for_mail ();
        loop ()
      end
    end
  in
  (try loop () with e -> declare fab e);
  Obs.Counter.add obs_minor_words (int_of_float (Gc.minor_words () -. mw0));
  (* Exit: absorb any last-gasp traffic to crashed ranks we own, then — if
     everyone still alive is already asleep with nothing in flight — nobody
     is left to ring their doorbells. *)
  Array.iter
    (fun st ->
      if st.crashed then begin
        drain fab st;
        Ring.clear st.pending
      end)
    my;
  let remaining = Atomic.fetch_and_add fab.active_domains (-1) - 1 in
  if
    (not (failed fab))
    && remaining > 0
    && Atomic.get fab.sleepers >= remaining
    && Atomic.get fab.in_flight = 0
  then declare fab (Deadlock (describe fab))

(* ------------------------------------------------------------------- runners *)

let default_domains procs = max 1 (min procs (Domain.recommended_domain_count ()))
let default_topology procs = if Topology.is_power_of_two procs then Topology.Hypercube else Topology.Complete

let run_each ?domains ?(cost = Cost_model.ap1000) ?topology ~procs
    (program : int -> Engine.t -> unit) : stats =
  if procs <= 0 then invalid_arg "Multicore.run_each: procs must be positive";
  let ndomains =
    match domains with
    | None -> default_domains procs
    | Some d ->
        if d <= 0 then invalid_arg "Multicore.run_each: domains must be positive";
        min d procs
  in
  let topology = match topology with Some t -> t | None -> default_topology procs in
  Topology.validate topology ~procs;
  Obs.Span.timed obs_run_span (fun () ->
      let fab =
        {
          procs;
          ndomains;
          cost;
          topology;
          ranks =
            Array.init procs (fun rk ->
                {
                  rk;
                  mbox = Ring.create ();
                  mbox_mu = Mutex.create ();
                  pending = Ring.create ();
                  park = Finished;
                  crashed = false;
                  sent = 0;
                  received = 0;
                  last_src = -1;
                  last_pay = Ring.nil;
                  want_src = -1;
                  want_tag = 0;
                  want_any = true;
                  deadline = Float.infinity;
                })
          |> Fun.id;
          bells =
            Array.init ndomains (fun _ ->
                { mu = Mutex.create (); cond = Condition.create (); rings = Atomic.make 0 });
          in_flight = Atomic.make 0;
          sleepers = Atomic.make 0;
          active_domains = Atomic.make ndomains;
          sleep_count = Atomic.make 0;
          failure = Atomic.make None;
          start = Runtime.Barrier.create ndomains;
          t0 = Obs.Clock.now_ns ();
        }
      in
      Array.iter
        (fun st -> st.park <- Ready (fun () -> program st.rk (engine fab st)))
        fab.ranks;
      let my_ranks d =
        Array.of_list
          (List.filter (fun st -> st.rk mod ndomains = d) (Array.to_list fab.ranks))
      in
      let doms =
        Array.init ndomains (fun d ->
            let my = my_ranks d in
            Domain.spawn (fun () -> domain_main fab d my))
      in
      Array.iter Domain.join doms;
      (match Atomic.get fab.failure with Some e -> raise e | None -> ());
      (* Undelivered messages after a clean finish indicate a protocol bug
         worth surfacing (same check as the simulator) — except at a
         crashed rank, where lost traffic is the fail-stop contract. *)
      Array.iter
        (fun st ->
          drain fab st;
          let left = st.pending.Ring.count in
          if left > 0 && not st.crashed then begin
            let h = st.pending.Ring.head in
            raise
              (Deadlock
                 (Printf.sprintf
                    "processor %d finished with %d undelivered message(s); first from p%d tag %d"
                    st.rk left
                    st.pending.Ring.src.(h)
                    st.pending.Ring.tag.(h)))
          end)
        fab.ranks;
      let wall = Obs.Clock.ns_to_s (Obs.Clock.ns_since fab.t0) in
      let stats =
        {
          wall;
          total_msgs = Array.fold_left (fun acc st -> acc + st.sent) 0 fab.ranks;
          total_recvs = Array.fold_left (fun acc st -> acc + st.received) 0 fab.ranks;
          domains_used = ndomains;
          sleeps = Atomic.get fab.sleep_count;
        }
      in
      if Obs.enabled () then begin
        Obs.Counter.incr obs_runs;
        Obs.Histogram.record obs_wall (int_of_float (wall *. 1e6))
      end;
      stats)

let run ?domains ?cost ?topology ~procs program =
  run_each ?domains ?cost ?topology ~procs (fun _rank eng -> program eng)

let run_collect (type a) ?domains ?cost ?topology ~procs (program : Engine.t -> a option) :
    a * stats =
  let result : a option Atomic.t = Atomic.make None in
  let stats =
    run_each ?domains ?cost ?topology ~procs (fun _rank eng ->
        match program eng with Some v -> Atomic.set result (Some v) | None -> ())
  in
  match Atomic.get result with
  | Some v -> (v, stats)
  | None -> invalid_arg "Multicore.run_collect: no processor produced a result"
