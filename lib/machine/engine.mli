(** Execution-engine vtable: the primitives an SPMD program (and the
    [Comm] collectives) may use, abstracted over the execution medium.

    Two instances exist: {!of_sim} (discrete-event simulator, [work]
    charges simulated time) and [Multicore.engine] (one OCaml domain per
    hardware core, zero-copy shared-memory messaging, [work] is a no-op).
    Programs written against [Comm.t] run unchanged on both. *)

type slice = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The typed bulk-payload tier: an unboxed float window (C-layout
    [Bigarray.Array1]). One {!t.send_slice} is always exactly one message,
    whatever the length — the contract message coalescing builds on. *)

type t = {
  rank : int;  (** this virtual processor's machine-global rank *)
  size : int;  (** total number of virtual processors *)
  cost : Cost_model.t;  (** machine calibration (meaningful on the simulator) *)
  topology : Topology.t;
  real_time : bool;
      (** [true] when [work]/[time] are wall-clock (multicore engine),
          [false] when simulated. Chaos uses this to pick how a straggler
          stall is charged. *)
  send : 'a. dest:int -> tag:int -> 'a -> unit;
      (** Asynchronous tagged send; never blocks. *)
  recv : 'a. ?timeout:float -> src:int -> tag:int -> unit -> 'a;
      (** Blocking receive; FIFO per (source, tag). The result type is fixed
          by the caller: sender and receiver must agree (same discipline as
          [Sim.recv]). With [?timeout] (engine-clock seconds), raises
          {!Fault.Timeout} if no matching message is available in time. *)
  recv_any : 'a. ?timeout:float -> ?tag:int -> unit -> int * 'a;
      (** Blocking receive from any source; returns (source rank, value).
          Deterministic only on the simulator. [?timeout] as in [recv]. *)
  send_slice : dest:int -> tag:int -> slice -> unit;
      (** Typed bulk send: one message carrying an unboxed float window.
          The multicore engine passes the window zero-copy through shared
          memory (no serialisation) — the sender must not mutate it until a
          synchronising exchange with the receiver (a collective suffices).
          The simulator prices it as a single message of [8 * length]
          payload bytes (no marshalling framing) and keeps its deep-copy
          value semantics. *)
  recv_slice : ?timeout:float -> src:int -> tag:int -> unit -> slice;
      (** Receive a bulk slice; FIFO per (source, tag) with ordinary sends
          on the same channel. On the multicore engine the result aliases
          the sender's storage — treat it as read-only. *)
  work : float -> unit;  (** Charge compute seconds (no-op on real engines). *)
  sleep : float -> unit;
      (** Idle for [d] engine-clock seconds: the clock advances but no
          compute is charged — simulated [work_times] (and the imbalance
          diagnostics built on them) are untouched; a real sleep on the
          multicore engine. For pacing arrival processes and membership
          away-time in long-lived programs. *)
  time : unit -> float;  (** Engine clock: simulated or wall seconds. *)
  note : string -> unit;  (** Trace annotation (no-op on real engines). *)
}

val work_flops : t -> int -> unit
(** [work_flops t n] charges [n] floating-point operations via the engine's
    cost model. *)

val of_sim : Sim.ctx -> t
(** The simulator engine: primitives delegate to [Sim] and charge
    simulated time. *)
