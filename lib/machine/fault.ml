(* Typed fault exceptions shared by both execution engines.

   The taxonomy matters (see DESIGN.md, "Timeout vs Deadlock"):

   - [Timeout] is a *local, recoverable* condition: one receive's deadline
     elapsed before a matching message was available.  The receiver's
     program observes it at the [recv] call site and can retry, re-dispatch
     or give up — the rest of the machine keeps running.

   - [Deadlock] (each engine's own exception) is a *global, fatal*
     condition: the engine has proved no processor can ever make progress.
     It aborts the whole run.

   - [Crashed] models a fail-stop processor: raising it inside a rank's
     program (the only sanctioned use is [Chaos]'s scheduled crashes)
     terminates that rank silently — no result, no further sends, messages
     already addressed to it left undelivered — while the survivors keep
     running.  Recovery is the *protocol's* job (e.g. the dynamic farm's
     job reassignment), which is exactly the paper's stance that the
     coordination layer, not the user's computation, owns such concerns. *)

exception Timeout of string
(* A [recv ~timeout] deadline elapsed with no matching message. *)

exception Crashed of int
(* Fail-stop: the given rank stops executing at the raise point. *)

exception Unserializable of string
(* A payload crossed a process boundary that [Marshal] cannot ship
   (closure, custom block without serializers).  Raised at the *send*
   call site by engines whose ranks do not share a heap, so the
   programming error surfaces where it was made instead of as a raw
   [Marshal] exception mid-protocol on some other rank. *)

let () =
  Printexc.register_printer (function
    | Timeout msg -> Some (Printf.sprintf "Machine.Fault.Timeout(%s)" msg)
    | Crashed rank -> Some (Printf.sprintf "Machine.Fault.Crashed(rank %d)" rank)
    | Unserializable msg -> Some (Printf.sprintf "Machine.Fault.Unserializable(%s)" msg)
    | _ -> None)
