(* Event trace of a simulation run, for debugging and for regenerating the
   paper's Figure-2-style step-by-step illustrations. *)

type kind =
  | Send of { dest : int; tag : int; bytes : int }
  | Recv of { src : int; tag : int; bytes : int }
  | Work of float
  | Barrier_enter
  | Barrier_leave
  | Note of string
  | Finish

type event = { time : float; proc : int; kind : kind }

type t = { mutable events : event list; enabled : bool }

let create () = { events = []; enabled = true }

let disabled () = { events = []; enabled = false }

let record t ~time ~proc kind = if t.enabled then t.events <- { time; proc; kind } :: t.events

let events t =
  List.stable_sort (fun a b -> compare (a.time, a.proc) (b.time, b.proc)) (List.rev t.events)

let length t = List.length t.events

let clear t = t.events <- []

let pp_kind ppf = function
  | Send { dest; tag; bytes } -> Fmt.pf ppf "send -> p%d (tag %d, %d B)" dest tag bytes
  | Recv { src; tag; bytes } -> Fmt.pf ppf "recv <- p%d (tag %d, %d B)" src tag bytes
  | Work d -> Fmt.pf ppf "work %.3g s" d
  | Barrier_enter -> Fmt.pf ppf "barrier enter"
  | Barrier_leave -> Fmt.pf ppf "barrier leave"
  | Note s -> Fmt.pf ppf "note: %s" s
  | Finish -> Fmt.pf ppf "finish"

let pp_event ppf e = Fmt.pf ppf "[%10.6f] p%-3d %a" e.time e.proc pp_kind e.kind

let pp ppf t = Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_event) (events t)

let filter_proc t proc = List.filter (fun e -> e.proc = proc) (events t)

let notes t =
  List.filter_map (fun e -> match e.kind with Note s -> Some (e.time, e.proc, s) | _ -> None) (events t)

(* Chrome trace_event export: load the result into chrome://tracing or
   https://ui.perfetto.dev to see the simulated timeline.  We emit the
   JSON *array* format (valid input for both viewers).  Simulated seconds
   map to microsecond timestamps; each virtual processor becomes a thread
   of one process.  Work intervals are complete events ("ph":"X", stamped
   at interval start with a duration); sends/receives/notes are thread-
   scoped instants; barriers are begin/end pairs. *)
let to_chrome ?(pid = 0) t : Obs.Json.t =
  let open Obs.Json in
  let us x = x *. 1e6 in
  let ev ?(args = []) ?dur ~name ~ph ~ts ~tid () =
    Obj
      ([ ("name", String name); ("ph", String ph); ("ts", Float (us ts)) ]
      @ (match dur with Some d -> [ ("dur", Float (us d)) ] | None -> [])
      @ [ ("pid", Int pid); ("tid", Int tid) ]
      @ (match ph with "i" -> [ ("s", String "t") ] | _ -> [])
      @ match args with [] -> [] | args -> [ ("args", Obj args) ])
  in
  let evs = events t in
  let nprocs = List.fold_left (fun acc e -> max acc (e.proc + 1)) 0 evs in
  let thread_names =
    List.init nprocs (fun p ->
        Obj
          [
            ("name", String "thread_name");
            ("ph", String "M");
            ("pid", Int pid);
            ("tid", Int p);
            ("args", Obj [ ("name", String (Printf.sprintf "p%d" p)) ]);
          ])
  in
  let body =
    List.map
      (fun e ->
        match e.kind with
        | Work d -> ev ~name:"work" ~ph:"X" ~ts:(e.time -. d) ~dur:d ~tid:e.proc ()
        | Send { dest; tag; bytes } ->
            ev ~name:"send" ~ph:"i" ~ts:e.time ~tid:e.proc
              ~args:[ ("dest", Int dest); ("tag", Int tag); ("bytes", Int bytes) ]
              ()
        | Recv { src; tag; bytes } ->
            ev ~name:"recv" ~ph:"i" ~ts:e.time ~tid:e.proc
              ~args:[ ("src", Int src); ("tag", Int tag); ("bytes", Int bytes) ]
              ()
        | Barrier_enter -> ev ~name:"barrier" ~ph:"B" ~ts:e.time ~tid:e.proc ()
        | Barrier_leave -> ev ~name:"barrier" ~ph:"E" ~ts:e.time ~tid:e.proc ()
        | Note s -> ev ~name:s ~ph:"i" ~ts:e.time ~tid:e.proc ()
        | Finish -> ev ~name:"finish" ~ph:"i" ~ts:e.time ~tid:e.proc ())
      evs
  in
  List (thread_names @ body)

let write_chrome ?pid path t = Obs.Json.to_file ~pretty:false path (to_chrome ?pid t)

(* ASCII Gantt chart: one row per processor, time left to right.  Work
   intervals are drawn as '=', sends as '>', receives as '<', barriers as
   '|'; '.' is idle.  Intended for small traces (demos, debugging). *)
let pp_gantt ?(width = 72) ppf t =
  let evs = events t in
  if evs = [] then Fmt.pf ppf "(empty trace)@."
  else begin
    let t_end = List.fold_left (fun acc e -> Float.max acc e.time) 0.0 evs in
    let procs = 1 + List.fold_left (fun acc e -> max acc e.proc) 0 evs in
    let t_end = if t_end <= 0.0 then 1.0 else t_end in
    let col time = min (width - 1) (int_of_float (time /. t_end *. float_of_int (width - 1))) in
    let rows = Array.init procs (fun _ -> Bytes.make width '.') in
    List.iter
      (fun e ->
        let row = rows.(e.proc) in
        match e.kind with
        | Work d ->
            (* the event is stamped at the end of the work interval *)
            let c1 = col e.time and c0 = col (e.time -. d) in
            for c = c0 to c1 do
              Bytes.set row c '='
            done
        | Send _ -> Bytes.set row (col e.time) '>'
        | Recv _ -> Bytes.set row (col e.time) '<'
        | Barrier_enter | Barrier_leave -> Bytes.set row (col e.time) '|'
        | Finish -> Bytes.set row (col e.time) '#'
        | Note _ -> ())
      evs;
    Fmt.pf ppf "@[<v>time 0 %s %.6gs@," (String.make (width - 14) '-') t_end;
    Array.iteri (fun p row -> Fmt.pf ppf "p%-3d %s@," p (Bytes.to_string row)) rows;
    Fmt.pf ppf "     (= work, > send, < recv, | barrier, # finish)@]"
  end
