(* Deterministic, seeded fault injection as an [Engine.t] wrapper.

   The point of the skeleton story is that coordination semantics survive
   the substrate; Chaos lets us *test* that by perturbing the substrate
   while keeping every run replayable from a seed:

   - delay/reorder : a send is held back for a random number of this
     rank's subsequent communication operations, then released.  Holding
     happens on the SENDER side, before the engine sees the message, so
     both engines are perturbed identically and the engines' own FIFO
     machinery is untouched.  Release preserves arrival order per
     (dest, tag) — exactly the per-(src,tag) FIFO relaxation both engines
     document: messages to different destinations or on different tags may
     reorder freely, same-channel messages may not.
   - stalls        : a per-rank straggler tax paid before every
     communication operation via [Engine.sleep] — simulated seconds on
     the simulator (visible in the makespan), a fiber-aware deadline
     park on the real engines (only the straggler's fiber stalls, never
     the whole OS thread it shares with other ranks).
   - crashes       : rank r fail-stops ([Fault.Crashed]) just before its
     n-th communication operation; held sends die with it.

   Determinism: each rank draws from its own [Xoshiro.nth_child seed rank]
   stream, and every decision is a pure function of (spec, rank, this
   rank's own operation count) — never of cross-rank timing.  On the
   simulator the whole perturbed run is therefore reproducible bit-for-bit;
   on the multicore engine the *decisions* are reproducible even though
   real-time interleaving is not.

   Deadlock-freedom: every held send is flushed before this rank blocks in
   a receive and when the wrapper is finalized at program end, so a
   zero-crash schedule can only reorder traffic, never lose it. *)

type spec = {
  seed : int;
  delay_prob : float;  (* probability a send is held back *)
  max_hold : int;  (* max comm ops a held send waits; >= 1 when delaying *)
  stalls : (int * float) list;  (* rank -> straggler seconds per comm op *)
  crashes : (int * int) list;  (* rank -> fail-stop before its n-th comm op (1-based) *)
  crashes_at : (int * float) list;
      (* rank -> fail-stop at the first comm op at-or-after this engine-clock
         time (seconds).  Op-count crashes pin a protocol step; time crashes
         model membership churn in long-lived services, where "worker dies
         two seconds in" is the scenario of interest regardless of how many
         messages it got through first. *)
}

let none =
  { seed = 0; delay_prob = 0.0; max_hold = 0; stalls = []; crashes = []; crashes_at = [] }
let delays ?(seed = 1) ?(prob = 0.25) ?(max_hold = 3) () = { none with seed; delay_prob = prob; max_hold }

type held = {
  h_dest : int;
  h_tag : int;
  h_fire : unit -> unit;  (* the underlying engine send, value captured *)
  mutable h_left : int;  (* comm ops until release *)
}

type state = {
  spec : spec;
  rng : Runtime.Xoshiro.t;
  base : Engine.t;
  my_stall : float;
  crash_at : int option;
  crash_at_time : float option;
  mutable ops : int;  (* this rank's communication-operation count *)
  mutable outbox : held list;  (* held sends, oldest first *)
}

let obs_faults = Obs.Counter.make "chaos.faults_injected"

(* Flush held sends that have served their delay, preserving per-(dest,tag)
   order: a ready entry stays held while an older entry on the same channel
   is still held (releasing it would overtake). *)
let flush_ready st =
  let still_held = Hashtbl.create 4 in
  st.outbox <-
    List.filter
      (fun h ->
        let key = (h.h_dest, h.h_tag) in
        if h.h_left <= 0 && not (Hashtbl.mem still_held key) then begin
          h.h_fire ();
          false
        end
        else begin
          Hashtbl.replace still_held key ();
          true
        end)
      st.outbox

let flush_all st =
  List.iter (fun h -> h.h_fire ()) st.outbox;
  st.outbox <- []

(* Release every held send on [dest]/[tag] (oldest first) so an immediate
   send on that channel cannot overtake them. *)
let flush_channel st dest tag =
  st.outbox <-
    List.filter
      (fun h ->
        if h.h_dest = dest && h.h_tag = tag then begin
          h.h_fire ();
          false
        end
        else true)
      st.outbox

(* One communication operation is about to run on this rank: crash if
   scheduled, charge the straggler tax, age the outbox. *)
let tick st =
  st.ops <- st.ops + 1;
  let fail_stop () =
    Obs.Counter.incr obs_faults;
    st.outbox <- [];  (* fail-stop: held traffic dies with the rank *)
    raise (Fault.Crashed st.base.Engine.rank)
  in
  (match st.crash_at with Some n when st.ops >= n -> fail_stop () | _ -> ());
  (match st.crash_at_time with
  | Some t when st.base.Engine.time () >= t -> fail_stop ()
  | _ -> ());
  if st.my_stall > 0.0 then begin
    Obs.Counter.incr obs_faults;
    (* [Engine.sleep], not [Unix.sleepf]: on the multicore engine several
       rank fibers multiplex one OS thread, and a raw sleepf would stall
       every one of them with the straggler (the hazard Multicore's
       deadline park exists to avoid).  [sleep] parks only this fiber; on
       the simulator it advances the clock, so the stall still shows up
       in the makespan. *)
    st.base.Engine.sleep st.my_stall
  end;
  List.iter (fun h -> h.h_left <- h.h_left - 1) st.outbox;
  flush_ready st

let wrap spec (eng : Engine.t) : Engine.t * state =
  if spec.delay_prob < 0.0 || spec.delay_prob > 1.0 then
    invalid_arg "Chaos.wrap: delay_prob must be in [0,1]";
  if spec.delay_prob > 0.0 && spec.max_hold < 1 then
    invalid_arg "Chaos.wrap: max_hold must be >= 1 when delay_prob > 0";
  List.iter
    (fun (_, s) -> if s < 0.0 then invalid_arg "Chaos.wrap: negative stall")
    spec.stalls;
  List.iter
    (fun (_, n) -> if n < 1 then invalid_arg "Chaos.wrap: crash op index must be >= 1")
    spec.crashes;
  List.iter
    (fun (_, t) -> if t < 0.0 then invalid_arg "Chaos.wrap: crash time must be >= 0")
    spec.crashes_at;
  let rank = eng.Engine.rank in
  let st =
    {
      spec;
      rng = Runtime.Xoshiro.nth_child (Runtime.Xoshiro.of_seed spec.seed) rank;
      base = eng;
      my_stall = (match List.assoc_opt rank spec.stalls with Some s -> s | None -> 0.0);
      crash_at = List.assoc_opt rank spec.crashes;
      crash_at_time = List.assoc_opt rank spec.crashes_at;
      ops = 0;
      outbox = [];
    }
  in
  let wrapped =
    {
      eng with
      Engine.send =
        (fun ~dest ~tag v ->
          tick st;
          let fire () = eng.Engine.send ~dest ~tag v in
          if st.spec.delay_prob > 0.0 && Runtime.Xoshiro.float st.rng 1.0 < st.spec.delay_prob
          then begin
            Obs.Counter.incr obs_faults;
            let hold = 1 + Runtime.Xoshiro.int st.rng st.spec.max_hold in
            st.outbox <- st.outbox @ [ { h_dest = dest; h_tag = tag; h_fire = fire; h_left = hold } ]
          end
          else begin
            flush_channel st dest tag;
            fire ()
          end);
      send_slice =
        (fun ~dest ~tag s ->
          (* bulk sends are one message, so they are held/released exactly
             like ordinary sends — the fault model is per-message, and the
             coalescing invariant (one bulk send = one message) holds under
             perturbation too *)
          tick st;
          let fire () = eng.Engine.send_slice ~dest ~tag s in
          if st.spec.delay_prob > 0.0 && Runtime.Xoshiro.float st.rng 1.0 < st.spec.delay_prob
          then begin
            Obs.Counter.incr obs_faults;
            let hold = 1 + Runtime.Xoshiro.int st.rng st.spec.max_hold in
            st.outbox <- st.outbox @ [ { h_dest = dest; h_tag = tag; h_fire = fire; h_left = hold } ]
          end
          else begin
            flush_channel st dest tag;
            fire ()
          end);
      recv_slice =
        (fun ?timeout ~src ~tag () ->
          tick st;
          flush_all st;
          eng.Engine.recv_slice ?timeout ~src ~tag ());
      recv =
        (fun ?timeout ~src ~tag () ->
          tick st;
          (* blocking with undelivered sends in hand could deadlock the
             peers we owe traffic to — release everything first *)
          flush_all st;
          eng.Engine.recv ?timeout ~src ~tag ());
      recv_any =
        (fun ?timeout ?tag () ->
          tick st;
          flush_all st;
          eng.Engine.recv_any ?timeout ?tag ());
    }
  in
  (wrapped, st)

let finalize st = flush_all st

let run spec (program : Engine.t -> 'a) (eng : Engine.t) : 'a =
  let wrapped, st = wrap spec eng in
  let r = program wrapped in
  (* not reached when the program crashes: held sends are already gone *)
  finalize st;
  r
