(* Multi-process execution engine: ranks are OS processes forked at run
   time, wired pairwise by Unix-domain socketpairs.

   Frame protocol (all integers little-endian):

     +------+----------------+----------------+----------------------+
     | kind | tag  (int64)   | len  (int64)   | payload              |
     | 1 B  | 8 B            | 8 B            | see below            |
     +------+----------------+----------------+----------------------+

     kind 0  marshal   len = payload bytes; payload = [Marshal] image
     kind 1  slice     len = float64 count; payload = 8*len raw bytes
     kind 2  goodbye   len = 0; clean-finish marker, no payload

   The source rank is implicit (one socket per peer), so a frame is
   exactly one message and the per-(src,tag) FIFO contract falls out of
   TCP-like stream ordering: same-channel messages share a socket and a
   parse order.  [send_slice] writes the raw float image — no
   marshalling framing — so one bulk send stays one frame, the
   coalescing invariant the flat tier builds on.

   Sends never block: frames queue in user space and drain through
   non-blocking writes whenever [select] says the peer can take more
   (every receive, sleep and the final flush pump the queues).  The
   final flush also keeps *reading* — two ranks flushing large tails at
   each other would otherwise deadlock on full socket buffers.

   Crash detection is the point of this engine: a peer that dies (exit,
   signal, [EPIPE]) leaves EOF on its socket *without* the goodbye
   frame, and an untimed receive that provably waits on such a peer
   raises [Fault.Crashed] — a real process death, not a simulated one.
   EOF *with* goodbye means a clean finish; waiting on it is a protocol
   bug and raises [Deadlock].  Receives carrying a timeout never map
   peer death to an exception: they wait out their deadline and raise
   [Fault.Timeout], which is what the farm's failure detector (catching
   only [Timeout]) relies on.

   What is deliberately NOT here: global quiescence detection (a wait
   cycle among live processes hangs — there is no shared view to prove
   it), zero-copy (everything crosses the boundary by value), and
   cross-process [Obs] aggregation (children count sends/receives and
   ship the totals home in their verdict). *)

exception Deadlock of string
exception Child_failure of int * string

let () =
  Printexc.register_printer (function
    | Deadlock msg -> Some (Printf.sprintf "Machine.Procs.Deadlock(%s)" msg)
    | Child_failure (rank, msg) ->
        Some (Printf.sprintf "Machine.Procs.Child_failure(rank %d: %s)" rank msg)
    | _ -> None)

type stats = {
  wall : float;
  total_msgs : int;
  total_recvs : int;
  procs_used : int;
  crashed : int list;
}

let default_topology procs =
  if Topology.is_power_of_two procs then Topology.Hypercube else Topology.Complete

(* ------------------------------------------------------------------ frames *)

let header_len = 17
let k_marshal = 0
let k_slice = 1
let k_goodbye = 2

let make_frame kind tag payload =
  let n = Bytes.length payload in
  let b = Bytes.create (header_len + n) in
  Bytes.set b 0 (Char.chr kind);
  Bytes.set_int64_le b 1 (Int64.of_int tag);
  Bytes.set_int64_le b 9 (Int64.of_int (if kind = k_slice then n / 8 else n));
  Bytes.blit payload 0 b header_len n;
  b

let encode_slice (s : Engine.slice) =
  let len = Bigarray.Array1.dim s in
  let b = Bytes.create (8 * len) in
  for i = 0 to len - 1 do
    Bytes.set_int64_le b (8 * i) (Int64.bits_of_float (Bigarray.Array1.unsafe_get s i))
  done;
  b

let decode_slice payload : Engine.slice =
  let len = Bytes.length payload / 8 in
  let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout len in
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set a i (Int64.float_of_bits (Bytes.get_int64_le payload (8 * i)))
  done;
  a

(* -------------------------------------------------------------- child state *)

type peer = {
  p_rank : int;
  p_fd : Unix.file_descr;
  mutable p_eof : bool;  (* read side saw EOF (or a hard reset) *)
  mutable p_fin : bool;  (* goodbye frame parsed: the peer finished cleanly *)
  mutable p_wdead : bool;  (* write side dead; outbound traffic is dropped *)
  p_out : Bytes.t Queue.t;  (* whole frames awaiting the socket *)
  mutable p_off : int;  (* bytes of the queue head already written *)
  mutable p_rbuf : Bytes.t;  (* inbound stream tail not yet parsed *)
  mutable p_rlen : int;
}

(* A parsed, not-yet-received message.  One queue in arrival order across
   all peers: [recv_any] takes the globally oldest match, directed [recv]
   the oldest on its channel — FIFO per (src, tag) either way. *)
type packet = { k_src : int; k_tag : int; k_kind : int; k_payload : bytes }

type cstate = {
  c_rank : int;
  c_procs : int;
  c_t0 : float;  (* shared epoch, captured in the parent before forking *)
  peers : peer option array;  (* index = rank; [None] at [c_rank] *)
  pending : packet Queue.t;
  mutable c_sent : int;
  mutable c_recvd : int;
  scratch : Bytes.t;  (* read chunk *)
}

let now st = Unix.gettimeofday () -. st.c_t0

(* ------------------------------------------------------- stream maintenance *)

let drop_out peer =
  peer.p_wdead <- true;
  Queue.clear peer.p_out;
  peer.p_off <- 0

(* Drain as much outbound as the socket will take right now. Never
   blocks (non-blocking fd); a dead peer absorbs its queue — traffic to
   a crashed rank is lost, the fail-stop contract. *)
let write_peer peer =
  let continue = ref true in
  while !continue && (not peer.p_wdead) && not (Queue.is_empty peer.p_out) do
    let head = Queue.peek peer.p_out in
    let len = Bytes.length head - peer.p_off in
    match Unix.write peer.p_fd head peer.p_off len with
    | n ->
        if n = len then begin
          ignore (Queue.pop peer.p_out);
          peer.p_off <- 0
        end
        else peer.p_off <- peer.p_off + n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> continue := false
    | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) -> drop_out peer
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

(* Parse every complete frame out of the peer's stream tail. *)
let parse_frames st peer =
  let pos = ref 0 in
  (try
     while peer.p_rlen - !pos >= header_len do
       let kind = Char.code (Bytes.get peer.p_rbuf !pos) in
       let tag = Int64.to_int (Bytes.get_int64_le peer.p_rbuf (!pos + 1)) in
       let len = Int64.to_int (Bytes.get_int64_le peer.p_rbuf (!pos + 9)) in
       let body = if kind = k_slice then 8 * len else len in
       if peer.p_rlen - !pos - header_len < body then raise Exit;
       if kind = k_goodbye then peer.p_fin <- true
       else
         Queue.add
           {
             k_src = peer.p_rank;
             k_tag = tag;
             k_kind = kind;
             k_payload = Bytes.sub peer.p_rbuf (!pos + header_len) body;
           }
           st.pending;
       pos := !pos + header_len + body
     done
   with Exit -> ());
  if !pos > 0 then begin
    Bytes.blit peer.p_rbuf !pos peer.p_rbuf 0 (peer.p_rlen - !pos);
    peer.p_rlen <- peer.p_rlen - !pos
  end

let read_peer st peer =
  let continue = ref true in
  while !continue && not peer.p_eof do
    match Unix.read peer.p_fd st.scratch 0 (Bytes.length st.scratch) with
    | 0 -> peer.p_eof <- true
    | n ->
        let need = peer.p_rlen + n in
        if Bytes.length peer.p_rbuf < need then begin
          let grown = Bytes.create (max need (2 * Bytes.length peer.p_rbuf)) in
          Bytes.blit peer.p_rbuf 0 grown 0 peer.p_rlen;
          peer.p_rbuf <- grown
        end;
        Bytes.blit st.scratch 0 peer.p_rbuf peer.p_rlen n;
        peer.p_rlen <- peer.p_rlen + n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> continue := false
    | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> peer.p_eof <- true
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done;
  parse_frames st peer

(* One fabric pump: wait (up to [timeout] seconds; negative = forever)
   for any peer to become readable or writable, then service them. *)
let step st ~timeout =
  let rds = ref [] and wrs = ref [] in
  Array.iter
    (function
      | Some p ->
          if not p.p_eof then rds := p.p_fd :: !rds;
          if (not p.p_wdead) && not (Queue.is_empty p.p_out) then wrs := p.p_fd :: !wrs
      | None -> ())
    st.peers;
  if !rds = [] && !wrs = [] && timeout < 0.0 then
    (* only reachable from a wait the fail-fast checks proved satisfiable,
       so this is a bug guard, not a semantic path *)
    raise (Deadlock (Printf.sprintf "p%d: nothing left to wait on" st.c_rank));
  match Unix.select !rds !wrs [] timeout with
  | r, w, _ ->
      Array.iter
        (function
          | Some p ->
              if List.memq p.p_fd w then write_peer p;
              if List.memq p.p_fd r then read_peer st p
          | None -> ())
        st.peers
  | exception Unix.Unix_error (EINTR, _, _) -> ()

(* --------------------------------------------------------------- receiving *)

let take_pending st ~src ~tag ~any_tag =
  let n = Queue.length st.pending in
  let found = ref None in
  for _ = 1 to n do
    let pkt = Queue.pop st.pending in
    if
      Option.is_none !found
      && (src < 0 || pkt.k_src = src)
      && (any_tag || pkt.k_tag = tag)
    then found := Some pkt
    else Queue.add pkt st.pending
  done;
  !found

let timeout_exn st ~src ~any_tag ~tag =
  Fault.Timeout
    (Printf.sprintf "p%d: recv(src=%s, tag=%s) deadline elapsed" st.c_rank
       (if src < 0 then "any" else string_of_int src)
       (if any_tag then "any" else string_of_int tag))

(* With no matching message pending, decide whether this wait is provably
   hopeless.  Only consulted by untimed receives: timed ones wait out
   their deadline and raise [Timeout] whatever happened to the peer —
   the failure-detector contract the farm depends on. *)
let no_sender_exn st ~src ~tag ~any_tag =
  let chan () = if any_tag then "any" else string_of_int tag in
  if src >= 0 then
    match st.peers.(src) with
    | None ->
        Some
          (Deadlock
             (Printf.sprintf "p%d: recv(src=%d, tag=%s) from self can never be satisfied"
                st.c_rank src (chan ())))
    | Some p when p.p_eof ->
        if p.p_fin then
          Some
            (Deadlock
               (Printf.sprintf
                  "p%d: recv(src=%d, tag=%s) — rank %d finished cleanly without sending a \
                   matching message"
                  st.c_rank src (chan ()) src))
        else Some (Fault.Crashed src)
    | Some _ -> None
  else begin
    let all_gone = ref true and first_crashed = ref (-1) in
    Array.iter
      (function
        | Some p ->
            if not p.p_eof then all_gone := false
            else if (not p.p_fin) && !first_crashed < 0 then first_crashed := p.p_rank
        | None -> ())
      st.peers;
    if not !all_gone then None
    else if !first_crashed >= 0 then Some (Fault.Crashed !first_crashed)
    else
      Some
        (Deadlock
           (Printf.sprintf
              "p%d: recv_any(tag=%s) — every other rank finished cleanly without sending a \
               matching message"
              st.c_rank (chan ())))
  end

let recv_packet st ~src ~tag ~any_tag ~deadline : packet =
  let rec loop () =
    match take_pending st ~src ~tag ~any_tag with
    | Some pkt -> pkt
    | None ->
        if deadline = Float.infinity then begin
          (match no_sender_exn st ~src ~tag ~any_tag with Some e -> raise e | None -> ());
          step st ~timeout:(-1.0);
          loop ()
        end
        else begin
          let remaining = deadline -. now st in
          if remaining <= 0.0 then raise (timeout_exn st ~src ~any_tag ~tag)
          else begin
            step st ~timeout:remaining;
            loop ()
          end
        end
  in
  loop ()

let obj_of_packet pkt : Obj.t =
  if pkt.k_kind = k_slice then Obj.repr (decode_slice pkt.k_payload)
  else (Marshal.from_bytes pkt.k_payload 0 : Obj.t)

(* ------------------------------------------------------------------ sending *)

let enqueue peer frame =
  if not peer.p_wdead then begin
    Queue.add frame peer.p_out;
    write_peer peer (* opportunistic drain; common case hits the socket now *)
  end

let check_dest st name dest =
  if dest < 0 || dest >= st.c_procs then
    invalid_arg (Printf.sprintf "Procs.%s: rank %d out of range [0,%d)" name dest st.c_procs);
  if dest = st.c_rank then
    invalid_arg (Printf.sprintf "Procs.%s: self-send is not supported (use a local value)" name)

let send_obj st ~dest ~tag v =
  check_dest st "send" dest;
  st.c_sent <- st.c_sent + 1;
  let payload =
    try Marshal.to_bytes v []
    with Invalid_argument msg | Failure msg ->
      raise
        (Fault.Unserializable
           (Printf.sprintf "Procs.send: p%d -> p%d tag %d: payload cannot cross a process \
                            boundary (%s)"
              st.c_rank dest tag msg))
  in
  match st.peers.(dest) with
  | Some p -> enqueue p (make_frame k_marshal tag payload)
  | None -> assert false

let send_slice_to st ~dest ~tag s =
  check_dest st "send_slice" dest;
  st.c_sent <- st.c_sent + 1;
  match st.peers.(dest) with
  | Some p -> enqueue p (make_frame k_slice tag (encode_slice s))
  | None -> assert false

(* ----------------------------------------------------------------- shutdown *)

let outbound_busy st =
  Array.exists
    (function Some p -> (not p.p_wdead) && not (Queue.is_empty p.p_out) | None -> false)
    st.peers

let flush_outbound st =
  while outbound_busy st do
    step st ~timeout:(-1.0)
  done

(* Clean finish: push every owed byte out, say goodbye on each socket,
   then apply the undelivered-message check (same contract as the other
   engines — except for traffic from ranks that crashed, which the
   fail-stop model allows to go unconsumed). *)
let finish_clean st =
  flush_outbound st;
  Array.iter
    (function Some p -> enqueue p (make_frame k_goodbye 0 Bytes.empty) | None -> ())
    st.peers;
  flush_outbound st;
  let crashed_src pkt =
    match st.peers.(pkt.k_src) with Some p -> p.p_eof && not p.p_fin | None -> false
  in
  let left = Queue.fold (fun acc pkt -> if crashed_src pkt then acc else pkt :: acc) [] st.pending in
  match List.rev left with
  | [] -> ()
  | pkt :: _ as l ->
      raise
        (Deadlock
           (Printf.sprintf
              "processor %d finished with %d undelivered message(s); first from p%d tag %d"
              st.c_rank (List.length l) pkt.k_src pkt.k_tag))

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Fail-stop: drop owed traffic and slam the sockets shut so peers see
   EOF without a goodbye — that is what [Fault.Crashed] looks like from
   the outside. *)
let abrupt_close st =
  Array.iter
    (function
      | Some p ->
          drop_out p;
          close_noerr p.p_fd
      | None -> ())
    st.peers

(* ------------------------------------------------------------------- engine *)

let deadline_of st name timeout =
  match timeout with
  | None -> Float.infinity
  | Some timeout ->
      if timeout < 0.0 then invalid_arg (Printf.sprintf "Procs.%s: negative timeout" name);
      now st +. timeout

let check_src st name src =
  if src < 0 || src >= st.c_procs then
    invalid_arg (Printf.sprintf "Procs.%s: rank %d out of range [0,%d)" name src st.c_procs)

let engine st cost topology : Engine.t =
  {
    Engine.rank = st.c_rank;
    size = st.c_procs;
    cost;
    topology;
    real_time = true;
    send = (fun ~dest ~tag v -> send_obj st ~dest ~tag v);
    recv =
      (fun ?timeout ~src ~tag () ->
        check_src st "recv" src;
        let deadline = deadline_of st "recv" timeout in
        let pkt = recv_packet st ~src ~tag ~any_tag:false ~deadline in
        st.c_recvd <- st.c_recvd + 1;
        Obj.obj (obj_of_packet pkt));
    recv_any =
      (fun ?timeout ?tag () ->
        let deadline = deadline_of st "recv_any" timeout in
        let tag', any_tag = match tag with None -> (0, true) | Some t -> (t, false) in
        let pkt = recv_packet st ~src:(-1) ~tag:tag' ~any_tag ~deadline in
        st.c_recvd <- st.c_recvd + 1;
        (pkt.k_src, Obj.obj (obj_of_packet pkt)));
    send_slice = (fun ~dest ~tag s -> send_slice_to st ~dest ~tag s);
    recv_slice =
      (fun ?timeout ~src ~tag () ->
        check_src st "recv_slice" src;
        let deadline = deadline_of st "recv_slice" timeout in
        let pkt = recv_packet st ~src ~tag ~any_tag:false ~deadline in
        st.c_recvd <- st.c_recvd + 1;
        (Obj.obj (obj_of_packet pkt) : Engine.slice));
    work = (fun d -> if d < 0.0 then invalid_arg "Procs.work: negative duration");
    sleep =
      (fun d ->
        if d < 0.0 then invalid_arg "Procs.sleep: negative duration";
        (* park on [select], pumping the fabric meanwhile: queued sends
           keep draining and inbound frames keep accumulating, so a
           sleeping rank never backpressures its peers *)
        let until = now st +. d in
        let rec park () =
          let remaining = until -. now st in
          if remaining > 0.0 then begin
            step st ~timeout:remaining;
            park ()
          end
        in
        park ());
    time = (fun () -> now st);
    note = (fun _ -> ());
  }

(* ----------------------------------------------------- child/parent protocol *)

(* Exceptions do not survive [Marshal] (constructor identity is
   per-process), so a child ships this closed representation and the
   parent rebuilds the real exception. *)
type child_error =
  | E_timeout of string
  | E_crashed of int
  | E_unserializable of string
  | E_deadlock of string
  | E_invalid of string
  | E_failure of string
  | E_other of string

type verdict = {
  v_out : (bytes option, child_error) result;  (* Ok: marshalled result, if any *)
  v_crashed : bool;  (* chaos-style self fail-stop: silent, not an error *)
  v_sent : int;
  v_recvd : int;
}

let err_repr = function
  | Fault.Timeout m -> E_timeout m
  | Fault.Crashed r -> E_crashed r
  | Fault.Unserializable m -> E_unserializable m
  | Deadlock m -> E_deadlock m
  | Invalid_argument m -> E_invalid m
  | Failure m -> E_failure m
  | e -> E_other (Printexc.to_string e)

let reraise_child rank = function
  | E_timeout m -> raise (Fault.Timeout m)
  | E_crashed r -> raise (Fault.Crashed r)
  | E_unserializable m -> raise (Fault.Unserializable m)
  | E_deadlock m -> raise (Deadlock m)
  | E_invalid m -> invalid_arg m
  | E_failure m -> failwith m
  | E_other m -> raise (Child_failure (rank, m))

let rec write_all fd b off len =
  if len > 0 then
    match Unix.write fd b off len with
    | n -> write_all fd b (off + n) (len - n)
    | exception Unix.Unix_error (EINTR, _, _) -> write_all fd b off len

let rec read_all fd b off len =
  if len = 0 then true
  else
    match Unix.read fd b off len with
    | 0 -> false
    | n -> read_all fd b (off + n) (len - n)
    | exception Unix.Unix_error (EINTR, _, _) -> read_all fd b off len

let write_verdict fd (v : verdict) =
  let b = Marshal.to_bytes v [] in
  let hdr = Bytes.create 8 in
  Bytes.set_int64_le hdr 0 (Int64.of_int (Bytes.length b));
  write_all fd hdr 0 8;
  write_all fd b 0 (Bytes.length b)

(* [None] = the child died before reporting (exit, signal): a real crash. *)
let read_verdict fd : verdict option =
  let hdr = Bytes.create 8 in
  if not (read_all fd hdr 0 8) then None
  else begin
    let len = Int64.to_int (Bytes.get_int64_le hdr 0) in
    let b = Bytes.create len in
    if read_all fd b 0 len then Some (Marshal.from_bytes b 0 : verdict) else None
  end

(* --------------------------------------------------------------------- runs *)

let child_main ~rank ~procs ~cost ~topology ~t0 ~mesh ~vfd
    (program : int -> Engine.t -> bytes option) : unit =
  (* a peer may die mid-write; we want EPIPE (handled), not a signal *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* Close every inherited fd that is not ours: EOF-based crash detection
     only works if each socket end lives in exactly one process. *)
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j pair ->
          match pair with
          | Some (a, b) ->
              (* (a, b) = (rank i's end, rank j's end), i < j *)
              if i = rank then close_noerr b
              else if j = rank then close_noerr a
              else begin
                close_noerr a;
                close_noerr b
              end
          | None -> ())
        row)
    mesh;
  Array.iteri
    (fun q (parent_end, child_end) ->
      close_noerr parent_end;
      if q <> rank then close_noerr child_end)
    vfd;
  let my_vfd = snd vfd.(rank) in
  let peers =
    Array.init procs (fun q ->
        if q = rank then None
        else begin
          let fd =
            if rank < q then fst (Option.get mesh.(rank).(q))
            else snd (Option.get mesh.(q).(rank))
          in
          Unix.set_nonblock fd;
          Some
            {
              p_rank = q;
              p_fd = fd;
              p_eof = false;
              p_fin = false;
              p_wdead = false;
              p_out = Queue.create ();
              p_off = 0;
              p_rbuf = Bytes.create 4096;
              p_rlen = 0;
            }
        end)
  in
  let st =
    {
      c_rank = rank;
      c_procs = procs;
      c_t0 = t0;
      peers;
      pending = Queue.create ();
      c_sent = 0;
      c_recvd = 0;
      scratch = Bytes.create 65536;
    }
  in
  let eng = engine st cost topology in
  let v =
    match
      let res = program rank eng in
      finish_clean st;
      res
    with
    | res -> { v_out = Ok res; v_crashed = false; v_sent = st.c_sent; v_recvd = st.c_recvd }
    | exception Fault.Crashed r when r = rank ->
        abrupt_close st;
        { v_out = Ok None; v_crashed = true; v_sent = st.c_sent; v_recvd = st.c_recvd }
    | exception e ->
        abrupt_close st;
        { v_out = Error (err_repr e); v_crashed = false; v_sent = st.c_sent; v_recvd = st.c_recvd }
  in
  (try write_verdict my_vfd v with _ -> ());
  Unix._exit 0

let rec reap pid =
  match Unix.waitpid [] pid with
  | _ -> ()
  | exception Unix.Unix_error (EINTR, _, _) -> reap pid
  | exception Unix.Unix_error (ECHILD, _, _) -> ()

let run_core ?(cost = Cost_model.ap1000) ?topology ~procs
    (program : int -> Engine.t -> bytes option) : bytes option array * stats =
  if procs <= 0 then invalid_arg "Procs.run_each: procs must be positive";
  let topology = match topology with Some t -> t | None -> default_topology procs in
  Topology.validate topology ~procs;
  (* children inherit the stdio buffers; flush now so nothing replays *)
  flush stdout;
  flush stderr;
  let mesh =
    Array.init procs (fun i ->
        Array.init procs (fun j ->
            if i < j then Some (Unix.socketpair PF_UNIX SOCK_STREAM 0) else None))
  in
  let vfd = Array.init procs (fun _ -> Unix.socketpair PF_UNIX SOCK_STREAM 0) in
  let t0 = Unix.gettimeofday () in
  let pids =
    Array.init procs (fun r ->
        match Unix.fork () with
        | 0 ->
            (try child_main ~rank:r ~procs ~cost ~topology ~t0 ~mesh ~vfd program
             with _ -> ());
            (* only reached if child_main itself blew up before its verdict *)
            Unix._exit 127
        | pid -> pid)
  in
  (* every socket end now lives in exactly one child *)
  Array.iter
    (Array.iter (function
      | Some (a, b) ->
          close_noerr a;
          close_noerr b
      | None -> ()))
    mesh;
  Array.iter (fun (_, child_end) -> close_noerr child_end) vfd;
  let verdicts =
    Array.mapi
      (fun r (parent_end, _) ->
        let v = read_verdict parent_end in
        close_noerr parent_end;
        ignore r;
        v)
      vfd
  in
  Array.iter reap pids;
  let wall = Unix.gettimeofday () -. t0 in
  let crashed = ref [] and first_error = ref None in
  let results = Array.make procs None in
  let sent = ref 0 and recvd = ref 0 in
  Array.iteri
    (fun r v ->
      match v with
      | None -> crashed := r :: !crashed
      | Some v ->
          sent := !sent + v.v_sent;
          recvd := !recvd + v.v_recvd;
          if v.v_crashed then crashed := r :: !crashed
          else begin
            match v.v_out with
            | Ok res -> results.(r) <- res
            | Error e -> if Option.is_none !first_error then first_error := Some (r, e)
          end)
    verdicts;
  (match !first_error with Some (r, e) -> reraise_child r e | None -> ());
  ( results,
    {
      wall;
      total_msgs = !sent;
      total_recvs = !recvd;
      procs_used = procs;
      crashed = List.rev !crashed;
    } )

let run_each ?cost ?topology ~procs (program : int -> Engine.t -> unit) : stats =
  let _, stats =
    run_core ?cost ?topology ~procs (fun r eng ->
        program r eng;
        None)
  in
  stats

let run ?cost ?topology ~procs program =
  run_each ?cost ?topology ~procs (fun _rank eng -> program eng)

let run_collect (type a) ?cost ?topology ~procs (program : Engine.t -> a option) : a * stats =
  let results, stats =
    run_core ?cost ?topology ~procs (fun _rank eng ->
        match program eng with
        | None -> None
        | Some v -> (
            try Some (Marshal.to_bytes v [])
            with Invalid_argument msg | Failure msg ->
              raise
                (Fault.Unserializable
                   (Printf.sprintf "Procs.run_collect: result cannot cross a process \
                                    boundary (%s)"
                      msg))))
  in
  let rec first i =
    if i >= Array.length results then None
    else match results.(i) with Some b -> Some b | None -> first (i + 1)
  in
  match first 0 with
  | Some b -> ((Marshal.from_bytes b 0 : a), stats)
  | None -> invalid_arg "Procs.run_collect: no processor produced a result"
