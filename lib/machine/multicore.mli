(** Multicore execution engine: run SPMD programs on real OCaml 5 domains.

    Each virtual processor is a fiber; rank [r] runs on domain [r mod D]
    (fixed assignment, ranks beyond the core count are multiplexed).
    Messages move zero-copy through per-rank mailboxes — the sender must
    not mutate a value after sending it, the same contract as the
    simulator's [~bytes] fast path.  Blocked domains spin briefly
    ([Runtime.Backoff]) and then sleep on a per-domain doorbell.

    Semantics match the simulator: sends never block, receives are FIFO
    per (source, tag), and a quiescent system (every rank blocked, no
    message in flight) raises {!Deadlock}.  [recv_any] arrival order is
    whatever the hardware produced — unlike the simulator it is not
    deterministic. *)

exception Deadlock of string

type stats = {
  wall : float;  (** wall-clock seconds for the whole run *)
  total_msgs : int;
  total_recvs : int;
  domains_used : int;
  sleeps : int;  (** spin-to-sleep doorbell transitions across all domains *)
}

val default_domains : int -> int
(** [min procs (Domain.recommended_domain_count ())], at least 1. *)

val default_topology : int -> Topology.t
(** Hypercube when [procs] is a power of two, else complete — only used to
    populate the engine's [topology] field; it does not affect routing. *)

val run_each :
  ?domains:int ->
  ?cost:Cost_model.t ->
  ?topology:Topology.t ->
  procs:int ->
  (int -> Engine.t -> unit) ->
  stats
(** Run [program rank engine] on every rank.  [?domains] caps the real
    domains spawned (default {!default_domains}); [?cost] only populates
    the engine's cost model field ([work] is a no-op on this engine).
    Exceptions raised by rank programs are re-raised here (first one
    wins); {!Deadlock} is raised on quiescence. *)

val run :
  ?domains:int ->
  ?cost:Cost_model.t ->
  ?topology:Topology.t ->
  procs:int ->
  (Engine.t -> unit) ->
  stats

val run_collect :
  ?domains:int ->
  ?cost:Cost_model.t ->
  ?topology:Topology.t ->
  procs:int ->
  (Engine.t -> 'a option) ->
  'a * stats
(** Like {!run} for programs that produce a value at (at least) one rank;
    mirrors [Sim.run_collect]. *)
