(** Multi-process execution engine: run SPMD programs on real OS
    processes over Unix-domain sockets.

    Each rank is a process [fork]ed at [run] time; every rank pair shares
    one socketpair carrying length-prefixed frames — [Marshal] payloads
    for ordinary sends, raw little-endian float64 bytes for the bulk
    slice tier (one [send_slice] stays exactly one frame, preserving the
    coalescing contract). Ranks share no heap: this is the step from
    "parallel library" to "distributed system", where {!Fault.Crashed}
    means a process really died.

    Semantics match the other engines: sends never block (outbound bytes
    queue in user space and drain opportunistically), receives are FIFO
    per (source, tag), [recv ?timeout] maps the deadline onto
    [Unix.select], and the reserved collective tag discipline is
    untouched — [Comm] runs textually unchanged. Differences inherent to
    the medium:

    - payloads must be marshalable: sending a closure (or a custom block
      without serializers) raises {!Fault.Unserializable} at the send
      site;
    - a slice received here is a fresh copy, not an alias of the
      sender's storage;
    - crash detection is local, not global: a receive with no timeout
      raises {!Fault.Crashed} as soon as the awaited peer's socket hits
      EOF without a goodbye frame (child exit, kill, [EPIPE]), and
      {!Deadlock} when the awaited peer(s) provably finished cleanly
      with nothing more to say. A cyclic wait among live ranks is not
      detected (no global quiescence view across processes) — use
      timeouts for protocols that need a failure detector.

    Fork safety (OCaml 5): call [run*] only in a process that has NEVER
    created another domain. [Unix.fork] refuses permanently once a
    second domain has existed — joining it does not lift the ban — so a
    driver mixing engines must run its [Procs] work before any pool or
    multicore run (as tools/diffcheck and bench/main do), or fork a
    dedicated process for it. *)

exception Deadlock of string
(** A receive provably cannot be satisfied: every rank it could match
    finished cleanly (goodbye frame seen) with no matching message left.
    Raised only for locally-provable no-progress — see the module
    comment. *)

exception Child_failure of int * string
(** [Child_failure (rank, msg)]: a rank's program died with an exception
    that has no cross-process representation; [msg] is its printed form
    from the child. *)

type stats = {
  wall : float;  (** wall-clock seconds for the whole run *)
  total_msgs : int;  (** sends across all ranks (frames, not bytes) *)
  total_recvs : int;
  procs_used : int;  (** OS processes forked (= [procs]) *)
  crashed : int list;
      (** ranks that fail-stopped — {!Fault.Crashed} self-raises
          ([Chaos]) and real deaths (exit, signal) alike — in rank
          order *)
}

val default_topology : int -> Topology.t
(** Hypercube when [procs] is a power of two, else complete — only used
    to populate the engine's [topology] field; it does not affect
    routing (every rank pair has a direct socket). *)

val run_each :
  ?cost:Cost_model.t ->
  ?topology:Topology.t ->
  procs:int ->
  (int -> Engine.t -> unit) ->
  stats
(** Run [program rank engine] on every rank, each in its own forked
    process. [?cost] only populates the engine's cost-model field
    ([work] is a no-op on this engine). A rank that raises
    {!Fault.Crashed} on itself (the [Chaos] contract) or dies outright
    fail-stops silently and is reported in [stats.crashed]; any other
    exception from a rank program is re-raised here (lowest rank wins).
    All children are reaped before return. *)

val run :
  ?cost:Cost_model.t ->
  ?topology:Topology.t ->
  procs:int ->
  (Engine.t -> unit) ->
  stats

val run_collect :
  ?cost:Cost_model.t ->
  ?topology:Topology.t ->
  procs:int ->
  (Engine.t -> 'a option) ->
  'a * stats
(** Like {!run} for programs that produce a value at (at least) one
    rank; mirrors [Sim.run_collect]. The value crosses back from the
    child by [Marshal] — a non-marshalable result raises
    {!Fault.Unserializable}. When several ranks produce one, the lowest
    rank's value is returned. *)
