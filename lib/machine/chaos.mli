(** Deterministic, seeded fault injection as an {!Engine.t} wrapper.

    Chaos perturbs an SPMD program's communication without touching its
    code: sends may be held back and released later (delay/reordering
    within the documented per-(src,tag) FIFO relaxation), ranks may pay a
    straggler tax before every communication operation, and a rank may
    fail-stop ({!Fault.Crashed}) at a scheduled point.  Every decision is
    a pure function of (spec, rank, that rank's own operation count) via a
    per-rank splittable PRNG stream — so a perturbed simulator run is
    reproducible bit-for-bit from its seed, and on the multicore engine
    the injected faults (though not the real-time interleaving) replay
    exactly.

    What survives what (see README, "Fault model"): collectives are
    value-identical under any crash-free schedule; the dynamic farm
    additionally completes under a single worker crash. *)

type spec = {
  seed : int;  (** master seed; each rank draws from [nth_child seed rank] *)
  delay_prob : float;  (** probability in [0,1] that a send is held back *)
  max_hold : int;
      (** a held send is released after 1..max_hold further communication
          operations of its sender (or at the next blocking receive /
          program end, whichever comes first) *)
  stalls : (int * float) list;
      (** per-rank straggler tax, paid before every communication
          operation via [Engine.sleep]: simulated seconds on the
          simulator, a fiber-aware park on the real engines (ranks
          sharing the straggler's OS thread keep running) *)
  crashes : (int * int) list;
      (** [(rank, n)]: rank fail-stops just before its [n]-th (1-based)
          communication operation; held sends are lost with it *)
  crashes_at : (int * float) list;
      (** [(rank, t)]: rank fail-stops at its first communication operation
          at-or-after engine-clock time [t] (simulated seconds on the
          simulator, wall seconds on the multicore engine). Membership
          churn for long-lived services: "this worker dies two seconds in",
          independent of how many messages it handled first. A rank that
          stops communicating never observes its scheduled time. *)
}

val none : spec
(** The zero-fault schedule. Wrapping with it still routes every operation
    through the wrapper (that's what the overhead bench measures) but
    injects nothing: simulated runs are bit-identical to unwrapped runs. *)

val delays : ?seed:int -> ?prob:float -> ?max_hold:int -> unit -> spec
(** Delay/reorder-only schedule (defaults: seed 1, prob 0.25, max_hold 3). *)

type state
(** Per-rank wrapper state (operation counter, PRNG, held sends). *)

val wrap : spec -> Engine.t -> Engine.t * state
(** Wrap one rank's engine. The caller must {!finalize} after the program
    body so trailing held sends are released (skipped if the rank crashed).
    @raise Invalid_argument on malformed specs (probability outside [0,1],
    non-positive hold/crash indices, negative stalls). *)

val finalize : state -> unit
(** Release any still-held sends (a no-op for most programs, which end in
    receives/collectives that already flushed). *)

val run : spec -> (Engine.t -> 'a) -> Engine.t -> 'a
(** [run spec program eng]: wrap, run, finalize. Counters:
    ["chaos.faults_injected"] counts every hold, stall and crash. *)
