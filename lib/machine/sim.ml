(* Deterministic discrete-event simulator of a distributed-memory machine.

   Each virtual processor is a coroutine (an OCaml 5 fiber).  Non-blocking
   actions (send, work, sleep, time, note) mutate the simulator state
   directly; the blocking actions (recv — always, even when a matching
   packet is already buffered — and barrier) are performed as effects so
   the scheduler can capture the continuation and arbitrate globally over
   who acts next.

   Timing model (all per-processor clocks, in seconds):
   - [work d]            : clock += d
   - [send]              : clock += send_overhead; the packet's arrival time
                           is clock + alpha + hops*per_hop + bytes*beta
   - [recv]              : clock = max clock arrival + recv_overhead
   - [barrier]           : all clocks := max over processors + barrier cost
   Link contention is not modelled (see DESIGN.md).

   Message payloads are marshalled by default, which (a) gives the cost
   model the true byte size and (b) deep-copies the value, so processors
   cannot accidentally share mutable state.  Passing [~bytes] skips the
   marshalling and shares the value by reference (zero-copy fast path; the
   caller promises not to mutate it afterwards).

   The scheduler is deterministic: among runnable processors it always picks
   the one with the smallest (clock, rank), and receive matching is FIFO per
   (source, tag).  [recv_any] — inherently nondeterministic on a real
   machine — is resolved as "earliest arrival, then lowest source rank". *)

type config = { procs : int; topology : Topology.t; cost : Cost_model.t }

exception Deadlock of string

type packet = {
  pkt_src : int;
  pkt_tag : int;
  payload : Obj.t;
  marshalled : bool;
  bytes : int;
  arrival : float;
  pkt_seq : int;
}

type blocked =
  | Not_blocked
  | On_recv of {
      want_src : int option;
      want_tag : int option;
      deadline : float option;  (* absolute simulated time; None = wait forever *)
      k : (packet, unit) Effect.Deep.continuation;
    }
  | On_barrier of (unit, unit) Effect.Deep.continuation

type proc = {
  rank : int;
  mutable clock : float;
  mutable inbox : packet list;  (* in global send order; newest last *)
  mutable blocked : blocked;
  mutable thunk : (unit -> unit) option;
  mutable finished : bool;
  mutable crashed : bool;  (* fail-stopped via Fault.Crashed *)
  mutable work_time : float;
  mutable msgs_sent : int;
  mutable bytes_sent : int;
  mutable msgs_recvd : int;
  mutable barrier_count : int;
}

type t = {
  cfg : config;
  procs : proc array;
  trace : Trace.t;
  mutable seq : int;
}

type ctx = { sim : t; me : proc }

type stats = {
  makespan : float;
  finish_times : float array;
  work_times : float array;
  total_msgs : int;
  total_bytes : int;
  barriers : int;
}

type _ Effect.t +=
  | E_recv : {
      want_src : int option;
      want_tag : int option;
      deadline : float option;
    }
      -> packet Effect.t
  | E_barrier : unit Effect.t

(* --- program-side API ------------------------------------------------- *)

let rank ctx = ctx.me.rank
let size ctx = ctx.sim.cfg.procs
let time ctx = ctx.me.clock
let cost ctx = ctx.sim.cfg.cost
let topology ctx = ctx.sim.cfg.topology

let work ctx d =
  if d < 0.0 then invalid_arg "Sim.work: negative duration";
  ctx.me.clock <- ctx.me.clock +. d;
  ctx.me.work_time <- ctx.me.work_time +. d;
  Trace.record ctx.sim.trace ~time:ctx.me.clock ~proc:ctx.me.rank (Trace.Work d)

let work_flops ctx n = work ctx (Cost_model.flops ctx.sim.cfg.cost n)

(* Idle time: the clock moves but [work_time] does not, so imbalance
   diagnostics keep meaning "compute skew", not "who slept". *)
let sleep ctx d =
  if d < 0.0 then invalid_arg "Sim.sleep: negative duration";
  ctx.me.clock <- ctx.me.clock +. d

let note ctx msg = Trace.record ctx.sim.trace ~time:ctx.me.clock ~proc:ctx.me.rank (Trace.Note msg)

let check_dest ctx dest name =
  if dest < 0 || dest >= ctx.sim.cfg.procs then
    invalid_arg (Printf.sprintf "Sim.%s: rank %d out of range [0,%d)" name dest ctx.sim.cfg.procs)

let send : type a. ctx -> dest:int -> ?tag:int -> ?bytes:int -> a -> unit =
 fun ctx ~dest ?(tag = 0) ?bytes v ->
  check_dest ctx dest "send";
  if dest = ctx.me.rank then invalid_arg "Sim.send: self-send is not supported (use a local value)";
  let sim = ctx.sim in
  let c = sim.cfg.cost in
  let payload, marshalled, nbytes =
    match bytes with
    | Some b ->
        if b < 0 then invalid_arg "Sim.send: negative size";
        (Obj.repr v, false, b)
    | None ->
        let m = Marshal.to_bytes v [] in
        (Obj.repr m, true, Bytes.length m)
  in
  ctx.me.clock <- ctx.me.clock +. c.Cost_model.send_overhead;
  let hops = Topology.hops sim.cfg.topology ~procs:sim.cfg.procs ~src:ctx.me.rank ~dest in
  let arrival = ctx.me.clock +. Cost_model.transfer_time c ~hops ~bytes:nbytes in
  let pkt =
    { pkt_src = ctx.me.rank; pkt_tag = tag; payload; marshalled; bytes = nbytes; arrival; pkt_seq = sim.seq }
  in
  sim.seq <- sim.seq + 1;
  let dst = sim.procs.(dest) in
  dst.inbox <- dst.inbox @ [ pkt ];
  ctx.me.msgs_sent <- ctx.me.msgs_sent + 1;
  ctx.me.bytes_sent <- ctx.me.bytes_sent + nbytes;
  Trace.record sim.trace ~time:ctx.me.clock ~proc:ctx.me.rank (Trace.Send { dest; tag; bytes = nbytes })

let matches ~want_src ~want_tag pkt =
  (match want_src with None -> true | Some s -> pkt.pkt_src = s)
  && match want_tag with None -> true | Some t -> pkt.pkt_tag = t

(* MPI non-overtaking: per source, only the oldest (lowest send sequence)
   matching packet is eligible.  Among those per-source heads, pick the
   earliest arrival (ties by sequence) — a deterministic resolution of
   any-source receives.  With a [deadline], a head arriving later than the
   deadline is not eligible — and neither is any younger packet from the
   same source, even one arriving in time, because delivering it would
   violate non-overtaking. *)
let find_match p ~want_src ~want_tag ~deadline =
  let heads = Hashtbl.create 8 in
  List.iter
    (fun pkt ->
      if matches ~want_src ~want_tag pkt then
        match Hashtbl.find_opt heads pkt.pkt_src with
        | Some h when h.pkt_seq <= pkt.pkt_seq -> ()
        | Some _ | None -> Hashtbl.replace heads pkt.pkt_src pkt)
    p.inbox;
  let in_time pkt = match deadline with None -> true | Some d -> pkt.arrival <= d in
  Hashtbl.fold
    (fun _ pkt acc ->
      if not (in_time pkt) then acc
      else
        match acc with
        | Some b when (b.arrival, b.pkt_seq) <= (pkt.arrival, pkt.pkt_seq) -> acc
        | _ -> Some pkt)
    heads None

let remove_packet p pkt = p.inbox <- List.filter (fun q -> q.pkt_seq <> pkt.pkt_seq) p.inbox

let deliver sim (p : proc) pkt =
  remove_packet p pkt;
  p.clock <- Float.max p.clock pkt.arrival +. sim.cfg.cost.Cost_model.recv_overhead;
  p.msgs_recvd <- p.msgs_recvd + 1;
  Trace.record sim.trace ~time:p.clock ~proc:p.rank
    (Trace.Recv { src = pkt.pkt_src; tag = pkt.pkt_tag; bytes = pkt.bytes })

let decode : type a. packet -> a =
 fun pkt ->
  if pkt.marshalled then Marshal.from_bytes (Obj.obj pkt.payload : bytes) 0 else Obj.obj pkt.payload

let deadline_of ctx name = function
  | None -> None
  | Some timeout ->
      if timeout < 0.0 then invalid_arg (Printf.sprintf "Sim.%s: negative timeout" name);
      Some (ctx.me.clock +. timeout)

(* Every receive suspends into the scheduler, even when a matching packet
   is already in the inbox.  Delivering eagerly here would be unsound: a
   processor whose clock is still *behind* the packet's arrival may not
   have run yet, and could still produce an earlier-arriving match — the
   scheduler's global (event time, rank) order is what arbitrates that
   (see [choose]).  The classic symptom of the eager path was a receiver
   racing through a pre-filled inbox in one scheduling quantum while a
   lower-clock sender sat unstarted. *)
let recv_packet _ctx ~want_src ~want_tag ~deadline =
  Effect.perform (E_recv { want_src; want_tag; deadline })

let recv : type a. ctx -> src:int -> ?tag:int -> ?timeout:float -> unit -> a =
 fun ctx ~src ?tag ?timeout () ->
  check_dest ctx src "recv";
  let deadline = deadline_of ctx "recv" timeout in
  let pkt = recv_packet ctx ~want_src:(Some src) ~want_tag:tag ~deadline in
  decode pkt

let recv_any : type a. ctx -> ?tag:int -> ?timeout:float -> unit -> int * a =
 fun ctx ?tag ?timeout () ->
  let deadline = deadline_of ctx "recv_any" timeout in
  let pkt = recv_packet ctx ~want_src:None ~want_tag:tag ~deadline in
  (pkt.pkt_src, decode pkt)

let barrier ctx =
  Trace.record ctx.sim.trace ~time:ctx.me.clock ~proc:ctx.me.rank Trace.Barrier_enter;
  ctx.me.barrier_count <- ctx.me.barrier_count + 1;
  if ctx.sim.cfg.procs > 1 then Effect.perform E_barrier;
  Trace.record ctx.sim.trace ~time:ctx.me.clock ~proc:ctx.me.rank Trace.Barrier_leave

(* --- scheduler --------------------------------------------------------- *)

let make_handler sim p : (unit, unit) Effect.Deep.handler =
  {
    Effect.Deep.retc =
      (fun () ->
        p.finished <- true;
        Trace.record sim.trace ~time:p.clock ~proc:p.rank Trace.Finish);
    exnc =
      (fun e ->
        match e with
        | Fault.Crashed _ ->
            (* fail-stop: this rank ends here; the run continues *)
            p.finished <- true;
            p.crashed <- true;
            Trace.record sim.trace ~time:p.clock ~proc:p.rank (Trace.Note "crashed");
            Trace.record sim.trace ~time:p.clock ~proc:p.rank Trace.Finish
        | e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | E_recv { want_src; want_tag; deadline } ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                p.blocked <- On_recv { want_src; want_tag; deadline; k })
        | E_barrier -> Some (fun (k : (a, unit) Effect.Deep.continuation) -> p.blocked <- On_barrier k)
        | _ -> None)
  }

type action = Start of proc | Deliver of proc * packet | Expire of proc * float

(* Candidates are ordered by (event time, rank): a Start happens at the
   processor's clock, a Deliver at the moment the receiver actually gets
   the packet — max(clock, arrival) — and a timeout expiry at
   max(clock, deadline).  Executing only the globally smallest event keeps
   the simulation conservative: by the time a Deliver or Expire fires,
   every processor that could still produce an earlier-arriving matching
   send has clock >= that event time (a send's arrival strictly exceeds
   the sender's clock), so the packet picked by [find_match] really is the
   earliest, and an expiry really means no message can arrive in time. *)
let choose sim =
  let best = ref None in
  let consider p time act =
    match !best with
    | Some (q, t0, _) when (t0, q.rank) <= (time, p.rank) -> ()
    | _ -> best := Some (p, time, act)
  in
  Array.iter
    (fun p ->
      if not p.finished then
        match p.thunk with
        | Some _ -> consider p p.clock `Start
        | None -> (
            match p.blocked with
            | On_recv { want_src; want_tag; deadline; _ } -> (
                match find_match p ~want_src ~want_tag ~deadline with
                | Some pkt -> consider p (Float.max p.clock pkt.arrival) (`Deliver pkt)
                | None -> (
                    match deadline with
                    | Some d -> consider p (Float.max p.clock d) `Expire
                    | None -> ()))
            | On_barrier _ | Not_blocked -> ()))
    sim.procs;
  match !best with
  | None -> None
  | Some (p, _, `Start) -> Some (Start p)
  | Some (p, _, `Deliver pkt) -> Some (Deliver (p, pkt))
  | Some (p, t, `Expire) -> Some (Expire (p, t))

let describe_blocked sim =
  let buf = Buffer.create 128 in
  Array.iter
    (fun p ->
      if not p.finished then
        let state =
          match p.blocked with
          | On_recv { want_src; want_tag; _ } ->
              Printf.sprintf "recv(src=%s, tag=%s)"
                (match want_src with None -> "any" | Some s -> string_of_int s)
                (match want_tag with None -> "any" | Some t -> string_of_int t)
          | On_barrier _ -> "barrier"
          | Not_blocked -> ( match p.thunk with Some _ -> "not started" | None -> "running?")
        in
        Buffer.add_string buf (Printf.sprintf "p%d@%.6f: %s; " p.rank p.clock state))
    sim.procs;
  Buffer.contents buf

let release_barrier sim =
  let t_max = Array.fold_left (fun acc p -> Float.max acc p.clock) 0.0 sim.procs in
  let t_release = t_max +. Cost_model.barrier_time sim.cfg.cost ~procs:sim.cfg.procs in
  Array.iter
    (fun p ->
      p.clock <- t_release;
      match p.blocked with
      | On_barrier k ->
          p.blocked <- Not_blocked;
          Effect.Deep.continue k ()
      | Not_blocked | On_recv _ -> assert false)
    sim.procs

let schedule sim =
  let rec loop () =
    match choose sim with
    | Some (Start p) ->
        let thunk = Option.get p.thunk in
        p.thunk <- None;
        thunk ();
        loop ()
    | Some (Deliver (p, pkt)) ->
        let k = match p.blocked with On_recv { k; _ } -> k | _ -> assert false in
        p.blocked <- Not_blocked;
        deliver sim p pkt;
        Effect.Deep.continue k pkt;
        loop ()
    | Some (Expire (p, t)) ->
        let k, want_src, want_tag =
          match p.blocked with
          | On_recv { k; want_src; want_tag; _ } -> (k, want_src, want_tag)
          | _ -> assert false
        in
        p.blocked <- Not_blocked;
        p.clock <- t;
        Trace.record sim.trace ~time:p.clock ~proc:p.rank (Trace.Note "recv timeout");
        Effect.Deep.discontinue k
          (Fault.Timeout
             (Printf.sprintf "p%d: recv(src=%s, tag=%s) deadline %.6f elapsed" p.rank
                (match want_src with None -> "any" | Some s -> string_of_int s)
                (match want_tag with None -> "any" | Some t -> string_of_int t)
                t));
        loop ()
    | None ->
        if Array.for_all (fun p -> p.finished) sim.procs then ()
        else begin
          let at_barrier =
            Array.for_all (fun p -> p.finished || (match p.blocked with On_barrier _ -> true | _ -> false))
              sim.procs
          in
          let any_finished = Array.exists (fun p -> p.finished) sim.procs in
          if at_barrier && not any_finished then begin
            release_barrier sim;
            loop ()
          end
          else
            raise
              (Deadlock
                 (Printf.sprintf "no runnable processor%s: %s"
                    (if at_barrier then " (barrier with finished processors)" else "")
                    (describe_blocked sim)))
        end
  in
  loop ()

let fresh_proc rank =
  {
    rank;
    clock = 0.0;
    inbox = [];
    blocked = Not_blocked;
    thunk = None;
    finished = false;
    crashed = false;
    work_time = 0.0;
    msgs_sent = 0;
    bytes_sent = 0;
    msgs_recvd = 0;
    barrier_count = 0;
  }

let collect_stats sim =
  {
    makespan = Array.fold_left (fun acc p -> Float.max acc p.clock) 0.0 sim.procs;
    finish_times = Array.map (fun p -> p.clock) sim.procs;
    work_times = Array.map (fun p -> p.work_time) sim.procs;
    total_msgs = Array.fold_left (fun acc p -> acc + p.msgs_sent) 0 sim.procs;
    total_bytes = Array.fold_left (fun acc p -> acc + p.bytes_sent) 0 sim.procs;
    barriers = Array.fold_left (fun acc p -> max acc p.barrier_count) 0 sim.procs;
  }

(* Observability: one span around each whole simulation plus counters fed
   from the already-collected stats.  Nothing per-event — the simulator's
   inner loop stays untouched, and with obs disabled the only cost is one
   branch per run. *)
let obs_runs = Obs.Counter.make "sim.runs"
let obs_msgs = Obs.Counter.make "sim.msgs"
let obs_bytes = Obs.Counter.make "sim.bytes"
let obs_barriers = Obs.Counter.make "sim.barriers"
let obs_makespan = Obs.Histogram.make ~unit_:"us" "sim.makespan_us"
let obs_run_span = Obs.Span.make "sim.run_wall"

let publish_obs stats =
  if Obs.enabled () then begin
    Obs.Counter.incr obs_runs;
    Obs.Counter.add obs_msgs stats.total_msgs;
    Obs.Counter.add obs_bytes stats.total_bytes;
    Obs.Counter.add obs_barriers stats.barriers;
    Obs.Histogram.record obs_makespan (int_of_float (stats.makespan *. 1e6))
  end

let run_each ?trace cfg program =
  Obs.Span.timed obs_run_span (fun () ->
      Topology.validate cfg.topology ~procs:cfg.procs;
      let trace = match trace with Some t -> t | None -> Trace.disabled () in
      let sim = { cfg; procs = Array.init cfg.procs fresh_proc; trace; seq = 0 } in
      Array.iter
        (fun p ->
          let ctx = { sim; me = p } in
          p.thunk <- Some (fun () -> Effect.Deep.match_with (program p.rank) ctx (make_handler sim p)))
        sim.procs;
      schedule sim;
      (* Undelivered messages indicate a protocol bug worth surfacing —
         except in the inbox of a crashed processor: losing in-flight
         traffic is exactly what fail-stop means. *)
      Array.iter
        (fun p ->
          match p.inbox with
          | [] -> ()
          | _ when p.crashed -> ()
          | pkt :: _ ->
              raise
                (Deadlock
                   (Printf.sprintf
                      "processor %d finished with %d undelivered message(s); first from p%d tag %d"
                      p.rank (List.length p.inbox) pkt.pkt_src pkt.pkt_tag)))
        sim.procs;
      let stats = collect_stats sim in
      publish_obs stats;
      stats)

let run ?trace cfg program = run_each ?trace cfg (fun _rank -> program)

(* Convenience: run and also return a value computed by processor 0.  SPMD
   programs usually gather their result at the root; this saves threading a
   ref through every call site. *)
let run_collect ?trace cfg (program : ctx -> 'a option) : 'a * stats =
  let result = ref None in
  let stats =
    run_each ?trace cfg (fun _rank ctx ->
        match program ctx with
        | Some v -> result := Some v
        | None -> ())
  in
  match !result with
  | Some v -> (v, stats)
  | None -> invalid_arg "Sim.run_collect: no processor produced a result"

(* Load-balance diagnostics over a run's statistics. *)
let mean_work stats =
  let n = Array.length stats.work_times in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 stats.work_times /. float_of_int n

let max_work stats = Array.fold_left Float.max 0.0 stats.work_times

(* max/mean compute time: 1.0 = perfectly balanced. *)
let imbalance stats =
  let mean = mean_work stats in
  if mean <= 0.0 then 1.0 else max_work stats /. mean

let pp_stats ppf stats =
  Format.fprintf ppf
    "@[<v>makespan %.6f s; %d msgs, %d bytes, %d barrier phase(s)@,\
     work: max %.6f s, mean %.6f s (imbalance %.2f)@]"
    stats.makespan stats.total_msgs stats.total_bytes stats.barriers (max_work stats)
    (mean_work stats) (imbalance stats)
