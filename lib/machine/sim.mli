(** Deterministic discrete-event simulator of a distributed-memory machine.

    Programs are SPMD: the same function runs on every virtual processor,
    communicating through blocking point-to-point messages and global
    barriers. Per-processor clocks advance according to the {!Cost_model};
    the scheduler is deterministic, so simulated times are exactly
    reproducible. Deadlocks (every processor blocked with nothing in
    flight) are detected and reported. *)

type config = {
  procs : int;  (** number of virtual processors *)
  topology : Topology.t;
  cost : Cost_model.t;
}

exception Deadlock of string

type ctx
(** Handle passed to each processor's program. *)

type stats = {
  makespan : float;  (** max finish time over processors (seconds) *)
  finish_times : float array;
  work_times : float array;  (** pure-compute seconds per processor *)
  total_msgs : int;
  total_bytes : int;
  barriers : int;  (** barrier phases executed *)
}

(** {1 Program-side operations} *)

val rank : ctx -> int
val size : ctx -> int

val time : ctx -> float
(** This processor's local clock. *)

val cost : ctx -> Cost_model.t
val topology : ctx -> Topology.t

val work : ctx -> float -> unit
(** Charge [d] seconds of local compute. @raise Invalid_argument if negative. *)

val work_flops : ctx -> int -> unit
(** Charge [n] scalar operations at the cost model's flop rate. *)

val sleep : ctx -> float -> unit
(** Advance the local clock by [d] seconds without charging compute:
    [work_times] (and {!imbalance}) ignore slept time. For programs that
    idle deliberately — paced arrival processes, membership away-time.
    @raise Invalid_argument if negative. *)

val send : ctx -> dest:int -> ?tag:int -> ?bytes:int -> 'a -> unit
(** Non-blocking send. By default the value is marshalled (true byte size,
    deep copy). With [~bytes] the value is passed zero-copy by reference and
    charged the given size — the caller must not mutate it afterwards.
    Self-sends are rejected. *)

val recv : ctx -> src:int -> ?tag:int -> ?timeout:float -> unit -> 'a
(** Blocking receive from [src]; FIFO per (source, tag). The type is fixed
    by the call site and must match what the sender sent (the invariant all
    skeleton templates maintain).

    With [~timeout] (simulated seconds), raises {!Fault.Timeout} at
    [clock + timeout] if no matching message has arrived by then — the
    expiry is itself a deterministic simulation event, chosen only once no
    in-time delivery is possible. Per-source FIFO is never violated: a
    younger packet that would arrive in time cannot overtake an older one
    that would not. *)

val recv_any : ctx -> ?tag:int -> ?timeout:float -> unit -> int * 'a
(** Receive from any source: earliest arrival first, ties to the lowest
    source rank (a deterministic resolution of MPI's nondeterminism).
    [~timeout] as in {!recv}. *)

val barrier : ctx -> unit
(** Global barrier over all processors. *)

val note : ctx -> string -> unit
(** Record a message in the trace (used for Figure-2 style output). *)

(** {1 Running} *)

val run : ?trace:Trace.t -> config -> (ctx -> unit) -> stats
(** Run the same program on every processor. @raise Deadlock.

    A processor whose program raises {!Fault.Crashed} fail-stops: it is
    marked finished, its undelivered inbox is discarded, and the rest of
    the machine keeps running. Any other exception aborts the run. *)

val run_each : ?trace:Trace.t -> config -> (int -> ctx -> unit) -> stats
(** Per-rank programs (rank is applied before the simulation starts). *)

val run_collect : ?trace:Trace.t -> config -> (ctx -> 'a option) -> 'a * stats
(** Like {!run}, for programs where (at least) one processor returns the
    final value — conventionally the root after a gather. *)

(** {1 Diagnostics} *)

val mean_work : stats -> float
val max_work : stats -> float

val imbalance : stats -> float
(** max/mean per-processor compute time; 1.0 is perfectly balanced. *)

val pp_stats : Format.formatter -> stats -> unit
