(** Typed fault exceptions shared by both execution engines.

    [Timeout] is local and recoverable (one receive gave up waiting);
    [Deadlock] — each engine's own exception — is global and fatal (the
    engine proved no progress is possible).  [Crashed] makes a rank
    fail-stop: it terminates that rank's program without failing the run,
    leaving recovery to the protocol (see {!Chaos} and the dynamic farm). *)

exception Timeout of string
(** Raised by [recv ~timeout] / [recv_any ~timeout] on either engine when
    the deadline elapses before a matching message is available.  Catch it
    at the receive site to retry or re-dispatch; the run continues. *)

exception Crashed of int
(** [Crashed rank] fail-stops processor [rank]: its program ends at the
    raise point, it sends nothing further, and messages already addressed
    to it are discarded without tripping the undelivered-message check.
    Other processors are unaffected (a blocking receive from a crashed
    rank without a timeout will end in the engine's [Deadlock]). *)

exception Unserializable of string
(** Raised at the [send] call site by engines whose ranks live in
    separate OS processes ({!Procs}) when the payload cannot cross the
    process boundary — a closure, or a custom block without [Marshal]
    serializers.  In-process engines (simulator, multicore) share a heap
    and never raise it; programs meant to be engine-portable must stick
    to marshalable payloads. *)
