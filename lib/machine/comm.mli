(** MPI-style communicators and collectives over an execution engine.

    All collectives are implemented with point-to-point messages (binomial
    trees, dissemination, Hillis–Steele) against {!Engine.t}, so the same
    program runs on the simulator (where cost reflects the topology and
    cost model) and on the multicore engine (real domains).  Every member
    of a communicator must call each collective in the same order (SPMD
    discipline); internal tags make adjacent collectives immune to
    overtaking. *)

type t
(** A communicator: an ordered group of processors. *)

val world : Engine.t -> t
(** All processors, ranked by global rank. *)

val of_ranks : Engine.t -> int array -> t
(** Communicator over the given global ranks (in the given order). The
    caller must be a member. Every member must construct it consistently. *)

val split : t -> color:int -> key:int -> t
(** Collective: partition into sub-communicators by [color]; members are
    ordered by [key] (ties by old rank), like [MPI_Comm_split]. *)

val rank : t -> int
(** This processor's rank within the communicator. *)

val size : t -> int

val global_rank : t -> int -> int
(** Machine rank of communicator member [i]. *)

val global_ranks : t -> int array

val engine : t -> Engine.t
(** The underlying execution engine. *)

(** {1 Engine conveniences} *)

val work : t -> float -> unit
(** Charge compute seconds (simulated time on the simulator, no-op on the
    multicore engine). *)

val work_flops : t -> int -> unit
(** Charge [n] floating-point operations via the engine's cost model. *)

val sleep : t -> float -> unit
(** Idle for [d] engine-clock seconds without charging compute: the
    simulated clock advances (outside [work_times]); on the multicore
    engine the rank parks while other ranks keep running. For paced
    arrival processes and membership away-time. *)

val cost : t -> Cost_model.t
val topology : t -> Topology.t

val time : t -> float
(** The engine's clock: simulated seconds or wall seconds. *)

val note : t -> string -> unit
(** Trace annotation (simulator only; no-op elsewhere). *)

(** {1 Collectives} *)

val barrier : t -> unit
(** Dissemination barrier over the group (distinct from [Sim.barrier],
    which is machine-global and hardware-priced). *)

val bcast : t -> root:int -> 'a option -> 'a
(** Binomial broadcast; the root passes [Some v], others [None]. *)

val reduce : t -> root:int -> ('a -> 'a -> 'a) -> 'a -> 'a option
(** Binomial reduction; [op] must be associative (commutativity is NOT
    required). Partial results always combine in true communicator-rank
    order [v0·v1·…·v(m-1)], whatever the [root]; for [root <> 0] the result
    takes one extra hop from member 0 to the root. Returns [Some] at the
    root. *)

val allreduce : t -> ('a -> 'a -> 'a) -> 'a -> 'a

val gather : t -> root:int -> 'a -> 'a array option
(** Binomial gather, result indexed by communicator rank. *)

val allgather : t -> 'a -> 'a array

val scatter : t -> root:int -> 'a array option -> 'a
(** Binomial scatter of an array of length [size t] held at the root. *)

val alltoall : t -> 'a array -> 'a array
(** [out.(j)] is the element [a.(me)] of member [j]. *)

val scan : t -> ('a -> 'a -> 'a) -> 'a -> 'a
(** Inclusive prefix over ranks ([op] associative). *)

(** {1 Point-to-point within the group}

    [?tag] selects a user tag (in a reserved space disjoint from collective
    internals); omitted means the untagged p2p channel.  Receives match
    FIFO per (source, tag). *)

val send : t -> dest:int -> ?tag:int -> 'a -> unit

val recv : t -> src:int -> ?tag:int -> ?timeout:float -> unit -> 'a
(** With [?timeout] (engine-clock seconds), raises {!Fault.Timeout} if no
    matching message is available before the deadline; the run continues
    and the caller may retry. *)

val recv_any : t -> ?tag:int -> ?timeout:float -> unit -> int * 'a
(** Receive from any member; returns (communicator rank, value). Matches
    only p2p traffic (with the given user tag, or untagged if omitted) —
    never collective internals. Deterministic only on the simulator.
    [?timeout] as in {!recv}. *)

val exchange : t -> partner:int -> ?tag:int -> 'a -> 'a
(** Symmetric send-then-receive with [partner]; deadlock-free. *)

(** {1 Bulk slice tier}

    Typed unboxed-float ({!Engine.slice}) counterparts of the
    point-to-point operations and the data-movement collectives. Each hop
    moves its whole payload as exactly one message, however long the slice
    — the coalescing contract halo exchange and rotate build on. On the
    multicore engine payloads travel zero-copy (received slices alias the
    sender's storage: treat them as read-only, and do not mutate a sent
    window until a synchronising exchange); the simulator prices each hop
    as one message of [8 * length] payload bytes. Slice and boxed traffic
    on the same (source, tag) channel keep their relative order, but one
    channel must carry one payload type at a time. *)

val send_slice : t -> dest:int -> ?tag:int -> Engine.slice -> unit

val recv_slice : t -> src:int -> ?tag:int -> ?timeout:float -> unit -> Engine.slice
(** FIFO per (source, tag); [?timeout] as in {!recv}. *)

val bcast_slice : t -> root:int -> Engine.slice option -> Engine.slice
(** Binomial broadcast of a slice; each hop forwards the whole slice as one
    bulk message. *)

val scatter_slice : t -> root:int -> Engine.slice option -> Engine.slice
(** Block-decompose the root's slice over the group: member [k] of [m]
    receives elements [[k*q + min k r, …)] where [q = n/m], [r = n mod m]
    (the same geometry as the distributed vectors). Flat tree: exactly one
    direct message per non-root member; on the multicore engine each block
    is a zero-copy sub-view of the root's storage. *)

val gather_slice : t -> root:int -> Engine.slice -> Engine.slice option
(** Inverse of {!scatter_slice}: concatenates members' slices in rank
    order at the root (lengths may vary; offsets are derived from the
    received lengths). One direct message per non-root member. *)

val allgather_slice : t -> Engine.slice -> Engine.slice
(** {!gather_slice} to member 0 followed by {!bcast_slice}. *)

(** {1 Internals exposed for tests} *)

val unsafe_set_seq : t -> int -> unit
(** Test-only: jump the collective sequence counter (e.g. to probe the
    2^24 overflow boundary without issuing that many collectives). All
    members must set the same value, like any collective-order obligation.
    @raise Invalid_argument if negative. *)
