(** Event traces of simulator runs. *)

type kind =
  | Send of { dest : int; tag : int; bytes : int }
  | Recv of { src : int; tag : int; bytes : int }
  | Work of float
  | Barrier_enter
  | Barrier_leave
  | Note of string
  | Finish

type event = { time : float; proc : int; kind : kind }

type t

val create : unit -> t
(** A recording trace. *)

val disabled : unit -> t
(** A trace that drops everything (zero overhead in hot runs). *)

val record : t -> time:float -> proc:int -> kind -> unit

val events : t -> event list
(** All events sorted by (time, proc). *)

val length : t -> int
val clear : t -> unit
val filter_proc : t -> int -> event list

val notes : t -> (float * int * string) list
(** Just the [Note] events — what examples print for Figure-2 style output. *)

val to_chrome : ?pid:int -> t -> Obs.Json.t
(** Chrome [trace_event] JSON-array export, loadable in [chrome://tracing]
    and Perfetto. One thread per virtual processor; simulated seconds
    become microsecond timestamps. Work intervals are complete events
    (["ph":"X"] with a [dur]); sends, receives and notes are instants;
    barriers are B/E pairs. *)

val write_chrome : ?pid:int -> string -> t -> unit
(** [write_chrome path t] writes {!to_chrome} to [path] (compact JSON). *)

val pp : Format.formatter -> t -> unit
val pp_event : Format.formatter -> event -> unit

val pp_gantt : ?width:int -> Format.formatter -> t -> unit
(** ASCII timeline, one row per processor ([=] work, [>] send, [<] recv,
    [|] barrier, [#] finish). For small traces. *)
