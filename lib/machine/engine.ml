(* Execution-engine vtable for SPMD programs.

   The paper's point (and Haskell#'s) is that the coordination layer should
   be retargetable: the same skeleton program must run on different
   execution media without touching the computation code.  [Comm] therefore
   writes its collectives once against this record of primitives, and each
   engine — the discrete-event simulator ([of_sim]) and the real-domain
   multicore fabric ([Multicore.engine]) — supplies its own implementation.

   A record of explicitly-polymorphic closures is used instead of a functor
   so that programs keep the plain value type [Comm.t -> 'a option] and a
   single compiled program body can be handed to either engine at runtime.

   Semantics every engine must provide:
   - [send] is asynchronous and never blocks; [recv] blocks until a message
     with the exact (src, tag) is available, FIFO per (source, tag) —
     MPI's non-overtaking rule.
   - [recv_any] takes the oldest available message (any source) matching
     the optional tag; engines may resolve ties differently (the simulator
     is deterministic, real hardware is not).
   - [recv]/[recv_any] with [?timeout] raise [Fault.Timeout] once the
     deadline (engine-clock seconds from the call) elapses with no matching
     message — a local, recoverable condition, unlike the engines' global
     [Deadlock].
   - [work d] charges [d] seconds of compute: simulated time on the
     simulator, a no-op on engines where computation costs real time.
   - [sleep d] idles for [d] engine-clock seconds: the rank's clock
     advances but no compute is charged (simulated work_times and the
     imbalance diagnostics are untouched); on real engines it is an actual
     sleep.  Long-lived programs (pacing an arrival process, a departed
     worker waiting to rejoin) need idling that both engines price in
     their own clock — [work] cannot express it because it is free on
     real engines and counts as compute on the simulator.
   - [time ()] is the engine's own clock: simulated seconds on the
     simulator, wall-clock seconds since the run started on real engines.
     [real_time] says which: fault injectors (Chaos) use it to decide
     whether a straggler stall must burn wall time or simulated time. *)

(* The typed bulk tier: an unboxed float slice (C-layout Bigarray window).
   [send_slice]/[recv_slice] carry exactly one message per call whatever
   the slice length — the engine-level contract message coalescing builds
   on.  The multicore engine passes the window zero-copy through shared
   memory (no serialisation); the simulator prices it as a single message
   of [8 * length] bytes (payload bytes, no marshalling framing) while
   keeping its value-semantics deep copy.  Senders on a real engine must
   not mutate the window until a synchronising exchange with the receiver
   (the usual MPI buffer-reuse discipline; a collective suffices). *)
type slice = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  rank : int;
  size : int;
  cost : Cost_model.t;
  topology : Topology.t;
  real_time : bool;
  send : 'a. dest:int -> tag:int -> 'a -> unit;
  recv : 'a. ?timeout:float -> src:int -> tag:int -> unit -> 'a;
  recv_any : 'a. ?timeout:float -> ?tag:int -> unit -> int * 'a;
  send_slice : dest:int -> tag:int -> slice -> unit;
  recv_slice : ?timeout:float -> src:int -> tag:int -> unit -> slice;
  work : float -> unit;
  sleep : float -> unit;
  time : unit -> float;
  note : string -> unit;
}

let work_flops t n = t.work (Cost_model.flops t.cost n)

let of_sim (ctx : Sim.ctx) : t =
  {
    rank = Sim.rank ctx;
    size = Sim.size ctx;
    cost = Sim.cost ctx;
    topology = Sim.topology ctx;
    real_time = false;
    send = (fun ~dest ~tag v -> Sim.send ctx ~dest ~tag v);
    recv = (fun ?timeout ~src ~tag () -> Sim.recv ctx ~src ~tag ?timeout ());
    recv_any = (fun ?timeout ?tag () -> Sim.recv_any ctx ?tag ?timeout ());
    send_slice =
      (fun ~dest ~tag s ->
        (* One message priced at the payload's true unboxed size.  The copy
           keeps the simulator's value semantics (a sim sender may reuse its
           buffer immediately, unlike on real engines) — [~bytes] already
           skips the marshalling cost model would otherwise charge. *)
        let n = Bigarray.Array1.dim s in
        let c = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
        Bigarray.Array1.blit s c;
        Sim.send ctx ~dest ~tag ~bytes:(8 * n) c);
    recv_slice = (fun ?timeout ~src ~tag () -> Sim.recv ctx ~src ~tag ?timeout ());
    work = (fun d -> Sim.work ctx d);
    sleep = (fun d -> Sim.sleep ctx d);
    time = (fun () -> Sim.time ctx);
    note = (fun msg -> Sim.note ctx msg);
  }
