(* Execution-engine vtable for SPMD programs.

   The paper's point (and Haskell#'s) is that the coordination layer should
   be retargetable: the same skeleton program must run on different
   execution media without touching the computation code.  [Comm] therefore
   writes its collectives once against this record of primitives, and each
   engine — the discrete-event simulator ([of_sim]) and the real-domain
   multicore fabric ([Multicore.engine]) — supplies its own implementation.

   A record of explicitly-polymorphic closures is used instead of a functor
   so that programs keep the plain value type [Comm.t -> 'a option] and a
   single compiled program body can be handed to either engine at runtime.

   Semantics every engine must provide:
   - [send] is asynchronous and never blocks; [recv] blocks until a message
     with the exact (src, tag) is available, FIFO per (source, tag) —
     MPI's non-overtaking rule.
   - [recv_any] takes the oldest available message (any source) matching
     the optional tag; engines may resolve ties differently (the simulator
     is deterministic, real hardware is not).
   - [recv]/[recv_any] with [?timeout] raise [Fault.Timeout] once the
     deadline (engine-clock seconds from the call) elapses with no matching
     message — a local, recoverable condition, unlike the engines' global
     [Deadlock].
   - [work d] charges [d] seconds of compute: simulated time on the
     simulator, a no-op on engines where computation costs real time.
   - [sleep d] idles for [d] engine-clock seconds: the rank's clock
     advances but no compute is charged (simulated work_times and the
     imbalance diagnostics are untouched); on real engines it is an actual
     sleep.  Long-lived programs (pacing an arrival process, a departed
     worker waiting to rejoin) need idling that both engines price in
     their own clock — [work] cannot express it because it is free on
     real engines and counts as compute on the simulator.
   - [time ()] is the engine's own clock: simulated seconds on the
     simulator, wall-clock seconds since the run started on real engines.
     [real_time] says which: fault injectors (Chaos) use it to decide
     whether a straggler stall must burn wall time or simulated time. *)

type t = {
  rank : int;
  size : int;
  cost : Cost_model.t;
  topology : Topology.t;
  real_time : bool;
  send : 'a. dest:int -> tag:int -> 'a -> unit;
  recv : 'a. ?timeout:float -> src:int -> tag:int -> unit -> 'a;
  recv_any : 'a. ?timeout:float -> ?tag:int -> unit -> int * 'a;
  work : float -> unit;
  sleep : float -> unit;
  time : unit -> float;
  note : string -> unit;
}

let work_flops t n = t.work (Cost_model.flops t.cost n)

let of_sim (ctx : Sim.ctx) : t =
  {
    rank = Sim.rank ctx;
    size = Sim.size ctx;
    cost = Sim.cost ctx;
    topology = Sim.topology ctx;
    real_time = false;
    send = (fun ~dest ~tag v -> Sim.send ctx ~dest ~tag v);
    recv = (fun ?timeout ~src ~tag () -> Sim.recv ctx ~src ~tag ?timeout ());
    recv_any = (fun ?timeout ?tag () -> Sim.recv_any ctx ?tag ?timeout ());
    work = (fun d -> Sim.work ctx d);
    sleep = (fun d -> Sim.sleep ctx d);
    time = (fun () -> Sim.time ctx);
    note = (fun msg -> Sim.note ctx msg);
  }
