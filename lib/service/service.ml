(* A long-lived skeleton service: the crash-tolerant dynamic farm grown
   into a server that ingests a *stream* of jobs while it runs.

   Rank layout (master-centred star, like the farm):

     rank 0              the service master: admission, queueing, batching,
                         dispatch, failure detection, latency accounting
     ranks 1..clients    producers: each paces an arrival process with
                         [Comm.sleep] and submits jobs upstream
     the rest            workers: request/compute/reply, with optional
                         scheduled leave/rejoin (elastic membership)

   What the master adds over the farm's dealer:

   - bounded ingress queue: admitted-but-undealt jobs; depth never exceeds
     [queue_bound].
   - admission control at the bound: [Block] parks the submission (and the
     submitting client, which awaits an ack — closed-loop backpressure);
     [Shed] rejects it immediately and loudly (open loop keeps arriving).
   - coalescing: a submission whose job key is already pending (queued or
     dealt) attaches to it instead of occupying queue space — one
     execution, every attached submission gets the result's latency.
   - batching: a requesting worker receives up to [batch] queued jobs in
     one message, amortising the per-message round trip.
   - elastic membership: workers may announce a graceful [Leave] (away for
     a while, or permanent) and rejoin by simply requesting again;
     fail-stop crashes (Chaos) are absorbed by the farm's at-least-once
     machinery: outstanding jobs are re-dealt to idle workers after a
     silent [grace], duplicate results are dropped by job key.
   - per-request latency: each submission carries its issue time; the
     master records (completion - issue) per attached submission, exactly
     (raw samples for the report's percentiles) and into the
     ["service.latency_us"] obs histogram.

   Failure detection keeps the farm's contract: [grace] must dominate the
   longest batch (plus a round trip) and any scheduled away time.  Then a
   master timeout means no live worker exists: with work outstanding, no
   idle worker parked and nobody away, completion is impossible and the
   master fails loudly.  A timeout with an empty service is a benign lull
   (slow producers), and with members away the master keeps waiting.
   A rank scheduled to leave must not also be crash-scheduled inside its
   away window — the master would wait for a rejoin that never comes. *)

open Machine

type admission = Block | Shed

type leave_spec = {
  after_jobs : int;  (* leave once this many jobs are processed (>= 1) *)
  away : float;  (* seconds before rejoining *)
  permanent : bool;  (* never rejoin *)
}

type config = {
  clients : int;
  queue_bound : int;
  batch : int;
  admission : admission;
  grace : float option;
  leaves : (int * leave_spec) list;  (* worker rank -> scheduled leave *)
}

let default ?(clients = 1) ?(queue_bound = 64) ?(batch = 4) ?(admission = Block) ?grace
    ?(leaves = []) () =
  { clients; queue_bound; batch; admission; grace; leaves }

type 'r workload = {
  arrivals : int;  (* submissions per client *)
  gap : int -> int -> float;  (* client (0-based), arrival index -> pre-submit idle *)
  job_of : int -> int;  (* global submission index -> job key (collisions coalesce) *)
  run : int -> 'r;  (* executed on the worker's host; deterministic *)
  flops : int -> int;  (* simulated cost of one job *)
}

type report = {
  submitted : int;
  accepted : int;  (* distinct jobs admitted to the queue *)
  coalesced : int;  (* submissions attached to an already-pending job *)
  rejected : int;  (* submissions shed at the bound *)
  completed : int;  (* submissions whose result was produced *)
  batches : int;
  redeals : int;
  dup_results : int;
  joins : int;
  leaves : int;
  max_queue_depth : int;
  duration : float;
  throughput : float;  (* completed submissions per engine-clock second *)
  mean_latency : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max_latency : float;
}

(* ------------------------------------------------------------------ wire *)

let tag_to_master = 7101
let tag_ack = 7102
let tag_batch = 7103

type 'r to_master =
  | Submit of { slot : int; key : int; issued : float }
  | Eos
  | Request
  | Result of (int * 'r) list  (* (key, value) per job of the batch *)
  | Leave of bool  (* permanent? *)

type batch_msg = Batch of int list | Pill

(* ------------------------------------------------------------------- obs *)

let obs_submitted = Obs.Counter.make "service.submitted"
let obs_accepted = Obs.Counter.make "service.accepted"
let obs_coalesced = Obs.Counter.make "service.coalesced"
let obs_rejected = Obs.Counter.make "service.rejected"
let obs_batches = Obs.Counter.make "service.batches"
let obs_redeals = Obs.Counter.make "service.redeals"
let obs_dups = Obs.Counter.make "service.dup_results"
let obs_joins = Obs.Counter.make "service.joins"
let obs_leaves = Obs.Counter.make "service.leaves"
let obs_latency = Obs.Histogram.make ~unit_:"us" "service.latency_us"

(* ----------------------------------------------------------- percentiles *)

(* Exact nearest-rank percentile over the raw master-side samples; the obs
   histogram is the cheap always-on view, this is the report's truth. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)))

(* ---------------------------------------------------------------- master *)

type pending_entry = { mutable slots : float list (* issue stamps *); mutable dealt : bool }

let master (cfg : config) (wl : 'r workload) (comm : Comm.t) : report =
  let p = Comm.size comm in
  let first_worker = cfg.clients + 1 in
  let t0 = Comm.time comm in
  (* state *)
  let queued : int Queue.t = Queue.create () in
  let pending : (int, pending_entry) Hashtbl.t = Hashtbl.create 64 in
  let blocked : (int * int * float) Queue.t = Queue.create () (* src, key, issued *) in
  let idle : int Queue.t = Queue.create () in
  let outstanding : int Queue.t = Queue.create () in
  let away = Array.make p false in
  let released = Array.make p true in
  for r = first_worker to p - 1 do
    released.(r) <- false
  done;
  let eos_seen = ref 0 in
  (* tallies *)
  let submitted = ref 0 and accepted = ref 0 and coalesced = ref 0 in
  let rejected = ref 0 and completed = ref 0 and batches = ref 0 in
  let redeals = ref 0 and dups = ref 0 and joins = ref 0 and leaves = ref 0 in
  let max_depth = ref 0 in
  let samples : float list ref = ref [] in
  let away_count () = Array.fold_left (fun a b -> if b then a + 1 else a) 0 away in
  let all_done () =
    !eos_seen = cfg.clients && Queue.is_empty queued && Queue.is_empty blocked
    && Hashtbl.length pending = 0
  in
  let work_left () =
    (not (Queue.is_empty queued)) || (not (Queue.is_empty blocked)) || Hashtbl.length pending > 0
  in
  let ack dst = Comm.send comm ~dest:dst ~tag:tag_ack () in
  let admit key issued =
    Hashtbl.replace pending key { slots = [ issued ]; dealt = false };
    Queue.push key queued;
    incr accepted;
    Obs.Counter.incr obs_accepted;
    if Queue.length queued > !max_depth then max_depth := Queue.length queued
  in
  (* Pop up to [batch] queued jobs for [dst]; afterwards admit parked
     submissions into the space just freed (acking their clients). *)
  let deal dst =
    (* A queued key can have been satisfied before being popped (re-dealt
       under churn, or coalesced with an earlier incarnation): skip those
       instead of dispatching ghosts. *)
    let rec take n acc =
      if n = 0 || Queue.is_empty queued then List.rev acc
      else
        let k = Queue.pop queued in
        match Hashtbl.find_opt pending k with
        | Some e when not e.dealt ->
            e.dealt <- true;
            Queue.push k outstanding;
            take (n - 1) (k :: acc)
        | _ -> take n acc
    in
    let keys = take cfg.batch [] in
    if keys = [] then Queue.push dst idle
    else begin
      incr batches;
      Obs.Counter.incr obs_batches;
      Comm.send comm ~dest:dst ~tag:tag_batch (Batch keys)
    end;
    let rec refill () =
      if Queue.length queued < cfg.queue_bound && not (Queue.is_empty blocked) then begin
        let src, key, issued = Queue.pop blocked in
        (match Hashtbl.find_opt pending key with
        | Some e ->
            (* admitted by someone else while this one was parked *)
            e.slots <- issued :: e.slots;
            incr coalesced;
            Obs.Counter.incr obs_coalesced
        | None -> admit key issued);
        ack src;
        refill ()
      end
    in
    refill ()
  in
  let try_deal () =
    while (not (Queue.is_empty idle)) && not (Queue.is_empty queued) do
      deal (Queue.pop idle)
    done
  in
  (* Oldest dealt-but-unfinished job, rotated to the back (farm-style). *)
  let pick_outstanding () =
    let rec pick () =
      match Queue.take_opt outstanding with
      | Some k when not (Hashtbl.mem pending k) -> pick ()
      | other -> other
    in
    pick ()
  in
  let redeal dst =
    match pick_outstanding () with
    | Some k ->
        Queue.push k outstanding;
        incr redeals;
        Obs.Counter.incr obs_redeals;
        incr batches;
        Obs.Counter.incr obs_batches;
        Comm.send comm ~dest:dst ~tag:tag_batch (Batch [ k ])
    | None -> Queue.push dst idle
  in
  let redeal_to_idle () =
    let n = Queue.length idle in
    for _ = 1 to n do
      if Hashtbl.length pending > 0 then redeal (Queue.pop idle)
    done
  in
  let drain_mode () =
    !eos_seen = cfg.clients && Queue.is_empty queued && Queue.is_empty blocked
    && Hashtbl.length pending > 0
  in
  let pill dst =
    Comm.send comm ~dest:dst ~tag:tag_batch Pill;
    released.(dst) <- true
  in
  let handle_submit src slot key issued =
    ignore slot;
    incr submitted;
    Obs.Counter.incr obs_submitted;
    match Hashtbl.find_opt pending key with
    | Some e ->
        e.slots <- issued :: e.slots;
        incr coalesced;
        Obs.Counter.incr obs_coalesced;
        if cfg.admission = Block then ack src
    | None ->
        if Queue.length queued < cfg.queue_bound then begin
          admit key issued;
          if cfg.admission = Block then ack src;
          try_deal ()
        end
        else begin
          match cfg.admission with
          | Shed ->
              incr rejected;
              Obs.Counter.incr obs_rejected
          | Block -> Queue.push (src, key, issued) blocked
        end
  in
  let handle_result items =
    let now = Comm.time comm in
    List.iter
      (fun (key, _v) ->
        match Hashtbl.find_opt pending key with
        | None ->
            incr dups;
            Obs.Counter.incr obs_dups
        | Some e ->
            Hashtbl.remove pending key;
            List.iter
              (fun issued ->
                let lat = now -. issued in
                samples := lat :: !samples;
                incr completed;
                Obs.Histogram.record obs_latency (int_of_float (lat *. 1e6)))
              e.slots)
      items
  in
  let handle_leave src permanent =
    incr leaves;
    Obs.Counter.incr obs_leaves;
    if permanent then released.(src) <- true else away.(src) <- true
  in
  let handle_request src =
    if away.(src) then begin
      away.(src) <- false;
      incr joins;
      Obs.Counter.incr obs_joins
    end;
    if all_done () then pill src
    else begin
      Queue.push src idle;
      try_deal ();
      if drain_mode () then redeal_to_idle ()
    end
  in
  (* ---- serve until every accepted job has a result and producers are done *)
  while not (all_done ()) do
    match (Comm.recv_any comm ~tag:tag_to_master ?timeout:cfg.grace () : int * 'r to_master) with
    | src, Submit { slot; key; issued } -> handle_submit src slot key issued
    | _, Eos -> incr eos_seen
    | src, Request -> handle_request src
    | _, Result items -> handle_result items
    | src, Leave permanent -> handle_leave src permanent
    | exception Fault.Timeout _ ->
        let have_dealt = Hashtbl.fold (fun _ e acc -> acc || e.dealt) pending false in
        if have_dealt && not (Queue.is_empty idle) then redeal_to_idle ()
        else if work_left () && Queue.is_empty idle && away_count () = 0 then
          failwith "Service: all workers lost (no traffic within grace)"
        (* else: benign lull — slow producers, or members away *)
  done;
  let t_end = Comm.time comm in
  (* ---- drain: release parked workers, then wait out the stragglers *)
  while not (Queue.is_empty idle) do
    pill (Queue.pop idle)
  done;
  (try
     while Array.exists not released do
       match (Comm.recv_any comm ~tag:tag_to_master ?timeout:cfg.grace () : int * 'r to_master) with
       | src, Request ->
           (* A rejoin landing in the drain gets a pill — and must clear its
              away flag, or the timeout branch below waits forever for a
              member it has already released. *)
           if away.(src) then begin
             away.(src) <- false;
             incr joins;
             Obs.Counter.incr obs_joins
           end;
           pill src
       | _, Result items -> handle_result items (* late duplicates *)
       | src, Leave permanent -> handle_leave src permanent
       | _, (Submit _ | Eos) -> ()
       | exception Fault.Timeout _ ->
           (* members away will rejoin (grace dominates away time); total
              silence with nobody away means the rest crashed — abandon *)
           if away_count () = 0 then raise Exit
     done
   with Exit -> ());
  let sorted = Array.of_list !samples in
  Array.sort compare sorted;
  let duration = t_end -. t0 in
  let sum = Array.fold_left ( +. ) 0.0 sorted in
  {
    submitted = !submitted;
    accepted = !accepted;
    coalesced = !coalesced;
    rejected = !rejected;
    completed = !completed;
    batches = !batches;
    redeals = !redeals;
    dup_results = !dups;
    joins = !joins;
    leaves = !leaves;
    max_queue_depth = !max_depth;
    duration;
    throughput = (if duration > 0.0 then float_of_int !completed /. duration else 0.0);
    mean_latency = (if !completed > 0 then sum /. float_of_int !completed else 0.0);
    p50 = percentile sorted 0.50;
    p95 = percentile sorted 0.95;
    p99 = percentile sorted 0.99;
    max_latency = (if Array.length sorted = 0 then 0.0 else sorted.(Array.length sorted - 1));
  }

(* ---------------------------------------------------------------- client *)

let client (cfg : config) (wl : 'r workload) (comm : Comm.t) =
  let c = Comm.rank comm - 1 in
  for k = 0 to wl.arrivals - 1 do
    Comm.sleep comm (wl.gap c k);
    let key = wl.job_of ((c * wl.arrivals) + k) in
    let issued = Comm.time comm in
    Comm.send comm ~dest:0 ~tag:tag_to_master
      (Submit { slot = (c * wl.arrivals) + k; key; issued } : 'r to_master);
    (* Closed loop: wait to be admitted before producing more (the queue
       bound propagates upstream).  Open loop (Shed): keep arriving. *)
    match cfg.admission with
    | Block -> (Comm.recv comm ~src:0 ~tag:tag_ack () : unit)
    | Shed -> ()
  done;
  Comm.send comm ~dest:0 ~tag:tag_to_master (Eos : 'r to_master)

(* ---------------------------------------------------------------- worker *)

let worker (cfg : config) (wl : 'r workload) (comm : Comm.t) =
  let me = Comm.rank comm in
  let sess = List.assoc_opt me cfg.leaves in
  let jobs_done = ref 0 in
  let left_once = ref false in
  let continue_ = ref true in
  while !continue_ do
    Comm.send comm ~dest:0 ~tag:tag_to_master (Request : 'r to_master);
    match (Comm.recv comm ~src:0 ~tag:tag_batch () : batch_msg) with
    | Pill -> continue_ := false
    | Batch keys ->
        Comm.work_flops comm (List.fold_left (fun a k -> a + wl.flops k) 0 keys);
        let items = List.map (fun k -> (k, wl.run k)) keys in
        Comm.send comm ~dest:0 ~tag:tag_to_master (Result items : 'r to_master);
        jobs_done := !jobs_done + List.length keys;
        (match sess with
        | Some s when (not !left_once) && !jobs_done >= s.after_jobs ->
            left_once := true;
            Comm.send comm ~dest:0 ~tag:tag_to_master (Leave s.permanent : 'r to_master);
            if s.permanent then continue_ := false else Comm.sleep comm s.away
        | _ -> ())
  done

(* ------------------------------------------------------------------- run *)

let program (cfg : config) (wl : 'r workload) (comm : Comm.t) : report option =
  let me = Comm.rank comm in
  if me = 0 then Some (master cfg wl comm)
  else if me <= cfg.clients then begin
    client cfg wl comm;
    None
  end
  else begin
    worker cfg wl comm;
    None
  end

let validate (cfg : config) (wl : 'r workload) ~procs =
  if cfg.clients < 1 then invalid_arg "Service: needs at least one client";
  if procs < cfg.clients + 2 then
    invalid_arg "Service: needs a master, the clients and at least one worker";
  if cfg.queue_bound < 1 then invalid_arg "Service: queue_bound must be >= 1";
  if cfg.batch < 1 then invalid_arg "Service: batch must be >= 1";
  (match cfg.grace with
  | Some g when g <= 0.0 -> invalid_arg "Service: grace must be > 0"
  | _ -> ());
  List.iter
    (fun (r, s) ->
      if r <= cfg.clients || r >= procs then invalid_arg "Service: leave rank is not a worker";
      if s.after_jobs < 1 then invalid_arg "Service: leave after_jobs must be >= 1";
      if s.away < 0.0 then invalid_arg "Service: negative away time")
    cfg.leaves;
  if wl.arrivals < 0 then invalid_arg "Service: negative arrivals"

let run_sim ?trace ?(cost = Cost_model.ap1000) ?chaos ~procs (cfg : config) (wl : 'r workload) :
    report * Sim.stats =
  validate cfg wl ~procs;
  Scl_sim.Spmd.run_collect ?trace ~cost ?chaos ~procs (program cfg wl)

let run_multicore ?domains ?chaos ~procs (cfg : config) (wl : 'r workload) :
    report * Multicore.stats =
  validate cfg wl ~procs;
  Scl_sim.Spmd.run_multicore_collect ?domains ?chaos ~procs (program cfg wl)

let run_procs ?chaos ~procs (cfg : config) (wl : 'r workload) : report * Procs.stats =
  validate cfg wl ~procs;
  Scl_sim.Spmd.run_procs_collect ?chaos ~procs (program cfg wl)

(* ------------------------------------------------------------------ JSON *)

let report_to_json (r : report) : Obs.Json.t =
  Obs.Json.Obj
    [
      ("submitted", Obs.Json.Int r.submitted);
      ("accepted", Obs.Json.Int r.accepted);
      ("coalesced", Obs.Json.Int r.coalesced);
      ("rejected", Obs.Json.Int r.rejected);
      ("completed", Obs.Json.Int r.completed);
      ("batches", Obs.Json.Int r.batches);
      ("redeals", Obs.Json.Int r.redeals);
      ("dup_results", Obs.Json.Int r.dup_results);
      ("joins", Obs.Json.Int r.joins);
      ("leaves", Obs.Json.Int r.leaves);
      ("max_queue_depth", Obs.Json.Int r.max_queue_depth);
      ("duration_s", Obs.Json.Float r.duration);
      ("jobs_per_s", Obs.Json.Float r.throughput);
      ("mean_latency_s", Obs.Json.Float r.mean_latency);
      ("p50_s", Obs.Json.Float r.p50);
      ("p95_s", Obs.Json.Float r.p95);
      ("p99_s", Obs.Json.Float r.p99);
      ("max_latency_s", Obs.Json.Float r.max_latency);
    ]
