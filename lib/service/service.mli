(** A long-lived skeleton service: the crash-tolerant dynamic farm
    ({!Algorithms.Farm_sim}) grown into a server that ingests a stream of
    jobs while it runs.

    Rank 0 is the service master (admission, bounded queueing, coalescing,
    batching, dispatch, failure detection, latency accounting); ranks
    [1..clients] are producers pacing seeded arrival processes with
    {!Machine.Comm.sleep}; the remaining ranks are workers, which may
    leave and rejoin mid-run (gracefully via {!leave_spec}, or by
    fail-stop under {!Machine.Chaos} — outstanding jobs are then re-dealt
    with at-least-once dispatch and per-key result dedup, as in the farm).

    The same program body runs deterministically on the simulator
    ({!run_sim}: identical seeds give bit-identical reports) and for real
    on OCaml domains ({!run_multicore}). *)

type admission =
  | Block  (** at the bound, park the submission; the producer waits for
               its ack — closed-loop backpressure *)
  | Shed  (** at the bound, reject immediately and count it loudly; the
              open-loop producer keeps arriving *)

type leave_spec = {
  after_jobs : int;  (** leave after processing this many jobs (>= 1) *)
  away : float;  (** engine-clock seconds before rejoining *)
  permanent : bool;  (** never rejoin *)
}

type config = {
  clients : int;  (** producer ranks 1..clients *)
  queue_bound : int;  (** max admitted-but-undealt jobs at the master *)
  batch : int;  (** max jobs dispatched per worker request *)
  admission : admission;
  grace : float option;
      (** failure-detector timeout: must dominate the longest batch (plus
          a round trip) and any scheduled away time. [None] disables
          detection — a worker crash then deadlocks, as in the farm. *)
  leaves : (int * leave_spec) list;  (** scheduled graceful membership *)
}

val default :
  ?clients:int ->
  ?queue_bound:int ->
  ?batch:int ->
  ?admission:admission ->
  ?grace:float ->
  ?leaves:(int * leave_spec) list ->
  unit ->
  config
(** Defaults: 1 client, bound 64, batch 4, [Block], no grace, no leaves. *)

type 'r workload = {
  arrivals : int;  (** submissions per client *)
  gap : int -> int -> float;
      (** [gap c k]: idle time client [c] (0-based) waits before its [k]-th
          submission — the arrival process, typically seeded *)
  job_of : int -> int;
      (** global submission index -> job key; submissions sharing a
          pending key coalesce into one execution *)
  run : int -> 'r;  (** job body, by key; deterministic *)
  flops : int -> int;  (** simulated cost of one job *)
}

type report = {
  submitted : int;
  accepted : int;  (** distinct jobs admitted to the queue *)
  coalesced : int;  (** submissions attached to an already-pending job *)
  rejected : int;  (** submissions shed at the bound *)
  completed : int;  (** submissions whose result was produced *)
  batches : int;
  redeals : int;  (** at-least-once re-dispatches after silence *)
  dup_results : int;  (** duplicate results dropped by key *)
  joins : int;  (** rejoins after a graceful leave *)
  leaves : int;  (** graceful leave announcements *)
  max_queue_depth : int;
  duration : float;  (** engine-clock seconds to complete all work *)
  throughput : float;  (** completed submissions per engine-clock second *)
  mean_latency : float;  (** submit-to-result seconds, exact over samples *)
  p50 : float;
  p95 : float;
  p99 : float;
  max_latency : float;
}

val run_sim :
  ?trace:Machine.Trace.t ->
  ?cost:Machine.Cost_model.t ->
  ?chaos:Machine.Chaos.spec ->
  procs:int ->
  config ->
  'r workload ->
  report * Machine.Sim.stats
(** Run the service on the simulator (deterministic; cost defaults to the
    AP1000 calibration). Latencies are simulated seconds.
    @raise Invalid_argument on malformed configs (needs master + clients +
    at least one worker, positive bound/batch, leave ranks must be
    workers).
    @raise Failure when every worker is lost with work outstanding (the
    loud-failure contract, requires [grace]). *)

val run_multicore :
  ?domains:int ->
  ?chaos:Machine.Chaos.spec ->
  procs:int ->
  config ->
  'r workload ->
  report * Machine.Multicore.stats
(** The same service for real on OCaml domains; latencies are wall-clock
    seconds. Counts (submitted/accepted/completed/...) are reproducible,
    timings are not. *)

val run_procs :
  ?chaos:Machine.Chaos.spec ->
  procs:int ->
  config ->
  'r workload ->
  report * Machine.Procs.stats
(** The same service on real OS processes ([Machine.Procs]): every rank
    is a forked process, a crashed worker is a dead PID, and the
    master's grace timeouts plus re-dealing recover for real. Job
    results must be marshalable; latencies are wall-clock seconds. Only
    callable in a process that has never created another domain (fork
    safety — see {!Machine.Procs}). *)

val report_to_json : report -> Obs.Json.t
(** Flat object, keys suffixed with units ([duration_s], [jobs_per_s],
    [p99_s], ...). *)

(** Obs integration: counters [service.submitted], [.accepted],
    [.coalesced], [.rejected], [.batches], [.redeals], [.dup_results],
    [.joins], [.leaves] and histogram [service.latency_us] are recorded
    when observability is enabled; the report's percentiles come from
    exact master-side samples either way. *)
