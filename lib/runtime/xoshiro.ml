(* Splittable xoshiro256** pseudo-random generator.

   Deterministic parallel workload generation needs a generator that can be
   split into statistically independent streams: each task derives its own
   stream from its parent, so results do not depend on scheduling order.
   State initialisation and splitting go through splitmix64, as recommended
   by the xoshiro authors. *)

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let golden_gamma = 0x9E3779B97F4A7C15L

let splitmix64_next state =
  state := Int64.add !state golden_gamma;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_seed seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64_next st in
  let s1 = splitmix64_next st in
  let s2 = splitmix64_next st in
  let s3 = splitmix64_next st in
  (* All-zero state is the one invalid state; seed 0 cannot produce it
     because splitmix64 is a bijection chain, but guard anyway. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then { s0 = 1L; s1; s2; s3 }
  else { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Derive a child stream by reseeding a splitmix chain from fresh output:
     the child state is decorrelated from the parent's subsequent outputs. *)
  let st = ref (next_int64 t) in
  let s0 = splitmix64_next st in
  let s1 = splitmix64_next st in
  let s2 = splitmix64_next st in
  let s3 = splitmix64_next st in
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then { s0 = 1L; s1; s2; s3 }
  else { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let nth_child t n =
  if n < 0 then invalid_arg "Xoshiro.nth_child: negative index";
  let parent = copy t in
  let child = ref (split parent) in
  for _ = 1 to n do
    child := split parent
  done;
  !child

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)
(* 62 non-negative bits *)

let int t bound =
  if bound <= 0 then invalid_arg "Xoshiro.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec draw () =
    let r = bits t in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then draw () else v
  in
  draw ()

let float t bound =
  let r = Int64.shift_right_logical (next_int64 t) 11 in
  (* 53 bits -> [0,1) *)
  Int64.to_float r *. (1.0 /. 9007199254740992.0) *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let int_array t ~len ~bound = Array.init len (fun _ -> int t bound)

let float_array t ~len ~bound = Array.init len (fun _ -> float t bound)
