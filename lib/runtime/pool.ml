(* Work-stealing domain pool.

   Architecture: one spawned domain per worker, each owning a Chase-Lev
   deque.  Tasks submitted from inside a worker go to its own deque (LIFO,
   depth-first, cache-friendly); tasks submitted from outside go to a shared
   injection queue.  Idle workers steal from victims chosen by a per-worker
   PRNG, then fall back to the injection queue, then sleep on a condition
   variable.  [await] never blocks the thread: it *helps* by running other
   tasks until its promise resolves, so nested fork/join cannot deadlock.

   Wakeup protocol: a submitter signals the condition variable only when the
   sleeper count is non-zero.  A worker that decides to sleep increments the
   sleeper count and re-checks for work while holding the mutex, which
   closes the lost-wakeup race (a concurrent submitter either sees the
   sleeper count and blocks on the same mutex, or published its task before
   the re-check). *)

type task = unit -> unit

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a promise = 'a state Atomic.t

(* Scheduling statistics are plain (non-atomic) fields: each is written
   only by the one domain that owns the worker, so increments are free and
   stay on even when the obs layer is disabled.  Reads (Pool.stats) are
   racy by a few events while the pool is busy; quiesce for exact values. *)
type worker = {
  wid : int;
  deque : task Ws_deque.t;
  rng : Xoshiro.t;
  mutable n_pops : int;  (* tasks taken from the own deque *)
  mutable n_steals : int;  (* tasks stolen from a victim *)
  mutable n_inject : int;  (* tasks taken from the injection queue *)
}

type t = {
  pool_id : int;
  workers : worker array;
  mutable domains : unit Domain.t array;
  inject : task Mpmc_queue.t;
  alive : bool Atomic.t;
  sleepers : int Atomic.t;
  sleep_mutex : Mutex.t;
  sleep_cond : Condition.t;
  (* Tasks found by non-worker domains (callers helping inside [await]);
     atomics because several external domains may help concurrently. *)
  ext_steals : int Atomic.t;
  ext_inject : int Atomic.t;
  submitted : int Atomic.t;  (* total tasks ever scheduled *)
  task_exceptions : int Atomic.t;  (* bare tasks that raised (promise-less) *)
}

let next_pool_id = Atomic.make 0

(* Which worker of which pool the current domain is, if any. *)
let current_worker_key : (int * worker) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let num_workers t = Array.length t.workers

let my_worker t =
  match Domain.DLS.get current_worker_key with
  | Some (pid, w) when pid = t.pool_id -> Some w
  | Some _ | None -> None

let maybe_wake t =
  if Atomic.get t.sleepers > 0 then begin
    Mutex.lock t.sleep_mutex;
    Condition.broadcast t.sleep_cond;
    Mutex.unlock t.sleep_mutex
  end

let wake_all t =
  Mutex.lock t.sleep_mutex;
  Condition.broadcast t.sleep_cond;
  Mutex.unlock t.sleep_mutex

let schedule t task =
  Atomic.incr t.submitted;
  (match my_worker t with
  | Some w -> Ws_deque.push w.deque task
  | None -> Mpmc_queue.push t.inject task);
  maybe_wake t

(* Try to obtain one runnable task.  [w] is the calling worker, if any. *)
let find_task t (w : worker option) : task option =
  let n = Array.length t.workers in
  let try_pop_own () =
    match w with
    | Some w -> (
        match Ws_deque.pop w.deque with
        | t' ->
            w.n_pops <- w.n_pops + 1;
            Some t'
        | exception Ws_deque.Empty -> None)
    | None -> None
  in
  let try_inject () =
    match Mpmc_queue.try_pop t.inject with
    | Some _ as r ->
        (match w with Some w -> w.n_inject <- w.n_inject + 1 | None -> Atomic.incr t.ext_inject);
        r
    | None -> None
  in
  let try_steal () =
    if n = 0 then None
    else begin
      let self = match w with Some w -> w.wid | None -> -1 in
      let start =
        match w with Some w -> Xoshiro.int w.rng (max 1 n) | None -> 0
      in
      let rec scan i =
        if i >= n then None
        else begin
          let victim = (start + i) mod n in
          if victim = self then scan (i + 1)
          else
            match Ws_deque.steal t.workers.(victim).deque with
            | task ->
                (match w with
                | Some w -> w.n_steals <- w.n_steals + 1
                | None -> Atomic.incr t.ext_steals);
                Some task
            | exception Ws_deque.Empty -> scan (i + 1)
        end
      in
      scan 0
    end
  in
  match try_pop_own () with
  | Some _ as r -> r
  | None -> ( match try_inject () with Some _ as r -> r | None -> try_steal ())

let has_work t =
  (not (Mpmc_queue.is_empty t.inject))
  || Array.exists (fun w -> not (Ws_deque.is_empty w.deque)) t.workers

let run_task t task =
  (* Promise-wrapped tasks capture their own exceptions ([async] stores them
     in the promise); a bare task that raises would otherwise kill its worker
     domain, so guard — but count, so the failure is visible in [stats] and
     the [pool.task_exceptions] obs counter instead of vanishing. *)
  try task ()
  with _ -> Atomic.incr t.task_exceptions

let sleep t =
  Mutex.lock t.sleep_mutex;
  Atomic.incr t.sleepers;
  if Atomic.get t.alive && not (has_work t) then Condition.wait t.sleep_cond t.sleep_mutex;
  Atomic.decr t.sleepers;
  Mutex.unlock t.sleep_mutex

let worker_loop t w () =
  Domain.DLS.set current_worker_key (Some (t.pool_id, w));
  let backoff = Backoff.create ~max_rounds:64 () in
  let rec loop () =
    if Atomic.get t.alive then begin
      match find_task t (Some w) with
      | Some task ->
          Backoff.reset backoff;
          run_task t task;
          loop ()
      | None ->
          (* Spin briefly before sleeping: tasks usually arrive in bursts. *)
          Backoff.once backoff;
          (match find_task t (Some w) with
          | Some task ->
              Backoff.reset backoff;
              run_task t task
          | None -> sleep t);
          loop ()
    end
  in
  loop ()

let create ?num_domains () =
  let n =
    match num_domains with
    | Some n ->
        if n < 0 then invalid_arg "Pool.create: num_domains must be >= 0";
        n
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let pool_id = Atomic.fetch_and_add next_pool_id 1 in
  let workers =
    Array.init n (fun wid ->
        {
          wid;
          deque = Ws_deque.create ();
          rng = Xoshiro.of_seed ((pool_id * 8191) + wid);
          n_pops = 0;
          n_steals = 0;
          n_inject = 0;
        })
  in
  let t =
    {
      pool_id;
      workers;
      domains = [||];
      inject = Mpmc_queue.create ();
      alive = Atomic.make true;
      sleepers = Atomic.make 0;
      sleep_mutex = Mutex.create ();
      sleep_cond = Condition.create ();
      ext_steals = Atomic.make 0;
      ext_inject = Atomic.make 0;
      submitted = Atomic.make 0;
      task_exceptions = Atomic.make 0;
    }
  in
  t.domains <- Array.map (fun w -> Domain.spawn (worker_loop t w)) workers;
  t

(* --- scheduling statistics -------------------------------------------- *)

type worker_stats = { tasks : int; own_pops : int; steals : int; inject_pops : int }

type stats = {
  per_worker : worker_stats array;
  external_steals : int;  (* tasks run by non-worker domains helping in await *)
  external_inject_pops : int;
  total_submitted : int;
  total_tasks : int;  (* = sum of all pops + steals + inject pops *)
  task_exceptions : int;  (* bare tasks whose exception the pool swallowed *)
}

let worker_stats_of w =
  {
    tasks = w.n_pops + w.n_steals + w.n_inject;
    own_pops = w.n_pops;
    steals = w.n_steals;
    inject_pops = w.n_inject;
  }

let stats t =
  let per_worker = Array.map worker_stats_of t.workers in
  let external_steals = Atomic.get t.ext_steals in
  let external_inject_pops = Atomic.get t.ext_inject in
  {
    per_worker;
    external_steals;
    external_inject_pops;
    total_submitted = Atomic.get t.submitted;
    total_tasks =
      Array.fold_left (fun acc ws -> acc + ws.tasks) 0 per_worker
      + external_steals + external_inject_pops;
    task_exceptions = Atomic.get t.task_exceptions;
  }

(* Global obs counters, fed when a pool is torn down (never on the hot
   path).  Registration at module init costs nothing while disabled. *)
let obs_tasks = Obs.Counter.make "pool.tasks"
let obs_steals = Obs.Counter.make "pool.steals"
let obs_inject = Obs.Counter.make "pool.inject_pops"
let obs_submitted = Obs.Counter.make "pool.submitted"
let obs_task_exceptions = Obs.Counter.make "pool.task_exceptions"

let publish_obs t =
  let s = stats t in
  Obs.Counter.add obs_tasks s.total_tasks;
  Obs.Counter.add obs_steals
    (Array.fold_left (fun acc ws -> acc + ws.steals) s.external_steals s.per_worker);
  Obs.Counter.add obs_inject
    (Array.fold_left (fun acc ws -> acc + ws.inject_pops) s.external_inject_pops s.per_worker);
  Obs.Counter.add obs_submitted s.total_submitted;
  Obs.Counter.add obs_task_exceptions s.task_exceptions

let teardown t =
  if Atomic.get t.alive then begin
    Atomic.set t.alive false;
    wake_all t;
    Array.iter Domain.join t.domains;
    t.domains <- [||];
    if Obs.enabled () then publish_obs t
  end

let async t f =
  if not (Atomic.get t.alive) then invalid_arg "Pool.async: pool is shut down";
  let p : 'a promise = Atomic.make Pending in
  let task () =
    match f () with
    | v -> Atomic.set p (Done v)
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        Atomic.set p (Failed (e, bt))
  in
  schedule t task;
  p

let rec await t p =
  match Atomic.get p with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending ->
      (match find_task t (my_worker t) with
      | Some task -> run_task t task
      | None -> Domain.cpu_relax ());
      await t p

let run t f =
  let p = async t f in
  await t p

let spawn t task =
  if not (Atomic.get t.alive) then invalid_arg "Pool.spawn: pool is shut down";
  schedule t task

(* Size-aware grain heuristic, shared by every data-parallel loop in the
   system (the loop primitives below and Exec's backend chunking).  Two
   forces: enough tasks per worker that stealing can balance uneven loads
   (TASKS_PER_WORKER), but never chunks so small that per-task scheduling
   overhead dominates the body (MIN_GRAIN) — in particular an n-element
   array smaller than MIN_GRAIN runs as a single sequential task instead of
   n per-element tasks. *)
let tasks_per_worker = 4
let min_grain = 32

let grain_for t n =
  if n <= 0 then 1
  else begin
    let w = max 1 (num_workers t) in
    let balanced = (n + (tasks_per_worker * w) - 1) / (tasks_per_worker * w) in
    max (min min_grain n) balanced
  end

(* Bytes-aware variant for unboxed (Bigarray-backed) loops.  [grain_for]'s
   32-element floor is tuned for boxed elements, where each application
   chases a pointer and the body dwarfs the scheduling overhead; an
   unboxed 8-byte float body is a handful of instructions, so the floor is
   a byte budget instead — every task touches at least MIN_GRAIN_BYTES of
   payload (2 KiB: 256 floats) before fork/join bookkeeping is allowed to
   show up.  The balance term is unchanged, so large arrays chunk exactly
   as [grain_for] does and only the small-array floor differs. *)
let min_grain_bytes = 2048

let grain_for_bytes t ~elem_bytes n =
  if n <= 0 then 1
  else begin
    let eb = max 1 elem_bytes in
    let w = max 1 (num_workers t) in
    let balanced = (n + (tasks_per_worker * w) - 1) / (tasks_per_worker * w) in
    let floor_elems = (min_grain_bytes + eb - 1) / eb in
    max (min floor_elems n) balanced
  end

let default_grain = grain_for

let parallel_for ?grain t ~lo ~hi body =
  let grain = match grain with Some g -> max 1 g | None -> default_grain t (hi - lo) in
  let rec go lo hi =
    if hi - lo <= grain then
      for i = lo to hi - 1 do
        body i
      done
    else begin
      let mid = lo + ((hi - lo) / 2) in
      let right = async t (fun () -> go mid hi) in
      go lo mid;
      await t right
    end
  in
  if hi > lo then go lo hi

let parallel_for_reduce ?grain t ~lo ~hi ~body ~combine ~init =
  let grain = match grain with Some g -> max 1 g | None -> default_grain t (hi - lo) in
  let rec go lo hi =
    if hi - lo <= grain then begin
      let acc = ref init in
      for i = lo to hi - 1 do
        acc := combine !acc (body i)
      done;
      !acc
    end
    else begin
      let mid = lo + ((hi - lo) / 2) in
      let right = async t (fun () -> go mid hi) in
      let left = go lo mid in
      combine left (await t right)
    end
  in
  if hi <= lo then init else go lo hi

let map_array ?grain t f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let first = f a.(0) in
    let out = Array.make n first in
    parallel_for ?grain t ~lo:1 ~hi:n (fun i -> out.(i) <- f a.(i));
    out
  end

let mapi_array ?grain t f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let first = f 0 a.(0) in
    let out = Array.make n first in
    parallel_for ?grain t ~lo:1 ~hi:n (fun i -> out.(i) <- f i a.(i));
    out
  end

let init_array ?grain t n f =
  if n = 0 then [||]
  else if n < 0 then invalid_arg "Pool.init_array: negative length"
  else begin
    let first = f 0 in
    let out = Array.make n first in
    parallel_for ?grain t ~lo:1 ~hi:n (fun i -> out.(i) <- f i);
    out
  end
