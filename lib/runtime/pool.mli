(** Work-stealing domain pool: fork/join futures and parallel loops.

    The pool spawns one domain per worker. {!async} from inside a worker
    pushes onto that worker's own deque; from outside it goes to a shared
    injection queue. {!await} helps (runs other tasks) instead of blocking,
    so arbitrarily nested fork/join never deadlocks. *)

type t

type 'a promise

val create : ?num_domains:int -> unit -> t
(** [create ~num_domains ()] spawns [num_domains] worker domains (default:
    [Domain.recommended_domain_count () - 1], at least 1). [num_domains = 0]
    is allowed: all work then runs in the callers' {!await} loops. *)

val teardown : t -> unit
(** Stop and join all workers. Idempotent. Submissions after teardown raise
    [Invalid_argument]. *)

val num_workers : t -> int

(** {1 Scheduling statistics}

    Counted with plain per-worker fields (single-writer, always on, free);
    reads while the pool is busy may lag by a few events. *)

type worker_stats = {
  tasks : int;  (** = own_pops + steals + inject_pops *)
  own_pops : int;  (** tasks taken from the worker's own deque *)
  steals : int;  (** tasks stolen from a victim's deque *)
  inject_pops : int;  (** tasks taken from the shared injection queue *)
}

type stats = {
  per_worker : worker_stats array;
  external_steals : int;  (** tasks run by non-worker domains helping in await *)
  external_inject_pops : int;
  total_submitted : int;
  total_tasks : int;
  task_exceptions : int;
      (** bare (promise-less) tasks that raised: the pool swallows the
          exception to keep the worker domain alive, but counts it here and
          in the [pool.task_exceptions] obs counter *)
}

val stats : t -> stats

val publish_obs : t -> unit
(** Add this pool's totals to the global obs counters ([pool.tasks],
    [pool.steals], [pool.inject_pops], [pool.submitted]). Called
    automatically by {!teardown} when observability is enabled. *)

val async : t -> (unit -> 'a) -> 'a promise
(** Submit a task; exceptions are captured and re-raised at {!await}. *)

val await : t -> 'a promise -> 'a
(** Wait for a promise, executing other pool tasks meanwhile. *)

val run : t -> (unit -> 'a) -> 'a
(** [run t f] = [await t (async t f)]. *)

val spawn : t -> (unit -> unit) -> unit
(** Fire-and-forget: submit a bare task with no promise. An exception
    raised by the task cannot be re-raised anywhere, so the pool swallows
    it to keep the worker domain alive — but counts it in
    [stats.task_exceptions] and the [pool.task_exceptions] obs counter
    rather than losing it silently. *)

val grain_for : t -> int -> int
(** [grain_for t n] is the size-aware grain heuristic shared by the loop
    primitives and the {!Scl.Exec} backend chunking: aims at ~4 tasks per
    worker for stealing balance, but never chunks below a minimum
    sequential run (32 elements), so small arrays execute as one task
    instead of paying per-element scheduling overhead. This is the default
    when [?grain] is omitted below. *)

val grain_for_bytes : t -> elem_bytes:int -> int -> int
(** [grain_for_bytes t ~elem_bytes n] is {!grain_for} with a byte-budget
    floor instead of the boxed 32-element one: chunks never shrink below
    2048 bytes of payload ([2048 / elem_bytes] elements, so 256 for 8-byte
    floats), because an unboxed loop body is a handful of instructions and
    a 32-element task would be mostly scheduling overhead. The
    load-balance term is identical to {!grain_for}, so large arrays chunk
    the same on both heuristics. Used by the flat ([Scl.Flat_exec])
    kernels. *)

val parallel_for : ?grain:int -> t -> lo:int -> hi:int -> (int -> unit) -> unit
(** Evaluate [body i] for [lo <= i < hi] in parallel by recursive halving;
    chunks of at most [grain] run sequentially. *)

val parallel_for_reduce :
  ?grain:int ->
  t ->
  lo:int ->
  hi:int ->
  body:(int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  init:'a ->
  'a
(** Parallel map-reduce over an index range. [combine] must be associative
    with identity [init] for a deterministic result. *)

val map_array : ?grain:int -> t -> ('a -> 'b) -> 'a array -> 'b array
val mapi_array : ?grain:int -> t -> (int -> 'a -> 'b) -> 'a array -> 'b array
val init_array : ?grain:int -> t -> int -> (int -> 'a) -> 'a array
