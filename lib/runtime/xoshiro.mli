(** Splittable xoshiro256** PRNG for deterministic parallel workloads.

    Unlike [Random.State], a stream can be {!split} into a statistically
    independent child stream, so parallel tasks can each own a generator
    derived deterministically from the task tree rather than from the
    scheduling order. *)

type t
(** Mutable generator state. Not thread-safe: give each domain/task its own
    (use {!split}). *)

val of_seed : int -> t
(** Deterministic state from an integer seed (expanded via splitmix64). *)

val split : t -> t
(** [split t] advances [t] and returns a fresh generator whose stream is
    independent of [t]'s subsequent output. *)

val nth_child : t -> int -> t
(** [nth_child t n] is the [n+1]-th stream split off [t], without mutating
    [t] (it works on a {!copy}). Lets a replay derive the same child a
    sequence of [n+1] {!split}s would have produced — e.g. regenerating the
    [n]-th case of a property-test run from its master seed. Raises
    [Invalid_argument] if [n < 0]. *)

val copy : t -> t
(** Snapshot of the current state. *)

val next_int64 : t -> int64
(** Raw 64 random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]; rejection-sampled, no modulo
    bias. Raises [Invalid_argument] if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)] with 53 bits of precision. *)

val bool : t -> bool

val int_array : t -> len:int -> bound:int -> int array
val float_array : t -> len:int -> bound:float -> float array
