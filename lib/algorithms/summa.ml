(* SUMMA matrix multiplication on the simulated machine: the broadcast-
   based alternative to Cannon.  Cannon's shifts are single-hop neighbour
   messages but demand the initial skew; SUMMA replaces them with q
   row/column broadcasts per round — the canonical comparison of
   "communication-skeleton choice" the ablation benchmarks report. *)

open Machine

(* One processor's SPMD program: scatter both operands over the q x q grid,
   run the Dmat SUMMA template, gather C at the root.  Engine-parametric —
   the same body runs on the simulator and on real domains. *)
let summa_program ~n (comm : Comm.t) (a : float array array) (b : float array array) :
    float array array option =
  let root = Comm.rank comm = 0 in
  let da = Scl_sim.Dmat.scatter comm ~root:0 (if root then Some a else None) ~n in
  let db = Scl_sim.Dmat.scatter comm ~root:0 (if root then Some b else None) ~n in
  let dc = Scl_sim.Dmat.summa da db in
  Scl_sim.Dmat.gather ~root:0 dc

let multiply_sim ?(cost = Cost_model.ap1000) ?trace ~grid (a : float array array)
    (b : float array array) : float array array * Sim.stats =
  let n = Array.length a in
  Array.iter (fun r -> if Array.length r <> n then invalid_arg "Summa: non-square matrix") a;
  Array.iter (fun r -> if Array.length r <> n then invalid_arg "Summa: non-square matrix") b;
  if Array.length b <> n then invalid_arg "Summa: dimension mismatch";
  if grid <= 0 || n mod grid <> 0 then invalid_arg "Summa: grid must divide the dimension";
  let q = grid in
  Sim.run_collect ?trace
    { Sim.procs = q * q; topology = Topology.Torus2d (q, q); cost }
    (fun ctx -> summa_program ~n (Comm.world (Engine.of_sim ctx)) a b)

let multiply_multicore ?domains ~grid (a : float array array) (b : float array array) :
    float array array * Multicore.stats =
  let n = Array.length a in
  Array.iter (fun r -> if Array.length r <> n then invalid_arg "Summa: non-square matrix") a;
  Array.iter (fun r -> if Array.length r <> n then invalid_arg "Summa: non-square matrix") b;
  if Array.length b <> n then invalid_arg "Summa: dimension mismatch";
  if grid <= 0 || n mod grid <> 0 then invalid_arg "Summa: grid must divide the dimension";
  let q = grid in
  Multicore.run_collect ?domains ~topology:(Topology.Torus2d (q, q)) ~procs:(q * q)
    (fun eng -> summa_program ~n (Comm.world eng) a b)
