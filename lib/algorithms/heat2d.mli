(** 2-D Poisson (−Δu = f, zero Dirichlet boundary) by Jacobi relaxation —
    the 2-D stencil workload: [row_col_block] partitioning with
    [rotate_row]/[rotate_col] halo movement on the host, and Dmat halo
    exchange on the simulated torus. *)

open Machine

type result = { solution : float array array; iterations : int; final_diff : float }

val solve_seq : ?tol:float -> ?max_iter:int -> float array array -> result
(** Sequential reference on the n×n interior grid. *)

val solve_scl :
  ?exec:Scl.Exec.t -> ?grid:int -> ?tol:float -> ?max_iter:int -> float array array -> result
(** Host-SCL rendering on a [grid × grid] block decomposition; iteration
    counts match {!solve_seq} exactly.
    @raise Invalid_argument unless [grid] divides the dimension. *)

val solve_sim :
  ?cost:Cost_model.t ->
  ?trace:Trace.t ->
  ?tol:float ->
  ?max_iter:int ->
  procs:int ->
  float array array ->
  result * Sim.stats
(** Simulator rendering ([procs] must be a perfect square whose side
    divides the dimension): halo exchange + stencil sweep + allreduce per
    iteration. *)

val solve_multicore :
  ?domains:int -> ?tol:float -> ?max_iter:int -> procs:int -> float array array -> result * Multicore.stats
(** The same SPMD program on real OCaml 5 domains; identical solution and
    iteration count to {!solve_sim}. *)

val manufactured_f : int -> float array array
(** f = 2π² sin(πx) sin(πy), whose exact solution is
    {!manufactured_u}. *)

val manufactured_u : int -> int -> int -> float
(** u(i,j) = sin(πx_i) sin(πy_j). *)

(** {1 Flat tier}

    Row-band decomposition of the grid flattened into unboxed [Scl.Flat]
    storage: each sweep's halo is ONE whole-row bulk message per
    neighbour (versus four strided edge messages per block on the Dmat
    path). Solutions and iteration counts are bitwise-identical to the
    boxed variants. Works for any [procs] (not just perfect squares). *)

val solve_sim_flat :
  ?cost:Cost_model.t ->
  ?trace:Trace.t ->
  ?tol:float ->
  ?max_iter:int ->
  procs:int ->
  float array array ->
  result * Sim.stats

val solve_multicore_flat :
  ?domains:int ->
  ?tol:float ->
  ?max_iter:int ->
  procs:int ->
  float array array ->
  result * Multicore.stats
