(* Parallel linear solver — the paper's first Section 3 example: Gauss–
   Jordan elimination with partial pivoting, columns distributed, the main
   loop written with iterFor, each step a map UPDATE over an
   applybrdcast PARTIALPIVOT — plus the simulator rendering and checks
   against the sequential baseline.

   The system is carried as the augmented matrix (A | b) stored column-wise
   (n + 1 columns of length n); after n elimination steps A becomes the
   identity and the b-column is the solution. *)

open Scl

(* Augmented column-wise representation. *)
let augment (a : float array array) (b : float array) : float array array =
  let n = Array.length a in
  Array.iter (fun r -> if Array.length r <> n then invalid_arg "Gauss: non-square matrix") a;
  if Array.length b <> n then invalid_arg "Gauss: rhs length mismatch";
  Array.init (n + 1) (fun j -> if j = n then Array.copy b else Array.init n (fun i -> a.(i).(j)))

(* --- host-SCL version (paper Section 3) --------------------------------- *)

let solve_scl ?(exec = Exec.sequential) ?(parts = 4) (a : float array array) (b : float array) :
    float array =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let cols = augment a b in
    let pat = Partition.Block parts in
    let da = Partition.apply pat cols in
    (* Global column i lives in part [owner] at local offset [local_ix]
       (block pattern: offset = i - block start). *)
    let owner i = Partition.assign pat ~n:(n + 1) i in
    let bounds = Scl_sim.Dvec.block_bounds ~total:(n + 1) ~parts:parts in
    let local_ix i = i - bounds.(owner i) in
    let elim_pivot i x =
      (* applybrdcast (PARTIALPIVOT i): the owning processor computes the
         pivot info from its copy of column i and broadcasts it. *)
      let info_of chunk = Seq_kernels.make_pivot_info ~row:i chunk.(local_ix i) in
      let pivoted = Communication.applybrdcast ~exec info_of (owner i) x in
      (* map (UPDATE i): all processors update all their columns. *)
      Elementary.map ~exec
        (fun (info, chunk) -> Array.map (Seq_kernels.update ~row:i info) chunk)
        pivoted
    in
    let final = Computational.iter_for n elim_pivot da in
    let cols' = Config.gather pat final in
    cols'.(n)
  end

(* --- simulated distributed-memory version -------------------------------- *)

open Machine

let gauss_program (cols : float array array option) (comm : Comm.t) : float array option =
  let p = Comm.size comm in
  let n_plus_1 = Comm.bcast comm ~root:0 (Option.map Array.length cols) in
  let n = n_plus_1 - 1 in
  (* Block-distribute the n+1 columns. *)
  let bounds = Scl_sim.Dvec.block_bounds ~total:n_plus_1 ~parts:p in
  let me = Comm.rank comm in
  let chunks =
    Option.map
      (fun cs -> Array.init p (fun k -> Array.sub cs bounds.(k) (bounds.(k + 1) - bounds.(k))))
      cols
  in
  let mine = ref (Comm.scatter comm ~root:0 chunks) in
  let my_lo = bounds.(me) in
  let owner g = Scl_sim.Dvec.owner_of ~total:n_plus_1 ~parts:p g in
  for i = 0 to n - 1 do
    (* PARTIALPIVOT at the owner of column i, broadcast of the pivot info. *)
    let o = owner i in
    let info =
      if me = o then begin
        Comm.work_flops comm (Scl_sim.Kernels.partial_pivot_flops (n - i));
        Some (Seq_kernels.make_pivot_info ~row:i !mine.(i - bounds.(o)))
      end
      else None
    in
    let info = Comm.bcast comm ~root:o info in
    (* UPDATE every local column. *)
    Comm.work_flops comm (Array.length !mine * Scl_sim.Kernels.column_update_flops n);
    mine := Array.map (Seq_kernels.update ~row:i info) !mine
  done;
  ignore my_lo;
  (* The solution is the last column; its owner sends it to the root. *)
  let last_owner = owner n in
  if me = last_owner then begin
    let x = !mine.(n - bounds.(last_owner)) in
    if last_owner = 0 then Some x
    else begin
      Comm.send comm ~dest:0 x;
      None
    end
  end
  else if me = 0 then Some (Comm.recv comm ~src:last_owner ())
  else None

let solve_sim ?(cost = Cost_model.ap1000) ?trace ~procs (a : float array array)
    (b : float array) : float array * Sim.stats =
  if Array.length a = 0 then invalid_arg "Gauss.solve_sim: empty system";
  let cols = augment a b in
  Scl_sim.Spmd.run_collect ?trace ~cost ~procs (fun comm ->
      gauss_program (if Comm.rank comm = 0 then Some cols else None) comm)

(* Well-conditioned random test systems: diagonally dominant matrices. *)
let random_system ~seed n : float array array * float array =
  let rng = Runtime.Xoshiro.of_seed seed in
  let a =
    Array.init n (fun i ->
        Array.init n (fun j ->
            let v = Runtime.Xoshiro.float rng 2.0 -. 1.0 in
            if i = j then v +. (float_of_int n *. 2.0) else v))
  in
  let b = Array.init n (fun _ -> Runtime.Xoshiro.float rng 10.0 -. 5.0) in
  (a, b)
