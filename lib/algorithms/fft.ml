(* Fast Fourier transform as a pure skeleton program: the bit-reversal
   permutation is a [send_one], each of the log n butterfly stages is a
   [fetch] across the xor-partner (exactly a hypercube dimension exchange)
   followed by an elementwise [imap] — the communication structure is the
   same as hyperquicksort's, which is why the hypercube was the natural
   home for both.

   Host rendering over ParArrays and a simulator rendering over Dvec; both
   are verified against a naive O(n^2) DFT. *)

open Scl

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2_exact = Machine.Topology.log2_exact

(* Reverse the low [bits] bits of [i]. *)
let bit_reverse ~bits i =
  let r = ref 0 in
  for b = 0 to bits - 1 do
    if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
  done;
  !r

let twiddle ~inverse ~span j =
  (* exp(-+ 2 pi i j / (2 * span)) *)
  let sign = if inverse then 1.0 else -1.0 in
  let angle = sign *. Float.pi *. float_of_int j /. float_of_int span in
  { Complex.re = cos angle; im = sin angle }

(* The stage-s butterfly for global index [i], given the partner value
   (from [i lxor span]). *)
let butterfly ~inverse ~span i (x : Complex.t) (partner : Complex.t) : Complex.t =
  let j = i land (span - 1) in
  let w = twiddle ~inverse ~span j in
  if i land span = 0 then Complex.add x (Complex.mul w partner)
  else Complex.sub partner (Complex.mul w x)

let check_length name n =
  if not (is_power_of_two n) then
    invalid_arg (name ^ ": length must be a positive power of two")

(* --- host-SCL rendering ------------------------------------------------------ *)

let fft_scl ?(exec = Exec.sequential) ?(inverse = false) (a : Complex.t array) :
    Complex.t array =
  let n = Array.length a in
  if n <= 1 then Array.copy a
  else begin
    check_length "Fft.fft_scl" n;
    let bits = log2_exact n in
    (* bit-reversal: a permutation send *)
    let x = Communication.send_one ~exec (bit_reverse ~bits) (Par_array.of_array a) in
    let stage s x =
      let span = 1 lsl s in
      let partner = Communication.fetch ~exec (fun i -> i lxor span) x in
      Elementary.imap ~exec
        (fun i (xi, pi) -> butterfly ~inverse ~span i xi pi)
        (Config.align x partner)
    in
    let x = Computational.iter_for bits (fun s x -> stage s x) x in
    let x = Par_array.to_array x in
    if inverse then Array.map (fun c -> Complex.div c { re = float_of_int n; im = 0.0 }) x
    else x
  end

let ifft_scl ?exec a = fft_scl ?exec ~inverse:true a

(* --- naive DFT reference ------------------------------------------------------ *)

let dft_naive ?(inverse = false) (a : Complex.t array) : Complex.t array =
  let n = Array.length a in
  let sign = if inverse then 1.0 else -1.0 in
  let out =
    Array.init n (fun k ->
        let acc = ref Complex.zero in
        for t = 0 to n - 1 do
          let angle = sign *. 2.0 *. Float.pi *. float_of_int (k * t) /. float_of_int n in
          acc := Complex.add !acc (Complex.mul a.(t) { re = cos angle; im = sin angle })
        done;
        !acc)
  in
  if inverse then Array.map (fun c -> Complex.div c { re = float_of_int n; im = 0.0 }) out
  else out

(* --- simulator rendering ------------------------------------------------------ *)

open Machine

let flops_per_butterfly = 10

let fft_program ?(inverse = false) (a : Complex.t array option) (comm : Comm.t) :
    Complex.t array option =
  let dv = Scl_sim.Dvec.scatter comm ~root:0 a in
  let n = Scl_sim.Dvec.total dv in
  if n <= 1 then Scl_sim.Dvec.gather ~root:0 dv
  else begin
    let bits = log2_exact n in
    (* bit-reversal permutation: bit_reverse is an involution, so fetch with
       the same function realises the send *)
    let x = ref (Scl_sim.Dvec.fetch (bit_reverse ~bits) dv) in
    for s = 0 to bits - 1 do
      let span = 1 lsl s in
      let partner = Scl_sim.Dvec.fetch (fun i -> i lxor span) !x in
      Comm.work_flops comm (flops_per_butterfly * Scl_sim.Dvec.local_length !x);
      x :=
        Scl_sim.Dvec.imap ~flops_per_elem:0
          (fun i (xi, pi) -> butterfly ~inverse ~span i xi pi)
          (Scl_sim.Dvec.zip !x partner)
    done;
    let scale =
      if inverse then
        Scl_sim.Dvec.map ~flops_per_elem:2
          (fun c -> Complex.div c { Complex.re = float_of_int n; im = 0.0 })
          !x
      else !x
    in
    Scl_sim.Dvec.gather ~root:0 scale
  end

let fft_sim ?(cost = Cost_model.ap1000) ?trace ?(inverse = false) ~procs
    (a : Complex.t array) : Complex.t array * Sim.stats =
  check_length "Fft.fft_sim" (max 1 (Array.length a));
  Scl_sim.Spmd.run_collect ?trace ~cost ~procs (fun comm ->
      fft_program ~inverse (if Comm.rank comm = 0 then Some a else None) comm)

(* --- helpers for tests and demos ----------------------------------------------- *)

let complex_close (a : Complex.t array) (b : Complex.t array) ~eps =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Float.abs (x.Complex.re -. y.Complex.re) < eps && Float.abs (x.im -. y.im) < eps)
       a b

let random_signal ~seed n : Complex.t array =
  let rng = Runtime.Xoshiro.of_seed seed in
  Array.init n (fun _ ->
      { Complex.re = Runtime.Xoshiro.float rng 2.0 -. 1.0; im = Runtime.Xoshiro.float rng 2.0 -. 1.0 })
