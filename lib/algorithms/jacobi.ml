(* Jacobi relaxation for the 1-D Poisson problem -u'' = f with Dirichlet
   boundary values — the iterUntil skeleton's natural workload: iterate a
   data-parallel stencil until the update norm drops below a tolerance.

   Host rendering: chunked ParArray, halo exchange via the rotate skeleton,
   convergence via fold max, control flow via iter_until.
   Simulator rendering: block rows with neighbour messages and an
   allreduce of the residual. *)

open Scl

type result = { solution : float array; iterations : int; final_diff : float }

let h2 n = 1.0 /. (float_of_int (n + 1) ** 2.0)

(* Sequential reference. *)
let solve_seq ?(tol = 1e-8) ?(max_iter = 100_000) (f : float array) ~(left : float)
    ~(right : float) : result =
  let n = Array.length f in
  let u = ref (Array.make n 0.0) in
  let hh = h2 n in
  let rec go it =
    if it >= max_iter then (it, 0.0)
    else begin
      let old = !u in
      let next =
        Array.init n (fun j ->
            let lo = if j = 0 then left else old.(j - 1) in
            let hi = if j = n - 1 then right else old.(j + 1) in
            0.5 *. (lo +. hi +. (hh *. f.(j))))
      in
      let diff = ref 0.0 in
      for j = 0 to n - 1 do
        diff := Float.max !diff (Float.abs (next.(j) -. old.(j)))
      done;
      u := next;
      if !diff < tol then (it + 1, !diff) else go (it + 1)
    end
  in
  let iterations, final_diff = go 0 in
  { solution = !u; iterations; final_diff }

(* --- host-SCL version -------------------------------------------------------- *)

let solve_scl ?(exec = Exec.sequential) ?(parts = 4) ?(tol = 1e-8) ?(max_iter = 100_000)
    (f : float array) ~(left : float) ~(right : float) : result =
  let n = Array.length f in
  if n = 0 then { solution = [||]; iterations = 0; final_diff = 0.0 }
  else begin
    let parts = max 1 (min parts n) in
    let pat = Partition.Block parts in
    let hh = h2 n in
    let fs = Partition.apply pat f in
    let u0 = Partition.apply pat (Array.make n 0.0) in
    let step (u, _diff) =
      (* Halo exchange: each chunk needs the last element of its left
         neighbour and the first element of its right neighbour — two
         rotations of the boundary values. *)
      let lasts = Elementary.map ~exec (fun c -> c.(Array.length c - 1)) u in
      let firsts = Elementary.map ~exec (fun c -> c.(0)) u in
      let from_left = Communication.rotate ~exec (-1) lasts in
      let from_right = Communication.rotate ~exec 1 firsts in
      let halos = Config.align from_left from_right in
      let zipped = Config.align (Config.align u fs) halos in
      let updated =
        Elementary.imap ~exec
          (fun pi ((c, fc), (hl, hr)) ->
            let len = Array.length c in
            Array.init len (fun j ->
                let lo = if j > 0 then c.(j - 1) else if pi = 0 then left else hl in
                let hi =
                  if j < len - 1 then c.(j + 1) else if pi = parts - 1 then right else hr
                in
                0.5 *. (lo +. hi +. (hh *. fc.(j)))))
          zipped
      in
      let diffs =
        Elementary.zip_with ~exec
          (fun c c' ->
            let d = ref 0.0 in
            for j = 0 to Array.length c - 1 do
              d := Float.max !d (Float.abs (c.(j) -. c'.(j)))
            done;
            !d)
          u updated
      in
      (updated, Elementary.fold ~exec Float.max diffs)
    in
    let counted (u, diff, it) =
      let u', d = step (u, diff) in
      (u', d, it + 1)
    in
    let u, final_diff, iterations =
      Computational.iter_until counted Fun.id
        (fun (_, diff, it) -> diff < tol || it >= max_iter)
        (u0, Float.infinity, 0)
    in
    { solution = Config.gather pat u; iterations; final_diff }
  end

(* --- simulator version -------------------------------------------------------- *)

open Machine

let jacobi_program ?(tol = 1e-8) ?(max_iter = 100_000) (f : float array option) ~left ~right
    (comm : Comm.t) : result option =
  let p = Comm.size comm in
  let me = Comm.rank comm in
  let fv = Scl_sim.Dvec.scatter comm ~root:0 f in
  let n = Scl_sim.Dvec.total fv in
  let hh = h2 n in
  let floc = Scl_sim.Dvec.local fv in
  let ln = Array.length floc in
  (* Neighbours in block order, skipping ranks that own no elements. *)
  let has_left = Scl_sim.Dvec.offset fv > 0 in
  let has_right = Scl_sim.Dvec.offset fv + ln < n in
  (* One relaxation sweep: halo exchange, stencil update, local residual —
     the step function of the distributed iterUntil skeleton. *)
  let step _i (u : float array) =
    let hl = ref left and hr = ref right in
    if ln > 0 then begin
      if has_left then Comm.send comm ~dest:(me - 1) u.(0);
      if has_right then Comm.send comm ~dest:(me + 1) u.(ln - 1);
      if has_left then hl := Comm.recv comm ~src:(me - 1) ();
      if has_right then hr := Comm.recv comm ~src:(me + 1) ()
    end;
    Comm.work_flops comm (Scl_sim.Kernels.stencil_flops ln);
    let next =
      Array.init ln (fun j ->
          let lo = if j > 0 then u.(j - 1) else !hl in
          let hi = if j < ln - 1 then u.(j + 1) else !hr in
          0.5 *. (lo +. hi +. (hh *. floc.(j))))
    in
    let d = ref 0.0 in
    for j = 0 to ln - 1 do
      d := Float.max !d (Float.abs (next.(j) -. u.(j)))
    done;
    (next, !d)
  in
  let conv =
    if n = 0 then { Scl_sim.Control.state = [||]; iterations = 0; final_residual = 0.0 }
    else Scl_sim.Control.iter_until_conv comm ~max_iter ~tol ~step (Array.make ln 0.0)
  in
  ignore p;
  let gathered = Scl_sim.Dvec.gather ~root:0 (Scl_sim.Dvec.of_local comm conv.state) in
  Option.map
    (fun solution ->
      { solution; iterations = conv.iterations; final_diff = conv.final_residual })
    gathered

let solve_sim ?(cost = Cost_model.ap1000) ?trace ?(tol = 1e-8) ?(max_iter = 100_000) ~procs
    (f : float array) ~left ~right : result * Sim.stats =
  Scl_sim.Spmd.run_collect ?trace ~cost ~procs (fun comm ->
      jacobi_program ~tol ~max_iter (if Comm.rank comm = 0 then Some f else None) ~left ~right comm)

let solve_multicore ?domains ?(tol = 1e-8) ?(max_iter = 100_000) ~procs (f : float array)
    ~left ~right : result * Multicore.stats =
  Scl_sim.Spmd.run_multicore_collect ?domains ~procs (fun comm ->
      jacobi_program ~tol ~max_iter (if Comm.rank comm = 0 then Some f else None) ~left ~right comm)

(* --- flat-tier version ---------------------------------------------------------
   The same SPMD program over unboxed [Scl.Flat] chunks: halos travel as
   1-element bulk slices (zero-copy windows on the multicore engine,
   8-byte priced messages on the simulator), and the chunk itself is
   GC-invisible Bigarray storage.  Every float expression mirrors
   [jacobi_program] exactly — same block geometry, same stencil order,
   same [Float.max] residual — so solutions and iteration counts are
   bitwise-identical to the boxed oracle on either engine. *)

let jacobi_flat_program ?(tol = 1e-8) ?(max_iter = 100_000) (f : float array option) ~left
    ~right (comm : Comm.t) : result option =
  let me = Comm.rank comm in
  let fv = Scl_sim.Fvec.scatter comm ~root:0 (Option.map Flat.of_float_array f) in
  let n = Scl_sim.Fvec.total fv in
  let hh = h2 n in
  let floc = Scl_sim.Fvec.local fv in
  let ln = Flat.length floc in
  let has_left = Scl_sim.Fvec.offset fv > 0 in
  let has_right = Scl_sim.Fvec.offset fv + ln < n in
  let step _i (u : Flat.float1) =
    let hl = ref left and hr = ref right in
    if ln > 0 then begin
      (* [u] is never mutated (each sweep builds a fresh buffer), so the
         zero-copy windows stay valid for the receiver's read *)
      if has_left then Comm.send_slice comm ~dest:(me - 1) (Flat.sub_view u ~pos:0 ~len:1);
      if has_right then
        Comm.send_slice comm ~dest:(me + 1) (Flat.sub_view u ~pos:(ln - 1) ~len:1);
      if has_left then hl := Flat.get (Comm.recv_slice comm ~src:(me - 1) ()) 0;
      if has_right then hr := Flat.get (Comm.recv_slice comm ~src:(me + 1) ()) 0
    end;
    Comm.work_flops comm (Scl_sim.Kernels.stencil_flops ln);
    let next =
      Flat.init Flat.float64 ln (fun j ->
          let lo = if j > 0 then Flat.get u (j - 1) else !hl in
          let hi = if j < ln - 1 then Flat.get u (j + 1) else !hr in
          0.5 *. (lo +. hi +. (hh *. Flat.get floc j)))
    in
    let d = ref 0.0 in
    for j = 0 to ln - 1 do
      d := Float.max !d (Float.abs (Flat.get next j -. Flat.get u j))
    done;
    (next, !d)
  in
  let conv =
    if n = 0 then
      { Scl_sim.Control.state = Flat.create Flat.float64 0; iterations = 0; final_residual = 0.0 }
    else Scl_sim.Control.iter_until_conv comm ~max_iter ~tol ~step (Flat.make Flat.float64 ln 0.0)
  in
  let gathered = Scl_sim.Fvec.gather ~root:0 (Scl_sim.Fvec.of_local comm conv.state) in
  Option.map
    (fun solution ->
      {
        solution = Flat.to_float_array solution;
        iterations = conv.iterations;
        final_diff = conv.final_residual;
      })
    gathered

let solve_sim_flat ?(cost = Cost_model.ap1000) ?trace ?(tol = 1e-8) ?(max_iter = 100_000)
    ~procs (f : float array) ~left ~right : result * Sim.stats =
  Scl_sim.Spmd.run_collect ?trace ~cost ~procs (fun comm ->
      jacobi_flat_program ~tol ~max_iter
        (if Comm.rank comm = 0 then Some f else None)
        ~left ~right comm)

let solve_multicore_flat ?domains ?(tol = 1e-8) ?(max_iter = 100_000) ~procs (f : float array)
    ~left ~right : result * Multicore.stats =
  Scl_sim.Spmd.run_multicore_collect ?domains ~procs (fun comm ->
      jacobi_flat_program ~tol ~max_iter
        (if Comm.rank comm = 0 then Some f else None)
        ~left ~right comm)
