(** Hyperquicksort (paper Section 3, second example; evaluation Section 5)
    in three renderings whose outputs are identical:

    - {!sort_recursive}: the Section 3 divide-and-conquer SCL program
      (nested parallelism via split/combine, applybrdcast pivot spread,
      fetch exchange);
    - {!sort_flat}: the Section 5 flattened iterative SPMD program — the
      output of the flattening transformation;
    - {!sort_sim}: the simulator rendering that regenerates Table 1 and
      Figure 3 on the AP1000 cost model.

    Robustness beyond the paper: when a group leader is empty the pivot
    comes from the first non-empty member; an entirely empty group skips
    its exchange. *)

open Machine

val sort_recursive : ?exec:Scl.Exec.t -> dims:int -> int array -> int array
(** Sort on a [2^dims]-processor virtual hypercube (host execution).
    @raise Invalid_argument on negative [dims]. *)

val sort_flat : ?exec:Scl.Exec.t -> dims:int -> int array -> int array
(** The flattened iterative form; extensionally equal to
    {!sort_recursive}. *)

val sort_sim :
  ?cost:Cost_model.t ->
  ?trace:Trace.t ->
  ?topology:Topology.t ->
  procs:int ->
  int array ->
  int array * Sim.stats
(** Simulated distributed-memory run; [procs] must be a power of two (the
    algorithm's exchange pattern is a hypercube; [topology] — default
    [Hypercube] — only reprices the hops, e.g. when embedding the cube in a
    physical mesh or torus). Default cost model: AP1000. *)

val sort_multicore :
  ?domains:int -> procs:int -> int array -> int array * Multicore.stats
(** The same SPMD program body as {!sort_sim}, executed for real on OCaml 5
    domains ([Machine.Multicore]): identical output, wall-clock stats.
    [procs] must be a power of two. *)

val sort_procs : procs:int -> int array -> int array * Procs.stats
(** The same SPMD program body on real OS processes ([Machine.Procs]):
    forked ranks, marshalled exchanges over Unix-domain sockets,
    identical output to both other engines. [procs] must be a power of
    two. *)

val sort_sim_flatint :
  ?cost:Cost_model.t ->
  ?trace:Trace.t ->
  ?topology:Topology.t ->
  procs:int ->
  int array ->
  int array * Sim.stats
(** {!sort_sim} with the local phases (sort, split, merge) on the unboxed
    int flat tier ([Scl.Flat.Int]): in-place local sort and zero-copy
    split views. Output and flops charges are identical to {!sort_sim};
    messages stay boxed at the exchange boundary (the slice tier is
    float64-only). *)

val sort_multicore_flatint :
  ?domains:int -> procs:int -> int array -> int array * Multicore.stats
(** The flat-int program body on real domains; identical output to
    {!sort_multicore}. *)

val sort_sim_traced :
  ?cost:Cost_model.t -> procs:int -> int array -> int array * Sim.stats * (float * int * string) list
(** Like {!sort_sim} with per-stage trace notes — regenerates the paper's
    Figure 2. *)
