(* Sample sort (PSRS — parallel sorting by regular sampling): the era's
   strongest practical hypercube-independent parallel sort, implemented as
   the baseline the paper's "compares well with the best speedup available
   for this problem" remark appeals to.

   Host rendering with SCL skeletons; simulator rendering with one
   all-to-all bucket exchange. *)

open Scl

(* Regular samples: p values at stride len/p from a sorted chunk. *)
let regular_samples p (sorted : int array) : int array =
  let n = Array.length sorted in
  if n = 0 then [||]
  else Array.init p (fun k -> sorted.(min (n - 1) (k * n / p)))

(* Splitters: sort the gathered samples, take every p-th. *)
let choose_splitters p (samples : int array) : int array =
  let s = Seq_kernels.quicksort samples in
  let m = Array.length s in
  (* No samples means no data anywhere: any splitters partition the empty
     input, but the bucket count must still be p. *)
  if m = 0 then Array.make (max 0 (p - 1)) 0
  else Array.init (p - 1) (fun k -> s.(min (m - 1) ((k + 1) * m / p)))

(* Cut a sorted chunk into p buckets by the splitters. *)
let bucketize (splitters : int array) (sorted : int array) : int array array =
  let p = Array.length splitters + 1 in
  let rest = ref sorted in
  let out = Array.make p [||] in
  for k = 0 to p - 2 do
    let lo, hi = Seq_kernels.split_at splitters.(k) !rest in
    out.(k) <- lo;
    rest := hi
  done;
  out.(p - 1) <- !rest;
  out

(* --- host-SCL version -------------------------------------------------------- *)

let sort_scl ?(exec = Exec.sequential) ~parts (a : int array) : int array =
  if parts <= 0 then invalid_arg "Sample_sort.sort_scl: parts must be positive";
  let p = parts in
  (* 1. partition + local sort (farm of SEQ_QUICKSORT) *)
  let sorted = Elementary.map ~exec Seq_kernels.quicksort (Partition.apply (Partition.Block p) a) in
  (* 2. regular sampling, gathered at the conceptual root *)
  let samples =
    Array.concat (Par_array.to_list (Elementary.map ~exec (regular_samples p) sorted))
  in
  let splitters = choose_splitters p samples in
  (* 3. bucket exchange: an all-to-all at configuration level *)
  let buckets = Elementary.map ~exec (bucketize splitters) sorted in
  let exchanged =
    Par_array.init p (fun dest ->
        Array.concat (List.map (fun src -> (Par_array.get buckets src).(dest)) (List.init p Fun.id)))
  in
  (* 4. local merge (resort of the received, already-mostly-sorted runs) *)
  let final = Elementary.map ~exec Seq_kernels.quicksort exchanged in
  Array.concat (Par_array.to_list final)

(* --- simulator version -------------------------------------------------------- *)

open Machine

let psrs_program (data : int array option) (comm : Comm.t) : int array option =
  let p = Comm.size comm in
  let dv = Scl_sim.Dvec.scatter comm ~root:0 data in
  let sorted = Seq_kernels.quicksort (Scl_sim.Dvec.local dv) in
  Comm.work_flops comm (Scl_sim.Kernels.sort_flops (Array.length sorted));
  (* samples to root, splitters back *)
  let samples = regular_samples p sorted in
  let gathered = Comm.gather comm ~root:0 samples in
  let splitters =
    Comm.bcast comm ~root:0
      (Option.map
         (fun chunks ->
           let all = Array.concat (Array.to_list chunks) in
           Comm.work_flops comm (Scl_sim.Kernels.sort_flops (Array.length all));
           choose_splitters p all)
         gathered)
  in
  Comm.work_flops comm (Scl_sim.Kernels.binary_search_flops (Array.length sorted) * p);
  let buckets = bucketize splitters sorted in
  let received = Comm.alltoall comm buckets in
  let mine = Array.concat (Array.to_list received) in
  Comm.work_flops comm (Scl_sim.Kernels.sort_flops (Array.length mine));
  let mine = Seq_kernels.quicksort mine in
  Comm.gather comm ~root:0 mine |> Option.map (fun chunks -> Array.concat (Array.to_list chunks))

let sort_sim ?(cost = Cost_model.ap1000) ?trace ~procs (data : int array) :
    int array * Sim.stats =
  Scl_sim.Spmd.run_collect ?trace ~cost ~procs (fun comm ->
      psrs_program (if Comm.rank comm = 0 then Some data else None) comm)
