(* Parallel histogram — the natural workload for the paper's irregular
   [send] skeleton: every value is routed to the processor owning its
   bucket (many-to-one communication), and each site reduces its arrivals
   locally.

   Host rendering: Communication.send over a ParArray of values.
   Simulator rendering: Dvec.send with priced all-to-all traffic. *)

open Scl

let check_args ~buckets ~lo ~hi =
  if buckets <= 0 then invalid_arg "Histogram: buckets must be positive";
  if not (hi > lo) then invalid_arg "Histogram: need hi > lo"

(* Which bucket a value falls into; values outside [lo, hi) clamp to the
   end buckets. *)
let bucket_of ~buckets ~lo ~hi (x : float) : int =
  let f = (x -. lo) /. (hi -. lo) in
  let b = int_of_float (f *. float_of_int buckets) in
  max 0 (min (buckets - 1) b)

(* Sequential reference. *)
let histogram_seq ~buckets ~lo ~hi (xs : float array) : int array =
  check_args ~buckets ~lo ~hi;
  let out = Array.make buckets 0 in
  Array.iter (fun x ->
      let b = bucket_of ~buckets ~lo ~hi x in
      out.(b) <- out.(b) + 1)
    xs;
  out

(* --- host-SCL version: one virtual processor per bucket ------------------- *)

let histogram_scl ?(exec = Exec.sequential) ~buckets ~lo ~hi (xs : float array) : int array =
  check_args ~buckets ~lo ~hi;
  if Array.length xs = 0 then Array.make buckets 0
  else begin
    (* Pad the value array to the bucket count so indices line up: the send
       skeleton routes within one ParArray length. *)
    let n = max buckets (Array.length xs) in
    let padded = Par_array.init n (fun i -> if i < Array.length xs then Some xs.(i) else None) in
    let route k =
      match Par_array.get padded k with
      | Some x -> [ bucket_of ~buckets ~lo ~hi x ]
      | None -> []
    in
    let delivered = Communication.send ~exec route padded in
    let counts = Elementary.map ~exec Array.length delivered in
    Array.sub (Par_array.to_array counts) 0 buckets
  end

(* --- simulator version ------------------------------------------------------ *)

open Machine

let histogram_program ~buckets ~lo ~hi (xs : float array option) (comm : Comm.t) :
    int array option =
  let p = Comm.size comm in
  let dv = Scl_sim.Dvec.scatter comm ~root:0 xs in
  (* Bucket ownership is block-distributed over the processors. *)
  let owner b = Scl_sim.Dvec.owner_of ~total:buckets ~parts:p b in
  let local = Scl_sim.Dvec.local dv in
  Comm.work_flops comm (3 * Array.length local);
  (* Count locally per bucket first (the standard combining optimisation),
     then route each partial count to the bucket's owner. *)
  let partial = Hashtbl.create 64 in
  Array.iter
    (fun x ->
      let b = bucket_of ~buckets ~lo ~hi x in
      Hashtbl.replace partial b (1 + Option.value ~default:0 (Hashtbl.find_opt partial b)))
    local;
  let outgoing = Array.make p [] in
  Hashtbl.iter (fun b c -> outgoing.(owner b) <- (b, c) :: outgoing.(owner b)) partial;
  let incoming = Comm.alltoall comm (Array.map Array.of_list outgoing) in
  let bounds = Scl_sim.Dvec.block_bounds ~total:buckets ~parts:p in
  let me = Comm.rank comm in
  let mine = Array.make (bounds.(me + 1) - bounds.(me)) 0 in
  Array.iter
    (Array.iter (fun (b, c) -> mine.(b - bounds.(me)) <- mine.(b - bounds.(me)) + c))
    incoming;
  Comm.work_flops comm (Array.length mine);
  Scl_sim.Dvec.gather ~root:0 (Scl_sim.Dvec.of_local comm mine)

let histogram_sim ?(cost = Cost_model.ap1000) ?trace ~procs ~buckets ~lo ~hi
    (xs : float array) : int array * Sim.stats =
  check_args ~buckets ~lo ~hi;
  Scl_sim.Spmd.run_collect ?trace ~cost ~procs (fun comm ->
      histogram_program ~buckets ~lo ~hi (if Comm.rank comm = 0 then Some xs else None) comm)
