(* Line of sight — the classic scan application (Blelloch's motivating
   example for parallel prefix): an observer at the origin of a terrain
   profile sees point i iff the viewing angle to i exceeds every angle
   before it.  One exclusive max-scan of the angles answers all points at
   once. *)

open Scl

(* Viewing angle from the observer (index 0, at [observer_height]) to point
   i at terrain height h. *)
let angle ~observer_height i h =
  if i = 0 then Float.neg_infinity
  else atan2 (h -. observer_height) (float_of_int i)

(* Sequential reference. *)
let visible_seq ?(observer_height = 0.0) (terrain : float array) : bool array =
  let n = Array.length terrain in
  if n = 0 then [||]
  else begin
    let best = ref Float.neg_infinity in
    Array.init n (fun i ->
        if i = 0 then true
        else begin
          let a = angle ~observer_height i terrain.(i) in
          let v = a > !best in
          if a > !best then best := a;
          v
        end)
  end

(* Host-SCL: imap to angles, exclusive max-scan, pointwise comparison. *)
let visible_scl ?(exec = Exec.sequential) ?(observer_height = 0.0) (terrain : float array) :
    bool array =
  let n = Array.length terrain in
  if n = 0 then [||]
  else begin
    let angles =
      Elementary.imap ~exec (fun i h -> angle ~observer_height i h) (Par_array.of_array terrain)
    in
    let prefix = Elementary.scan_exclusive ~exec Float.max Float.neg_infinity angles in
    Par_array.to_array
      (Elementary.zip_with ~exec
         (fun a before -> before = Float.neg_infinity || a > before)
         angles prefix)
  end

(* Simulator: local angle computation, then an exclusive max-scan realised
   as a carry chain along the block order (each processor receives the max
   over everything to its left, applies it locally, and forwards its own
   running max). *)
open Machine

let los_program ?(observer_height = 0.0) (terrain : float array option) (comm : Comm.t) :
    bool array option =
  let me = Comm.rank comm and p = Comm.size comm in
  let dv = Scl_sim.Dvec.scatter comm ~root:0 terrain in
  let angles =
    Scl_sim.Dvec.imap ~flops_per_elem:8 (fun i h -> angle ~observer_height i h) dv
  in
  let local = Scl_sim.Dvec.local angles in
  let incoming : float =
    if me = 0 then Float.neg_infinity else Comm.recv comm ~src:(me - 1) ()
  in
  Comm.work_flops comm (2 * max 1 (Array.length local));
  let carry = ref incoming in
  let out =
    Array.mapi
      (fun j a ->
        let before = !carry in
        carry := Float.max before a;
        let global_i = Scl_sim.Dvec.offset dv + j in
        global_i = 0 || a > before)
      local
  in
  if me + 1 < p then Comm.send comm ~dest:(me + 1) !carry;
  Scl_sim.Dvec.gather ~root:0 (Scl_sim.Dvec.of_local comm out)

let visible_sim ?(cost = Cost_model.ap1000) ?trace ?(observer_height = 0.0) ~procs
    (terrain : float array) : bool array * Sim.stats =
  Scl_sim.Spmd.run_collect ?trace ~cost ~procs (fun comm ->
      los_program ~observer_height (if Comm.rank comm = 0 then Some terrain else None) comm)
