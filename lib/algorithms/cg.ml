(* Conjugate gradients for the 1-D Laplacian system A x = b
   (A = tridiag(-1, 2, -1), symmetric positive definite) — the iterative
   solver whose skeleton mix is the complement of Jacobi's: every iteration
   needs two global reductions (dot products = fold) plus a neighbour
   stencil (matvec), making it the classic latency-versus-reduction
   workload. *)

open Scl

type result = { solution : float array; iterations : int; residual_norm : float }

(* y = A x for the 1-D Laplacian (zero Dirichlet boundary). *)
let laplacian_matvec (x : float array) : float array =
  let n = Array.length x in
  Array.init n (fun i ->
      let left = if i > 0 then x.(i - 1) else 0.0 in
      let right = if i < n - 1 then x.(i + 1) else 0.0 in
      (2.0 *. x.(i)) -. left -. right)

let dot a b =
  let s = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

(* --- sequential reference ----------------------------------------------------- *)

let solve_seq ?(tol = 1e-10) ?(max_iter = 10_000) (b : float array) : result =
  let n = Array.length b in
  let x = Array.make n 0.0 in
  let r = Array.copy b in
  let p = Array.copy b in
  let rr = ref (dot r r) in
  let it = ref 0 in
  while sqrt !rr >= tol && !it < max_iter do
    let ap = laplacian_matvec p in
    let alpha = !rr /. dot p ap in
    for i = 0 to n - 1 do
      x.(i) <- x.(i) +. (alpha *. p.(i));
      r.(i) <- r.(i) -. (alpha *. ap.(i))
    done;
    let rr' = dot r r in
    let beta = rr' /. !rr in
    for i = 0 to n - 1 do
      p.(i) <- r.(i) +. (beta *. p.(i))
    done;
    rr := rr';
    incr it
  done;
  { solution = x; iterations = !it; residual_norm = sqrt !rr }

(* --- host-SCL version ----------------------------------------------------------
   Vectors as ParArrays of floats; dot products are zip_with + fold, axpys
   are zip_with, the matvec is an imap that reads its neighbours. *)

let solve_scl ?(exec = Exec.sequential) ?(tol = 1e-10) ?(max_iter = 10_000) (b : float array) :
    result =
  let n = Array.length b in
  if n = 0 then { solution = [||]; iterations = 0; residual_norm = 0.0 }
  else begin
    let dot_pa a b =
      Elementary.fold ~exec ( +. ) (Elementary.zip_with ~exec ( *. ) a b)
    in
    let axpy alpha p x = Elementary.zip_with ~exec (fun xi pi -> xi +. (alpha *. pi)) x p in
    let matvec p =
      let pa = Par_array.unsafe_to_array p in
      Elementary.imap ~exec
        (fun i v ->
          let left = if i > 0 then pa.(i - 1) else 0.0 in
          let right = if i < n - 1 then pa.(i + 1) else 0.0 in
          (2.0 *. v) -. left -. right)
        p
    in
    let b_pa = Par_array.of_array b in
    let rec go x r p rr it =
      if sqrt rr < tol || it >= max_iter then (x, it, sqrt rr)
      else begin
        let ap = matvec p in
        let alpha = rr /. dot_pa p ap in
        let x = axpy alpha p x in
        let r = axpy (-.alpha) ap r in
        let rr' = dot_pa r r in
        let beta = rr' /. rr in
        let p = Elementary.zip_with ~exec (fun ri pi -> ri +. (beta *. pi)) r p in
        go x r p rr' (it + 1)
      end
    in
    let x0 = Par_array.make n 0.0 in
    let x, iterations, residual_norm = go x0 b_pa b_pa (dot_pa b_pa b_pa) 0 in
    { solution = Par_array.to_array x; iterations; residual_norm }
  end

(* --- simulator version ---------------------------------------------------------- *)

open Machine

let cg_program ?(tol = 1e-10) ?(max_iter = 10_000) (b : float array option) (comm : Comm.t) :
    result option =
  let me = Comm.rank comm in
  let bv = Scl_sim.Dvec.scatter comm ~root:0 b in
  let n = Scl_sim.Dvec.total bv in
  let bl = Scl_sim.Dvec.local bv in
  let ln = Array.length bl in
  let off = Scl_sim.Dvec.offset bv in
  let has_left = off > 0 and has_right = off + ln < n in
  (* local dot + allreduce: the distributed fold *)
  let ddot a b =
    Comm.work_flops comm (2 * max 1 ln);
    let s = ref 0.0 in
    for i = 0 to ln - 1 do
      s := !s +. (a.(i) *. b.(i))
    done;
    Comm.allreduce comm ( +. ) !s
  in
  (* distributed Laplacian matvec: halo exchange + local stencil *)
  let matvec (p : float array) : float array =
    let hl = ref 0.0 and hr = ref 0.0 in
    if ln > 0 then begin
      if has_left then Comm.send comm ~dest:(me - 1) p.(0);
      if has_right then Comm.send comm ~dest:(me + 1) p.(ln - 1);
      if has_left then hl := Comm.recv comm ~src:(me - 1) ();
      if has_right then hr := Comm.recv comm ~src:(me + 1) ()
    end;
    Comm.work_flops comm (Scl_sim.Kernels.stencil_flops ln);
    Array.init ln (fun i ->
        let left = if i > 0 then p.(i - 1) else if has_left then !hl else 0.0 in
        let right = if i < ln - 1 then p.(i + 1) else if has_right then !hr else 0.0 in
        (2.0 *. p.(i)) -. left -. right)
  in
  let x = Array.make ln 0.0 in
  let r = Array.copy bl in
  let p = Array.copy bl in
  let rr = ref (ddot r r) in
  let it = ref 0 in
  while sqrt !rr >= tol && !it < max_iter do
    let ap = matvec p in
    let alpha = !rr /. ddot p ap in
    Comm.work_flops comm (4 * max 1 ln);
    for i = 0 to ln - 1 do
      x.(i) <- x.(i) +. (alpha *. p.(i));
      r.(i) <- r.(i) -. (alpha *. ap.(i))
    done;
    let rr' = ddot r r in
    let beta = rr' /. !rr in
    Comm.work_flops comm (2 * max 1 ln);
    for i = 0 to ln - 1 do
      p.(i) <- r.(i) +. (beta *. p.(i))
    done;
    rr := rr';
    incr it
  done;
  let gathered = Scl_sim.Dvec.gather ~root:0 (Scl_sim.Dvec.of_local comm x) in
  Option.map
    (fun solution -> { solution; iterations = !it; residual_norm = sqrt !rr })
    gathered

let solve_sim ?(cost = Cost_model.ap1000) ?trace ?(tol = 1e-10) ?(max_iter = 10_000) ~procs
    (b : float array) : result * Sim.stats =
  Scl_sim.Spmd.run_collect ?trace ~cost ~procs (fun comm ->
      cg_program ~tol ~max_iter (if Comm.rank comm = 0 then Some b else None) comm)

let solve_multicore ?domains ?(tol = 1e-10) ?(max_iter = 10_000) ~procs (b : float array) :
    result * Multicore.stats =
  Scl_sim.Spmd.run_multicore_collect ?domains ~procs (fun comm ->
      cg_program ~tol ~max_iter (if Comm.rank comm = 0 then Some b else None) comm)

(* --- flat-tier version ----------------------------------------------------------
   The same distributed CG over unboxed [Scl.Flat] chunks, with the halo
   endpoints of the direction vector travelling as 1-element bulk slices.
   Identical block geometry, local summation order, and allreduce shape as
   [cg_program], so every dot product — and hence every iterate — is
   bitwise-identical to the boxed oracle at the same [procs].

   Zero-copy discipline: [matvec] sends windows of [p], which IS mutated
   later in the iteration — but only after the [ddot p ap] allreduce,
   which the receiver can only complete after reading its halo, so the
   mutation is causally after the read on both engines. *)

let cg_flat_program ?(tol = 1e-10) ?(max_iter = 10_000) (b : float array option) (comm : Comm.t)
    : result option =
  let me = Comm.rank comm in
  let bv = Scl_sim.Fvec.scatter comm ~root:0 (Option.map Scl.Flat.of_float_array b) in
  let n = Scl_sim.Fvec.total bv in
  let bl = Scl_sim.Fvec.local bv in
  let ln = Scl.Flat.length bl in
  let off = Scl_sim.Fvec.offset bv in
  let has_left = off > 0 and has_right = off + ln < n in
  let ddot a b =
    Comm.work_flops comm (2 * max 1 ln);
    let s = ref 0.0 in
    for i = 0 to ln - 1 do
      s := !s +. (Scl.Flat.get a i *. Scl.Flat.get b i)
    done;
    Comm.allreduce comm ( +. ) !s
  in
  let matvec (p : Scl.Flat.float1) : Scl.Flat.float1 =
    let hl = ref 0.0 and hr = ref 0.0 in
    if ln > 0 then begin
      if has_left then Comm.send_slice comm ~dest:(me - 1) (Scl.Flat.sub_view p ~pos:0 ~len:1);
      if has_right then
        Comm.send_slice comm ~dest:(me + 1) (Scl.Flat.sub_view p ~pos:(ln - 1) ~len:1);
      if has_left then hl := Scl.Flat.get (Comm.recv_slice comm ~src:(me - 1) ()) 0;
      if has_right then hr := Scl.Flat.get (Comm.recv_slice comm ~src:(me + 1) ()) 0
    end;
    Comm.work_flops comm (Scl_sim.Kernels.stencil_flops ln);
    Scl.Flat.init Scl.Flat.float64 ln (fun i ->
        let left = if i > 0 then Scl.Flat.get p (i - 1) else if has_left then !hl else 0.0 in
        let right =
          if i < ln - 1 then Scl.Flat.get p (i + 1) else if has_right then !hr else 0.0
        in
        (2.0 *. Scl.Flat.get p i) -. left -. right)
  in
  let x = Scl.Flat.make Scl.Flat.float64 ln 0.0 in
  let r = Scl.Flat.copy bl in
  let p = Scl.Flat.copy bl in
  let rr = ref (ddot r r) in
  let it = ref 0 in
  while sqrt !rr >= tol && !it < max_iter do
    let ap = matvec p in
    let alpha = !rr /. ddot p ap in
    Comm.work_flops comm (4 * max 1 ln);
    for i = 0 to ln - 1 do
      Scl.Flat.set x i (Scl.Flat.get x i +. (alpha *. Scl.Flat.get p i));
      Scl.Flat.set r i (Scl.Flat.get r i -. (alpha *. Scl.Flat.get ap i))
    done;
    let rr' = ddot r r in
    let beta = rr' /. !rr in
    Comm.work_flops comm (2 * max 1 ln);
    for i = 0 to ln - 1 do
      Scl.Flat.set p i (Scl.Flat.get r i +. (beta *. Scl.Flat.get p i))
    done;
    rr := rr';
    incr it
  done;
  let gathered = Scl_sim.Fvec.gather ~root:0 (Scl_sim.Fvec.of_local comm x) in
  Option.map
    (fun solution ->
      {
        solution = Scl.Flat.to_float_array solution;
        iterations = !it;
        residual_norm = sqrt !rr;
      })
    gathered

let solve_sim_flat ?(cost = Cost_model.ap1000) ?trace ?(tol = 1e-10) ?(max_iter = 10_000) ~procs
    (b : float array) : result * Sim.stats =
  Scl_sim.Spmd.run_collect ?trace ~cost ~procs (fun comm ->
      cg_flat_program ~tol ~max_iter (if Comm.rank comm = 0 then Some b else None) comm)

let solve_multicore_flat ?domains ?(tol = 1e-10) ?(max_iter = 10_000) ~procs (b : float array) :
    result * Multicore.stats =
  Scl_sim.Spmd.run_multicore_collect ?domains ~procs (fun comm ->
      cg_flat_program ~tol ~max_iter (if Comm.rank comm = 0 then Some b else None) comm)

(* The residual check used by tests. *)
let residual_inf (x : float array) (b : float array) : float =
  let ax = laplacian_matvec x in
  let worst = ref 0.0 in
  Array.iteri (fun i v -> worst := Float.max !worst (Float.abs (v -. b.(i)))) ax;
  !worst
