(* Block bitonic sort on a hypercube — the other classic hypercube sort of
   the era, used as a second baseline against hyperquicksort.  Every
   processor keeps exactly n/p keys throughout (padding with +inf
   sentinels), so unlike hyperquicksort its load is perfectly balanced but
   it always moves the full data volume in every compare-split step. *)

open Machine

let sentinel = max_int

(* Compare-split: given my sorted block and my partner's sorted block, keep
   the lower or upper half of their merge. *)
let compare_split ~keep_low (mine : int array) (theirs : int array) : int array =
  let merged = Seq_kernels.merge mine theirs in
  let n = Array.length mine in
  if keep_low then Array.sub merged 0 n else Array.sub merged (Array.length merged - n) n

let bitonic_program (data : int array option) (comm : Comm.t) : int array option =
  let p = Comm.size comm in
  let d = Topology.log2_exact p in
  let me = Comm.rank comm in
  (* Pad to a multiple of p so blocks stay equal-sized. *)
  let total = Comm.bcast comm ~root:0 (Option.map Array.length data) in
  let padded = ((total + p - 1) / p) * p in
  let padded_data =
    Option.map
      (fun a -> Array.append a (Array.make (padded - total) sentinel))
      data
  in
  let dv = Scl_sim.Dvec.scatter comm ~root:0 padded_data in
  let mine = ref (Seq_kernels.quicksort (Scl_sim.Dvec.local dv)) in
  Comm.work_flops comm (Scl_sim.Kernels.sort_flops (Array.length !mine));
  for k = 1 to d do
    (* Stage k: bitonic merge within groups of 2^k; direction from bit k. *)
    let ascending = (me lsr k) land 1 = 0 in
    for j = k - 1 downto 0 do
      let partner = me lxor (1 lsl j) in
      let theirs : int array = Comm.exchange comm ~partner !mine in
      Comm.work_flops comm (Scl_sim.Kernels.merge_flops (2 * Array.length !mine));
      let keep_low = (me < partner) = ascending in
      mine := compare_split ~keep_low !mine theirs
    done
  done;
  match Comm.gather comm ~root:0 !mine with
  | Some chunks ->
      let all = Array.concat (Array.to_list chunks) in
      Some (Array.sub all 0 total)
  | None -> None

let sort_sim ?(cost = Cost_model.ap1000) ?trace ~procs (data : int array) :
    int array * Sim.stats =
  if not (Topology.is_power_of_two procs) then
    invalid_arg "Bitonic.sort_sim: processor count must be a power of two";
  if Array.exists (fun x -> x = sentinel) data then
    invalid_arg "Bitonic.sort_sim: max_int keys are reserved as padding sentinels";
  Scl_sim.Spmd.run_collect ?trace ~cost ~topology:Topology.Hypercube ~procs (fun comm ->
      bitonic_program (if Comm.rank comm = 0 then Some data else None) comm)
