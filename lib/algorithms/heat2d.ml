(* 2-D Poisson: -Δu = f on the unit square with zero Dirichlet boundary,
   solved by Jacobi relaxation — the two-dimensional counterpart of the
   Jacobi example, exercising the 2-D configuration skeletons: row_col_block
   partitioning, rotate_row / rotate_col halo movement on the host, and
   Dmat halo exchange on the simulated torus.

   The n x n interior grid has spacing h = 1/(n+1):
     u'[i][j] = (u[i-1][j] + u[i+1][j] + u[i][j-1] + u[i][j+1] + h^2 f) / 4 *)

open Scl

type result = { solution : float array array; iterations : int; final_diff : float }

let h2 n = 1.0 /. (float_of_int (n + 1) ** 2.0)

(* --- sequential reference --------------------------------------------------- *)

let solve_seq ?(tol = 1e-7) ?(max_iter = 50_000) (f : float array array) : result =
  let n = Array.length f in
  let hh = h2 n in
  let u = ref (Array.init n (fun _ -> Array.make n 0.0)) in
  let iterations = ref 0 and final_diff = ref Float.infinity in
  let continue_ = ref (n > 0) in
  while !continue_ do
    let old = !u in
    let get i j = if i < 0 || i >= n || j < 0 || j >= n then 0.0 else old.(i).(j) in
    let next =
      Array.init n (fun i ->
          Array.init n (fun j ->
              0.25 *. (get (i - 1) j +. get (i + 1) j +. get i (j - 1) +. get i (j + 1) +. (hh *. f.(i).(j)))))
    in
    let d = ref 0.0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        d := Float.max !d (Float.abs (next.(i).(j) -. old.(i).(j)))
      done
    done;
    u := next;
    incr iterations;
    final_diff := !d;
    if !d < tol || !iterations >= max_iter then continue_ := false
  done;
  { solution = !u; iterations = !iterations; final_diff = !final_diff }

(* --- host-SCL version: q x q blocks, halos via grid rotations ---------------- *)

(* Edge vectors of a block. *)
let top_edge b = Array.copy b.(0)
let bottom_edge b = Array.copy b.(Array.length b - 1)
let left_edge b = Array.init (Array.length b) (fun x -> b.(x).(0))
let right_edge b = Array.init (Array.length b) (fun x -> b.(x).(Array.length b.(x) - 1))

let solve_scl ?(exec = Exec.sequential) ?(grid = 2) ?(tol = 1e-7) ?(max_iter = 50_000)
    (f : float array array) : result =
  let n = Array.length f in
  if n = 0 then { solution = [||]; iterations = 0; final_diff = 0.0 }
  else begin
    if grid <= 0 || n mod grid <> 0 then
      invalid_arg "Heat2d.solve_scl: grid must divide the dimension";
    let q = grid in
    let hh = h2 n in
    let pat = Partition2.row_col_block q q in
    let fb = Partition2.apply pat (Par_array2.of_arrays f) in
    let fb = Par_array2.map ~exec Par_array2.to_arrays fb in
    let u0 =
      Par_array2.init ~rows:q ~cols:q (fun _ _ -> Array.init (n / q) (fun _ -> Array.make (n / q) 0.0))
    in
    let step (u, _d, it) =
      (* Halo movement: the grid-level rotations carry each block's edges to
         its neighbours; the torus wrap-around rows/columns are overridden by
         the Dirichlet boundary inside the update. *)
      let from_north = Par_array2.rotate_col ~exec (fun _ -> -1) (Par_array2.map ~exec bottom_edge u) in
      let from_south = Par_array2.rotate_col ~exec (fun _ -> 1) (Par_array2.map ~exec top_edge u) in
      let from_west = Par_array2.rotate_row ~exec (fun _ -> -1) (Par_array2.map ~exec right_edge u) in
      let from_east = Par_array2.rotate_row ~exec (fun _ -> 1) (Par_array2.map ~exec left_edge u) in
      let halos = Par_array2.zip (Par_array2.zip from_north from_south) (Par_array2.zip from_west from_east) in
      let zipped = Par_array2.zip (Par_array2.zip u fb) halos in
      let updated =
        Par_array2.imap ~exec
          (fun bi bj ((ub, fbb), ((hn, hs), (hw, he))) ->
            let bs = Array.length ub in
            Array.init bs (fun x ->
                Array.init bs (fun y ->
                    let north =
                      if x > 0 then ub.(x - 1).(y) else if bi = 0 then 0.0 else hn.(y)
                    in
                    let south =
                      if x < bs - 1 then ub.(x + 1).(y) else if bi = q - 1 then 0.0 else hs.(y)
                    in
                    let west =
                      if y > 0 then ub.(x).(y - 1) else if bj = 0 then 0.0 else hw.(x)
                    in
                    let east =
                      if y < bs - 1 then ub.(x).(y + 1) else if bj = q - 1 then 0.0 else he.(x)
                    in
                    0.25 *. (north +. south +. west +. east +. (hh *. fbb.(x).(y))))))
          zipped
      in
      let diffs =
        Par_array2.map ~exec
          (fun (ub, ub') ->
            let d = ref 0.0 in
            Array.iteri
              (fun x row -> Array.iteri (fun y v -> d := Float.max !d (Float.abs (v -. ub'.(x).(y)))) row)
              ub;
            !d)
          (Par_array2.zip u updated)
      in
      (updated, Par_array2.fold ~exec Float.max diffs, it + 1)
    in
    let u, final_diff, iterations =
      Computational.iter_until step Fun.id
        (fun (_, d, it) -> d < tol || it >= max_iter)
        (u0, Float.infinity, 0)
    in
    let blocks = Par_array2.map ~exec Par_array2.of_arrays u in
    { solution = Par_array2.to_arrays (Partition2.unapply pat blocks); iterations; final_diff }
  end

(* --- simulator version: Dmat halo exchange on the torus ----------------------- *)

open Machine

let heat_program ?(tol = 1e-7) ?(max_iter = 50_000) (f : float array array option) ~n
    (comm : Comm.t) : result option =
  let df = Scl_sim.Dmat.scatter comm ~root:0 f ~n in
  let hh = h2 n in
  let q = Scl_sim.Dmat.grid df in
  let bs = n / q in
  let fb = Scl_sim.Dmat.block df in
  let u0 = Scl_sim.Dmat.init comm ~n (fun _ _ -> 0.0) in
  let step _i u =
    let halo = Scl_sim.Dmat.halo_exchange u in
    let ub = Scl_sim.Dmat.block u in
    Comm.work_flops comm (Scl_sim.Kernels.stencil_flops (bs * bs));
    let next =
      Array.init bs (fun x ->
          Array.init bs (fun y ->
              let north =
                if x > 0 then ub.(x - 1).(y)
                else match halo.Scl_sim.Dmat.north with Some row -> row.(y) | None -> 0.0
              in
              let south =
                if x < bs - 1 then ub.(x + 1).(y)
                else match halo.Scl_sim.Dmat.south with Some row -> row.(y) | None -> 0.0
              in
              let west =
                if y > 0 then ub.(x).(y - 1)
                else match halo.Scl_sim.Dmat.west with Some col -> col.(x) | None -> 0.0
              in
              let east =
                if y < bs - 1 then ub.(x).(y + 1)
                else match halo.Scl_sim.Dmat.east with Some col -> col.(x) | None -> 0.0
              in
              0.25 *. (north +. south +. west +. east +. (hh *. fb.(x).(y)))))
    in
    let d = ref 0.0 in
    for x = 0 to bs - 1 do
      for y = 0 to bs - 1 do
        d := Float.max !d (Float.abs (next.(x).(y) -. ub.(x).(y)))
      done
    done;
    (Scl_sim.Dmat.with_block u next, !d)
  in
  let conv =
    if n = 0 then { Scl_sim.Control.state = u0; iterations = 0; final_residual = 0.0 }
    else Scl_sim.Control.iter_until_conv comm ~max_iter ~tol ~step u0
  in
  match Scl_sim.Dmat.gather ~root:0 conv.state with
  | Some solution ->
      Some { solution; iterations = conv.iterations; final_diff = conv.final_residual }
  | None -> None

let solve_sim ?(cost = Cost_model.ap1000) ?trace ?(tol = 1e-7) ?(max_iter = 50_000) ~procs
    (f : float array array) : result * Sim.stats =
  let n = Array.length f in
  Array.iter (fun r -> if Array.length r <> n then invalid_arg "Heat2d.solve_sim: non-square grid") f;
  Scl_sim.Spmd.run_collect ?trace ~cost ~procs (fun comm ->
      heat_program ~tol ~max_iter (if Comm.rank comm = 0 then Some f else None) ~n comm)

let solve_multicore ?domains ?(tol = 1e-7) ?(max_iter = 50_000) ~procs (f : float array array)
    : result * Multicore.stats =
  let n = Array.length f in
  Array.iter
    (fun r -> if Array.length r <> n then invalid_arg "Heat2d.solve_multicore: non-square grid")
    f;
  Scl_sim.Spmd.run_multicore_collect ?domains ~procs (fun comm ->
      heat_program ~tol ~max_iter (if Comm.rank comm = 0 then Some f else None) ~n comm)

(* --- flat-tier version: row bands over an unboxed grid -------------------------
   The n x n grid flattened row-major into one [Scl.Flat] array, block-
   distributed by ROWS.  A band's halo is a whole contiguous row, so each
   sweep sends exactly ONE bulk message per neighbour (2 per member) —
   versus the Dmat rendering's 4 edge messages per block, two of which
   are strided column copies.  The stencil is a pure per-element function
   of the old grid with the same float expression order as [heat_program],
   and the residual is an exact [Float.max] — so solutions and iteration
   counts are bitwise-identical to the Dmat oracle whatever the
   decomposition. *)

let heat_flat_program ?(tol = 1e-7) ?(max_iter = 50_000) (f : float array array option) ~n
    (comm : Comm.t) : result option =
  let p = Comm.size comm in
  let me = Comm.rank comm in
  let b = Scl_sim.Fvec.block_bounds ~total:n ~parts:p in
  let r0 = b.(me) and r1 = b.(me + 1) in
  let nr = r1 - r0 in
  (* Scatter by rows: one bulk band per member (row-aligned, so the element
     scatter's geometry does not apply). *)
  let fl =
    if me = 0 then begin
      let f = match f with Some f -> f | None -> invalid_arg "Heat2d: root must supply f" in
      let whole = Scl.Flat.init Scl.Flat.float64 (n * n) (fun g -> f.(g / n).(g mod n)) in
      for dest = 1 to p - 1 do
        Comm.send_slice comm ~dest
          (Scl.Flat.sub_view whole ~pos:(b.(dest) * n) ~len:((b.(dest + 1) - b.(dest)) * n))
      done;
      Scl.Flat.copy (Scl.Flat.sub_view whole ~pos:0 ~len:(b.(1) * n))
    end
    else Scl.Flat.copy (Comm.recv_slice comm ~src:0 ())
  in
  let hh = h2 n in
  let has_up = r0 > 0 and has_down = r1 < n in
  let empty_row = Scl.Flat.create Scl.Flat.float64 0 in
  let step _i (u : Scl.Flat.float1) =
    let hn = ref empty_row and hs = ref empty_row in
    if nr > 0 then begin
      (* whole-row halos: one coalesced message per neighbour; [u] is
         never mutated, so the zero-copy windows stay valid *)
      if has_up then Comm.send_slice comm ~dest:(me - 1) (Scl.Flat.sub_view u ~pos:0 ~len:n);
      if has_down then
        Comm.send_slice comm ~dest:(me + 1) (Scl.Flat.sub_view u ~pos:((nr - 1) * n) ~len:n);
      if has_up then hn := Comm.recv_slice comm ~src:(me - 1) ();
      if has_down then hs := Comm.recv_slice comm ~src:(me + 1) ()
    end;
    Comm.work_flops comm (Scl_sim.Kernels.stencil_flops (nr * n));
    let next = Scl.Flat.create Scl.Flat.float64 (nr * n) in
    let d = ref 0.0 in
    for x = 0 to nr - 1 do
      for y = 0 to n - 1 do
        let north =
          if x > 0 then Scl.Flat.get u (((x - 1) * n) + y)
          else if has_up then Scl.Flat.get !hn y
          else 0.0
        in
        let south =
          if x < nr - 1 then Scl.Flat.get u (((x + 1) * n) + y)
          else if has_down then Scl.Flat.get !hs y
          else 0.0
        in
        let west = if y > 0 then Scl.Flat.get u ((x * n) + y - 1) else 0.0 in
        let east = if y < n - 1 then Scl.Flat.get u ((x * n) + y + 1) else 0.0 in
        let v =
          0.25 *. (north +. south +. west +. east +. (hh *. Scl.Flat.get fl ((x * n) + y)))
        in
        Scl.Flat.set next ((x * n) + y) v;
        d := Float.max !d (Float.abs (v -. Scl.Flat.get u ((x * n) + y)))
      done
    done;
    (next, !d)
  in
  let conv =
    if n = 0 then
      {
        Scl_sim.Control.state = Scl.Flat.create Scl.Flat.float64 0;
        iterations = 0;
        final_residual = 0.0;
      }
    else
      Scl_sim.Control.iter_until_conv comm ~max_iter ~tol ~step
        (Scl.Flat.make Scl.Flat.float64 (nr * n) 0.0)
  in
  match Comm.gather_slice comm ~root:0 conv.state with
  | Some whole ->
      Some
        {
          solution = Array.init n (fun i -> Array.init n (fun j -> Scl.Flat.get whole ((i * n) + j)));
          iterations = conv.iterations;
          final_diff = conv.final_residual;
        }
  | None -> None

let solve_sim_flat ?(cost = Cost_model.ap1000) ?trace ?(tol = 1e-7) ?(max_iter = 50_000) ~procs
    (f : float array array) : result * Sim.stats =
  let n = Array.length f in
  Array.iter
    (fun r -> if Array.length r <> n then invalid_arg "Heat2d.solve_sim_flat: non-square grid")
    f;
  Scl_sim.Spmd.run_collect ?trace ~cost ~procs (fun comm ->
      heat_flat_program ~tol ~max_iter (if Comm.rank comm = 0 then Some f else None) ~n comm)

let solve_multicore_flat ?domains ?(tol = 1e-7) ?(max_iter = 50_000) ~procs
    (f : float array array) : result * Multicore.stats =
  let n = Array.length f in
  Array.iter
    (fun r ->
      if Array.length r <> n then invalid_arg "Heat2d.solve_multicore_flat: non-square grid")
    f;
  Scl_sim.Spmd.run_multicore_collect ?domains ~procs (fun comm ->
      heat_flat_program ~tol ~max_iter (if Comm.rank comm = 0 then Some f else None) ~n comm)

(* Manufactured solution used by the tests: f = 2 pi^2 sin(pi x) sin(pi y)
   gives u = sin(pi x) sin(pi y). *)
let manufactured_f n =
  let pi = Float.pi in
  Array.init n (fun i ->
      Array.init n (fun j ->
          let x = float_of_int (i + 1) /. float_of_int (n + 1) in
          let y = float_of_int (j + 1) /. float_of_int (n + 1) in
          2.0 *. pi *. pi *. sin (pi *. x) *. sin (pi *. y)))

let manufactured_u n i j =
  let pi = Float.pi in
  let x = float_of_int (i + 1) /. float_of_int (n + 1) in
  let y = float_of_int (j + 1) /. float_of_int (n + 1) in
  sin (pi *. x) *. sin (pi *. y)
