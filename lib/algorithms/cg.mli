(** Conjugate gradients for the 1-D Laplacian system (SPD tridiagonal) —
    the reduction-heavy iterative solver: two allreduced dot products
    (fold) plus a neighbour stencil (matvec) per iteration. *)

open Machine

type result = { solution : float array; iterations : int; residual_norm : float }

val solve_seq : ?tol:float -> ?max_iter:int -> float array -> result
(** Sequential reference; stops when ‖r‖₂ < tol. *)

val solve_scl : ?exec:Scl.Exec.t -> ?tol:float -> ?max_iter:int -> float array -> result
(** Host-SCL rendering (dot = zip_with + fold, matvec = imap); iteration
    counts match {!solve_seq}. *)

val solve_sim :
  ?cost:Cost_model.t ->
  ?trace:Trace.t ->
  ?tol:float ->
  ?max_iter:int ->
  procs:int ->
  float array ->
  result * Sim.stats

val solve_multicore :
  ?domains:int -> ?tol:float -> ?max_iter:int -> procs:int -> float array -> result * Multicore.stats
(** The same SPMD program on real OCaml 5 domains; identical solution and
    iteration count to {!solve_sim}. *)

val laplacian_matvec : float array -> float array
val residual_inf : float array -> float array -> float
(** max |A x − b| for the Laplacian system. *)

(** {1 Flat tier}

    The same distributed CG over unboxed [Scl.Flat] chunks with bulk-slice
    halos. Identical block geometry and reduction shape to the boxed
    variants, so iterates are bitwise-identical at the same [procs]. *)

val solve_sim_flat :
  ?cost:Cost_model.t ->
  ?trace:Trace.t ->
  ?tol:float ->
  ?max_iter:int ->
  procs:int ->
  float array ->
  result * Sim.stats

val solve_multicore_flat :
  ?domains:int ->
  ?tol:float ->
  ?max_iter:int ->
  procs:int ->
  float array ->
  result * Multicore.stats
