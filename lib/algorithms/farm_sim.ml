(* The farm skeleton's two implementation strategies on the simulated
   distributed-memory machine:

   - [static]: jobs are block-scattered up front (the paper's
     "farm f env = map (f env)" reading — zero scheduling traffic, but
     irregular job sizes leave processors idle);
   - [dynamic]: a master deals jobs on demand (the task-queue reading the
     farm skeleton historically carries — every job costs a round trip,
     but load balances).

   The crossover between the two under varying job-size skew is the
   classic farm-implementation trade-off; the bench harness reports it.

   Jobs are [int -> 'r] with an explicit per-job operation count, so the
   simulator can price heterogeneous work honestly. *)

open Machine

type 'r job_spec = {
  njobs : int;
  run : int -> 'r;  (* executed on the host; deterministic *)
  flops : int -> int;  (* simulated cost of job i *)
}

(* --- static farm: block distribution ------------------------------------- *)

let static ?(cost = Cost_model.ap1000) ~procs (spec : 'r job_spec) : 'r array * Sim.stats =
  Scl_sim.Spmd.run_collect ~cost ~procs (fun comm ->
      let me = Comm.rank comm in
      let p = Comm.size comm in
      let bounds = Scl_sim.Dvec.block_bounds ~total:spec.njobs ~parts:p in
      let mine =
        Array.init (bounds.(me + 1) - bounds.(me)) (fun k ->
            let i = bounds.(me) + k in
            Comm.work_flops comm (spec.flops i);
            (i, spec.run i))
      in
      match Comm.gather comm ~root:0 mine with
      | Some chunks ->
          if spec.njobs = 0 then Some [||]
          else begin
            let seed =
              let found = ref None in
              Array.iter
                (fun chunk ->
                  if Array.length chunk > 0 && !found = None then found := Some (snd chunk.(0)))
                chunks;
              Option.get !found
            in
            let out = Array.make spec.njobs seed in
            Array.iter (Array.iter (fun (i, r) -> out.(i) <- r)) chunks;
            Some out
          end
      | None -> None)

(* --- dynamic farm: master-worker with demand-driven dealing ----------------

   The dealing protocol is crash- and straggler-tolerant (at-least-once
   dispatch with job-id dedup):

   - the master tracks every dealt-but-unfinished job; when fresh jobs run
     out it RE-DEALS an outstanding job to the next requester instead of
     releasing it.  A worker that crashed (or is stalling) while holding a
     job therefore cannot strand it — some live requester redoes it, and
     duplicate results are deduplicated by job id ([farm.retries] counts
     the drops, [farm.reassignments] the re-deals).  Workers are only
     released (poison pill, -1) once every job's result is in.
   - with [~grace] the master's receives carry a timeout.  [grace] must
     dominate the longest single job (plus a round trip): any worker silent
     that long while the farm is incomplete is presumed dead.  If the main
     loop times out, ALL remaining traffic sources went silent — every
     un-released worker crashed — and no completion is possible, so the
     master fails loudly.  After completion, the master pills live
     requesters until a final grace elapses, then abandons the (presumed
     dead) rest.  Without [~grace] the protocol still re-deals and dedups,
     but a worker crash leaves the master blocked forever (the engines then
     report Deadlock).

   Fault-free runs with [~grace] behave identically to runs without it on
   the simulator: a timeout event only fires when no in-time delivery
   exists, which a live-worker farm never exhibits (given grace dominates
   job durations). *)

let tag_request = 7001
let tag_job = 7002
let tag_result = 7003

let obs_retries = Obs.Counter.make "farm.retries"
let obs_reassignments = Obs.Counter.make "farm.reassignments"

(* One processor's program for the dynamic farm — engine-parametric, so
   the same master/worker protocol runs on the simulator and on real
   domains (where [recv_any] order is genuinely nondeterministic). *)
let dynamic_program ?grace (spec : 'r job_spec) (comm : Comm.t) : 'r array option =
      let me = Comm.rank comm in
      let p = Comm.size comm in
      if me = 0 then begin
        let next = ref 0 in
        let done_ = Array.make (max 1 spec.njobs) false in
        let remaining = ref spec.njobs in
        let results : (int * 'r) list ref = ref [] in
        let outstanding : int Queue.t = Queue.create () in
        let released = Array.make p false in
        released.(0) <- true;
        let record_result i r =
          if done_.(i) then Obs.Counter.incr obs_retries (* duplicate of a redone job *)
          else begin
            done_.(i) <- true;
            decr remaining;
            results := (i, r) :: !results
          end
        in
        let deal dst =
          if !next < spec.njobs then begin
            Comm.send comm ~dest:dst ~tag:tag_job !next;
            Queue.push !next outstanding;
            incr next
          end
          else begin
            (* fresh jobs exhausted: re-deal the oldest unfinished job, or
               release the worker if none are left *)
            let rec pick () =
              match Queue.take_opt outstanding with
              | Some j when done_.(j) -> pick ()
              | other -> other
            in
            match pick () with
            | Some j ->
                Obs.Counter.incr obs_reassignments;
                Queue.push j outstanding;
                Comm.send comm ~dest:dst ~tag:tag_job j
            | None ->
                Comm.send comm ~dest:dst ~tag:tag_job (-1);
                released.(dst) <- true
          end
        in
        (* main loop: until every job has a result *)
        while !remaining > 0 do
          match Comm.recv_any comm ~tag:tag_request ?timeout:grace () with
          | src, (msg : [ `Request | `Result of int * 'r ]) -> (
              match msg with
              | `Result (i, r) -> record_result i r
              | `Request -> deal src)
          | exception Fault.Timeout _ ->
              (* no worker produced ANY traffic for a whole grace period:
                 with grace > max job duration, they are all dead *)
              failwith "Farm_sim.dynamic: all workers lost (no traffic within grace)"
        done;
        (* termination: pill live requesters; after a silent grace period
           the remaining workers are presumed crashed and abandoned *)
        (try
           while Array.exists not released do
             match Comm.recv_any comm ~tag:tag_request ?timeout:grace () with
             | _, (`Result (i, r) : [ `Request | `Result of int * 'r ]) -> record_result i r
             | src, `Request -> deal src
           done
         with Fault.Timeout _ -> ());
        if !remaining <> 0 || List.length !results <> spec.njobs then
          failwith "Farm_sim.dynamic: lost results";
        match !results with
        | [] -> Some [||]
        | (_, seed) :: _ ->
            let out = Array.make spec.njobs seed in
            List.iter (fun (i, r) -> out.(i) <- r) !results;
            Some out
      end
      else begin
        (* worker: request, work, return result, repeat.  A re-dealt job is
           just executed again — [run] is deterministic, and the master
           drops duplicate results. *)
        let continue_ = ref true in
        while !continue_ do
          Comm.send comm ~dest:0 ~tag:tag_request (`Request : [ `Request | `Result of int * 'r ]);
          let i : int = Comm.recv comm ~src:0 ~tag:tag_job () in
          if i < 0 then continue_ := false
          else begin
            Comm.work_flops comm (spec.flops i);
            let r = spec.run i in
            Comm.send comm ~dest:0 ~tag:tag_request (`Result (i, r) : [ `Request | `Result of int * 'r ])
          end
        done;
        None
      end

let dynamic ?(cost = Cost_model.ap1000) ?grace ?chaos ~procs (spec : 'r job_spec) :
    'r array * Sim.stats =
  if procs < 2 then invalid_arg "Farm_sim.dynamic: needs a master and at least one worker";
  Scl_sim.Spmd.run_collect ~cost ?chaos ~procs (dynamic_program ?grace spec)

let dynamic_multicore ?domains ?grace ?chaos ~procs (spec : 'r job_spec) :
    'r array * Multicore.stats =
  if procs < 2 then
    invalid_arg "Farm_sim.dynamic_multicore: needs a master and at least one worker";
  Scl_sim.Spmd.run_multicore_collect ?domains ?chaos ~procs (dynamic_program ?grace spec)

(* On real processes the failure detector finally earns its keep: a
   worker that dies here is a dead PID, not a simulated raise, and the
   master's grace timeouts plus re-dealing are the only thing standing
   between that and a hung run. *)
let dynamic_procs ?grace ?chaos ~procs (spec : 'r job_spec) : 'r array * Procs.stats =
  if procs < 2 then
    invalid_arg "Farm_sim.dynamic_procs: needs a master and at least one worker";
  Scl_sim.Spmd.run_procs_collect ?chaos ~procs (dynamic_program ?grace spec)

(* Skewed job mix used by tests and benches: the heavy jobs are clustered
   at the front of the index range, so static block dealing dumps them all
   on the first processors while demand-driven dealing spreads them. *)
let skewed_spec ~njobs ~skew : int job_spec =
  {
    njobs;
    run = (fun i -> i * i);
    flops = (fun i -> if i < njobs / 8 then 1000 * skew (* heavy *) else 1000);
  }
