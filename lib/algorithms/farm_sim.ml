(* The farm skeleton's two implementation strategies on the simulated
   distributed-memory machine:

   - [static]: jobs are block-scattered up front (the paper's
     "farm f env = map (f env)" reading — zero scheduling traffic, but
     irregular job sizes leave processors idle);
   - [dynamic]: a master deals jobs on demand (the task-queue reading the
     farm skeleton historically carries — every job costs a round trip,
     but load balances).

   The crossover between the two under varying job-size skew is the
   classic farm-implementation trade-off; the bench harness reports it.

   Jobs are [int -> 'r] with an explicit per-job operation count, so the
   simulator can price heterogeneous work honestly. *)

open Machine

type 'r job_spec = {
  njobs : int;
  run : int -> 'r;  (* executed on the host; deterministic *)
  flops : int -> int;  (* simulated cost of job i *)
}

(* --- static farm: block distribution ------------------------------------- *)

let static ?(cost = Cost_model.ap1000) ~procs (spec : 'r job_spec) : 'r array * Sim.stats =
  Scl_sim.Spmd.run_collect ~cost ~procs (fun comm ->
      let me = Comm.rank comm in
      let p = Comm.size comm in
      let bounds = Scl_sim.Dvec.block_bounds ~total:spec.njobs ~parts:p in
      let mine =
        Array.init (bounds.(me + 1) - bounds.(me)) (fun k ->
            let i = bounds.(me) + k in
            Comm.work_flops comm (spec.flops i);
            (i, spec.run i))
      in
      match Comm.gather comm ~root:0 mine with
      | Some chunks ->
          if spec.njobs = 0 then Some [||]
          else begin
            let seed =
              let found = ref None in
              Array.iter
                (fun chunk ->
                  if Array.length chunk > 0 && !found = None then found := Some (snd chunk.(0)))
                chunks;
              Option.get !found
            in
            let out = Array.make spec.njobs seed in
            Array.iter (Array.iter (fun (i, r) -> out.(i) <- r)) chunks;
            Some out
          end
      | None -> None)

(* --- dynamic farm: master-worker with demand-driven dealing ---------------- *)

let tag_request = 7001
let tag_job = 7002
let tag_result = 7003

(* One processor's program for the dynamic farm — engine-parametric, so
   the same master/worker protocol runs on the simulator and on real
   domains (where [recv_any] order is genuinely nondeterministic). *)
let dynamic_program (spec : 'r job_spec) (comm : Comm.t) : 'r array option =
      let me = Comm.rank comm in
      let p = Comm.size comm in
      if me = 0 then begin
        (* master: deal jobs on request, then send the poison pill (-1) *)
        let next = ref 0 in
        let results : (int * 'r) list ref = ref [] in
        let active = ref (p - 1) in
        while !active > 0 do
          let src, (msg : [ `Request | `Result of int * 'r ]) = Comm.recv_any comm ~tag:tag_request () in
          (match msg with
          | `Result (i, r) -> results := (i, r) :: !results
          | `Request ->
              if !next < spec.njobs then begin
                Comm.send comm ~dest:src ~tag:tag_job !next;
                incr next
              end
              else begin
                Comm.send comm ~dest:src ~tag:tag_job (-1);
                decr active
              end);
          ()
        done;
        if List.length !results <> spec.njobs then
          failwith "Farm_sim.dynamic: lost results";
        match !results with
        | [] -> Some [||]
        | (_, seed) :: _ ->
            let out = Array.make spec.njobs seed in
            List.iter (fun (i, r) -> out.(i) <- r) !results;
            Some out
      end
      else begin
        (* worker: request, work, return result, repeat *)
        let continue_ = ref true in
        while !continue_ do
          Comm.send comm ~dest:0 ~tag:tag_request (`Request : [ `Request | `Result of int * 'r ]);
          let i : int = Comm.recv comm ~src:0 ~tag:tag_job () in
          if i < 0 then continue_ := false
          else begin
            Comm.work_flops comm (spec.flops i);
            let r = spec.run i in
            Comm.send comm ~dest:0 ~tag:tag_request (`Result (i, r) : [ `Request | `Result of int * 'r ])
          end
        done;
        None
      end

let dynamic ?(cost = Cost_model.ap1000) ~procs (spec : 'r job_spec) : 'r array * Sim.stats =
  if procs < 2 then invalid_arg "Farm_sim.dynamic: needs a master and at least one worker";
  Scl_sim.Spmd.run_collect ~cost ~procs (dynamic_program spec)

let dynamic_multicore ?domains ~procs (spec : 'r job_spec) : 'r array * Multicore.stats =
  if procs < 2 then
    invalid_arg "Farm_sim.dynamic_multicore: needs a master and at least one worker";
  Scl_sim.Spmd.run_multicore_collect ?domains ~procs (dynamic_program spec)

(* Skewed job mix used by tests and benches: the heavy jobs are clustered
   at the front of the index range, so static block dealing dumps them all
   on the first processors while demand-driven dealing spreads them. *)
let skewed_spec ~njobs ~skew : int job_spec =
  {
    njobs;
    run = (fun i -> i * i);
    flops = (fun i -> if i < njobs / 8 then 1000 * skew (* heavy *) else 1000);
  }
