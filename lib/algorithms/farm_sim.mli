(** The farm skeleton's two distributed implementation strategies: static
    block dealing ([farm f env = map (f env)]) versus a demand-driven
    master–worker task queue. Their crossover under job-size skew is the
    classic farm trade-off the bench harness reports. *)

open Machine

type 'r job_spec = {
  njobs : int;
  run : int -> 'r;  (** executed on the host; deterministic *)
  flops : int -> int;  (** simulated cost of job [i] *)
}

val static : ?cost:Cost_model.t -> procs:int -> 'r job_spec -> 'r array * Sim.stats
(** Jobs block-scattered up front; no scheduling traffic. *)

val dynamic :
  ?cost:Cost_model.t ->
  ?grace:float ->
  ?chaos:Chaos.spec ->
  procs:int ->
  'r job_spec ->
  'r array * Sim.stats
(** Master (rank 0) deals jobs on request; [procs - 1] workers.

    The protocol is at-least-once with job-id dedup: when fresh jobs run
    out, outstanding (dealt-but-unfinished) jobs are re-dealt to idle
    requesters — so a crashed or stalling worker cannot strand a job — and
    duplicate results are dropped (counters ["farm.retries"] /
    ["farm.reassignments"]).

    [~grace] (engine-clock seconds) arms the master's failure detector: it
    must exceed the longest single job's duration plus a round trip. Any
    worker silent that long is presumed dead; if ALL un-released workers go
    silent while jobs remain, the farm fails loudly. Without [~grace], a
    worker crash leaves the master blocked (ending in the engine's
    [Deadlock]). [~chaos] wraps every rank's engine in the fault injector.
    @raise Invalid_argument if [procs < 2]. *)

val dynamic_multicore :
  ?domains:int ->
  ?grace:float ->
  ?chaos:Chaos.spec ->
  procs:int ->
  'r job_spec ->
  'r array * Multicore.stats
(** The dynamic farm on real OCaml 5 domains: genuinely concurrent
    workers, nondeterministic request interleaving at the master, same
    indexed results. [~grace] is wall-clock seconds here.
    @raise Invalid_argument if [procs < 2]. *)

val dynamic_procs :
  ?grace:float ->
  ?chaos:Chaos.spec ->
  procs:int ->
  'r job_spec ->
  'r array * Procs.stats
(** The dynamic farm on real OS processes ([Machine.Procs]): a worker
    crash is a dead PID, detected by the master's [~grace] timeouts and
    healed by re-dealing, end-to-end for real. Job bodies and results
    must be marshalable. [~grace] is wall-clock seconds. Fork safety:
    only callable in a process that has never created another domain
    (see {!Machine.Procs}).
    @raise Invalid_argument if [procs < 2]. *)

val dynamic_program : ?grace:float -> 'r job_spec -> Comm.t -> 'r array option
(** The dynamic farm's SPMD body itself (rank 0 = master, others =
    workers), for embedding in a larger program via [Spmd.run_*] — e.g.
    running the farm alongside ranks that deliberately misbehave in
    fault-injection tests. Rank 0 returns [Some results]; workers return
    [None]. The [dynamic*] wrappers above are [Spmd.run_*_collect] over
    this body. *)

val skewed_spec : njobs:int -> skew:int -> int job_spec
(** A job mix with a few [skew]-times-heavier jobs among light ones — the
    distribution that defeats static dealing. *)
