(** The farm skeleton's two distributed implementation strategies: static
    block dealing ([farm f env = map (f env)]) versus a demand-driven
    master–worker task queue. Their crossover under job-size skew is the
    classic farm trade-off the bench harness reports. *)

open Machine

type 'r job_spec = {
  njobs : int;
  run : int -> 'r;  (** executed on the host; deterministic *)
  flops : int -> int;  (** simulated cost of job [i] *)
}

val static : ?cost:Cost_model.t -> procs:int -> 'r job_spec -> 'r array * Sim.stats
(** Jobs block-scattered up front; no scheduling traffic. *)

val dynamic : ?cost:Cost_model.t -> procs:int -> 'r job_spec -> 'r array * Sim.stats
(** Master (rank 0) deals jobs on request; [procs - 1] workers.
    @raise Invalid_argument if [procs < 2]. *)

val dynamic_multicore : ?domains:int -> procs:int -> 'r job_spec -> 'r array * Multicore.stats
(** The dynamic farm on real OCaml 5 domains: genuinely concurrent
    workers, nondeterministic request interleaving at the master, same
    indexed results.
    @raise Invalid_argument if [procs < 2]. *)

val skewed_spec : njobs:int -> skew:int -> int job_spec
(** A job mix with a few [skew]-times-heavier jobs among light ones — the
    distribution that defeats static dealing. *)
