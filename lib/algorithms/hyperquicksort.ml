(* Hyperquicksort (Wagar; paper Section 3's second example) in three
   renderings:

   1. [sort_recursive] — the Section 3 divide-and-conquer SCL program:
      nested parallelism via split/combine, pivot spread via applybrdcast,
      exchange via fetch.
   2. [sort_flat]      — the Section 5 flattened iterative SPMD program
      (the output of the flattening transformation), using iterFor.
   3. [sort_sim]       — the skeleton implementation templates instantiated
      on the simulated distributed-memory machine; regenerates the paper's
      Table 1 / Figure 3 experiment.

   Robustness extension beyond the paper: when a group leader holds no data
   (possible for skewed inputs), the pivot is taken from the first
   non-empty member of the group (recursive/flat) or the first [Some] in an
   allreduce (simulator); when the whole group is empty the exchange is
   skipped. On the paper's workload (uniform random keys) this never
   triggers. *)

open Scl

let log2_exact = Machine.Topology.log2_exact

(* --- 1. recursive divide-and-conquer (paper Section 3) ------------------ *)

let rec hsort ~exec d (da : int array Par_array.t) : int array Par_array.t =
  if d = 0 then da
  else begin
    let p = Par_array.length da in
    let half = p / 2 in
    (* spreadPivot: MIDVALUE at the (first non-empty) leader, broadcast. *)
    let root =
      let rec find i = if i >= p then 0 else if Array.length (Par_array.get da i) > 0 then i else find (i + 1) in
      find 0
    in
    let pivoted = Communication.applybrdcast ~exec Seq_kernels.midvalue root da in
    match fst (Par_array.get pivoted 0) with
    | None -> da (* every processor is empty: nothing to do *)
    | Some pivot ->
        (* exPart: SPLIT locally, exchange portions with the partner in the
           other half of the cube (fetch across partner = i xor half). *)
        let splitpairs =
          Elementary.imap ~exec
            (fun i (_, a) ->
              let lo, hi = Seq_kernels.split_at pivot a in
              if i < half then (lo, hi) else (hi, lo))
            pivoted
        in
        let keeps, gives = Config.unalign splitpairs in
        let received = Communication.fetch ~exec (fun i -> i lxor half) gives in
        (* mergeAndDiv: MERGE, then divide into sub-cubes and recurse. *)
        let merged = Elementary.zip_with ~exec Seq_kernels.merge keeps received in
        let subcubes = Partition.split (Partition.Block 2) merged in
        Partition.combine (Elementary.map ~exec (hsort ~exec (d - 1)) subcubes)
  end

let sort_recursive ?(exec = Exec.sequential) ~dims (a : int array) : int array =
  if dims < 0 then invalid_arg "Hyperquicksort.sort_recursive: negative dimension";
  let p = 1 lsl dims in
  let da =
    Elementary.map ~exec Seq_kernels.quicksort (Partition.apply (Partition.Block p) a)
  in
  let sorted = hsort ~exec dims da in
  Array.concat (Par_array.to_list sorted)

(* --- 2. flattened iterative SPMD form (paper Section 5) ----------------- *)

let sort_flat ?(exec = Exec.sequential) ~dims (a : int array) : int array =
  if dims < 0 then invalid_arg "Hyperquicksort.sort_flat: negative dimension";
  let p = 1 lsl dims in
  let da =
    Elementary.map ~exec Seq_kernels.quicksort (Partition.apply (Partition.Block p) a)
  in
  let step it x =
    let gsz = 1 lsl (dims - it) in
    let half = gsz / 2 in
    (* wpivot: every processor computes MIDVALUE locally; the group pivot is
       fetched from the group's (first non-empty) leader — the paper's
       [fetch (mf d)] with mf i = (i / gsz) * gsz. *)
    let mids = Elementary.map ~exec Seq_kernels.midvalue x in
    let leader =
      Array.init (p / gsz) (fun g ->
          let base = g * gsz in
          let rec find k = if k >= gsz then base else if Par_array.get mids (base + k) <> None then base + k else find (k + 1) in
          find 0)
    in
    let pivots = Communication.fetch ~exec (fun i -> leader.(i / gsz)) mids in
    let aligned = Config.align pivots x in
    (* exPart: SPLIT against the pivot, exchange with the partner. *)
    let splitpairs =
      Elementary.imap ~exec
        (fun i (pv, a) ->
          match pv with
          | None -> (a, [||])
          | Some pivot ->
              let lo, hi = Seq_kernels.split_at pivot a in
              if i land half = 0 then (lo, hi) else (hi, lo))
        aligned
    in
    let keeps, gives = Config.unalign splitpairs in
    let received = Communication.fetch ~exec (fun i -> i lxor half) gives in
    Elementary.zip_with ~exec Seq_kernels.merge keeps received
  in
  let final = Computational.iter_for dims step da in
  Array.concat (Par_array.to_list final)

(* --- 3. simulated distributed-memory machine ----------------------------- *)

open Machine

(* One processor's SPMD program.  [verbose] adds trace notes used to
   regenerate the paper's Figure 2. *)
let hqs_program ~verbose (data : int array option) (comm : Comm.t) : int array option =
  let p = Comm.size comm in
  let d = log2_exact p in
  let say fmt = Printf.ksprintf (fun s -> if verbose then Comm.note comm s) fmt in
  let show a =
    if Array.length a <= 40 then
      "[" ^ String.concat " " (Array.to_list (Array.map string_of_int a)) ^ "]"
    else Printf.sprintf "[%d elements]" (Array.length a)
  in
  (* Distribute, then SEQ_QUICKSORT locally. *)
  let dv = Scl_sim.Dvec.scatter comm ~root:0 data in
  let local = ref (Seq_kernels.quicksort (Scl_sim.Dvec.local dv)) in
  Comm.work_flops comm (Scl_sim.Kernels.sort_flops (Array.length !local));
  say "after local quicksort: %s" (show !local);
  (* Iterate over cube dimensions, splitting the group communicator each
     round — the paper's mergeAndDiv / dynamic processor grouping. *)
  let c = ref comm in
  for _it = 0 to d - 1 do
    let gsz = Comm.size !c in
    let half = gsz / 2 in
    let me = Comm.rank !c in
    (* pivot: first non-empty member's MIDVALUE, shared group-wide. *)
    Comm.work_flops comm Scl_sim.Kernels.median_flops;
    let first_some a b = if a = None then b else a in
    let pivot = Comm.allreduce !c first_some (Seq_kernels.midvalue !local) in
    (match pivot with
    | None -> () (* the whole group is empty *)
    | Some pivot ->
        say "group pivot %d" pivot;
        (* SPLIT locally... *)
        Comm.work_flops comm (Scl_sim.Kernels.binary_search_flops (Array.length !local));
        let lo, hi = Seq_kernels.split_at pivot !local in
        let keep, give = if me < half then (lo, hi) else (hi, lo) in
        (* ...exchange with the partner in the other half-cube... *)
        let partner = me lxor half in
        let (recvd : int array) = Comm.exchange !c ~partner give in
        (* ...and MERGE. *)
        Comm.work_flops comm
          (Scl_sim.Kernels.merge_flops (Array.length keep + Array.length recvd));
        local := Seq_kernels.merge keep recvd;
        say "after exchange with partner %d: %s" partner (show !local));
    (* divide the cube *)
    c := Comm.split !c ~color:(if me < half then 0 else 1) ~key:me
  done;
  (* Collect to processor 0; chunk sizes changed, so gather variable-length
     chunks in rank order. *)
  let result = Comm.gather comm ~root:0 !local in
  Option.map (fun chunks -> Array.concat (Array.to_list chunks)) result

let sort_sim ?(cost = Cost_model.ap1000) ?trace ?(topology = Topology.Hypercube) ~procs
    (data : int array) : int array * Sim.stats =
  if not (Topology.is_power_of_two procs) then
    invalid_arg "Hyperquicksort.sort_sim: processor count must be a power of two";
  Scl_sim.Spmd.run_collect ?trace ~cost ~topology ~procs (fun comm ->
      hqs_program ~verbose:false (if Comm.rank comm = 0 then Some data else None) comm)

(* The same program body on real domains: the engine-parametric payoff.
   [Comm.work_flops] becomes a no-op, the local quicksort/merge kernels are
   the actual work, and messages move zero-copy between domains. *)
let sort_multicore ?domains ~procs (data : int array) : int array * Multicore.stats =
  if not (Topology.is_power_of_two procs) then
    invalid_arg "Hyperquicksort.sort_multicore: processor count must be a power of two";
  Scl_sim.Spmd.run_multicore_collect ?domains ~procs (fun comm ->
      hqs_program ~verbose:false (if Comm.rank comm = 0 then Some data else None) comm)

(* And on real OS processes: the input array reaches every child by fork
   (each rank's closure ignores it except at rank 0), the portions cross
   the sockets by [Marshal], and the sorted result returns in rank 0's
   verdict. Same values as both other engines. *)
let sort_procs ~procs (data : int array) : int array * Procs.stats =
  if not (Topology.is_power_of_two procs) then
    invalid_arg "Hyperquicksort.sort_procs: processor count must be a power of two";
  Scl_sim.Spmd.run_procs_collect ~procs (fun comm ->
      hqs_program ~verbose:false (if Comm.rank comm = 0 then Some data else None) comm)

(* The same SPMD program with the local phases on the unboxed int flat
   tier ([Scl.Flat.Int]): in-place local sort, O(log n) zero-copy
   [split_at] (the boxed kernel copies both halves), and merge into fresh
   flat storage.  Only the inter-processor messages stay boxed — the
   engines' slice tier is float64-only and Bigarrays don't marshal, so
   the give-portion converts to an [int array] at the exchange boundary.
   Flops charges are identical to [hqs_program], keeping sim timings
   comparable between the tiers. *)
let hqs_program_flatint (data : int array option) (comm : Comm.t) : int array option =
  let module FI = Scl.Flat.Int in
  let p = Comm.size comm in
  let d = log2_exact p in
  let dv = Scl_sim.Dvec.scatter comm ~root:0 data in
  let local = ref (FI.of_int_array (Scl_sim.Dvec.local dv)) in
  FI.sort !local;
  Comm.work_flops comm (Scl_sim.Kernels.sort_flops (Scl.Flat.length !local));
  let c = ref comm in
  for _it = 0 to d - 1 do
    let gsz = Comm.size !c in
    let half = gsz / 2 in
    let me = Comm.rank !c in
    Comm.work_flops comm Scl_sim.Kernels.median_flops;
    let first_some a b = if a = None then b else a in
    let pivot = Comm.allreduce !c first_some (FI.midvalue !local) in
    (match pivot with
    | None -> ()
    | Some pivot ->
        Comm.work_flops comm (Scl_sim.Kernels.binary_search_flops (Scl.Flat.length !local));
        let lo, hi = FI.split_at pivot !local in
        let keep, give = if me < half then (lo, hi) else (hi, lo) in
        let partner = me lxor half in
        let (recvd : int array) = Comm.exchange !c ~partner (FI.to_int_array give) in
        Comm.work_flops comm
          (Scl_sim.Kernels.merge_flops (Scl.Flat.length keep + Array.length recvd));
        local := FI.merge keep (FI.of_int_array recvd));
    c := Comm.split !c ~color:(if me < half then 0 else 1) ~key:me
  done;
  let result = Comm.gather comm ~root:0 (FI.to_int_array !local) in
  Option.map (fun chunks -> Array.concat (Array.to_list chunks)) result

let sort_sim_flatint ?(cost = Cost_model.ap1000) ?trace ?(topology = Topology.Hypercube)
    ~procs (data : int array) : int array * Sim.stats =
  if not (Topology.is_power_of_two procs) then
    invalid_arg "Hyperquicksort.sort_sim_flatint: processor count must be a power of two";
  Scl_sim.Spmd.run_collect ?trace ~cost ~topology ~procs (fun comm ->
      hqs_program_flatint (if Comm.rank comm = 0 then Some data else None) comm)

let sort_multicore_flatint ?domains ~procs (data : int array) : int array * Multicore.stats =
  if not (Topology.is_power_of_two procs) then
    invalid_arg "Hyperquicksort.sort_multicore_flatint: processor count must be a power of two";
  Scl_sim.Spmd.run_multicore_collect ?domains ~procs (fun comm ->
      hqs_program_flatint (if Comm.rank comm = 0 then Some data else None) comm)

(* Figure-2 style annotated run: returns the sorted array, the stats and
   the trace notes describing each stage. *)
let sort_sim_traced ?(cost = Cost_model.ap1000) ~procs (data : int array) :
    int array * Sim.stats * (float * int * string) list =
  let trace = Trace.create () in
  let result, stats =
    Scl_sim.Spmd.run_collect ~trace ~cost ~topology:Topology.Hypercube ~procs (fun comm ->
        hqs_program ~verbose:true (if Comm.rank comm = 0 then Some data else None) comm)
  in
  (result, stats, Trace.notes trace)
