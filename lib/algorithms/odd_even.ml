(* Odd-even transposition sort — the ring network's native sort: P
   compare-split phases between alternating neighbour pairs.  Its
   communication is strictly nearest-neighbour, so unlike the hypercube
   sorts it runs at full efficiency on a ring; the bench contrasts it with
   hyperquicksort when both are priced on a ring topology.

   Correctness note: the Baudet–Stevenson block odd-even theorem (P phases
   suffice for P sorted blocks) requires *equal* block sizes, so the input
   is padded to a multiple of P with +inf sentinels and the padding is
   stripped after the gather — the same discipline as the bitonic sort. *)

open Machine

let sentinel = max_int

let sort_program (data : int array option) (comm : Comm.t) : int array option =
  let p = Comm.size comm in
  let me = Comm.rank comm in
  let total = Comm.bcast comm ~root:0 (Option.map Array.length data) in
  let padded = ((total + p - 1) / p) * p in
  let padded_data =
    Option.map (fun a -> Array.append a (Array.make (padded - total) sentinel)) data
  in
  let dv = Scl_sim.Dvec.scatter comm ~root:0 padded_data in
  let mine = ref (Seq_kernels.quicksort (Scl_sim.Dvec.local dv)) in
  Comm.work_flops comm (Scl_sim.Kernels.sort_flops (Array.length !mine));
  (* P phases; in phase k the pairs (i, i+1) with i ≡ k (mod 2) compare-split:
     the left partner keeps the low half, the right the high half. *)
  for phase = 0 to p - 1 do
    let partner =
      if (me + phase) mod 2 = 0 then me + 1 (* I am the left of the pair *)
      else me - 1
    in
    if partner >= 0 && partner < p then begin
      let theirs : int array = Comm.exchange comm ~partner !mine in
      Comm.work_flops comm (Scl_sim.Kernels.merge_flops (Array.length !mine + Array.length theirs));
      mine := Bitonic.compare_split ~keep_low:(me < partner) !mine theirs
    end
  done;
  match Comm.gather comm ~root:0 !mine with
  | Some chunks ->
      let all = Array.concat (Array.to_list chunks) in
      Some (Array.sub all 0 total)
  | None -> None

let sort_sim ?(cost = Cost_model.ap1000) ?trace ?(topology = Topology.Ring) ~procs
    (data : int array) : int array * Sim.stats =
  if Array.exists (fun x -> x = sentinel) data then
    invalid_arg "Odd_even.sort_sim: max_int keys are reserved as padding sentinels";
  Scl_sim.Spmd.run_collect ?trace ~cost ~topology ~procs (fun comm ->
      sort_program (if Comm.rank comm = 0 then Some data else None) comm)
