(* Cannon's matrix-multiplication algorithm — the classic workload for the
   paper's rotate_row / rotate_col communication skeletons: an n x n
   multiply on a q x q grid of blocks, with an initial skew and q
   shift-multiply-accumulate rounds.

   Host rendering: Par_array2 of blocks + rotate_row/rotate_col.
   Simulator rendering: q x q processors on a torus (the AP1000's T-net
   shape), shifting blocks to grid neighbours each round. *)

open Scl

type block = float array array

let block_add (x : block) (y : block) : block =
  Array.mapi (fun i row -> Array.mapi (fun j v -> v +. y.(i).(j)) row) x

let zero_block n : block = Array.init n (fun _ -> Array.make n 0.0)

let check_square_divisible name a grid =
  let n = Array.length a in
  Array.iter (fun r -> if Array.length r <> n then invalid_arg (name ^ ": non-square matrix")) a;
  if grid <= 0 then invalid_arg (name ^ ": grid must be positive");
  if n mod grid <> 0 then invalid_arg (name ^ ": grid must divide the matrix dimension");
  n

(* Cut an n x n matrix into a q x q Par_array2 of dense blocks. *)
let to_blocks q (m : float array array) : block Par_array2.t =
  let n = Array.length m in
  let bs = n / q in
  Par_array2.init ~rows:q ~cols:q (fun bi bj ->
      Array.init bs (fun i -> Array.init bs (fun j -> m.((bi * bs) + i).((bj * bs) + j))))

let of_blocks (blocks : block Par_array2.t) : float array array =
  let q = Par_array2.rows blocks in
  if q = 0 then [||]
  else begin
    let bs = Array.length (Par_array2.get blocks 0 0) in
    Array.init (q * bs) (fun i ->
        Array.init (q * bs) (fun j -> (Par_array2.get blocks (i / bs) (j / bs)).(i mod bs).(j mod bs)))
  end

(* --- host-SCL version ------------------------------------------------------ *)

let multiply_scl ?(exec = Exec.sequential) ~grid (a : float array array) (b : float array array)
    : float array array =
  let n = check_square_divisible "Cannon.multiply_scl" a grid in
  let n' = check_square_divisible "Cannon.multiply_scl" b grid in
  if n <> n' then invalid_arg "Cannon.multiply_scl: dimension mismatch";
  if n = 0 then [||]
  else begin
    let q = grid in
    (* Initial skew: row i of A left by i, column j of B up by j. *)
    let ab = Par_array2.rotate_row ~exec (fun i -> i) (to_blocks q a) in
    let bb = Par_array2.rotate_col ~exec (fun j -> j) (to_blocks q b) in
    let cb = Par_array2.init ~rows:q ~cols:q (fun _ _ -> zero_block (n / q)) in
    let step _ (ab, bb, cb) =
      let prod =
        Par_array2.map ~exec (fun (x, y) -> Seq_kernels.matmul x y) (Par_array2.zip ab bb)
      in
      let cb = Par_array2.map ~exec (fun (c, p) -> block_add c p) (Par_array2.zip cb prod) in
      ( Par_array2.rotate_row ~exec (fun _ -> 1) ab,
        Par_array2.rotate_col ~exec (fun _ -> 1) bb,
        cb )
    in
    let _, _, cb = Computational.iter_for q step (ab, bb, cb) in
    of_blocks cb
  end

(* --- simulator version ------------------------------------------------------ *)

open Machine

let cannon_program ~n ~q (ab : block option) (bb : block option) (comm : Comm.t) :
    float array array option =
  let me = Comm.rank comm in
  let bi = me / q and bj = me mod q in
  let bs = n / q in
  let rank_of i j = ((((i mod q) + q) mod q) * q) + (((j mod q) + q) mod q) in
  (* Root scatters the blocks, already skewed. *)
  let blocks_for m skew_rows =
    Array.init (q * q) (fun r ->
        let i = r / q and j = r mod q in
        (* the block that processor (i,j) holds after the skew *)
        let src_j = if skew_rows then (j + i) mod q else j in
        let src_i = if skew_rows then i else (i + j) mod q in
        Array.init bs (fun x -> Array.init bs (fun y -> m.((src_i * bs) + x).((src_j * bs) + y))))
  in
  let a_mine =
    Comm.scatter comm ~root:0 (Option.map (fun m -> blocks_for m true) ab) |> ref
  in
  let b_mine =
    Comm.scatter comm ~root:0 (Option.map (fun m -> blocks_for m false) bb) |> ref
  in
  let c_mine = ref (zero_block bs) in
  for _round = 0 to q - 1 do
    Comm.work_flops comm (Scl_sim.Kernels.matmul_flops bs);
    c_mine := block_add !c_mine (Seq_kernels.matmul !a_mine !b_mine);
    if q > 1 then begin
      (* Shift A left along the row, B up along the column: torus
         neighbours, so each transfer is one hop.  User tags keep the two
         concurrent streams apart. *)
      Comm.send comm ~dest:(rank_of bi (bj - 1)) ~tag:101 !a_mine;
      Comm.send comm ~dest:(rank_of (bi - 1) bj) ~tag:102 !b_mine;
      a_mine := Comm.recv comm ~src:(rank_of bi (bj + 1)) ~tag:101 ();
      b_mine := Comm.recv comm ~src:(rank_of (bi + 1) bj) ~tag:102 ()
    end
  done;
  match Comm.gather comm ~root:0 !c_mine with
  | Some blocks ->
      let pa =
        Par_array2.init ~rows:q ~cols:q (fun i j -> blocks.((i * q) + j))
      in
      Some (of_blocks pa)
  | None -> None

let multiply_sim ?(cost = Cost_model.ap1000) ?trace ~grid (a : float array array)
    (b : float array array) : float array array * Sim.stats =
  let n = check_square_divisible "Cannon.multiply_sim" a grid in
  let n' = check_square_divisible "Cannon.multiply_sim" b grid in
  if n <> n' then invalid_arg "Cannon.multiply_sim: dimension mismatch";
  let q = grid in
  Sim.run_collect ?trace
    { Sim.procs = q * q; topology = Topology.Torus2d (q, q); cost }
    (fun ctx ->
      let comm = Comm.world (Engine.of_sim ctx) in
      let root = Comm.rank comm = 0 in
      cannon_program ~n ~q
        (if root then Some a else None)
        (if root then Some b else None)
        comm)

let multiply_multicore ?domains ~grid (a : float array array) (b : float array array) :
    float array array * Multicore.stats =
  let n = check_square_divisible "Cannon.multiply_multicore" a grid in
  let n' = check_square_divisible "Cannon.multiply_multicore" b grid in
  if n <> n' then invalid_arg "Cannon.multiply_multicore: dimension mismatch";
  let q = grid in
  Multicore.run_collect ?domains ~topology:(Topology.Torus2d (q, q)) ~procs:(q * q)
    (fun eng ->
      let comm = Comm.world eng in
      let root = Comm.rank comm = 0 in
      cannon_program ~n ~q
        (if root then Some a else None)
        (if root then Some b else None)
        comm)

let random_matrix ~seed n =
  let rng = Runtime.Xoshiro.of_seed seed in
  Array.init n (fun _ -> Array.init n (fun _ -> Runtime.Xoshiro.float rng 2.0 -. 1.0))
