(* Direct-summation N-body step — the classic farm workload: every body's
   force evaluation is an independent job whose shared environment is the
   whole body set (the paper's farm "environment" argument, provided by the
   all_to_all / brdcast configuration skeletons).

   Host rendering: farm over bodies with the body array as environment.
   Simulator rendering: allgather of bodies, local force loops, priced. *)

open Scl

type body = { px : float; py : float; pz : float; mass : float }
type accel = { ax : float; ay : float; az : float }

let softening2 = 1e-6

let pairwise (b : body) (other : body) : accel =
  let dx = other.px -. b.px and dy = other.py -. b.py and dz = other.pz -. b.pz in
  let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. softening2 in
  let inv = other.mass /. (r2 *. sqrt r2) in
  { ax = dx *. inv; ay = dy *. inv; az = dz *. inv }

let accumulate (bodies : body array) (b : body) : accel =
  Array.fold_left
    (fun acc other ->
      if other == b then acc
      else begin
        let a = pairwise b other in
        { ax = acc.ax +. a.ax; ay = acc.ay +. a.ay; az = acc.az +. a.az }
      end)
    { ax = 0.0; ay = 0.0; az = 0.0 }
    bodies

(* Sequential reference. *)
let accelerations_seq (bodies : body array) : accel array =
  Array.map (accumulate bodies) bodies

(* Host-SCL: farm with the body set as the shared environment. *)
let accelerations_scl ?(exec = Exec.sequential) (bodies : body array) : accel array =
  Par_array.to_array
    (Computational.farm ~exec accumulate bodies (Par_array.of_array bodies))

(* Work-stealing farm: irregularity-tolerant variant. *)
let accelerations_pool pool (bodies : body array) : accel array =
  Par_array.to_array
    (Computational.farm_dynamic pool accumulate bodies (Par_array.of_array bodies))

(* --- simulator ----------------------------------------------------------- *)

open Machine

let flops_per_interaction = 20

let nbody_program (bodies : body array option) (comm : Comm.t) : accel array option =
  let dv = Scl_sim.Dvec.scatter comm ~root:0 bodies in
  (* environment: every processor needs all bodies (brdcast/allgather). *)
  let all = Scl_sim.Dvec.allgather dv in
  let local = Scl_sim.Dvec.local dv in
  Comm.work_flops comm (flops_per_interaction * Array.length local * Array.length all);
  let acc = Array.map (accumulate all) local in
  Scl_sim.Dvec.gather ~root:0 (Scl_sim.Dvec.of_local comm acc)

let accelerations_sim ?(cost = Cost_model.ap1000) ?trace ~procs (bodies : body array) :
    accel array * Sim.stats =
  Scl_sim.Spmd.run_collect ?trace ~cost ~procs (fun comm ->
      nbody_program (if Comm.rank comm = 0 then Some bodies else None) comm)

let random_bodies ~seed n : body array =
  let rng = Runtime.Xoshiro.of_seed seed in
  Array.init n (fun _ ->
      {
        px = Runtime.Xoshiro.float rng 2.0 -. 1.0;
        py = Runtime.Xoshiro.float rng 2.0 -. 1.0;
        pz = Runtime.Xoshiro.float rng 2.0 -. 1.0;
        mass = 0.1 +. Runtime.Xoshiro.float rng 1.0;
      })

let accel_close (a : accel array) (b : accel array) ~eps =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         Float.abs (x.ax -. y.ax) < eps
         && Float.abs (x.ay -. y.ay) < eps
         && Float.abs (x.az -. y.az) < eps)
       a b
