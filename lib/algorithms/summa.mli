(** SUMMA matrix multiplication on the simulated machine: q rounds of
    row/column block broadcasts in grid sub-communicators — the
    processor-group (nested ParArray) counterpart to Cannon's neighbour
    shifts. *)

open Machine

val multiply_sim :
  ?cost:Cost_model.t ->
  ?trace:Trace.t ->
  grid:int ->
  float array array ->
  float array array ->
  float array array * Sim.stats
(** C = A·B on a grid×grid torus.
    @raise Invalid_argument unless both matrices are n×n with [grid]
    dividing n. *)

val multiply_multicore :
  ?domains:int ->
  grid:int ->
  float array array ->
  float array array ->
  float array array * Multicore.stats
(** The same SPMD program on real OCaml 5 domains; identical product. *)
