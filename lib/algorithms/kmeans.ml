(* Lloyd's k-means in the plane — the farm + reduction workload: assignment
   is an embarrassingly parallel map with the centroids as the farm
   environment; the centroid update is an associative reduction of
   per-cluster (sum, count) accumulators. *)

open Scl

type point = { x : float; y : float }

type result = {
  centroids : point array;
  assignment : int array;
  iterations : int;
  converged : bool;
}

let dist2 a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  (dx *. dx) +. (dy *. dy)

let nearest (centroids : point array) (p : point) : int =
  let best = ref 0 and bestd = ref (dist2 p centroids.(0)) in
  Array.iteri
    (fun k c ->
      let d = dist2 p c in
      if d < !bestd then begin
        best := k;
        bestd := d
      end)
    centroids;
  !best

(* Per-cluster accumulators; the combine is associative and commutative, so
   folds and allreduces apply. *)
type acc = { sx : float array; sy : float array; count : int array }

let acc_zero k = { sx = Array.make k 0.0; sy = Array.make k 0.0; count = Array.make k 0 }

let acc_add1 (a : acc) (p : point) (cluster : int) : unit =
  a.sx.(cluster) <- a.sx.(cluster) +. p.x;
  a.sy.(cluster) <- a.sy.(cluster) +. p.y;
  a.count.(cluster) <- a.count.(cluster) + 1

let acc_combine (a : acc) (b : acc) : acc =
  {
    sx = Array.map2 ( +. ) a.sx b.sx;
    sy = Array.map2 ( +. ) a.sy b.sy;
    count = Array.map2 ( + ) a.count b.count;
  }

(* New centroids; empty clusters keep their old centroid. *)
let new_centroids (old : point array) (a : acc) : point array =
  Array.mapi
    (fun k c ->
      if a.count.(k) = 0 then c
      else { x = a.sx.(k) /. float_of_int a.count.(k); y = a.sy.(k) /. float_of_int a.count.(k) })
    old

let moved old fresh =
  let worst = ref 0.0 in
  Array.iteri (fun k c -> worst := Float.max !worst (sqrt (dist2 c fresh.(k)))) old;
  !worst

let check_k k = if k <= 0 then invalid_arg "Kmeans: k must be positive"

(* --- sequential reference ----------------------------------------------------- *)

let run_seq ?(tol = 1e-9) ?(max_iter = 200) ~k (points : point array) ~(init : point array) :
    result =
  check_k k;
  if Array.length init <> k then invalid_arg "Kmeans: init must supply k centroids";
  let centroids = ref (Array.copy init) in
  let it = ref 0 and converged = ref false in
  while (not !converged) && !it < max_iter do
    let a = acc_zero k in
    Array.iter (fun p -> acc_add1 a p (nearest !centroids p)) points;
    let fresh = new_centroids !centroids a in
    converged := moved !centroids fresh < tol;
    centroids := fresh;
    incr it
  done;
  {
    centroids = !centroids;
    assignment = Array.map (nearest !centroids) points;
    iterations = !it;
    converged = !converged;
  }

(* --- host-SCL version: farm over point chunks, fold of accumulators ------------ *)

let run_scl ?(exec = Exec.sequential) ?(parts = 4) ?(tol = 1e-9) ?(max_iter = 200) ~k
    (points : point array) ~(init : point array) : result =
  check_k k;
  if Array.length init <> k then invalid_arg "Kmeans: init must supply k centroids";
  let chunks = Partition.apply (Partition.Block (max 1 parts)) points in
  let step (centroids, _, it) =
    (* farm: each chunk accumulates against the shared centroid environment *)
    let accs =
      Computational.farm ~exec
        (fun env chunk ->
          let a = acc_zero k in
          Array.iter (fun p -> acc_add1 a p (nearest env p)) chunk;
          a)
        centroids chunks
    in
    let total = Elementary.fold ~exec acc_combine accs in
    let fresh = new_centroids centroids total in
    (fresh, moved centroids fresh, it + 1)
  in
  let centroids, movement, iterations =
    Computational.iter_until step Fun.id
      (fun (_, m, it) -> m < tol || it >= max_iter)
      (Array.copy init, Float.infinity, 0)
  in
  {
    centroids;
    assignment = Array.map (nearest centroids) points;
    iterations;
    converged = movement < tol;
  }

(* --- simulator version ----------------------------------------------------------- *)

open Machine

let kmeans_program ?(tol = 1e-9) ?(max_iter = 200) ~k (points : point array option)
    ~(init : point array) (comm : Comm.t) : result option =
  let dv = Scl_sim.Dvec.scatter comm ~root:0 points in
  let local = Scl_sim.Dvec.local dv in
  let step _i (centroids : point array) =
    Comm.work_flops comm (6 * k * max 1 (Array.length local));
    let a = acc_zero k in
    Array.iter (fun p -> acc_add1 a p (nearest centroids p)) local;
    let total = Comm.allreduce comm acc_combine a in
    let fresh = new_centroids centroids total in
    (fresh, moved centroids fresh)
  in
  let conv =
    Scl_sim.Control.iter_until_conv comm ~max_iter ~tol ~step (Array.copy init)
  in
  let centroids = conv.Scl_sim.Control.state in
  Comm.work_flops comm (6 * k * max 1 (Array.length local));
  let labels = Array.map (nearest centroids) local in
  match Scl_sim.Dvec.gather ~root:0 (Scl_sim.Dvec.of_local comm labels) with
  | Some assignment ->
      Some
        {
          centroids;
          assignment;
          iterations = conv.Scl_sim.Control.iterations;
          converged = conv.Scl_sim.Control.final_residual < tol;
        }
  | None -> None

let run_sim ?(cost = Cost_model.ap1000) ?trace ?(tol = 1e-9) ?(max_iter = 200) ~procs ~k
    (points : point array) ~(init : point array) : result * Sim.stats =
  check_k k;
  if Array.length init <> k then invalid_arg "Kmeans: init must supply k centroids";
  Scl_sim.Spmd.run_collect ?trace ~cost ~procs (fun comm ->
      kmeans_program ~tol ~max_iter ~k
        (if Comm.rank comm = 0 then Some points else None)
        ~init comm)

(* Test workload: k well-separated Gaussian-ish blobs. *)
let blobs ~seed ~k ~per_cluster : point array * point array =
  let rng = Runtime.Xoshiro.of_seed seed in
  let centres =
    Array.init k (fun i ->
        let angle = 2.0 *. Float.pi *. float_of_int i /. float_of_int k in
        { x = 10.0 *. cos angle; y = 10.0 *. sin angle })
  in
  let points =
    Array.concat
      (List.init k (fun i ->
           Array.init per_cluster (fun _ ->
               {
                 x = centres.(i).x +. Runtime.Xoshiro.float rng 1.0 -. 0.5;
                 y = centres.(i).y +. Runtime.Xoshiro.float rng 1.0 -. 0.5;
               })))
  in
  (points, centres)
