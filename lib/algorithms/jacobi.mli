(** Jacobi relaxation for the 1-D Poisson problem −u″ = f with Dirichlet
    boundaries — the [iterUntil] skeleton's workload: iterate a stencil
    until the update norm drops below a tolerance. *)

open Machine

type result = { solution : float array; iterations : int; final_diff : float }

val solve_seq :
  ?tol:float -> ?max_iter:int -> float array -> left:float -> right:float -> result
(** Sequential reference. Defaults: [tol = 1e-8], [max_iter = 100000]. *)

val solve_scl :
  ?exec:Scl.Exec.t ->
  ?parts:int ->
  ?tol:float ->
  ?max_iter:int ->
  float array ->
  left:float ->
  right:float ->
  result
(** Host-SCL rendering: chunked ParArray, halo exchange via [rotate],
    convergence via [fold max], control via [iter_until]. Iteration counts
    match {!solve_seq} exactly. *)

val solve_multicore :
  ?domains:int ->
  ?tol:float ->
  ?max_iter:int ->
  procs:int ->
  float array ->
  left:float ->
  right:float ->
  result * Multicore.stats
(** The same SPMD program on real OCaml 5 domains; the solution and
    iteration count are identical to {!solve_sim}. *)

val solve_sim :
  ?cost:Cost_model.t ->
  ?trace:Trace.t ->
  ?tol:float ->
  ?max_iter:int ->
  procs:int ->
  float array ->
  left:float ->
  right:float ->
  result * Sim.stats
(** Simulator rendering: neighbour halo messages per sweep plus an
    allreduce of the residual — the latency-bound regime. *)

(** {1 Flat tier}

    The same SPMD program over unboxed [Scl.Flat] chunks: halos travel as
    bulk slices (zero-copy on the multicore engine, bytes-priced on the
    simulator). Solutions and iteration counts are bitwise-identical to
    the boxed variants — the boxed path is the differential oracle. *)

val solve_sim_flat :
  ?cost:Cost_model.t ->
  ?trace:Trace.t ->
  ?tol:float ->
  ?max_iter:int ->
  procs:int ->
  float array ->
  left:float ->
  right:float ->
  result * Sim.stats

val solve_multicore_flat :
  ?domains:int ->
  ?tol:float ->
  ?max_iter:int ->
  procs:int ->
  float array ->
  left:float ->
  right:float ->
  result * Multicore.stats
