(** Cannon's matrix multiplication — the showcase for the paper's
    [rotate_row] / [rotate_col] communication skeletons: an initial skew
    followed by q rounds of multiply-accumulate and unit block rotations on
    a q × q grid. *)

open Machine

type block = float array array

val multiply_scl :
  ?exec:Scl.Exec.t -> grid:int -> float array array -> float array array -> float array array
(** Host-SCL rendering over a [Par_array2] of blocks.
    @raise Invalid_argument unless both matrices are n×n with [grid]
    dividing n. *)

val multiply_sim :
  ?cost:Cost_model.t ->
  ?trace:Trace.t ->
  grid:int ->
  float array array ->
  float array array ->
  float array array * Sim.stats
(** Simulator rendering on a grid×grid torus (single-hop neighbour
    shifts). *)

val multiply_multicore :
  ?domains:int ->
  grid:int ->
  float array array ->
  float array array ->
  float array array * Multicore.stats
(** The same SPMD program on real OCaml 5 domains; identical product. *)

val random_matrix : seed:int -> int -> float array array

(** {2 Block plumbing (exposed for SUMMA and tests)} *)

val to_blocks : int -> float array array -> block Scl.Par_array2.t
val of_blocks : block Scl.Par_array2.t -> float array array
val block_add : block -> block -> block
val zero_block : int -> block
