(* Cannon's matrix multiplication with the rotate_row / rotate_col
   communication skeletons — the workload the paper's 2-D rotations are
   designed for.

   Run with:  dune exec examples/cannon_demo.exe *)

let () =
  Format.printf "=== Cannon's algorithm via rotate_row / rotate_col ===@.@.";
  let n = 144 in
  let a = Algorithms.Cannon.random_matrix ~seed:7 n in
  let b = Algorithms.Cannon.random_matrix ~seed:8 n in
  let reference = Algorithms.Seq_kernels.matmul a b in
  let max_err c =
    let worst = ref 0.0 in
    Array.iteri
      (fun i row -> Array.iteri (fun j v -> worst := Float.max !worst (Float.abs (v -. reference.(i).(j)))) row)
      c;
    !worst
  in

  Format.printf "multiplying two %dx%d matrices on a qxq block grid...@.@." n n;
  List.iter
    (fun q ->
      let c = Algorithms.Cannon.multiply_scl ~grid:q a b in
      Format.printf "host SCL, grid %dx%d : max error vs sequential = %.3g@." q q (max_err c))
    [ 2; 3; 4 ];

  Format.printf "@.simulated AP1000 torus (the machine's native topology):@.";
  Format.printf "   grid   procs   time (s)   speedup@.";
  let t1 = ref 0.0 in
  List.iter
    (fun q ->
      let c, stats = Algorithms.Cannon.multiply_sim ~grid:q a b in
      assert (max_err c < 1e-9);
      let t = stats.Machine.Sim.makespan in
      if q = 1 then t1 := t;
      Format.printf "  %2dx%-2d   %4d   %9.4f   %6.2f@." q q (q * q) t (!t1 /. t))
    [ 1; 2; 3; 4; 6 ];
  Format.printf "@.each round multiplies local blocks and rotates A left / B up by one@.";
  Format.printf "grid position - single-hop neighbour traffic on the torus.@."
