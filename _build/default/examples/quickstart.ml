(* Quickstart: the SCL skeletons in ten lines each.

   Run with:  dune exec examples/quickstart.exe *)

open Scl

let () =
  (* A ParArray: element i conceptually lives on virtual processor i. *)
  let xs = Par_array.init 8 (fun i -> i + 1) in
  Format.printf "input           : %a@." (Par_array.pp Fmt.int) xs;

  (* Elementary skeletons. *)
  let doubled = map (fun x -> x * 2) xs in
  Format.printf "map (2*)        : %a@." (Par_array.pp Fmt.int) doubled;
  Format.printf "fold (+)        : %d@." (fold ( + ) xs);
  Format.printf "scan (+)        : %a@." (Par_array.pp Fmt.int) (scan ( + ) xs);

  (* Communication skeletons. *)
  Format.printf "rotate 3        : %a@." (Par_array.pp Fmt.int) (rotate 3 xs);
  let fetched = fetch (fun i -> 7 - i) xs in
  Format.printf "fetch (reverse) : %a@." (Par_array.pp Fmt.int) fetched;

  (* Configuration skeletons: partition a sequential array, compute on the
     pieces, gather it back. *)
  let a = Array.init 10 (fun i -> i * i) in
  let pieces = partition (Partition.Block 3) a in
  let sums = map (Array.fold_left ( + ) 0) pieces in
  Format.printf "partition sums  : %a@." (Par_array.pp Fmt.int) sums;
  Format.printf "gather roundtrip: %b@." (gather (Partition.Block 3) pieces = a);

  (* Computational skeletons. *)
  let farmed = farm (fun env x -> env ^ string_of_int x) "job" (Par_array.of_list [ 1; 2; 3 ]) in
  Format.printf "farm            : %a@." (Par_array.pp Fmt.string) farmed;
  Format.printf "iter_for        : %d@." (iter_for 10 (fun i acc -> acc + i) 0);

  (* The same skeletons on the multicore pool: pass a different backend. *)
  let pool = Runtime.Pool.create ~num_domains:3 () in
  Fun.protect
    ~finally:(fun () -> Runtime.Pool.teardown pool)
    (fun () ->
      let exec = Exec.on_pool pool in
      let big = Par_array.init 1_000_000 Fun.id in
      let total = fold ~exec ( + ) (map ~exec (fun x -> x * x) big) in
      Format.printf "pool map+fold   : %d (on %d workers)@." total (Runtime.Pool.num_workers pool))
