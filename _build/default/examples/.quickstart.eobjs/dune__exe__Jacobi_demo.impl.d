examples/jacobi_demo.ml: Algorithms Array Float Format List Machine
