examples/quickstart.mli:
