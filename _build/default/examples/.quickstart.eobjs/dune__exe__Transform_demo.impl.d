examples/transform_demo.ml: Array Ast Fn Format Machine Optimizer Rewrite Sim_exec Transform Value
