examples/hypersort_demo.ml: Algorithms Array Format List Machine Runtime String
