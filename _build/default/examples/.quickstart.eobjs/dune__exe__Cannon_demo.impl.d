examples/cannon_demo.ml: Algorithms Array Float Format List Machine
