examples/quickstart.ml: Array Exec Fmt Format Fun Par_array Partition Runtime Scl
