examples/gauss_solver.ml: Algorithms Format Fun List Machine Runtime Scl
