examples/generated_demo.ml: Array Format Generated_pipeline_lib Machine Transform
