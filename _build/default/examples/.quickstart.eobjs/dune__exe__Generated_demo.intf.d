examples/generated_demo.mli:
