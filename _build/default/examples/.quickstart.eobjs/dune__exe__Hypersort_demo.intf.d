examples/hypersort_demo.mli:
