examples/gauss_solver.mli:
