examples/cannon_demo.mli:
