examples/transform_demo.mli:
