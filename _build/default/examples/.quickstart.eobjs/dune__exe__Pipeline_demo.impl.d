examples/pipeline_demo.ml: Array Domain Format Fun List Runtime Scl Unix
