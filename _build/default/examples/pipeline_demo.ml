(* Task-parallel stream skeletons: an ordered pipeline of farm stages over
   domains — the P3L-style layer the paper's related-work section situates
   SCL against ("the main focus of P3L is to connect together skeletons
   whose interfaces are single streams").

   The job: a toy image-processing pipeline over "frames" (int matrices):
   decode -> blur (farmed: the expensive stage) -> feature score.

   Run with:  dune exec examples/pipeline_demo.exe *)

open Scl.Stream_skel

type frame = { id : int; pixels : int array array }

let decode id : frame =
  let rng = Runtime.Xoshiro.of_seed id in
  { id; pixels = Array.init 64 (fun _ -> Array.init 64 (fun _ -> Runtime.Xoshiro.int rng 256)) }

let blur (f : frame) : frame =
  let n = Array.length f.pixels in
  let get i j =
    if i < 0 || i >= n || j < 0 || j >= n then 0 else f.pixels.(i).(j)
  in
  let pixels =
    Array.init n (fun i ->
        Array.init n (fun j ->
            (get (i - 1) j + get (i + 1) j + get i (j - 1) + get i (j + 1) + get i j) / 5))
  in
  { f with pixels }

let score (f : frame) : int * int =
  (f.id, Array.fold_left (fun acc row -> Array.fold_left ( + ) acc row) 0 f.pixels)

let () =
  Format.printf "=== Stream skeletons: decode |> blur (farm) |> score ===@.@.";
  let pipe = stage decode >>> farm ~workers:3 blur >>> stage score in
  let frames = List.init 24 Fun.id in
  let t0 = Unix.gettimeofday () in
  let results = run pipe frames in
  let elapsed = Unix.gettimeofday () -. t0 in
  Format.printf "processed %d frames through a %d-stage pipeline (blur farmed x3)@."
    (List.length results) (stages pipe);
  List.iteri
    (fun i (id, s) ->
      if i < 5 then Format.printf "  frame %2d -> score %d@." id s)
    results;
  Format.printf "  ...@.";
  (* The law the skeleton guarantees: identical to the sequential meaning,
     results in input order. *)
  let sequential = List.map (apply pipe) frames in
  assert (results = sequential);
  Format.printf "@.order preserved and results = List.map (apply pipe): verified.@.";
  Format.printf "wall time: %.3f s on %d core(s)@." elapsed (Domain.recommended_domain_count ())
