examples/generated/generated_pipeline_host.ml: Scl
