examples/generated/generated_pipeline.ml: Machine Scl_sim
