(* The paper's Section 3 linear solver: Gauss–Jordan elimination with
   partial pivoting, columns distributed, written with iterFor +
   applybrdcast PARTIALPIVOT + map UPDATE.

   Run with:  dune exec examples/gauss_solver.exe *)

let () =
  Format.printf "=== Parallel Gauss-Jordan linear solver (paper Section 3) ===@.@.";
  let n = 128 in
  let a, b = Algorithms.Gauss.random_system ~seed:42 n in
  Format.printf "solving a dense %dx%d system A x = b...@.@." n n;

  (* Host-SCL version (sequential backend = reference semantics). *)
  let x = Algorithms.Gauss.solve_scl ~parts:8 a b in
  Format.printf "host SCL version   : max residual |Ax - b| = %.3g@."
    (Algorithms.Seq_kernels.residual a x b);

  (* The same skeleton program on the multicore pool. *)
  let pool = Runtime.Pool.create ~num_domains:3 () in
  Fun.protect
    ~finally:(fun () -> Runtime.Pool.teardown pool)
    (fun () ->
      let exec = Scl.Exec.on_pool pool in
      let xp = Algorithms.Gauss.solve_scl ~exec ~parts:8 a b in
      Format.printf "pool-backed version: max residual |Ax - b| = %.3g@."
        (Algorithms.Seq_kernels.residual a xp b));

  (* Simulated AP1000 runs: the scaling story. *)
  Format.printf "@.simulated AP1000 (column-distributed over P processors):@.";
  Format.printf "   P   time (s)   speedup@.";
  let t1 = ref 0.0 in
  List.iter
    (fun p ->
      let xs, stats = Algorithms.Gauss.solve_sim ~procs:p a b in
      assert (Algorithms.Seq_kernels.residual a xs b < 1e-8);
      let t = stats.Machine.Sim.makespan in
      if p = 1 then t1 := t;
      Format.printf "  %2d   %8.4f   %6.2f@." p t (!t1 /. t))
    [ 1; 2; 4; 8; 16 ];
  Format.printf "@.(elimination is broadcast-bound: speedup saturates as P grows,@."
    ;
  Format.printf " the classic behaviour for column-blocked Gauss-Jordan.)@."
