(* Runs the checked-in output of Transform.Codegen (see
   examples/generated/generated_pipeline.ml) and verifies it against the
   skeleton interpreter.

   Run with:  dune exec examples/generated_demo.exe *)

let pipeline_src = "fold add . map square . rotate 3 . iter 2 [ map incr ] . fetch reverse"

let () =
  Format.printf "=== Compiled skeleton pipeline (Transform.Codegen output) ===@.@.";
  Format.printf "pipeline: %s@.@." pipeline_src;
  let input = Array.init 1024 (fun i -> i mod 97) in
  let result, stats = Generated_pipeline_lib.Generated_pipeline.run_pipeline ~procs:8 input in
  Format.printf "generated code on 8 simulated processors: %d (%.6f s, %d msgs)@." result
    stats.Machine.Sim.makespan stats.Machine.Sim.total_msgs;
  (* reference: the interpreter on the same pipeline *)
  let e = Transform.Parser.parse_exn pipeline_src in
  let expected =
    Transform.Value.as_int (Transform.Ast.eval e (Transform.Value.of_int_array input))
  in
  Format.printf "interpreter reference              : %d@." expected;
  assert (result = expected);
  (* the second codegen target: the same pipeline over the host library *)
  let host_result = Generated_pipeline_lib.Generated_pipeline_host.run_pipeline input in
  Format.printf "host-target generated code         : %d@." host_result;
  assert (host_result = expected);
  Format.printf "@.both generated targets and the interpreter agree.@.";
  (* the Section 4 story: the sequential foldr form is NOT compilable until
     the map-distribution rewrite runs *)
  let seq_form = Transform.Ast.Foldr_compose (Transform.Fn.add, Transform.Fn.square) in
  assert (not (Transform.Codegen.compilable seq_form));
  let par_form, _ = Transform.Rewrite.normalize seq_form in
  assert (Transform.Codegen.compilable par_form);
  Format.printf "foldr (add . square) is not compilable; after map distribution (%s) it is.@."
    (Transform.Ast.to_string par_form)
