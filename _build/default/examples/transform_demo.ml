(* The Section 4 transformations firing on real pipelines, with estimated
   and simulated costs before and after.

   Run with:  dune exec examples/transform_demo.exe *)

open Transform

let show title e =
  Format.printf "@.--- %s ---@." title;
  let r = Optimizer.optimize ~procs:16 ~n:65536 e in
  Format.printf "%a@." Optimizer.pp_report r;
  r

let () =
  Format.printf "=== Meaning-preserving transformations (paper Section 4) ===@.";

  (* Map fusion: two data-parallel passes become one. *)
  let _ =
    show "map fusion"
      (Ast.of_chain [ Ast.Map Fn.incr; Ast.Map Fn.double; Ast.Map Fn.square ])
  in

  (* Map distribution: a sequential foldr becomes fold . map. *)
  let _ = show "map distribution" (Ast.Foldr_compose (Fn.add, Fn.square)) in

  (* Communication algebra: two rotations collapse; fetches compose. *)
  let _ =
    show "communication algebra"
      (Ast.of_chain [ Ast.Rotate 3; Ast.Rotate 5; Ast.Fetch (Fn.i_shift 2); Ast.Fetch Fn.i_reverse ])
  in

  (* Flattening: nested data parallelism becomes flat. *)
  let _ =
    show "flattening"
      (Ast.of_chain [ Ast.Split 4; Ast.Map_nested (Ast.Map Fn.square); Ast.Combine ])
  in

  (* Ground truth: run the fusable pipeline on the simulated AP1000. *)
  Format.printf "@.--- simulator ground truth (P = 16, n = 65536) ---@.";
  let pipeline =
    Ast.of_chain
      [ Ast.Map Fn.incr; Ast.Map Fn.double; Ast.Map Fn.square; Ast.Rotate 3; Ast.Rotate 5 ]
  in
  let optimized, _ = Rewrite.normalize pipeline in
  let input = Value.of_int_array (Array.init 65536 (fun i -> i mod 97)) in
  let v1, s1 = Sim_exec.run ~procs:16 pipeline input in
  let v2, s2 = Sim_exec.run ~procs:16 optimized input in
  assert (Value.equal v1 v2);
  Format.printf "original  : %a@.            simulated %.6f s@." Ast.pp pipeline
    s1.Machine.Sim.makespan;
  Format.printf "optimized : %a@.            simulated %.6f s (x%.2f)@." Ast.pp optimized
    s2.Machine.Sim.makespan
    (s1.Machine.Sim.makespan /. s2.Machine.Sim.makespan);
  Format.printf "@.results agree on all 65536 elements; the speedup comes from removed@.";
  Format.printf "barriers, fused passes and merged communication steps.@."
