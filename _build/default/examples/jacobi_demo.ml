(* Jacobi relaxation driven by the iterUntil skeleton: iterate a
   data-parallel stencil until convergence.

   Run with:  dune exec examples/jacobi_demo.exe *)

let () =
  Format.printf "=== Jacobi relaxation with iterUntil (1-D Poisson) ===@.@.";
  let n = 200 in
  (* -u'' = f with u(0) = 0, u(1) = 0 and f = pi^2 sin(pi x):
     exact solution u(x) = sin(pi x). *)
  let pi = Float.pi in
  let f =
    Array.init n (fun j ->
        let x = float_of_int (j + 1) /. float_of_int (n + 1) in
        pi *. pi *. sin (pi *. x))
  in
  let exact j = sin (pi *. (float_of_int (j + 1) /. float_of_int (n + 1))) in

  let report name (r : Algorithms.Jacobi.result) =
    let err = ref 0.0 in
    Array.iteri (fun j v -> err := Float.max !err (Float.abs (v -. exact j))) r.solution;
    Format.printf "%-22s: %6d iterations, final diff %.2e, max error vs sin(pi x) = %.2e@." name
      r.iterations r.final_diff !err
  in

  report "sequential reference" (Algorithms.Jacobi.solve_seq ~tol:1e-9 f ~left:0.0 ~right:0.0);
  report "host SCL (4 chunks)"
    (Algorithms.Jacobi.solve_scl ~parts:4 ~tol:1e-9 f ~left:0.0 ~right:0.0);

  Format.printf "@.simulated AP1000 (halo exchange per sweep + allreduce of the norm):@.";
  Format.printf "   P   time (s)   iterations@.";
  List.iter
    (fun p ->
      let r, stats =
        Algorithms.Jacobi.solve_sim ~procs:p ~tol:1e-6 f ~left:0.0 ~right:0.0
      in
      Format.printf "  %2d   %8.3f   %d@." p stats.Machine.Sim.makespan r.iterations)
    [ 1; 2; 4; 8 ];
  Format.printf "@.(tiny per-sweep work against a per-sweep allreduce: the example@.";
  Format.printf " where communication latency dominates - the opposite regime from@.";
  Format.printf " hyperquicksort, and a classic skeleton-composition cautionary tale.)@."
