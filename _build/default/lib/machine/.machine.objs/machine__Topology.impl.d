lib/machine/topology.ml: Fun List Printf
