lib/machine/topology.mli:
