lib/machine/trace.ml: Array Bytes Float Fmt List String
