lib/machine/sim.mli: Cost_model Format Topology Trace
