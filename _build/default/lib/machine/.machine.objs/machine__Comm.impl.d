lib/machine/comm.ml: Array Fun List Option Sim
