lib/machine/sim.ml: Array Buffer Bytes Cost_model Effect Float Format Hashtbl List Marshal Obj Option Printf Topology Trace
