lib/machine/comm.mli: Sim
