(* Event trace of a simulation run, for debugging and for regenerating the
   paper's Figure-2-style step-by-step illustrations. *)

type kind =
  | Send of { dest : int; tag : int; bytes : int }
  | Recv of { src : int; tag : int; bytes : int }
  | Work of float
  | Barrier_enter
  | Barrier_leave
  | Note of string
  | Finish

type event = { time : float; proc : int; kind : kind }

type t = { mutable events : event list; enabled : bool }

let create () = { events = []; enabled = true }

let disabled () = { events = []; enabled = false }

let record t ~time ~proc kind = if t.enabled then t.events <- { time; proc; kind } :: t.events

let events t =
  List.stable_sort (fun a b -> compare (a.time, a.proc) (b.time, b.proc)) (List.rev t.events)

let length t = List.length t.events

let clear t = t.events <- []

let pp_kind ppf = function
  | Send { dest; tag; bytes } -> Fmt.pf ppf "send -> p%d (tag %d, %d B)" dest tag bytes
  | Recv { src; tag; bytes } -> Fmt.pf ppf "recv <- p%d (tag %d, %d B)" src tag bytes
  | Work d -> Fmt.pf ppf "work %.3g s" d
  | Barrier_enter -> Fmt.pf ppf "barrier enter"
  | Barrier_leave -> Fmt.pf ppf "barrier leave"
  | Note s -> Fmt.pf ppf "note: %s" s
  | Finish -> Fmt.pf ppf "finish"

let pp_event ppf e = Fmt.pf ppf "[%10.6f] p%-3d %a" e.time e.proc pp_kind e.kind

let pp ppf t = Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_event) (events t)

let filter_proc t proc = List.filter (fun e -> e.proc = proc) (events t)

let notes t =
  List.filter_map (fun e -> match e.kind with Note s -> Some (e.time, e.proc, s) | _ -> None) (events t)

(* ASCII Gantt chart: one row per processor, time left to right.  Work
   intervals are drawn as '=', sends as '>', receives as '<', barriers as
   '|'; '.' is idle.  Intended for small traces (demos, debugging). *)
let pp_gantt ?(width = 72) ppf t =
  let evs = events t in
  if evs = [] then Fmt.pf ppf "(empty trace)@."
  else begin
    let t_end = List.fold_left (fun acc e -> Float.max acc e.time) 0.0 evs in
    let procs = 1 + List.fold_left (fun acc e -> max acc e.proc) 0 evs in
    let t_end = if t_end <= 0.0 then 1.0 else t_end in
    let col time = min (width - 1) (int_of_float (time /. t_end *. float_of_int (width - 1))) in
    let rows = Array.init procs (fun _ -> Bytes.make width '.') in
    List.iter
      (fun e ->
        let row = rows.(e.proc) in
        match e.kind with
        | Work d ->
            (* the event is stamped at the end of the work interval *)
            let c1 = col e.time and c0 = col (e.time -. d) in
            for c = c0 to c1 do
              Bytes.set row c '='
            done
        | Send _ -> Bytes.set row (col e.time) '>'
        | Recv _ -> Bytes.set row (col e.time) '<'
        | Barrier_enter | Barrier_leave -> Bytes.set row (col e.time) '|'
        | Finish -> Bytes.set row (col e.time) '#'
        | Note _ -> ())
      evs;
    Fmt.pf ppf "@[<v>time 0 %s %.6gs@," (String.make (width - 14) '-') t_end;
    Array.iteri (fun p row -> Fmt.pf ppf "p%-3d %s@," p (Bytes.to_string row)) rows;
    Fmt.pf ppf "     (= work, > send, < recv, | barrier, # finish)@]"
  end
