(** Interconnect topologies and hop metrics for the simulated machine.

    Routing is assumed minimal and contention-free: the simulator charges
    per-hop wire latency but does not model link contention. *)

type t =
  | Hypercube  (** requires a power-of-two processor count *)
  | Torus2d of int * int  (** rows × cols with wrap-around (AP1000-style) *)
  | Mesh2d of int * int  (** rows × cols, no wrap-around *)
  | Ring
  | Complete  (** direct link between every pair *)
  | Star  (** all traffic relayed through processor 0 *)

val to_string : t -> string

val validate : t -> procs:int -> unit
(** @raise Invalid_argument if [procs] does not fit the topology. *)

val hops : t -> procs:int -> src:int -> dest:int -> int
(** Minimal-path hop count; 0 when [src = dest]. *)

val neighbors : t -> procs:int -> int -> int list
(** Directly connected ranks. *)

val diameter : t -> procs:int -> int

val is_power_of_two : int -> bool

val log2_exact : int -> int
(** @raise Invalid_argument if the argument is not a power of two. *)

val popcount : int -> int
