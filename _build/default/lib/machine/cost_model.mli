(** Alpha–beta communication and scalar compute cost parameters. *)

type t = {
  name : string;
  flop_time : float;  (** seconds per scalar arithmetic operation *)
  mem_time : float;  (** seconds per word for memory-bound loops *)
  alpha : float;  (** per-message software latency (seconds) *)
  per_hop : float;  (** extra wire latency per hop *)
  beta : float;  (** seconds per payload byte *)
  send_overhead : float;  (** sender CPU time per message *)
  recv_overhead : float;  (** receiver CPU time per message *)
  barrier_base : float;  (** per-round barrier cost *)
}

val ap1000 : t
(** Fujitsu AP1000 calibration (25 MHz SPARC cells, 25 MB/s T-net links) —
    the machine of the paper's Section 5 experiments. *)

val paragon : t
(** Intel Paragon (1993): fast mesh links, heavy OSF message latency. *)

val cm5 : t
(** Thinking Machines CM-5 (1992): fat tree plus a hardware control network
    (cheap barriers/reductions). *)

val t3d : t
(** Cray T3D (1993): fast Alpha nodes on a low-latency 3-D torus. *)

val modern : t
(** A contemporary commodity cluster. *)

val zero_comm : t
(** Free communication; isolates compute in ablations. *)

val unit_costs : t
(** Every cost parameter is 1 (or 0 for overheads): makes simulated times
    exactly predictable in unit tests. *)

val transfer_time : t -> hops:int -> bytes:int -> float
(** Wire time of one message: [alpha + hops*per_hop + bytes*beta]. *)

val barrier_time : t -> procs:int -> float
(** [barrier_base * ceil(log2 procs)]; 0 for a single processor. *)

val flops : t -> int -> float
(** Time for [n] scalar operations. *)

val pp : Format.formatter -> t -> unit
