(* Machine cost parameters: an alpha-beta communication model plus scalar
   compute rates.  All times in seconds.

   A point-to-point transfer of [b] bytes over [h] hops costs
     alpha + h * per_hop + b * beta
   on the wire; in addition the sender is charged [send_overhead] and the
   receiver [recv_overhead] of CPU time.  A barrier over P processors costs
   [barrier_base * ceil(log2 P)] after the last arrival. *)

type t = {
  name : string;
  flop_time : float;  (* seconds per scalar arithmetic operation *)
  mem_time : float;  (* seconds per word for memory-bound inner loops *)
  alpha : float;  (* per-message software latency *)
  per_hop : float;  (* additional wire latency per hop *)
  beta : float;  (* seconds per byte of payload *)
  send_overhead : float;  (* CPU time charged to the sender per message *)
  recv_overhead : float;  (* CPU time charged to the receiver per message *)
  barrier_base : float;  (* per-round barrier cost *)
}

(* Fujitsu AP1000 (Ishihata et al. 1991): 25 MHz SPARC cells (~6 Mflop/s
   effective scalar rate), T-net with 25 MB/s links, ~20 us software message
   latency, fast hardware synchronisation network. *)
let ap1000 =
  {
    name = "ap1000";
    flop_time = 1.0 /. 6.0e6;
    mem_time = 120.0e-9;
    alpha = 20.0e-6;
    per_hop = 0.5e-6;
    beta = 1.0 /. 25.0e6;
    send_overhead = 5.0e-6;
    recv_overhead = 5.0e-6;
    barrier_base = 5.0e-6;
  }

(* Intel Paragon (1993): i860XP cells (~10 Mflop/s effective scalar),
   ~40 us OSF message latency, 175 MB/s links on a 2-D mesh. *)
let paragon =
  {
    name = "paragon";
    flop_time = 1.0 /. 10.0e6;
    mem_time = 80.0e-9;
    alpha = 40.0e-6;
    per_hop = 0.1e-6;
    beta = 1.0 /. 175.0e6;
    send_overhead = 10.0e-6;
    recv_overhead = 10.0e-6;
    barrier_base = 10.0e-6;
  }

(* Thinking Machines CM-5 (1992): 33 MHz SPARC nodes (~8 Mflop/s scalar),
   fat-tree with ~5 us network latency, 10 MB/s per-node bandwidth, and a
   fast dedicated control network for barriers/reductions. *)
let cm5 =
  {
    name = "cm5";
    flop_time = 1.0 /. 8.0e6;
    mem_time = 100.0e-9;
    alpha = 5.0e-6;
    per_hop = 0.3e-6;
    beta = 1.0 /. 10.0e6;
    send_overhead = 3.0e-6;
    recv_overhead = 3.0e-6;
    barrier_base = 1.0e-6;  (* hardware control network *)
  }

(* Cray T3D (1993): 150 MHz Alpha nodes (~30 Mflop/s effective scalar),
   3-D torus with ~2 us latency and 300 MB/s links. *)
let t3d =
  {
    name = "t3d";
    flop_time = 1.0 /. 30.0e6;
    mem_time = 40.0e-9;
    alpha = 2.0e-6;
    per_hop = 0.1e-6;
    beta = 1.0 /. 300.0e6;
    send_overhead = 1.0e-6;
    recv_overhead = 1.0e-6;
    barrier_base = 2.0e-6;
  }

(* A contemporary commodity cluster node: ~2 Gflop/s scalar, ~1 us MPI
   latency, ~10 GB/s effective link bandwidth. *)
let modern =
  {
    name = "modern";
    flop_time = 0.5e-9;
    mem_time = 1.0e-9;
    alpha = 1.0e-6;
    per_hop = 50.0e-9;
    beta = 1.0 /. 10.0e9;
    send_overhead = 0.3e-6;
    recv_overhead = 0.3e-6;
    barrier_base = 1.0e-6;
  }

(* Communication is free: isolates the compute component in tests and
   ablations. *)
let zero_comm =
  {
    name = "zero-comm";
    flop_time = 1.0 /. 6.0e6;
    mem_time = 0.0;
    alpha = 0.0;
    per_hop = 0.0;
    beta = 0.0;
    send_overhead = 0.0;
    recv_overhead = 0.0;
    barrier_base = 0.0;
  }

(* Unit costs: every message costs 1s latency + 1s/byte, every flop 1s.
   Makes simulator arithmetic exactly checkable in unit tests. *)
let unit_costs =
  {
    name = "unit";
    flop_time = 1.0;
    mem_time = 1.0;
    alpha = 1.0;
    per_hop = 1.0;
    beta = 1.0;
    send_overhead = 0.0;
    recv_overhead = 0.0;
    barrier_base = 0.0;
  }

let transfer_time t ~hops ~bytes =
  t.alpha +. (float_of_int hops *. t.per_hop) +. (float_of_int bytes *. t.beta)

let barrier_time t ~procs =
  if procs <= 1 then 0.0
  else begin
    let rec rounds acc n = if n <= 1 then acc else rounds (acc + 1) ((n + 1) / 2) in
    float_of_int (rounds 0 procs) *. t.barrier_base
  end

let flops t n = float_of_int n *. t.flop_time

let pp ppf t =
  Fmt.pf ppf
    "@[<v>%s:@ flop=%.3gns mem=%.3gns@ alpha=%.3gus per_hop=%.3gus beta=%.3gns/B@ ovh=%.3g/%.3gus \
     barrier=%.3gus@]"
    t.name (t.flop_time *. 1e9) (t.mem_time *. 1e9) (t.alpha *. 1e6) (t.per_hop *. 1e6)
    (t.beta *. 1e9) (t.send_overhead *. 1e6) (t.recv_overhead *. 1e6) (t.barrier_base *. 1e6)
