(* Interconnect topologies and their hop metrics.

   The simulator only needs a distance function (number of hops between two
   processors) plus validity and neighbourhood queries; routing is assumed
   minimal and contention-free (documented limitation, see DESIGN.md). *)

type t =
  | Hypercube
  | Torus2d of int * int  (* rows, cols; wrap-around links, like the AP1000 T-net *)
  | Mesh2d of int * int  (* rows, cols; no wrap-around *)
  | Ring
  | Complete
  | Star  (* all traffic through processor 0 *)

let to_string = function
  | Hypercube -> "hypercube"
  | Torus2d (r, c) -> Printf.sprintf "torus-%dx%d" r c
  | Mesh2d (r, c) -> Printf.sprintf "mesh-%dx%d" r c
  | Ring -> "ring"
  | Complete -> "complete"
  | Star -> "star"

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2_exact n =
  if not (is_power_of_two n) then invalid_arg "Topology.log2_exact: not a power of two";
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let validate t ~procs =
  if procs <= 0 then invalid_arg "Topology.validate: procs must be positive";
  match t with
  | Hypercube ->
      if not (is_power_of_two procs) then
        invalid_arg
          (Printf.sprintf "Topology.validate: hypercube needs a power-of-two size, got %d" procs)
  | Torus2d (r, c) | Mesh2d (r, c) ->
      if r <= 0 || c <= 0 || r * c <> procs then
        invalid_arg
          (Printf.sprintf "Topology.validate: %dx%d grid does not hold %d processors" r c procs)
  | Ring | Complete | Star -> ()

let check_rank ~procs rank name =
  if rank < 0 || rank >= procs then
    invalid_arg (Printf.sprintf "Topology.%s: rank %d out of range [0,%d)" name rank procs)

let grid_coords ~cols rank = (rank / cols, rank mod cols)

let ring_distance n a b =
  let d = abs (a - b) in
  min d (n - d)

let hops t ~procs ~src ~dest =
  check_rank ~procs src "hops";
  check_rank ~procs dest "hops";
  if src = dest then 0
  else
    match t with
    | Hypercube -> popcount (src lxor dest)
    | Torus2d (_, c) ->
        let r1, c1 = grid_coords ~cols:c src and r2, c2 = grid_coords ~cols:c dest in
        ring_distance (procs / c) r1 r2 + ring_distance c c1 c2
    | Mesh2d (_, c) ->
        let r1, c1 = grid_coords ~cols:c src and r2, c2 = grid_coords ~cols:c dest in
        abs (r1 - r2) + abs (c1 - c2)
    | Ring -> ring_distance procs src dest
    | Complete -> 1
    | Star -> if src = 0 || dest = 0 then 1 else 2

let neighbors t ~procs rank =
  check_rank ~procs rank "neighbors";
  match t with
  | Hypercube ->
      List.init (log2_exact procs) (fun k -> rank lxor (1 lsl k))
  | Torus2d (r, c) ->
      let row, col = grid_coords ~cols:c rank in
      let wrap n x = ((x mod n) + n) mod n in
      let coord rr cc = (wrap r rr * c) + wrap c cc in
      List.sort_uniq compare
        (List.filter (( <> ) rank)
           [ coord (row - 1) col; coord (row + 1) col; coord row (col - 1); coord row (col + 1) ])
  | Mesh2d (r, c) ->
      let row, col = grid_coords ~cols:c rank in
      let cands = [ (row - 1, col); (row + 1, col); (row, col - 1); (row, col + 1) ] in
      List.filter_map
        (fun (rr, cc) -> if rr >= 0 && rr < r && cc >= 0 && cc < c then Some ((rr * c) + cc) else None)
        cands
  | Ring ->
      if procs = 1 then []
      else if procs = 2 then [ 1 - rank ]
      else [ (rank + procs - 1) mod procs; (rank + 1) mod procs ]
  | Complete -> List.filter (( <> ) rank) (List.init procs Fun.id)
  | Star -> if rank = 0 then List.init (procs - 1) (fun i -> i + 1) else [ 0 ]

let diameter t ~procs =
  match t with
  | Hypercube -> log2_exact procs
  | Torus2d (r, c) -> (r / 2) + (c / 2)
  | Mesh2d (r, c) -> r - 1 + (c - 1)
  | Ring -> procs / 2
  | Complete -> if procs > 1 then 1 else 0
  | Star -> if procs > 2 then 2 else if procs = 2 then 1 else 0
