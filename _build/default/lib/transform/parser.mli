(** Concrete syntax for skeleton pipelines — the command-line front end to
    the transformation engine (the paper's planned FortranS front end in
    miniature).

    {v
    pipeline := stage ( '.' stage )*          composition, rightmost first
    stage    := id | map FN | imap FN2 | fold FN2 | scan FN2
              | foldr FN2 FN | send IFN | fetch IFN | rotate INT
              | split INT | combine | mapn '[' pipeline ']'
              | iter INT '[' pipeline ']'
    FN  := incr | double | square | negate | halve | id
    FN2 := add | mul | max | min | sub | add_index
    IFN := id | reverse | shift:INT
    v} *)

type error = { position : int; message : string }

exception Parse_error of error

val parse : string -> (Ast.expr, error) result
val parse_exn : string -> Ast.expr
(** @raise Invalid_argument with position information. *)

val parse_program : string -> ((string * Ast.expr) list, error) result
(** A sequence of [let name = pipeline] definitions; a bare name appearing
    as a stage references an {e earlier} definition and is inlined.
    Returns the definitions in source order. *)

val parse_program_exn : string -> (string * Ast.expr) list

val to_source : Ast.expr -> string option
(** Print back in the concrete syntax; [None] if the expression contains
    functions outside the primitive registry (e.g. fused names).
    Round-trip: [parse (to_source e) = e] up to composition
    re-association. *)
