(* Cost-guided optimisation: normalise with the rule set, but only keep the
   final program if the static cost model agrees it is no worse — the
   compile-time optimisation loop sketched in the paper's Section 4. *)

type report = {
  input : Ast.expr;
  output : Ast.expr;
  steps : Rewrite.step list;
  cost_before : float;
  cost_after : float;
}

let optimize ?(cm = Machine.Cost_model.ap1000) ?(procs = 16) ?(n = 1 lsl 16)
    ?(rules = Rules.default) (e : Ast.expr) : report =
  let cost_before = Cost.estimate_pipeline ~cm ~procs ~n e in
  let e', steps = Rewrite.normalize ~rules e in
  let cost_after = Cost.estimate_pipeline ~cm ~procs ~n e' in
  if cost_after <= cost_before then { input = e; output = e'; steps; cost_before; cost_after }
  else { input = e; output = e; steps = []; cost_before; cost_after = cost_before }

let speedup r = if r.cost_after > 0.0 then r.cost_before /. r.cost_after else Float.infinity

let pp_report ppf r =
  Fmt.pf ppf "@[<v>input : %a@ output: %a@ est. cost %.3g s -> %.3g s (x%.2f)@ %a@]" Ast.pp
    r.input Ast.pp r.output r.cost_before r.cost_after (speedup r) Rewrite.pp_derivation r.steps
