(* The Section 4 transformation rules as executable rewrites.

   Each rule is a local pattern on the chain view of a pipeline (stages in
   application order); [Rewrite] drives them to a fixpoint.  Soundness of
   every rule is property-tested in the test suite: evaluating the rewritten
   program on random inputs must give the evaluation of the original. *)

open Ast

type rule = {
  rname : string;
  paper : string;  (* which law of the paper this implements *)
  apply_at : expr list -> (expr list * int) option;
      (* Given a chain, either rewrite returning (new chain, consumed
         prefix length hint) or decline.  Rules only inspect the head of
         the chain; the engine slides the window. *)
}

(* Convenience: build a rule from a function on the chain head. *)
let head_rule rname paper f = { rname; paper; apply_at = f }

(* --- map fusion: map f . map g = map (f . g) ----------------------------- *)

let map_fusion =
  head_rule "map-fusion" "map f . map g = map (f . g)" (function
    | Map g :: Map f :: rest ->
        (* chain order: g applied first, then f; fused fn is f . g *)
        Some (Map (Fn.compose f g) :: rest, 1)
    | _ -> None)

(* --- map distribution: foldr (f . g) = fold f . map g (f associative) --- *)

let map_distribution =
  head_rule "map-distribution" "foldr (f . g) = fold f . map g" (function
    | Foldr_compose (f, g) :: rest when f.Fn.assoc -> Some (Map g :: Fold f :: rest, 2)
    | _ -> None)

(* --- communication algebra ------------------------------------------------ *)

let send_fusion =
  head_rule "send-fusion" "send f . send g = send (f . g)" (function
    | Send g :: Send f :: rest -> Some (Send (Fn.i_compose f g) :: rest, 1)
    | _ -> None)

let fetch_fusion =
  head_rule "fetch-fusion" "fetch f . fetch g = fetch (g . f)" (function
    | Fetch g :: Fetch f :: rest -> Some (Fetch (Fn.i_compose g f) :: rest, 1)
    | _ -> None)

let rotate_fusion =
  head_rule "rotate-fusion" "rotate a . rotate b = rotate (a + b)" (function
    | Rotate a :: Rotate b :: rest -> Some (Rotate (a + b) :: rest, 1)
    | _ -> None)

(* rotate k = fetch (shift k), so rotations absorb into adjacent fetches:
     fetch f . rotate k = fetch (shift k . f)   (z_i = x_{f i + k})
     rotate k . fetch f = fetch (f . shift k)   (z_i = x_{f (i + k)})  *)
let rotate_fetch_fusion =
  head_rule "rotate-fetch-fusion" "fetch f . rotate k = fetch (shift k . f)" (function
    | Rotate k :: Fetch f :: rest when k <> 0 -> Some (Fetch (Fn.i_compose (Fn.i_shift k) f) :: rest, 1)
    | Fetch f :: Rotate k :: rest when k <> 0 -> Some (Fetch (Fn.i_compose f (Fn.i_shift k)) :: rest, 1)
    | _ -> None)

(* --- identity elimination -------------------------------------------------- *)

let identity_elim =
  head_rule "identity-elimination" "id . f = f = f . id" (function
    | Id :: rest -> Some (rest, 0)
    | Map f :: rest when Fn.is_id f -> Some (rest, 0)
    | Send f :: rest when Fn.i_is_id f -> Some (rest, 0)
    | Fetch f :: rest when Fn.i_is_id f -> Some (rest, 0)
    | Rotate 0 :: rest -> Some (rest, 0)
    | Map_nested Id :: rest -> Some (rest, 0)
    | Iter_for (0, _) :: rest -> Some (rest, 0)
    | Iter_for (_, Id) :: rest -> Some (rest, 0)
    | Iter_for (1, e) :: rest -> Some (to_chain e @ rest, 0)
    | _ -> None)

(* --- flattening (nested parallelism -> flat data parallelism) ------------- *)

(* combine . split p = id *)
let split_combine_elim =
  head_rule "split-combine-elimination" "combine . split p = id" (function
    | Split _ :: Combine :: rest -> Some (rest, 0)
    | _ -> None)

(* combine . map (map f) . split p = map f : the segmented global function
   of a nested map is the flat map itself. *)
let nested_map_flatten =
  head_rule "flattening(map)" "combine . map_groups (map f) . split p = map f" (function
    | Split _ :: Map_nested (Map f) :: Combine :: rest -> Some (Map f :: rest, 1)
    | _ -> None)

(* fold f . map (fold f) . split p = fold f (f associative): segmented
   reduction flattens to the flat reduction. *)
let nested_fold_flatten =
  head_rule "flattening(fold)" "fold f . map_groups (fold f) . split p = fold f" (function
    | Split _ :: Map_nested (Fold g) :: Fold f :: rest
      when f.Fn.assoc && f.Fn.name2 = g.Fn.name2 ->
        Some (Fold f :: rest, 1)
    | _ -> None)

(* --- commuting rules --------------------------------------------------------
   An elementwise map commutes with any index-permutation movement:
   moving data then transforming it equals transforming then moving.  The
   engine uses the "move maps earlier" direction only, so chains like
   [map f; rotate k; map g] normalise to [map f; map g; rotate k] and the
   maps then fuse.  Termination: each application strictly decreases the
   sum of map positions in the chain. *)

let commute_map_rotate =
  head_rule "commute(map,rotate)" "map f . rotate k = rotate k . map f" (function
    | Rotate k :: Map f :: rest -> Some (Map f :: Rotate k :: rest, 1)
    | _ -> None)

let commute_map_fetch =
  head_rule "commute(map,fetch)" "map f . fetch g = fetch g . map f" (function
    | Fetch g :: Map f :: rest -> Some (Map f :: Fetch g :: rest, 1)
    | _ -> None)

let commute_map_send =
  head_rule "commute(map,send)" "map f . send g = send g . map f" (function
    | Send g :: Map f :: rest -> Some (Map f :: Send g :: rest, 1)
    | _ -> None)

(* --- iteration unrolling (enables cross-iteration fusion) ----------------- *)

let iter_unroll_limit = 8

let iter_unroll =
  head_rule "iterFor-unrolling" "iterFor k e = e . ... . e (k copies)" (function
    | Iter_for (k, body) :: rest when k >= 2 && k <= iter_unroll_limit && size body <= 3 ->
        let chain = to_chain body in
        let rec dup n = if n = 0 then [] else chain @ dup (n - 1) in
        Some (dup k @ rest, 0)
    | _ -> None)

(* --- rule sets -------------------------------------------------------------- *)

let fusion_rules = [ map_fusion; map_distribution ]
let communication_rules = [ send_fusion; fetch_fusion; rotate_fusion; rotate_fetch_fusion ]
let commuting_rules = [ commute_map_rotate; commute_map_fetch; commute_map_send ]
let flattening_rules = [ split_combine_elim; nested_map_flatten; nested_fold_flatten ]
let cleanup_rules = [ identity_elim ]

let all =
  cleanup_rules @ fusion_rules @ communication_rules @ flattening_rules @ commuting_rules
  @ [ iter_unroll ]

let default = cleanup_rules @ fusion_rules @ communication_rules @ flattening_rules

(* default + commuting: reorders maps ahead of data movement so they fuse
   across communication steps. *)
let aggressive = default @ commuting_rules
