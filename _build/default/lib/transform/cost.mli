(** Static BSP-style cost model over the skeleton AST: estimated seconds
    for one application of a pipeline to an n-element ParArray on p
    processors, in the machine's cost parameters. Used to rank rewrites;
    the simulator ({!Sim_exec}) is the ground truth. *)

val estimate_pipeline :
  ?cm:Machine.Cost_model.t -> procs:int -> n:int -> Ast.expr -> float
(** @raise Invalid_argument if [procs <= 0]. Default cost model: AP1000. *)

val log2_ceil : int -> int
val ceil_div : int -> int -> int
