(** Cost-guided optimisation: normalise with a rule set and keep the result
    only if the static cost model agrees it is no worse. *)

type report = {
  input : Ast.expr;
  output : Ast.expr;
  steps : Rewrite.step list;
  cost_before : float;
  cost_after : float;
}

val optimize :
  ?cm:Machine.Cost_model.t ->
  ?procs:int ->
  ?n:int ->
  ?rules:Rules.rule list ->
  Ast.expr ->
  report

val speedup : report -> float
val pp_report : Format.formatter -> report -> unit
