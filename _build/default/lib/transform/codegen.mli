(** Compile skeleton pipelines to OCaml source over the [Scl_sim.Dvec]
    templates — the paper's "skeletons as libraries or macros over the base
    language" implementation route.

    Only parallel forms compile: [Foldr_compose] must first be rewritten by
    map distribution, and nested parallelism must be flattened — the
    Section 4 transformations are what make programs compilable. *)

exception Not_compilable of string

val generate : ?name:string -> Ast.expr -> string
(** OCaml source of a function
    [val name : ?cost -> procs:int -> int array -> result * Machine.Sim.stats]
    where the result is [int array] (or [int] if the pipeline ends in a
    fold). @raise Not_compilable with the reason and the rewrite that
    would fix it. *)

val generate_host : ?name:string -> Ast.expr -> string
(** The same pipeline compiled against the host library
    ([Scl.Elementary] / [Scl.Communication] over [Par_array]) — one AST,
    two targets. *)

val compilable : Ast.expr -> bool
