(** The paper's Section 4 transformation rules as local rewrites on the
    chain view of a pipeline. Every rule is property-tested for semantics
    preservation. *)

type rule = {
  rname : string;
  paper : string;  (** the law of the paper this implements *)
  apply_at : Ast.expr list -> (Ast.expr list * int) option;
      (** rewrite the head of a chain, or decline *)
}

(** {1 Individual rules} *)

val map_fusion : rule
(** map f ∘ map g = map (f ∘ g). *)

val map_distribution : rule
(** foldr (f ∘ g) = fold f ∘ map g, for associative [f]. *)

val send_fusion : rule
(** send f ∘ send g = send (f ∘ g). *)

val fetch_fusion : rule
(** fetch f ∘ fetch g = fetch (g ∘ f). *)

val rotate_fusion : rule
(** rotate a ∘ rotate b = rotate (a+b). *)

val rotate_fetch_fusion : rule
(** rotate absorbs into adjacent fetches (rotate k = fetch (shift k)):
    fetch f ∘ rotate k = fetch (shift k ∘ f);
    rotate k ∘ fetch f = fetch (f ∘ shift k). *)

val identity_elim : rule
(** id ∘ f = f = f ∘ id, rotate 0 = id, iterFor 0 = id, etc. *)

val split_combine_elim : rule
(** combine ∘ split p = id. *)

val nested_map_flatten : rule
(** combine ∘ map_groups (map f) ∘ split p = map f. *)

val nested_fold_flatten : rule
(** fold f ∘ map_groups (fold f) ∘ split p = fold f, associative [f]. *)

val commute_map_rotate : rule
val commute_map_fetch : rule
val commute_map_send : rule
(** Elementwise maps commute with index-permutation movements; applied in
    the "move maps earlier" direction only, so fusion can reach across
    communication steps. *)

val iter_unroll : rule
(** Unroll small [iterFor] bodies so cross-iteration fusion can fire. *)

(** {1 Rule sets} *)

val fusion_rules : rule list
val communication_rules : rule list
val commuting_rules : rule list
val flattening_rules : rule list
val cleanup_rules : rule list

val default : rule list
(** cleanup + fusion + communication + flattening. *)

val aggressive : rule list
(** {!default} plus the commuting rules. *)

val all : rule list
(** Everything, including {!iter_unroll}. *)
