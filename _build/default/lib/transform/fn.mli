(** Named function values carried by the skeleton AST. Names make rewrite
    output readable, [cost] feeds the cost model, and [assoc] gates the
    rules whose soundness requires associativity. *)

type t = {
  name : string;
  cost : int;  (** flops per application *)
  apply : Value.t -> Value.t;
}
(** Unary functions (map payloads). *)

type t2 = {
  name2 : string;
  cost2 : int;
  assoc : bool;
  apply2 : Value.t -> Value.t -> Value.t;
}
(** Binary functions (fold/scan payloads) and indexed functions (imap,
    applied to [(Int index, value)]). *)

type ifn = {
  iname : string;
  iapply : n:int -> int -> int;  (** index functions; [n] is the array length *)
}

val id : t
val compose : t -> t -> t
(** [compose f g] applies [g] first; name ["f.g"], cost summed. *)

val is_id : t -> bool

(** {1 Primitive library} *)

val incr : t
val double : t
val square : t
val negate : t
val halve : t
val lift_int : string -> int -> (int -> int) -> t

val add : t2
val mul : t2
val imax : t2
val imin : t2
val sub : t2  (** not associative — exercises the rule guards *)

val add_index : t2
val indexed : string -> int -> (int -> Value.t -> Value.t) -> t2
val lift2_int : string -> int -> assoc:bool -> (int -> int -> int) -> t2

val i_id : ifn
val i_shift : int -> ifn
val i_reverse : ifn
val i_compose : ifn -> ifn -> ifn
val i_is_id : ifn -> bool
