lib/transform/rules.ml: Ast Fn
