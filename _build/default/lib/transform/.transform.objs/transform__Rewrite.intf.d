lib/transform/rewrite.mli: Ast Format Rules
