lib/transform/sim_exec.ml: Array Ast Comm Cost_model Fn Machine Option Scl_sim Sim Value
