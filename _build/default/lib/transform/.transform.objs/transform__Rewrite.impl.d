lib/transform/rewrite.ml: Ast Fmt List Rules
