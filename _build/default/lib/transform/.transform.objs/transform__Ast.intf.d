lib/transform/ast.mli: Fn Format Value
