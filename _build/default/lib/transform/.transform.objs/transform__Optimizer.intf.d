lib/transform/optimizer.mli: Ast Format Machine Rewrite Rules
