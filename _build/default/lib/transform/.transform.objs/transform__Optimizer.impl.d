lib/transform/optimizer.ml: Ast Cost Float Fmt Machine Rewrite Rules
