lib/transform/rules.mli: Ast
