lib/transform/cost.mli: Ast Machine
