lib/transform/sim_exec.mli: Ast Machine Value
