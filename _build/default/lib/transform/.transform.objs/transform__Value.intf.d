lib/transform/value.mli: Format
