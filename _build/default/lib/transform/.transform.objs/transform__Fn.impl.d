lib/transform/fn.ml: Fun Printf Value
