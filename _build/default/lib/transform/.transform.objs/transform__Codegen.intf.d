lib/transform/codegen.mli: Ast
