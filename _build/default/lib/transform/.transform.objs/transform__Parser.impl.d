lib/transform/parser.ml: Ast Fn List Option Printf String
