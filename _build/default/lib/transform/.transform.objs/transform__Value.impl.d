lib/transform/value.ml: Array Float Fmt Printf
