lib/transform/ast.ml: Array Fmt Fn List Value
