lib/transform/parser.mli: Ast
