lib/transform/cost.ml: Ast Cost_model Fn Machine
