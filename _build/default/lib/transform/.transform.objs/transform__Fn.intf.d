lib/transform/fn.mli: Value
