lib/transform/codegen.ml: Ast Buffer Fn Printf String
