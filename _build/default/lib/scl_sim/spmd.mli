(** Run SPMD skeleton programs on the simulated machine. *)

open Machine

val default_topology : int -> Topology.t
(** Hypercube when the processor count is a power of two, else complete. *)

val run :
  ?trace:Trace.t ->
  ?cost:Cost_model.t ->
  ?topology:Topology.t ->
  procs:int ->
  (Comm.t -> unit) ->
  Sim.stats
(** Run the program on every processor with a world communicator; the cost
    model defaults to the AP1000 calibration. *)

val run_collect :
  ?trace:Trace.t ->
  ?cost:Cost_model.t ->
  ?topology:Topology.t ->
  procs:int ->
  (Comm.t -> 'a option) ->
  'a * Sim.stats
(** Like {!run} for programs that produce a value at (at least) one
    processor. *)
