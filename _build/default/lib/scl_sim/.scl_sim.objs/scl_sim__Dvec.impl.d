lib/scl_sim/dvec.ml: Array Comm Hashtbl Kernels List Machine Option Scl Sim
