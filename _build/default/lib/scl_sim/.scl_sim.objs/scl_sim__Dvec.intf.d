lib/scl_sim/dvec.mli: Comm Machine
