lib/scl_sim/kernels.ml: Float
