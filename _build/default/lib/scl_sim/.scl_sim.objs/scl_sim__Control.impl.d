lib/scl_sim/control.ml: Comm Float Machine
