lib/scl_sim/dmat.mli: Comm Machine
