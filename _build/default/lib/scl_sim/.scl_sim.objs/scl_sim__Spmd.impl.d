lib/scl_sim/spmd.ml: Comm Cost_model Machine Sim Topology
