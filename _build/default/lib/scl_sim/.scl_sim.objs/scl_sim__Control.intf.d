lib/scl_sim/control.mli: Comm Machine
