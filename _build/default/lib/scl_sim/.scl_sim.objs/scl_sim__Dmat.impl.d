lib/scl_sim/dmat.ml: Array Comm Float Kernels Machine Option Sim
