lib/scl_sim/kernels.mli:
