lib/scl_sim/spmd.mli: Comm Cost_model Machine Sim Topology Trace
