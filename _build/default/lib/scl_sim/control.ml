(* Computational-skeleton templates on the simulated machine: the
   iterUntil / iterFor control-flow skeletons at the SPMD level.

   Convergence iteration is the common case (Jacobi, heat, any relaxation):
   every member steps its local state, the residuals are combined with a
   group allreduce, and everyone agrees to stop — the distributed meaning
   of the paper's iterUntil where the condition is itself a parallel
   reduction. *)

open Machine

type 'a convergence = { state : 'a; iterations : int; final_residual : float }

(* iterUntil with an allreduced residual: [step i state] returns the new
   local state and this member's local residual; iteration stops when the
   global max residual drops below [tol] or [max_iter] is reached.  All
   members return the same iteration count and residual. *)
let iter_until_conv (comm : Comm.t) ?(max_iter = max_int) ~tol ~(step : int -> 'a -> 'a * float)
    (init : 'a) : 'a convergence =
  if max_iter < 0 then invalid_arg "Control.iter_until_conv: negative max_iter";
  let state = ref init in
  let iterations = ref 0 in
  let residual = ref Float.infinity in
  let continue_ = ref (max_iter > 0) in
  while !continue_ do
    let next, local_res = step !iterations !state in
    state := next;
    incr iterations;
    residual := Comm.allreduce comm Float.max local_res;
    if !residual < tol || !iterations >= max_iter then continue_ := false
  done;
  { state = !state; iterations = !iterations; final_residual = !residual }

(* Counted iteration (the paper's iterFor) — purely local control flow, but
   kept here so SPMD programs read like their host-SCL counterparts. *)
let iter_for n (step : int -> 'a -> 'a) (init : 'a) : 'a =
  if n < 0 then invalid_arg "Control.iter_for: negative iteration count";
  let state = ref init in
  for i = 0 to n - 1 do
    state := step i !state
  done;
  !state
