(* Convenience runner for SPMD skeleton programs on the simulated machine. *)

open Machine

let default_topology procs =
  if Topology.is_power_of_two procs then Topology.Hypercube else Topology.Complete

let run ?trace ?(cost = Cost_model.ap1000) ?topology ~procs (program : Comm.t -> unit) :
    Sim.stats =
  let topology = match topology with Some t -> t | None -> default_topology procs in
  Sim.run ?trace { Sim.procs; topology; cost } (fun ctx -> program (Comm.world ctx))

let run_collect ?trace ?(cost = Cost_model.ap1000) ?topology ~procs
    (program : Comm.t -> 'a option) : 'a * Sim.stats =
  let topology = match topology with Some t -> t | None -> default_topology procs in
  Sim.run_collect ?trace { Sim.procs; topology; cost } (fun ctx -> program (Comm.world ctx))
