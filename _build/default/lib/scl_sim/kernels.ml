(* Operation-count estimates for the sequential base-language kernels.

   The paper instantiates skeletons with sequential Fortran/C procedures;
   on the simulator, running the real OCaml kernel gives the *values* while
   these estimates give the *charged time* (operation count x the cost
   model's scalar rate).  Constants approximate instructions per element of
   straightforward scalar implementations on the AP1000's SPARC cells. *)

let log2f n = if n <= 1 then 1.0 else Float.log2 (float_of_int n)

let sort_flops n =
  (* quicksort: ~15 instructions per comparison step, n log2 n steps *)
  if n <= 1 then 1 else int_of_float (15.0 *. float_of_int n *. log2f n)

let merge_flops n =
  (* two-way merge producing n elements: ~8 instructions each *)
  8 * max 1 n

let binary_search_flops n = if n <= 1 then 2 else 10 * int_of_float (log2f n)

let median_flops = 5
(* middle element of an already-sorted array *)

let partial_pivot_flops n =
  (* scan a column of length n for the max absolute value *)
  4 * max 1 n

let column_update_flops n =
  (* axpy-style elimination update of a column of length n *)
  6 * max 1 n

let matmul_flops n =
  (* n^3 multiply-adds, 2 flops each *)
  2 * n * n * n

let stencil_flops n =
  (* 5-point Jacobi relaxation: ~6 flops per point *)
  6 * max 1 n

let copy_flops n = max 1 n
