(** Computational-skeleton templates at the SPMD level: the distributed
    readings of iterUntil / iterFor. *)

open Machine

type 'a convergence = { state : 'a; iterations : int; final_residual : float }

val iter_until_conv :
  Comm.t -> ?max_iter:int -> tol:float -> step:(int -> 'a -> 'a * float) -> 'a -> 'a convergence
(** iterUntil with an allreduced stopping condition: [step i s] returns the
    new local state and the local residual; the group stops when the global
    max residual drops below [tol] (or at [max_iter]). Collective — every
    member must call it with the same control parameters; all members
    observe the same iteration count. *)

val iter_for : int -> (int -> 'a -> 'a) -> 'a -> 'a
(** Counted iteration (local control flow).
    @raise Invalid_argument on a negative count. *)
