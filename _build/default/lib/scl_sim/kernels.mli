(** Operation-count estimates used to charge simulated time for the
    sequential base-language kernels (values are computed by real OCaml
    code; time is charged from these counts at the cost model's scalar
    rate). *)

val sort_flops : int -> int
(** Comparison sort of [n] elements (~15·n·log₂ n). *)

val merge_flops : int -> int
(** Two-way merge producing [n] elements. *)

val binary_search_flops : int -> int
val median_flops : int
val partial_pivot_flops : int -> int
val column_update_flops : int -> int
val matmul_flops : int -> int
(** Dense [n×n] multiply (2n³). *)

val stencil_flops : int -> int
val copy_flops : int -> int
