(** Block-distributed dense matrices on a q × q processor grid with row and
    column communicators — the 2-D (row_col_block) configuration skeletons
    on the simulated machine, and the home of {!summa}.

    All operations are SPMD over a communicator whose size is a perfect
    square q², with grid position (rank / q, rank mod q). *)

open Machine

type t

val init : Comm.t -> n:int -> (int -> int -> float) -> t
(** [init comm ~n f]: every processor fills its own block by evaluating [f]
    on global coordinates (no communication).
    @raise Invalid_argument if the communicator size is not a perfect
    square or the grid side does not divide [n]. *)

val scatter : Comm.t -> root:int -> float array array option -> n:int -> t
(** Distribute a root-held dense matrix block-wise. *)

val gather : root:int -> t -> float array array option
(** Reassemble at the root. *)

val grid_coords : t -> int * int
val block : t -> float array array
val dim : t -> int
val grid : t -> int

val with_block : t -> float array array -> t
(** Replace the local block (no communication); shape-checked. *)

val map : flops:int -> (float -> float) -> t -> t
val zip_with : flops:int -> (float -> float -> float) -> t -> t -> t

val transpose : t -> t
(** Swap block (i,j) with block (j,i) (one pairwise message), transpose
    locally. *)

type halo = {
  north : float array option;
  south : float array option;
  west : float array option;
  east : float array option;
}
(** Edge rows/columns received from the four grid neighbours; [None] at the
    machine-grid boundary (the PDE boundary). *)

val halo_exchange : t -> halo
(** Trade edges with the four neighbours — the 2-D stencil communication
    pattern. Collective over the grid. *)

val summa : t -> t -> t
(** SUMMA matrix multiply: q rounds of row/column block broadcasts + local
    multiply-accumulate. The broadcasts run in the row/column
    sub-communicators — the paper's nested processor groups. *)

val local_matmul : float array array -> float array array -> float array array
