lib/core/stream_skel.ml: Array Atomic Domain List Option Printexc Runtime
