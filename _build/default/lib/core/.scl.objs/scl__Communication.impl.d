lib/core/communication.ml: Array Elementary Exec List Par_array Printf
