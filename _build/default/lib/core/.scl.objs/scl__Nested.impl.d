lib/core/nested.ml: Array Elementary Exec Par_array
