lib/core/exec.mli: Runtime
