lib/core/partition2.mli: Par_array2 Partition
