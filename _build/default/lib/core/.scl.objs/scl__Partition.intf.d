lib/core/partition.mli: Par_array
