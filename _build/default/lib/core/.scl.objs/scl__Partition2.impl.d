lib/core/partition2.ml: Array Par_array2 Partition Printf
