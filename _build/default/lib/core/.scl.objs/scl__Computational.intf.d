lib/core/computational.mli: Exec Par_array Runtime
