lib/core/config.mli: Par_array Partition
