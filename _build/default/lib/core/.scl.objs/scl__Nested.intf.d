lib/core/nested.mli: Exec Par_array
