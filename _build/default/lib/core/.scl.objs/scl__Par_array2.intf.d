lib/core/par_array2.mli: Exec Format
