lib/core/config.ml: List Par_array Partition Printf
