lib/core/exec.ml: Array Pool Runtime
