lib/core/stream_skel.mli: Printexc
