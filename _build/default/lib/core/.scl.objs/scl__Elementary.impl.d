lib/core/elementary.ml: Array Exec Par_array
