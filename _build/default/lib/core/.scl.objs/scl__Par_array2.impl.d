lib/core/par_array2.ml: Array Exec Format Printf
