lib/core/par_array.ml: Array Format List Printf
