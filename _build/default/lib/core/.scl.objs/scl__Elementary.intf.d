lib/core/elementary.mli: Exec Par_array
