lib/core/scl.ml: Communication Computational Config Elementary Exec Nested Par_array Par_array2 Partition Partition2 Stream_skel
