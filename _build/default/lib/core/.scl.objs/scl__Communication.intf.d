lib/core/communication.mli: Exec Par_array
