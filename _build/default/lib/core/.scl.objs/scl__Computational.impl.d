lib/core/computational.ml: Array Elementary Exec Fun List Par_array Pool Runtime
