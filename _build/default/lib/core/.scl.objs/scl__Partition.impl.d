lib/core/partition.ml: Array Par_array Printf
