lib/core/par_array.mli: Format
