(* Communication skeletons (paper Section 2.2): bulk data movement over
   ParArrays — the data-parallel counterpart of sequential loops that
   rearrange array elements.

   Regular movements: rotate (and the 2-D rotate_row / rotate_col, which
   live in Par_array2), brdcast, applybrdcast.
   Irregular movements: send (destinations computed from the source index,
   many-to-one accumulates) and fetch (sources computed from the
   destination index, one-to-one / one-to-many). *)

(* rotate k A = < A[(i+k) mod n] >: a left rotation by k (for k > 0 the
   element that ends up at position i came from i+k). *)
let rotate ?(exec = Exec.sequential) k pa =
  let n = Par_array.length pa in
  if n = 0 then pa
  else begin
    let wrap x = ((x mod n) + n) mod n in
    let src = Par_array.unsafe_to_array pa in
    Par_array.unsafe_of_array (exec.Exec.pinit n (fun i -> src.(wrap (i + k))))
  end

(* brdcast a A: pair the broadcast item with every processor's local data. *)
let brdcast ?(exec = Exec.sequential) a pa = Elementary.map ~exec (fun x -> (a, x)) pa

(* applybrdcast f i A = brdcast (f A.(i)) A: apply f to the data on element
   i and broadcast the result. *)
let applybrdcast ?(exec = Exec.sequential) f i pa = brdcast ~exec (f (Par_array.get pa i)) pa

(* send f <x0..xn>: element k is delivered to every index in [f k]; each
   destination accumulates the arrivals.  The paper leaves arrival order
   unspecified (the implementation is nondeterministic); we use ascending
   source index, a legal and deterministic refinement. *)
let send ?(exec = Exec.sequential) (f : int -> int list) pa =
  let n = Par_array.length pa in
  let buckets = Array.make n [] in
  for k = n - 1 downto 0 do
    List.iter
      (fun dest ->
        if dest < 0 || dest >= n then
          invalid_arg (Printf.sprintf "Communication.send: destination %d out of [0,%d)" dest n);
        buckets.(dest) <- Par_array.get pa k :: buckets.(dest))
      (List.rev (f k))
  done;
  ignore exec;
  Par_array.init n (fun i -> Array.of_list buckets.(i))

(* send_one: the single-destination special case used by the communication
   algebra (send f . send g = send (f . g) holds for this form, viewing f
   as a permutation of indices). *)
let send_one ?(exec = Exec.sequential) (f : int -> int) pa =
  let n = Par_array.length pa in
  let seen = Array.make n false in
  let dests =
    Array.init n (fun k ->
        let d = f k in
        if d < 0 || d >= n then
          invalid_arg (Printf.sprintf "Communication.send_one: destination %d out of [0,%d)" d n);
        if seen.(d) then
          invalid_arg "Communication.send_one: destination function is not injective (use send)";
        seen.(d) <- true;
        d)
  in
  let src = Par_array.unsafe_to_array pa in
  ignore exec;
  if n = 0 then pa
  else begin
    let out = Array.make n src.(0) in
    Array.iteri (fun k d -> out.(d) <- src.(k)) dests;
    Par_array.unsafe_of_array out
  end

(* fetch f <x0..xn> = < x_{f 0}, ..., x_{f n} >: each destination names its
   source — one-to-one or one-to-many. *)
let fetch ?(exec = Exec.sequential) (f : int -> int) pa =
  let n = Par_array.length pa in
  let src = Par_array.unsafe_to_array pa in
  Par_array.unsafe_of_array
    (exec.Exec.pinit n (fun i ->
         let s = f i in
         if s < 0 || s >= n then
           invalid_arg (Printf.sprintf "Communication.fetch: source %d out of [0,%d)" s n);
         src.(s)))

(* Total exchange: every processor ends up with the whole array — the
   library-level analogue of allgather, useful before a farm that needs a
   global environment. *)
let all_to_all pa =
  let everything = Par_array.to_array pa in
  Elementary.map (fun _ -> everything) pa
