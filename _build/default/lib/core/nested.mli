(** Segmented operations over nested ParArrays — the NESL-style "segmented
    instructions" the paper's flattening rule appeals to: a nested scan or
    reduction becomes ONE flat scan with the flag-reset operator, so the
    flat data-parallel machinery (including the pool backend) runs nested
    operations unchanged. *)

val segmented_op : ('a -> 'a -> 'a) -> bool * 'a -> bool * 'a -> bool * 'a
(** The flag-reset lift: associative whenever the base operator is. *)

val segmented_scan :
  ?exec:Exec.t -> ('a -> 'a -> 'a) -> 'a array Par_array.t -> 'a array Par_array.t
(** Inclusive scan within every segment, computed as one flat scan over the
    flattened representation. *)

val segmented_fold :
  ?exec:Exec.t -> ('a -> 'a -> 'a) -> 'a -> 'a array Par_array.t -> 'a Par_array.t
(** Per-segment reduction (empty segments give the unit). *)

val segmented_scan_reference :
  ('a -> 'a -> 'a) -> 'a array Par_array.t -> 'a array Par_array.t
(** Segment-by-segment semantics the flattened version must match
    (exposed for tests). *)

val flatten_with_flags : 'a array Par_array.t -> (bool * 'a) array
val unflatten : int array -> 'a array -> 'a array Par_array.t
val segment_lengths : 'a array Par_array.t -> int array
