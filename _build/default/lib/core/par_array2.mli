(** Two-dimensional ParArrays ([ParArray (Int,Int) α]), row-major.

    Carries the 2-D elementary and communication skeletons the paper uses
    for matrix algorithms: [imap] with (row, col) indices and the
    [rotate_row]/[rotate_col] bulk movements. *)

type 'a t

val init : rows:int -> cols:int -> (int -> int -> 'a) -> 'a t
val make : rows:int -> cols:int -> 'a -> 'a t
val of_arrays : 'a array array -> 'a t
(** @raise Invalid_argument on ragged input. *)

val to_arrays : 'a t -> 'a array array
val dims : 'a t -> int * int
val rows : 'a t -> int
val cols : 'a t -> int
val size : 'a t -> int
val get : 'a t -> int -> int -> 'a
val row : 'a t -> int -> 'a array
val col : 'a t -> int -> 'a array
val transpose : 'a t -> 'a t

val zip : 'a t -> 'b t -> ('a * 'b) t
(** Pointwise pairing; the 2-D [align]. @raise Invalid_argument on
    dimension mismatch. *)

val map : ?exec:Exec.t -> ('a -> 'b) -> 'a t -> 'b t
val imap : ?exec:Exec.t -> (int -> int -> 'a -> 'b) -> 'a t -> 'b t

val fold : ?exec:Exec.t -> ('a -> 'a -> 'a) -> 'a t -> 'a
(** Associative reduction in row-major order. @raise Invalid_argument if
    empty. *)

val rotate_row : ?exec:Exec.t -> (int -> int) -> 'a t -> 'a t
(** The paper's [rotate_row]: the value at [(i,j)] becomes the old value at
    [(i, (j + df i) mod cols)] — row [i] rotated left by [df i]. *)

val rotate_col : ?exec:Exec.t -> (int -> int) -> 'a t -> 'a t
(** Column [j] rotated up by [df j]. *)

val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
