(** Communication skeletons (paper Section 2.2): bulk data movement over
    ParArrays. *)

val rotate : ?exec:Exec.t -> int -> 'a Par_array.t -> 'a Par_array.t
(** [rotate k A = <A\[(i+k) mod n\]>]. Laws: [rotate a (rotate b x) =
    rotate (a+b) x]; [rotate 0 = id]. *)

val brdcast : ?exec:Exec.t -> 'a -> 'b Par_array.t -> ('a * 'b) Par_array.t
(** Broadcast one item to all sites, aligned with the local data. *)

val applybrdcast : ?exec:Exec.t -> ('b -> 'a) -> int -> 'b Par_array.t -> ('a * 'b) Par_array.t
(** [applybrdcast f i A = brdcast (f A.(i)) A]: apply [f] locally on
    element [i] and broadcast the result. *)

val send : ?exec:Exec.t -> (int -> int list) -> 'a Par_array.t -> 'a array Par_array.t
(** Irregular send: element [k] goes to every index in [f k]; destinations
    accumulate a vector of arrivals. The paper leaves arrival order
    unspecified; this implementation refines it to ascending source index.
    @raise Invalid_argument on an out-of-range destination. *)

val send_one : ?exec:Exec.t -> (int -> int) -> 'a Par_array.t -> 'a Par_array.t
(** Permutation send (single destination per element, injective). Obeys the
    communication algebra law [send_one f ∘ send_one g = send_one (f ∘ g)].
    @raise Invalid_argument if [f] is not an in-range permutation. *)

val fetch : ?exec:Exec.t -> (int -> int) -> 'a Par_array.t -> 'a Par_array.t
(** [fetch f <x..> = <x_(f 0), ..., x_(f n)>]: each destination names its
    source (one-to-one or one-to-many). Law: [fetch f ∘ fetch g =
    fetch (g ∘ f)]. *)

val all_to_all : 'a Par_array.t -> 'a array Par_array.t
(** Every processor receives the entire array (allgather). *)
