(* Configuration skeletons: align, distribution, redistribution, gather.

   A configuration is a ParArray of tuples of co-located objects (paper
   Fig. 1): [align] pairs corresponding components, [distribution] composes
   bulk movement, partitioning and alignment, [redistribution] applies bulk
   data-movement operators componentwise. *)

let align a b =
  if Par_array.length a <> Par_array.length b then
    invalid_arg
      (Printf.sprintf "Config.align: lengths differ (%d vs %d)" (Par_array.length a)
         (Par_array.length b));
  Par_array.init (Par_array.length a) (fun i -> (Par_array.get a i, Par_array.get b i))

let align3 a b c =
  if Par_array.length a <> Par_array.length b || Par_array.length b <> Par_array.length c then
    invalid_arg "Config.align3: lengths differ";
  Par_array.init (Par_array.length a) (fun i ->
      (Par_array.get a i, Par_array.get b i, Par_array.get c i))

let unalign ab =
  ( Par_array.init (Par_array.length ab) (fun i -> fst (Par_array.get ab i)),
    Par_array.init (Par_array.length ab) (fun i -> snd (Par_array.get ab i)) )

(* The paper's distribution skeleton (two-array form):
     distribution <(p,f),(q,g)> A B = align (p (partition f A)) (q (partition g B)) *)
let distribution2 ~(move1 : 'a array Par_array.t -> 'a array Par_array.t) ~pat1
    ~(move2 : 'b array Par_array.t -> 'b array Par_array.t) ~pat2 (a : 'a array) (b : 'b array) :
    ('a array * 'b array) Par_array.t =
  align (move1 (Partition.apply pat1 a)) (move2 (Partition.apply pat2 b))

let distribution3 ~move1 ~pat1 ~move2 ~pat2 ~move3 ~pat3 a b c =
  align3 (move1 (Partition.apply pat1 a)) (move2 (Partition.apply pat2 b))
    (move3 (Partition.apply pat3 c))

(* Homogeneous list form of the paper's general distribution skeleton. *)
let distribution_list specs arrays =
  if List.length specs <> List.length arrays then
    invalid_arg "Config.distribution_list: spec/array count mismatch";
  List.map2 (fun (move, pat) a -> move (Partition.apply pat a)) specs arrays

(* redistribution <f1..fn> (DA1..DAn) = (f1 DA1 .. fn DAn): componentwise
   bulk movement over a configuration. *)
let redistribution2 (f, g) (da, db) = (f da, g db)
let redistribution3 (f, g, h) (da, db, dc) = (f da, g db, h dc)
let redistribution_list fs das = List.map2 (fun f da -> f da) fs das

(* gather: collect a distributed array back into a sequential one. *)
let gather pat pieces = Partition.unapply pat pieces
