(** Computational skeletons (paper Section 2.3): parallel control flow. *)

val farm : ?exec:Exec.t -> ('env -> 'a -> 'b) -> 'env -> 'a Par_array.t -> 'b Par_array.t
(** [farm f env A = map (f env) A]: apply a worker function with a shared
    environment to every job. *)

type 'a stage = {
  global : 'a Par_array.t -> 'a Par_array.t;
      (** parallel operation over the whole configuration (communication /
          synchronisation) *)
  local : int -> 'a -> 'a;  (** sequential per-processor computation *)
}
(** One SPMD superstep: [global ∘ imap local]; the composition point models
    barrier synchronisation. *)

val stage :
  ?global:('a Par_array.t -> 'a Par_array.t) -> ?local:(int -> 'a -> 'a) -> unit -> 'a stage
(** Stage constructor with identity defaults. *)

val spmd_step : ?exec:Exec.t -> 'a stage -> 'a Par_array.t -> 'a Par_array.t

val spmd : ?exec:Exec.t -> 'a stage list -> 'a Par_array.t -> 'a Par_array.t
(** [spmd \[\] = id]; [spmd ((gf,lf)::fs) = spmd fs ∘ gf ∘ imap lf]. *)

val iter_until : ('a -> 'a) -> ('a -> 'b) -> ('a -> bool) -> 'a -> 'b
(** [iter_until iterSolve finalSolve con x]: apply [iterSolve] until [con]
    holds, then [finalSolve]. *)

val iter_for : int -> (int -> 'a -> 'a) -> 'a -> 'a
(** Counted iteration; the body receives the 0-based step index.
    @raise Invalid_argument on a negative count. *)

val farm_dynamic :
  Runtime.Pool.t -> ('env -> 'a -> 'b) -> 'env -> 'a Par_array.t -> 'b Par_array.t
(** Work-stealing farm: jobs are scheduled dynamically, so irregular job
    sizes load-balance (extension beyond the paper's static [map] farm). *)
