(* One-dimensional partition patterns: the paper's
   [partition : Partition_pattern -> SeqArray -> ParArray SeqArray].

   A pattern maps each element index of the source array to the part
   (virtual processor) that owns it; within a part, elements keep their
   source order.  [unapply] is the exact inverse of [apply] for any
   pattern, which is what the paper's [gather] relies on. *)

type t =
  | Block of int  (* balanced contiguous blocks *)
  | Cyclic of int  (* round-robin single elements *)
  | Block_cyclic of { parts : int; block : int }  (* round-robin blocks *)
  | Custom of { parts : int; name : string; assign : int -> int }

let parts = function
  | Block p | Cyclic p -> p
  | Block_cyclic { parts; _ } -> parts
  | Custom { parts; _ } -> parts

let name = function
  | Block p -> Printf.sprintf "block(%d)" p
  | Cyclic p -> Printf.sprintf "cyclic(%d)" p
  | Block_cyclic { parts; block } -> Printf.sprintf "block_cyclic(%d,%d)" parts block
  | Custom { name; _ } -> name

let check t =
  if parts t <= 0 then invalid_arg (Printf.sprintf "Partition: %s has no parts" (name t));
  match t with
  | Block_cyclic { block; _ } when block <= 0 -> invalid_arg "Partition: block size must be positive"
  | Block _ | Cyclic _ | Block_cyclic _ | Custom _ -> ()

(* Part of element [i] in an array of length [n]. *)
let assign t ~n i =
  check t;
  if i < 0 || i >= n then invalid_arg "Partition.assign: index out of range";
  match t with
  | Block p ->
      (* First [r] blocks have size [q+1], the rest [q]. *)
      let q = n / p and r = n mod p in
      if i < r * (q + 1) then i / (q + 1) else if q = 0 then r else r + ((i - (r * (q + 1))) / q)
  | Cyclic p -> i mod p
  | Block_cyclic { parts; block } -> i / block mod parts
  | Custom { assign; parts; name } ->
      let a = assign i in
      if a < 0 || a >= parts then
        invalid_arg (Printf.sprintf "Partition %s: element %d assigned to invalid part %d" name i a);
      a

let part_sizes t ~n =
  check t;
  let sizes = Array.make (parts t) 0 in
  for i = 0 to n - 1 do
    let a = assign t ~n i in
    sizes.(a) <- sizes.(a) + 1
  done;
  sizes

let apply t a =
  check t;
  let n = Array.length a in
  (* Parts may be empty when n < parts; the n = 0 case is handled up front
     because a.(0) does not exist to seed the piece arrays. *)
  if n = 0 then Par_array.unsafe_of_array (Array.make (parts t) [||])
  else begin
    let sizes = part_sizes t ~n in
    let pieces = Array.map (fun s -> Array.make s a.(0)) sizes in
    let cursors = Array.make (parts t) 0 in
    for i = 0 to n - 1 do
      let p = assign t ~n i in
      pieces.(p).(cursors.(p)) <- a.(i);
      cursors.(p) <- cursors.(p) + 1
    done;
    Par_array.unsafe_of_array pieces
  end

let unapply t pieces =
  check t;
  if Par_array.length pieces <> parts t then
    invalid_arg
      (Printf.sprintf "Partition.unapply: %s expects %d parts, got %d" (name t) (parts t)
         (Par_array.length pieces));
  let pieces = Par_array.unsafe_to_array pieces in
  let n = Array.fold_left (fun acc p -> acc + Array.length p) 0 pieces in
  if n = 0 then [||]
  else begin
    (* Seed value: any element, to initialise the output array. *)
    let seed =
      let rec find k =
        if k >= Array.length pieces then invalid_arg "Partition.unapply: impossible"
        else if Array.length pieces.(k) > 0 then pieces.(k).(0)
        else find (k + 1)
      in
      find 0
    in
    let out = Array.make n seed in
    let cursors = Array.make (parts t) 0 in
    for i = 0 to n - 1 do
      let p = assign t ~n i in
      if cursors.(p) >= Array.length pieces.(p) then
        invalid_arg "Partition.unapply: part sizes inconsistent with pattern";
      out.(i) <- pieces.(p).(cursors.(p));
      cursors.(p) <- cursors.(p) + 1
    done;
    Array.iteri
      (fun p c ->
        if c <> Array.length pieces.(p) then
          invalid_arg "Partition.unapply: part sizes inconsistent with pattern")
      cursors;
    out
  end

(* [split] regroups a ParArray's elements (not a SeqArray's): the paper uses
   it to form nested configurations — processor groups. *)
let split t pa =
  check t;
  let arr = Par_array.unsafe_to_array pa in
  let grouped = apply t arr in
  Par_array.unsafe_of_array
    (Array.map Par_array.unsafe_of_array (Par_array.unsafe_to_array grouped))

let combine nested = Par_array.concat (Par_array.to_list nested)
