(* Two-dimensional ParArrays: [ParArray (Int, Int) α], stored row-major.

   These carry the paper's two-dimensional communication skeletons
   (rotate_row / rotate_col) and the 2-D partition patterns (row_block,
   col_block, row_col_block, row_cyclic, col_cyclic). *)

type 'a t = { rows : int; cols : int; elems : 'a array }

let dims t = (t.rows, t.cols)
let rows t = t.rows
let cols t = t.cols
let size t = t.rows * t.cols

let check_dims rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Par_array2: negative dimension"

let init ~rows ~cols f =
  check_dims rows cols;
  { rows; cols; elems = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let make ~rows ~cols v =
  check_dims rows cols;
  { rows; cols; elems = Array.make (rows * cols) v }

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg (Printf.sprintf "Par_array2.get: (%d,%d) out of %dx%d" i j t.rows t.cols);
  t.elems.((i * t.cols) + j)

let of_arrays rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then { rows = 0; cols = 0; elems = [||] }
  else begin
    let cols = Array.length rows_arr.(0) in
    Array.iter
      (fun r -> if Array.length r <> cols then invalid_arg "Par_array2.of_arrays: ragged rows")
      rows_arr;
    init ~rows ~cols (fun i j -> rows_arr.(i).(j))
  end

let to_arrays t = Array.init t.rows (fun i -> Array.init t.cols (fun j -> get t i j))

let row t i = Array.init t.cols (fun j -> get t i j)
let col t j = Array.init t.rows (fun i -> get t i j)

let map ?(exec = Exec.sequential) f t = { t with elems = exec.Exec.pmap f t.elems }

let imap ?(exec = Exec.sequential) f t =
  { t with elems = exec.Exec.pmapi (fun k x -> f (k / t.cols) (k mod t.cols) x) t.elems }

let fold ?(exec = Exec.sequential) op t =
  if size t = 0 then invalid_arg "Par_array2.fold: empty";
  exec.Exec.preduce op t.elems

let equal eq a b =
  a.rows = b.rows && a.cols = b.cols && Array.for_all2 eq a.elems b.elems

let transpose t = init ~rows:t.cols ~cols:t.rows (fun i j -> get t j i)

let zip a b =
  if dims a <> dims b then invalid_arg "Par_array2.zip: dimension mismatch";
  init ~rows:a.rows ~cols:a.cols (fun i j -> (get a i j, get b i j))

(* The paper's rotate_row: row [i] rotated left by [df i] (an element at
   column [j] moves to column [j - df i mod cols]; equivalently the value at
   [(i, j)] becomes the old [(i, (j + df i) mod cols)]). *)
let rotate_row ?(exec = Exec.sequential) df t =
  let wrap m x = ((x mod m) + m) mod m in
  if t.cols = 0 then t
  else
    { t with
      elems =
        exec.Exec.pinit (t.rows * t.cols) (fun k ->
            let i = k / t.cols and j = k mod t.cols in
            get t i (wrap t.cols (j + df i)))
    }

let rotate_col ?(exec = Exec.sequential) df t =
  let wrap m x = ((x mod m) + m) mod m in
  if t.rows = 0 then t
  else
    { t with
      elems =
        exec.Exec.pinit (t.rows * t.cols) (fun k ->
            let i = k / t.cols and j = k mod t.cols in
            get t (wrap t.rows (i + df j)) j)
    }

let pp pp_elem ppf t =
  Format.fprintf ppf "@[<v>";
  for i = 0 to t.rows - 1 do
    Format.fprintf ppf "@[<hov 1><%a>@]@,"
      (Format.pp_print_array ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_elem)
      (row t i)
  done;
  Format.fprintf ppf "@]"
