(* Computational skeletons (paper Section 2.3): abstractions of parallel
   control flow — farm, SPMD, iterUntil / iterFor. *)

(* farm f env A = map (f env) A: the simplest form of data parallelism,
   with an environment shared by all jobs. *)
let farm ?(exec = Exec.sequential) f env pa = Elementary.map ~exec (f env) pa

(* One SPMD stage: a global (communication / synchronisation) phase over
   the whole configuration after a local phase farmed to the processors.
   Composition of stages models barrier-separated supersteps:

     SPMD []              = id
     SPMD ((gf,lf) :: fs) = SPMD fs . gf . imap lf                        *)
type 'a stage = {
  global : 'a Par_array.t -> 'a Par_array.t;
  local : int -> 'a -> 'a;
}

let stage ?(global = Fun.id) ?(local = fun _ x -> x) () = { global; local }

let spmd_step ?(exec = Exec.sequential) { global; local } pa =
  global (Elementary.imap ~exec local pa)

let spmd ?(exec = Exec.sequential) stages pa =
  List.fold_left (fun acc st -> spmd_step ~exec st acc) pa stages

(* iterUntil iterSolve finalSolve con x *)
let rec iter_until iter_solve final_solve con x =
  if con x then final_solve x else iter_until iter_solve final_solve con (iter_solve x)

(* iterFor: counted iteration, the body receives the 0-based step index. *)
let iter_for terminator iter_solve x =
  if terminator < 0 then invalid_arg "Computational.iter_for: negative iteration count";
  let rec go i x = if i >= terminator then x else go (i + 1) (iter_solve i x) in
  go 0 x

(* Dynamically scheduled farm over the pool: jobs are pulled by idle
   workers, so irregular job sizes balance — the "processor farm" in its
   original task-queue sense, an extension beyond the paper's static map. *)
let farm_dynamic pool f env jobs =
  let open Runtime in
  let n = Par_array.length jobs in
  if n = 0 then Par_array.of_array [||]
  else begin
    let src = Par_array.unsafe_to_array jobs in
    let first = f env src.(0) in
    let out = Array.make n first in
    Pool.parallel_for ~grain:1 pool ~lo:1 ~hi:n (fun i -> out.(i) <- f env src.(i));
    Par_array.unsafe_of_array out
  end
