(** Two-dimensional partition patterns: a 1-D pattern over rows paired with
    one over columns — uniformly expressing the paper's [row_block],
    [col_block], [row_col_block], [row_cyclic], [col_cyclic]. *)

type t = { row_pat : Partition.t; col_pat : Partition.t }

val make : row_pat:Partition.t -> col_pat:Partition.t -> t
val row_block : int -> t
val col_block : int -> t
val row_col_block : int -> int -> t
val row_cyclic : int -> t
val col_cyclic : int -> t

val parts : t -> int * int
(** (grid rows, grid cols). *)

val name : t -> string

val apply : t -> 'a Par_array2.t -> 'a Par_array2.t Par_array2.t
(** Cut a matrix into a grid of sub-matrices. *)

val unapply : t -> 'a Par_array2.t Par_array2.t -> 'a Par_array2.t
(** Exact inverse of {!apply}. @raise Invalid_argument on inconsistent
    pieces. *)
