(** Stream (task-parallel) skeletons: ordered pipelines of farm stages over
    a finite job stream — the P3L-style layer the paper's related-work
    section situates SCL against.

    Law: [run (s1 >>> s2 >>> ...) xs] = [List.map (apply pipe) xs] — stages
    run concurrently on their own domains, farms process jobs out of order,
    and the collector restores input order. *)

type ('a, 'b) t
(** A pipeline segment from ['a] jobs to ['b] results. *)

val stage : ?workers:int -> ('a -> 'b) -> ('a, 'b) t
(** One pipeline stage; [workers] > 1 makes it a farm.
    @raise Invalid_argument if [workers <= 0]. *)

val farm : workers:int -> ('a -> 'b) -> ('a, 'b) t
(** [farm ~workers f = stage ~workers f]. *)

val ( >>> ) : ('a, 'b) t -> ('b, 'c) t -> ('a, 'c) t
(** Pipeline composition (left stage feeds right stage). *)

val apply : ('a, 'b) t -> 'a -> 'b
(** The sequential meaning of the pipe. *)

val stages : ('a, 'b) t -> int

exception Stage_failure of exn * Printexc.raw_backtrace
(** A stage function raised; the original exception and backtrace are
    carried. *)

val run : ('a, 'b) t -> 'a list -> 'b list
(** Execute the pipeline: spawns the stage domains, streams the jobs
    through, and returns results in input order. Domains are joined before
    returning. @raise Stage_failure if any stage function raised. *)

val run_array : ('a, 'b) t -> 'a array -> 'b array
