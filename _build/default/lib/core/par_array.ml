(* The paper's ParArray: a distributed array whose element [i] conceptually
   lives on (virtual) processor [i].

   The representation is a host array; which machine the elements actually
   live on is the business of the execution backend (multicore pool) or of
   the simulator templates in [scl_sim].  Nested parallelism is direct:
   ['a t t] is a ParArray of ParArrays, the paper's processor groups. *)

type 'a t = { elems : 'a array }

let of_array a = { elems = Array.copy a }
let unsafe_of_array elems = { elems }
let to_array t = Array.copy t.elems
let unsafe_to_array t = t.elems
let init n f = { elems = Array.init n f }
let make n v = { elems = Array.make n v }
let length t = Array.length t.elems

let get t i =
  if i < 0 || i >= length t then
    invalid_arg (Printf.sprintf "Par_array.get: index %d out of bounds [0,%d)" i (length t));
  t.elems.(i)

let set t i v =
  if i < 0 || i >= length t then
    invalid_arg (Printf.sprintf "Par_array.set: index %d out of bounds [0,%d)" i (length t));
  { elems = Array.mapi (fun j x -> if j = i then v else x) t.elems }

let equal eq a b = length a = length b && Array.for_all2 eq a.elems b.elems

let pp pp_elem ppf t =
  Format.fprintf ppf "@[<hov 1><%a>@]"
    (Format.pp_print_array ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_elem)
    t.elems

let to_list t = Array.to_list t.elems
let of_list l = { elems = Array.of_list l }

let concat ts = { elems = Array.concat (List.map (fun t -> t.elems) ts) }

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > length t then invalid_arg "Par_array.sub: bad range";
  { elems = Array.sub t.elems pos len }
