(** Configuration skeletons (paper Section 2.1): forming and transforming
    configurations — ParArrays of co-located tuples. *)

val align : 'a Par_array.t -> 'b Par_array.t -> ('a * 'b) Par_array.t
(** Pair corresponding elements: objects in a tuple are co-located on the
    same processor. @raise Invalid_argument on length mismatch. *)

val align3 : 'a Par_array.t -> 'b Par_array.t -> 'c Par_array.t -> ('a * 'b * 'c) Par_array.t

val unalign : ('a * 'b) Par_array.t -> 'a Par_array.t * 'b Par_array.t
(** Inverse of {!align}. *)

val distribution2 :
  move1:('a array Par_array.t -> 'a array Par_array.t) ->
  pat1:Partition.t ->
  move2:('b array Par_array.t -> 'b array Par_array.t) ->
  pat2:Partition.t ->
  'a array ->
  'b array ->
  ('a array * 'b array) Par_array.t
(** The paper's [distribution <(p,f),(q,g)> A B]: partition each array,
    apply its bulk movement, and align the results. *)

val distribution3 :
  move1:('a array Par_array.t -> 'a array Par_array.t) ->
  pat1:Partition.t ->
  move2:('b array Par_array.t -> 'b array Par_array.t) ->
  pat2:Partition.t ->
  move3:('c array Par_array.t -> 'c array Par_array.t) ->
  pat3:Partition.t ->
  'a array ->
  'b array ->
  'c array ->
  ('a array * 'b array * 'c array) Par_array.t

val distribution_list :
  (('a array Par_array.t -> 'a array Par_array.t) * Partition.t) list ->
  'a array list ->
  'a array Par_array.t list
(** Homogeneous form of the paper's list-of-arrays distribution. *)

val redistribution2 : ('a -> 'c) * ('b -> 'd) -> 'a * 'b -> 'c * 'd
(** Componentwise bulk movement over a configuration (dynamic
    redistribution). *)

val redistribution3 : ('a -> 'd) * ('b -> 'e) * ('c -> 'f) -> 'a * 'b * 'c -> 'd * 'e * 'f
val redistribution_list : ('a -> 'b) list -> 'a list -> 'b list

val gather : Partition.t -> 'a array Par_array.t -> 'a array
(** Collect a distributed array (inverse of [Partition.apply]). *)
