(* Segmented operations over nested ParArrays — the machinery behind the
   paper's flattening rule: "the segmented global function sgf provides a
   similar functionality to the Segmented Instructions used in the NESL
   language implementation" (Section 4).

   A nested ParArray (an array of segments) is flattened to a flat array
   paired with segment-start flags; the segmented scan is then ONE flat
   scan with the flag-reset operator

     (fx, x) ⊕ (fy, y) = (fx || fy, if fy then y else op x y)

   which is associative whenever [op] is — so the flat data-parallel scan
   machinery (including the pool backend) runs nested scans unchanged.
   This is the executable content of turning nested data parallelism into
   flat data parallelism. *)

(* The flag-reset lift of an associative operator. *)
let segmented_op op (fx, x) (fy, y) = (fx || fy, if fy then y else op x y)

let segment_lengths nested = Array.map Array.length (Par_array.unsafe_to_array nested)

let flatten_with_flags (nested : 'a array Par_array.t) : (bool * 'a) array =
  let segments = Par_array.unsafe_to_array nested in
  let total = Array.fold_left (fun acc s -> acc + Array.length s) 0 segments in
  if total = 0 then [||]
  else begin
    let seed =
      let rec find k = if Array.length segments.(k) > 0 then segments.(k).(0) else find (k + 1) in
      find 0
    in
    let out = Array.make total (false, seed) in
    let pos = ref 0 in
    Array.iter
      (fun seg ->
        Array.iteri
          (fun j v ->
            out.(!pos) <- (j = 0, v);
            incr pos)
          seg)
      segments;
    out
  end

let unflatten (lengths : int array) (flat : 'a array) : 'a array Par_array.t =
  let pos = ref 0 in
  Par_array.unsafe_of_array
    (Array.map
       (fun len ->
         let seg = Array.sub flat !pos len in
         pos := !pos + len;
         seg)
       lengths)

(* Inclusive scan within every segment, computed as one flat scan. *)
let segmented_scan ?(exec = Exec.sequential) op (nested : 'a array Par_array.t) :
    'a array Par_array.t =
  let lengths = segment_lengths nested in
  let flagged = flatten_with_flags nested in
  let scanned = exec.Exec.pscan (segmented_op op) flagged in
  unflatten lengths (Array.map snd scanned)

(* Reduction of every segment (empty segments take the unit), via the last
   element of the segmented scan. *)
let segmented_fold ?(exec = Exec.sequential) op unit_v (nested : 'a array Par_array.t) :
    'a Par_array.t =
  let scanned = segmented_scan ~exec op nested in
  Elementary.map ~exec
    (fun seg -> if Array.length seg = 0 then unit_v else seg.(Array.length seg - 1))
    scanned

(* Reference semantics: the nested skeleton applied segment by segment —
   what the flattened implementations must agree with. *)
let segmented_scan_reference op nested =
  Elementary.map
    (fun seg ->
      if Array.length seg = 0 then [||]
      else begin
        let out = Array.make (Array.length seg) seg.(0) in
        for i = 1 to Array.length seg - 1 do
          out.(i) <- op out.(i - 1) seg.(i)
        done;
        out
      end)
    nested
