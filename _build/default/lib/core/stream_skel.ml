(* Stream (task-parallel) skeletons: ordered pipelines of stages over a
   finite stream of jobs.

   The paper's related-work section contrasts SCL with P3L, whose skeletons
   compose along single streams, and notes that "parallel composition of
   concurrent tasks can be supported by applying a concurrent constraint
   programming model on top of the SCL layer".  This module provides that
   task-parallel layer in its standard modern form: a pipe combinator whose
   stages are farms of worker domains connected by bounded queues, with
   output order preserved by sequence numbers.

   Stages communicate through Mpmc_queue; each stage closes its output once
   all its workers have drained the input, so termination cascades down the
   pipe.  The final collector reorders by sequence number, so [run] is
   extensionally just [List.map] of the composed stage functions — that is
   the law the tests check. *)

type ('a, 'b) stage = { workers : int; fn : 'a -> 'b }

type ('a, 'b) t =
  | Single : ('a, 'b) stage -> ('a, 'b) t
  | Compose : ('a, 'b) t * ('b, 'c) t -> ('a, 'c) t

let stage ?(workers = 1) fn =
  if workers <= 0 then invalid_arg "Stream_skel.stage: workers must be positive";
  Single { workers; fn }

let farm ~workers fn = stage ~workers fn

let ( >>> ) a b = Compose (a, b)

let rec stages : type a b. (a, b) t -> int = function
  | Single _ -> 1
  | Compose (x, y) -> stages x + stages y

(* The sequential meaning of a pipe. *)
let rec apply : type a b. (a, b) t -> a -> b =
 fun pipe x ->
  match pipe with
  | Single { fn; _ } -> fn x
  | Compose (f, g) -> apply g (apply f x)

(* A tagged job travelling the pipe.  The payload type changes per segment,
   so queues are built per segment inside [run]. *)
exception Stage_failure of exn * Printexc.raw_backtrace

(* Launch the worker domains of one stage reading (seq, 'a) and writing
   (seq, 'b); close the output when the last worker finishes. *)
let launch_stage (type a b) ({ workers; fn } : (a, b) stage)
    (input : (int * a) Runtime.Mpmc_queue.t) (output : (int * b) Runtime.Mpmc_queue.t)
    (failure : (exn * Printexc.raw_backtrace) option Atomic.t) : unit Domain.t list =
  let remaining = Atomic.make workers in
  let worker () =
    (try
       let rec loop () =
         match Runtime.Mpmc_queue.pop input with
         | seq, x ->
             (match fn x with
             | y -> Runtime.Mpmc_queue.push output (seq, y)
             | exception e ->
                 let bt = Printexc.get_raw_backtrace () in
                 (* First failure wins; note it and stop consuming. *)
                 ignore (Atomic.compare_and_set failure None (Some (e, bt)));
                 raise Exit);
             loop ()
         | exception Runtime.Mpmc_queue.Closed -> ()
       in
       loop ()
     with Exit -> ());
    if Atomic.fetch_and_add remaining (-1) = 1 then
      (* last worker out: propagate end-of-stream *)
      try Runtime.Mpmc_queue.close output with Runtime.Mpmc_queue.Closed -> ()
  in
  List.init workers (fun _ -> Domain.spawn worker)

(* Wire a pipe between an input queue and a freshly allocated output queue,
   spawning all stage domains; returns the output queue and the domains. *)
let rec wire : type a b.
    (a, b) t ->
    (int * a) Runtime.Mpmc_queue.t ->
    (exn * Printexc.raw_backtrace) option Atomic.t ->
    (int * b) Runtime.Mpmc_queue.t * unit Domain.t list =
 fun pipe input failure ->
  match pipe with
  | Single st ->
      let output = Runtime.Mpmc_queue.create () in
      (output, launch_stage st input output failure)
  | Compose (f, g) ->
      let mid, df = wire f input failure in
      let out, dg = wire g mid failure in
      (out, df @ dg)

let run (type a b) (pipe : (a, b) t) (inputs : a list) : b list =
  let n = List.length inputs in
  if n = 0 then []
  else begin
    let failure = Atomic.make None in
    let source = Runtime.Mpmc_queue.create () in
    let sink, domains = wire pipe source failure in
    (* Feed the source; jobs are tagged with their position. *)
    List.iteri (fun i x -> Runtime.Mpmc_queue.push source (i, x)) inputs;
    Runtime.Mpmc_queue.close source;
    (* Collect and reorder. *)
    let slots : b option array = Array.make n None in
    let collected = ref 0 in
    (try
       while !collected < n do
         let seq, y = Runtime.Mpmc_queue.pop sink in
         slots.(seq) <- Some y;
         incr collected
       done
     with Runtime.Mpmc_queue.Closed -> ());
    List.iter Domain.join domains;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace (Stage_failure (e, bt)) bt
    | None -> ());
    if !collected < n then failwith "Stream_skel.run: pipeline closed early without failure";
    Array.to_list (Array.map Option.get slots)
  end

let run_array pipe inputs = Array.of_list (run pipe (Array.to_list inputs))
