(* Multi-producer multi-consumer FIFO used as the pool's injection queue.

   Contention here is rare (only external submissions and worker fallback
   paths), so a mutex-protected [Queue] is the right trade-off: simple,
   correct under the OCaml 5 memory model, and supporting blocking pops with
   shutdown. *)

type 'a t = {
  q : 'a Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

exception Closed

let create () =
  { q = Queue.create (); mutex = Mutex.create (); nonempty = Condition.create (); closed = false }

let with_lock t f =
  Mutex.lock t.mutex;
  match f () with
  | v ->
      Mutex.unlock t.mutex;
      v
  | exception e ->
      Mutex.unlock t.mutex;
      raise e

let push t x =
  with_lock t (fun () ->
      if t.closed then raise Closed;
      Queue.push x t.q;
      Condition.signal t.nonempty)

let try_pop t =
  with_lock t (fun () -> if Queue.is_empty t.q then None else Some (Queue.pop t.q))

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.q) then Queue.pop t.q
        else if t.closed then raise Closed
        else begin
          Condition.wait t.nonempty t.mutex;
          wait ()
        end
      in
      wait ())

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let is_empty t = with_lock t (fun () -> Queue.is_empty t.q)

let length t = with_lock t (fun () -> Queue.length t.q)
