(* Exponential backoff for spin loops.

   Each [once] spins for the current number of [Domain.cpu_relax] rounds and
   doubles the round count up to [max].  Keeping the counter per call site
   (rather than global) avoids cache-line ping-pong between domains. *)

type t = { mutable rounds : int; max_rounds : int }

let create ?(max_rounds = 1 lsl 10) () = { rounds = 1; max_rounds }

let reset t = t.rounds <- 1

let once t =
  for _ = 1 to t.rounds do
    Domain.cpu_relax ()
  done;
  if t.rounds < t.max_rounds then t.rounds <- t.rounds * 2
