(* Sense-reversing barrier for a fixed party count.

   Invariant: [count] is the number of parties that have arrived in the
   current phase; the last arrival resets [count] and flips [sense], which
   releases everyone waiting on the old sense. *)

type t = {
  parties : int;
  mutable count : int;
  mutable sense : bool;
  mutex : Mutex.t;
  cond : Condition.t;
}

let create parties =
  if parties <= 0 then invalid_arg "Barrier.create: parties must be positive";
  { parties; count = 0; sense = false; mutex = Mutex.create (); cond = Condition.create () }

let parties t = t.parties

let await t =
  Mutex.lock t.mutex;
  let my_sense = t.sense in
  t.count <- t.count + 1;
  if t.count = t.parties then begin
    t.count <- 0;
    t.sense <- not t.sense;
    Condition.broadcast t.cond
  end
  else
    while t.sense = my_sense do
      Condition.wait t.cond t.mutex
    done;
  Mutex.unlock t.mutex
