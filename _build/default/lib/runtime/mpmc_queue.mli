(** Blocking multi-producer multi-consumer FIFO with shutdown. *)

type 'a t

exception Closed

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** @raise Closed after {!close}. *)

val pop : 'a t -> 'a
(** Blocks until an element is available. @raise Closed if the queue is
    closed and drained. *)

val try_pop : 'a t -> 'a option
(** Non-blocking. *)

val close : 'a t -> unit
(** Wake all blocked consumers; further pushes raise {!Closed}. *)

val is_empty : 'a t -> bool
val length : 'a t -> int
