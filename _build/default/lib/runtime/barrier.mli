(** Reusable sense-reversing barrier for a fixed number of parties. *)

type t

val create : int -> t
(** [create n] makes a barrier for [n] parties.
    @raise Invalid_argument if [n <= 0]. *)

val await : t -> unit
(** Block until all [n] parties have called {!await}; then all are released
    and the barrier is ready for the next phase. *)

val parties : t -> int
