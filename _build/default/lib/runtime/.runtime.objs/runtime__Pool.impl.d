lib/runtime/pool.ml: Array Atomic Backoff Condition Domain Mpmc_queue Mutex Printexc Ws_deque Xoshiro
