lib/runtime/ws_deque.mli:
