lib/runtime/pool.mli:
