lib/runtime/barrier.mli:
