lib/runtime/xoshiro.mli:
