lib/runtime/ws_deque.ml: Array Atomic Obj
