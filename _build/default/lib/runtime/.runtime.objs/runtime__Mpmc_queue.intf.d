lib/runtime/mpmc_queue.mli:
