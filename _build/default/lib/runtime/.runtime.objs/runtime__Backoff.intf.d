lib/runtime/backoff.mli:
