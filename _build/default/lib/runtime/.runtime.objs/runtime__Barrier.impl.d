lib/runtime/barrier.ml: Condition Mutex
