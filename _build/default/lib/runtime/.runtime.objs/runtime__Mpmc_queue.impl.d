lib/runtime/mpmc_queue.ml: Condition Mutex Queue
