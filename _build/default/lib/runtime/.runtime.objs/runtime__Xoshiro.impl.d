lib/runtime/xoshiro.ml: Array Int64
