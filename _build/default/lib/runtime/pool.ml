(* Work-stealing domain pool.

   Architecture: one spawned domain per worker, each owning a Chase-Lev
   deque.  Tasks submitted from inside a worker go to its own deque (LIFO,
   depth-first, cache-friendly); tasks submitted from outside go to a shared
   injection queue.  Idle workers steal from victims chosen by a per-worker
   PRNG, then fall back to the injection queue, then sleep on a condition
   variable.  [await] never blocks the thread: it *helps* by running other
   tasks until its promise resolves, so nested fork/join cannot deadlock.

   Wakeup protocol: a submitter signals the condition variable only when the
   sleeper count is non-zero.  A worker that decides to sleep increments the
   sleeper count and re-checks for work while holding the mutex, which
   closes the lost-wakeup race (a concurrent submitter either sees the
   sleeper count and blocks on the same mutex, or published its task before
   the re-check). *)

type task = unit -> unit

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a promise = 'a state Atomic.t

type worker = { wid : int; deque : task Ws_deque.t; rng : Xoshiro.t }

type t = {
  pool_id : int;
  workers : worker array;
  mutable domains : unit Domain.t array;
  inject : task Mpmc_queue.t;
  alive : bool Atomic.t;
  sleepers : int Atomic.t;
  sleep_mutex : Mutex.t;
  sleep_cond : Condition.t;
}

let next_pool_id = Atomic.make 0

(* Which worker of which pool the current domain is, if any. *)
let current_worker_key : (int * worker) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let num_workers t = Array.length t.workers

let my_worker t =
  match Domain.DLS.get current_worker_key with
  | Some (pid, w) when pid = t.pool_id -> Some w
  | Some _ | None -> None

let maybe_wake t =
  if Atomic.get t.sleepers > 0 then begin
    Mutex.lock t.sleep_mutex;
    Condition.broadcast t.sleep_cond;
    Mutex.unlock t.sleep_mutex
  end

let wake_all t =
  Mutex.lock t.sleep_mutex;
  Condition.broadcast t.sleep_cond;
  Mutex.unlock t.sleep_mutex

let schedule t task =
  (match my_worker t with
  | Some w -> Ws_deque.push w.deque task
  | None -> Mpmc_queue.push t.inject task);
  maybe_wake t

(* Try to obtain one runnable task.  [w] is the calling worker, if any. *)
let find_task t (w : worker option) : task option =
  let n = Array.length t.workers in
  let try_pop_own () =
    match w with
    | Some w -> ( match Ws_deque.pop w.deque with t' -> Some t' | exception Ws_deque.Empty -> None)
    | None -> None
  in
  let try_inject () = Mpmc_queue.try_pop t.inject in
  let try_steal () =
    if n = 0 then None
    else begin
      let self = match w with Some w -> w.wid | None -> -1 in
      let start =
        match w with Some w -> Xoshiro.int w.rng (max 1 n) | None -> 0
      in
      let rec scan i =
        if i >= n then None
        else begin
          let victim = (start + i) mod n in
          if victim = self then scan (i + 1)
          else
            match Ws_deque.steal t.workers.(victim).deque with
            | task -> Some task
            | exception Ws_deque.Empty -> scan (i + 1)
        end
      in
      scan 0
    end
  in
  match try_pop_own () with
  | Some _ as r -> r
  | None -> ( match try_inject () with Some _ as r -> r | None -> try_steal ())

let has_work t =
  (not (Mpmc_queue.is_empty t.inject))
  || Array.exists (fun w -> not (Ws_deque.is_empty w.deque)) t.workers

let run_task task =
  (* Individual task exceptions are captured inside promise-wrapping; a bare
     task that raises would otherwise kill its worker domain, so guard. *)
  try task () with _ -> ()

let sleep t =
  Mutex.lock t.sleep_mutex;
  Atomic.incr t.sleepers;
  if Atomic.get t.alive && not (has_work t) then Condition.wait t.sleep_cond t.sleep_mutex;
  Atomic.decr t.sleepers;
  Mutex.unlock t.sleep_mutex

let worker_loop t w () =
  Domain.DLS.set current_worker_key (Some (t.pool_id, w));
  let backoff = Backoff.create ~max_rounds:64 () in
  let rec loop () =
    if Atomic.get t.alive then begin
      match find_task t (Some w) with
      | Some task ->
          Backoff.reset backoff;
          run_task task;
          loop ()
      | None ->
          (* Spin briefly before sleeping: tasks usually arrive in bursts. *)
          Backoff.once backoff;
          (match find_task t (Some w) with
          | Some task ->
              Backoff.reset backoff;
              run_task task
          | None -> sleep t);
          loop ()
    end
  in
  loop ()

let create ?num_domains () =
  let n =
    match num_domains with
    | Some n ->
        if n < 0 then invalid_arg "Pool.create: num_domains must be >= 0";
        n
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let pool_id = Atomic.fetch_and_add next_pool_id 1 in
  let workers =
    Array.init n (fun wid ->
        { wid; deque = Ws_deque.create (); rng = Xoshiro.of_seed ((pool_id * 8191) + wid) })
  in
  let t =
    {
      pool_id;
      workers;
      domains = [||];
      inject = Mpmc_queue.create ();
      alive = Atomic.make true;
      sleepers = Atomic.make 0;
      sleep_mutex = Mutex.create ();
      sleep_cond = Condition.create ();
    }
  in
  t.domains <- Array.map (fun w -> Domain.spawn (worker_loop t w)) workers;
  t

let teardown t =
  if Atomic.get t.alive then begin
    Atomic.set t.alive false;
    wake_all t;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end

let async t f =
  if not (Atomic.get t.alive) then invalid_arg "Pool.async: pool is shut down";
  let p : 'a promise = Atomic.make Pending in
  let task () =
    match f () with
    | v -> Atomic.set p (Done v)
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        Atomic.set p (Failed (e, bt))
  in
  schedule t task;
  p

let rec await t p =
  match Atomic.get p with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending ->
      (match find_task t (my_worker t) with
      | Some task -> run_task task
      | None -> Domain.cpu_relax ());
      await t p

let run t f =
  let p = async t f in
  await t p

let default_grain t n = max 1 (n / (8 * max 1 (num_workers t)))

let parallel_for ?grain t ~lo ~hi body =
  let grain = match grain with Some g -> max 1 g | None -> default_grain t (hi - lo) in
  let rec go lo hi =
    if hi - lo <= grain then
      for i = lo to hi - 1 do
        body i
      done
    else begin
      let mid = lo + ((hi - lo) / 2) in
      let right = async t (fun () -> go mid hi) in
      go lo mid;
      await t right
    end
  in
  if hi > lo then go lo hi

let parallel_for_reduce ?grain t ~lo ~hi ~body ~combine ~init =
  let grain = match grain with Some g -> max 1 g | None -> default_grain t (hi - lo) in
  let rec go lo hi =
    if hi - lo <= grain then begin
      let acc = ref init in
      for i = lo to hi - 1 do
        acc := combine !acc (body i)
      done;
      !acc
    end
    else begin
      let mid = lo + ((hi - lo) / 2) in
      let right = async t (fun () -> go mid hi) in
      let left = go lo mid in
      combine left (await t right)
    end
  in
  if hi <= lo then init else go lo hi

let map_array ?grain t f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let first = f a.(0) in
    let out = Array.make n first in
    parallel_for ?grain t ~lo:1 ~hi:n (fun i -> out.(i) <- f a.(i));
    out
  end

let mapi_array ?grain t f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let first = f 0 a.(0) in
    let out = Array.make n first in
    parallel_for ?grain t ~lo:1 ~hi:n (fun i -> out.(i) <- f i a.(i));
    out
  end

let init_array ?grain t n f =
  if n = 0 then [||]
  else if n < 0 then invalid_arg "Pool.init_array: negative length"
  else begin
    let first = f 0 in
    let out = Array.make n first in
    parallel_for ?grain t ~lo:1 ~hi:n (fun i -> out.(i) <- f i);
    out
  end
