(** Exponential backoff for spin loops on multicore. *)

type t
(** Mutable backoff state; use one per waiting site, not shared between
    domains. *)

val create : ?max_rounds:int -> unit -> t
(** [create ()] returns a fresh backoff whose spin rounds double on every
    {!once} up to [max_rounds] (default [2{^10}]). *)

val once : t -> unit
(** Spin for the current number of rounds and escalate. *)

val reset : t -> unit
(** Return to the initial (shortest) spin. *)
