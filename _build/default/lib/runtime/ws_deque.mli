(** Chase–Lev work-stealing deque.

    The owning domain pushes and pops at the bottom (LIFO, cache-friendly);
    other domains steal from the top (FIFO, oldest task first). All
    operations are lock-free. *)

type 'a t

exception Empty

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only. *)

val pop : 'a t -> 'a
(** Owner only. Most recently pushed element. @raise Empty if none, or if a
    thief won the race for the last element. *)

val steal : 'a t -> 'a
(** Any domain. Oldest element. @raise Empty if none or on a lost race
    (callers should retry elsewhere rather than spin here). *)

val size : 'a t -> int
(** Snapshot estimate; exact only when quiescent. *)

val is_empty : 'a t -> bool
