(* Chase-Lev work-stealing deque.

   Single-owner [push]/[pop] at the bottom, concurrent [steal] at the top.
   The classic algorithm (Chase & Lev, SPAA'05; Le et al., PPoPP'13) adapted
   to OCaml 5's sequentially-consistent [Atomic] operations, following the
   structure used by domainslib.

   The element buffer is an [Obj.t array] so that the deque is polymorphic
   without risking float-array unboxing surprises; [Obj.repr]/[Obj.obj] only
   ever cross the module boundary in matched pairs, so this is safe. *)

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buffer : Obj.t array Atomic.t;
  (* The buffer is grow-only and always a power of two; [top]/[bottom] are
     monotonically increasing virtual indices into the circular buffer. *)
}

exception Empty

let min_capacity = 16

let create () =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buffer = Atomic.make (Array.make min_capacity (Obj.repr ()));
  }

let size t =
  let b = Atomic.get t.bottom and tp = Atomic.get t.top in
  max 0 (b - tp)

let is_empty t = size t = 0

let grow t buf b tp =
  let n = Array.length buf in
  let buf' = Array.make (n * 2) (Obj.repr ()) in
  for i = tp to b - 1 do
    buf'.(i land (2 * n - 1)) <- buf.(i land (n - 1))
  done;
  Atomic.set t.buffer buf';
  buf'

(* Owner only. *)
let push t x =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  let buf = Atomic.get t.buffer in
  let n = Array.length buf in
  let buf = if b - tp >= n then grow t buf b tp else buf in
  buf.(b land (Array.length buf - 1)) <- Obj.repr x;
  Atomic.set t.bottom (b + 1)

(* Owner only. *)
let pop : 'a t -> 'a =
 fun t ->
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* Deque was empty; restore the canonical empty shape. *)
    Atomic.set t.bottom tp;
    raise Empty
  end
  else begin
    let buf = Atomic.get t.buffer in
    let x : 'a = Obj.obj buf.(b land (Array.length buf - 1)) in
    if b > tp then x
    else begin
      (* Last element: race with thieves via CAS on [top]. *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then x else raise Empty
    end
  end

(* Any domain. *)
let steal : 'a t -> 'a =
 fun t ->
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then raise Empty
  else begin
    let buf = Atomic.get t.buffer in
    let x : 'a = Obj.obj buf.(tp land (Array.length buf - 1)) in
    if Atomic.compare_and_set t.top tp (tp + 1) then x else raise Empty
  end
