(** The paper's Section 3 linear solver: Gauss–Jordan elimination with
    partial pivoting over column-distributed augmented matrices, written as
    [iterFor n (map UPDATE ∘ applybrdcast PARTIALPIVOT)]. *)

open Machine

val solve_scl : ?exec:Scl.Exec.t -> ?parts:int -> float array array -> float array -> float array
(** Host-SCL solve of A x = b with the columns block-distributed over
    [parts] virtual processors.
    @raise Failure on singular systems,
    @raise Invalid_argument on shape mismatch. *)

val solve_sim :
  ?cost:Cost_model.t ->
  ?trace:Trace.t ->
  procs:int ->
  float array array ->
  float array ->
  float array * Sim.stats
(** The same algorithm on the simulated machine: the pivot column's owner
    broadcasts {!Seq_kernels.pivot_info} each step, everyone updates its
    columns. *)

val random_system : seed:int -> int -> float array array * float array
(** Well-conditioned (diagonally dominant) random test system. *)

val augment : float array array -> float array -> float array array
(** Column-wise augmented representation [(A | b)]: [n+1] columns of
    length [n]. *)
