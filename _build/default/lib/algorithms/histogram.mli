(** Parallel histogram — the irregular many-to-one workload for the
    paper's [send] communication skeleton: values are routed to the
    processors owning their buckets, which reduce the arrivals locally. *)

open Machine

val histogram_seq : buckets:int -> lo:float -> hi:float -> float array -> int array
(** Sequential reference; values outside [\[lo, hi)] clamp to the end
    buckets. @raise Invalid_argument if [buckets <= 0] or [hi <= lo]. *)

val histogram_scl :
  ?exec:Scl.Exec.t -> buckets:int -> lo:float -> hi:float -> float array -> int array
(** Host-SCL rendering via [Communication.send] (one virtual processor per
    bucket). *)

val histogram_sim :
  ?cost:Cost_model.t ->
  ?trace:Trace.t ->
  procs:int ->
  buckets:int ->
  lo:float ->
  hi:float ->
  float array ->
  int array * Sim.stats
(** Simulator rendering with local pre-combining and one all-to-all of
    partial counts. *)

val bucket_of : buckets:int -> lo:float -> hi:float -> float -> int
