(** Fast Fourier transform as a pure skeleton program: bit-reversal is a
    permutation [send_one], each butterfly stage is a [fetch] across the
    xor-partner (a hypercube dimension exchange) plus an elementwise
    [imap]. Verified against a naive O(n²) DFT. *)

open Machine

val fft_scl : ?exec:Scl.Exec.t -> ?inverse:bool -> Complex.t array -> Complex.t array
(** Host-SCL radix-2 FFT; the inverse is scaled by 1/n.
    @raise Invalid_argument unless the length is a power of two (length
    ≤ 1 is returned unchanged). *)

val ifft_scl : ?exec:Scl.Exec.t -> Complex.t array -> Complex.t array

val fft_sim :
  ?cost:Cost_model.t ->
  ?trace:Trace.t ->
  ?inverse:bool ->
  procs:int ->
  Complex.t array ->
  Complex.t array * Sim.stats
(** Simulator rendering over Dvec (any processor count; the xor exchanges
    are priced by the topology). *)

val dft_naive : ?inverse:bool -> Complex.t array -> Complex.t array
(** O(n²) reference. *)

val bit_reverse : bits:int -> int -> int
val complex_close : Complex.t array -> Complex.t array -> eps:float -> bool
val random_signal : seed:int -> int -> Complex.t array
