(** Line of sight — the classic scan application: point i of a terrain
    profile is visible from the origin iff its viewing angle exceeds the
    maximum angle of everything before it — one exclusive max-scan. *)

open Machine

val visible_seq : ?observer_height:float -> float array -> bool array
(** Sequential reference. Point 0 (the observer) is always visible. *)

val visible_scl : ?exec:Scl.Exec.t -> ?observer_height:float -> float array -> bool array
(** Host-SCL rendering: imap angles, exclusive max-scan, zip compare. *)

val visible_sim :
  ?cost:Cost_model.t ->
  ?trace:Trace.t ->
  ?observer_height:float ->
  procs:int ->
  float array ->
  bool array * Sim.stats
(** Simulator rendering (carry-chain exclusive scan along block order). *)

val angle : observer_height:float -> int -> float -> float
