(** Lloyd's k-means — the farm + reduction workload: assignment is a farm
    with the centroids as shared environment; the update is an associative
    fold of per-cluster accumulators. *)

open Machine

type point = { x : float; y : float }

type result = {
  centroids : point array;
  assignment : int array;  (** cluster index per input point *)
  iterations : int;
  converged : bool;  (** movement dropped below [tol] before [max_iter] *)
}

val run_seq :
  ?tol:float -> ?max_iter:int -> k:int -> point array -> init:point array -> result
(** Sequential reference. [init] supplies the [k] starting centroids.
    @raise Invalid_argument on bad [k] or [init] size. *)

val run_scl :
  ?exec:Scl.Exec.t ->
  ?parts:int ->
  ?tol:float ->
  ?max_iter:int ->
  k:int ->
  point array ->
  init:point array ->
  result
(** Host-SCL rendering: farm over point chunks + fold of accumulators. *)

val run_sim :
  ?cost:Cost_model.t ->
  ?trace:Trace.t ->
  ?tol:float ->
  ?max_iter:int ->
  procs:int ->
  k:int ->
  point array ->
  init:point array ->
  result * Sim.stats
(** Simulator rendering: local accumulation + allreduce per iteration. *)

val nearest : point array -> point -> int
val dist2 : point -> point -> float

val blobs : seed:int -> k:int -> per_cluster:int -> point array * point array
(** Well-separated test blobs: (points, true centres). *)
