(* The sequential base-language procedures of the paper's examples
   (SEQ_QUICKSORT, MIDVALUE, SPLIT, MERGE, PARTIALPIVOT, UPDATE).  In the
   paper these are Fortran or C; here they are ordinary OCaml functions —
   SCL only requires them to be sequential black boxes. *)

(* SEQ_QUICKSORT: in-place three-way quicksort with insertion sort below a
   cutoff; returns a fresh sorted array. *)
let quicksort (a : int array) : int array =
  let a = Array.copy a in
  let swap i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let insertion lo hi =
    for i = lo + 1 to hi do
      let x = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > x do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- x
    done
  in
  let rec qs lo hi =
    if hi - lo < 16 then insertion lo hi
    else begin
      (* median-of-three pivot *)
      let mid = lo + ((hi - lo) / 2) in
      if a.(mid) < a.(lo) then swap mid lo;
      if a.(hi) < a.(lo) then swap hi lo;
      if a.(hi) < a.(mid) then swap hi mid;
      let pivot = a.(mid) in
      (* three-way partition (Dutch national flag) *)
      let lt = ref lo and gt = ref hi and i = ref lo in
      while !i <= !gt do
        if a.(!i) < pivot then begin
          swap !lt !i;
          incr lt;
          incr i
        end
        else if a.(!i) > pivot then begin
          swap !i !gt;
          decr gt
        end
        else incr i
      done;
      qs lo (!lt - 1);
      qs (!gt + 1) hi
    end
  in
  if Array.length a > 1 then qs 0 (Array.length a - 1);
  a

(* MIDVALUE: the median (middle element) of an already-sorted array;
   [None] when empty. *)
let midvalue (a : int array) : int option =
  let n = Array.length a in
  if n = 0 then None else Some a.(n / 2)

(* SPLIT: split a sorted array at a pivot — (elements <= pivot,
   elements > pivot).  O(log n) by binary search. *)
let split_at (pivot : int) (a : int array) : int array * int array =
  let n = Array.length a in
  (* first index with a.(i) > pivot *)
  let rec bs lo hi = if lo >= hi then lo else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) <= pivot then bs (mid + 1) hi else bs lo mid
    end
  in
  let cut = bs 0 n in
  (Array.sub a 0 cut, Array.sub a cut (n - cut))

(* MERGE: merge two sorted arrays. *)
let merge (a : int array) (b : int array) : int array =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then Array.copy b
  else if nb = 0 then Array.copy a
  else begin
    let out = Array.make (na + nb) a.(0) in
    let i = ref 0 and j = ref 0 in
    for k = 0 to na + nb - 1 do
      if !i < na && (!j >= nb || a.(!i) <= b.(!j)) then begin
        out.(k) <- a.(!i);
        incr i
      end
      else begin
        out.(k) <- b.(!j);
        incr j
      end
    done;
    out
  end

let is_sorted (a : int array) : bool =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i - 1) > a.(i) then ok := false
  done;
  !ok

(* --- linear-algebra kernels for the Gauss–Jordan example ---------------- *)

(* PARTIALPIVOT: in column [col] (length n), among rows i..n-1, the row
   with the largest absolute value. *)
let partial_pivot ~row (col : float array) : int =
  let n = Array.length col in
  if row < 0 || row >= n then invalid_arg "Seq_kernels.partial_pivot: row out of range";
  let best = ref row in
  for k = row + 1 to n - 1 do
    if Float.abs col.(k) > Float.abs col.(!best) then best := k
  done;
  !best

(* The pivot data broadcast at elimination step [i]: the row swapped into
   position, the pivot value, and the per-row multipliers. *)
type pivot_info = { swap_row : int; pivot : float; multipliers : float array }

(* Compute pivot info from the pivot column at step [row] (after which the
   column owner also knows the swap). *)
let make_pivot_info ~row (col : float array) : pivot_info =
  let r = partial_pivot ~row col in
  let col = Array.copy col in
  let t = col.(row) in
  col.(row) <- col.(r);
  col.(r) <- t;
  let pivot = col.(row) in
  if Float.abs pivot < 1e-12 then failwith "Gauss: matrix is singular to working precision";
  let multipliers = Array.map (fun v -> v /. pivot) col in
  { swap_row = r; pivot; multipliers }

(* UPDATE: apply one Gauss–Jordan elimination step to a column, in place on
   a fresh copy: swap the pivot row in, eliminate all other rows, normalise
   the pivot row. *)
let update ~row (info : pivot_info) (col : float array) : float array =
  let col = Array.copy col in
  let t = col.(row) in
  col.(row) <- col.(info.swap_row);
  col.(info.swap_row) <- t;
  let v = col.(row) in
  for k = 0 to Array.length col - 1 do
    if k <> row then col.(k) <- col.(k) -. (info.multipliers.(k) *. v)
  done;
  col.(row) <- v /. info.pivot;
  col

(* Dense sequential baseline: Gauss–Jordan solve of A x = b. *)
let gauss_seq (a : float array array) (b : float array) : float array =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    Array.iter
      (fun r -> if Array.length r <> n then invalid_arg "Seq_kernels.gauss_seq: non-square matrix")
      a;
    if Array.length b <> n then invalid_arg "Seq_kernels.gauss_seq: rhs length mismatch";
    (* augmented, row-major *)
    let m = Array.init n (fun i -> Array.append (Array.copy a.(i)) [| b.(i) |]) in
    for i = 0 to n - 1 do
      let best = ref i in
      for k = i + 1 to n - 1 do
        if Float.abs m.(k).(i) > Float.abs m.(!best).(i) then best := k
      done;
      let tmp = m.(i) in
      m.(i) <- m.(!best);
      m.(!best) <- tmp;
      let pivot = m.(i).(i) in
      if Float.abs pivot < 1e-12 then failwith "Gauss: matrix is singular to working precision";
      for j = 0 to n do
        m.(i).(j) <- m.(i).(j) /. pivot
      done;
      for k = 0 to n - 1 do
        if k <> i then begin
          let f = m.(k).(i) in
          if f <> 0.0 then
            for j = 0 to n do
              m.(k).(j) <- m.(k).(j) -. (f *. m.(i).(j))
            done
        end
      done
    done;
    Array.init n (fun i -> m.(i).(n))
  end

(* Residual max |Ax - b|: the accuracy check used by tests. *)
let residual (a : float array array) (x : float array) (b : float array) : float =
  let n = Array.length a in
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    let s = ref 0.0 in
    for j = 0 to n - 1 do
      s := !s +. (a.(i).(j) *. x.(j))
    done;
    worst := Float.max !worst (Float.abs (!s -. b.(i)))
  done;
  !worst

(* Dense n x n matrix multiply, the sequential baseline for Cannon. *)
let matmul (a : float array array) (b : float array array) : float array array =
  let n = Array.length a in
  let p = if n = 0 then 0 else Array.length b.(0) in
  let m = Array.length b in
  Array.init n (fun i ->
      Array.init p (fun j ->
          let s = ref 0.0 in
          for k = 0 to m - 1 do
            s := !s +. (a.(i).(k) *. b.(k).(j))
          done;
          !s))
