lib/algorithms/heat2d.mli: Cost_model Machine Scl Sim Trace
