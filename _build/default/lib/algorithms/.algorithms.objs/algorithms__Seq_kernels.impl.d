lib/algorithms/seq_kernels.ml: Array Float
