lib/algorithms/histogram.ml: Array Comm Communication Cost_model Elementary Exec Hashtbl Machine Option Par_array Scl Scl_sim Sim
