lib/algorithms/kmeans.ml: Array Comm Computational Cost_model Elementary Exec Float Fun List Machine Partition Runtime Scl Scl_sim Sim
