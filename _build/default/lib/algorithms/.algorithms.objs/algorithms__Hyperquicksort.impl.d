lib/algorithms/hyperquicksort.ml: Array Comm Communication Computational Config Cost_model Elementary Exec Machine Option Par_array Partition Printf Scl Scl_sim Seq_kernels Sim String Topology Trace
