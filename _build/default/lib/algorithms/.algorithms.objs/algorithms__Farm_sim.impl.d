lib/algorithms/farm_sim.ml: Array Comm Cost_model List Machine Option Scl_sim Sim
