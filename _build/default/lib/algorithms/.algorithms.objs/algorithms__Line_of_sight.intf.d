lib/algorithms/line_of_sight.mli: Cost_model Machine Scl Sim Trace
