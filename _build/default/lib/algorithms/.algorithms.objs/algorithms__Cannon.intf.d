lib/algorithms/cannon.mli: Cost_model Machine Scl Sim Trace
