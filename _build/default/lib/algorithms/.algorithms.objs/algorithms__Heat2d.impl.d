lib/algorithms/heat2d.ml: Array Comm Computational Cost_model Exec Float Fun Machine Par_array2 Partition2 Scl Scl_sim Sim
