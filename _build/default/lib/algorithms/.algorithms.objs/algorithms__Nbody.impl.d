lib/algorithms/nbody.ml: Array Comm Computational Cost_model Exec Float Machine Par_array Runtime Scl Scl_sim Sim
