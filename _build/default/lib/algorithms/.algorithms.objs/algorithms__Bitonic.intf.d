lib/algorithms/bitonic.mli: Cost_model Machine Sim Trace
