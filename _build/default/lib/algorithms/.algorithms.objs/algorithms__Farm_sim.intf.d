lib/algorithms/farm_sim.mli: Cost_model Machine Sim
