lib/algorithms/histogram.mli: Cost_model Machine Scl Sim Trace
