lib/algorithms/cannon.ml: Array Comm Computational Cost_model Exec Machine Option Par_array2 Runtime Scl Scl_sim Seq_kernels Sim Topology
