lib/algorithms/cg.ml: Array Comm Cost_model Elementary Exec Float Machine Option Par_array Scl Scl_sim Sim
