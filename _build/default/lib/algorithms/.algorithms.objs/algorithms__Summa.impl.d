lib/algorithms/summa.ml: Array Comm Cost_model Machine Scl_sim Sim Topology
