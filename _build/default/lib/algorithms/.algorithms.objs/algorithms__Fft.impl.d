lib/algorithms/fft.ml: Array Comm Communication Complex Computational Config Cost_model Elementary Exec Float Machine Par_array Runtime Scl Scl_sim Sim
