lib/algorithms/odd_even.ml: Array Bitonic Comm Cost_model Machine Option Scl_sim Seq_kernels Sim Topology
