lib/algorithms/fft.mli: Complex Cost_model Machine Scl Sim Trace
