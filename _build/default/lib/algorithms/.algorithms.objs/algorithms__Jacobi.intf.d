lib/algorithms/jacobi.mli: Cost_model Machine Scl Sim Trace
