lib/algorithms/sample_sort.ml: Array Comm Cost_model Elementary Exec Fun List Machine Option Par_array Partition Scl Scl_sim Seq_kernels Sim
