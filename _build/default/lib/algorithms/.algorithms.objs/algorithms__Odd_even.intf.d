lib/algorithms/odd_even.mli: Cost_model Machine Sim Topology Trace
