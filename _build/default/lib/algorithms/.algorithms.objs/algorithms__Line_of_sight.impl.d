lib/algorithms/line_of_sight.ml: Array Comm Cost_model Elementary Exec Float Machine Par_array Scl Scl_sim Sim
