lib/algorithms/bitonic.ml: Array Comm Cost_model Machine Option Scl_sim Seq_kernels Sim Topology
