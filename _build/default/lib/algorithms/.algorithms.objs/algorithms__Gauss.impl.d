lib/algorithms/gauss.ml: Array Comm Communication Computational Config Cost_model Elementary Exec Machine Option Partition Runtime Scl Scl_sim Seq_kernels Sim
