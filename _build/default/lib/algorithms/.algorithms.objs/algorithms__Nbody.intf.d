lib/algorithms/nbody.mli: Cost_model Machine Runtime Scl Sim Trace
