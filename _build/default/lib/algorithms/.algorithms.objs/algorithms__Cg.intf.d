lib/algorithms/cg.mli: Cost_model Machine Scl Sim Trace
