lib/algorithms/sample_sort.mli: Cost_model Machine Scl Sim Trace
