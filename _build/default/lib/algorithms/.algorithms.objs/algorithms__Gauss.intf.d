lib/algorithms/gauss.mli: Cost_model Machine Scl Sim Trace
