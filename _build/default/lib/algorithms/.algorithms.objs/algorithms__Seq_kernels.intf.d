lib/algorithms/seq_kernels.mli:
