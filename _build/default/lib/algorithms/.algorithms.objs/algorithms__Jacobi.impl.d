lib/algorithms/jacobi.ml: Array Comm Communication Computational Config Cost_model Elementary Exec Float Fun Machine Option Partition Scl Scl_sim Sim
