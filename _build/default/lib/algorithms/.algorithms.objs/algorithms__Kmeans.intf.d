lib/algorithms/kmeans.mli: Cost_model Machine Scl Sim Trace
