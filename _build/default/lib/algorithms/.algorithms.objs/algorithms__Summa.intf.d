lib/algorithms/summa.mli: Cost_model Machine Sim Trace
