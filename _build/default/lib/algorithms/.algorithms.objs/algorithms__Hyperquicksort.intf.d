lib/algorithms/hyperquicksort.mli: Cost_model Machine Scl Sim Topology Trace
