(** Odd-even transposition sort: P compare-split phases between alternating
    neighbour pairs — strictly nearest-neighbour communication, the ring
    network's native sort. *)

open Machine

val sort_sim :
  ?cost:Cost_model.t ->
  ?trace:Trace.t ->
  ?topology:Topology.t ->
  procs:int ->
  int array ->
  int array * Sim.stats
(** Any processor count; default topology [Ring] (where every exchange is
    one hop). *)
