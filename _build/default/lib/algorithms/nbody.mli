(** Direct-summation N-body forces — the farm skeleton's workload: each
    body's force evaluation is an independent job whose shared environment
    (the whole body set) is provided by brdcast / allgather. *)

open Machine

type body = { px : float; py : float; pz : float; mass : float }
type accel = { ax : float; ay : float; az : float }

val accelerations_seq : body array -> accel array
(** Sequential reference (softened gravity). *)

val accelerations_scl : ?exec:Scl.Exec.t -> body array -> accel array
(** Host-SCL farm with the body set as the environment. *)

val accelerations_pool : Runtime.Pool.t -> body array -> accel array
(** Work-stealing dynamic farm. *)

val accelerations_sim :
  ?cost:Cost_model.t -> ?trace:Trace.t -> procs:int -> body array -> accel array * Sim.stats
(** Simulator rendering: allgather of bodies, local force loops priced at
    ~20 flops per interaction. *)

val random_bodies : seed:int -> int -> body array
val accel_close : accel array -> accel array -> eps:float -> bool
val accumulate : body array -> body -> accel
