(** Block bitonic sort on a hypercube — the perfectly load-balanced but
    full-data-volume baseline: every compare-split moves whole blocks, so
    it pays maximum communication where hyperquicksort pays only what must
    cross the pivot. *)

open Machine

val sort_sim :
  ?cost:Cost_model.t -> ?trace:Trace.t -> procs:int -> int array -> int array * Sim.stats
(** [procs] must be a power of two; [max_int] keys are reserved as padding
    sentinels. @raise Invalid_argument otherwise. *)

val compare_split : keep_low:bool -> int array -> int array -> int array
(** Merge my sorted block with the partner's and keep the lower or upper
    half (exposed for tests). *)
