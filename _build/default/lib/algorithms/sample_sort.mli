(** Sample sort (PSRS): the strongest topology-independent parallel sort of
    the paper's era, used as the baseline behind the paper's "compares well
    with the best speedup available" remark. *)

open Machine

val sort_scl : ?exec:Scl.Exec.t -> parts:int -> int array -> int array
(** Host-SCL rendering: partition + local sort, regular sampling, splitter
    selection, configuration-level all-to-all bucket exchange, local merge.
    @raise Invalid_argument if [parts <= 0]. *)

val sort_sim :
  ?cost:Cost_model.t -> ?trace:Trace.t -> procs:int -> int array -> int array * Sim.stats
(** Simulator rendering: one priced all-to-all bucket exchange. Any
    processor count (hypercube not required). *)

(** {2 Internals (exposed for tests)} *)

val regular_samples : int -> int array -> int array
val choose_splitters : int -> int array -> int array
val bucketize : int array -> int array -> int array array
