(** The sequential base-language procedures of the paper's examples
    (SEQ_QUICKSORT, MIDVALUE, SPLIT, MERGE, PARTIALPIVOT, UPDATE) and the
    sequential baselines they feed. SCL treats these as black boxes; they
    are ordinary OCaml functions here. *)

val quicksort : int array -> int array
(** Three-way quicksort (median-of-three, insertion-sort cutoff); returns a
    fresh sorted array, input untouched. *)

val midvalue : int array -> int option
(** Middle element of an already-sorted array; [None] when empty (the
    hyperquicksort pivot, MIDVALUE). *)

val split_at : int -> int array -> int array * int array
(** [split_at pivot sorted] = (elements ≤ pivot, elements > pivot), by
    binary search (SPLIT). *)

val merge : int array -> int array -> int array
(** Merge two sorted arrays (MERGE). *)

val is_sorted : int array -> bool

val partial_pivot : row:int -> float array -> int
(** Index (≥ [row]) of the largest absolute value in a pivot column
    (PARTIALPIVOT). @raise Invalid_argument if [row] is out of range. *)

type pivot_info = { swap_row : int; pivot : float; multipliers : float array }
(** What the pivot column's owner broadcasts at each elimination step. *)

val make_pivot_info : row:int -> float array -> pivot_info
(** @raise Failure if the matrix is singular to working precision. *)

val update : row:int -> pivot_info -> float array -> float array
(** One Gauss–Jordan elimination step applied to a column (UPDATE): swap
    the pivot row in, eliminate, normalise. Pure (fresh array). *)

val gauss_seq : float array array -> float array -> float array
(** Dense sequential Gauss–Jordan solve of A x = b with partial pivoting.
    @raise Failure on singular systems,
    @raise Invalid_argument on shape mismatch. *)

val residual : float array array -> float array -> float array -> float
(** [residual a x b] = max_i |(Ax - b)_i|. *)

val matmul : float array array -> float array array -> float array array
(** Dense matrix product (sequential baseline for Cannon / SUMMA). *)
