test/test_runtime.ml: Alcotest Array Atomic Barrier Domain Fun List Mpmc_queue Pool Printf QCheck QCheck_alcotest Runtime String Unix Ws_deque Xoshiro
