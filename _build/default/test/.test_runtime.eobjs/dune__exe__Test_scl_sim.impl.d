test/test_scl_sim.ml: Alcotest Algorithms Array Comm Cost_model Float Fun List Machine Printf QCheck QCheck_alcotest Runtime Scl Scl_sim Sim
