test/test_machine.ml: Alcotest Array Comm Cost_model Float Fmt List Machine QCheck QCheck_alcotest Sim String Topology Trace
