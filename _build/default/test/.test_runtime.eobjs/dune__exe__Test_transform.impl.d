test/test_transform.ml: Alcotest Array Ast Codegen Cost Float Fn Fun List Machine Optimizer Parser QCheck QCheck_alcotest Rewrite Rules Sim_exec Sys Transform Value
