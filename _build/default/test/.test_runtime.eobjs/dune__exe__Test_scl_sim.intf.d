test/test_scl_sim.mli:
