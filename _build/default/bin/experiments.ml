(* Parameterised experiment driver.

     dune exec bin/experiments.exe -- table1 --size 100000
     dune exec bin/experiments.exe -- fig3 --procs 1,2,4,8,16,32,64
     dune exec bin/experiments.exe -- sorts --size 200000 --cost modern
     dune exec bin/experiments.exe -- gauss --size 256
     dune exec bin/experiments.exe -- jacobi --size 400 --procs 1,2,4,8
     dune exec bin/experiments.exe -- cannon --size 144 --grids 1,2,3,4,6
     dune exec bin/experiments.exe -- trace --size 32

   Every experiment runs on the simulated distributed-memory machine; the
   cost model and (where meaningful) topology are selectable. *)

open Cmdliner

let cost_model_conv =
  let parse = function
    | "ap1000" -> Ok Machine.Cost_model.ap1000
    | "modern" -> Ok Machine.Cost_model.modern
    | "zero-comm" -> Ok Machine.Cost_model.zero_comm
    | "unit" -> Ok Machine.Cost_model.unit_costs
    | s -> Error (`Msg (Printf.sprintf "unknown cost model %S (ap1000|modern|zero-comm|unit)" s))
  in
  let print ppf (c : Machine.Cost_model.t) = Format.fprintf ppf "%s" c.name in
  Arg.conv (parse, print)

let cost_arg =
  Arg.(value & opt cost_model_conv Machine.Cost_model.ap1000 & info [ "cost" ] ~docv:"MODEL"
         ~doc:"Cost model: ap1000 (default), modern, zero-comm, unit.")

let int_list_conv =
  Arg.conv
    ( (fun s ->
        try Ok (List.map int_of_string (String.split_on_char ',' s))
        with _ -> Error (`Msg "expected a comma-separated list of integers")),
      fun ppf l -> Format.fprintf ppf "%s" (String.concat "," (List.map string_of_int l)) )

let procs_list_arg default =
  Arg.(value & opt int_list_conv default & info [ "procs" ] ~docv:"P1,P2,..." ~doc:"Processor counts.")

let size_arg default =
  Arg.(value & opt int default & info [ "size" ] ~docv:"N" ~doc:"Problem size.")

let seed_arg = Arg.(value & opt int 1995 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let random_ints ~seed n =
  Runtime.Xoshiro.int_array (Runtime.Xoshiro.of_seed seed) ~len:n ~bound:1_000_000

let speedup_row t1 p t = Printf.printf "  %5d  %10.3f  %8.2f\n" p t (t1 /. t)

let run_sort_series name sorter ~seed ~size procs =
  let data = random_ints ~seed size in
  Printf.printf "%s, n = %d:\n" name size;
  Printf.printf "  procs    time (s)   speedup\n";
  let t1 = ref nan in
  List.iter
    (fun p ->
      match sorter ~procs:p data with
      | sorted, (stats : Machine.Sim.stats) ->
          if not (Algorithms.Seq_kernels.is_sorted sorted) then failwith "result not sorted!";
          if Float.is_nan !t1 then t1 := stats.makespan;
          speedup_row !t1 p stats.makespan
      | exception Invalid_argument msg -> Printf.printf "  %5d  (skipped: %s)\n" p msg)
    procs

(* --- table1 / fig3 ---------------------------------------------------------- *)

let table1 cost size seed procs =
  run_sort_series "Table 1 / Figure 3: hyperquicksort (simulated)"
    (fun ~procs data -> Algorithms.Hyperquicksort.sort_sim ~cost ~procs data)
    ~seed ~size procs

let table1_cmd =
  let doc = "Regenerate Table 1 (runtime) and Figure 3 (speedup) for hyperquicksort." in
  Cmd.v (Cmd.info "table1" ~doc)
    Term.(const table1 $ cost_arg $ size_arg 100_000 $ seed_arg $ procs_list_arg [ 1; 2; 4; 8; 16; 32 ])

let fig3_cmd =
  let doc = "Alias of table1 (the figure is the same data as a speedup curve)." in
  Cmd.v (Cmd.info "fig3" ~doc)
    Term.(const table1 $ cost_arg $ size_arg 100_000 $ seed_arg $ procs_list_arg [ 1; 2; 4; 8; 16; 32 ])

(* --- sort comparison --------------------------------------------------------- *)

let sorts cost size seed procs =
  List.iter
    (fun (name, sorter) -> run_sort_series name sorter ~seed ~size procs)
    [
      ("hyperquicksort", fun ~procs data -> Algorithms.Hyperquicksort.sort_sim ~cost ~procs data);
      ("sample sort (PSRS)", fun ~procs data -> Algorithms.Sample_sort.sort_sim ~cost ~procs data);
      ("bitonic", fun ~procs data -> Algorithms.Bitonic.sort_sim ~cost ~procs data);
    ]

let sorts_cmd =
  let doc = "Compare hyperquicksort with the PSRS and bitonic baselines." in
  Cmd.v (Cmd.info "sorts" ~doc)
    Term.(const sorts $ cost_arg $ size_arg 100_000 $ seed_arg $ procs_list_arg [ 1; 4; 16; 32 ])

(* --- gauss -------------------------------------------------------------------- *)

let gauss cost size seed procs =
  let a, b = Algorithms.Gauss.random_system ~seed size in
  Printf.printf "Gauss-Jordan, n = %d:\n" size;
  Printf.printf "  procs    time (s)   speedup\n";
  let t1 = ref nan in
  List.iter
    (fun p ->
      let x, stats = Algorithms.Gauss.solve_sim ~cost ~procs:p a b in
      let res = Algorithms.Seq_kernels.residual a x b in
      if res > 1e-7 then failwith "residual too large!";
      if Float.is_nan !t1 then t1 := stats.makespan;
      speedup_row !t1 p stats.makespan)
    procs

let gauss_cmd =
  let doc = "Gauss-Jordan solver scaling on the simulated machine." in
  Cmd.v (Cmd.info "gauss" ~doc)
    Term.(const gauss $ cost_arg $ size_arg 256 $ seed_arg $ procs_list_arg [ 1; 2; 4; 8; 16 ])

(* --- jacobi -------------------------------------------------------------------- *)

let jacobi cost size procs =
  let f = Array.make size 1.0 in
  Printf.printf "Jacobi (1-D Poisson), n = %d, tol = 1e-6:\n" size;
  Printf.printf "  procs    time (s)   iterations\n";
  List.iter
    (fun p ->
      let r, stats = Algorithms.Jacobi.solve_sim ~cost ~procs:p ~tol:1e-6 f ~left:0.0 ~right:0.0 in
      Printf.printf "  %5d  %10.3f   %d\n" p stats.makespan r.iterations)
    procs

let jacobi_cmd =
  let doc = "Jacobi relaxation scaling (latency-bound regime)." in
  Cmd.v (Cmd.info "jacobi" ~doc)
    Term.(const jacobi $ cost_arg $ size_arg 400 $ procs_list_arg [ 1; 2; 4; 8 ])

(* --- cannon -------------------------------------------------------------------- *)

let cannon cost size seed grids =
  let a = Algorithms.Cannon.random_matrix ~seed size in
  let b = Algorithms.Cannon.random_matrix ~seed:(seed + 1) size in
  let reference = Algorithms.Seq_kernels.matmul a b in
  Printf.printf "Cannon matrix multiply, n = %d (torus topology):\n" size;
  Printf.printf "   grid  procs    time (s)   speedup\n";
  let t1 = ref nan in
  List.iter
    (fun q ->
      if size mod q <> 0 then Printf.printf "  %2dx%-2d  (skipped: %d does not divide %d)\n" q q q size
      else begin
        let c, stats = Algorithms.Cannon.multiply_sim ~cost ~grid:q a b in
        let ok =
          Array.for_all2
            (fun r1 r2 -> Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-8) r1 r2)
            c reference
        in
        if not ok then failwith "wrong product!";
        if Float.is_nan !t1 then t1 := stats.makespan;
        Printf.printf "  %2dx%-2d  %5d  %10.4f  %8.2f\n" q q (q * q) stats.makespan
          (!t1 /. stats.makespan)
      end)
    grids

let grids_arg =
  Arg.(value & opt int_list_conv [ 1; 2; 3; 4; 6 ] & info [ "grids" ] ~docv:"Q1,Q2,..." ~doc:"Grid sides.")

let cannon_cmd =
  let doc = "Cannon's matrix multiplication on a simulated torus." in
  Cmd.v (Cmd.info "cannon" ~doc) Term.(const cannon $ cost_arg $ size_arg 144 $ seed_arg $ grids_arg)

(* --- trace (Figure 2) ----------------------------------------------------------- *)

let trace cost size seed =
  let data = random_ints ~seed size in
  let sorted, stats, notes = Algorithms.Hyperquicksort.sort_sim_traced ~cost ~procs:4 data in
  Printf.printf "Figure 2: hyperquicksort of %d values on a 2-cube\n\n" size;
  List.iter (fun (t, p, msg) -> Printf.printf "[t=%9.6f] p%d  %s\n" t p msg) notes;
  Printf.printf "\nsorted: [%s]\n"
    (String.concat " " (Array.to_list (Array.map string_of_int sorted)));
  Printf.printf "makespan %.6f s, %d messages\n" stats.makespan stats.total_msgs

let trace_cmd =
  let doc = "Regenerate Figure 2: a stage-by-stage hyperquicksort trace on 4 processors." in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const trace $ cost_arg $ size_arg 32 $ seed_arg)

(* --- optimize: parse a pipeline, transform it, report ---------------------------- *)

let optimize pipeline_src file entry procs n aggressive run_sim emit =
  let parsed =
    match (pipeline_src, file) with
    | Some src, None -> Transform.Parser.parse src
    | None, Some path -> (
        let ic = open_in path in
        let len = in_channel_length ic in
        let src = really_input_string ic len in
        close_in ic;
        match Transform.Parser.parse_program src with
        | Error e -> Error e
        | Ok defs -> (
            match List.assoc_opt entry defs with
            | Some e -> Ok e
            | None ->
                Error
                  {
                    Transform.Parser.position = 0;
                    message = Printf.sprintf "no definition named %S in %s" entry path;
                  }))
    | Some _, Some _ ->
        Error { Transform.Parser.position = 0; message = "--pipeline and --file are exclusive" }
    | None, None ->
        Error { Transform.Parser.position = 0; message = "need --pipeline SRC or --file FILE" }
  in
  match parsed with
  | Error { position; message } ->
      Printf.eprintf "parse error at character %d: %s\n" position message;
      exit 1
  | Ok e ->
      let rules = if aggressive then Transform.Rules.aggressive else Transform.Rules.default in
      let r = Transform.Optimizer.optimize ~procs ~n ~rules e in
      Format.printf "%a@." Transform.Optimizer.pp_report r;
      if run_sim then begin
        let input =
          Transform.Value.of_int_array
            (Runtime.Xoshiro.int_array (Runtime.Xoshiro.of_seed 1) ~len:n ~bound:1_000)
        in
        try
          let v1, s1 = Transform.Sim_exec.run ~procs e input in
          let v2, s2 = Transform.Sim_exec.run ~procs r.Transform.Optimizer.output input in
          if not (Transform.Value.equal v1 v2) then failwith "optimised pipeline changed the result!";
          Printf.printf "simulated: %.6f s -> %.6f s (x%.2f), results identical\n"
            s1.Machine.Sim.makespan s2.Machine.Sim.makespan
            (s1.Machine.Sim.makespan /. s2.Machine.Sim.makespan)
        with Transform.Sim_exec.Unsupported msg ->
          Printf.printf "(not simulated: %s)\n" msg
      end;
      if emit then begin
        match Transform.Codegen.generate r.Transform.Optimizer.output with
        | code -> Printf.printf "\n--- generated OCaml (optimised pipeline) ---\n%s" code
        | exception Transform.Codegen.Not_compilable msg ->
            Printf.printf "\n(not compilable: %s)\n" msg
      end

let pipeline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "pipeline" ] ~docv:"SRC"
        ~doc:
          "Pipeline source, e.g. 'map square . rotate 3 . map incr' or 'foldr add square'. \
           Stages: id, map/imap/fold/scan F, foldr F G, send/fetch (id|reverse|shift:K), \
           rotate K, split P, combine, mapn [...], iter K [...].")

let file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "file" ] ~docv:"FILE"
        ~doc:"A program of 'let name = pipeline' definitions; optimise --entry (default: main).")

let entry_arg =
  Arg.(value & opt string "main" & info [ "entry" ] ~docv:"NAME" ~doc:"Definition to optimise.")

let aggressive_arg =
  Arg.(value & flag & info [ "aggressive" ] ~doc:"Also commute maps ahead of data movement.")

let run_sim_arg =
  Arg.(value & flag & info [ "run" ] ~doc:"Execute both pipelines on the simulator and compare.")

let emit_arg =
  Arg.(value & flag & info [ "emit" ] ~doc:"Print the OCaml code generated for the optimised pipeline.")

let optimize_cmd =
  let doc = "Parse an SCL pipeline, apply the Section 4 transformations, report costs." in
  Cmd.v (Cmd.info "optimize" ~doc)
    Term.(
      const optimize $ pipeline_arg $ file_arg $ entry_arg
      $ Arg.(value & opt int 16 & info [ "procs" ] ~docv:"P" ~doc:"Processors for the cost model.")
      $ size_arg 65_536 $ aggressive_arg $ run_sim_arg $ emit_arg)

(* --- portability sweep ------------------------------------------------------------ *)

let portability size seed procs =
  let data = random_ints ~seed size in
  Printf.printf "hyperquicksort, %d keys, unchanged program across machine models:\n" size;
  Printf.printf "  %-10s %10s %10s %9s\n" "machine" "t(1) s" (Printf.sprintf "t(%d) s" procs) "speedup";
  List.iter
    (fun (cm : Machine.Cost_model.t) ->
      let _, s1 = Algorithms.Hyperquicksort.sort_sim ~cost:cm ~procs:1 data in
      let _, sp = Algorithms.Hyperquicksort.sort_sim ~cost:cm ~procs data in
      Printf.printf "  %-10s %10.4f %10.4f %8.1fx\n" cm.name s1.Machine.Sim.makespan
        sp.Machine.Sim.makespan
        (s1.Machine.Sim.makespan /. sp.Machine.Sim.makespan))
    [
      Machine.Cost_model.ap1000;
      Machine.Cost_model.paragon;
      Machine.Cost_model.cm5;
      Machine.Cost_model.t3d;
      Machine.Cost_model.modern;
    ]

let portability_cmd =
  let doc = "Re-price the unchanged hyperquicksort program on five machine calibrations." in
  Cmd.v (Cmd.info "portability" ~doc)
    Term.(
      const portability $ size_arg 100_000 $ seed_arg
      $ Arg.(value & opt int 32 & info [ "procs" ] ~docv:"P" ~doc:"Parallel processor count."))

(* --- main ------------------------------------------------------------------------ *)

let () =
  let doc = "Experiments for the SCL skeletons reproduction (Darlington et al., PPoPP 1995)." in
  let info = Cmd.info "experiments" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [
         table1_cmd; fig3_cmd; sorts_cmd; gauss_cmd; jacobi_cmd; cannon_cmd; trace_cmd;
         optimize_cmd; portability_cmd;
       ]))
