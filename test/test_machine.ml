(* Tests for the simulated distributed-memory machine: topologies, cost
   model, discrete-event simulator, collectives. *)

open Machine

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let check_float msg expected actual =
  if not (feq expected actual) then Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- Topology ------------------------------------------------------------ *)

let test_hypercube_hops () =
  let h = Topology.Hypercube in
  Alcotest.(check int) "same" 0 (Topology.hops h ~procs:8 ~src:3 ~dest:3);
  Alcotest.(check int) "one bit" 1 (Topology.hops h ~procs:8 ~src:0 ~dest:4);
  Alcotest.(check int) "three bits" 3 (Topology.hops h ~procs:8 ~src:0 ~dest:7);
  Alcotest.(check int) "diameter" 5 (Topology.diameter h ~procs:32)

let test_hypercube_validate () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Topology.validate: hypercube needs a power-of-two size, got 6") (fun () ->
      Topology.validate Topology.Hypercube ~procs:6)

let test_hypercube_neighbors () =
  let ns = Topology.neighbors Topology.Hypercube ~procs:8 5 in
  Alcotest.(check (list int)) "xor neighbours" [ 4; 7; 1 ] ns

let test_torus_hops () =
  let t = Topology.Torus2d (4, 4) in
  Alcotest.(check int) "adjacent" 1 (Topology.hops t ~procs:16 ~src:0 ~dest:1);
  (* 0 = (0,0), 15 = (3,3): wraps to 1+1 = 2 hops *)
  Alcotest.(check int) "wraparound" 2 (Topology.hops t ~procs:16 ~src:0 ~dest:15);
  Alcotest.(check int) "mid" 4 (Topology.hops t ~procs:16 ~src:0 ~dest:10)

let test_mesh_hops () =
  let m = Topology.Mesh2d (4, 4) in
  Alcotest.(check int) "corner to corner" 6 (Topology.hops m ~procs:16 ~src:0 ~dest:15);
  Alcotest.(check int) "no wrap" 3 (Topology.hops m ~procs:16 ~src:0 ~dest:3)

let test_ring_hops () =
  Alcotest.(check int) "short way" 2 (Topology.hops Topology.Ring ~procs:8 ~src:1 ~dest:7);
  Alcotest.(check int) "half" 4 (Topology.hops Topology.Ring ~procs:8 ~src:0 ~dest:4)

let test_star_hops () =
  Alcotest.(check int) "via centre" 2 (Topology.hops Topology.Star ~procs:5 ~src:1 ~dest:2);
  Alcotest.(check int) "to centre" 1 (Topology.hops Topology.Star ~procs:5 ~src:3 ~dest:0)

let prop_hops_symmetric =
  qtest "hops are symmetric"
    QCheck.(triple (int_range 0 15) (int_range 0 15) (int_range 0 3))
    (fun (a, b, which) ->
      let topo =
        match which with
        | 0 -> Topology.Hypercube
        | 1 -> Topology.Torus2d (4, 4)
        | 2 -> Topology.Ring
        | _ -> Topology.Mesh2d (2, 8)
      in
      Topology.hops topo ~procs:16 ~src:a ~dest:b = Topology.hops topo ~procs:16 ~src:b ~dest:a)

let prop_neighbors_are_one_hop =
  qtest "neighbors are exactly one hop away"
    QCheck.(pair (int_range 0 15) (int_range 0 3))
    (fun (r, which) ->
      let topo =
        match which with
        | 0 -> Topology.Hypercube
        | 1 -> Topology.Torus2d (4, 4)
        | 2 -> Topology.Ring
        | _ -> Topology.Complete
      in
      List.for_all
        (fun n -> Topology.hops topo ~procs:16 ~src:r ~dest:n = 1)
        (Topology.neighbors topo ~procs:16 r))

(* --- Cost model ----------------------------------------------------------- *)

let test_transfer_time () =
  let c = Cost_model.unit_costs in
  (* alpha 1 + 2 hops * 1 + 10 bytes * 1 = 13 *)
  check_float "unit" 13.0 (Cost_model.transfer_time c ~hops:2 ~bytes:10)

let test_barrier_time () =
  let c = Cost_model.unit_costs in
  check_float "1 proc" 0.0 (Cost_model.barrier_time { c with barrier_base = 2.0 } ~procs:1);
  check_float "8 procs = 3 rounds" 6.0 (Cost_model.barrier_time { c with barrier_base = 2.0 } ~procs:8);
  check_float "5 procs = 3 rounds" 6.0 (Cost_model.barrier_time { c with barrier_base = 2.0 } ~procs:5)

let test_presets_sane () =
  List.iter
    (fun (c : Cost_model.t) ->
      Alcotest.(check bool) (c.name ^ " latencies positive") true (c.alpha >= 0.0 && c.beta >= 0.0);
      Alcotest.(check bool) (c.name ^ " flop positive") true (c.flop_time >= 0.0))
    [ Cost_model.ap1000; Cost_model.modern; Cost_model.zero_comm; Cost_model.unit_costs ]

(* --- Simulator ------------------------------------------------------------- *)

let cfg ?(procs = 4) ?(topology = Topology.Complete) ?(cost = Cost_model.unit_costs) () =
  { Sim.procs; topology; cost }

let test_sim_work_accumulates () =
  let stats =
    Sim.run (cfg ~procs:3 ()) (fun ctx ->
        Sim.work ctx (float_of_int (Sim.rank ctx + 1)))
  in
  check_float "makespan = max work" 3.0 stats.Sim.makespan;
  check_float "work p0" 1.0 stats.Sim.work_times.(0);
  check_float "work p2" 3.0 stats.Sim.work_times.(2)

let test_sim_negative_work_rejected () =
  Alcotest.check_raises "negative" (Invalid_argument "Sim.work: negative duration") (fun () ->
      ignore (Sim.run (cfg ~procs:1 ()) (fun ctx -> Sim.work ctx (-1.0))))

let test_sim_message_roundtrip () =
  let got = ref None in
  let _stats =
    Sim.run (cfg ~procs:2 ()) (fun ctx ->
        if Sim.rank ctx = 0 then Sim.send ctx ~dest:1 [ 1; 2; 3 ]
        else got := Some (Sim.recv ctx ~src:0 () : int list))
  in
  Alcotest.(check (option (list int))) "payload" (Some [ 1; 2; 3 ]) !got

let test_sim_message_is_deep_copied () =
  (* Default (marshalled) sends must not share mutable state. *)
  let witness = ref 0 in
  let _ =
    Sim.run (cfg ~procs:2 ()) (fun ctx ->
        if Sim.rank ctx = 0 then begin
          let a = [| 1; 2; 3 |] in
          Sim.send ctx ~dest:1 a;
          a.(0) <- 99
        end
        else begin
          let a : int array = Sim.recv ctx ~src:0 () in
          witness := a.(0)
        end)
  in
  Alcotest.(check int) "receiver saw pre-mutation value" 1 !witness

let test_sim_timing_exact () =
  (* Unit costs, complete topology: send overhead 0; transfer = alpha(1) +
     hops(1)*1 + bytes*1. Receiver waits from t=0, recv overhead 0, so its
     finish time = 2 + bytes. *)
  let bytes = 10 in
  let stats =
    Sim.run (cfg ~procs:2 ()) (fun ctx ->
        if Sim.rank ctx = 0 then Sim.send ctx ~dest:1 ~bytes 0
        else ignore (Sim.recv ctx ~src:0 () : int))
  in
  check_float "receiver clock" (2.0 +. float_of_int bytes) stats.Sim.finish_times.(1);
  check_float "sender clock" 0.0 stats.Sim.finish_times.(0);
  Alcotest.(check int) "bytes accounted" bytes stats.Sim.total_bytes

let test_sim_recv_waits_for_arrival () =
  (* Sender works 5s then sends (arrival 5 + 2 + 1 = 8); receiver is idle, so
     it finishes at the arrival time. *)
  let stats =
    Sim.run (cfg ~procs:2 ()) (fun ctx ->
        if Sim.rank ctx = 0 then begin
          Sim.work ctx 5.0;
          Sim.send ctx ~dest:1 ~bytes:1 ()
        end
        else (Sim.recv ctx ~src:0 () : unit))
  in
  check_float "receiver waited" 8.0 stats.Sim.finish_times.(1)

let test_sim_fifo_order () =
  let order = ref [] in
  let _ =
    Sim.run (cfg ~procs:2 ()) (fun ctx ->
        if Sim.rank ctx = 0 then begin
          Sim.send ctx ~dest:1 "first";
          Sim.send ctx ~dest:1 "second";
          Sim.send ctx ~dest:1 "third"
        end
        else
          for _ = 1 to 3 do
            let s : string = Sim.recv ctx ~src:0 () in
            order := s :: !order
          done)
  in
  Alcotest.(check (list string)) "fifo per sender" [ "third"; "second"; "first" ] !order

let test_sim_tags_select () =
  let got = ref [] in
  let _ =
    Sim.run (cfg ~procs:2 ()) (fun ctx ->
        if Sim.rank ctx = 0 then begin
          Sim.send ctx ~dest:1 ~tag:7 "seven";
          Sim.send ctx ~dest:1 ~tag:9 "nine"
        end
        else begin
          (* Receive tag 9 first even though tag 7 was sent first. *)
          let a : string = Sim.recv ctx ~src:0 ~tag:9 () in
          let b : string = Sim.recv ctx ~src:0 ~tag:7 () in
          got := [ a; b ]
        end)
  in
  Alcotest.(check (list string)) "tag matching" [ "nine"; "seven" ] !got

let test_sim_recv_any () =
  let srcs = ref [] in
  let _ =
    Sim.run (cfg ~procs:4 ()) (fun ctx ->
        if Sim.rank ctx > 0 then begin
          Sim.work ctx (float_of_int (Sim.rank ctx));
          Sim.send ctx ~dest:0 (Sim.rank ctx)
        end
        else
          for _ = 1 to 3 do
            let src, v = (Sim.recv_any ctx () : int * int) in
            if src <> v then failwith "payload mismatch";
            srcs := src :: !srcs
          done)
  in
  (* Earliest arrival first: senders finish work at t=1,2,3. *)
  Alcotest.(check (list int)) "arrival order" [ 3; 2; 1 ] !srcs

let test_sim_barrier_aligns_clocks () =
  let stats =
    Sim.run (cfg ~procs:4 ~cost:{ Cost_model.unit_costs with barrier_base = 2.0 } ()) (fun ctx ->
        Sim.work ctx (float_of_int (Sim.rank ctx));
        Sim.barrier ctx)
  in
  (* max work 3 + barrier 2 rounds (4 procs = 2 rounds) * 2.0 = 7 *)
  Array.iter (fun t -> check_float "aligned" 7.0 t) stats.Sim.finish_times;
  Alcotest.(check int) "one barrier" 1 stats.Sim.barriers

let test_sim_deadlock_detected () =
  Alcotest.(check bool) "deadlock raised" true
    (try
       ignore (Sim.run (cfg ~procs:2 ()) (fun ctx -> ignore (Sim.recv ctx ~src:(1 - Sim.rank ctx) () : int)));
       false
     with Sim.Deadlock _ -> true)

let test_sim_barrier_mismatch_detected () =
  Alcotest.(check bool) "barrier with finished proc is deadlock" true
    (try
       ignore (Sim.run (cfg ~procs:2 ()) (fun ctx -> if Sim.rank ctx = 0 then Sim.barrier ctx));
       false
     with Sim.Deadlock _ -> true)

let test_sim_undelivered_detected () =
  Alcotest.(check bool) "leftover message is an error" true
    (try
       ignore (Sim.run (cfg ~procs:2 ()) (fun ctx -> if Sim.rank ctx = 0 then Sim.send ctx ~dest:1 42));
       false
     with Sim.Deadlock _ -> true)

let test_sim_self_send_rejected () =
  Alcotest.(check bool) "self send" true
    (try
       ignore (Sim.run (cfg ~procs:2 ()) (fun ctx -> Sim.send ctx ~dest:(Sim.rank ctx) 0));
       false
     with Invalid_argument _ -> true)

let test_sim_deterministic () =
  let go () =
    Sim.run (cfg ~procs:8 ~topology:Topology.Hypercube ~cost:Cost_model.ap1000 ()) (fun ctx ->
        let me = Sim.rank ctx in
        Sim.work ctx (0.001 *. float_of_int ((me * 7) mod 5));
        if me > 0 then Sim.send ctx ~dest:0 me
        else
          for _ = 1 to 7 do
            ignore (Sim.recv_any ctx () : int * int)
          done;
        Sim.barrier ctx)
  in
  let s1 = go () and s2 = go () in
  check_float "same makespan" s1.Sim.makespan s2.Sim.makespan;
  Alcotest.(check int) "same msgs" s1.Sim.total_msgs s2.Sim.total_msgs

let test_sim_trace_records () =
  let trace = Trace.create () in
  let _ =
    Sim.run ~trace (cfg ~procs:2 ()) (fun ctx ->
        if Sim.rank ctx = 0 then begin
          Sim.note ctx "hello";
          Sim.send ctx ~dest:1 ()
        end
        else (Sim.recv ctx ~src:0 () : unit))
  in
  let evs = Trace.events trace in
  Alcotest.(check bool) "has events" true (List.length evs >= 4);
  let notes = Trace.notes trace in
  Alcotest.(check int) "one note" 1 (List.length notes);
  let has_send = List.exists (fun e -> match e.Trace.kind with Trace.Send _ -> true | _ -> false) evs in
  let has_recv = List.exists (fun e -> match e.Trace.kind with Trace.Recv _ -> true | _ -> false) evs in
  Alcotest.(check bool) "send+recv traced" true (has_send && has_recv)

let test_sim_run_collect () =
  let v, _ =
    Sim.run_collect (cfg ~procs:4 ()) (fun ctx ->
        if Sim.rank ctx = 0 then Some "root" else None)
  in
  Alcotest.(check string) "collected" "root" v

let test_sim_hypercube_transfer_hops_priced () =
  (* 0 -> 7 on a 3-cube is 3 hops: transfer = 1 + 3 + bytes. *)
  let stats =
    Sim.run (cfg ~procs:8 ~topology:Topology.Hypercube ()) (fun ctx ->
        if Sim.rank ctx = 0 then Sim.send ctx ~dest:7 ~bytes:5 ()
        else if Sim.rank ctx = 7 then (Sim.recv ctx ~src:0 () : unit))
  in
  check_float "3 hops priced" 9.0 stats.Sim.finish_times.(7)

(* --- Collectives ------------------------------------------------------------ *)

let run_world ?procs ?topology ?cost f =
  Sim.run (cfg ?procs ?topology ?cost ()) (fun ctx -> f (Comm.world (Engine.of_sim ctx)))

let test_comm_bcast () =
  let seen = Array.make 8 (-1) in
  let _ =
    run_world ~procs:8 ~topology:Topology.Hypercube (fun c ->
        let v = Comm.bcast c ~root:3 (if Comm.rank c = 3 then Some 42 else None) in
        seen.(Comm.rank c) <- v)
  in
  Array.iter (fun v -> Alcotest.(check int) "everyone got it" 42 v) seen

let test_comm_bcast_root_must_supply () =
  Alcotest.(check bool) "root None rejected" true
    (try
       ignore (run_world ~procs:2 (fun c -> ignore (Comm.bcast c ~root:0 (None : int option))));
       false
     with Invalid_argument _ -> true)

let test_comm_reduce () =
  let result = ref 0 in
  let _ =
    run_world ~procs:7 (fun c ->
        match Comm.reduce c ~root:0 ( + ) (Comm.rank c + 1) with
        | Some v -> result := v
        | None -> ())
  in
  Alcotest.(check int) "sum 1..7" 28 !result

let test_comm_reduce_order_preserved () =
  (* String concatenation is associative but not commutative: binomial
     reduction at root 0 must still produce rank order. *)
  let result = ref "" in
  let _ =
    run_world ~procs:5 (fun c ->
        match Comm.reduce c ~root:0 ( ^ ) (string_of_int (Comm.rank c)) with
        | Some v -> result := v
        | None -> ())
  in
  Alcotest.(check string) "rank order" "01234" !result

let test_comm_allreduce () =
  let ok = ref true in
  let _ =
    run_world ~procs:6 (fun c ->
        let v = Comm.allreduce c max (Comm.rank c * 10) in
        if v <> 50 then ok := false)
  in
  Alcotest.(check bool) "all got max" true !ok

let test_comm_gather () =
  let result = ref [||] in
  let _ =
    run_world ~procs:6 (fun c ->
        match Comm.gather c ~root:2 (Comm.rank c * Comm.rank c) with
        | Some arr -> result := arr
        | None -> ())
  in
  Alcotest.(check (array int)) "squares by rank" [| 0; 1; 4; 9; 16; 25 |] !result

let test_comm_allgather () =
  let ok = ref true in
  let _ =
    run_world ~procs:5 (fun c ->
        let arr = Comm.allgather c (Comm.rank c + 100) in
        if arr <> [| 100; 101; 102; 103; 104 |] then ok := false)
  in
  Alcotest.(check bool) "same everywhere" true !ok

let test_comm_scatter () =
  let got = Array.make 6 (-1) in
  let _ =
    run_world ~procs:6 (fun c ->
        let arr = if Comm.rank c = 1 then Some (Array.init 6 (fun i -> i * 7)) else None in
        got.(Comm.rank c) <- Comm.scatter c ~root:1 arr)
  in
  Alcotest.(check (array int)) "each rank its element" [| 0; 7; 14; 21; 28; 35 |] got

let test_comm_alltoall () =
  let ok = ref true in
  let _ =
    run_world ~procs:4 (fun c ->
        let me = Comm.rank c in
        let out = Comm.alltoall c (Array.init 4 (fun j -> (me, j))) in
        (* out.(j) is what j addressed to me: (j, me) *)
        Array.iteri (fun j (a, b) -> if a <> j || b <> me then ok := false) out)
  in
  Alcotest.(check bool) "transposed" true !ok

let test_comm_scan () =
  let got = Array.make 6 (-1) in
  let _ =
    run_world ~procs:6 (fun c ->
        got.(Comm.rank c) <- Comm.scan c ( + ) (Comm.rank c + 1))
  in
  Alcotest.(check (array int)) "prefix sums" [| 1; 3; 6; 10; 15; 21 |] got

let test_comm_scan_non_commutative () =
  let got = Array.make 4 "" in
  let _ =
    run_world ~procs:4 (fun c -> got.(Comm.rank c) <- Comm.scan c ( ^ ) (string_of_int (Comm.rank c)))
  in
  Alcotest.(check (array string)) "ordered prefixes" [| "0"; "01"; "012"; "0123" |] got

let test_comm_split () =
  let sizes = Array.make 8 0 in
  let subrank_sum = Array.make 8 0 in
  let _ =
    run_world ~procs:8 (fun c ->
        let me = Comm.rank c in
        let sub = Comm.split c ~color:(me mod 2) ~key:me in
        sizes.(me) <- Comm.size sub;
        (* Sum of ranks within the even group, computed in the subgroup. *)
        subrank_sum.(me) <- Comm.allreduce sub ( + ) (Comm.rank sub))
  in
  Array.iter (fun s -> Alcotest.(check int) "split halves" 4 s) sizes;
  Array.iter (fun s -> Alcotest.(check int) "subgroup ranks 0..3" 6 s) subrank_sum

let test_comm_split_groups_isolated () =
  (* Each subgroup reduces only its own members' values. *)
  let results = Array.make 8 0 in
  let _ =
    run_world ~procs:8 (fun c ->
        let me = Comm.rank c in
        let sub = Comm.split c ~color:(me / 4) ~key:me in
        results.(me) <- Comm.allreduce sub ( + ) me)
  in
  for i = 0 to 3 do
    Alcotest.(check int) "low group" 6 results.(i)
  done;
  for i = 4 to 7 do
    Alcotest.(check int) "high group" 22 results.(i)
  done

let test_comm_barrier () =
  (* Group barrier must synchronise clocks at least to the slowest member. *)
  let stats =
    Sim.run (cfg ~procs:4 ()) (fun ctx ->
        let c = Comm.world (Engine.of_sim ctx) in
        Sim.work ctx (float_of_int (Sim.rank ctx) *. 10.0);
        Comm.barrier c)
  in
  Array.iter
    (fun t -> Alcotest.(check bool) "nobody leaves early" true (t >= 30.0))
    stats.Sim.finish_times

let test_comm_exchange () =
  let ok = ref true in
  let _ =
    run_world ~procs:4 (fun c ->
        let me = Comm.rank c in
        let partner = me lxor 1 in
        let v = Comm.exchange c ~partner (me * 11) in
        if v <> partner * 11 then ok := false)
  in
  Alcotest.(check bool) "pairwise swap" true !ok

let test_comm_pipelined_collectives () =
  (* Back-to-back collectives must not cross-talk even when members race
     ahead: interleave reduce and bcast many times. *)
  let ok = ref true in
  let _ =
    run_world ~procs:5 (fun c ->
        for round = 1 to 20 do
          let s = Comm.allreduce c ( + ) round in
          if s <> 5 * round then ok := false;
          let b = Comm.bcast c ~root:(round mod 5) (if Comm.rank c = round mod 5 then Some round else None) in
          if b <> round then ok := false
        done)
  in
  Alcotest.(check bool) "no cross-talk over 40 collectives" true !ok

let prop_collectives_arbitrary_sizes =
  qtest ~count:30 "reduce/gather/scan agree with references at any size"
    QCheck.(int_range 1 12)
    (fun procs ->
      let sum = ref (-1) and arr = ref [||] in
      let scans = Array.make procs (-1) in
      let _ =
        Sim.run (cfg ~procs ()) (fun ctx ->
            let c = Comm.world (Engine.of_sim ctx) in
            (match Comm.reduce c ~root:0 ( + ) (Comm.rank c) with
            | Some v -> sum := v
            | None -> ());
            (match Comm.gather c ~root:0 (Comm.rank c * 2) with
            | Some a -> arr := a
            | None -> ());
            scans.(Comm.rank c) <- Comm.scan c ( + ) 1)
      in
      !sum = procs * (procs - 1) / 2
      && !arr = Array.init procs (fun i -> i * 2)
      && scans = Array.init procs (fun i -> i + 1))

(* --- additional simulator coverage ------------------------------------------ *)

let test_sim_single_processor () =
  (* barriers and local work degenerate correctly at P = 1 *)
  let stats =
    Sim.run (cfg ~procs:1 ()) (fun ctx ->
        Sim.work ctx 2.0;
        Sim.barrier ctx;
        Sim.work ctx 3.0)
  in
  check_float "P=1 runs" 5.0 stats.Sim.makespan;
  Alcotest.(check int) "no messages" 0 stats.Sim.total_msgs

let test_sim_topology_changes_cost () =
  (* The same program priced on different topologies: star (2 hops between
     leaves) must cost more than complete (1 hop). *)
  let program ctx =
    if Sim.rank ctx = 1 then Sim.send ctx ~dest:2 ~bytes:1000 ()
    else if Sim.rank ctx = 2 then (Sim.recv ctx ~src:1 () : unit)
  in
  let t topo = (Sim.run { Sim.procs = 4; topology = topo; cost = Cost_model.ap1000 } program).Sim.makespan in
  Alcotest.(check bool) "star is slower between leaves" true (t Topology.Star > t Topology.Complete);
  Alcotest.(check bool) "ring 1->2 neighbours = complete" true
    (Float.abs (t Topology.Ring -. t Topology.Complete) < 1e-12)

let test_sim_bigger_messages_cost_more () =
  let t bytes =
    (Sim.run (cfg ~procs:2 ~cost:Cost_model.ap1000 ()) (fun ctx ->
         if Sim.rank ctx = 0 then Sim.send ctx ~dest:1 ~bytes ()
         else (Sim.recv ctx ~src:0 () : unit))).Sim.makespan
  in
  Alcotest.(check bool) "10x bytes > 1x bytes" true (t 100_000 > t 10_000)

let test_sim_marshalled_size_scales () =
  (* Default sends marshal: a bigger array must register more bytes. *)
  let bytes n =
    (Sim.run (cfg ~procs:2 ()) (fun ctx ->
         if Sim.rank ctx = 0 then Sim.send ctx ~dest:1 (Array.make n 7)
         else ignore (Sim.recv ctx ~src:0 () : int array))).Sim.total_bytes
  in
  Alcotest.(check bool) "1000 ints > 10 ints" true (bytes 1000 > bytes 10 + 500)

let test_sim_work_while_messages_fly () =
  (* Overlap: receiver computes while the message is in flight; completion
     time is max(compute, arrival), not the sum. *)
  let c = { Cost_model.unit_costs with alpha = 10.0 } in
  let stats =
    Sim.run (cfg ~procs:2 ~cost:c ()) (fun ctx ->
        if Sim.rank ctx = 0 then Sim.send ctx ~dest:1 ~bytes:0 ()
        else begin
          Sim.work ctx 6.0;
          (Sim.recv ctx ~src:0 () : unit)
        end)
  in
  (* arrival = alpha 10 + hop 1 = 11 > work 6 -> finish at 11 *)
  check_float "overlap" 11.0 stats.Sim.finish_times.(1)

let test_gantt_renders () =
  let trace = Trace.create () in
  let _ =
    Sim.run ~trace (cfg ~procs:2 ()) (fun ctx ->
        Sim.work ctx 1.0;
        if Sim.rank ctx = 0 then Sim.send ctx ~dest:1 () else (Sim.recv ctx ~src:0 () : unit))
  in
  let s = Fmt.str "%a" (Trace.pp_gantt ~width:40) trace in
  Alcotest.(check bool) "rows for both procs" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 2 && l.[0] = 'p'))

let test_comm_of_ranks_requires_membership () =
  Alcotest.(check bool) "non-member rejected" true
    (try
       ignore
         (Sim.run (cfg ~procs:4 ()) (fun ctx ->
              if Sim.rank ctx = 3 then ignore (Comm.of_ranks (Engine.of_sim ctx) [| 0; 1 |])));
       false
     with Invalid_argument _ -> true)

let test_comm_singleton () =
  (* All collectives must degenerate correctly on a singleton group. *)
  let ok = ref false in
  let _ =
    Sim.run (cfg ~procs:3 ()) (fun ctx ->
        if Sim.rank ctx = 0 then begin
          let c = Comm.of_ranks (Engine.of_sim ctx) [| 0 |] in
          Comm.barrier c;
          let v = Comm.bcast c ~root:0 (Some 9) in
          let r = Comm.allreduce c ( + ) 5 in
          let g = Comm.allgather c 7 in
          let s = Comm.scan c ( + ) 3 in
          ok := v = 9 && r = 5 && g = [| 7 |] && s = 3
        end)
  in
  Alcotest.(check bool) "singleton collectives" true !ok

let test_comm_nested_split_hierarchy () =
  (* Split twice: quarters of an 8-group; each quarter reduces its own. *)
  let results = Array.make 8 0 in
  let _ =
    Sim.run (cfg ~procs:8 ()) (fun ctx ->
        let w = Comm.world (Engine.of_sim ctx) in
        let half = Comm.split w ~color:(Comm.rank w / 4) ~key:(Comm.rank w) in
        let quarter = Comm.split half ~color:(Comm.rank half / 2) ~key:(Comm.rank half) in
        results.(Comm.rank w) <- Comm.allreduce quarter ( + ) (Comm.rank w))
  in
  Alcotest.(check (array int)) "pairwise sums" [| 1; 1; 5; 5; 9; 9; 13; 13 |] results

let test_sim_many_small_messages () =
  (* Stress the scheduler: a token ring with 200 laps terminates and the
     clock is exactly laps * procs * (unit transfer). *)
  let procs = 5 in
  let laps = 200 in
  let stats =
    Sim.run (cfg ~procs ()) (fun ctx ->
        let me = Sim.rank ctx in
        let next = (me + 1) mod procs and prev = (me + procs - 1) mod procs in
        if me = 0 then begin
          Sim.send ctx ~dest:next ~bytes:0 0;
          for _ = 1 to laps - 1 do
            let (k : int) = Sim.recv ctx ~src:prev () in
            Sim.send ctx ~dest:next ~bytes:0 (k + 1)
          done;
          ignore (Sim.recv ctx ~src:prev () : int)
        end
        else
          for _ = 1 to laps do
            let (k : int) = Sim.recv ctx ~src:prev () in
            Sim.send ctx ~dest:next ~bytes:0 (k + 1)
          done)
  in
  Alcotest.(check int) "all messages" (laps * procs) stats.Sim.total_msgs;
  (* unit cost: alpha 1 + hop 1 per message *)
  check_float "ring time" (float_of_int (laps * procs) *. 2.0) stats.Sim.makespan

let prop_bcast_any_root_any_size =
  qtest ~count:40 "bcast reaches everyone for any root and size"
    QCheck.(pair (int_range 1 12) (int_range 0 11))
    (fun (procs, root) ->
      let root = root mod procs in
      let seen = Array.make procs (-1) in
      let _ =
        Sim.run (cfg ~procs ()) (fun ctx ->
            let c = Comm.world (Engine.of_sim ctx) in
            seen.(Comm.rank c) <-
              Comm.bcast c ~root (if Comm.rank c = root then Some (root * 31) else None))
      in
      Array.for_all (fun v -> v = root * 31) seen)

let prop_alltoall_transpose =
  qtest ~count:30 "alltoall is a transpose for any size"
    QCheck.(int_range 1 10)
    (fun procs ->
      let ok = ref true in
      let _ =
        Sim.run (cfg ~procs ()) (fun ctx ->
            let c = Comm.world (Engine.of_sim ctx) in
            let me = Comm.rank c in
            let out = Comm.alltoall c (Array.init procs (fun j -> (me * 100) + j)) in
            Array.iteri (fun j v -> if v <> (j * 100) + me then ok := false) out)
      in
      !ok)

let test_run_each_per_rank_programs () =
  (* run_each: distinct program per rank. *)
  let stats =
    Sim.run_each (cfg ~procs:3 ()) (fun rank ctx ->
        match rank with
        | 0 -> Sim.work ctx 1.0
        | 1 -> Sim.work ctx 2.0
        | _ -> Sim.work ctx 3.0)
  in
  check_float "per-rank work" 3.0 stats.Sim.makespan

let test_imbalance_metric () =
  let balanced = Sim.run (cfg ~procs:4 ()) (fun ctx -> Sim.work ctx 2.0) in
  check_float "balanced = 1" 1.0 (Sim.imbalance balanced);
  let skewed =
    Sim.run (cfg ~procs:4 ()) (fun ctx ->
        Sim.work ctx (if Sim.rank ctx = 0 then 4.0 else 0.0))
  in
  check_float "one hot processor" 4.0 (Sim.imbalance skewed);
  let s = Fmt.str "%a" Sim.pp_stats skewed in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "pp mentions imbalance" true (contains s "imbalance")

(* --- reduce root sweep (the rotated-root ordering bug) ---------------------- *)

let test_comm_reduce_root_sweep () =
  (* String concat is associative but NOT commutative: every root must see
     the members' values folded in true rank order, not rotated by root. *)
  List.iter
    (fun procs ->
      let expected = String.concat "" (List.init procs string_of_int) in
      for root = 0 to procs - 1 do
        let got = Array.make procs None in
        let _ =
          run_world ~procs (fun c ->
              got.(Comm.rank c) <- Comm.reduce c ~root ( ^ ) (string_of_int (Comm.rank c)))
        in
        Array.iteri
          (fun i v ->
            let name = Printf.sprintf "p=%d root=%d rank=%d" procs root i in
            if i = root then Alcotest.(check (option string)) name (Some expected) v
            else Alcotest.(check (option string)) name None v)
          got
      done)
    [ 2; 3; 5; 8 ]

let test_comm_allreduce_scan_order_sweep () =
  (* allreduce and scan with a non-commutative operator at every size *)
  for procs = 1 to 8 do
    let full = String.concat "" (List.init procs string_of_int) in
    let ars = Array.make procs "" in
    let scans = Array.make procs "" in
    let _ =
      run_world ~procs (fun c ->
          let me = Comm.rank c in
          ars.(me) <- Comm.allreduce c ( ^ ) (string_of_int me);
          scans.(me) <- Comm.scan c ( ^ ) (string_of_int me))
    in
    Array.iter (fun v -> Alcotest.(check string) "allreduce rank order" full v) ars;
    Array.iteri
      (fun i v -> Alcotest.(check string) "scan prefix" (String.sub full 0 (i + 1)) v)
      scans
  done

let test_comm_fresh_tag_boundary () =
  (* the last valid sequence number still works... *)
  let ok = ref false in
  let _ =
    run_world ~procs:2 (fun c ->
        Comm.unsafe_set_seq c ((1 lsl 24) - 1);
        Comm.barrier c;
        if Comm.rank c = 0 then ok := true)
  in
  Alcotest.(check bool) "seq 2^24 - 1 works" true !ok;
  (* ...and the next one fails loudly instead of wrapping into live tags *)
  Alcotest.(check bool) "seq 2^24 raises" true
    (try
       ignore (run_world ~procs:2 (fun c ->
           Comm.unsafe_set_seq c (1 lsl 24);
           Comm.barrier c));
       false
     with Invalid_argument _ -> true)

(* --- recv deadlines (Fault.Timeout) ----------------------------------------- *)

let test_sim_recv_timeout_fires () =
  (* nobody ever sends: the receiver must time out at exactly t = deadline *)
  let caught = ref false in
  let stats =
    Sim.run (cfg ~procs:2 ()) (fun ctx ->
        if Sim.rank ctx = 1 then
          try ignore (Sim.recv ctx ~src:0 ~timeout:5.0 () : int)
          with Fault.Timeout _ -> caught := true)
  in
  Alcotest.(check bool) "Timeout raised" true !caught;
  check_float "expired exactly at the deadline" 5.0 stats.Sim.finish_times.(1)

let test_sim_recv_timeout_not_taken_when_in_time () =
  (* arrival (t=5) beats the deadline (t=50): the value is delivered and the
     receiver's clock is the arrival time, not the deadline *)
  let got = ref None in
  let stats =
    Sim.run (cfg ~procs:2 ()) (fun ctx ->
        if Sim.rank ctx = 0 then begin
          Sim.work ctx 3.0;
          Sim.send ctx ~dest:1 ~bytes:0 99
        end
        else got := Some (Sim.recv ctx ~src:0 ~timeout:50.0 () : int))
  in
  Alcotest.(check (option int)) "delivered" (Some 99) !got;
  check_float "clock = arrival, not deadline" 5.0 stats.Sim.finish_times.(1)

let test_sim_recv_timeout_boundary_is_delivery () =
  (* arrival exactly AT the deadline counts as in time *)
  let got = ref None in
  let _ =
    Sim.run (cfg ~procs:2 ()) (fun ctx ->
        if Sim.rank ctx = 0 then begin
          Sim.work ctx 3.0;
          Sim.send ctx ~dest:1 ~bytes:0 7 (* arrival = 3 + alpha 1 + hop 1 = 5 *)
        end
        else got := Some (Sim.recv ctx ~src:0 ~timeout:5.0 () : int))
  in
  Alcotest.(check (option int)) "arrival == deadline delivers" (Some 7) !got

let test_sim_recv_timeout_retry_succeeds () =
  (* timeout/retry: first recv expires at t=1, the retry gets the message at
     its real arrival time t=5 — the packet is not lost by the timeout *)
  let got = ref None in
  let stats =
    Sim.run (cfg ~procs:2 ()) (fun ctx ->
        if Sim.rank ctx = 0 then begin
          Sim.work ctx 3.0;
          Sim.send ctx ~dest:1 ~bytes:0 123
        end
        else begin
          (try ignore (Sim.recv ctx ~src:0 ~timeout:1.0 () : int)
           with Fault.Timeout _ -> ());
          got := Some (Sim.recv ctx ~src:0 ~timeout:10.0 () : int)
        end)
  in
  Alcotest.(check (option int)) "retry delivered" (Some 123) !got;
  check_float "clock = arrival" 5.0 stats.Sim.finish_times.(1)

let test_sim_negative_timeout_rejected () =
  Alcotest.(check bool) "negative timeout" true
    (try
       ignore (Sim.run (cfg ~procs:2 ()) (fun ctx ->
           if Sim.rank ctx = 1 then ignore (Sim.recv ctx ~src:0 ~timeout:(-1.0) () : int)));
       false
     with Invalid_argument _ -> true)

(* --- fail-stop crashes (Fault.Crashed) -------------------------------------- *)

let test_sim_crash_is_fail_stop () =
  (* a crashed rank takes its undelivered inbox with it; live ranks finish *)
  let stats =
    Sim.run (cfg ~procs:3 ()) (fun ctx ->
        if Sim.rank ctx = 0 then begin
          Sim.send ctx ~dest:1 42;
          (* dies with the crash *)
          Sim.work ctx 1.0
        end
        else if Sim.rank ctx = 1 then raise (Fault.Crashed 1)
        else Sim.work ctx 2.0)
  in
  check_float "live ranks finish" 2.0 stats.Sim.makespan

let test_sim_timeout_survives_peer_crash () =
  (* recv ~timeout from a crashed peer is a Timeout, not a Deadlock *)
  let caught = ref false in
  let _ =
    Sim.run (cfg ~procs:2 ()) (fun ctx ->
        if Sim.rank ctx = 0 then raise (Fault.Crashed 0)
        else
          try ignore (Sim.recv ctx ~src:0 ~timeout:2.0 () : int)
          with Fault.Timeout _ -> caught := true)
  in
  Alcotest.(check bool) "timeout, not deadlock" true !caught

(* --- chaos: deterministic fault injection ------------------------------------ *)

module Spmd = Scl_sim.Spmd

(* Collective battery used for fault-free equivalence: every collective,
   with reduce swept over ALL roots using a non-commutative operator. *)
let chaos_battery c =
  let p = Comm.size c in
  let me = Comm.rank c in
  let reduces = List.init p (fun root -> Comm.reduce c ~root ( ^ ) (string_of_int me)) in
  let ar = Comm.allreduce c ( ^ ) (string_of_int me) in
  let sc = Comm.scan c ( ^ ) (string_of_int me) in
  let ag = Comm.allgather c (me * me) in
  let at = Comm.alltoall c (Array.init p (fun j -> (me * 100) + j)) in
  match Comm.gather c ~root:0 (reduces, ar, sc, ag, at) with
  | Some all -> Some (Array.to_list all)
  | None -> None

let test_chaos_zero_fault_bit_identical () =
  (* wrapping with the zero-fault schedule must not change ANY simulated
     number: same values, same makespan bit-for-bit, same message count *)
  let v0, s0 = Spmd.run_collect ~procs:4 chaos_battery in
  let v1, s1 = Spmd.run_collect ~procs:4 ~chaos:Chaos.none chaos_battery in
  Alcotest.(check bool) "values equal" true (v0 = v1);
  Alcotest.(check bool) "makespan bit-identical" true (s0.Sim.makespan = s1.Sim.makespan);
  Alcotest.(check int) "msgs identical" s0.Sim.total_msgs s1.Sim.total_msgs;
  Alcotest.(check int) "bytes identical" s0.Sim.total_bytes s1.Sim.total_bytes

let test_chaos_delays_value_identical () =
  (* delay/reordering within the FIFO relaxation never changes values *)
  List.iter
    (fun procs ->
      let bare, _ = Spmd.run_collect ~procs chaos_battery in
      List.iter
        (fun seed ->
          let spec = Chaos.delays ~seed ~prob:0.5 ~max_hold:3 () in
          let perturbed, _ = Spmd.run_collect ~procs ~chaos:spec chaos_battery in
          Alcotest.(check bool)
            (Printf.sprintf "p=%d seed=%d" procs seed)
            true (perturbed = bare))
        [ 1; 7; 42 ])
    [ 2; 4; 8 ]

let test_chaos_delays_are_deterministic () =
  (* same seed: bit-identical simulated stats; the perturbation replays *)
  let spec = Chaos.delays ~seed:9 ~prob:0.5 () in
  let v1, s1 = Spmd.run_collect ~procs:4 ~chaos:spec chaos_battery in
  let v2, s2 = Spmd.run_collect ~procs:4 ~chaos:spec chaos_battery in
  Alcotest.(check bool) "values replay" true (v1 = v2);
  Alcotest.(check bool) "makespan replays" true (s1.Sim.makespan = s2.Sim.makespan);
  Alcotest.(check int) "msgs replay" s1.Sim.total_msgs s2.Sim.total_msgs

let test_chaos_straggler_slows_but_preserves () =
  (* a per-rank stall tax changes timing, never values *)
  let spec = { Chaos.none with Chaos.stalls = [ (1, 0.005) ] } in
  let bare, s0 = Spmd.run_collect ~procs:4 chaos_battery in
  let slow, s1 = Spmd.run_collect ~procs:4 ~chaos:spec chaos_battery in
  Alcotest.(check bool) "values identical" true (bare = slow);
  Alcotest.(check bool) "straggler visible in makespan" true (s1.Sim.makespan > s0.Sim.makespan)

let test_chaos_spec_validated () =
  let bad spec =
    try
      ignore (Spmd.run ~procs:2 ~chaos:spec (fun c -> Comm.barrier c));
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "probability > 1" true
    (bad { Chaos.none with Chaos.delay_prob = 1.5 });
  Alcotest.(check bool) "crash index 0" true
    (bad { Chaos.none with Chaos.crashes = [ (0, 0) ] });
  Alcotest.(check bool) "negative stall" true
    (bad { Chaos.none with Chaos.stalls = [ (1, -0.1) ] })

let test_chaos_crash_counts_faults () =
  (* a scheduled crash fires Fault.Crashed and bumps the fault counter *)
  let c = Obs.Counter.make "chaos.faults_injected" in
  Obs.enable ();
  let before = Obs.Counter.value c in
  let spec = { Chaos.none with Chaos.crashes = [ (1, 1) ] } in
  let stats =
    Spmd.run ~procs:2 ~chaos:spec (fun comm ->
        if Comm.rank comm = 1 then begin
          Comm.send comm ~dest:0 ();
          failwith "unreachable: rank 1 crashes on its first operation"
        end
        else
          try ignore (Comm.recv comm ~src:1 ~timeout:1.0 () : unit)
          with Fault.Timeout _ -> ())
  in
  let after = Obs.Counter.value c in
  Obs.disable ();
  Alcotest.(check bool) "fault counted" true (after > before);
  Alcotest.(check bool) "run completed" true (stats.Sim.makespan >= 1.0)

(* --- sleep: idle time on both engines ---------------------------------- *)

let test_sim_sleep_advances_clock_not_work () =
  let stats =
    Sim.run (cfg ~procs:2 ()) (fun ctx ->
        if Sim.rank ctx = 0 then begin
          Sim.sleep ctx 7.0;
          Sim.work ctx 2.0
        end)
  in
  check_float "clock includes the sleep" 9.0 stats.Sim.finish_times.(0);
  check_float "work_time excludes it" 2.0 stats.Sim.work_times.(0)

let test_sim_sleep_negative_rejected () =
  Alcotest.check_raises "negative" (Invalid_argument "Sim.sleep: negative duration") (fun () ->
      ignore (Sim.run (cfg ~procs:1 ()) (fun ctx -> Sim.sleep ctx (-0.1))))

(* Regression test for the scheduler's conservative ordering.  Rank 1
   free-runs (sleep never blocks) and sends a late-arriving message before
   rank 2 — a lower-priority fiber — has even started; rank 2's message
   arrives much earlier.  The receiver must still see arrival order, which
   requires (a) no eager in-fiber delivery and (b) ranking a delivery at
   max(clock, arrival), not at the receiver's clock. *)
let test_sim_sleep_paced_sender_keeps_arrival_order () =
  let order = ref [] in
  let _ =
    Sim.run (cfg ~procs:3 ()) (fun ctx ->
        match Sim.rank ctx with
        | 0 ->
            for _ = 1 to 2 do
              let src, (_ : int) = Sim.recv_any ctx () in
              order := src :: !order
            done
        | 1 ->
            Sim.sleep ctx 10.0;
            Sim.send ctx ~dest:0 ~bytes:0 1
        | _ -> Sim.send ctx ~dest:0 ~bytes:0 2)
  in
  Alcotest.(check (list int)) "earliest arrival first" [ 2; 1 ] (List.rev !order)

let test_multicore_sleep_completes () =
  (* wall-clock engine: a sleeping rank must not stall its domain (other
     fibers keep running) and the run must terminate promptly *)
  let stats =
    Spmd.run_multicore ~domains:2 ~procs:3 (fun comm ->
        match Comm.rank comm with
        | 0 ->
            let a = (Comm.recv_any comm () : int * int) in
            let b = (Comm.recv_any comm () : int * int) in
            assert (fst a >= 0 && fst b >= 0)
        | 1 ->
            Comm.sleep comm 0.02;
            Comm.send comm ~dest:0 1
        | _ -> Comm.send comm ~dest:0 2)
  in
  Alcotest.(check bool) "took at least the sleep" true (stats.Multicore.wall >= 0.02)

(* --- time-scheduled crashes -------------------------------------------- *)

let test_chaos_crashes_at_time () =
  (* rank 1 fail-stops at its first operation at-or-after t = 4: the send
     at t = 2 gets through, the one at t = 6 never happens *)
  let spec = { Chaos.none with Chaos.crashes_at = [ (1, 4.0) ] } in
  let got = ref [] in
  let _ =
    Sim.run (cfg ~procs:2 ()) (fun ctx ->
        if Sim.rank ctx = 1 then begin
          Chaos.run spec
            (fun eng ->
              eng.Engine.work 2.0;
              eng.Engine.send ~dest:0 ~tag:0 1;
              eng.Engine.work 4.0;
              eng.Engine.send ~dest:0 ~tag:0 2;
              failwith "unreachable: rank 1 crashed at t >= 4")
            (Engine.of_sim ctx)
        end
        else begin
          (* unit costs price a marshalled int at ~25 simulated seconds of
             transfer, so the timeout must clear that comfortably *)
          (try
             while true do
               got := (Sim.recv ctx ~src:1 ~timeout:100.0 () : int) :: !got
             done
           with Fault.Timeout _ -> ())
        end)
  in
  Alcotest.(check (list int)) "only the pre-crash send arrives" [ 1 ] (List.rev !got)

let test_chaos_crashes_at_validation () =
  Alcotest.check_raises "negative time" (Invalid_argument "Chaos.wrap: crash time must be >= 0")
    (fun () ->
      ignore
        (Spmd.run ~procs:2
           ~chaos:{ Chaos.none with Chaos.crashes_at = [ (0, -1.0) ] }
           (fun _ -> ())))

(* Seeded, shrinkable property: all collectives under any delay/reorder
   chaos schedule are value-identical to the fault-free run. *)
let test_prop_chaos_value_identity () =
  let gen =
    Prop.Gen.pair
      (Prop.Gen.pair (Prop.Gen.int_range 0 1_000_000) (Prop.Gen.int_range 2 8))
      (Prop.Gen.pair (Prop.Gen.int_range 0 10) (Prop.Gen.int_range 1 4))
  in
  let shrink =
    Prop.Shrink.pair
      (Prop.Shrink.pair Prop.Shrink.int (Prop.Shrink.int_toward 2))
      (Prop.Shrink.pair Prop.Shrink.int (Prop.Shrink.int_toward 1))
  in
  let prop ((seed, procs), (prob10, max_hold)) =
    if procs < 2 || procs > 8 || prob10 < 0 || prob10 > 10 || max_hold < 1 then
      Prop.Runner.Skip_case
    else begin
      let spec = Chaos.delays ~seed ~prob:(float_of_int prob10 /. 10.0) ~max_hold () in
      let bare, _ = Spmd.run_collect ~procs chaos_battery in
      let perturbed, _ = Spmd.run_collect ~procs ~chaos:spec chaos_battery in
      if perturbed = bare then Prop.Runner.Pass_case
      else Prop.Runner.Fail_case "chaos changed collective values"
    end
  in
  let config = { Prop.Runner.default with Prop.Runner.count = 40; seed = 1995 } in
  match Prop.Runner.check ~config ~shrink ~gen ~prop () with
  | Prop.Runner.Pass _ -> ()
  | Prop.Runner.Fail f ->
      Alcotest.failf "chaos value-identity failed: seed=%d procs=%d prob10=%d hold=%d (%s)"
        (fst (fst f.Prop.Runner.shrunk))
        (snd (fst f.Prop.Runner.shrunk))
        (fst (snd f.Prop.Runner.shrunk))
        (snd (snd f.Prop.Runner.shrunk))
        f.Prop.Runner.message
  | Prop.Runner.Gave_up _ -> Alcotest.fail "property gave up"

let suite =
  [
    ( "topology",
      [
        Alcotest.test_case "hypercube hops" `Quick test_hypercube_hops;
        Alcotest.test_case "hypercube validate" `Quick test_hypercube_validate;
        Alcotest.test_case "hypercube neighbors" `Quick test_hypercube_neighbors;
        Alcotest.test_case "torus hops" `Quick test_torus_hops;
        Alcotest.test_case "mesh hops" `Quick test_mesh_hops;
        Alcotest.test_case "ring hops" `Quick test_ring_hops;
        Alcotest.test_case "star hops" `Quick test_star_hops;
        prop_hops_symmetric;
        prop_neighbors_are_one_hop;
      ] );
    ( "cost_model",
      [
        Alcotest.test_case "transfer time" `Quick test_transfer_time;
        Alcotest.test_case "barrier time" `Quick test_barrier_time;
        Alcotest.test_case "presets sane" `Quick test_presets_sane;
      ] );
    ( "sim",
      [
        Alcotest.test_case "work accumulates" `Quick test_sim_work_accumulates;
        Alcotest.test_case "negative work rejected" `Quick test_sim_negative_work_rejected;
        Alcotest.test_case "message roundtrip" `Quick test_sim_message_roundtrip;
        Alcotest.test_case "messages deep-copied" `Quick test_sim_message_is_deep_copied;
        Alcotest.test_case "timing exact" `Quick test_sim_timing_exact;
        Alcotest.test_case "recv waits for arrival" `Quick test_sim_recv_waits_for_arrival;
        Alcotest.test_case "fifo per sender" `Quick test_sim_fifo_order;
        Alcotest.test_case "tag matching" `Quick test_sim_tags_select;
        Alcotest.test_case "recv_any arrival order" `Quick test_sim_recv_any;
        Alcotest.test_case "barrier aligns clocks" `Quick test_sim_barrier_aligns_clocks;
        Alcotest.test_case "deadlock detected" `Quick test_sim_deadlock_detected;
        Alcotest.test_case "barrier mismatch detected" `Quick test_sim_barrier_mismatch_detected;
        Alcotest.test_case "undelivered detected" `Quick test_sim_undelivered_detected;
        Alcotest.test_case "self-send rejected" `Quick test_sim_self_send_rejected;
        Alcotest.test_case "deterministic" `Quick test_sim_deterministic;
        Alcotest.test_case "trace records" `Quick test_sim_trace_records;
        Alcotest.test_case "run_collect" `Quick test_sim_run_collect;
        Alcotest.test_case "hop pricing" `Quick test_sim_hypercube_transfer_hops_priced;
      ] );
    ( "comm",
      [
        Alcotest.test_case "bcast" `Quick test_comm_bcast;
        Alcotest.test_case "bcast requires root value" `Quick test_comm_bcast_root_must_supply;
        Alcotest.test_case "reduce" `Quick test_comm_reduce;
        Alcotest.test_case "reduce order" `Quick test_comm_reduce_order_preserved;
        Alcotest.test_case "allreduce" `Quick test_comm_allreduce;
        Alcotest.test_case "gather" `Quick test_comm_gather;
        Alcotest.test_case "allgather" `Quick test_comm_allgather;
        Alcotest.test_case "scatter" `Quick test_comm_scatter;
        Alcotest.test_case "alltoall" `Quick test_comm_alltoall;
        Alcotest.test_case "scan" `Quick test_comm_scan;
        Alcotest.test_case "scan non-commutative" `Quick test_comm_scan_non_commutative;
        Alcotest.test_case "split" `Quick test_comm_split;
        Alcotest.test_case "split isolation" `Quick test_comm_split_groups_isolated;
        Alcotest.test_case "group barrier" `Quick test_comm_barrier;
        Alcotest.test_case "exchange" `Quick test_comm_exchange;
        Alcotest.test_case "pipelined collectives" `Quick test_comm_pipelined_collectives;
        prop_collectives_arbitrary_sizes;
      ] );
    ( "sim_extra",
      [
        Alcotest.test_case "single processor" `Quick test_sim_single_processor;
        Alcotest.test_case "topology pricing" `Quick test_sim_topology_changes_cost;
        Alcotest.test_case "message size pricing" `Quick test_sim_bigger_messages_cost_more;
        Alcotest.test_case "marshalled sizes" `Quick test_sim_marshalled_size_scales;
        Alcotest.test_case "compute/transfer overlap" `Quick test_sim_work_while_messages_fly;
        Alcotest.test_case "gantt renders" `Quick test_gantt_renders;
        Alcotest.test_case "token ring stress" `Quick test_sim_many_small_messages;
        Alcotest.test_case "run_each" `Quick test_run_each_per_rank_programs;
        Alcotest.test_case "imbalance metric" `Quick test_imbalance_metric;
      ] );
    ( "comm_extra",
      [
        Alcotest.test_case "of_ranks membership" `Quick test_comm_of_ranks_requires_membership;
        Alcotest.test_case "singleton group" `Quick test_comm_singleton;
        Alcotest.test_case "nested splits" `Quick test_comm_nested_split_hierarchy;
        prop_bcast_any_root_any_size;
        prop_alltoall_transpose;
        Alcotest.test_case "reduce root sweep (non-commutative)" `Quick test_comm_reduce_root_sweep;
        Alcotest.test_case "allreduce/scan order sweep" `Quick test_comm_allreduce_scan_order_sweep;
        Alcotest.test_case "fresh_tag overflow boundary" `Quick test_comm_fresh_tag_boundary;
      ] );
    ( "faults",
      [
        Alcotest.test_case "recv timeout fires at deadline" `Quick test_sim_recv_timeout_fires;
        Alcotest.test_case "in-time delivery beats deadline" `Quick
          test_sim_recv_timeout_not_taken_when_in_time;
        Alcotest.test_case "arrival at deadline delivers" `Quick
          test_sim_recv_timeout_boundary_is_delivery;
        Alcotest.test_case "timeout then retry succeeds" `Quick test_sim_recv_timeout_retry_succeeds;
        Alcotest.test_case "negative timeout rejected" `Quick test_sim_negative_timeout_rejected;
        Alcotest.test_case "crash is fail-stop" `Quick test_sim_crash_is_fail_stop;
        Alcotest.test_case "timeout survives peer crash" `Quick test_sim_timeout_survives_peer_crash;
      ] );
    ( "sleep",
      [
        Alcotest.test_case "advances clock, not work_time" `Quick
          test_sim_sleep_advances_clock_not_work;
        Alcotest.test_case "negative rejected" `Quick test_sim_sleep_negative_rejected;
        Alcotest.test_case "paced sender keeps arrival order" `Quick
          test_sim_sleep_paced_sender_keeps_arrival_order;
        Alcotest.test_case "multicore sleep completes" `Quick test_multicore_sleep_completes;
      ] );
    ( "chaos",
      [
        Alcotest.test_case "zero-fault wrap is bit-identical" `Quick
          test_chaos_zero_fault_bit_identical;
        Alcotest.test_case "delays preserve collective values" `Quick
          test_chaos_delays_value_identical;
        Alcotest.test_case "same seed replays exactly" `Quick test_chaos_delays_are_deterministic;
        Alcotest.test_case "stragglers slow but preserve" `Quick
          test_chaos_straggler_slows_but_preserves;
        Alcotest.test_case "spec validation" `Quick test_chaos_spec_validated;
        Alcotest.test_case "scheduled crash counted" `Quick test_chaos_crash_counts_faults;
        Alcotest.test_case "time-scheduled crash" `Quick test_chaos_crashes_at_time;
        Alcotest.test_case "crash time validated" `Quick test_chaos_crashes_at_validation;
        Alcotest.test_case "property: chaos value identity" `Slow test_prop_chaos_value_identity;
      ] );
  ]

(* --- bulk slice tier ------------------------------------------------------------ *)

let slice_of_list xs =
  let a = Bigarray.Array1.of_array Bigarray.float64 Bigarray.c_layout (Array.of_list xs) in
  (a : Engine.slice)

let slice_to_list (s : Engine.slice) =
  List.init (Bigarray.Array1.dim s) (Bigarray.Array1.get s)

let test_slice_p2p_roundtrip () =
  List.iter
    (fun n ->
      let payload = List.init n (fun i -> float_of_int i *. 0.5) in
      let got = ref [] in
      let stats =
        run_world ~procs:2 (fun c ->
            if Comm.rank c = 0 then Comm.send_slice c ~dest:1 (slice_of_list payload)
            else got := slice_to_list (Comm.recv_slice c ~src:0 ()))
      in
      Alcotest.(check (list (float 0.0))) (Printf.sprintf "n=%d" n) payload !got;
      Alcotest.(check int) "one message" 1 stats.Sim.total_msgs;
      Alcotest.(check int) "8 bytes per element" (8 * n) stats.Sim.total_bytes)
    [ 0; 1; 13; 1024 ]

let test_slice_fifo_with_boxed () =
  (* slice and ordinary traffic on the SAME tagged channel keep their
     relative order *)
  let seen = ref [] in
  let _ =
    run_world ~procs:2 (fun c ->
        if Comm.rank c = 0 then begin
          Comm.send c ~dest:1 ~tag:7 "first";
          Comm.send_slice c ~dest:1 ~tag:7 (slice_of_list [ 2.0 ]);
          Comm.send c ~dest:1 ~tag:7 "third"
        end
        else begin
          let a : string = Comm.recv c ~src:0 ~tag:7 () in
          let b = Comm.recv_slice c ~src:0 ~tag:7 () in
          let d : string = Comm.recv c ~src:0 ~tag:7 () in
          seen := [ a; string_of_float (Bigarray.Array1.get b 0); d ]
        end)
  in
  Alcotest.(check (list string)) "order" [ "first"; "2."; "third" ] !seen

let slice_collective_battery c =
  let p = Comm.size c in
  let me = Comm.rank c in
  let n = 17 in
  let whole = List.init n (fun i -> float_of_int ((i * 3) + 1)) in
  let bc = slice_to_list (Comm.bcast_slice c ~root:0 (if me = 0 then Some (slice_of_list whole) else None)) in
  let mine = Comm.scatter_slice c ~root:0 (if me = 0 then Some (slice_of_list whole) else None) in
  let back = Comm.gather_slice c ~root:0 mine in
  let all = slice_to_list (Comm.allgather_slice c (slice_of_list [ float_of_int me; 100.0 ])) in
  (bc, Option.map slice_to_list back, all)

let test_slice_collectives () =
  List.iter
    (fun procs ->
      let n = 17 in
      let whole = List.init n (fun i -> float_of_int ((i * 3) + 1)) in
      let expected_all =
        List.concat (List.init procs (fun r -> [ float_of_int r; 100.0 ]))
      in
      let _ =
        run_world ~procs (fun c ->
            let bc, back, all = slice_collective_battery c in
            Alcotest.(check (list (float 0.0))) "bcast_slice" whole bc;
            (if Comm.rank c = 0 then
               Alcotest.(check (list (float 0.0))) "gather inverts scatter" whole (Option.get back)
             else Alcotest.(check bool) "non-root gets None" true (back = None));
            Alcotest.(check (list (float 0.0))) "allgather_slice" expected_all all)
      in
      ())
    [ 1; 2; 4 ]

let test_slice_collectives_multicore () =
  (* same battery through the multicore engine (zero-copy path) *)
  List.iter
    (fun procs ->
      let n = 17 in
      let whole = List.init n (fun i -> float_of_int ((i * 3) + 1)) in
      let expected_all = List.concat (List.init procs (fun r -> [ float_of_int r; 100.0 ])) in
      let _ =
        Multicore.run ~procs (fun eng ->
            let c = Comm.world eng in
            let bc, back, all = slice_collective_battery c in
            Alcotest.(check (list (float 0.0))) "bcast_slice" whole bc;
            (if Comm.rank c = 0 then
               Alcotest.(check (list (float 0.0))) "gather inverts scatter" whole (Option.get back)
             else Alcotest.(check bool) "non-root gets None" true (back = None));
            Alcotest.(check (list (float 0.0))) "allgather_slice" expected_all all)
      in
      ())
    [ 1; 2; 4 ]

let test_slice_chaos_coherent () =
  (* the chaos wrapper holds/releases bulk sends like ordinary sends:
     values survive perturbation, and the zero-fault wrap is identity *)
  let battery c =
    let me = Comm.rank c in
    let _, back, all = slice_collective_battery c in
    if me = 0 then Some (back, all) else None
  in
  let bare, _ = Spmd.run_collect ~procs:4 battery in
  List.iter
    (fun seed ->
      let spec = Chaos.delays ~seed ~prob:0.5 ~max_hold:3 () in
      let perturbed, _ = Spmd.run_collect ~procs:4 ~chaos:spec battery in
      Alcotest.(check bool) (Printf.sprintf "seed=%d" seed) true (perturbed = bare))
    [ 1; 7; 42 ]

let suite =
  suite
  @ [
      ( "slice",
        [
          Alcotest.test_case "p2p roundtrip + pricing" `Quick test_slice_p2p_roundtrip;
          Alcotest.test_case "fifo with boxed traffic" `Quick test_slice_fifo_with_boxed;
          Alcotest.test_case "collectives (sim)" `Quick test_slice_collectives;
          Alcotest.test_case "collectives (multicore)" `Quick test_slice_collectives_multicore;
          Alcotest.test_case "chaos coherence" `Quick test_slice_chaos_coherent;
        ] );
    ]

let () = Alcotest.run "machine" suite
