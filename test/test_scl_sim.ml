(* Tests for the skeleton implementation templates on the simulated
   machine: Dvec semantics must agree with the host SCL (sequential
   reference) semantics, and costs must behave sensibly. *)

open Machine

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let run ?(procs = 4) ?(cost = Cost_model.ap1000) f = Scl_sim.Spmd.run ~cost ~procs f

let run_collect ?(procs = 4) ?(cost = Cost_model.ap1000) f =
  Scl_sim.Spmd.run_collect ~cost ~procs f

(* Round-trip a root array through a Dvec operation and collect at root. *)
let via_dvec ~procs op (a : int array) : int array =
  let result, _ =
    run_collect ~procs (fun comm ->
        let dv =
          Scl_sim.Dvec.scatter comm ~root:0 (if Comm.rank comm = 0 then Some a else None)
        in
        Scl_sim.Dvec.gather ~root:0 (op dv))
  in
  result

let test_scatter_gather () =
  let a = Array.init 23 Fun.id in
  List.iter
    (fun procs ->
      Alcotest.(check (array int))
        (Printf.sprintf "identity via %d procs" procs)
        a (via_dvec ~procs Fun.id a))
    [ 1; 2; 3; 4; 7; 8 ]

let test_scatter_empty () =
  Alcotest.(check (array int)) "empty vector" [||] (via_dvec ~procs:4 Fun.id [||])

let test_offsets () =
  let offsets = Array.make 4 (-1) and lens = Array.make 4 (-1) in
  let _ =
    run ~procs:4 (fun comm ->
        let dv =
          Scl_sim.Dvec.scatter comm ~root:0
            (if Comm.rank comm = 0 then Some (Array.init 10 Fun.id) else None)
        in
        offsets.(Comm.rank comm) <- Scl_sim.Dvec.offset dv;
        lens.(Comm.rank comm) <- Scl_sim.Dvec.local_length dv)
  in
  Alcotest.(check (array int)) "offsets" [| 0; 3; 6; 8 |] offsets;
  Alcotest.(check (array int)) "lengths" [| 3; 3; 2; 2 |] lens

let test_map_imap () =
  let a = Array.init 17 Fun.id in
  Alcotest.(check (array int)) "map" (Array.map (fun x -> x * 2) a)
    (via_dvec ~procs:4 (Scl_sim.Dvec.map (fun x -> x * 2)) a);
  Alcotest.(check (array int)) "imap uses global index" (Array.mapi (fun i x -> (i * 100) + x) a)
    (via_dvec ~procs:4 (Scl_sim.Dvec.imap (fun i x -> (i * 100) + x)) a)

let test_fold () =
  let results = Array.make 5 0 in
  let _ =
    run ~procs:5 (fun comm ->
        let dv =
          Scl_sim.Dvec.scatter comm ~root:0
            (if Comm.rank comm = 0 then Some (Array.init 100 (fun i -> i + 1)) else None)
        in
        results.(Comm.rank comm) <- Scl_sim.Dvec.fold ( + ) dv)
  in
  Array.iter (fun v -> Alcotest.(check int) "fold everywhere" 5050 v) results

let test_fold_order () =
  let result = ref "" in
  let _ =
    run ~procs:3 (fun comm ->
        let dv =
          Scl_sim.Dvec.scatter comm ~root:0
            (if Comm.rank comm = 0 then Some (Array.init 10 string_of_int) else None)
        in
        let v = Scl_sim.Dvec.fold ( ^ ) dv in
        if Comm.rank comm = 0 then result := v)
  in
  Alcotest.(check string) "index order despite distribution" "0123456789" !result

let test_fold_more_procs_than_elements () =
  let result = ref 0 in
  let _ =
    run ~procs:8 (fun comm ->
        let dv =
          Scl_sim.Dvec.scatter comm ~root:0 (if Comm.rank comm = 0 then Some [| 3; 4 |] else None)
        in
        let v = Scl_sim.Dvec.fold ( + ) dv in
        if Comm.rank comm = 0 then result := v)
  in
  Alcotest.(check int) "empty chunks skipped" 7 !result

let prop_scan_matches_reference =
  qtest ~count:40 "Dvec.scan = host scan"
    QCheck.(pair (list small_int) (int_range 1 8))
    (fun (xs, procs) ->
      let procs = max 1 procs in
      let a = Array.of_list xs in
      let host =
        Scl.Par_array.to_array (Scl.Elementary.scan ( + ) (Scl.Par_array.of_array a))
      in
      via_dvec ~procs (Scl_sim.Dvec.scan ( + )) a = host)

let prop_rotate_matches_reference =
  qtest ~count:60 "Dvec.rotate = host rotate"
    QCheck.(triple (list small_int) (int_range (-15) 15) (int_range 1 8))
    (fun (xs, k, procs) ->
      let procs = max 1 procs in
      let a = Array.of_list xs in
      let host =
        Scl.Par_array.to_array (Scl.Communication.rotate k (Scl.Par_array.of_array a))
      in
      via_dvec ~procs (Scl_sim.Dvec.rotate k) a = host)

let prop_fetch_matches_reference =
  qtest ~count:40 "Dvec.fetch = host fetch"
    QCheck.(triple (int_range 1 30) (int_range 0 50) (int_range 1 6))
    (fun (n, k, procs) ->
      let procs = max 1 procs in
      let n = max 1 n in
      let a = Array.init n (fun i -> i * 7) in
      let f i = (i + k) mod n in
      let host = Scl.Par_array.to_array (Scl.Communication.fetch f (Scl.Par_array.of_array a)) in
      via_dvec ~procs (Scl_sim.Dvec.fetch f) a = host)

let test_send_matches_reference () =
  let a = Array.init 12 Fun.id in
  let f k = [ k / 2 ] in
  let host =
    Scl.Par_array.to_array (Scl.Communication.send f (Scl.Par_array.of_array a))
  in
  let got, _ =
    run_collect ~procs:4 (fun comm ->
        let dv =
          Scl_sim.Dvec.scatter comm ~root:0 (if Comm.rank comm = 0 then Some a else None)
        in
        Scl_sim.Dvec.gather ~root:0 (Scl_sim.Dvec.send f dv))
  in
  Alcotest.(check bool) "send buckets match" true (got = host)

let test_applybrdcast () =
  let results = Array.make 4 0 in
  let _ =
    run ~procs:4 (fun comm ->
        let dv =
          Scl_sim.Dvec.scatter comm ~root:0
            (if Comm.rank comm = 0 then Some (Array.init 10 (fun i -> i * 11)) else None)
        in
        results.(Comm.rank comm) <- Scl_sim.Dvec.applybrdcast ~flops:1 (fun x -> x + 1) 7 dv)
  in
  Array.iter (fun v -> Alcotest.(check int) "element 7 + 1 everywhere" 78 v) results

let test_allgather () =
  let ok = ref true in
  let a = Array.init 9 Fun.id in
  let _ =
    run ~procs:4 (fun comm ->
        let dv =
          Scl_sim.Dvec.scatter comm ~root:0 (if Comm.rank comm = 0 then Some a else None)
        in
        if Scl_sim.Dvec.allgather dv <> a then ok := false)
  in
  Alcotest.(check bool) "every processor has the full vector" true !ok

(* --- cost sanity ------------------------------------------------------------ *)

let test_map_charges_work () =
  let stats =
    run ~procs:2 ~cost:Cost_model.unit_costs (fun comm ->
        let dv =
          Scl_sim.Dvec.scatter comm ~root:0
            (if Comm.rank comm = 0 then Some (Array.make 10 1) else None)
        in
        ignore (Scl_sim.Dvec.map ~flops_per_elem:3 (fun x -> x) dv))
  in
  (* each of 2 procs: 5 elements * 3 flops * 1s *)
  Alcotest.(check bool) "work charged" true
    (Array.for_all (fun w -> w >= 15.0) stats.Sim.work_times)

let test_more_procs_is_faster () =
  (* A compute-heavy map should scale with processor count. *)
  let time procs =
    let stats =
      run ~procs (fun comm ->
          let dv =
            Scl_sim.Dvec.scatter comm ~root:0
              (if Comm.rank comm = 0 then Some (Array.make 4096 1) else None)
          in
          ignore (Scl_sim.Dvec.map ~flops_per_elem:1000 (fun x -> x + 1) dv))
    in
    stats.Sim.makespan
  in
  let t1 = time 1 and t4 = time 4 and t16 = time 16 in
  Alcotest.(check bool) "t(4) < t(1)" true (t4 < t1);
  Alcotest.(check bool) "t(16) < t(4)" true (t16 < t4)

let test_rotate_message_economy () =
  (* rotate sends only boundary segments: message count must be O(P), not
     O(P^2) like an all-to-all. *)
  let stats =
    run ~procs:8 (fun comm ->
        let dv =
          Scl_sim.Dvec.scatter comm ~root:0
            (if Comm.rank comm = 0 then Some (Array.init 64 Fun.id) else None)
        in
        ignore (Scl_sim.Dvec.rotate 3 dv))
  in
  (* scatter/gather-free: scatter itself costs messages; rotation adds at
     most 2 per proc. Just bound the total. *)
  Alcotest.(check bool) "message count bounded" true (stats.Sim.total_msgs < 80)

(* --- Dmat / SUMMA -------------------------------------------------------------- *)

let mat_close a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun r1 r2 -> Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) r1 r2) a b

let test_dmat_init_gather () =
  let n = 12 and procs = 9 in
  let f i j = float_of_int ((i * 100) + j) in
  let got = ref [||] in
  let _ =
    run ~procs (fun comm ->
        let m = Scl_sim.Dmat.init comm ~n f in
        match Scl_sim.Dmat.gather ~root:0 m with
        | Some full -> got := full
        | None -> ())
  in
  Alcotest.(check bool) "reassembled" true
    (mat_close !got (Array.init n (fun i -> Array.init n (f i))))

let test_dmat_scatter_gather () =
  let n = 8 and procs = 16 in
  let m0 = Array.init n (fun i -> Array.init n (fun j -> float_of_int (i - j))) in
  let got = ref [||] in
  let _ =
    run ~procs (fun comm ->
        let m =
          Scl_sim.Dmat.scatter comm ~root:0 (if Comm.rank comm = 0 then Some m0 else None) ~n
        in
        match Scl_sim.Dmat.gather ~root:0 m with Some full -> got := full | None -> ())
  in
  Alcotest.(check bool) "roundtrip" true (mat_close !got m0)

let test_dmat_transpose () =
  let n = 6 and procs = 9 in
  let f i j = float_of_int ((i * 10) + j) in
  let got = ref [||] in
  let _ =
    run ~procs (fun comm ->
        let m = Scl_sim.Dmat.init comm ~n f in
        match Scl_sim.Dmat.gather ~root:0 (Scl_sim.Dmat.transpose m) with
        | Some full -> got := full
        | None -> ())
  in
  Alcotest.(check bool) "transposed" true
    (mat_close !got (Array.init n (fun i -> Array.init n (fun j -> f j i))))

let test_dmat_rejects_bad_grid () =
  Alcotest.(check bool) "non-square comm" true
    (try
       ignore (run ~procs:6 (fun comm -> ignore (Scl_sim.Dmat.init comm ~n:6 (fun _ _ -> 0.0))));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "grid side must divide n" true
    (try
       ignore (run ~procs:4 (fun comm -> ignore (Scl_sim.Dmat.init comm ~n:7 (fun _ _ -> 0.0))));
       false
     with Invalid_argument _ -> true)

let seq_matmul = Scl_sim.Dmat.local_matmul

let prop_summa_matches_seq =
  qtest ~count:12 "SUMMA = sequential matmul"
    QCheck.(pair (int_range 1 3) (int_range 1 3))
    (fun (q, scale) ->
      let n = q * scale in
      let rng = Runtime.Xoshiro.of_seed ((q * 17) + scale) in
      let a = Array.init n (fun _ -> Array.init n (fun _ -> Runtime.Xoshiro.float rng 2.0 -. 1.0)) in
      let b = Array.init n (fun _ -> Array.init n (fun _ -> Runtime.Xoshiro.float rng 2.0 -. 1.0)) in
      let c, _ = Algorithms.Summa.multiply_sim ~grid:q a b in
      mat_close c (seq_matmul a b))

let test_summa_vs_cannon_cost () =
  (* Cannon shifts blocks to torus neighbours (one latency per round);
     SUMMA broadcasts along rows and columns (log q latencies per round).
     Under a latency-dominated cost model Cannon must win. *)
  let n = 48 in
  let rng = Runtime.Xoshiro.of_seed 12 in
  let a = Array.init n (fun _ -> Array.init n (fun _ -> Runtime.Xoshiro.float rng 1.0)) in
  let b = Array.init n (fun _ -> Array.init n (fun _ -> Runtime.Xoshiro.float rng 1.0)) in
  let latency_bound = { Cost_model.ap1000 with alpha = 1e-3 } in
  let c1, s_summa = Algorithms.Summa.multiply_sim ~cost:latency_bound ~grid:4 a b in
  let c2, s_cannon = Algorithms.Cannon.multiply_sim ~cost:latency_bound ~grid:4 a b in
  Alcotest.(check bool) "same product" true (mat_close c1 c2);
  Alcotest.(check bool) "cannon faster when latency dominates" true
    (s_cannon.Sim.makespan < s_summa.Sim.makespan)

(* --- Control (SPMD iterUntil / iterFor) ---------------------------------------- *)

let test_control_iter_until_conv () =
  (* Halving residuals: starts at 1.0, stops when < 1/32 -> 6 iterations,
     same count on every member. *)
  let iters = Array.make 4 0 in
  let _ =
    run ~procs:4 (fun comm ->
        let conv =
          Scl_sim.Control.iter_until_conv comm ~tol:(1.0 /. 32.0)
            ~step:(fun _ r -> (r /. 2.0, r /. 2.0))
            1.0
        in
        iters.(Comm.rank comm) <- conv.Scl_sim.Control.iterations)
  in
  Array.iter (fun i -> Alcotest.(check int) "six halvings" 6 i) iters

let test_control_residual_is_global_max () =
  (* One slow member keeps everyone iterating. *)
  let iters = ref 0 in
  let _ =
    run ~procs:4 (fun comm ->
        let me = Comm.rank comm in
        let conv =
          Scl_sim.Control.iter_until_conv comm ~tol:0.1
            ~step:(fun i _ ->
              (* member 3 converges in 5 steps, the rest immediately *)
              let r = if me = 3 && i < 4 then 1.0 else 0.0 in
              ((), r))
            ()
        in
        if me = 0 then iters := conv.Scl_sim.Control.iterations)
  in
  Alcotest.(check int) "held by slowest member" 5 !iters

let test_control_max_iter_cap () =
  let _ =
    run ~procs:2 (fun comm ->
        let conv =
          Scl_sim.Control.iter_until_conv comm ~max_iter:7 ~tol:0.0
            ~step:(fun _ () -> ((), 1.0))
            ()
        in
        if conv.Scl_sim.Control.iterations <> 7 then failwith "cap not respected")
  in
  ()

let test_control_iter_for () =
  Alcotest.(check int) "sum of indices" 10 (Scl_sim.Control.iter_for 5 (fun i acc -> acc + i) 0);
  Alcotest.(check bool) "negative rejected" true
    (try
       ignore (Scl_sim.Control.iter_for (-1) (fun _ x -> x) 0);
       false
     with Invalid_argument _ -> true)

(* --- Fvec (flat tier) -----------------------------------------------------------
   [Dvec] is the executable specification: the unboxed slice-tier vector
   must produce bitwise-identical contents, with coalesced bulk
   messaging. *)

let via_fvec ~procs op (a : float array) : float array =
  let result, _ =
    run_collect ~procs (fun comm ->
        let fv =
          Scl_sim.Fvec.scatter comm ~root:0
            (if Comm.rank comm = 0 then Some (Scl.Flat.of_float_array a) else None)
        in
        Option.map Scl.Flat.to_float_array (Scl_sim.Fvec.gather ~root:0 (op fv)))
  in
  result

let test_fvec_scatter_gather () =
  List.iter
    (fun n ->
      let a = Array.init n (fun i -> (float_of_int i *. 1.25) -. 3.0) in
      List.iter
        (fun procs ->
          Alcotest.(check (array (float 0.0)))
            (Printf.sprintf "roundtrip n=%d p=%d" n procs)
            a
            (via_fvec ~procs Fun.id a))
        [ 1; 2; 4; 7 ])
    [ 0; 1; 5; 23 ]

let test_fvec_allgather () =
  let a = Array.init 13 (fun i -> float_of_int (i * i)) in
  let got, _ =
    run_collect ~procs:4 (fun comm ->
        let fv =
          Scl_sim.Fvec.scatter comm ~root:0
            (if Comm.rank comm = 0 then Some (Scl.Flat.of_float_array a) else None)
        in
        let all = Scl_sim.Fvec.allgather fv in
        if Comm.rank comm = 3 then Some (Scl.Flat.to_float_array all) else None)
  in
  Alcotest.(check (array (float 0.0))) "allgather on a non-root member" a got

let prop_fvec_rotate_matches_dvec =
  qtest ~count:60 "Fvec.rotate = Dvec.rotate (bitwise)"
    QCheck.(
      triple
        (list_of_size (QCheck.Gen.int_range 0 40) (float_bound_exclusive 100.0))
        (int_range (-15) 15) (int_range 1 8))
    (fun (xs, k, procs) ->
      let a = Array.of_list xs in
      let boxed, _ =
        run_collect ~procs (fun comm ->
            let dv =
              Scl_sim.Dvec.scatter comm ~root:0 (if Comm.rank comm = 0 then Some a else None)
            in
            Scl_sim.Dvec.gather ~root:0 (Scl_sim.Dvec.rotate k dv))
      in
      via_fvec ~procs (Scl_sim.Fvec.rotate k) a = boxed)

let test_fvec_rotate_multicore () =
  (* same data through the multicore engine: contents must equal the
     simulator's bitwise (zero-copy slice path vs deep-copy sim path) *)
  let a = Array.init 23 (fun i -> (float_of_int i *. 1.5) +. 0.25) in
  List.iter
    (fun k ->
      let sim = via_fvec ~procs:4 (Scl_sim.Fvec.rotate k) a in
      let mc, _ =
        Scl_sim.Spmd.run_multicore_collect ~procs:4 (fun comm ->
            let fv =
              Scl_sim.Fvec.scatter comm ~root:0
                (if Comm.rank comm = 0 then Some (Scl.Flat.of_float_array a) else None)
            in
            Option.map Scl.Flat.to_float_array
              (Scl_sim.Fvec.gather ~root:0 (Scl_sim.Fvec.rotate k fv)))
      in
      Alcotest.(check (array (float 0.0))) (Printf.sprintf "k=%d" k) sim mc)
    [ -7; -1; 0; 3; 23; 30 ]

let test_halo_coalescing () =
  (* a whole-row halo is ONE bulk message per neighbour whatever the row
     width, and the simulator prices it at exactly 8 bytes/element *)
  let p = 4 and rows = 8 and n = 16 in
  let stats =
    run ~procs:p (fun comm ->
        let me = Comm.rank comm in
        let u = Scl.Flat.make Scl.Flat.float64 (rows * n) (float_of_int me) in
        if me > 0 then Comm.send_slice comm ~dest:(me - 1) (Scl.Flat.sub_view u ~pos:0 ~len:n);
        if me < p - 1 then
          Comm.send_slice comm ~dest:(me + 1) (Scl.Flat.sub_view u ~pos:((rows - 1) * n) ~len:n);
        if me > 0 then begin
          let h = Comm.recv_slice comm ~src:(me - 1) () in
          assert (Scl.Flat.length h = n && Scl.Flat.get h 0 = float_of_int (me - 1))
        end;
        if me < p - 1 then begin
          let h = Comm.recv_slice comm ~src:(me + 1) () in
          assert (Scl.Flat.length h = n && Scl.Flat.get h 0 = float_of_int (me + 1))
        end)
  in
  Alcotest.(check int) "one message per neighbour" (2 * (p - 1)) stats.Sim.total_msgs;
  Alcotest.(check int) "bytes-proportional pricing" (2 * (p - 1) * 8 * n) stats.Sim.total_bytes

let test_fvec_rotate_message_economy () =
  (* rotate traffic itself: at most one coalesced message per (sender,
     destination) pair, measured by differencing against the construction
     traffic *)
  let mk comm =
    let me = Comm.rank comm in
    Scl_sim.Fvec.of_local comm
      (Scl.Flat.init Scl.Flat.float64 8 (fun i -> float_of_int ((me * 8) + i)))
  in
  let base = run ~procs:8 (fun comm -> ignore (mk comm)) in
  let full = run ~procs:8 (fun comm -> ignore (Scl_sim.Fvec.rotate 3 (mk comm))) in
  let rotate_msgs = full.Sim.total_msgs - base.Sim.total_msgs in
  Alcotest.(check bool)
    (Printf.sprintf "rotate msgs %d <= p" rotate_msgs)
    true (rotate_msgs <= 8)

let via_fvec_fetch_vs_dvec ~procs f (a : float array) : bool =
  let boxed, _ =
    run_collect ~procs (fun comm ->
        let dv =
          Scl_sim.Dvec.scatter comm ~root:0 (if Comm.rank comm = 0 then Some a else None)
        in
        Scl_sim.Dvec.gather ~root:0 (Scl_sim.Dvec.fetch f dv))
  in
  via_fvec ~procs (Scl_sim.Fvec.fetch f) a = boxed

let prop_fvec_fetch_matches_dvec =
  qtest ~count:40 "Fvec.fetch = Dvec.fetch (bitwise)"
    QCheck.(triple (int_range 1 40) (int_range 0 50) (int_range 1 6))
    (fun (n, k, procs) ->
      let a = Array.init n (fun i -> float_of_int (((i * 13) mod 32) - 16) *. 0.25) in
      via_fvec_fetch_vs_dvec ~procs (fun g -> (g + k) mod n) a)

let test_fvec_fetch_patterns () =
  (* deterministic shapes beyond the shift: reverse (descending source
     order), a seeded random permutation (scattered singleton runs), and
     a constant slot (everyone fetches from one owner); p=1,2,4 against
     the boxed spec *)
  let n = 37 in
  let a = Array.init n (fun i -> float_of_int ((i * 7) mod 16) *. 0.5) in
  let rng = Runtime.Xoshiro.of_seed 99 in
  let perm = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Runtime.Xoshiro.int rng (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  List.iter
    (fun (name, f) ->
      List.iter
        (fun procs ->
          Alcotest.(check bool)
            (Printf.sprintf "%s p=%d" name procs)
            true
            (via_fvec_fetch_vs_dvec ~procs f a))
        [ 1; 2; 4 ])
    [
      ("reverse", fun g -> n - 1 - g);
      ("random permutation", fun g -> perm.(g));
      ("constant slot", fun _ -> 17);
    ]

let test_fvec_fetch_out_of_range () =
  Alcotest.(check bool) "requester rejects out-of-range index" true
    (try
       ignore
         (via_fvec ~procs:2
            (Scl_sim.Fvec.fetch (fun g -> g + 1))
            (Array.init 8 float_of_int));
       false
     with Invalid_argument _ -> true)

let test_fvec_fetch_message_economy () =
  (* per-(sender,dest) run coalescing: a shift crosses at most two source
     blocks per member, so fetch traffic is at most 2 messages per member
     whatever the payload width — not one message per element *)
  let p = 8 in
  let mk comm =
    let me = Comm.rank comm in
    Scl_sim.Fvec.of_local comm
      (Scl.Flat.init Scl.Flat.float64 8 (fun i -> float_of_int ((me * 8) + i)))
  in
  let total = p * 8 in
  let f g = (g + 3) mod total in
  let base = run ~procs:p (fun comm -> ignore (mk comm)) in
  let full = run ~procs:p (fun comm -> ignore (Scl_sim.Fvec.fetch f (mk comm))) in
  let fetch_msgs = full.Sim.total_msgs - base.Sim.total_msgs in
  Alcotest.(check bool)
    (Printf.sprintf "fetch msgs %d <= 2p" fetch_msgs)
    true
    (fetch_msgs <= 2 * p)

let () =
  Alcotest.run "scl_sim"
    [
      ( "dvec",
        [
          Alcotest.test_case "scatter/gather" `Quick test_scatter_gather;
          Alcotest.test_case "empty vector" `Quick test_scatter_empty;
          Alcotest.test_case "offsets" `Quick test_offsets;
          Alcotest.test_case "map/imap" `Quick test_map_imap;
          Alcotest.test_case "fold" `Quick test_fold;
          Alcotest.test_case "fold order" `Quick test_fold_order;
          Alcotest.test_case "fold with empty chunks" `Quick test_fold_more_procs_than_elements;
          prop_scan_matches_reference;
          prop_rotate_matches_reference;
          prop_fetch_matches_reference;
          Alcotest.test_case "send" `Quick test_send_matches_reference;
          Alcotest.test_case "applybrdcast" `Quick test_applybrdcast;
          Alcotest.test_case "allgather" `Quick test_allgather;
        ] );
      ( "costs",
        [
          Alcotest.test_case "map charges work" `Quick test_map_charges_work;
          Alcotest.test_case "scaling" `Quick test_more_procs_is_faster;
          Alcotest.test_case "rotate economy" `Quick test_rotate_message_economy;
        ] );
      ( "dmat",
        [
          Alcotest.test_case "init/gather" `Quick test_dmat_init_gather;
          Alcotest.test_case "scatter/gather" `Quick test_dmat_scatter_gather;
          Alcotest.test_case "transpose" `Quick test_dmat_transpose;
          Alcotest.test_case "bad grids rejected" `Quick test_dmat_rejects_bad_grid;
          prop_summa_matches_seq;
          Alcotest.test_case "summa vs cannon bytes" `Quick test_summa_vs_cannon_cost;
        ] );
      ( "fvec",
        [
          Alcotest.test_case "scatter/gather roundtrip" `Quick test_fvec_scatter_gather;
          Alcotest.test_case "allgather" `Quick test_fvec_allgather;
          prop_fvec_rotate_matches_dvec;
          Alcotest.test_case "rotate on multicore = sim" `Quick test_fvec_rotate_multicore;
          Alcotest.test_case "halo coalescing msg/byte counts" `Quick test_halo_coalescing;
          Alcotest.test_case "rotate message economy" `Quick test_fvec_rotate_message_economy;
          prop_fvec_fetch_matches_dvec;
          Alcotest.test_case "fetch patterns vs boxed spec" `Quick test_fvec_fetch_patterns;
          Alcotest.test_case "fetch rejects out-of-range" `Quick test_fvec_fetch_out_of_range;
          Alcotest.test_case "fetch message economy" `Quick test_fvec_fetch_message_economy;
        ] );
      ( "control",
        [
          Alcotest.test_case "iter_until_conv" `Quick test_control_iter_until_conv;
          Alcotest.test_case "global residual" `Quick test_control_residual_is_global_max;
          Alcotest.test_case "max_iter cap" `Quick test_control_max_iter_cap;
          Alcotest.test_case "iter_for" `Quick test_control_iter_for;
        ] );
    ]
