(* Tests for the multicore execution engine: the mailbox fabric (tag
   discipline, per-(source, tag) FIFO, doorbell sleep/wake), quiescence
   deadlock detection, rank multiplexing, and sim-vs-multicore engine
   equivalence of the Comm collectives and the ported algorithms. *)

open Machine
module Spmd = Scl_sim.Spmd

let contains msg needle =
  let n = String.length needle and m = String.length msg in
  let rec go i = i + n <= m && (String.sub msg i n = needle || go (i + 1)) in
  go 0

(* --- fabric basics ------------------------------------------------------ *)

let test_single_rank () =
  let v, stats = Multicore.run_collect ~procs:1 (fun eng -> Some (eng.Engine.rank + 41)) in
  Alcotest.(check int) "value" 41 v;
  Alcotest.(check int) "no messages" 0 stats.Multicore.total_msgs

let test_ping_pong () =
  let v, stats =
    Multicore.run_collect ~procs:2 ~domains:2 (fun eng ->
        if eng.Engine.rank = 0 then begin
          eng.Engine.send ~dest:1 ~tag:5 "ping";
          let (s : string) = eng.Engine.recv ~src:1 ~tag:6 () in
          Some s
        end
        else begin
          let (s : string) = eng.Engine.recv ~src:0 ~tag:5 () in
          eng.Engine.send ~dest:0 ~tag:6 (s ^ "-pong");
          None
        end)
  in
  Alcotest.(check string) "round trip" "ping-pong" v;
  Alcotest.(check int) "two messages" 2 stats.Multicore.total_msgs

(* Receiving tags out of send order must work: the pending stash holds the
   earlier message until it is asked for. *)
let test_tag_discipline_out_of_order () =
  let v, _ =
    Multicore.run_collect ~procs:2 ~domains:2 (fun eng ->
        if eng.Engine.rank = 0 then begin
          eng.Engine.send ~dest:1 ~tag:1 10;
          eng.Engine.send ~dest:1 ~tag:2 20;
          None
        end
        else begin
          let (b : int) = eng.Engine.recv ~src:0 ~tag:2 () in
          let (a : int) = eng.Engine.recv ~src:0 ~tag:1 () in
          Some (a, b)
        end)
  in
  Alcotest.(check (pair int int)) "tags matched, not arrival order" (10, 20) v

let test_self_send_rejected () =
  Alcotest.check_raises "self send" (Invalid_argument "Multicore.send: self-send is not supported (use a local value)")
    (fun () ->
      ignore (Multicore.run ~procs:2 (fun eng ->
          if eng.Engine.rank = 0 then eng.Engine.send ~dest:0 ~tag:0 ())))

(* Zero-copy: a large array must arrive as the same physical object. *)
let test_zero_copy_identity () =
  let shared = Array.init 1024 Fun.id in
  let v, _ =
    Multicore.run_collect ~procs:2 ~domains:2 (fun eng ->
        if eng.Engine.rank = 0 then begin
          eng.Engine.send ~dest:1 ~tag:0 shared;
          None
        end
        else begin
          let (a : int array) = eng.Engine.recv ~src:0 ~tag:0 () in
          Some (a == shared)
        end)
  in
  Alcotest.(check bool) "physically equal" true v

(* --- deadlock detection by quiescence ----------------------------------- *)

let test_deadlock_mutual_recv () =
  match
    Multicore.run ~procs:2 ~domains:2 (fun eng ->
        let peer = 1 - eng.Engine.rank in
        let (_ : unit) = eng.Engine.recv ~src:peer ~tag:0 () in
        ())
  with
  | _ -> Alcotest.fail "expected deadlock"
  | exception Multicore.Deadlock msg ->
      Alcotest.(check bool) "describes blocked ranks" true
        (contains msg "no runnable processor" && contains msg "recv(src=")

(* Deadlock where a message exists but can never match (wrong tag): the
   in-flight counter must not keep the detector from firing. *)
let test_deadlock_unmatched_tag () =
  match
    Multicore.run ~procs:2 ~domains:2 (fun eng ->
        if eng.Engine.rank = 0 then begin
          eng.Engine.send ~dest:1 ~tag:7 ();
          let (_ : unit) = eng.Engine.recv ~src:1 ~tag:8 () in
          ()
        end
        else
          let (_ : unit) = eng.Engine.recv ~src:0 ~tag:9 () in
          ())
  with
  | _ -> Alcotest.fail "expected deadlock"
  | exception Multicore.Deadlock _ -> ()

(* One rank exits while another still waits for it: quiescence must also be
   detected when the only potential sender is gone. *)
let test_deadlock_sender_finished () =
  match
    Multicore.run ~procs:2 ~domains:2 (fun eng ->
        if eng.Engine.rank = 1 then
          let (_ : unit) = eng.Engine.recv ~src:0 ~tag:0 () in
          ())
  with
  | _ -> Alcotest.fail "expected deadlock"
  | exception Multicore.Deadlock _ -> ()

let test_undelivered_message () =
  match
    Multicore.run ~procs:2 ~domains:2 (fun eng ->
        if eng.Engine.rank = 0 then eng.Engine.send ~dest:1 ~tag:3 42)
  with
  | _ -> Alcotest.fail "expected undelivered-message failure"
  | exception Multicore.Deadlock msg ->
      Alcotest.(check bool) "mentions undelivered" true (contains msg "undelivered")

let test_rank_exception_propagates () =
  match Multicore.run ~procs:4 ~domains:2 (fun eng -> if eng.Engine.rank = 2 then failwith "boom") with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure msg -> Alcotest.(check string) "original exception" "boom" msg

(* --- seeded multi-domain stress ------------------------------------------ *)

(* Three senders push [msgs] tagged messages each into rank 0's mailbox from
   their own domains; rank 0 drains them grouped by (source, tag) in an
   order unrelated to arrival.  Checks: per-(source, tag) FIFO, multiset
   integrity (count and sum), and that the stash never loses a message. *)
let fabric_stress seed () =
  let msgs = 500 in
  let ntags = 3 in
  let tags_for src =
    let rng = Runtime.Xoshiro.of_seed (seed + src) in
    Array.init msgs (fun _ -> Runtime.Xoshiro.int rng ntags)
  in
  let v, _ =
    Multicore.run_collect ~procs:4 ~domains:4 (fun eng ->
        let me = eng.Engine.rank in
        if me > 0 then begin
          let tags = tags_for me in
          Array.iteri (fun i tag -> eng.Engine.send ~dest:0 ~tag (me * 1_000_000 + i)) tags;
          None
        end
        else begin
          let ok = ref true in
          let received = ref 0 in
          let sum = ref 0 in
          (* group order deliberately different from arrival order *)
          for tag = ntags - 1 downto 0 do
            for src = 3 downto 1 do
              let expected = tags_for src in
              let last = ref (-1) in
              Array.iteri
                (fun i t ->
                  if t = tag then begin
                    let (v : int) = eng.Engine.recv ~src ~tag () in
                    incr received;
                    sum := !sum + v;
                    let seq = v mod 1_000_000 in
                    if v / 1_000_000 <> src || seq <> i || seq <= !last then ok := false;
                    last := seq
                  end)
                expected
            done
          done;
          let expected_sum =
            let s = ref 0 in
            for src = 1 to 3 do
              for i = 0 to msgs - 1 do
                s := !s + (src * 1_000_000) + i
              done
            done;
            !s
          in
          Some (!ok && !received = 3 * msgs && !sum = expected_sum)
        end)
  in
  Alcotest.(check bool) "per-(src,tag) FIFO and multiset intact" true v

(* 1000 rounds of the dissemination barrier over the fabric with a shared
   counter: after round r every rank must observe all p increments of round
   r before any rank starts round r+1 — the sense-reversal property. *)
let test_barrier_rounds () =
  let p = 4 in
  let rounds = 1000 in
  let counter = Atomic.make 0 in
  let v, _ =
    Spmd.run_multicore_collect ~procs:p ~domains:4 (fun comm ->
        let ok = ref true in
        for r = 1 to rounds do
          Atomic.incr counter;
          Comm.barrier comm;
          if Atomic.get counter < r * p then ok := false;
          Comm.barrier comm
        done;
        if Comm.rank comm = 0 then Some !ok else None)
  in
  Alcotest.(check bool) "all increments visible each round" true v;
  Alcotest.(check int) "final count" (rounds * 4) (Atomic.get counter)

(* Ranks beyond the domain count are multiplexed: 8 ranks on 2 domains, with
   blocking traffic crossing domain and fiber boundaries. *)
let test_multiplexed_ranks () =
  let p = 8 in
  let v, stats =
    Spmd.run_multicore_collect ~procs:p ~domains:2 (fun comm ->
        let me = Comm.rank comm in
        let s = Comm.allreduce comm ( + ) me in
        let next = (me + 1) mod p in
        let prev = (me + p - 1) mod p in
        Comm.send comm ~dest:next me;
        let (from_prev : int) = Comm.recv comm ~src:prev () in
        if me = 0 then Some (s, from_prev) else None)
  in
  Alcotest.(check (pair int int)) "ring + allreduce over 2 domains" (28, 7) v;
  Alcotest.(check int) "two domains" 2 stats.Multicore.domains_used

(* --- engine equivalence: same program, identical values ------------------ *)

let collective_program (comm : Comm.t) =
  let p = Comm.size comm in
  let me = Comm.rank comm in
  let reduced = Comm.allreduce comm ( + ) (me + 1) in
  let scanned = Comm.scan comm ( + ) (me + 1) in
  let gathered = Comm.allgather comm (me * me) in
  let transposed = Comm.alltoall comm (Array.init p (fun j -> (me * 100) + j)) in
  let sub = Comm.split comm ~color:(me mod 2) ~key:me in
  let sub_sum = Comm.allreduce sub ( + ) me in
  let everything = (reduced, scanned, gathered, transposed, sub_sum) in
  match Comm.gather comm ~root:0 everything with
  | Some all -> Some (Array.to_list all)
  | None -> None

let test_engine_equivalence_collectives () =
  List.iter
    (fun procs ->
      let sim, _ = Spmd.run_collect ~procs collective_program in
      let mc, _ = Spmd.run_multicore_collect ~procs collective_program in
      Alcotest.(check bool)
        (Printf.sprintf "collectives agree at p=%d" procs)
        true (sim = mc))
    [ 1; 2; 4 ]

let test_engine_equivalence_hyperquicksort () =
  let rng = Runtime.Xoshiro.of_seed 1995 in
  let data = Array.init 800 (fun _ -> Runtime.Xoshiro.int rng 10_000) in
  let reference = Array.copy data in
  Array.sort compare reference;
  List.iter
    (fun procs ->
      let sim, _ = Algorithms.Hyperquicksort.sort_sim ~procs data in
      let mc, _ = Algorithms.Hyperquicksort.sort_multicore ~procs data in
      Alcotest.(check bool)
        (Printf.sprintf "sim output sorted at p=%d" procs)
        true (sim = reference);
      Alcotest.(check bool)
        (Printf.sprintf "multicore output identical at p=%d" procs)
        true (mc = sim))
    [ 1; 2; 4 ]

let test_engine_equivalence_cannon_summa () =
  let n = 12 in
  let a = Algorithms.Cannon.random_matrix ~seed:7 n in
  let b = Algorithms.Cannon.random_matrix ~seed:8 n in
  let sim_c, _ = Algorithms.Cannon.multiply_sim ~grid:2 a b in
  let mc_c, _ = Algorithms.Cannon.multiply_multicore ~grid:2 a b in
  Alcotest.(check bool) "cannon blocks agree" true (sim_c = mc_c);
  let sim_s, _ = Algorithms.Summa.multiply_sim ~grid:2 a b in
  let mc_s, _ = Algorithms.Summa.multiply_multicore ~grid:2 a b in
  Alcotest.(check bool) "summa blocks agree" true (sim_s = mc_s);
  Alcotest.(check bool) "cannon = summa" true (sim_c = sim_s)

let test_engine_equivalence_solvers () =
  (* jacobi / heat2d / cg: bitwise-identical fixed points on both engines —
     same program body, same collective trees, same float operation order *)
  let f = Array.make 32 1.0 in
  let j_sim, _ = Algorithms.Jacobi.solve_sim ~procs:4 ~tol:1e-6 ~max_iter:500 f ~left:0.0 ~right:1.0 in
  let j_mc, _ = Algorithms.Jacobi.solve_multicore ~procs:4 ~tol:1e-6 ~max_iter:500 f ~left:0.0 ~right:1.0 in
  Alcotest.(check bool) "jacobi solutions identical" true
    (j_sim.Algorithms.Jacobi.solution = j_mc.Algorithms.Jacobi.solution);
  Alcotest.(check int) "jacobi same iteration count" j_sim.Algorithms.Jacobi.iterations
    j_mc.Algorithms.Jacobi.iterations;
  let hf = Algorithms.Heat2d.manufactured_f 12 in
  let h_sim, _ = Algorithms.Heat2d.solve_sim ~procs:4 ~tol:1e-4 ~max_iter:300 hf in
  let h_mc, _ = Algorithms.Heat2d.solve_multicore ~procs:4 ~tol:1e-4 ~max_iter:300 hf in
  Alcotest.(check bool) "heat2d fields identical" true
    (h_sim.Algorithms.Heat2d.solution = h_mc.Algorithms.Heat2d.solution);
  let b = Array.init 64 (fun i -> float_of_int (i mod 7) /. 7.0) in
  let c_sim, _ = Algorithms.Cg.solve_sim ~procs:4 ~tol:1e-8 ~max_iter:200 b in
  let c_mc, _ = Algorithms.Cg.solve_multicore ~procs:4 ~tol:1e-8 ~max_iter:200 b in
  Alcotest.(check bool) "cg solutions identical" true
    (c_sim.Algorithms.Cg.solution = c_mc.Algorithms.Cg.solution);
  Alcotest.(check int) "cg same iteration count" c_sim.Algorithms.Cg.iterations
    c_mc.Algorithms.Cg.iterations

let test_farm_on_multicore () =
  (* dynamic farm exercises recv_any on the multicore fabric; results are
     indexed, so the nondeterministic interleaving does not show *)
  let spec = Algorithms.Farm_sim.skewed_spec ~njobs:40 ~skew:8 in
  let expected = Array.init 40 (fun i -> i * i) in
  let got, _ = Algorithms.Farm_sim.dynamic_multicore ~procs:4 ~domains:4 spec in
  Alcotest.(check bool) "all jobs done once" true (got = expected)

(* --- faults: timeouts, crashes, chaos on real domains --------------------- *)

let test_mc_reduce_root_sweep () =
  (* the rotated-root ordering bug, on the real engine: every root must see
     values folded in true rank order *)
  let procs = 4 in
  let expected = String.concat "" (List.init procs string_of_int) in
  for root = 0 to procs - 1 do
    let v, _ =
      Spmd.run_multicore_collect ~procs ~domains:4 (fun c ->
          Comm.reduce c ~root ( ^ ) (string_of_int (Comm.rank c)))
    in
    Alcotest.(check string) (Printf.sprintf "root=%d" root) expected v
  done

let test_mc_recv_timeout_fires () =
  (* nobody sends: the receiver must get Fault.Timeout, not hang or Deadlock *)
  let v, _ =
    Multicore.run_collect ~procs:2 ~domains:2 (fun eng ->
        if eng.Engine.rank = 1 then
          match (eng.Engine.recv ~timeout:0.05 ~src:0 ~tag:0 () : int) with
          | _ -> Some false
          | exception Fault.Timeout _ -> Some true
        else None)
  in
  Alcotest.(check bool) "Timeout raised" true v

let test_mc_recv_timeout_in_time () =
  (* a message that arrives promptly beats a generous deadline *)
  let v, _ =
    Multicore.run_collect ~procs:2 ~domains:2 (fun eng ->
        if eng.Engine.rank = 0 then begin
          eng.Engine.send ~dest:1 ~tag:0 77;
          None
        end
        else Some (eng.Engine.recv ~timeout:10.0 ~src:0 ~tag:0 () : int))
  in
  Alcotest.(check int) "delivered" 77 v

let test_mc_crash_is_fail_stop () =
  (* a crashed rank must not fail the run nor leak its undelivered inbox *)
  let v, _ =
    Multicore.run_collect ~procs:3 ~domains:3 (fun eng ->
        match eng.Engine.rank with
        | 0 ->
            eng.Engine.send ~dest:1 ~tag:0 42;
            (* dies with the crash *)
            None
        | 1 -> raise (Fault.Crashed 1)
        | _ -> Some "alive")
  in
  Alcotest.(check string) "live ranks finish" "alive" v

let test_mc_chaos_delays_value_identical () =
  (* delay/reorder chaos on real domains: collective values unchanged *)
  let bare, _ = Spmd.run_multicore_collect ~procs:4 ~domains:4 collective_program in
  List.iter
    (fun seed ->
      let spec = Chaos.delays ~seed ~prob:0.5 ~max_hold:3 () in
      let v, _ =
        Spmd.run_multicore_collect ~procs:4 ~domains:4 ~chaos:spec collective_program
      in
      Alcotest.(check bool) (Printf.sprintf "seed=%d" seed) true (v = bare))
    [ 1; 7; 42 ]

let test_mc_farm_survives_worker_crash () =
  (* rank 2 fail-stops on its 5th communication op (mid-job); with a grace
     the master re-deals its job and the result set is still complete *)
  let njobs = 30 in
  let spec = Algorithms.Farm_sim.skewed_spec ~njobs ~skew:6 in
  let expected = Array.init njobs (fun i -> i * i) in
  let chaos = { Chaos.none with Chaos.crashes = [ (2, 5) ] } in
  let got, _ =
    Algorithms.Farm_sim.dynamic_multicore ~procs:4 ~domains:4 ~grace:0.5 ~chaos spec
  in
  Alcotest.(check bool) "all jobs done exactly once" true (got = expected)

let test_mc_chaos_stall_parks_fiber_not_domain () =
  (* Regression: chaos straggler stalls used to be [Unix.sleepf], which
     blocks the whole OS domain — on a shared domain every co-scheduled
     rank froze for the stall, not just the straggler.  Now the stall
     goes through [Engine.sleep] (a fiber-aware park).

     Both ranks share ONE domain.  Rank 1 is stalled 0.5 s at its first
     communication op; rank 0 concurrently times ten 10 ms sleeps of its
     own.  Through the old blocking path rank 0's first sleep yields to
     rank 1, whose stall then freezes the domain, so rank 0 measures
     >= 0.5 s.  With the fiber-aware park rank 0 keeps ticking and
     measures ~0.1 s. *)
  let chaos = { Chaos.none with Chaos.stalls = [ (1, 0.5) ] } in
  let elapsed, _ =
    Spmd.run_multicore_collect ~procs:2 ~domains:1 ~chaos (fun comm ->
        if Comm.rank comm = 0 then begin
          let t0 = Comm.time comm in
          for _ = 1 to 10 do
            Comm.sleep comm 0.01
          done;
          let dt = Comm.time comm -. t0 in
          Comm.send comm ~dest:1 "release";
          Some dt
        end
        else begin
          let (_ : string) = Comm.recv comm ~src:0 () in
          None
        end)
  in
  Alcotest.(check bool)
    (Printf.sprintf "straggler stall must not freeze its domain-mates (rank 0 took %.3fs)" elapsed)
    true (elapsed < 0.35)

let suite =
  [
    ( "fabric",
      [
        Alcotest.test_case "single rank" `Quick test_single_rank;
        Alcotest.test_case "ping pong" `Quick test_ping_pong;
        Alcotest.test_case "tag discipline out of order" `Quick test_tag_discipline_out_of_order;
        Alcotest.test_case "self send rejected" `Quick test_self_send_rejected;
        Alcotest.test_case "zero copy identity" `Quick test_zero_copy_identity;
      ] );
    ( "deadlock",
      [
        Alcotest.test_case "mutual recv" `Quick test_deadlock_mutual_recv;
        Alcotest.test_case "unmatched tag" `Quick test_deadlock_unmatched_tag;
        Alcotest.test_case "sender finished" `Quick test_deadlock_sender_finished;
        Alcotest.test_case "undelivered message" `Quick test_undelivered_message;
        Alcotest.test_case "rank exception propagates" `Quick test_rank_exception_propagates;
      ] );
    ( "stress",
      [
        Alcotest.test_case "seeded fabric stress (42)" `Slow (fabric_stress 42);
        Alcotest.test_case "seeded fabric stress (1337)" `Slow (fabric_stress 1337);
        Alcotest.test_case "barrier 1000 rounds" `Slow test_barrier_rounds;
        Alcotest.test_case "8 ranks on 2 domains" `Quick test_multiplexed_ranks;
      ] );
    ( "engine-equivalence",
      [
        Alcotest.test_case "collectives p=1/2/4" `Quick test_engine_equivalence_collectives;
        Alcotest.test_case "hyperquicksort p=1/2/4" `Quick test_engine_equivalence_hyperquicksort;
        Alcotest.test_case "cannon and summa" `Quick test_engine_equivalence_cannon_summa;
        Alcotest.test_case "jacobi/heat2d/cg" `Slow test_engine_equivalence_solvers;
        Alcotest.test_case "dynamic farm (recv_any)" `Quick test_farm_on_multicore;
      ] );
    ( "faults",
      [
        Alcotest.test_case "reduce root sweep" `Quick test_mc_reduce_root_sweep;
        Alcotest.test_case "recv timeout fires" `Quick test_mc_recv_timeout_fires;
        Alcotest.test_case "in-time delivery beats deadline" `Quick test_mc_recv_timeout_in_time;
        Alcotest.test_case "crash is fail-stop" `Quick test_mc_crash_is_fail_stop;
        Alcotest.test_case "chaos delays preserve values" `Quick
          test_mc_chaos_delays_value_identical;
        Alcotest.test_case "farm survives worker crash" `Quick test_mc_farm_survives_worker_crash;
        Alcotest.test_case "chaos stall parks fiber not domain" `Quick
          test_mc_chaos_stall_parks_fiber_not_domain;
      ] );
  ]

(* --- allocation-free hot path ------------------------------------------------- *)

let test_slice_zero_copy_roundtrip () =
  (* a received slice aliases the sender's storage: zero copy, same words *)
  let ok, _ =
    Multicore.run_collect ~procs:2 ~domains:1 (fun eng ->
        if eng.Engine.rank = 0 then begin
          let s = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 64 in
          for i = 0 to 63 do
            s.{i} <- float_of_int i *. 2.0
          done;
          eng.Engine.send_slice ~dest:1 ~tag:1 s;
          let (echoed : bool) = eng.Engine.recv ~src:1 ~tag:2 () in
          Some echoed
        end
        else begin
          let s = eng.Engine.recv_slice ~src:0 ~tag:1 () in
          let good = ref (Bigarray.Array1.dim s = 64) in
          for i = 0 to 63 do
            if s.{i} <> float_of_int i *. 2.0 then good := false
          done;
          eng.Engine.send ~dest:0 ~tag:2 !good;
          None
        end)
  in
  Alcotest.(check bool) "slice contents survive zero-copy handoff" true ok

let test_send_recv_allocation_free () =
  (* The claim measured through [Gc.minor_words] inside the rank's own
     fiber: a seeded 10k-message ping-pong whose steady-state receives are
     satisfied from the pending ring (domains:1 interleaves the two fibers
     on one domain, so a sent message is already drained by the time the
     peer looks).  The payload is a preallocated immediate (int), so any
     minor-heap growth would come from the fabric itself — packet boxing,
     closure capture, option wrapping.  The measurement brackets only the
     loop; a slack of a few hundred words absorbs the [Gc.minor_words]
     call's own float boxing and effect-handler warmup, while a per-message
     allocation of even one word would show up as >= 10k. *)
  let batch = 1_000 and batches = 10 in
  let rounds = batch * batches in
  let delta, _ =
    Multicore.run_collect ~procs:2 ~domains:1 (fun eng ->
        if eng.Engine.rank = 0 then begin
          (* Warm up with one full batch: grows both mailbox rings to their
             steady-state capacity and exercises the effect handler once, so
             the measured batches run entirely on recycled storage.  A batched
             shape (send [batch], then recv [batch]) parks each fiber at most
             once per batch instead of once per message — parking itself
             allocates a continuation, which is scheduler bookkeeping, not a
             per-message cost. *)
          for _ = 1 to batch do
            eng.Engine.send ~dest:1 ~tag:3 7
          done;
          for _ = 1 to batch do
            ignore (eng.Engine.recv ~src:1 ~tag:4 () : int)
          done;
          let w0 = Gc.minor_words () in
          for _ = 1 to batches do
            for i = 1 to batch do
              eng.Engine.send ~dest:1 ~tag:3 i
            done;
            for _ = 1 to batch do
              ignore (eng.Engine.recv ~src:1 ~tag:4 () : int)
            done
          done;
          let w1 = Gc.minor_words () in
          Some (int_of_float (w1 -. w0))
        end
        else begin
          for _ = 1 to batches + 1 do
            for _ = 1 to batch do
              ignore (eng.Engine.recv ~src:0 ~tag:3 () : int)
            done;
            for i = 1 to batch do
              eng.Engine.send ~dest:0 ~tag:4 i
            done
          done;
          None
        end)
  in
  Alcotest.(check bool)
    (Printf.sprintf "minor words for %d messages: %d" rounds delta)
    true (delta < 2_000)

let test_minor_words_counter_surfaced () =
  (* the [mc.minor_words] obs counter reports per-domain allocation *)
  Obs.enable ();
  Obs.reset ();
  let _ = Multicore.run ~procs:2 ~domains:1 (fun eng -> ignore (Comm.world eng)) in
  let c = Obs.Metrics.counter_value "mc.minor_words" in
  Obs.disable ();
  Alcotest.(check bool) "counter present and positive" true
    (match c with Some v -> v > 0 | None -> false)

let suite =
  suite
  @ [
      ( "alloc-free",
        [
          Alcotest.test_case "slice zero-copy roundtrip" `Quick test_slice_zero_copy_roundtrip;
          Alcotest.test_case "10k ping-pong allocates nothing" `Quick
            test_send_recv_allocation_free;
          Alcotest.test_case "mc.minor_words surfaced" `Quick test_minor_words_counter_surfaced;
        ] );
    ]

let () = Alcotest.run "multicore" suite
