(* Tests for the multicore substrate: backoff, PRNG, deque, queue, pool,
   barrier. *)

open Runtime

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* --- Xoshiro ------------------------------------------------------------ *)

let test_xoshiro_deterministic () =
  let a = Xoshiro.of_seed 42 and b = Xoshiro.of_seed 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Xoshiro.next_int64 a) (Xoshiro.next_int64 b)
  done

let test_xoshiro_seed_sensitivity () =
  let a = Xoshiro.of_seed 1 and b = Xoshiro.of_seed 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Xoshiro.next_int64 a = Xoshiro.next_int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_xoshiro_copy () =
  let a = Xoshiro.of_seed 7 in
  ignore (Xoshiro.next_int64 a);
  let b = Xoshiro.copy a in
  Alcotest.(check int64) "copy continues identically" (Xoshiro.next_int64 a) (Xoshiro.next_int64 b)

let test_xoshiro_split_independent () =
  let parent = Xoshiro.of_seed 9 in
  let child = Xoshiro.split parent in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Xoshiro.next_int64 parent = Xoshiro.next_int64 child then incr same
  done;
  Alcotest.(check bool) "split stream differs" true (!same < 4)

let test_xoshiro_bounds () =
  let r = Xoshiro.of_seed 3 in
  for _ = 1 to 10_000 do
    let v = Xoshiro.int r 17 in
    if v < 0 || v >= 17 then Alcotest.fail "int out of bounds";
    let f = Xoshiro.float r 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.fail "float out of bounds"
  done

let test_xoshiro_int_rejects () =
  Alcotest.check_raises "bound 0" (Invalid_argument "Xoshiro.int: bound must be positive") (fun () ->
      ignore (Xoshiro.int (Xoshiro.of_seed 0) 0))

let test_xoshiro_nth_child () =
  (* nth_child must agree with n+1 manual splits, and must not mutate its
     argument (replays depend on both). *)
  let manual = Xoshiro.of_seed 42 in
  let expected =
    let c = ref (Xoshiro.split manual) in
    for _ = 1 to 5 do
      c := Xoshiro.split manual
    done;
    !c
  in
  let master = Xoshiro.of_seed 42 in
  let child = Xoshiro.nth_child master 5 in
  Alcotest.(check int64) "same as 6 splits" (Xoshiro.next_int64 expected) (Xoshiro.next_int64 child);
  let untouched = Xoshiro.of_seed 42 in
  ignore (Xoshiro.nth_child master 3);
  Alcotest.(check int64) "master not mutated" (Xoshiro.next_int64 untouched)
    (Xoshiro.next_int64 master);
  Alcotest.check_raises "negative index" (Invalid_argument "Xoshiro.nth_child: negative index")
    (fun () -> ignore (Xoshiro.nth_child master (-1)))

let test_xoshiro_uniformity () =
  (* Chi-square-ish sanity: 10 buckets, 100k draws, each bucket within 10%. *)
  let r = Xoshiro.of_seed 123 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Xoshiro.int r 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      if abs (c - (n / 10)) > n / 100 then
        Alcotest.failf "bucket %d count %d too far from %d" i c (n / 10))
    buckets

(* --- Ws_deque ------------------------------------------------------------ *)

let test_deque_lifo () =
  let d = Ws_deque.create () in
  for i = 1 to 100 do
    Ws_deque.push d i
  done;
  for i = 100 downto 1 do
    Alcotest.(check int) "pop order" i (Ws_deque.pop d)
  done;
  Alcotest.check_raises "empty" Ws_deque.Empty (fun () -> ignore (Ws_deque.pop d))

let test_deque_steal_fifo () =
  let d = Ws_deque.create () in
  for i = 1 to 50 do
    Ws_deque.push d i
  done;
  for i = 1 to 50 do
    Alcotest.(check int) "steal order" i (Ws_deque.steal d)
  done;
  Alcotest.check_raises "empty" Ws_deque.Empty (fun () -> ignore (Ws_deque.steal d))

let test_deque_grow () =
  let d = Ws_deque.create () in
  let n = 10_000 in
  for i = 0 to n - 1 do
    Ws_deque.push d i
  done;
  Alcotest.(check int) "size" n (Ws_deque.size d);
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Ws_deque.pop d
  done;
  Alcotest.(check int) "all elements survive growth" (n * (n - 1) / 2) !sum

let test_deque_mixed () =
  let d = Ws_deque.create () in
  Ws_deque.push d 1;
  Ws_deque.push d 2;
  Ws_deque.push d 3;
  Alcotest.(check int) "steal oldest" 1 (Ws_deque.steal d);
  Alcotest.(check int) "pop newest" 3 (Ws_deque.pop d);
  Alcotest.(check int) "last" 2 (Ws_deque.pop d);
  Alcotest.(check bool) "empty" true (Ws_deque.is_empty d)

let test_deque_concurrent_steal () =
  (* One owner pushes/pops, several thieves steal; every element must be
     consumed exactly once. *)
  let d = Ws_deque.create () in
  let n = 20_000 and nthieves = 3 in
  let stolen = Array.init nthieves (fun _ -> Atomic.make 0) in
  let popped = Atomic.make 0 in
  let produced = Atomic.make false in
  let thief k () =
    let my = stolen.(k) in
    let rec loop () =
      if (not (Atomic.get produced)) || not (Ws_deque.is_empty d) then begin
        (match Ws_deque.steal d with
        | v -> Atomic.set my (Atomic.get my + v)
        | exception Ws_deque.Empty -> Domain.cpu_relax ());
        loop ()
      end
    in
    loop ()
  in
  let thieves = Array.init nthieves (fun k -> Domain.spawn (thief k)) in
  for i = 1 to n do
    Ws_deque.push d i;
    if i mod 3 = 0 then
      match Ws_deque.pop d with
      | v -> Atomic.set popped (Atomic.get popped + v)
      | exception Ws_deque.Empty -> ()
  done;
  (* Drain what's left as the owner. *)
  let rec drain () =
    match Ws_deque.pop d with
    | v ->
        Atomic.set popped (Atomic.get popped + v);
        drain ()
    | exception Ws_deque.Empty -> if not (Ws_deque.is_empty d) then drain ()
  in
  drain ();
  Atomic.set produced true;
  Array.iter Domain.join thieves;
  let total =
    Atomic.get popped + Array.fold_left (fun acc a -> acc + Atomic.get a) 0 stolen
  in
  Alcotest.(check int) "every element consumed exactly once" (n * (n + 1) / 2) total

(* --- Mpmc_queue ---------------------------------------------------------- *)

let test_queue_fifo () =
  let q = Mpmc_queue.create () in
  for i = 1 to 10 do
    Mpmc_queue.push q i
  done;
  for i = 1 to 10 do
    Alcotest.(check int) "fifo" i (Mpmc_queue.pop q)
  done;
  Alcotest.(check bool) "empty" true (Mpmc_queue.is_empty q)

let test_queue_try_pop () =
  let q = Mpmc_queue.create () in
  Alcotest.(check (option int)) "empty" None (Mpmc_queue.try_pop q);
  Mpmc_queue.push q 5;
  Alcotest.(check (option int)) "value" (Some 5) (Mpmc_queue.try_pop q)

let test_queue_close () =
  let q = Mpmc_queue.create () in
  Mpmc_queue.push q 1;
  Mpmc_queue.close q;
  Alcotest.check_raises "push after close" Mpmc_queue.Closed (fun () -> Mpmc_queue.push q 2);
  Alcotest.check_raises "pop after close+drain" Mpmc_queue.Closed (fun () ->
      ignore (Mpmc_queue.pop q);
      ignore (Mpmc_queue.pop q))

let test_queue_blocking_producer_consumer () =
  let q = Mpmc_queue.create () in
  let n = 5_000 in
  let consumer =
    Domain.spawn (fun () ->
        let acc = ref 0 in
        (try
           while true do
             acc := !acc + Mpmc_queue.pop q
           done
         with Mpmc_queue.Closed -> ());
        !acc)
  in
  for i = 1 to n do
    Mpmc_queue.push q i
  done;
  Mpmc_queue.close q;
  Alcotest.(check int) "consumer got everything" (n * (n + 1) / 2) (Domain.join consumer)

(* --- Pool ----------------------------------------------------------------- *)

let with_pool ?(num_domains = 3) f =
  let pool = Pool.create ~num_domains () in
  Fun.protect ~finally:(fun () -> Pool.teardown pool) (fun () -> f pool)

let test_pool_async_await () =
  with_pool (fun pool ->
      let p = Pool.async pool (fun () -> 21 * 2) in
      Alcotest.(check int) "await" 42 (Pool.await pool p))

let test_pool_run () =
  with_pool (fun pool -> Alcotest.(check string) "run" "ok" (Pool.run pool (fun () -> "ok")))

let test_pool_exception () =
  with_pool (fun pool ->
      let p = Pool.async pool (fun () -> failwith "boom") in
      Alcotest.check_raises "propagates" (Failure "boom") (fun () -> ignore (Pool.await pool p)))

let test_pool_parallel_for_sum () =
  with_pool (fun pool ->
      let n = 100_000 in
      let acc = Array.make n 0 in
      Pool.parallel_for pool ~lo:0 ~hi:n (fun i -> acc.(i) <- i);
      let total = Array.fold_left ( + ) 0 acc in
      Alcotest.(check int) "sum" (n * (n - 1) / 2) total)

let test_pool_parallel_for_empty () =
  with_pool (fun pool ->
      let hit = ref false in
      Pool.parallel_for pool ~lo:5 ~hi:5 (fun _ -> hit := true);
      Pool.parallel_for pool ~lo:5 ~hi:4 (fun _ -> hit := true);
      Alcotest.(check bool) "no iterations" false !hit)

let test_pool_parallel_for_reduce () =
  with_pool (fun pool ->
      let n = 50_000 in
      let total =
        Pool.parallel_for_reduce pool ~lo:1 ~hi:(n + 1) ~body:Fun.id ~combine:( + ) ~init:0
      in
      Alcotest.(check int) "reduce" (n * (n + 1) / 2) total)

let test_pool_nested_fork_join () =
  with_pool (fun pool ->
      let rec fib n =
        if n < 2 then n
        else begin
          let a = Pool.async pool (fun () -> fib (n - 1)) in
          let b = fib (n - 2) in
          Pool.await pool a + b
        end
      in
      Alcotest.(check int) "fib 18" 2584 (fib 18))

let test_pool_map_array () =
  with_pool (fun pool ->
      let a = Array.init 1_000 Fun.id in
      let b = Pool.map_array pool (fun x -> x * x) a in
      Alcotest.(check bool) "squares" true (Array.for_all2 (fun x y -> y = x * x) a b))

let test_pool_init_array () =
  with_pool (fun pool ->
      let a = Pool.init_array pool 777 (fun i -> i * 3) in
      Alcotest.(check int) "len" 777 (Array.length a);
      Alcotest.(check bool) "vals" true (Array.for_all2 ( = ) a (Array.init 777 (fun i -> i * 3))))

let test_pool_zero_workers () =
  (* Degenerate pool: everything runs in the caller's helping loop. *)
  with_pool ~num_domains:0 (fun pool ->
      let total =
        Pool.parallel_for_reduce pool ~lo:0 ~hi:1_000 ~body:Fun.id ~combine:( + ) ~init:0
      in
      Alcotest.(check int) "works with 0 workers" (999 * 1000 / 2) total)

let test_pool_after_teardown () =
  let pool = Pool.create ~num_domains:1 () in
  Pool.teardown pool;
  Pool.teardown pool (* idempotent *);
  Alcotest.check_raises "async rejected" (Invalid_argument "Pool.async: pool is shut down")
    (fun () -> ignore (Pool.async pool (fun () -> ())))

let test_pool_spawn_counts_exceptions () =
  (* A bare (promise-less) task that raises must not kill its worker, and
     the swallowed exception must show up in stats rather than vanish. *)
  with_pool ~num_domains:2 (fun pool ->
      let ran = Atomic.make 0 in
      for i = 0 to 15 do
        Pool.spawn pool (fun () ->
            Atomic.incr ran;
            if i mod 2 = 0 then failwith "task bug")
      done;
      let deadline = Unix.gettimeofday () +. 10.0 in
      while Atomic.get ran < 16 && Unix.gettimeofday () < deadline do
        Domain.cpu_relax ()
      done;
      Alcotest.(check int) "all tasks ran" 16 (Atomic.get ran);
      (* the raising half is counted once the workers are done with them;
         the non-atomic window between [Atomic.incr ran] and the counter
         update is closed by polling the stat itself *)
      let deadline = Unix.gettimeofday () +. 10.0 in
      while (Pool.stats pool).Pool.task_exceptions < 8 && Unix.gettimeofday () < deadline do
        Domain.cpu_relax ()
      done;
      Alcotest.(check int) "raising tasks counted" 8 (Pool.stats pool).Pool.task_exceptions;
      (* workers survived: the pool still runs work *)
      Alcotest.(check int) "pool still alive" 7 (Pool.run pool (fun () -> 3 + 4)))

let test_pool_actually_parallel () =
  (* With 3 workers + helping caller, 4 tasks spinning on a shared countdown
     can only finish if they run concurrently. *)
  with_pool ~num_domains:3 (fun pool ->
      let counter = Atomic.make 4 in
      let task () =
        Atomic.decr counter;
        let deadline = Unix.gettimeofday () +. 10.0 in
        while Atomic.get counter > 0 && Unix.gettimeofday () < deadline do
          Domain.cpu_relax ()
        done;
        Atomic.get counter = 0
      in
      let ps = List.init 4 (fun _ -> Pool.async pool task) in
      let ok = List.for_all (fun p -> Pool.await pool p) ps in
      Alcotest.(check bool) "all tasks overlapped" true ok)

let prop_parallel_reduce_matches_seq =
  qtest ~count:50 "parallel_for_reduce = sequential fold"
    QCheck.(list small_int)
    (fun xs ->
      let a = Array.of_list xs in
      with_pool ~num_domains:2 (fun pool ->
          let par =
            Pool.parallel_for_reduce pool ~lo:0 ~hi:(Array.length a)
              ~body:(fun i -> a.(i))
              ~combine:( + ) ~init:0
          in
          par = Array.fold_left ( + ) 0 a))

(* --- Barrier -------------------------------------------------------------- *)

let test_barrier_phases () =
  let n = 4 in
  let b = Barrier.create n in
  let phases = 50 in
  let log = Array.make n 0 in
  let worker i () =
    for _ = 1 to phases do
      log.(i) <- log.(i) + 1;
      Barrier.await b;
      (* After the barrier, everyone must have incremented this phase. *)
      let mine = log.(i) in
      Array.iteri (fun _ v -> if v < mine - 1 then failwith "barrier violated") log;
      Barrier.await b
    done
  in
  let ds = Array.init (n - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  Array.iter Domain.join ds;
  Array.iter (fun v -> Alcotest.(check int) "phases" phases v) log

let test_barrier_invalid () =
  Alcotest.check_raises "zero parties" (Invalid_argument "Barrier.create: parties must be positive")
    (fun () -> ignore (Barrier.create 0))

(* --- additional pool coverage ---------------------------------------------- *)

let test_pool_await_from_another_domain () =
  (* A promise created inside the pool can be awaited from a foreign
     domain: it helps via the injection/steal paths. *)
  with_pool (fun pool ->
      let p = Pool.async pool (fun () -> 123) in
      let d = Domain.spawn (fun () -> Pool.await pool p) in
      Alcotest.(check int) "foreign await" 123 (Domain.join d))

let test_pool_concurrent_submitters () =
  (* Several domains submit work to the same pool concurrently. *)
  with_pool ~num_domains:2 (fun pool ->
      let submitters =
        List.init 4 (fun k ->
            Domain.spawn (fun () ->
                Pool.parallel_for_reduce pool ~lo:0 ~hi:1_000
                  ~body:(fun i -> i + k)
                  ~combine:( + ) ~init:0))
      in
      let results = List.map Domain.join submitters in
      List.iteri
        (fun k total ->
          Alcotest.(check int) (Printf.sprintf "submitter %d" k) ((999 * 1000 / 2) + (1000 * k)) total)
        results)

let test_pool_deep_nesting () =
  (* Deeply nested async/await must not deadlock even with 1 worker. *)
  with_pool ~num_domains:1 (fun pool ->
      let rec nest depth = if depth = 0 then 1 else 1 + Pool.await pool (Pool.async pool (fun () -> nest (depth - 1))) in
      Alcotest.(check int) "depth 200" 201 (nest 200))

let test_pool_many_small_tasks () =
  with_pool (fun pool ->
      let n = 10_000 in
      let counter = Atomic.make 0 in
      let ps = List.init n (fun _ -> Pool.async pool (fun () -> Atomic.incr counter)) in
      List.iter (fun p -> Pool.await pool p) ps;
      Alcotest.(check int) "all ran exactly once" n (Atomic.get counter))

let test_pool_parallel_for_grain_one () =
  with_pool (fun pool ->
      let hits = Array.make 64 0 in
      Pool.parallel_for ~grain:1 pool ~lo:0 ~hi:64 (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "each index exactly once" true (Array.for_all (( = ) 1) hits))

let test_pool_grain_for_bytes () =
  (* pins the bytes-aware chunking on a 2-worker pool: the 2 KiB floor is
     256 elements at 8 bytes each, so it wins over the balance term
     (ceil (1000/8) = 125) at n=1000, collapses n=100 to a single task,
     and is invisible for large n where the balance term dominates *)
  with_pool ~num_domains:2 (fun pool ->
      let gb = Pool.grain_for_bytes pool ~elem_bytes:8 in
      Alcotest.(check int) "n=0" 1 (gb 0);
      Alcotest.(check int) "byte floor beats balance at n=1000" 256 (gb 1000);
      Alcotest.(check int) "boxed grain would have chunked finer" 125 (Pool.grain_for pool 1000);
      Alcotest.(check int) "small array runs as one task" 100 (gb 100);
      Alcotest.(check int) "large n: balance term identical to grain_for"
        (Pool.grain_for pool 100_000)
        (gb 100_000);
      Alcotest.(check int) "1-byte elements push the floor to 2048 elems" 1000
        (Pool.grain_for_bytes pool ~elem_bytes:1 1000))

let test_pool_reduce_non_commutative () =
  with_pool (fun pool ->
      let n = 300 in
      let expect = String.concat "" (List.init n string_of_int) in
      let got =
        Pool.parallel_for_reduce pool ~lo:0 ~hi:n ~body:string_of_int ~combine:( ^ ) ~init:""
      in
      Alcotest.(check string) "order preserved" expect got)

let prop_pool_map_matches_seq =
  qtest ~count:30 "map_array = Array.map under contention"
    QCheck.(list small_int)
    (fun xs ->
      let a = Array.of_list xs in
      with_pool ~num_domains:2 (fun pool ->
          Pool.map_array pool (fun x -> (x * 17) mod 23) a = Array.map (fun x -> (x * 17) mod 23) a))

(* --- seeded randomized stress (lib/prop-style: deterministic schedules
   from Xoshiro seeds; only the physical interleaving varies) ------------- *)

let test_deque_seeded_stress () =
  (* 4 domains: the owner (this one) runs a seeded push/pop schedule while
     3 thieves steal concurrently. Every pushed element must be consumed
     exactly once: compare count / sum / sum-of-squares of the popped and
     stolen multiset against what was pushed. *)
  List.iter
    (fun seed ->
      let rng = Xoshiro.of_seed seed in
      let n_ops = 4000 in
      let ops =
        Array.init n_ops (fun _ ->
            if Xoshiro.int rng 3 < 2 then `Push (Xoshiro.int rng 1_000_000) else `Pop)
      in
      let dq = Ws_deque.create () in
      let done_ = Atomic.make false in
      let thieves =
        List.init 3 (fun _ ->
            Domain.spawn (fun () ->
                let got = ref [] in
                while not (Atomic.get done_) do
                  match Ws_deque.steal dq with
                  | v -> got := v :: !got
                  | exception Ws_deque.Empty -> Domain.cpu_relax ()
                done;
                !got))
      in
      let pushed_cnt = ref 0 and pushed_sum = ref 0 and pushed_sq = ref 0 in
      let consumed = ref [] in
      Array.iter
        (function
          | `Push v ->
              Ws_deque.push dq v;
              incr pushed_cnt;
              pushed_sum := !pushed_sum + v;
              pushed_sq := !pushed_sq + (v * v)
          | `Pop -> (
              match Ws_deque.pop dq with
              | v -> consumed := v :: !consumed
              | exception Ws_deque.Empty -> ()))
        ops;
      Atomic.set done_ true;
      List.iter (fun d -> consumed := Domain.join d @ !consumed) thieves;
      (* all thieves have stopped: the owner's drain is now definitive *)
      let rec drain () =
        match Ws_deque.pop dq with
        | v ->
            consumed := v :: !consumed;
            drain ()
        | exception Ws_deque.Empty -> ()
      in
      drain ();
      let cnt = List.length !consumed in
      let sum = List.fold_left ( + ) 0 !consumed in
      let sq = List.fold_left (fun acc v -> acc + (v * v)) 0 !consumed in
      Alcotest.(check int) (Printf.sprintf "seed %d: count" seed) !pushed_cnt cnt;
      Alcotest.(check int) (Printf.sprintf "seed %d: sum" seed) !pushed_sum sum;
      Alcotest.(check int) (Printf.sprintf "seed %d: sum of squares" seed) !pushed_sq sq)
    [ 42; 1337 ]

let test_queue_seeded_stress () =
  (* 4 domains: 2 producers with seeded value streams, 2 consumers popping
     until close; the consumed multiset must equal the produced one. *)
  List.iter
    (fun seed ->
      let q = Mpmc_queue.create () in
      let per_producer = 3000 in
      let producers =
        List.init 2 (fun p ->
            Domain.spawn (fun () ->
                let rng = Xoshiro.of_seed (seed + p) in
                let sum = ref 0 and sq = ref 0 in
                for _ = 1 to per_producer do
                  let v = Xoshiro.int rng 1_000_000 in
                  Mpmc_queue.push q v;
                  sum := !sum + v;
                  sq := !sq + (v * v)
                done;
                (!sum, !sq)))
      in
      let consumers =
        List.init 2 (fun _ ->
            Domain.spawn (fun () ->
                let cnt = ref 0 and sum = ref 0 and sq = ref 0 in
                (try
                   while true do
                     let v = Mpmc_queue.pop q in
                     incr cnt;
                     sum := !sum + v;
                     sq := !sq + (v * v)
                   done
                 with Mpmc_queue.Closed -> ());
                (!cnt, !sum, !sq)))
      in
      let produced = List.map Domain.join producers in
      Mpmc_queue.close q;
      let consumed = List.map Domain.join consumers in
      let psum = List.fold_left (fun a (s, _) -> a + s) 0 produced in
      let psq = List.fold_left (fun a (_, s) -> a + s) 0 produced in
      let ccnt = List.fold_left (fun a (c, _, _) -> a + c) 0 consumed in
      let csum = List.fold_left (fun a (_, s, _) -> a + s) 0 consumed in
      let csq = List.fold_left (fun a (_, _, s) -> a + s) 0 consumed in
      Alcotest.(check int) (Printf.sprintf "seed %d: count" seed) (2 * per_producer) ccnt;
      Alcotest.(check int) (Printf.sprintf "seed %d: sum" seed) psum csum;
      Alcotest.(check int) (Printf.sprintf "seed %d: sum of squares" seed) psq csq)
    [ 42; 1337 ]

let test_barrier_two_pools_coexist () =
  (* Two pools can run side by side without interference. *)
  let p1 = Pool.create ~num_domains:1 () in
  let p2 = Pool.create ~num_domains:1 () in
  Fun.protect
    ~finally:(fun () ->
      Pool.teardown p1;
      Pool.teardown p2)
    (fun () ->
      let a = Pool.async p1 (fun () -> Pool.run p2 (fun () -> 5)) in
      Alcotest.(check int) "nested pools" 5 (Pool.await p1 a))

let suite =
  [
    ( "xoshiro",
      [
        Alcotest.test_case "deterministic" `Quick test_xoshiro_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_xoshiro_seed_sensitivity;
        Alcotest.test_case "copy" `Quick test_xoshiro_copy;
        Alcotest.test_case "split independence" `Quick test_xoshiro_split_independent;
        Alcotest.test_case "nth_child replay" `Quick test_xoshiro_nth_child;
        Alcotest.test_case "bounds" `Quick test_xoshiro_bounds;
        Alcotest.test_case "int rejects bad bound" `Quick test_xoshiro_int_rejects;
        Alcotest.test_case "uniformity" `Slow test_xoshiro_uniformity;
      ] );
    ( "ws_deque",
      [
        Alcotest.test_case "lifo pop" `Quick test_deque_lifo;
        Alcotest.test_case "fifo steal" `Quick test_deque_steal_fifo;
        Alcotest.test_case "growth" `Quick test_deque_grow;
        Alcotest.test_case "mixed pop/steal" `Quick test_deque_mixed;
        Alcotest.test_case "concurrent steal" `Slow test_deque_concurrent_steal;
        Alcotest.test_case "seeded 4-domain stress" `Slow test_deque_seeded_stress;
      ] );
    ( "mpmc_queue",
      [
        Alcotest.test_case "fifo" `Quick test_queue_fifo;
        Alcotest.test_case "try_pop" `Quick test_queue_try_pop;
        Alcotest.test_case "close" `Quick test_queue_close;
        Alcotest.test_case "blocking consumer" `Slow test_queue_blocking_producer_consumer;
        Alcotest.test_case "seeded 4-domain stress" `Slow test_queue_seeded_stress;
      ] );
    ( "pool",
      [
        Alcotest.test_case "async/await" `Quick test_pool_async_await;
        Alcotest.test_case "run" `Quick test_pool_run;
        Alcotest.test_case "exception propagation" `Quick test_pool_exception;
        Alcotest.test_case "parallel_for sum" `Quick test_pool_parallel_for_sum;
        Alcotest.test_case "parallel_for empty range" `Quick test_pool_parallel_for_empty;
        Alcotest.test_case "parallel_for_reduce" `Quick test_pool_parallel_for_reduce;
        Alcotest.test_case "nested fork/join" `Quick test_pool_nested_fork_join;
        Alcotest.test_case "map_array" `Quick test_pool_map_array;
        Alcotest.test_case "init_array" `Quick test_pool_init_array;
        Alcotest.test_case "zero workers" `Quick test_pool_zero_workers;
        Alcotest.test_case "teardown semantics" `Quick test_pool_after_teardown;
        Alcotest.test_case "spawn counts exceptions" `Quick test_pool_spawn_counts_exceptions;
        Alcotest.test_case "true parallelism" `Slow test_pool_actually_parallel;
        prop_parallel_reduce_matches_seq;
      ] );
    ( "barrier",
      [
        Alcotest.test_case "phases" `Slow test_barrier_phases;
        Alcotest.test_case "invalid parties" `Quick test_barrier_invalid;
      ] );
    ( "pool_extra",
      [
        Alcotest.test_case "await from another domain" `Quick test_pool_await_from_another_domain;
        Alcotest.test_case "concurrent submitters" `Slow test_pool_concurrent_submitters;
        Alcotest.test_case "deep nesting" `Quick test_pool_deep_nesting;
        Alcotest.test_case "many small tasks" `Slow test_pool_many_small_tasks;
        Alcotest.test_case "grain 1" `Quick test_pool_parallel_for_grain_one;
        Alcotest.test_case "bytes-aware grain" `Quick test_pool_grain_for_bytes;
        Alcotest.test_case "non-commutative reduce order" `Quick test_pool_reduce_non_commutative;
        prop_pool_map_matches_seq;
        Alcotest.test_case "two pools coexist" `Quick test_barrier_two_pools_coexist;
      ] );
  ]

let () = Alcotest.run "runtime" suite
