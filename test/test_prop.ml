(* Tests for the property-based testing engine (lib/prop) and its two
   oracles: engine determinism and shrinking, typed pipeline generation,
   per-rule meaning preservation, injected-fault shrinking, backend
   error-taxonomy agreement, and a differential smoke run incl. the
   multicore pool backend. *)

open Transform

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

(* --- generator engine ------------------------------------------------------- *)

let test_gen_deterministic () =
  let g = Prop.Gen.list_size (Prop.Gen.int_range 0 20) (Prop.Gen.int_range (-50) 50) in
  let a = Prop.Gen.generate ~seed:7 g in
  let b = Prop.Gen.generate ~seed:7 g in
  let c = Prop.Gen.generate ~seed:8 g in
  check Alcotest.(list int) "same seed, same value" a b;
  checkb "different seed differs somewhere"
    (a <> c
    || Prop.Gen.generate ~seed:7 Prop.Gen.bool <> Prop.Gen.generate ~seed:8 Prop.Gen.bool)
    true

let test_int_range_bounds () =
  let rng = Runtime.Xoshiro.of_seed 3 in
  for _ = 1 to 1000 do
    let x = (Prop.Gen.int_range (-5) 17) ~size:10 rng in
    checkb "in range" (x >= -5 && x <= 17) true
  done;
  check Alcotest.int "singleton range" 4 (Prop.Gen.generate ~seed:1 (Prop.Gen.int_range 4 4))

let test_frequency_weights () =
  (* weight-0 alternatives must never be chosen *)
  let g = Prop.Gen.frequency [ (0, Prop.Gen.return `Never); (1, Prop.Gen.return `Always) ] in
  let rng = Runtime.Xoshiro.of_seed 5 in
  for _ = 1 to 200 do
    checkb "never picks weight 0" (g ~size:10 rng = `Always) true
  done

let test_shrink_int () =
  (* greedy re-shrinking from any start must converge to 0 *)
  let rec minimise x fuel =
    if fuel = 0 then x
    else
      match Seq.uncons (Prop.Shrink.int x) with
      | Some (c, _) -> minimise c (fuel - 1)
      | None -> x
  in
  check Alcotest.int "1234 converges" 0 (minimise 1234 100);
  check Alcotest.int "-77 converges" 0 (minimise (-77) 100);
  checkb "0 has no candidates" (Seq.is_empty (Prop.Shrink.int 0)) true

let test_shrink_list_removal () =
  let cands = List.of_seq (Prop.Shrink.list [ 1; 2; 3; 4 ]) in
  checkb "offers the empty list" (List.mem [] cands) true;
  List.iter (fun c -> checkb "candidates are shorter" (List.length c < 4) true) cands

let test_runner_finds_and_shrinks () =
  (* property "x < 10" over 0..1000: must fail and shrink to exactly 10 *)
  let outcome =
    Prop.Runner.check
      ~config:{ Prop.Runner.default with count = 500; max_size = 100; seed = 11 }
      ~shrink:Prop.Shrink.int
      ~gen:(Prop.Gen.int_range 0 1000)
      ~prop:(fun x -> if x < 10 then Prop.Runner.Pass_case else Prop.Runner.Fail_case "too big")
      ()
  in
  match outcome with
  | Prop.Runner.Fail f ->
      check Alcotest.int "shrunk to boundary" 10 f.Prop.Runner.shrunk;
      checkb "original at least boundary" (f.Prop.Runner.original >= 10) true
  | _ -> Alcotest.fail "expected a failure"

let test_runner_pass_and_replay () =
  let gen = Prop.Gen.pair (Prop.Gen.int_range 0 50) (Prop.Gen.int_range 0 50) in
  let outcome =
    Prop.Runner.check
      ~config:{ Prop.Runner.default with count = 50; seed = 9 }
      ~gen
      ~prop:(fun (a, b) -> if a + b = b + a then Prop.Runner.Pass_case else Prop.Runner.Fail_case "!")
      ()
  in
  (match outcome with
  | Prop.Runner.Pass { checked; _ } -> check Alcotest.int "checked all" 50 checked
  | _ -> Alcotest.fail "expected pass");
  (* replay regenerates the exact case from (seed, index, size) *)
  let config = { Prop.Runner.default with seed = 9 } in
  let direct =
    let master = Runtime.Xoshiro.of_seed 9 in
    let rng = ref (Runtime.Xoshiro.split master) in
    for _ = 1 to 3 do
      rng := Runtime.Xoshiro.split master
    done;
    gen ~size:5 !rng
  in
  check
    Alcotest.(pair int int)
    "replay = direct" direct
    (Prop.Runner.replay ~config ~gen ~case_index:3 ~size:5)

(* --- typed pipeline generator ----------------------------------------------- *)

let test_pipeline_gen_well_typed () =
  (* every generated pipeline must evaluate without exceptions *)
  let outcome =
    Prop.Runner.check
      ~config:{ Prop.Runner.default with count = 300; seed = 42 }
      ~gen:(Prop.Pipe_gen.gen ())
      ~prop:(fun c ->
        match Ast.eval (Prop.Pipe_gen.expr c) c.Prop.Pipe_gen.input with
        | _ -> Prop.Runner.Pass_case
        | exception e ->
            Prop.Runner.Fail_case
              (Printf.sprintf "%s on %s" (Printexc.to_string e) (Prop.Pipe_gen.print c)))
      ()
  in
  match outcome with
  | Prop.Runner.Pass _ -> ()
  | Prop.Runner.Fail f -> Alcotest.fail f.Prop.Runner.message
  | Prop.Runner.Gave_up _ -> Alcotest.fail "gave up"

let test_pipeline_gen_covers_widened_cases () =
  (* the widened generator must actually produce float, pair and empty
     inputs (and still mostly ints) *)
  let floats = ref 0 and pairs = ref 0 and ints = ref 0 and empties = ref 0 in
  for seed = 0 to 199 do
    let c = Prop.Gen.generate ~seed (Prop.Pipe_gen.gen ()) in
    match c.Prop.Pipe_gen.input with
    | Value.Arr [||] -> incr empties
    | Value.Arr a -> (
        match a.(0) with
        | Value.Float _ -> incr floats
        | Value.Pair _ -> incr pairs
        | _ -> incr ints)
    | _ -> ()
  done;
  checkb "some float inputs" (!floats > 0) true;
  checkb "some pair inputs" (!pairs > 0) true;
  checkb "some empty inputs" (!empties > 0) true;
  checkb "ints still dominate" (!ints > !floats && !ints > !pairs) true

(* --- rule oracle ------------------------------------------------------------- *)

let rule_test (rule : Rules.rule) () =
  match
    Prop.Oracle.check_rule ~config:{ Prop.Runner.default with count = 100; seed = 42 } rule
  with
  | Prop.Runner.Pass { checked; _ } -> check Alcotest.int "100 firing cases" 100 checked
  | Prop.Runner.Fail f ->
      Alcotest.fail (Fmt.str "%a" (Prop.Runner.pp_failure Prop.Pipe_gen.print) f)
  | Prop.Runner.Gave_up { checked; _ } ->
      Alcotest.fail (Printf.sprintf "gave up after %d cases" checked)

(* --- exhaustive-sweep meta-tests ---------------------------------------------
   The rule-oracle suite below already runs the soundness property
   [eval (rewrite e) = eval e] over every rule in [Rules.all]; these two
   tests keep that sweep honest. *)

let test_rule_fire_counts () =
  (* Meta-test: the firing-case generator must keep a nonzero (indeed
     dominant) fire count for every rule in Rules.all — a rule whose
     cases never fire would make its soundness test vacuous. *)
  List.iter
    (fun (rule : Rules.rule) ->
      let fires = ref 0 in
      for seed = 0 to 99 do
        let c = Prop.Gen.generate ~seed (Prop.Oracle.gen_firing_case rule) in
        if Prop.Oracle.apply_rule_somewhere rule c.Prop.Pipe_gen.chain <> None then incr fires
      done;
      checkb (rule.Rules.rname ^ " fire count nonzero") (!fires > 0) true;
      checkb
        (Printf.sprintf "%s fire rate (%d/100)" rule.Rules.rname !fires)
        (!fires >= 50) true)
    Rules.all

let test_unknown_rule_synthesized_context () =
  (* A rule the pattern generator has never heard of still gets firing
     cases (by bounded rejection sampling), so the sweep stays exhaustive
     when a rule lands without anyone teaching gen_pattern its shape. *)
  let alias = { Rules.map_fusion with Rules.rname = "unknown-to-generator" } in
  let fires = ref 0 in
  for seed = 0 to 49 do
    let c = Prop.Gen.generate ~seed (Prop.Oracle.gen_firing_case alias) in
    if Prop.Oracle.apply_rule_somewhere alias c.Prop.Pipe_gen.chain <> None then incr fires
  done;
  checkb "synthesized contexts fire" (!fires > 0) true;
  match
    Prop.Oracle.check_rule ~config:{ Prop.Runner.default with count = 50; seed = 42 } alias
  with
  | Prop.Runner.Pass _ -> ()
  | Prop.Runner.Fail f ->
      Alcotest.fail (Fmt.str "%a" (Prop.Runner.pp_failure Prop.Pipe_gen.print) f)
  | Prop.Runner.Gave_up { checked; _ } ->
      Alcotest.fail (Printf.sprintf "gave up after %d cases" checked)

let test_injected_fault_shrinks () =
  (* a deliberately broken rotate fusion must be caught and shrink to a
     2-stage chain over a 2-element array *)
  let broken =
    {
      Rules.rname = "rotate-fusion";
      paper = "deliberately broken for the shrinking test";
      apply_at =
        (function
        | Ast.Rotate a :: Ast.Rotate b :: rest -> Some (Ast.Rotate (a + b + 1) :: rest, 1)
        | _ -> None);
    }
  in
  match
    Prop.Oracle.check_rule ~config:{ Prop.Runner.default with count = 200; seed = 42 } broken
  with
  | Prop.Runner.Fail f ->
      let c = f.Prop.Runner.shrunk in
      let n =
        match c.Prop.Pipe_gen.input with Value.Arr a -> Array.length a | _ -> -1
      in
      checkb
        (Printf.sprintf "minimal chain (got %s)" (Prop.Pipe_gen.print c))
        (List.length c.Prop.Pipe_gen.chain = 2)
        true;
      checkb (Printf.sprintf "minimal input (len %d)" n) (n = 2) true;
      checkb "shrinking actually ran" (f.Prop.Runner.shrink_steps > 0) true
  | Prop.Runner.Pass _ -> Alcotest.fail "broken rule not caught"
  | Prop.Runner.Gave_up _ -> Alcotest.fail "gave up"

let test_cost_consistency () =
  match
    Prop.Oracle.check_cost
      ~config:{ Prop.Runner.default with count = 50; seed = 42 }
      ~procs:4 ~tolerance:1.25 ()
  with
  | Prop.Runner.Pass _ | Prop.Runner.Gave_up _ -> ()
  | Prop.Runner.Fail f ->
      Alcotest.fail (Fmt.str "%a" (Prop.Runner.pp_failure Prop.Pipe_gen.print) f)

(* --- host backend ------------------------------------------------------------ *)

let test_host_exec_matches_reference () =
  let pipelines =
    [
      Ast.of_chain [ Ast.Map Fn.incr; Ast.Rotate (-5); Ast.Scan Fn.add ];
      Ast.of_chain [ Ast.Split 3; Ast.Map_nested (Ast.Fold Fn.add) ];
      Ast.of_chain [ Ast.Split 2; Ast.Map_nested (Ast.Map Fn.double); Ast.Combine ];
      Ast.of_chain [ Ast.Send Fn.i_reverse; Ast.Fetch (Fn.i_shift 4); Ast.Fold Fn.imax ];
      Ast.of_chain [ Ast.Iter_for (3, Ast.Map Fn.incr); Ast.Foldr_compose (Fn.sub, Fn.double) ];
    ]
  in
  let input = Value.of_int_array [| 3; -1; 4; 1; 5; -9; 2; 6 |] in
  List.iter
    (fun e ->
      let expected = Ast.eval e input in
      let got = Host_exec.eval e input in
      checkb (Ast.to_string e) (Value.equal expected got) true)
    pipelines

let test_host_exec_optimize_matches_reference () =
  (* ~optimize:true rewrites through Optimizer first; results must not
     change on any defined input *)
  let pipelines =
    [
      Ast.of_chain [ Ast.Map Fn.incr; Ast.Map Fn.double; Ast.Fold Fn.add ];
      Ast.of_chain [ Ast.Map Fn.square; Ast.Map Fn.negate; Ast.Scan Fn.add ];
      Ast.of_chain [ Ast.Rotate 2; Ast.Rotate (-5); Ast.Map Fn.incr ];
      Ast.of_chain [ Ast.Foldr_compose (Fn.add, Fn.double) ];
      Ast.of_chain [ Ast.Split 2; Ast.Map_nested (Ast.Map Fn.incr); Ast.Combine ];
      Ast.of_chain [ Ast.Send Fn.i_reverse; Ast.Map Fn.incr; Ast.Map Fn.double ];
    ]
  in
  let input = Value.of_int_array [| 3; -1; 4; 1; 5; -9; 2; 6 |] in
  List.iter
    (fun e ->
      let expected = Ast.eval e input in
      checkb
        ("optimize=true " ^ Ast.to_string e)
        (Value.equal expected (Host_exec.eval ~optimize:true e input))
        true;
      checkb
        ("optimize=false " ^ Ast.to_string e)
        (Value.equal expected (Host_exec.eval ~optimize:false e input))
        true)
    pipelines

let test_error_taxonomy_agreement () =
  (* all three backends raise Type_error on the same edge inputs (the
     divergences the differential oracle surfaced: empty fold, negative
     iterFor, out-of-range / non-permutation send) *)
  let expect_type_error who f =
    match f () with
    | exception Value.Type_error _ -> ()
    | exception e -> Alcotest.fail (who ^ " raised " ^ Printexc.to_string e)
    | _ -> Alcotest.fail (who ^ " did not raise")
  in
  let empty = Value.Arr [||] in
  let arr = Value.of_int_array [| 1; 2; 3 |] in
  let oob = { Fn.iname = "oob"; iapply = (fun ~n i -> i + n) } in
  let const0 = { Fn.iname = "const(0)"; iapply = (fun ~n:_ _ -> 0) } in
  let cases =
    [
      ("fold empty", Ast.Fold Fn.add, empty);
      ("iterFor -1", Ast.Iter_for (-1, Ast.Map Fn.incr), arr);
      ("send oob", Ast.Send oob, arr);
      ("send non-perm", Ast.Send const0, arr);
      ("fetch oob", Ast.Fetch oob, arr);
    ]
  in
  List.iter
    (fun (name, e, v) ->
      expect_type_error ("ref " ^ name) (fun () -> Ast.eval e v);
      expect_type_error ("host " ^ name) (fun () -> Host_exec.eval e v);
      expect_type_error ("sim " ^ name) (fun () -> Sim_exec.run ~procs:2 e v))
    cases

(* --- differential smoke ------------------------------------------------------ *)

let test_differential_smoke () =
  let pool = Runtime.Pool.create ~num_domains:3 () in
  Fun.protect
    ~finally:(fun () -> Runtime.Pool.teardown pool)
    (fun () ->
      let stats = Prop.Oracle.new_stats () in
      match
        Prop.Oracle.check_differential
          ~config:{ Prop.Runner.default with count = 60; seed = 42 }
          ~pool_exec:(Scl.Exec.on_pool pool)
          ~stats ~sim_procs:[ 1; 3 ] ()
      with
      | Prop.Runner.Pass { checked; _ } ->
          check Alcotest.int "checked all" 60 checked;
          checkb "some cases ran on the simulator" (stats.Prop.Oracle.sim_ran > 0) true
      | Prop.Runner.Fail f ->
          Alcotest.fail (Fmt.str "%a" (Prop.Runner.pp_failure Prop.Pipe_gen.print) f)
      | Prop.Runner.Gave_up _ -> Alcotest.fail "gave up")

(* --- fused-primitive oracle -------------------------------------------------- *)

let test_fused_oracle_smoke () =
  let pool = Runtime.Pool.create ~num_domains:3 () in
  Fun.protect
    ~finally:(fun () -> Runtime.Pool.teardown pool)
    (fun () ->
      match
        Prop.Oracle.check_fused
          ~config:{ Prop.Runner.default with count = 100; seed = 42 }
          ~pool_exec:(Scl.Exec.on_pool pool) ()
      with
      | Prop.Runner.Pass { checked; _ } -> check Alcotest.int "checked all" 100 checked
      | Prop.Runner.Fail f ->
          Alcotest.fail (Fmt.str "%a" (Prop.Runner.pp_failure Prop.Oracle.print_fused) f)
      | Prop.Runner.Gave_up _ -> Alcotest.fail "gave up")

let () =
  let rule_suite =
    List.map
      (fun (r : Rules.rule) ->
        Alcotest.test_case ("rule " ^ r.Rules.rname) `Quick (rule_test r))
      Rules.all
  in
  Alcotest.run "prop"
    [
      ( "engine",
        [
          Alcotest.test_case "gen deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "int_range bounds" `Quick test_int_range_bounds;
          Alcotest.test_case "frequency weights" `Quick test_frequency_weights;
          Alcotest.test_case "shrink int" `Quick test_shrink_int;
          Alcotest.test_case "shrink list removal" `Quick test_shrink_list_removal;
          Alcotest.test_case "runner shrinks to boundary" `Quick test_runner_finds_and_shrinks;
          Alcotest.test_case "runner pass + replay" `Quick test_runner_pass_and_replay;
        ] );
      ( "pipeline-gen",
        [
          Alcotest.test_case "well-typed pipelines" `Quick test_pipeline_gen_well_typed;
          Alcotest.test_case "covers floats/pairs/empty" `Quick
            test_pipeline_gen_covers_widened_cases;
        ] );
      ("rule-oracle", rule_suite);
      ( "rule-sweep-meta",
        [
          Alcotest.test_case "per-rule fire count nonzero" `Quick test_rule_fire_counts;
          Alcotest.test_case "unknown rule gets synthesized context" `Quick
            test_unknown_rule_synthesized_context;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "broken rule shrinks minimal" `Quick test_injected_fault_shrinks;
          Alcotest.test_case "cost vs simulator" `Quick test_cost_consistency;
        ] );
      ( "host-exec",
        [
          Alcotest.test_case "matches reference" `Quick test_host_exec_matches_reference;
          Alcotest.test_case "optimize matches reference" `Quick
            test_host_exec_optimize_matches_reference;
          Alcotest.test_case "error taxonomy agreement" `Quick test_error_taxonomy_agreement;
        ] );
      ( "differential",
        [ Alcotest.test_case "smoke (seq+pool+sim)" `Quick test_differential_smoke ] );
      ( "fused-oracle",
        [ Alcotest.test_case "smoke (seq+pool)" `Quick test_fused_oracle_smoke ] );
    ]
